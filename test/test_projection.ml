(* Tests for projection: the runtime projection algorithm (Algorithm 1,
   Fig. 6), the projection-path grammar of Table V, the path analysis rules
   (DOC1/DOC2/ROOT/ID), and the compile-time vs runtime precision claim
   behind Fig. 10. *)

module X = Xd_xml
module P = Xd_projection.Path
module R = Xd_projection.Runtime
module An = Xd_projection.Analysis
module Ast = Xd_lang.Ast
open Util

(* The 15-node tree of Fig. 6(a): a(b(c(d(e,f)),g(h),i),j(k(l,m),n),o) —
   reconstructed so that U={i}, R={d,k} yields Fig. 6(b):
   b(c(d(e,f)),i,k(l,m)).

   For that shape: d's subtree is {e,f}; i is a childless node below b;
   k's subtree is {l,m}; the post-processing drops a (single kept child b)
   and keeps b as the LCA. j must be an ancestor of k... in Fig. 6(b) k
   hangs directly under b? The figure shows b -> (c -> d(e,f), i, k(l,m)).
   So in the original, c, i, k are children of b; g/h live under c; j/n
   later; o last. We build: a(b(c(d(e,f),g(h)),i,k(l,m)),j(n),o). *)
let fig6_doc () =
  xml ~uri:"fig6.xml"
    {|<a><b><c><d><e/><f/></d><g><h/></g></c><i/><k><l/><m/></k></b><j><n/></j><o/></a>|}

let node_by_name d nm =
  List.find
    (fun n -> X.Node.name n = nm)
    (X.Node.descendant_or_self (X.Node.doc_node d))

let test_fig6 () =
  let d = fig6_doc () in
  let u = [ node_by_name d "i" ] in
  let r = [ node_by_name d "d"; node_by_name d "k" ] in
  let pr = R.project ~used:u ~returned:r d in
  let out = X.Serializer.doc pr.R.doc in
  check_string "projected tree matches Fig. 6(b)"
    "<b><c><d><e/><f/></d></c><i/><k><l/><m/></k></b>" out;
  (* the LCA post-processing removed <a> *)
  check_string "content root is the LCA" "b"
    pr.R.doc.X.Doc.name.(pr.R.content_root)

let test_projection_mapping () =
  let d = fig6_doc () in
  let u = [ node_by_name d "i" ] in
  let r = [ node_by_name d "d" ] in
  let pr = R.project ~used:u ~returned:r d in
  (* every kept original index maps to a node with the same name *)
  Hashtbl.iter
    (fun orig proj ->
      check_string "name preserved through mapping"
        d.X.Doc.name.(orig) pr.R.doc.X.Doc.name.(proj))
    pr.R.map

let test_returned_keeps_subtree () =
  let d = fig6_doc () in
  let r = [ node_by_name d "k" ] in
  let pr = R.project ~used:[] ~returned:r d in
  check_string "whole subtree of returned node" "<k><l/><m/></k>"
    (X.Serializer.doc pr.R.doc)

let test_used_keeps_bare () =
  let d = fig6_doc () in
  let u = [ node_by_name d "k" ] in
  let pr = R.project ~used:u ~returned:[] d in
  check_string "used node kept bare" "<k/>" (X.Serializer.doc pr.R.doc)

let test_empty_projection () =
  let d = fig6_doc () in
  let pr = R.project ~used:[] ~returned:[] d in
  check_int "nothing kept" 0 pr.R.kept

let test_attributes_travel () =
  let d = xml {|<r><p id="1"><x/></p><p id="2"><y/></p></r>|} in
  let p1 = List.hd (List.filter (fun n -> X.Node.name n = "p")
    (X.Node.descendants (X.Node.doc_node d))) in
  let pr = R.project ~used:[ p1 ] ~returned:[] d in
  check_string "attributes kept on bare nodes" "<p id=\"1\"/>"
    (X.Serializer.doc pr.R.doc)

let test_schema_aware () =
  let d = xml {|<r><p><mand/><opt/></p></r>|} in
  let p = node_by_name d "p" in
  let schema = function "p" -> [ "mand" ] | _ -> [] in
  let pr = R.project ~schema ~used:[ p ] ~returned:[] d in
  check_string "mandatory child kept" "<p><mand/></p>"
    (X.Serializer.doc pr.R.doc)

(* ---- paths: parse/print/eval ------------------------------------------- *)

let test_path_strings () =
  let roundtrip s = P.to_string (P.of_string s) in
  check_string "axis path" "child::a/descendant::node()"
    (roundtrip "child::a/descendant::node()");
  check_string "pseudo steps" "parent::a/root()/id()"
    (roundtrip "parent::a/root()/id()");
  check_string "empty path" "." (roundtrip ".");
  check_bool "malformed rejected"
    (match P.of_string "nonsense" with
    | exception P.Parse_error _ -> true
    | _ -> false)

let test_path_eval () =
  let d = fig6_doc () in
  let ctx = [ node_by_name d "d" ] in
  check_slist "downward" [ "e"; "f" ]
    (names (P.eval (P.of_string "child::*") ctx));
  check_slist "reverse" [ "c" ] (names (P.eval (P.of_string "parent::*") ctx));
  check_slist "root()" [ "" ] (names (P.eval (P.of_string "root()") ctx));
  check_slist "empty = ctx" [ "d" ] (names (P.eval [] ctx))

let test_path_eval_id () =
  let d = xml {|<r><p id="1"/><q idref="1"/><s/></r>|} in
  let ctx = [ node_by_name d "s" ] in
  check_slist "id() selects all ID carriers" [ "p" ]
    (names (P.eval (P.of_string "id()") ctx));
  check_slist "idref()" [ "q" ] (names (P.eval (P.of_string "idref()") ctx))

(* ---- path analysis -------------------------------------------------------- *)

let analyze src =
  let q = Xd_lang.Parser.parse_query src in
  An.run ~funcs:q.Ast.funcs ~env:[] q.Ast.body

let paths_of l = List.map An.apath_to_string l

let test_analysis_doc_rule () =
  let r = analyze {|doc("d.xml")/child::a/child::b|} in
  check_bool "returned path through doc"
    (List.exists
       (fun p -> Filename.check_suffix p "child::a/child::b")
       (paths_of r.An.returned))

let test_analysis_for_where () =
  let r =
    analyze
      {|for $x in doc("d.xml")/child::a return if ($x/child::v = 1) then $x else ()|}
  in
  (* the comparison operand is value-needed; the iterated nodes are used *)
  check_bool "condition path value-needed"
    (List.exists (fun p -> Filename.check_suffix p "child::v") (paths_of r.An.value_needed));
  check_bool "iterated nodes used"
    (List.exists (fun p -> Filename.check_suffix p "child::a") (paths_of r.An.used))

let test_analysis_root_rule () =
  let r = analyze {|root((doc("d.xml")/child::a)[1])|} in
  check_bool "root() pseudo step in returned paths"
    (List.exists (fun p -> Filename.check_suffix p "root()") (paths_of r.An.returned))

let test_analysis_id_rule () =
  let r = analyze {|id("x", doc("d.xml"))|} in
  check_bool "id() pseudo step"
    (List.exists (fun p -> Filename.check_suffix p "id()") (paths_of r.An.returned))

let test_analysis_anchor_suffixes () =
  (* parameters are anchors: $p/child::id compared by value gives the
     returned suffix child::id for p *)
  let body = Xd_lang.Parser.parse_expr_string {|$p/child::id = "7"|} in
  let r =
    An.run ~funcs:[] ~env:[ ("p", [ { An.root = An.R_anchor "p"; steps = [] } ]) ] body
  in
  let u, rets = An.relative_paths r "p" in
  check_slist "used suffixes" [] (List.map P.to_string u);
  check_slist "returned suffixes" [ "child::id" ] (List.map P.to_string rets)

let test_analysis_count_is_used () =
  let body = Xd_lang.Parser.parse_expr_string {|count($p/child::x)|} in
  let r =
    An.run ~funcs:[] ~env:[ ("p", [ { An.root = An.R_anchor "p"; steps = [] } ]) ] body
  in
  let u, rets = An.relative_paths r "p" in
  check_slist "counted nodes are used, not returned" [ "child::x" ]
    (List.map P.to_string u);
  check_slist "nothing returned" [] (List.map P.to_string rets)

let test_analysis_function_inlining () =
  let q =
    Xd_lang.Parser.parse_query
      {|declare function f($x) { $x/child::y }; f(doc("d.xml")/child::a)|}
  in
  let r = An.run ~funcs:q.Ast.funcs ~env:[] q.Ast.body in
  check_bool "paths flow through user functions"
    (List.exists
       (fun p -> Filename.check_suffix p "child::a/child::y")
       (paths_of r.An.returned))

let test_analysis_recursion_degrades () =
  let q =
    Xd_lang.Parser.parse_query
      {|declare function f($x) { if (1 = 2) then f($x/child::c) else $x };
        f(doc("d.xml")/child::a)|}
  in
  let r = An.run ~funcs:q.Ast.funcs ~env:[] q.Ast.body in
  check_bool "recursive analysis flags overflow" r.An.overflow

(* ---- soundness property ---------------------------------------------------- *)

(* The fundamental projection guarantee: for a query Q whose paths were
   analyzed, evaluating Q on the projected document equals evaluating Q on
   the original. We check it for a family of queries over random trees. *)
let queries_for_soundness =
  [
    {|string(count(doc("p.xml")/child::root/child::a))|};
    {|string(count(doc("p.xml")/descendant::b/child::c))|};
    {|for $x in doc("p.xml")/descendant::a return if ($x/child::b) then string(count($x/child::b)) else "0"|};
    {|string(count(doc("p.xml")/descendant::c/parent::b))|};
    {|string-join(for $x in doc("p.xml")/descendant::a/child::b return name($x), ",")|};
  ]

let prop_projection_sound =
  qtest ~count:100 "eval on projection = eval on original"
    (QCheck.pair arb_tree (QCheck.oneofl queries_for_soundness))
    (fun (t, qsrc) ->
      let q = Xd_lang.Parser.parse_query qsrc in
      let r = An.run ~funcs:q.Ast.funcs ~env:[] q.Ast.body in
      if r.An.overflow then true
      else begin
        (* absolute paths for this document *)
        let to_abs l =
          List.filter_map
            (fun (p : An.apath) ->
              match p.An.root with
              | An.R_doc ("p.xml", _) -> Some p.An.steps
              | _ -> None)
            l
        in
        let used_paths = to_abs r.An.used in
        let returned_paths = to_abs (r.An.value_needed @ r.An.returned) in
        let st1 = store () in
        let d = X.Store.add st1 (X.Doc.of_tree ~uri:"p.xml" (root_of_tree t)) in
        let v1 = Xd_lang.Value.serialize (Xd_lang.Eval.run st1 qsrc) in
        let pr =
          Xd_projection.Compile_time.project ~used_paths ~returned_paths d
        in
        (* load the projection under the same uri in a fresh store *)
        let st2 = store () in
        let pdoc = pr.R.doc in
        let xml_text = X.Serializer.doc pdoc in
        let _ =
          if xml_text = "" then
            (* empty projection: an empty document under the same uri *)
            X.Store.add st2 (X.Doc.Builder.finish (X.Doc.Builder.create ~uri:"p.xml" ()))
          else X.Parser.parse ~strip_ws:false ~store:st2 ~uri:"p.xml" xml_text
        in
        let v2 = Xd_lang.Value.serialize (Xd_lang.Eval.run st2 qsrc) in
        v1 = v2
      end)

(* kept nodes are exactly: ancestors of projection nodes up to the LCA,
   the projection nodes, and descendants of returned nodes *)
let prop_projection_extent =
  qtest ~count:100 "projection extent invariant" arb_tree (fun t ->
      let st = store () in
      let d = X.Store.add st (X.Doc.of_tree (root_of_tree t)) in
      let all = X.Node.descendant_or_self (X.Node.doc_node d) in
      let pick p = List.filteri (fun i _ -> i mod p = 0) all in
      let used = pick 3 and returned = pick 5 in
      let pr = R.project ~used ~returned d in
      (* every used/returned node is in the map *)
      List.for_all
        (fun n -> Hashtbl.mem pr.R.map (X.Node.index n))
        (used @ returned)
      && (* descendants of returned nodes kept *)
      List.for_all
        (fun n ->
          List.for_all
            (fun c -> Hashtbl.mem pr.R.map (X.Node.index c))
            (X.Node.descendants n))
        returned)

(* ---- compile-time vs runtime precision (Fig. 10) --------------------------- *)

let test_precision_gap () =
  (* runtime projection of a *selected* subset is smaller than compile-time
     projection of the full path *)
  let parts =
    List.init 40 (fun i ->
        Printf.sprintf "<p><age>%d</age><blob>%s</blob></p>" (20 + i)
          (String.make 40 'x'))
  in
  let d = xml ("<r>" ^ String.concat "" parts ^ "</r>") in
  (* compile-time: all p and their subtrees reached by the paths *)
  let ct =
    Xd_projection.Compile_time.project
      ~used_paths:[ P.of_string "child::r/child::p" ]
      ~returned_paths:[ P.of_string "child::r/child::p/child::age" ]
      d
  in
  (* runtime: only the p with age < 25 are in the materialized context *)
  let selected =
    List.filter
      (fun n ->
        X.Node.name n = "p"
        && int_of_string (X.Node.string_value (List.hd (X.Node.children n))) < 25)
      (X.Node.descendants (X.Node.doc_node d))
  in
  let ages = List.concat_map (fun p -> List.filter (fun c -> X.Node.name c = "age") (X.Node.children p)) selected in
  let rt = R.project ~used:selected ~returned:ages d in
  check_bool
    (Printf.sprintf "runtime (%d) smaller than compile-time (%d)" rt.R.kept ct.R.kept)
    (rt.R.kept < ct.R.kept)

let () =
  Alcotest.run "xd_projection"
    [
      ( "algorithm-1",
        [
          tc "Fig. 6" test_fig6;
          tc "mapping" test_projection_mapping;
          tc "returned subtree" test_returned_keeps_subtree;
          tc "used bare" test_used_keeps_bare;
          tc "empty" test_empty_projection;
          tc "attributes" test_attributes_travel;
          tc "schema-aware" test_schema_aware;
        ] );
      ( "paths",
        [
          tc "strings" test_path_strings;
          tc "eval" test_path_eval;
          tc "id/idref eval" test_path_eval_id;
        ] );
      ( "analysis",
        [
          tc "doc rule" test_analysis_doc_rule;
          tc "for/where" test_analysis_for_where;
          tc "root rule" test_analysis_root_rule;
          tc "id rule" test_analysis_id_rule;
          tc "anchor suffixes" test_analysis_anchor_suffixes;
          tc "count is used" test_analysis_count_is_used;
          tc "function inlining" test_analysis_function_inlining;
          tc "recursion degrades" test_analysis_recursion_degrades;
        ] );
      ( "properties",
        [ prop_projection_sound; prop_projection_extent ] );
      ("precision", [ tc "Fig. 10 gap" test_precision_gap ]);
    ]
