(* End-to-end distributed execution: for a catalog of queries over
   documents spread across peers, every strategy's decomposed execution
   must be deep-equal to the local reference semantics, and the cost
   ordering of the paper (Fig. 7) must hold. *)

module S = Xd_core.Strategy
module E = Xd_core.Executor
module V = Xd_lang.Value
open Util

let make_net () =
  let net = Xd_xrpc.Network.create () in
  let client = Xd_xrpc.Network.new_peer net "client" in
  let a = Xd_xrpc.Network.new_peer net "peerA" in
  let b = Xd_xrpc.Network.new_peer net "peerB" in
  ignore
    (Xd_xrpc.Peer.load_xml a ~doc_name:"students.xml"
       {|<people>
           <person id="s1"><name>Ann</name><tutor>Bob</tutor><id>1</id><age>23</age></person>
           <person id="s2"><name>Bob</name><tutor>Zoe</tutor><id>2</id><age>35</age></person>
           <person id="s3"><name>Cyd</name><tutor>Ann</tutor><id>3</id><age>29</age></person>
         </people>|});
  ignore
    (Xd_xrpc.Peer.load_xml a ~doc_name:"extra.xml"
       {|<extra><person id="s9"><name>Zoe</name><id>9</id></person></extra>|});
  ignore
    (Xd_xrpc.Peer.load_xml b ~doc_name:"course.xml"
       {|<enroll>
           <exam id="1"><grade>A</grade><topic>db</topic></exam>
           <exam id="2"><grade>C</grade><topic>os</topic></exam>
           <exam id="4"><grade>B</grade><topic>ml</topic></exam>
         </enroll>|});
  ignore
    (Xd_xrpc.Peer.load_xml client ~doc_name:"local.xml"
       {|<conf><minage>25</minage><wanted>db</wanted></conf>|});
  (net, client)

(* The query catalog. Each entry: name, query. All are decomposable at
   least partially under some strategy, and all must stay semantically
   equivalent under every strategy. *)
let catalog =
  [
    ( "semijoin (Q2 shape)",
      {|(let $t := let $s := doc("xrpc://peerA/students.xml")/child::people/child::person
                   return for $x in $s return if ($x/child::tutor = $s/child::name) then $x else ()
         return for $e in doc("xrpc://peerB/course.xml")/child::enroll/child::exam
                return if ($e/attribute::id = $t/child::id) then $e else ())/child::grade|}
    );
    ( "selection pushdown",
      {|for $p in doc("xrpc://peerA/students.xml")/child::people/child::person
        where $p/child::age < 30 return $p/child::name|} );
    ( "local + remote predicate",
      {|let $min := doc("local.xml")/child::conf/child::minage
        return for $p in doc("xrpc://peerA/students.xml")/child::people/child::person
               where $p/child::age > $min return string($p/child::name)|} );
    ( "two peers, value join",
      {|for $e in doc("xrpc://peerB/course.xml")/child::enroll/child::exam
        where $e/child::topic = doc("local.xml")/child::conf/child::wanted
        return $e/child::grade|} );
    ( "aggregation",
      {|string(count(doc("xrpc://peerA/students.xml")/descendant::person) +
               count(doc("xrpc://peerB/course.xml")/descendant::exam))|} );
    ( "order by remote",
      {|for $p in doc("xrpc://peerA/students.xml")/child::people/child::person
        order by $p/child::age descending return string($p/child::id)|} );
    ( "construction over remote data",
      {|element summary {
          for $p in doc("xrpc://peerA/students.xml")/child::people/child::person
          return element row { attribute nm { string($p/child::name) } } }|} );
    ( "union across peers",
      {|string(count(doc("xrpc://peerA/students.xml")/descendant::person union
                     doc("xrpc://peerA/extra.xml")/descendant::person))|} );
    ( "same doc twice (one application)",
      {|let $d := doc("xrpc://peerA/students.xml")
        return string(count($d/descendant::person intersect $d/descendant::person))|}
    );
    ( "typeswitch over remote nodes",
      {|for $n in doc("xrpc://peerA/students.xml")/child::people/child::*
        return typeswitch ($n)
               case $p as element(person) return string($p/child::id)
               default $d return "?"|} );
    ( "nested flwor",
      {|for $p in doc("xrpc://peerA/students.xml")/child::people/child::person
        return for $e in doc("xrpc://peerB/course.xml")/child::enroll/child::exam
               return if ($p/child::id = $e/attribute::id)
                      then concat(string($p/child::name), ":", string($e/child::grade))
                      else ()|} );
    ( "deep paths with descendant",
      {|string(count(doc("xrpc://peerA/students.xml")/descendant-or-self::node()))|}
    );
  ]

let test_equivalence (name, q_src) () =
  let q = Xd_lang.Parser.parse_query q_src in
  let net, client = make_net () in
  let reference = E.run_local net ~client q in
  List.iter
    (fun strat ->
      (* fresh network per strategy: stores stay clean *)
      let net, client = make_net () in
      let r = E.run net ~client strat q in
      if not (V.deep_equal r.E.value reference) then
        Alcotest.failf "%s under %s differs:\n  expected %s\n  got %s" name
          (S.to_string strat)
          (V.serialize reference)
          (V.serialize r.E.value))
    S.all

(* every strategy on the benchmark query ships fewer or equal bytes than
   the previous one (the Fig. 7 ordering) *)
let test_cost_ordering () =
  let net = Xd_xrpc.Network.create () in
  let client = Xd_xrpc.Network.new_peer net "client" in
  let p1 = Xd_xrpc.Network.new_peer net "peer1" in
  let p2 = Xd_xrpc.Network.new_peer net "peer2" in
  let _ =
    Xd_xmark.Generator.load_pair ~persons:60 ~people_peer:p1 ~auctions_peer:p2
      ~people_doc:"people.xml" ~auctions_doc:"auctions.xml" ()
  in
  let q =
    Xd_lang.Parser.parse_query
      {|(let $t := let $s := doc("xrpc://peer1/people.xml")/child::site/child::people/child::person
                   return for $x in $s return if ($x/descendant::age < 40) then $x else ()
         return for $e in (let $c := doc("xrpc://peer2/auctions.xml")
                           return $c/descendant::open_auction)
                return if ($e/child::seller/attribute::person = $t/attribute::id)
                       then $e/child::annotation else ())/child::author|}
  in
  let total strat =
    let r = E.run net ~client strat q in
    r.E.timing.E.message_bytes + r.E.timing.E.document_bytes
  in
  let ds = total S.Data_shipping in
  let bv = total S.By_value in
  let bf = total S.By_fragment in
  let bp = total S.By_projection in
  check_bool (Printf.sprintf "value(%d) < shipping(%d)" bv ds) (bv < ds);
  check_bool (Printf.sprintf "fragment(%d) < value(%d)" bf bv) (bf < bv);
  check_bool (Printf.sprintf "projection(%d) < fragment(%d)" bp bf) (bp < bf)

let test_breakdown_sums () =
  let net = Xd_xrpc.Network.create () in
  let client = Xd_xrpc.Network.new_peer net "client" in
  let p1 = Xd_xrpc.Network.new_peer net "peer1" in
  let p2 = Xd_xrpc.Network.new_peer net "peer2" in
  let _ =
    Xd_xmark.Generator.load_pair ~persons:30 ~people_peer:p1 ~auctions_peer:p2
      ~people_doc:"people.xml" ~auctions_doc:"auctions.xml" ()
  in
  let q =
    Xd_lang.Parser.parse_query
      {|for $p in doc("xrpc://peer1/people.xml")/child::site/child::people/child::person
        where $p/descendant::age < 30 return string($p/attribute::id)|}
  in
  let r = E.run net ~client S.By_fragment q in
  let t = r.E.timing in
  check_bool "components non-negative"
    (t.E.local_exec_s >= 0. && t.E.serialize_s >= 0. && t.E.shred_s >= 0.
   && t.E.remote_exec_s >= 0. && t.E.network_s >= 0.);
  check_bool "components bounded by wall"
    (t.E.serialize_s +. t.E.shred_s +. t.E.remote_exec_s
    <= t.E.wall_s +. 1e-6);
  check_bool "messages counted" (t.E.messages > 0)

(* ---- multi-peer topologies ------------------------------------------------- *)

(* a pushed body that references a document at a *third* peer: the server
   fetches it (nested data shipping) and the result is still correct *)
let test_three_peer_chain () =
  let net = Xd_xrpc.Network.create () in
  let client = Xd_xrpc.Network.new_peer net "client" in
  let a = Xd_xrpc.Network.new_peer net "peerA" in
  let c = Xd_xrpc.Network.new_peer net "peerC" in
  ignore
    (Xd_xrpc.Peer.load_xml a ~doc_name:"orders.xml"
       {|<orders><order item="i1"/><order item="i2"/><order item="i1"/></orders>|});
  ignore
    (Xd_xrpc.Peer.load_xml c ~doc_name:"items.xml"
       {|<items><item id="i1"><price>10</price></item><item id="i2"><price>20</price></item></items>|});
  let q =
    Xd_lang.Parser.parse_query
      {|for $o in doc("xrpc://peerA/orders.xml")/child::orders/child::order
        for $i in doc("xrpc://peerC/items.xml")/child::items/child::item
        where $o/attribute::item = $i/attribute::id
        return $i/child::price|}
  in
  let reference = E.run_local net ~client q in
  check_int "reference size" 3 (List.length reference);
  List.iter
    (fun strat ->
      let r = E.run net ~client strat q in
      check_bool (S.to_string strat)
        (V.deep_equal r.E.value reference))
    S.all

(* explicit nested execute-at: the body executed at A itself calls B *)
let test_nested_execute_at () =
  let net = Xd_xrpc.Network.create () in
  let client = Xd_xrpc.Network.new_peer net "client" in
  let a = Xd_xrpc.Network.new_peer net "peerA" in
  let b = Xd_xrpc.Network.new_peer net "peerB" in
  ignore (Xd_xrpc.Peer.load_xml a ~doc_name:"a.xml" "<r><x>1</x></r>");
  ignore (Xd_xrpc.Peer.load_xml b ~doc_name:"b.xml" "<r><y>2</y></r>");
  let session = Xd_xrpc.Session.create net client Xd_xrpc.Message.By_fragment in
  let q =
    Xd_lang.Parser.parse_query
      {|execute at {"peerA"} function ()
        { let $x := doc("a.xml")/child::r/child::x
          let $y := execute at {"peerB"} function ()
                    { doc("b.xml")/child::r/child::y }
          return $x + $y }|}
  in
  let v = Xd_xrpc.Session.execute session q in
  check_string "nested call computes across three peers" "3"
    (V.serialize v)

(* execute at the peer's own name runs locally, without messages *)
let test_execute_at_self () =
  let net = Xd_xrpc.Network.create () in
  let client = Xd_xrpc.Network.new_peer net "client" in
  ignore (Xd_xrpc.Peer.load_xml client ~doc_name:"d.xml" "<r><x>5</x></r>");
  let session = Xd_xrpc.Session.create net client Xd_xrpc.Message.By_value in
  let q =
    Xd_lang.Parser.parse_query
      {|execute at {"client"} function () { doc("d.xml")/child::r/child::x }|}
  in
  let v = Xd_xrpc.Session.execute session q in
  check_string "self call" "<x>5</x>" (V.serialize v);
  check_int "no messages" 0
    (Xd_xrpc.Stats.messages net.Xd_xrpc.Network.stats)

(* a computed host expression *)
let test_computed_host () =
  let net = Xd_xrpc.Network.create () in
  let client = Xd_xrpc.Network.new_peer net "client" in
  let a = Xd_xrpc.Network.new_peer net "peerA" in
  ignore (Xd_xrpc.Peer.load_xml a ~doc_name:"d.xml" "<r>7</r>");
  let session = Xd_xrpc.Session.create net client Xd_xrpc.Message.By_fragment in
  let q =
    Xd_lang.Parser.parse_query
      {|let $h := concat("peer", "A")
        return execute at {$h} function () { string(doc("d.xml")/child::r) }|}
  in
  check_string "computed host" "7" (V.serialize (Xd_xrpc.Session.execute session q))

(* bulk off still yields correct results for identity-free queries *)
let test_bulk_off_equivalence () =
  let q =
    Xd_lang.Parser.parse_query
      {|for $p in doc("xrpc://peerA/students.xml")/child::people/child::person
        where $p/child::age < 30 return string($p/child::name)|}
  in
  let net, client = make_net () in
  let reference = E.run_local net ~client q in
  let net, client = make_net () in
  let r = E.run ~bulk:false net ~client S.By_fragment q in
  check_bool "bulk-off equivalent on identity-free queries"
    (V.deep_equal r.E.value reference)

(* ---- cost model ------------------------------------------------------------- *)

let test_cost_model_ranking () =
  (* on the XMark benchmark the cost model's ranking must match the
     measured Fig. 7 ranking *)
  let net = Xd_xrpc.Network.create () in
  let client = Xd_xrpc.Network.new_peer net "client" in
  let p1 = Xd_xrpc.Network.new_peer net "peer1" in
  let p2 = Xd_xrpc.Network.new_peer net "peer2" in
  let _ =
    Xd_xmark.Generator.load_pair ~persons:80 ~people_peer:p1 ~auctions_peer:p2
      ~people_doc:"people.xml" ~auctions_doc:"auctions.xml" ()
  in
  let q =
    Xd_lang.Parser.parse_query
      {|(let $t := let $s := doc("xrpc://peer1/people.xml")/child::site/child::people/child::person
                   return for $x in $s return if ($x/descendant::age < 40) then $x else ()
         return for $e in (let $c := doc("xrpc://peer2/auctions.xml")
                           return $c/descendant::open_auction)
                return if ($e/child::seller/attribute::person = $t/attribute::id)
                       then $e/child::annotation else ())/child::author|}
  in
  let ranking_by f =
    List.sort (fun a b -> compare (f a) (f b)) S.all
  in
  let est = Xd_core.Cost.estimate_all net q in
  let est_of s =
    Xd_core.Cost.total
      (List.find (fun e -> e.Xd_core.Cost.strategy = s) est)
  in
  let measured s =
    let r = E.run net ~client s q in
    r.E.timing.E.message_bytes + r.E.timing.E.document_bytes
  in
  let measured_ranking = ranking_by measured in
  let estimated_ranking = ranking_by est_of in
  check_slist "cost model reproduces the measured ranking"
    (List.map S.to_string measured_ranking)
    (List.map S.to_string estimated_ranking);
  check_bool "choose picks the winner"
    (Xd_core.Cost.choose net q = List.hd measured_ranking)

let test_cost_model_tiny_docs () =
  (* for tiny documents, message overhead makes plain data shipping the
     cheapest — the model must see that too *)
  let net = Xd_xrpc.Network.create () in
  let _client = Xd_xrpc.Network.new_peer net "client" in
  let a = Xd_xrpc.Network.new_peer net "peerA" in
  ignore (Xd_xrpc.Peer.load_xml a ~doc_name:"tiny.xml" "<r><x>1</x></r>");
  let q =
    Xd_lang.Parser.parse_query
      {|string(doc("xrpc://peerA/tiny.xml")/child::r/child::x)|}
  in
  check_string "tiny documents: data shipping wins" "data-shipping"
    (S.to_string (Xd_core.Cost.choose net q))

let test_cost_model_updates_pinned () =
  let net = Xd_xrpc.Network.create () in
  let _ = Xd_xrpc.Network.new_peer net "client" in
  let a = Xd_xrpc.Network.new_peer net "peerA" in
  ignore (Xd_xrpc.Peer.load_xml a ~doc_name:"d.xml" "<r><x/></r>");
  let q =
    Xd_lang.Parser.parse_query
      {|delete node doc("xrpc://peerA/d.xml")/child::r/child::x|}
  in
  check_bool "updating query pinned to function shipping"
    (Xd_core.Cost.choose net q <> S.Data_shipping)

let test_bulk_saves_bytes () =
  (* session caching (= bulk RPC wire behaviour) must reduce bytes on a
     loop-nested call that re-ships the same parameter *)
  let net, client = make_net () in
  let q =
    Xd_lang.Parser.parse_query
      {|let $t := execute at {"peerA"} function ()
                  { doc("students.xml")/child::people/child::person }
        return for $e in (1, 2, 3)
               return execute at {"peerA"} function ($t := $t)
                      { count($t) + 0 }|}
  in
  let bytes bulk =
    let session =
      Xd_xrpc.Session.create ~bulk net client Xd_xrpc.Message.By_fragment
    in
    Xd_xrpc.Stats.reset net.Xd_xrpc.Network.stats;
    let _ = Xd_xrpc.Session.execute session q in
    Xd_xrpc.Stats.message_bytes net.Xd_xrpc.Network.stats
  in
  let with_bulk = bytes true in
  let without = bytes false in
  check_bool
    (Printf.sprintf "bulk %d < no-bulk %d" with_bulk without)
    (with_bulk < without)

let test_message_determinism () =
  (* the same query over the same data produces byte-identical traffic *)
  let run () =
    let net, client = make_net () in
    let record = ref [] in
    let q =
      Xd_lang.Parser.parse_query
        {|for $p in doc("xrpc://peerA/students.xml")/child::people/child::person
          where $p/child::age < 30 return string($p/child::name)|}
    in
    let _ = E.run ~record net ~client S.By_projection q in
    List.map (fun r -> r.Xd_xrpc.Session.text) (List.rev !record)
  in
  let m1 = run () and m2 = run () in
  check_int "same number of messages" (List.length m1) (List.length m2);
  (* identical up to document ids, which depend on global allocation order;
     normalize them away *)
  let strip s =
    String.concat "#"
      (List.filter
         (fun part -> not (String.length part > 0 && part.[0] >= '0' && part.[0] <= '9'))
         (String.split_on_char ':' s))
  in
  List.iter2
    (fun a b -> check_string "messages equal modulo ids" (strip a) (strip b))
    m1 m2

(* property: random selection thresholds keep all strategies equivalent *)
let prop_threshold_equivalence =
  qtest ~count:25 "equivalence for random selection thresholds"
    (QCheck.int_range 18 60) (fun threshold ->
      let q =
        Xd_lang.Parser.parse_query
          (Printf.sprintf
             {|for $p in doc("xrpc://peerA/students.xml")/child::people/child::person
               where $p/child::age < %d return $p/child::name|}
             threshold)
      in
      let net, client = make_net () in
      let reference = E.run_local net ~client q in
      List.for_all
        (fun strat ->
          let net, client = make_net () in
          let r = E.run net ~client strat q in
          V.deep_equal r.E.value reference)
        S.all)

let () =
  Alcotest.run "xd_distributed"
    [
      ( "equivalence",
        List.map (fun (name, q) -> tc name (test_equivalence (name, q))) catalog
      );
      ( "costs",
        [ tc "Fig. 7 ordering" test_cost_ordering; tc "breakdown" test_breakdown_sums ] );
      ( "cost-model",
        [
          tc "ranking matches measurement" test_cost_model_ranking;
          tc "tiny docs" test_cost_model_tiny_docs;
          tc "updates pinned" test_cost_model_updates_pinned;
        ] );
      ( "topology",
        [
          tc "three-peer chain" test_three_peer_chain;
          tc "nested execute-at" test_nested_execute_at;
          tc "execute at self" test_execute_at_self;
          tc "computed host" test_computed_host;
          tc "bulk off" test_bulk_off_equivalence;
          tc "bulk saves bytes" test_bulk_saves_bytes;
          tc "message determinism" test_message_determinism;
        ] );
      ("properties", [ prop_threshold_equivalence ]);
    ]
