(* Differential testing of the compiled wire-shape codecs.

   The codec contract (PROTOCOL.md, "Compiled codecs") is byte-identity:
   a session with compiled codecs installed puts *exactly* the same
   octets on the wire as one without, and computes the same value — the
   compiled encoder/decoder are strict specializations with a generic
   fallback, never a second dialect. This suite drives that contract
   with random Gen_queries programs under every environment that bends
   the wire: fault injection, topology churn, overload shedding and
   distributed transactions.

   Alongside byte-identity: shape-descriptor soundness (a plain run of
   a compiled plan never takes the bailout path — the analysis never
   over-claims) and the verifier's tamper rejection (a descriptor the
   independent re-derivation cannot reproduce is a wire-shape error). *)

module S = Xd_core.Strategy
module E = Xd_core.Executor
module Shape = Xd_shape.Shape
open Util

let make_net = Gen_queries.make_net
let arb_query = Gen_queries.arb_query

(* the profile/trace suites use the same duplicated corpus: churn needs
   the moved document servable at both peers *)
let students_xml =
  {|<people>
      <person id="s1"><name>Ann</name><tutor>Bob</tutor><id>1</id><age>23</age></person>
      <person id="s2"><name>Bob</name><tutor>Zoe</tutor><id>2</id><age>35</age></person>
      <person id="s3"><name>Cyd</name><tutor>Ann</tutor><id>3</id><age>29</age></person>
      <person id="s4"><name>Dan</name><tutor>Cyd</tutor><id>4</id><age>41</age></person>
    </people>|}

(* One run of [q] with the codec on or off, capturing the exact wire.
   [env] mutates the fresh network before execution. [fault] is a thunk:
   Fault.t is stateful (per-rule limits, RNG position), so each run must
   get a fresh instance or the second run sees a different schedule. *)
let run_wire ?fault ?(env = fun _ -> ()) ?deadline ?txn ~codec q =
  let fault = Option.map (fun f -> f ()) fault in
  let net, client = make_net ?fault () in
  env net;
  let record = ref [] in
  match E.run ~record ?deadline ?txn ~codec net ~client S.By_value q with
  | r ->
    Ok
      ( Xd_lang.Value.serialize r.E.value,
        List.map (fun m -> m.Xd_xrpc.Session.text) (List.rev !record),
        r.E.timing )
  | exception exn -> Error (Printexc.to_string exn)

(* The property: same value, same wire, octet for octet — or the same
   failure. [check] sees the codec-on timing for extra assertions. *)
let differential ?fault ?env ?deadline ?txn ?(check = fun _ -> true) q =
  match
    ( run_wire ?fault ?env ?deadline ?txn ~codec:false q,
      run_wire ?fault ?env ?deadline ?txn ~codec:true q )
  with
  | Ok (v_gen, wire_gen, _), Ok (v_cod, wire_cod, t_cod) ->
    v_gen = v_cod && wire_gen = wire_cod && check t_cod
  | Error _, Error _ -> true (* both fail; fault schedules are seeded *)
  | Ok _, Error _ | Error _, Ok _ -> false

let fault_of spec seed =
  match Xd_xrpc.Fault.parse spec with
  | Ok s -> Xd_xrpc.Fault.create ~seed s
  | Error e -> failwith e

(* ---- byte identity, plain wire --------------------------------------------- *)

let prop_identity_plain =
  qtest ~count:250 "codec on/off: identical wire and value (plain)" arb_query
    (fun q ->
      differential q ~check:(fun t ->
          (* descriptor soundness: on a healthy wire a compiled call
             site never takes the bailout path — a bailout here means
             the analysis claimed a shape the runtime didn't have *)
          t.E.codec_bailouts = 0
          && t.E.codec_decodes <= t.E.calls
          && t.E.codec_compiled <= t.E.calls))

(* ---- byte identity under fault injection ----------------------------------- *)

let arb_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 9999)

let arb_query_seed = QCheck.pair arb_query arb_seed

let prop_identity_faults =
  qtest ~count:250 "codec on/off: identical wire under faults"
    arb_query_seed (fun (q, seed) ->
      (* byte-identity makes the seeded fault schedule — which keys on
         (destination, length) — take the same decisions in both runs,
         so even the retry/dup traffic must match octet for octet *)
      differential
        ~fault:(fun () ->
          fault_of "drop@0.2#2;dup@0.15#1;truncate@0.1#1" seed)
        q)

(* ---- byte identity under topology churn ------------------------------------ *)

let arb_moves =
  QCheck.make
    ~print:(fun ms ->
      String.concat ";"
        (List.map (fun (n, b) -> Printf.sprintf "%d:%b" n b) ms))
    QCheck.Gen.(list_size (int_bound 4) (pair (int_bound 6) bool))

let churn_env moves net =
  let b = Xd_xrpc.Network.find_peer net "peerB" in
  ignore (Xd_xrpc.Peer.load_xml b ~doc_name:"students.xml" students_xml);
  let cat = Xd_topo.Catalog.create () in
  Xd_topo.Catalog.register cat ~doc:"students.xml" ~owner:"peerA" ();
  Xd_topo.Catalog.register cat ~doc:"course.xml" ~owner:"peerB" ();
  Xd_xrpc.Network.set_catalog net cat;
  Xd_xrpc.Network.set_churn net
    (Xd_topo.Churn.create
       (List.map
          (fun (n, to_b) ->
            ( n,
              Xd_topo.Churn.Move
                {
                  doc = "students.xml";
                  owner = (if to_b then "peerB" else "peerA");
                } ))
          moves))

let prop_identity_churn =
  qtest ~count:150 "codec on/off: identical wire under churn"
    (QCheck.pair arb_query arb_moves) (fun (q, moves) ->
      (* forwards and failovers reshape the message flow, not the
         bytes of any one message: redirected requests must still be
         emitted identically by both writers *)
      differential ~env:(churn_env moves) q)

(* ---- byte identity under overload ------------------------------------------ *)

let overload_env net =
  Xd_xrpc.Network.set_overload net
    (Xd_xrpc.Overload.create ~capacity:1 ~queue_cap:4 ~service_s:0.001 ())

let prop_identity_overload =
  qtest ~count:150 "codec on/off: identical wire under overload"
    arb_query (fun q ->
      (* deadline stamps are fixed-width (%015.6f) so the compiled
         encoder's constant segments still line up; shedding decisions
         key on sim-clock arrival order, identical across the runs *)
      differential ~env:overload_env ~deadline:5.0 q)

(* ---- byte identity under distributed transactions -------------------------- *)

let prop_identity_txn =
  qtest ~count:100 "codec on/off: identical wire under txn" arb_query
    (fun q ->
      (* txn attributes push responses off the compiled decoder's
         accepted language: the bailout path must agree with the
         generic parser on every message *)
      differential ~txn:`Always q)

(* ---- descriptor soundness and verifier tamper rejection -------------------- *)

let plan_of q = Xd_core.Decompose.decompose S.By_value q

let prop_analysis_deterministic =
  qtest ~count:60 "shape analysis is deterministic" arb_query (fun q ->
      let p = plan_of q in
      let d1 = (Shape.analyze p.Xd_core.Decompose.query).Shape.descriptors in
      let d2 = (Shape.analyze p.Xd_core.Decompose.query).Shape.descriptors in
      List.length d1 = List.length d2
      && List.for_all2 Shape.descriptor_equal d1 d2)

let prop_verifier_rejects_tampered =
  qtest ~count:150 "verifier rejects tampered descriptors" arb_query
    (fun q ->
      let p = plan_of q in
      let sres = Shape.analyze p.Xd_core.Decompose.query in
      match sres.Shape.descriptors with
      | [] -> QCheck.assume_fail () (* no call sites to tamper with *)
      | d :: rest ->
        let net, client = make_net () in
        ignore net;
        (* the honest descriptors pass... *)
        let honest =
          E.verify_plan ~shapes:sres.Shape.descriptors ~client p
        in
        (* ...and a lie about the execution host must be caught by the
           independent re-derivation (any field disagreement rejects) *)
        let tampered =
          {
            d with
            Shape.host =
              (match d.Shape.host with
              | Some h -> Some (h ^ "-tampered")
              | None -> Some "tampered");
          }
        in
        let report = E.verify_plan ~shapes:(tampered :: rest) ~client p in
        Xd_verify.Verify.ok honest && not (Xd_verify.Verify.ok report))

let () =
  Alcotest.run "xd_shape"
    [
      ( "byte-identity",
        [
          prop_identity_plain;
          prop_identity_faults;
          prop_identity_churn;
          prop_identity_overload;
          prop_identity_txn;
        ] );
      ( "descriptors",
        [ prop_analysis_deterministic; prop_verifier_rejects_tampered ] );
    ]
