(* Tests for the overload layer (PROTOCOL.md, "Deadlines & overload"):
   deadline budgets that shrink across hops, no work after expiry,
   deterministic breakers, and the shedding-beats-FIFO goodput property
   of the bounded-capacity server model. *)

module M = Xd_xrpc.Message
module S = Xd_core.Strategy
module E = Xd_core.Executor
module O = Xd_xrpc.Overload
open Util

let little_doc = "<r><x>1</x><x>2</x><x>3</x></r>"

let make_net ?overload ?fault () =
  let fault =
    match fault with
    | None -> Xd_xrpc.Fault.none
    | Some s -> (
      match Xd_xrpc.Fault.parse s with
      | Ok spec -> Xd_xrpc.Fault.create ~seed:0 spec
      | Error e -> failwith e)
  in
  let net = Xd_xrpc.Network.create ~fault () in
  let client = Xd_xrpc.Network.new_peer net "client" in
  let p1 = Xd_xrpc.Network.new_peer net "peer1" in
  let p2 = Xd_xrpc.Network.new_peer net "peer2" in
  ignore (Xd_xrpc.Peer.load_xml p1 ~doc_name:"d.xml" little_doc);
  ignore (Xd_xrpc.Peer.load_xml p2 ~doc_name:"e.xml" little_doc);
  Option.iter (Xd_xrpc.Network.set_overload net) overload;
  (net, client, p1, p2)

(* Every budget a recorded request carries, in wire order. *)
let recorded_deadlines recorded =
  List.filter_map
    (fun r ->
      match r.Xd_xrpc.Session.dir with
      | `Response _ -> None
      | `Request _ -> (
        let text = r.Xd_xrpc.Session.text in
        let marker = " deadline=\"" in
        let mlen = String.length marker in
        let rec find i =
          if i + mlen > String.length text then None
          else if String.sub text i mlen = marker then
            Some (float_of_string (String.sub text (i + mlen) 15))
          else find (i + 1)
        in
        find 0))
    recorded

(* ---- deadline monotonicity across hops ------------------------------------ *)

(* Each message pre-subtracts its own wire time from the budget it
   carries, and the simulated clock only moves forward — so along any
   recorded run the stamped budgets strictly decrease, hop by hop, and
   never exceed the query's initial budget. Nested calls (client ->
   peer1 -> peer2) exercise re-stamping at an intermediate hop. *)

let arb_monotonic =
  QCheck.make
    ~print:(fun (d, fan, nested) ->
      Printf.sprintf "deadline=%.4f fan=%d nested=%b" d fan nested)
    QCheck.Gen.(
      triple (float_range 0.05 2.0) (int_range 1 3) bool)

let prop_deadline_monotonic =
  qtest ~count:400 "stamped budgets decrease across hops" arb_monotonic
    (fun (deadline, fan, nested) ->
      let net, client, _, _ = make_net () in
      let record = ref [] in
      let session =
        Xd_xrpc.Session.create ~record ~deadline net client M.By_fragment
      in
      let body =
        if nested then
          {|execute at {"peer1"} function ()
              { execute at {"peer2"} function () { 1 } }|}
        else {|execute at {"peer1"} function () { 1 }|}
      in
      let q =
        Xd_lang.Parser.parse_query
          (String.concat ","
             (List.init fan (fun _ -> body))
          |> Printf.sprintf "(%s)")
      in
      ignore (Xd_xrpc.Session.execute session q);
      let ds = recorded_deadlines (List.rev !record) in
      List.length ds >= fan
      (* the wire format has 6 decimals, so a stamp may round up to
         half an ulp above the true budget *)
      && List.for_all (fun d -> d > 0. && d <= deadline +. 5e-7) ds
      && fst
           (List.fold_left
              (fun (ok, prev) d -> (ok && d < prev, d))
              (true, infinity) ds))

(* ---- no work after the deadline ------------------------------------------- *)

(* An update whose budget has expired must leave every store
   byte-identical: the admission gate refuses it before any evaluation.
   With a generous budget the same update applies. Either way the
   outcome is all-or-nothing against the deadline. *)

let arb_tiny_deadline =
  QCheck.make
    ~print:(fun d -> Printf.sprintf "deadline=%.6f" d)
    QCheck.Gen.(float_range 1e-6 1.0)

let prop_no_work_after_deadline =
  qtest ~count:300 "expired budget leaves stores byte-identical"
    arb_tiny_deadline (fun deadline ->
      let net, client, p1, _ = make_net () in
      let before = Xd_xml.Serializer.doc (Option.get (Xd_xrpc.Peer.find_doc p1 "d.xml")) in
      let session =
        Xd_xrpc.Session.create ~deadline net client M.By_fragment
      in
      let q =
        Xd_lang.Parser.parse_query
          {|execute at {"peer1"} function ()
              { insert node <y/> into doc("d.xml")/child::r }|}
      in
      let after () =
        Xd_xml.Serializer.doc (Option.get (Xd_xrpc.Peer.find_doc p1 "d.xml"))
      in
      match Xd_xrpc.Session.execute session q with
      | _ -> after () <> before
      | exception M.Xrpc_fault { code = M.Deadline_exceeded; _ } ->
        after () = before)

(* ---- breaker determinism --------------------------------------------------- *)

(* Same fault seed, same sequence of calls: the breaker opens at the
   same point, sheds the same calls, and the wire is byte-identical run
   to run. *)

let overload_model () = O.create ~capacity:2 ~service_s:0.001 ()

let breaker_run calls =
  let net, client, _, _ = make_net ~overload:(overload_model ()) ~fault:"peer1:down" () in
  let record = ref [] in
  let session =
    Xd_xrpc.Session.create ~record net client M.By_fragment
  in
  let q =
    Xd_lang.Parser.parse_query
      (Printf.sprintf "(%s)"
         (String.concat ","
            (List.init calls (fun i ->
                 Printf.sprintf
                   {|execute at {"peer1"} function () { %d }|} i))))
  in
  let v = Xd_lang.Value.serialize (Xd_xrpc.Session.execute session q) in
  let stats = net.Xd_xrpc.Network.stats in
  ( v,
    List.map (fun r -> r.Xd_xrpc.Session.text) (List.rev !record),
    ( Xd_xrpc.Stats.breaker_opens stats,
      Xd_xrpc.Stats.breaker_shed stats,
      Xd_xrpc.Stats.ov_admitted stats ) )

let prop_breaker_deterministic =
  qtest ~count:250 "breaker schedule replays exactly"
    (QCheck.make
       ~print:(fun n -> Printf.sprintf "calls=%d" n)
       QCheck.Gen.(int_range 3 6))
    (fun calls ->
      let v1, wire1, st1 = breaker_run calls in
      let v2, wire2, st2 = breaker_run calls in
      let opens, shed, _ = st1 in
      v1 = v2 && wire1 = wire2 && st1 = st2
      (* the threshold is 3 consecutive failures, so >3 calls to a dead
         peer must have opened the breaker and shed the surplus *)
      && opens >= 1
      && shed = calls - 3)

(* ---- goodput never worse with shedding ------------------------------------ *)

(* The bench's acceptance property as a random test: past saturation,
   the bounded queue + deadline budget always answers at least as many
   requests in budget as the unbounded FIFO. A miniature of
   bench/experiments.ml's open loop (arrivals pin the simulated clock,
   the peer's busy slots persist across requests). *)

let shedding_goodput ~shedding ~load ~requests =
  let capacity = 2 and service_s = 0.01 and deadline = 0.1 in
  let net, client, _, _ =
    make_net
      ~overload:
        (O.create ~capacity
           ~queue_cap:(if shedding then 8 else 1_000_000)
           ~service_s ())
      ()
  in
  let plan_q =
    Xd_lang.Parser.parse_query
      {|execute at {"peer1"} function ()
          { count(doc("d.xml")/child::r/child::x) }|}
  in
  let stats = net.Xd_xrpc.Network.stats in
  let rate = load *. float_of_int capacity /. service_s in
  let ok = ref 0 in
  for i = 0 to requests - 1 do
    let arrival = float_of_int i /. rate in
    Xd_xrpc.Stats.set_network_s stats arrival;
    let session =
      Xd_xrpc.Session.create
        ?deadline:(if shedding then Some deadline else None)
        net client M.By_fragment
    in
    match Xd_xrpc.Session.execute session plan_q with
    | _ ->
      if Xd_xrpc.Stats.network_s stats -. arrival <= deadline then incr ok
    | exception M.Xrpc_fault _ -> ()
    | exception M.Xrpc_timeout _ -> ()
  done;
  float_of_int !ok /. float_of_int requests

let prop_goodput_never_worse =
  qtest ~count:60 "shedding goodput >= FIFO goodput past saturation"
    (QCheck.make
       ~print:(fun l -> Printf.sprintf "load=%.2fx" l)
       QCheck.Gen.(float_range 1.5 2.5))
    (fun load ->
      let requests = 150 in
      shedding_goodput ~shedding:true ~load ~requests
      >= shedding_goodput ~shedding:false ~load ~requests)

(* ---- unit pins -------------------------------------------------------------- *)

let test_admit_pinned () =
  (* the admission arithmetic, worked by hand: capacity 2, queue 2,
     service 10ms *)
  let t = O.create ~capacity:2 ~queue_cap:2 ~service_s:0.01 () in
  (match O.admit t ~peer:"p" ~now:0. ~units:1 () with
  | O.Admit { wait_s; depth; _ } ->
    check_bool "first runs at once" (wait_s = 0. && depth = 0)
  | _ -> check_bool "first admitted" false);
  (match O.admit t ~peer:"p" ~now:0. ~units:1 () with
  | O.Admit { wait_s; _ } -> check_bool "second slot free" (wait_s = 0.)
  | _ -> check_bool "second admitted" false);
  (* both slots busy: the next two queue behind them *)
  (match O.admit t ~peer:"p" ~now:0. ~units:1 () with
  | O.Admit { wait_s; depth; _ } ->
    check_bool "third queues 10ms" (abs_float (wait_s -. 0.01) < 1e-9);
    check_int "third is first in queue" 0 depth
  | _ -> check_bool "third admitted" false);
  (match O.admit t ~peer:"p" ~now:0. ~units:1 () with
  | O.Admit { depth; _ } -> check_int "fourth queues behind" 1 depth
  | _ -> check_bool "fourth admitted" false);
  (* queue full: shed with the time to the earliest free slot *)
  (match O.admit t ~peer:"p" ~now:0. ~units:1 () with
  | O.Busy { retry_after_s } -> check_bool "busy hints" (retry_after_s > 0.)
  | _ -> check_bool "fifth shed" false);
  (* a budget the wait cannot fit is hopeless, not busy *)
  let t2 = O.create ~capacity:1 ~queue_cap:8 ~service_s:0.01 () in
  ignore (O.admit t2 ~peer:"p" ~now:0. ~units:1 ());
  match O.admit t2 ~peer:"p" ~now:0. ~deadline:0.005 ~units:1 () with
  | O.Hopeless { needed_s } ->
    check_bool "needs wait+service" (abs_float (needed_s -. 0.02) < 1e-9)
  | _ -> check_bool "hopeless rejected" false

let test_breaker_pinned () =
  let t = O.create () in
  (* threshold 3: two failures stay closed, the third opens *)
  O.breaker_failure t ~peer:"p" ~now:0.;
  O.breaker_failure t ~peer:"p" ~now:0.;
  check_bool "still closed" (O.breaker_state t ~peer:"p" = O.Closed);
  O.breaker_failure t ~peer:"p" ~now:0.;
  check_bool "opened" (O.breaker_state t ~peer:"p" = O.Open);
  check_int "one open" 1 (O.breaker_opens t);
  (match O.breaker_check t ~peer:"p" ~now:0.01 with
  | O.Shed { until } ->
    (* base cooldown 50ms *)
    check_bool "cooldown 50ms" (abs_float (until -. 0.05) < 1e-9)
  | _ -> check_bool "shed while open" false);
  (* past the cooldown the next call is the half-open probe *)
  (match O.breaker_check t ~peer:"p" ~now:0.06 with
  | O.Probe -> ()
  | _ -> check_bool "probe after cooldown" false);
  (* a failed probe re-opens with the doubled cooldown *)
  O.breaker_failure t ~peer:"p" ~now:0.06;
  check_int "re-opened" 2 (O.breaker_opens t);
  (match O.breaker_check t ~peer:"p" ~now:0.07 with
  | O.Shed { until } ->
    check_bool "doubled cooldown" (abs_float (until -. 0.16) < 1e-9)
  | _ -> check_bool "shed after failed probe" false);
  (* success closes and resets everything *)
  (match O.breaker_check t ~peer:"p" ~now:0.2 with
  | O.Probe -> ()
  | _ -> check_bool "second probe" false);
  O.breaker_success t ~peer:"p";
  check_bool "closed again" (O.breaker_state t ~peer:"p" = O.Closed);
  match O.breaker_check t ~peer:"p" ~now:0.3 with
  | O.Proceed -> ()
  | _ -> check_bool "proceed once closed" false

let () =
  Alcotest.run "overload"
    [
      ( "model",
        [ tc "admission pinned" test_admit_pinned;
          tc "breaker pinned" test_breaker_pinned ] );
      ("deadline", [ prop_deadline_monotonic; prop_no_work_after_deadline ]);
      ("breaker", [ prop_breaker_deterministic ]);
      ("goodput", [ prop_goodput_never_worse ]);
    ]
