(* Fault-injection properties: under ANY seeded fault schedule, a
   distributed execution either reproduces the local reference semantics
   exactly — same value, same post-run document state, updates applied at
   most once — or fails with a *typed* error (Xrpc_fault / Xrpc_timeout).
   Silent divergence is the one forbidden outcome.

   Also: the fault layer is deterministic (same spec+seed => identical
   stats) and free when disabled (empty spec => wire traffic identical to
   a fault-free build). *)

module S = Xd_core.Strategy
module E = Xd_core.Executor
module F = Xd_xrpc.Fault
module M = Xd_xrpc.Message
open Util

let make_net = Gen_queries.make_net

(* ---- fixed query catalog over the Gen_queries database ----------------- *)

let q_readonly_remote =
  {|count(doc("xrpc://peerA/students.xml")/child::people/child::person)|}

let q_join =
  {|for $p in doc("xrpc://peerA/students.xml")/child::people/child::person
    for $e in doc("xrpc://peerB/course.xml")/child::enroll/child::exam
    return (if (($p/child::id = $e/attribute::id)) then string($e/child::grade) else ())|}

let q_explicit_call =
  {|execute at {"peerA"} function ()
    { for $p in doc("xrpc://peerA/students.xml")/child::people/child::person
      return string($p/child::name) }|}

let q_nested =
  {|execute at {"peerA"} function ()
    { (count(doc("xrpc://peerA/students.xml")/child::people/child::person),
       execute at {"peerB"} function () { count(doc("xrpc://peerB/course.xml")//node()) }) }|}

let q_update =
  {|for $p in doc("xrpc://peerA/students.xml")/child::people/child::person
    return (if (($p/child::age = 23)) then (delete node $p) else ())|}

let queries =
  [| q_readonly_remote; q_join; q_explicit_call; q_nested; q_update |]

let parse q = Xd_lang.Parser.parse_query q

(* Serialized state of every peer document — the update-visible world. *)
let world_state net =
  List.map
    (fun (host, name) ->
      let peer = Xd_xrpc.Network.find_peer net host in
      let d = Option.get (Xd_xrpc.Peer.find_doc peer name) in
      Xd_xml.Serializer.doc d)
    [ ("peerA", "students.xml"); ("peerB", "course.xml");
      ("client", "local.xml") ]

(* ---- random fault schedules -------------------------------------------- *)

let gen_rule =
  let open QCheck.Gen in
  let* target = oneofl [ ""; "peerA:"; "peerB:" ] in
  let* kind =
    oneofl [ "drop"; "dup"; "truncate"; "delay=0.3"; "crash=2"; "down" ]
  in
  let* prob = oneofl [ ""; "@0.2"; "@0.5"; "@1" ] in
  let* limit = oneofl [ ""; "#1"; "#3" ] in
  return (target ^ kind ^ prob ^ limit)

let gen_spec =
  let open QCheck.Gen in
  let* n = int_range 1 3 in
  let* rules = list_size (return n) gen_rule in
  return (String.concat ";" rules)

let arb_case =
  let open QCheck.Gen in
  let gen =
    let* qi = int_bound (Array.length queries - 1) in
    let* spec = gen_spec in
    let* seed = int_bound 9999 in
    return (qi, spec, seed)
  in
  QCheck.make
    ~print:(fun (qi, spec, seed) ->
      Printf.sprintf "query %d, spec %S, seed %d" qi spec seed)
    gen

let fault_of spec seed =
  match F.parse spec with
  | Ok s -> F.create ~seed s
  | Error e -> Alcotest.failf "generated an unparsable spec %S: %s" spec e

(* ---- the central property ---------------------------------------------- *)

(* One faulty run, classified. *)
let run_faulty ~strategy qi spec seed =
  let net, client = make_net ~fault:(fault_of spec seed) () in
  let q = parse queries.(qi) in
  match E.run ~timeout_s:0.5 ~retries:2 net ~client strategy q with
  | r -> (`Value r.E.value, world_state net)
  | exception M.Xrpc_fault _ -> (`Typed_failure, world_state net)
  | exception M.Xrpc_timeout _ -> (`Typed_failure, world_state net)

(* The reference outcome is a *fault-free distributed* run: test_random
   already pins E.run to the local semantics on values, and for updating
   queries only the distributed path routes the update to its owning
   peer (run_local leaves remote stores untouched). *)
let reference ?(strategy = S.By_fragment) qi =
  let net, client = make_net () in
  let q = parse queries.(qi) in
  let r = E.run net ~client strategy q in
  (r.E.value, world_state net)

let initial_state = lazy (world_state (fst (make_net ())))

let prop_no_silent_divergence strategy =
  qtest ~count:350
    (Printf.sprintf "any fault schedule: exact or typed failure (%s)"
       (S.to_string strategy))
    arb_case
    (fun (qi, spec, seed) ->
      match reference ~strategy qi with
      | exception _ ->
        (* a strategy that legitimately refuses this query fault-free
           (e.g. an update that cannot ship under it) is out of scope *)
        QCheck.assume_fail ()
      | ref_value, ref_state -> (
      match run_faulty ~strategy qi spec seed with
      | `Value v, state ->
        (* success must be exact: value AND document state *)
        Xd_lang.Value.deep_equal v ref_value && state = ref_state
      | `Typed_failure, state ->
        (* a typed failure may leave updates unapplied or applied (the
           response can be lost after the server committed) — but never
           double-applied or partially mangled *)
        state = ref_state || state = Lazy.force initial_state))

(* ---- determinism -------------------------------------------------------- *)

let stats_tuple net =
  let st = net.Xd_xrpc.Network.stats in
  let module St = Xd_xrpc.Stats in
  ( St.messages st,
    St.message_bytes st,
    St.documents_fetched st,
    St.document_bytes st,
    St.faults st,
    St.timeouts st,
    St.retries st,
    St.fallbacks st,
    St.dedup_hits st )

let prop_deterministic =
  qtest ~count:150 "same spec+seed => identical faults, stats and outcome"
    arb_case
    (fun (qi, spec, seed) ->
      let once () =
        let net, client = make_net ~fault:(fault_of spec seed) () in
        let q = parse queries.(qi) in
        let outcome =
          match E.run ~timeout_s:0.5 ~retries:2 net ~client S.By_fragment q with
          | r -> "value: " ^ Xd_lang.Value.serialize r.E.value
          | exception M.Xrpc_fault { code; _ } ->
            "fault: " ^ M.fault_code_to_string code
          | exception M.Xrpc_timeout { attempts; _ } ->
            Printf.sprintf "timeout after %d" attempts
        in
        (outcome, stats_tuple net, world_state net)
      in
      once () = once ())

(* ---- the fault layer is free when disabled ------------------------------ *)

let test_empty_spec_free () =
  List.iter
    (fun qi ->
      let run fault =
        let net, client = make_net ?fault () in
        let q = parse queries.(qi) in
        let r = E.run net ~client S.By_fragment q in
        (Xd_lang.Value.serialize r.E.value, stats_tuple net)
      in
      let plain = run None in
      let empty = run (Some (F.create [])) in
      check_bool
        (Printf.sprintf "query %d: empty spec = no fault layer" qi)
        (plain = empty))
    [ 0; 1; 2; 3 ]

(* ---- targeted scenarios -------------------------------------------------- *)

(* one dropped message: the retry completes the call exactly *)
let test_retry_recovers () =
  let net, client = make_net ~fault:(fault_of "drop@1#1" 0) () in
  let r = E.run net ~client S.By_fragment (parse q_readonly_remote) in
  check_string "value survives one drop" "4" (Xd_lang.Value.serialize r.E.value);
  check_bool "a timeout was waited out" (r.E.timing.E.timeouts >= 1);
  check_bool "the call was retried" (r.E.timing.E.retries >= 1)

(* a duplicated update request applies exactly once (server dedup) *)
let test_duplicate_update_applies_once () =
  let net, client = make_net ~fault:(fault_of "dup@1#1" 0) () in
  let r = E.run net ~client S.By_fragment (parse q_update) in
  ignore r.E.value;
  check_bool "duplicate answered from cache" (r.E.timing.E.dedup_hits >= 1);
  let _, ref_state = reference 4 in
  check_bool "update applied exactly once" (world_state net = ref_state)

(* a permanently-down peer with a read-only body degrades to data shipping *)
let test_down_peer_degrades () =
  let net, client = make_net ~fault:(fault_of "peerA:down" 0) () in
  let r = E.run net ~client S.By_fragment (parse q_explicit_call) in
  let ref_value, _ = reference 2 in
  check_bool "degraded result is exact"
    (Xd_lang.Value.deep_equal r.E.value ref_value);
  check_bool "fallback counted" (r.E.timing.E.fallbacks >= 1);
  check_bool "timeouts waited" (r.E.timing.E.timeouts >= 1)

(* an update body cannot degrade: typed timeout, document untouched *)
let test_down_peer_update_times_out () =
  let net, client = make_net ~fault:(fault_of "peerA:down" 0) () in
  check_bool "typed timeout"
    (match E.run net ~client S.By_fragment (parse q_update) with
    | exception M.Xrpc_timeout { host = "peerA"; _ } -> true
    | _ -> false);
  check_bool "document untouched"
    (world_state net = Lazy.force initial_state)

(* truncation surfaces as a retryable transport fault and is retried *)
let test_truncate_retried () =
  let net, client = make_net ~fault:(fault_of "truncate@1#1" 7) () in
  let r = E.run net ~client S.By_fragment (parse q_readonly_remote) in
  check_string "value survives truncation" "4"
    (Xd_lang.Value.serialize r.E.value);
  check_bool "fault injected" (r.E.timing.E.faults >= 1);
  check_bool "retried" (r.E.timing.E.retries >= 1)

(* spec parser round-trip and rejection *)
let test_spec_parse () =
  (match F.parse "peerA:drop@0.5#3;delay=0.25;dup" with
  | Ok spec ->
    check_int "three rules" 3 (List.length spec);
    check_string "round-trip" "peerA:drop@0.5#3;delay=0.25;dup"
      (F.spec_to_string spec)
  | Error e -> Alcotest.failf "spec should parse: %s" e);
  List.iter
    (fun bad ->
      check_bool
        (Printf.sprintf "%S rejected" bad)
        (match F.parse bad with Error _ -> true | Ok _ -> false))
    [ "explode"; "drop@nope"; "crash=x"; "drop#"; "peerA:" ]

let () =
  Alcotest.run "xd_faults"
    [
      ( "properties",
        [
          prop_no_silent_divergence S.By_fragment;
          prop_no_silent_divergence S.By_value;
          prop_no_silent_divergence S.By_projection;
          prop_deterministic;
        ] );
      ( "scenarios",
        [
          tc "empty spec is free" test_empty_spec_free;
          tc "retry recovers" test_retry_recovers;
          tc "duplicate update applies once" test_duplicate_update_applies_once;
          tc "down peer degrades" test_down_peer_degrades;
          tc "down peer update times out" test_down_peer_update_times_out;
          tc "truncation retried" test_truncate_retried;
          tc "spec parsing" test_spec_parse;
        ] );
    ]
