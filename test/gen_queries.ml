(* Shared random-query generator and fixed distributed database for the
   end-to-end property suites (test_random, test_verify).

   The generator deliberately produces queries with reverse and
   horizontal axes, node identity tests, node-set operations, repeated
   doc() applications and order-sensitive constructs — precisely the
   shapes the insertion conditions (and the plan verifier re-deriving
   them) exist to protect.

   Node-set expressions are kept single-source (each nodeseq subtree
   draws from one document): relative order between *different* documents
   is implementation-defined in XQuery, so cross-document unions may
   legitimately order differently between runs — single-source queries
   must agree exactly. *)

module Ast = Xd_lang.Ast

let sources =
  [|
    ("xrpc://peerA/students.xml", [| "people"; "person"; "name"; "tutor"; "id"; "age" |]);
    ("xrpc://peerB/course.xml", [| "enroll"; "exam"; "grade"; "topic" |]);
    ("local.xml", [| "conf"; "minage"; "wanted" |]);
  |]

let make_net ?fault ?journal_dir () =
  let net = Xd_xrpc.Network.create ?fault ?journal_dir () in
  let client = Xd_xrpc.Network.new_peer net "client" in
  let a = Xd_xrpc.Network.new_peer net "peerA" in
  let b = Xd_xrpc.Network.new_peer net "peerB" in
  ignore
    (Xd_xrpc.Peer.load_xml a ~doc_name:"students.xml"
       {|<people>
           <person id="s1"><name>Ann</name><tutor>Bob</tutor><id>1</id><age>23</age></person>
           <person id="s2"><name>Bob</name><tutor>Zoe</tutor><id>2</id><age>35</age></person>
           <person id="s3"><name>Cyd</name><tutor>Ann</tutor><id>3</id><age>29</age></person>
           <person id="s4"><name>Dan</name><tutor>Cyd</tutor><id>4</id><age>41</age></person>
         </people>|});
  ignore
    (Xd_xrpc.Peer.load_xml b ~doc_name:"course.xml"
       {|<enroll>
           <exam id="1"><grade>A</grade><topic>db</topic></exam>
           <exam id="2"><grade>C</grade><topic>os</topic></exam>
           <exam id="4"><grade>B</grade><topic>ml</topic></exam>
         </enroll>|});
  ignore
    (Xd_xrpc.Peer.load_xml client ~doc_name:"local.xml"
       {|<conf><minage>25</minage><wanted>db</wanted></conf>|});
  (net, client)

(* ---- generator --------------------------------------------------------- *)

open QCheck.Gen

(* Delay construction of a sub-generator until the surrounding generator
   actually runs.  [frequency] builds every branch eagerly, so without
   this the recursive generators below construct the *whole* branch tree
   on every call — exponentially many closures per query (hundreds of
   thousands of [gen_nodeseq] invocations, seconds per generated query).
   [delay] makes construction lazy without consuming any randomness, so
   the generated distribution (and the exact values for a given seed)
   are unchanged. *)
let delay f = return () >>= f

let fresh =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "g%d" !n

let gen_axis =
  frequencyl
    [
      (6, Ast.Child);
      (3, Ast.Descendant);
      (1, Ast.Descendant_or_self);
      (1, Ast.Self);
      (2, Ast.Attribute);
      (2, Ast.Parent);
      (1, Ast.Ancestor);
      (1, Ast.Following_sibling);
      (1, Ast.Preceding_sibling);
      (1, Ast.Following);
      (1, Ast.Preceding);
    ]

let gen_test names =
  frequency
    [
      (4, map (fun n -> Ast.Name_test n) (oneofa names));
      (2, return Ast.Kind_node);
      (1, return Ast.Wildcard);
      (1, return Ast.Kind_text);
    ]

(* a node sequence drawn from one source; [vars] are in-scope variables
   bound to nodes of the same source *)
let rec gen_nodeseq (uri, names) vars n =
  let base =
    frequency
      ((if vars = [] then []
        else [ (3, map (fun v -> Ast.var v) (oneofl vars)) ])
      @ [ (2, return (Ast.doc uri)) ])
  in
  if n <= 0 then base
  else
    frequency
      [
        (1, base);
        ( 6,
          map2
            (fun ctx (ax, t) -> Ast.step ctx ax t)
            (delay (fun () -> gen_nodeseq (uri, names) vars (n - 1)))
            (pair gen_axis (gen_test names)) );
        ( 2,
          map3
            (fun op a b -> Ast.mk (Ast.Node_set (op, a, b)))
            (oneofl [ Ast.Union; Ast.Intersect; Ast.Except ])
            (delay (fun () -> gen_nodeseq (uri, names) vars (n / 2)))
            (delay (fun () -> gen_nodeseq (uri, names) vars (n / 2))) );
        ( 2,
          (* for loop with an optional predicate *)
          delay (fun () -> gen_nodeseq (uri, names) vars (n / 2))
          >>= fun src ->
          let v = fresh () in
          gen_bool (uri, names) (v :: vars) (n / 2) >>= fun cond ->
          gen_nodeseq (uri, names) (v :: vars) (n / 2) >>= fun body ->
          return
            (Ast.mk
               (Ast.For
                  (v, src, Ast.mk (Ast.If (cond, body, Ast.empty_seq ()))))) );
        ( 1,
          (* let binding *)
          delay (fun () -> gen_nodeseq (uri, names) vars (n / 2))
          >>= fun value ->
          let v = fresh () in
          gen_nodeseq (uri, names) (v :: vars) (n / 2) >>= fun body ->
          return (Ast.mk (Ast.Let (v, value, body))) );
        ( 1,
          (* positional selection keeps sequences small *)
          map2
            (fun ns i -> Ast.fun_call "item-at" [ ns; Ast.int (1 + i) ])
            (delay (fun () -> gen_nodeseq (uri, names) vars (n - 1)))
            (int_bound 3) );
        ( 1,
          (* positional selection with a *computed*, provably numeric
             index (out-of-range indexes yield the empty sequence) *)
          map2
            (fun ns ns2 ->
              Ast.fun_call "item-at"
                [
                  ns;
                  Ast.mk
                    (Ast.Arith
                       (Ast.Add, Ast.int 1, Ast.fun_call "count" [ ns2 ]));
                ])
            (delay (fun () -> gen_nodeseq (uri, names) vars (n / 2)))
            (delay (fun () -> gen_nodeseq (uri, names) vars (n / 2))) );
        ( 1,
          (* sequence-reordering builtins: condition-iii mixers, the
             decomposer must not route their output into a remote step *)
          map2
            (fun ns i ->
              match i with
              | 0 -> Ast.fun_call "reverse" [ ns ]
              | _ -> Ast.fun_call "remove" [ ns; Ast.int i ])
            (delay (fun () -> gen_nodeseq (uri, names) vars (n - 1)))
            (int_bound 2) );
      ]

and gen_bool (uri, names) vars n =
  if n <= 0 then return (Ast.literal (Ast.A_bool true))
  else
    frequency
      [
        ( 4,
          map3
            (fun ns op k -> Ast.mk (Ast.Value_cmp (op, ns, Ast.int k)))
            (delay (fun () -> gen_nodeseq (uri, names) vars (n - 1)))
            (oneofl [ Ast.Eq; Ast.Ne; Ast.Lt; Ast.Gt ])
            (int_bound 45) );
        ( 3,
          map2
            (fun a b -> Ast.mk (Ast.Value_cmp (Ast.Eq, a, b)))
            (delay (fun () -> gen_nodeseq (uri, names) vars (n / 2)))
            (delay (fun () -> gen_nodeseq (uri, names) vars (n / 2))) );
        ( 2,
          map
            (fun ns -> Ast.fun_call "exists" [ ns ])
            (delay (fun () -> gen_nodeseq (uri, names) vars (n - 1))) );
        ( 2,
          (* node identity / order on singletons *)
          map3
            (fun op a b ->
              Ast.mk
                (Ast.Node_cmp
                   ( op,
                     Ast.fun_call "item-at" [ a; Ast.int 1 ],
                     Ast.fun_call "item-at" [ b; Ast.int 1 ] )))
            (oneofl [ Ast.Is; Ast.Precedes; Ast.Follows ])
            (delay (fun () -> gen_nodeseq (uri, names) vars (n / 2)))
            (delay (fun () -> gen_nodeseq (uri, names) vars (n / 2))) );
        ( 1,
          map2
            (fun a b -> Ast.mk (Ast.And (a, b)))
            (delay (fun () -> gen_bool (uri, names) vars (n / 2)))
            (delay (fun () -> gen_bool (uri, names) vars (n / 2))) );
      ]

(* a provably atomic *numeric* expression — the shapes the typing pass
   proves node-free (and often cardinality-one), so the widened insertion
   conditions may ship them where the structural conditions would refuse.
   Division and idiv/mod are avoided: a generated zero denominator would
   turn a typing test into a dynamic-error test. *)
let rec gen_numeric source vars n =
  if n <= 0 then map Ast.int (int_bound 9)
  else
    frequency
      [
        ( 3,
          map
            (fun ns -> Ast.fun_call "count" [ ns ])
            (delay (fun () -> gen_nodeseq source vars (n - 1))) );
        ( 2,
          map3
            (fun op a b -> Ast.mk (Ast.Arith (op, a, b)))
            (oneofl [ Ast.Add; Ast.Sub; Ast.Mul ])
            (delay (fun () -> gen_numeric source vars (n / 2)))
            (delay (fun () -> gen_numeric source vars (n / 2))) );
        ( 1,
          map
            (fun ns ->
              Ast.fun_call "string-length"
                [
                  Ast.fun_call "string"
                    [ Ast.fun_call "item-at" [ ns; Ast.int 1 ] ];
                ])
            (delay (fun () -> gen_nodeseq source vars (n - 1))) );
        ( 1,
          map
            (fun ns -> Ast.fun_call "sum" [ Ast.fun_call "data" [ ns ] ])
            (delay (fun () -> gen_nodeseq source vars (n - 1))) );
        (1, map Ast.int (int_bound 20));
      ]

(* a provably atomic *string* expression *)
let gen_string source vars n =
  let first ns =
    Ast.fun_call "string" [ Ast.fun_call "item-at" [ ns; Ast.int 1 ] ]
  in
  frequency
    [
      (2, map first (delay (fun () -> gen_nodeseq source vars n)));
      ( 2,
        map2
          (fun ns i ->
            Ast.fun_call
              (if i = 0 then "upper-case" else "lower-case")
              [ first ns ])
          (delay (fun () -> gen_nodeseq source vars n))
          (int_bound 1) );
      ( 1,
        map2
          (fun ns i ->
            Ast.fun_call "substring"
              [ first ns; Ast.int 1; Ast.int (1 + i) ])
          (delay (fun () -> gen_nodeseq source vars n))
          (int_bound 4) );
      ( 1,
        map2
          (fun a b -> Ast.fun_call "concat" [ a; Ast.str "-"; b ])
          (map first (delay (fun () -> gen_nodeseq source vars (n / 2))))
          (map first (delay (fun () -> gen_nodeseq source vars (n / 2)))) );
    ]

(* an order-insensitive atomic observation of a node sequence *)
let gen_atom source vars n =
  frequency
    [
      ( 3,
        map
          (fun ns -> Ast.fun_call "count" [ ns ])
          (delay (fun () -> gen_nodeseq source vars n)) );
      ( 2,
        map
          (fun ns ->
            let v = fresh () in
            Ast.fun_call "string-join"
              [
                Ast.mk
                  (Ast.For (v, ns, Ast.fun_call "name" [ Ast.var v ]));
                Ast.str "-";
              ])
          (delay (fun () -> gen_nodeseq source vars n)) );
      ( 2,
        map
          (fun ns ->
            let v = fresh () in
            Ast.fun_call "string-join"
              [
                Ast.mk
                  (Ast.For (v, ns, Ast.fun_call "string" [ Ast.var v ]));
                Ast.str "|";
              ])
          (delay (fun () -> gen_nodeseq source vars n)) );
      ( 1,
        map
          (fun b -> Ast.fun_call "string" [ b ])
          (delay (fun () -> gen_bool source vars n)) );
      ( 2,
        (* arithmetic over provably atomic subexpressions *)
        map
          (fun x -> Ast.fun_call "string" [ x ])
          (delay (fun () -> gen_numeric source vars n)) );
      (1, delay (fun () -> gen_string source vars n));
      ( 1,
        (* comparison between atomic expressions of two (possibly
           different) sources: both operands are provably atomic, so the
           typed decomposer may push either side independently *)
        oneofa sources >>= fun src2 ->
        map3
          (fun op a b ->
            Ast.fun_call "string" [ Ast.mk (Ast.Value_cmp (op, a, b)) ])
          (oneofl [ Ast.Eq; Ast.Lt; Ast.Ge ])
          (delay (fun () -> gen_numeric source vars (n / 2)))
          (delay (fun () -> gen_numeric src2 [] (n / 2))) );
    ]

(* a whole query: a sequence of observations, possibly over different
   sources, plus one node-valued result from a single source *)
let gen_query =
  sized @@ fun size ->
  let n = 2 + min size 5 in
  list_size (int_range 1 3)
    (oneofa sources >>= fun src -> gen_atom src [] n)
  >>= fun atoms ->
  oneofa sources >>= fun src ->
  gen_nodeseq src [] n >>= fun ns ->
  return { Ast.funcs = []; body = Ast.seq (atoms @ [ ns ]) }

let arb_query =
  QCheck.make ~print:(fun q -> Xd_lang.Pp.query_to_string q) gen_query
