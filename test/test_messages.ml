(* Tests for the XRPC wire protocol (Fig. 1, 4, 5): the three message
   formats, fragment deduplication, fragid/nodeid references, origin
   back-references across round trips, and the static-context attributes. *)

module X = Xd_xml
module M = Xd_xrpc.Message
module V = Xd_lang.Value
open Util

let setup () =
  let net = Xd_xrpc.Network.create () in
  let client = Xd_xrpc.Network.new_peer net "client" in
  let server = Xd_xrpc.Network.new_peer net "example.org" in
  (net, client, server)

let run_remote ?(passing = M.By_fragment) ~client_docs ~server_docs query =
  let net, client, server = setup () in
  List.iter (fun (n, x) -> ignore (Xd_xrpc.Peer.load_xml client ~doc_name:n x)) client_docs;
  List.iter (fun (n, x) -> ignore (Xd_xrpc.Peer.load_xml server ~doc_name:n x)) server_docs;
  let record = ref [] in
  let session = Xd_xrpc.Session.create ~record net client passing in
  let q = Xd_lang.Parser.parse_query query in
  let v = Xd_xrpc.Session.execute session q in
  (v, List.rev !record, net)

let messages recorded =
  List.map (fun r -> r.Xd_xrpc.Session.text) recorded

let contains hay needle =
  let n = String.length needle in
  let found = ref false in
  for i = 0 to String.length hay - n do
    if (not !found) && String.sub hay i n = needle then found := true
  done;
  !found

(* ---- basic round trips ---------------------------------------------------- *)

let test_atomic_roundtrip () =
  let v, msgs, _ =
    run_remote ~client_docs:[] ~server_docs:[]
      {|execute at {"example.org"} function ($x := 21) { $x * 2 }|}
  in
  check_string "atomic result" "42" (V.serialize v);
  check_int "two messages" 2 (List.length msgs);
  check_bool "typed atomic in request"
    (contains (List.nth (messages msgs) 0) "<atomic type=\"integer\">21</atomic>")

let test_string_escaping () =
  let v, _, _ =
    run_remote ~client_docs:[] ~server_docs:[]
      {|execute at {"example.org"} function ($x := "a<b&c") { concat($x, "!") }|}
  in
  check_string "escaped string round-trips" "a<b&c!" (V.serialize v)

let test_node_result_by_fragment () =
  let v, msgs, _ =
    run_remote
      ~server_docs:[ ("d.xml", "<r><a>1</a><a>2</a></r>") ]
      ~client_docs:[]
      {|execute at {"example.org"} function () { doc("d.xml")/child::r/child::a }|}
  in
  check_string "nodes shipped back" "<a>1</a><a>2</a>" (V.serialize v);
  let resp = List.nth (messages msgs) 1 in
  check_bool "response has fragments" (contains resp "<fragments><fragment");
  check_bool "response has node refs" (contains resp "<node o=")

let test_by_value_copies () =
  let v, msgs, _ =
    run_remote ~passing:M.By_value
      ~server_docs:[ ("d.xml", "<r><a>1</a></r>") ]
      ~client_docs:[]
      {|execute at {"example.org"} function () { doc("d.xml")/child::r/child::a }|}
  in
  check_string "deep copies arrive" "<a>1</a>" (V.serialize v);
  let resp = List.nth (messages msgs) 1 in
  check_bool "by-value uses <copy>" (contains resp "<copy kind=\"element\"");
  check_bool "no fragments section content" (contains resp "<fragments></fragments>")

(* ---- Fig. 4: fragment dedup and references -------------------------------- *)

let test_fragment_dedup () =
  (* ship $bc and $abc where $bc is inside $abc: one fragment only *)
  let v, msgs, _ =
    run_remote
      ~client_docs:[ ("local.xml", "<a><b><c/></b></a>") ]
      ~server_docs:[]
      {|let $abc := doc("local.xml")/child::a
        let $bc := $abc/child::b
        return execute at {"example.org"} function ($l := $bc, $r := $abc)
               { if ($l << $r) then "l-first" else "r-first" }|}
  in
  (* $abc is the parent: document order puts it first, even though it is
     the *second* parameter — exactly the earlier() scenario of Problem 3 *)
  check_string "order preserved in message" "r-first" (V.serialize v);
  let req = List.nth (messages msgs) 0 in
  let count_occurrences s sub =
    let n = String.length sub in
    let c = ref 0 in
    for i = 0 to String.length s - n do
      if String.sub s i n = sub then incr c
    done;
    !c
  in
  check_int "single fragment for nested params" 1
    (count_occurrences req "<fragment ");
  check_bool "b serialized once" (count_occurrences req "<b><c/></b>" = 1)

let test_fragid_nodeid () =
  let _, msgs, _ =
    run_remote
      ~client_docs:[ ("local.xml", "<a><b><c/></b></a>") ]
      ~server_docs:[]
      {|let $abc := doc("local.xml")/child::a
        let $bc := $abc/child::b
        return execute at {"example.org"} function ($l := $bc, $r := $abc)
               { count(($l, $r)) }|}
  in
  let req = List.nth (messages msgs) 0 in
  (* $abc is the fragment root: nodeid 1; $bc is its first child: nodeid 2
     (the paper's Fig. 4 numbering) *)
  check_bool "bc -> nodeid 2"
    (contains req "fragid=\"1\" nodeid=\"2\"");
  check_bool "abc -> nodeid 1"
    (contains req "fragid=\"1\" nodeid=\"1\"")

let test_multi_document_fragments () =
  (* parameters from two different documents travel as two fragments, in
     global document order, and keep their cross-document order remotely *)
  let v, msgs, _ =
    run_remote
      ~client_docs:[ ("a.xml", "<ra><x/></ra>"); ("b.xml", "<rb><y/></rb>") ]
      ~server_docs:[]
      {|let $x := doc("a.xml")/child::ra/child::x
        let $y := doc("b.xml")/child::rb/child::y
        return execute at {"example.org"} function ($l := $x, $r := $y)
               { if ($l << $r) then "a-first" else "b-first" }|}
  in
  check_string "cross-document order preserved" "a-first" (V.serialize v);
  let req = List.nth (messages msgs) 0 in
  let count_occurrences s sub =
    let n = String.length sub in
    let c = ref 0 in
    for i = 0 to String.length s - n do
      if String.sub s i n = sub then incr c
    done;
    !c
  in
  check_int "two fragments" 2 (count_occurrences req "<fragment ")

let test_identity_preserved_within_message () =
  let v, _, _ =
    run_remote
      ~client_docs:[ ("local.xml", "<a><b><c/></b></a>") ]
      ~server_docs:[]
      {|let $abc := doc("local.xml")/child::a
        let $bc := $abc/child::b
        return execute at {"example.org"} function ($l := $bc, $r := $abc)
               { string(count($l//child::* intersect $r//child::*)) }|}
  in
  (* $l's descendants are a subset of $r's: intersection non-empty *)
  check_bool "overlap detected remotely" (V.serialize v <> "0")

(* ---- origin back-references ------------------------------------------------ *)

let test_param_returned_is_original () =
  (* a remote function returning its own parameter must hand back the
     caller's original node, not a copy (session origin tracking) *)
  let v, _, _ =
    run_remote
      ~client_docs:[ ("local.xml", "<r><x/></r>") ]
      ~server_docs:[]
      {|let $n := doc("local.xml")/child::r/child::x
        let $back := execute at {"example.org"} function ($p := $n) { $p }
        return string($back is $n)|}
  in
  check_string "identity survives the round trip" "true" (V.serialize v)

let test_attribute_param () =
  let v, msgs, _ =
    run_remote
      ~client_docs:[ ("local.xml", {|<r><x id="i7"/></r>|}) ]
      ~server_docs:[]
      {|let $a := doc("local.xml")/child::r/child::x/attribute::id
        return execute at {"example.org"} function ($p := $a) { string($p) }|}
  in
  check_string "attribute value readable remotely" "i7" (V.serialize v);
  check_bool "attr-ref in request"
    (contains (List.nth (messages msgs) 0) "<attr-ref")

let test_repeat_call_fragments_cached () =
  (* the same nodes shipped by two calls of one session travel once *)
  let _, msgs, _ =
    run_remote
      ~client_docs:[ ("local.xml", "<r><x>abcdefghij</x></r>") ]
      ~server_docs:[]
      {|let $n := doc("local.xml")/child::r/child::x
        let $a := execute at {"example.org"} function ($p := $n) { string($p) }
        let $b := execute at {"example.org"} function ($p := $n) { string-length($p) }
        return concat($a, "-", string($b))|}
  in
  let reqs =
    List.filter_map
      (fun r ->
        match r.Xd_xrpc.Session.dir with
        | `Request t -> Some t
        | `Response _ -> None)
      msgs
  in
  check_int "two requests" 2 (List.length reqs);
  check_bool "first request carries the fragment"
    (contains (List.nth reqs 0) "abcdefghij");
  check_bool "second request does not re-ship"
    (not (contains (List.nth reqs 1) "abcdefghij"))

(* ---- static context (Problem 5 class 1) ------------------------------------ *)

let test_static_context_propagated () =
  let v, _, _ =
    run_remote ~client_docs:[] ~server_docs:[]
      {|execute at {"example.org"} function ()
        { concat(string(static-base-uri()), "|", string(default-collation())) }|}
  in
  check_string "remote sees the caller's static context"
    "xdx://static/|codepoint" (V.serialize v)

let test_xrpc_wrapper_builtins () =
  (* the paper's xrpc:base-uri()/xrpc:document-uri() wrappers exist and
     coincide with the plain functions in this design *)
  let v, _, _ =
    run_remote
      ~client_docs:[ ("local.xml", "<r><x/></r>") ]
      ~server_docs:[]
      {|let $n := doc("local.xml")/child::r/child::x
        return execute at {"example.org"} function ($p := $n)
               { string(xrpc:base-uri($p)) }|}
  in
  check_string "xrpc:base-uri wrapper" "local.xml" (V.serialize v)

let test_base_uri_of_shipped_node () =
  (* Problem 5 class 2: fn:base-uri on a shipped node *)
  let v, _, _ =
    run_remote
      ~client_docs:[ ("local.xml", "<r><x/></r>") ]
      ~server_docs:[]
      {|let $n := doc("local.xml")/child::r/child::x
        return execute at {"example.org"} function ($p := $n) { string(base-uri($p)) }|}
  in
  check_string "base-uri travels in the fragment" "local.xml" (V.serialize v)

(* ---- projection messages (Fig. 5) ------------------------------------------- *)

let test_projection_paths_element () =
  let net, client, server = setup () in
  ignore
    (Xd_xrpc.Peer.load_xml server ~doc_name:"d.xml"
       "<r><p><id>1</id><blob>xxxxxxxxxxxxxxxxxxxxxx</blob></p></r>");
  ignore net;
  let record = ref [] in
  let session = Xd_xrpc.Session.create ~record net client M.By_projection in
  (* hand-build an execute-at with projection paths: the caller only needs
     child::id of the result *)
  let q =
    Xd_lang.Parser.parse_query
      {|(execute at {"example.org"} function () { doc("d.xml")/child::r/child::p })/child::id|}
  in
  (* fill paths like the decomposer would *)
  Xd_core.Projection_fill.fill ~funcs:[] q.Xd_lang.Ast.body;
  let v = Xd_xrpc.Session.execute session q in
  check_string "result" "<id>1</id>" (V.serialize v);
  let msgs = List.map (fun r -> r.Xd_xrpc.Session.text) (List.rev !record) in
  check_bool "request announces projection paths"
    (contains (List.nth msgs 0) "<projection-paths>");
  check_bool "request asks for child::id"
    (contains (List.nth msgs 0) "<returned-path>child::id</returned-path>");
  check_bool "response omits the blob"
    (not (contains (List.nth msgs 1) "xxxxxxxxxx"))

let test_projection_reverse_axis_response () =
  (* the makenodes() scenario of Fig. 5: the caller navigates parent:: on
     the result, so the response must include the ancestor *)
  let net, client, _server = setup () in
  let record = ref [] in
  let session = Xd_xrpc.Session.create ~record net client M.By_projection in
  let q =
    Xd_lang.Parser.parse_query
      {|declare function makenodes() { (element a { element b { element c {()} } })/child::b };
        (execute at {"example.org"} { makenodes() })/parent::a|}
  in
  Xd_core.Projection_fill.fill ~funcs:q.Xd_lang.Ast.funcs q.Xd_lang.Ast.body;
  let v = Xd_xrpc.Session.execute session q in
  check_string "parent reachable on shipped node" "<a><b><c/></b></a>"
    (V.serialize v);
  let msgs = List.map (fun r -> r.Xd_xrpc.Session.text) (List.rev !record) in
  check_bool "returned-path parent::a in request"
    (contains (List.nth msgs 0) "<returned-path>parent::a</returned-path>")

let test_schema_aware_projection () =
  (* with a schema, mandatory children of projected elements survive even
     though the query never touches them *)
  let net, client, server = setup () in
  ignore
    (Xd_xrpc.Peer.load_xml server ~doc_name:"d.xml"
       "<r><rec><key>1</key><mandatory>m</mandatory><optional>o</optional></rec></r>");
  ignore client;
  let schema = function "rec" -> [ "mandatory" ] | _ -> [] in
  let run ?schema () =
    let record = ref [] in
    let session =
      Xd_xrpc.Session.create ~record ?schema net client M.By_projection
    in
    let q =
      Xd_lang.Parser.parse_query
        {|(execute at {"example.org"} function () { doc("d.xml")/child::r/child::rec })/child::key|}
    in
    Xd_core.Projection_fill.fill ~funcs:[] q.Xd_lang.Ast.body;
    let v = Xd_xrpc.Session.execute session q in
    (V.serialize v, List.map (fun r -> r.Xd_xrpc.Session.text) (List.rev !record))
  in
  let v_plain, msgs_plain = run () in
  let v_schema, msgs_schema = run ~schema () in
  check_string "plain result" "<key>1</key>" v_plain;
  check_string "schema result" "<key>1</key>" v_schema;
  check_bool "plain response drops the mandatory element"
    (not (contains (List.nth msgs_plain 1) "<mandatory>"));
  check_bool "schema-aware response keeps it"
    (contains (List.nth msgs_schema 1) "<mandatory>m</mandatory>");
  check_bool "optional element still dropped"
    (not (contains (List.nth msgs_schema 1) "<optional>"))

let test_id_on_shipped_nodes () =
  (* Problem 5 class 4: fn:id on a shipped node works under by-projection
     because the Id_fn pseudo-step conserves all ID-carrying elements of
     the context document *)
  let net, client, _server = setup () in
  let record = ref [] in
  let session = Xd_xrpc.Session.create ~record net client M.By_projection in
  let q =
    Xd_lang.Parser.parse_query
      {|let $part := execute at {"example.org"}
                    function () { doc("d.xml")/child::db/child::hub }
        return string(id("n1", $part)/child::label)|}
  in
  let _server =
    let p = Xd_xrpc.Network.find_peer net "example.org" in
    Xd_xrpc.Peer.load_xml p ~doc_name:"d.xml"
      {|<db><node id="n1"><label>first</label></node><hub><x/></hub><node id="n2"><label>second</label></node></db>|}
  in
  Xd_core.Projection_fill.fill ~funcs:[] q.Xd_lang.Ast.body;
  let v = Xd_xrpc.Session.execute session q in
  check_string "id() resolves on the shipped projection" "first"
    (V.serialize v);
  (* the id() demand forced the ID-carrying elements into the response *)
  let msgs = List.map (fun r -> r.Xd_xrpc.Session.text) (List.rev !record) in
  check_bool "request announces the id() path"
    (contains (List.nth msgs 0) "id()")

(* ---- properties: random trees through the wire ------------------------------ *)

(* Shipping arbitrary node-valued parameters and getting them back must be
   value-preserving under every passing semantics, and identity-preserving
   under by-fragment/by-projection (origin tracking). *)
let prop_param_roundtrip passing name =
  Util.qtest ~count:80 name Util.arb_tree (fun t ->
      let net, client, _server = setup () in
      let doc =
        Xd_xml.Store.add
          (Xd_xrpc.Peer.store client)
          (X.Doc.of_tree ~uri:"p.xml" (Util.root_of_tree t))
      in
      let n = X.Node.of_tree doc 1 in
      let session = Xd_xrpc.Session.create net client passing in
      let q =
        Xd_lang.Parser.parse_query
          {|execute at {"example.org"} function ($p := doc("p.xml")/child::root) { $p }|}
      in
      let v = Xd_xrpc.Session.execute session q in
      match v with
      | [ V.N back ] ->
        X.Deep_equal.equal back n
        && (passing = M.By_value || X.Node.same back n)
      | _ -> false)

let prop_roundtrip_by_value =
  prop_param_roundtrip M.By_value "by-value round trip preserves values"

let prop_roundtrip_by_fragment =
  prop_param_roundtrip M.By_fragment
    "by-fragment round trip preserves identity"

let prop_roundtrip_by_projection =
  prop_param_roundtrip M.By_projection
    "by-projection round trip preserves identity"

(* remote counting over shipped subtrees agrees with local counting *)
let prop_remote_count =
  Util.qtest ~count:80 "remote count = local count" Util.arb_tree (fun t ->
      let net, client, _ = setup () in
      let doc =
        Xd_xml.Store.add
          (Xd_xrpc.Peer.store client)
          (X.Doc.of_tree ~uri:"p.xml" (Util.root_of_tree t))
      in
      let local =
        List.length (X.Node.descendants (X.Node.of_tree doc 1))
      in
      let session = Xd_xrpc.Session.create net client M.By_fragment in
      let q =
        Xd_lang.Parser.parse_query
          {|execute at {"example.org"} function ($p := doc("p.xml")/child::root)
            { count($p/descendant::node()) }|}
      in
      V.serialize (Xd_xrpc.Session.execute session q) = string_of_int local)

(* ---- malformed messages ------------------------------------------------------ *)

let test_malformed_rejected () =
  (* malformed requests never raise through the server: they come back as
     proper <env:Fault> envelopes with a code from the taxonomy *)
  let net, client, _ = setup () in
  let session = Xd_xrpc.Session.create net client M.By_fragment in
  let fault_of txt =
    let resp = Xd_xrpc.Session.handle_request session ~client_name:"client" txt in
    let root = X.Node.doc_node (X.Parser.parse_doc ~strip_ws:false resp) in
    let rec find n = function
      | [] -> Some n
      | name :: rest -> (
        match
          List.find_opt
            (fun c -> X.Node.kind c = X.Node.Element && X.Node.name c = name)
            (X.Node.children n)
        with
        | Some c -> find c rest
        | None -> None)
    in
    match find root [ "env:Envelope"; "env:Body"; "env:Fault" ] with
    | Some f -> Some (fst (M.parse_fault f))
    | None -> None
  in
  let is_fault code txt = fault_of txt = Some code in
  (* the XML layer is lenient with bare text, so "garbage" parses but has
     no envelope; actually broken markup is a transport-class fault *)
  check_bool "not xml" (is_fault M.Protocol_malformed "garbage");
  check_bool "truncated"
    (is_fault M.Transport_corrupt "<env:Envelope><env:Body>");
  check_bool "wrong envelope" (is_fault M.Protocol_malformed "<env:Envelope/>");
  check_bool "missing query"
    (is_fault M.Protocol_malformed
       "<env:Envelope><env:Body><request passing=\"by-fragment\"><fragments/><call/></request></env:Body></env:Envelope>");
  check_bool "missing call"
    (is_fault M.Protocol_malformed
       "<env:Envelope><env:Body><request passing=\"by-fragment\"><query>1</query></request></env:Body></env:Envelope>");
  check_bool "bad passing mode"
    (is_fault M.Protocol_malformed
       "<env:Envelope><env:Body><request passing=\"by-wormhole\"><query>1</query><call/></request></env:Body></env:Envelope>");
  (* raw '<' inside an attribute value is ill-formed XML (production
     [10]); both the tree and event parsers must reject it so the
     compiled and generic paths agree on the rejection set *)
  check_bool "raw '<' in attribute value"
    (is_fault M.Transport_corrupt
       "<env:Envelope><env:Body><request passing=\"by<value\"><query>1</query><call/></request></env:Body></env:Envelope>")

(* ---- deadlines & retry-after (PROTOCOL.md, "Deadlines & overload") --------- *)

(* The request a session with a budget actually puts on the wire. *)
let deadline_request () =
  let net, client, _ = setup () in
  let record = ref [] in
  let session =
    Xd_xrpc.Session.create ~record ~deadline:5.0 net client M.By_fragment
  in
  ignore
    (Xd_xrpc.Session.execute session
       (Xd_lang.Parser.parse_query
          {|execute at {"example.org"} function () { 1 }|}));
  List.hd (messages (List.rev !record))

let server_fault_of txt =
  let net, client, _ = setup () in
  let session = Xd_xrpc.Session.create net client M.By_fragment in
  let resp = Xd_xrpc.Session.handle_request session ~client_name:"client" txt in
  let root = X.Node.doc_node (X.Parser.parse_doc ~strip_ws:false resp) in
  let rec find n = function
    | [] -> Some n
    | name :: rest -> (
      match
        List.find_opt
          (fun c -> X.Node.kind c = X.Node.Element && X.Node.name c = name)
          (X.Node.children n)
      with
      | Some c -> find c rest
      | None -> None)
  in
  match find root [ "env:Envelope"; "env:Body"; "env:Fault" ] with
  | Some f -> Some (fst (M.parse_fault f))
  | None -> None

let test_deadline_on_wire () =
  let req = deadline_request () in
  check_bool "fixed-width attribute stamped"
    (contains req " deadline=\"00000005.000000\"");
  (* the hidden ranges the fault layer must skip cover exactly that
     attribute *)
  check_bool "one hidden range" (List.length (M.overload_ranges req) = 1)

let test_malformed_deadline () =
  let req = deadline_request () in
  let swap value =
    (* splice a same-width replacement over the stamped 15-char value *)
    let marker = " deadline=\"" in
    let rec find i =
      if String.sub req i (String.length marker) = marker then
        i + String.length marker
      else find (i + 1)
    in
    let at = find 0 in
    String.sub req 0 at ^ value
    ^ String.sub req (at + 15) (String.length req - at - 15)
  in
  check_bool "garbage deadline answered with protocol.malformed"
    (server_fault_of (swap "not-a-number!!!") = Some M.Protocol_malformed);
  check_bool "negative deadline answered with protocol.malformed"
    (server_fault_of (swap "-0000005.000000") = Some M.Protocol_malformed);
  check_bool "control: the unmangled request is answered"
    (server_fault_of req = None)

let test_malformed_retry_after () =
  let fault_elem txt =
    let root = X.Node.doc_node (X.Parser.parse_doc ~strip_ws:false txt) in
    let rec dig n =
      if X.Node.kind n = X.Node.Element && X.Node.name n = "env:Fault" then
        Some n
      else List.find_map dig (X.Node.children n)
    in
    Option.get (dig root)
  in
  let good =
    M.write_fault ~retry_after:0.25 ~code:M.Server_overloaded
      ~reason:"queue full" ()
  in
  (match M.parse_retry_after (fault_elem good) with
  | Some s -> check_bool "retry-after round-trips" (Float.abs (s -. 0.25) < 1e-9)
  | None -> check_bool "retry-after present" false);
  check_bool "overloaded is retryable" (M.retryable M.Server_overloaded);
  check_bool "deadline.exceeded is not" (not (M.retryable M.Deadline_exceeded));
  (* a corrupted or negative suggestion is a protocol error, never a
     silent ignore or a leaked native exception *)
  let mangle value =
    let marker = " retry-after=\"" in
    let rec find i =
      if String.sub good i (String.length marker) = marker then
        i + String.length marker
      else find (i + 1)
    in
    let at = find 0 in
    String.sub good 0 at ^ value
    ^ String.sub good (at + 8) (String.length good - at - 8)
  in
  let rejects value =
    match M.parse_retry_after (fault_elem (mangle value)) with
    | exception M.Protocol_error _ -> true
    | _ -> false
  in
  check_bool "garbage retry-after rejected" (rejects "huh?!%$#");
  check_bool "negative retry-after rejected" (rejects "-00.2500")

(* ---- topology envelopes ------------------------------------------------------ *)

let first_elem txt =
  let root = X.Node.doc_node (X.Parser.parse_doc ~strip_ws:false txt) in
  List.find
    (fun c -> X.Node.kind c = X.Node.Element)
    (X.Node.children root)

let test_forward_roundtrip () =
  let d, o, e =
    M.parse_forward
      (first_elem (M.forward_body ~doc:"d.xml" ~owner:"peer2" ~epoch:3))
  in
  check_string "doc" "d.xml" d;
  check_string "owner" "peer2" o;
  check_int "epoch" 3 e

let test_malformed_forward () =
  (* a redirect whose own structure is broken is a protocol error, never a
     leaked native exception *)
  let bad txt =
    match M.parse_forward (first_elem txt) with
    | exception M.Protocol_error _ -> true
    | _ -> false
  in
  check_bool "missing owner" (bad {|<forward doc="d.xml" epoch="1"/>|});
  check_bool "empty owner"
    (bad {|<forward doc="d.xml" owner="" epoch="1"/>|});
  check_bool "bad epoch"
    (bad {|<forward doc="d.xml" owner="p" epoch="soon"/>|});
  check_bool "missing epoch" (bad {|<forward doc="d.xml" owner="p"/>|});
  check_bool "missing doc" (bad {|<forward owner="p" epoch="1"/>|})

let test_catalog_roundtrip () =
  let cat =
    match Xd_topo.Catalog.of_spec "peer1/d.xml+peer2+peer3;peer2/e.xml" with
    | Ok c -> c
    | Error e -> failwith e
  in
  Xd_topo.Catalog.move cat ~doc:"e.xml" ~owner:"peer1";
  Xd_topo.Catalog.mark_down cat "peer3";
  let cat' = M.parse_catalog (first_elem (M.catalog_body cat)) in
  check_int "epoch survives" (Xd_topo.Catalog.epoch cat)
    (Xd_topo.Catalog.epoch cat');
  check_bool "entries survive"
    (Xd_topo.Catalog.entries cat = Xd_topo.Catalog.entries cat');
  check_bool "members and liveness survive"
    (Xd_topo.Catalog.members cat = Xd_topo.Catalog.members cat')

let test_malformed_catalog () =
  let bad txt =
    match M.parse_catalog (first_elem txt) with
    | exception M.Protocol_error _ -> true
    | _ -> false
  in
  check_bool "bad epoch" (bad {|<catalog epoch="x"/>|});
  check_bool "missing epoch" (bad {|<catalog/>|});
  check_bool "entry missing owner"
    (bad {|<catalog epoch="0"><entry doc="d.xml"/></catalog>|});
  check_bool "entry empty doc"
    (bad {|<catalog epoch="0"><entry doc="" owner="p"/></catalog>|});
  check_bool "member bad up"
    (bad
       {|<catalog epoch="0"><member peer="p" up="maybe"/></catalog>|});
  check_bool "member missing peer"
    (bad {|<catalog epoch="0"><member up="true"/></catalog>|})

let test_malformed_topo_envelopes_answered_with_faults () =
  (* over the wire, broken topology envelopes come back as typed
     <env:Fault>s from the server, like every other malformed message *)
  let net, client, _ = setup () in
  let session = Xd_xrpc.Session.create net client M.By_fragment in
  let respond txt =
    Xd_xrpc.Session.handle_request session ~client_name:"client" txt
  in
  let env body = "<env:Envelope><env:Body>" ^ body ^ "</env:Body></env:Envelope>" in
  check_bool "forward in request position is malformed"
    (contains
       (respond (env {|<forward doc="d.xml" owner="p" epoch="1"/>|}))
       "xrpc:protocol.malformed");
  check_bool "catalog push with bad epoch is malformed"
    (contains
       (respond (env {|<catalog epoch="soon"/>|}))
       "xrpc:protocol.malformed");
  check_bool "catalog push with broken entry is malformed"
    (contains
       (respond (env {|<catalog epoch="0"><entry doc="d.xml"/></catalog>|}))
       "xrpc:protocol.malformed");
  check_bool "well-formed catalog push is acked with its epoch"
    (contains
       (respond
          (env {|<catalog epoch="7"><entry doc="d.xml" owner="p"/></catalog>|}))
       {|<catalog-ack epoch="7"|})

(* ---- the optional <trace> telemetry header -------------------------------- *)

let test_trace_header_roundtrip () =
  let env =
    "<env:Envelope><env:Body><xrpc:request/></env:Body></env:Envelope>"
  in
  let hdr = M.trace_header ~trace_id:"ab12cd" ~span_id:"f3" in
  let injected, at, len = M.inject_trace_header env ~header:hdr in
  check_bool "inserted right after <env:Body>"
    (at = String.length "<env:Envelope><env:Body>");
  check_int "reported header length" (String.length hdr) len;
  check_bool "payload unchanged around the header"
    (String.sub injected 0 at ^ String.sub injected (at + len)
       (String.length injected - at - len)
    = env);
  (match M.peek_trace_header injected with
  | Some (t, s) ->
    check_string "trace id" "ab12cd" t;
    check_string "span id" "f3" s
  | None -> Alcotest.fail "valid header did not decode");
  check_bool "absent header -> None" (M.peek_trace_header env = None);
  (* a non-envelope ships unmodified *)
  let txt, at, len = M.inject_trace_header "<fragment/>" ~header:hdr in
  check_bool "non-envelope untouched" (txt = "<fragment/>" && at = 0 && len = 0)

(* Every way a header can be broken must decode to [None] — the call then
   proceeds untraced; a bad header is never a protocol fault. *)
let test_trace_header_malformed () =
  let peek h = M.peek_trace_header ("<env:Body>" ^ h ^ "<xrpc:request/>") in
  check_bool "uppercase hex rejected"
    (peek {|<trace trace-id="AB" span-id="12"/>|} = None);
  check_bool "non-hex rejected"
    (peek {|<trace trace-id="xyz" span-id="12"/>|} = None);
  check_bool "missing span-id rejected" (peek {|<trace trace-id="ab"/>|} = None);
  check_bool "empty trace id rejected"
    (peek {|<trace trace-id="" span-id="12"/>|} = None);
  check_bool "empty span id rejected"
    (peek {|<trace trace-id="ab" span-id=""/>|} = None);
  check_bool "overlong id rejected"
    (peek
       (Printf.sprintf {|<trace trace-id="%s" span-id="12"/>|}
          (String.make 33 'a'))
    = None);
  check_bool "unterminated attribute rejected"
    (M.peek_trace_header {|<env:Body><trace trace-id="ab" span-id="12|} = None);
  check_bool "unclosed element rejected"
    (M.peek_trace_header {|<env:Body><trace trace-id="ab" span-id="12"|}
    = None)

(* End to end: a server given a request with a corrupt header answers it
   untraced instead of faulting. *)
let test_trace_header_tolerated_by_server () =
  let net, client, _server = setup () in
  let tracer = Xd_obs.Trace.create () in
  let record = ref [] in
  let session =
    Xd_xrpc.Session.create ~record ~tracer net client M.By_fragment
  in
  let q =
    Xd_lang.Parser.parse_query
      {|execute at {"example.org"} function ($x := 21) { $x * 2 }|}
  in
  ignore (Xd_xrpc.Session.execute session q);
  let request =
    match
      List.find_opt
        (fun r ->
          match r.Xd_xrpc.Session.dir with
          | `Request _ -> true
          | `Response _ -> false)
        (List.rev !record)
    with
    | Some r -> r.Xd_xrpc.Session.text
    | None -> Alcotest.fail "no request recorded"
  in
  (* the recorded request is pre-injection: plant a corrupt header *)
  let corrupt, _, _ =
    M.inject_trace_header request
      ~header:{|<trace trace-id="NOT-HEX" span-id=""/>|}
  in
  let server = Xd_xrpc.Session.server_session session "example.org" in
  let response =
    Xd_xrpc.Session.handle_request server ~client_name:"client" corrupt
  in
  check_bool "answered, not faulted"
    (contains response "42" && not (contains response "Fault"))

let () =
  Alcotest.run "xd_messages"
    [
      ( "roundtrip",
        [
          tc "atomics" test_atomic_roundtrip;
          tc "escaping" test_string_escaping;
          tc "nodes by fragment" test_node_result_by_fragment;
          tc "by-value copies" test_by_value_copies;
        ] );
      ( "fragments",
        [
          tc "dedup (Fig. 4)" test_fragment_dedup;
          tc "fragid/nodeid" test_fragid_nodeid;
          tc "identity within message" test_identity_preserved_within_message;
          tc "multi-document fragments" test_multi_document_fragments;
        ] );
      ( "origins",
        [
          tc "param returned is original" test_param_returned_is_original;
          tc "attribute params" test_attribute_param;
          tc "session caching" test_repeat_call_fragments_cached;
        ] );
      ( "context",
        [
          tc "static context" test_static_context_propagated;
          tc "base-uri" test_base_uri_of_shipped_node;
          tc "xrpc: wrappers" test_xrpc_wrapper_builtins;
        ] );
      ( "projection",
        [
          tc "paths element (Fig. 5)" test_projection_paths_element;
          tc "reverse axis response" test_projection_reverse_axis_response;
          tc "schema-aware" test_schema_aware_projection;
          tc "fn:id on shipped nodes" test_id_on_shipped_nodes;
        ] );
      ( "robustness",
        [
          tc "malformed" test_malformed_rejected;
          tc "malformed deadline" test_malformed_deadline;
          tc "malformed retry-after" test_malformed_retry_after;
          tc "deadline on the wire" test_deadline_on_wire;
        ] );
      ( "topology",
        [
          tc "forward round trip" test_forward_roundtrip;
          tc "malformed forward" test_malformed_forward;
          tc "catalog round trip" test_catalog_roundtrip;
          tc "malformed catalog" test_malformed_catalog;
          tc "malformed envelopes answered with faults"
            test_malformed_topo_envelopes_answered_with_faults;
        ] );
      ( "tracing",
        [
          tc "header round trip" test_trace_header_roundtrip;
          tc "malformed headers decode to None" test_trace_header_malformed;
          tc "server tolerates corrupt header"
            test_trace_header_tolerated_by_server;
        ] );
      ( "properties",
        [
          prop_roundtrip_by_value;
          prop_roundtrip_by_fragment;
          prop_roundtrip_by_projection;
          prop_remote_count;
        ] );
    ]
