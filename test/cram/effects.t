Static effect & interference analysis from the command line: --effects
prints the read/write footprint of every vertex plus the schedule the
executor will run; --no-parallel turns the scheduler off.

  $ cat > d.xml <<'EOF'
  > <r><x>1</x><x>2</x><x>3</x></r>
  > EOF
  $ cp d.xml e.xml

Footprints are sets of (document, projection-path) pairs.  A pure read
chain stays pure; an updating expression contributes a write footprint,
and impurity propagates to every enclosing vertex:

  $ ../../bin/xdxq.exe --doc peer1/d.xml=d.xml --effects \
  >   -q 'let $m := doc("xrpc://peer1/d.xml")/child::r return (count($m/child::x), delete node $m/child::x)'
  v11 let $m : R{peer1/d.xml:.,child::r,child::r/child::x} W{peer1/d.xml:child::r/child::x}
    v3 child::r : R{peer1/d.xml:.,child::r} W{} pure
      v2 doc(...) : R{peer1/d.xml:.} W{} pure
        v1 "xrpc://peer1/d.xml" : R{} W{} pure
    v10 sequence : R{peer1/d.xml:child::r/child::x} W{peer1/d.xml:child::r/child::x}
      v6 count(...) : R{peer1/d.xml:child::r/child::x} W{} pure
        v5 child::x : R{peer1/d.xml:child::r/child::x} W{} pure
          v4 $m : R{} W{} pure
      v9 delete node : R{peer1/d.xml:child::r/child::x} W{peer1/d.xml:child::r/child::x}
        v8 child::x : R{peer1/d.xml:child::r/child::x} W{} pure
          v7 $m : R{} W{} pure
  schedule: (sequential)

Two read-only calls against different documents are provably
non-interfering, so the scheduler groups them: both calls go on the
wire before either response is awaited:

  $ ../../bin/xdxq.exe --doc peer1/d.xml=d.xml --doc peer2/e.xml=e.xml --effects \
  >   -q '(execute at {"peer1"} function () { count(doc("xrpc://peer1/d.xml")/descendant::x) },
  >        execute at {"peer2"} function () { count(doc("xrpc://peer2/e.xml")/descendant::x) })'
  v13 sequence : R{peer1/d.xml:.,descendant::x; peer2/e.xml:.,descendant::x} W{} pure
    v6 execute at "peer1" : R{peer1/d.xml:.,descendant::x} W{} pure
      v1 "peer1" : R{} W{} pure
      v5 count(...) : R{peer1/d.xml:.,descendant::x} W{} pure
        v4 descendant::x : R{peer1/d.xml:.,descendant::x} W{} pure
          v3 doc(...) : R{peer1/d.xml:.} W{} pure
            v2 "xrpc://peer1/d.xml" : R{} W{} pure
    v12 execute at "peer2" : R{peer2/e.xml:.,descendant::x} W{} pure
      v7 "peer2" : R{} W{} pure
      v11 count(...) : R{peer2/e.xml:.,descendant::x} W{} pure
        v10 descendant::x : R{peer2/e.xml:.,descendant::x} W{} pure
          v9 doc(...) : R{peer2/e.xml:.} W{} pure
            v8 "xrpc://peer2/e.xml" : R{} W{} pure
  schedule:
    group @v13: v6 v12

Running that fan-out, the simulated network clock advances by the
critical path — the slower of the two calls, not their sum — and the
saving is reported (wall-clock components are run-dependent and
normalized away; the simulated times are deterministic):

  $ ../../bin/xdxq.exe --doc peer1/d.xml=d.xml --doc peer2/e.xml=e.xml --stats \
  >   -q '(execute at {"peer1"} function () { count(doc("xrpc://peer1/d.xml")/descendant::x) },
  >        execute at {"peer2"} function () { count(doc("xrpc://peer2/e.xml")/descendant::x) })' 2>&1 \
  >   | sed -E 's/wall [0-9.]+ms, serialize [0-9.]+ms, shred [0-9.]+ms, remote [0-9.]+ms/wall W, serialize S, shred H, remote R/'
  3 3
  strategy: pass-by-projection
  messages: 4 (1392 bytes), documents fetched: 0 bytes
  times: wall W, serialize S, shred H, remote R, network(sim) 0.206ms
  faults: injected 0, timeouts 0, retries 0, fallbacks 0, dedup-hits 0
  sched: groups 1, overlapped calls 2, saved 0.206ms (sim)
  batch: envelopes 0, calls 0

--no-parallel reproduces the sequential baseline: same answer, same
messages, but the network clock pays for both round trips in full and
no schedule is reported:

  $ ../../bin/xdxq.exe --doc peer1/d.xml=d.xml --doc peer2/e.xml=e.xml --stats --no-parallel \
  >   -q '(execute at {"peer1"} function () { count(doc("xrpc://peer1/d.xml")/descendant::x) },
  >        execute at {"peer2"} function () { count(doc("xrpc://peer2/e.xml")/descendant::x) })' 2>&1 \
  >   | sed -E 's/wall [0-9.]+ms, serialize [0-9.]+ms, shred [0-9.]+ms, remote [0-9.]+ms/wall W, serialize S, shred H, remote R/'
  3 3
  strategy: pass-by-projection
  messages: 4 (1392 bytes), documents fetched: 0 bytes
  times: wall W, serialize S, shred H, remote R, network(sim) 0.411ms
  faults: injected 0, timeouts 0, retries 0, fallbacks 0, dedup-hits 0

Same-peer calls inside one group coalesce into a single batched
envelope — one round trip carries both requests, so three calls cost
four messages, and the per-peer call counters still see every call:

  $ ../../bin/xdxq.exe --doc peer1/d.xml=d.xml --doc peer2/e.xml=e.xml --metrics \
  >   -q '(execute at {"peer1"} function () { count(doc("xrpc://peer1/d.xml")/descendant::x) },
  >        execute at {"peer1"} function () { count(doc("xrpc://peer1/d.xml")/child::r) },
  >        execute at {"peer2"} function () { count(doc("xrpc://peer2/e.xml")/descendant::x) })' 2>&1 \
  >   | grep -E 'xrpc.calls|batch|sched.groups|xrpc.messages'
  counter    sched.groups = 1
  counter    xrpc.batch.calls = 2
  counter    xrpc.batch.envelopes = 1
  counter    xrpc.calls = 3
  counter    xrpc.calls{peer=peer1} = 2
  counter    xrpc.calls{peer=peer2} = 1
  counter    xrpc.messages = 4

A write interferes with any read of the same document, so a reader and
a deleter against one peer never overlap — the schedule degrades to
sequential and the executor runs them in order:

  $ ../../bin/xdxq.exe --doc peer1/d.xml=d.xml --effects \
  >   -q '(execute at {"peer1"} function () { count(doc("xrpc://peer1/d.xml")/descendant::x) },
  >        execute at {"peer1"} function () { delete node doc("xrpc://peer1/d.xml")/child::r/child::x })' \
  >   | tail -1
  schedule: (sequential)
