Deadline propagation, admission control and circuit breakers from the
command line: --deadline gives the query an end-to-end budget enforced
at every hop; --peer-capacity/--queue-cap/--service-time bound each
peer's concurrency on the simulated clock; --show-breakers prints the
per-peer breaker states.

  $ cat > d.xml <<'EOF'
  > <r><x>1</x><x>2</x><x>3</x></r>
  > EOF

A budget the first hop cannot cover is refused before any evaluation,
with the typed non-retryable fault:

  $ ../../bin/xdxq.exe --doc peer1/d.xml=d.xml --deadline 0.0001 \
  >   -q 'count(doc("xrpc://peer1/d.xml")/child::r/child::x)'
  xrpc fault from peer1: xrpc:deadline.exceeded: deadline budget exhausted before evaluation began
  [1]

A comfortable budget admits the call; the stats account the admission
and (zero) queueing delay:

  $ ../../bin/xdxq.exe --doc peer1/d.xml=d.xml --peer-capacity 2 --deadline 0.5 \
  >   --stats -q 'count(doc("xrpc://peer1/d.xml")/child::r/child::x)' 2>&1 \
  >   | grep -E '^[0-9]|^overload:'
  3
  overload: admitted 1, shed 0, deadline-rejects 0, queue-wait 0.000ms (sim)

A full admission queue sheds with the retryable xrpc:server.overloaded
fault carrying the server's retry-after suggestion: the client backs
off by it and the retry is admitted — both calls still answer:

  $ ../../bin/xdxq.exe --doc peer1/d.xml=d.xml --peer-capacity 1 --queue-cap 0 \
  >   --service-time 0.05 --stats --plan \
  >   -q '(execute at {"peer1"} function () { 1 }, execute at {"peer1"} function () { 2 })' 2>&1 \
  >   | grep -E '^[0-9]|^faults:|^overload:'
  1 2
  faults: injected 1, timeouts 0, retries 1, fallbacks 0, dedup-hits 0
  overload: admitted 2, shed 1, deadline-rejects 0, queue-wait 0.000ms (sim)

Repeated failures to a dead peer open its circuit breaker (threshold
3): the fourth call never touches the wire — it is shed locally and
falls through the degradation ladder, so every read-only body still
answers. --show-breakers prints the post-run state:

  $ ../../bin/xdxq.exe --doc peer1/d.xml=d.xml --fault-spec 'peer1:down' \
  >   --peer-capacity 2 --show-breakers --stats --plan \
  >   -q '(execute at {"peer1"} function () { 1 }, execute at {"peer1"} function () { 2 },
  >        execute at {"peer1"} function () { 3 }, execute at {"peer1"} function () { 4 })' 2>&1 \
  >   | grep -E '^[0-9]|^peer1:|^faults:|^breaker:'
  1 2 3 4
  peer1: open until 3.293s (1 opens)
  faults: injected 9, timeouts 9, retries 6, fallbacks 4, dedup-hits 0
  breaker: opens 1, shed 1, probes 0, budget-stops 0

A shared --retry-budget caps re-sends across the whole plan: with one
retry in the pool the second attempt consumes it and the third is
skipped (budget-stops), the call degrading as usual:

  $ ../../bin/xdxq.exe --doc peer1/d.xml=d.xml --fault-spec 'peer1:down' \
  >   --retry-budget 1 --stats \
  >   -q 'count(doc("xrpc://peer1/d.xml")/child::r/child::x)' 2>&1 \
  >   | grep -E '^[0-9]|^faults:|^breaker:'
  3
  faults: injected 2, timeouts 2, retries 1, fallbacks 1, dedup-hits 0
  breaker: opens 0, shed 0, probes 0, budget-stops 1

Without any overload flag the layer leaves no trace at all: not even
its metrics register (the registry dump is byte-identical to a build
without the layer, as is the wire):

  $ ../../bin/xdxq.exe --doc peer1/d.xml=d.xml --metrics \
  >   -q 'count(doc("xrpc://peer1/d.xml")/child::r/child::x)' 2>&1 \
  >   | grep -c 'overload'
  0
  [1]
