Fault injection from the command line: --fault-spec/--fault-seed install a
deterministic fault schedule, --timeout/--retries bound the recovery.

  $ cat > d.xml <<'EOF'
  > <r><x>1</x><x>2</x><x>3</x></r>
  > EOF

A dropped first message is retried: the answer is exact, and the stats
line accounts the waited-out timeout and the re-send:

  $ ../../bin/xdxq.exe --doc peer1/d.xml=d.xml --fault-spec 'drop@1#1' --stats \
  >   -q 'count(doc("xrpc://peer1/d.xml")/child::r/child::x)' 2>&1 | grep -E '^[0-9]|^faults:'
  3
  faults: injected 1, timeouts 1, retries 1, fallbacks 0, dedup-hits 0

A duplicated request reaches the server twice; the second copy is answered
from the request-id cache, so the call still counts once:

  $ ../../bin/xdxq.exe --doc peer1/d.xml=d.xml --fault-spec 'dup@1#1' --stats \
  >   -q 'count(doc("xrpc://peer1/d.xml")/child::r/child::x)' 2>&1 | grep -E '^[0-9]|^faults:'
  3
  faults: injected 1, timeouts 0, retries 0, fallbacks 0, dedup-hits 1

A permanently-down peer with a read-only body degrades gracefully: the
documents are data-shipped and the body evaluates locally — same answer,
one fallback:

  $ ../../bin/xdxq.exe --doc peer1/d.xml=d.xml --fault-spec 'peer1:down' --stats \
  >   -q 'count(doc("xrpc://peer1/d.xml")/child::r/child::x)' 2>&1 | grep -E '^[0-9]|^faults:'
  3
  faults: injected 3, timeouts 3, retries 2, fallbacks 1, dedup-hits 0

An update cannot degrade (it must run at the owning peer): the caller gets
a typed timeout, and the exit code reflects the failure:

  $ ../../bin/xdxq.exe --doc peer1/d.xml=d.xml --fault-spec 'peer1:down' \
  >   -q 'insert node <y/> into doc("xrpc://peer1/d.xml")/child::r'
  xrpc timeout: peer1 did not answer (3 attempts)
  [1]

The schedule is deterministic: the same spec and seed give the same faults
(cram itself asserts this — the counters below are reproducible):

  $ ../../bin/xdxq.exe --doc peer1/d.xml=d.xml --fault-spec 'truncate@0.4;delay=0.2@0.3' --fault-seed 42 --stats \
  >   -q 'count(doc("xrpc://peer1/d.xml")/child::r/child::x)' 2>/dev/null
  3
  $ ../../bin/xdxq.exe --doc peer1/d.xml=d.xml --fault-spec 'truncate@0.4;delay=0.2@0.3' --fault-seed 42 --stats \
  >   -q 'count(doc("xrpc://peer1/d.xml")/child::r/child::x)' 2>&1 | grep '^faults:' > first
  $ ../../bin/xdxq.exe --doc peer1/d.xml=d.xml --fault-spec 'truncate@0.4;delay=0.2@0.3' --fault-seed 42 --stats \
  >   -q 'count(doc("xrpc://peer1/d.xml")/child::r/child::x)' 2>&1 | grep '^faults:' > second
  $ diff first second

A malformed spec is rejected up front:

  $ ../../bin/xdxq.exe --fault-spec 'explode' -q '1'
  bad --fault-spec: unknown fault kind "explode"
  [1]

Without --fault-spec the counters stay silent at zero:

  $ ../../bin/xdxq.exe --doc peer1/d.xml=d.xml --stats \
  >   -q 'count(doc("xrpc://peer1/d.xml")/child::r/child::x)' 2>&1 | grep -E '^[0-9]|^faults:'
  3
  faults: injected 0, timeouts 0, retries 0, fallbacks 0, dedup-hits 0
