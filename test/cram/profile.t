The query profiler: --explain's per-vertex explain-analyze table,
--metrics-format prom with exemplars, the --query-log JSONL sink, and
the bench regression gate.

  $ ../../bin/xdx_gen.exe --persons 10 --seed 7 --out-people people.xml --out-auctions auctions.xml >/dev/null 2>&1

--explain joins the cost model's per-vertex byte predictions with the
measured actuals the profiler folds out of an internal trace. The
misestimate story of the typed cost model, on the count-of-remote-data
plan: priced *without* typing the model expects a document-fraction
response and is off by >4x — flagged; priced with the PR 5 typing the
same vertex is a 64-byte atomic response plus envelope, well inside the
band. Wall-clock milliseconds are normalized; bytes, counts, ratios and
the sim-clock schedule are deterministic and pinned.

  $ P='string((execute at {"peer1"} function () { count(doc("xrpc://peer1/people.xml")//person) }))'

  $ ../../bin/xdxq.exe --doc peer1/people.xml=people.xml -s by-value --plan --no-typing --explain -q "$P" \
  >   | sed -n '/explain analyze/,$p' | sed -E 's/[0-9]+\.[0-9]{3}/T/g'
  explain analyze (cost model vs measured, per vertex):
   vertex     est B     act B    ratio  calls    wire ms    ser ms  shred ms    rem ms  at: body
       -1         -         0        -      0      T     T     T     T  client: (local)
        6      9643       607   0.06 !      1      T     T     T     T  peer1: count(doc("xrpc://peer1/people.xm...
    total      9643       607   0.06 !      1      T     T     T     T

  $ ../../bin/xdxq.exe --doc peer1/people.xml=people.xml -s by-value --plan --explain -q "$P" \
  >   | sed -n '/explain analyze/,$p' | sed -E 's/[0-9]+\.[0-9]{3}/T/g'
  explain analyze (cost model vs measured, per vertex):
   vertex     est B     act B    ratio  calls    wire ms    ser ms  shred ms    rem ms  at: body
       -1         -         0        -      0      T     T     T     T  client: (local)
        6       464       607     1.31      1      T     T     T     T  peer1: count(doc("xrpc://peer1/people.xm...
    total       464       607     1.31      1      T     T     T     T

--metrics-format prom renders the registry as a Prometheus/OpenMetrics
text exposition. The message-bytes histogram is fully deterministic;
its +Inf bucket carries the trace id of the extreme observation as an
exemplar when the run was traced:

  $ ../../bin/xdxq.exe --doc peer1/people.xml=people.xml -s by-value \
  >   --trace --trace-out /dev/null --metrics --metrics-format prom -q "$P" 2>&1 1>/dev/null \
  >   | grep '^# TYPE'
  # TYPE codec_compiled counter
  # TYPE codec_decodes counter
  # TYPE hist_message_bytes histogram
  # TYPE hist_remote_exec_s histogram
  # TYPE hist_serialize_s histogram
  # TYPE hist_shred_s histogram
  # TYPE sched_groups counter
  # TYPE sched_overlapped_calls counter
  # TYPE sched_saved_s gauge
  # TYPE time_network_s gauge
  # TYPE time_remote_clamps counter
  # TYPE time_remote_exec_s gauge
  # TYPE time_serialize_s gauge
  # TYPE time_shred_s gauge
  # TYPE topo_churn_events counter
  # TYPE topo_epoch_aborts counter
  # TYPE topo_failovers counter
  # TYPE topo_resolutions counter
  # TYPE txn_aborts counter
  # TYPE txn_commits counter
  # TYPE txn_staged counter
  # TYPE xrpc_batch_calls counter
  # TYPE xrpc_batch_envelopes counter
  # TYPE xrpc_bytes_document counter
  # TYPE xrpc_bytes_message counter
  # TYPE xrpc_calls counter
  # TYPE xrpc_dedup_evictions counter
  # TYPE xrpc_dedup_hits counter
  # TYPE xrpc_documents_fetched counter
  # TYPE xrpc_fallbacks counter
  # TYPE xrpc_faults counter
  # TYPE xrpc_forwarded counter
  # TYPE xrpc_messages counter
  # TYPE xrpc_peer_up gauge
  # TYPE xrpc_retries counter
  # TYPE xrpc_timeouts counter

  $ ../../bin/xdxq.exe --doc peer1/people.xml=people.xml -s by-value \
  >   --trace --trace-out /dev/null --metrics --metrics-format prom -q "$P" 2>&1 1>/dev/null \
  >   | grep 'hist_message_bytes' | sed -E 's/trace_id="[0-9a-f]+"/trace_id="TID"/'
  # TYPE hist_message_bytes histogram
  hist_message_bytes_bucket{le="128"} 0
  hist_message_bytes_bucket{le="512"} 2
  hist_message_bytes_bucket{le="2048"} 2
  hist_message_bytes_bucket{le="8192"} 2
  hist_message_bytes_bucket{le="32768"} 2
  hist_message_bytes_bucket{le="131072"} 2
  hist_message_bytes_bucket{le="524288"} 2
  hist_message_bytes_bucket{le="+Inf"} 2 # {trace_id="TID"} 452
  hist_message_bytes_sum 671
  hist_message_bytes_count 2

An untraced run carries no exemplars (and the registry is otherwise
identical — tracing is byte-invisible):

  $ ../../bin/xdxq.exe --doc peer1/people.xml=people.xml -s by-value \
  >   --metrics --metrics-format prom -q "$P" 2>&1 1>/dev/null | grep -c '# {'
  0
  [1]

--query-log appends one JSON record per query: strategy, the cost
model's estimate (total and per vertex), measured actuals, fault /
retry / shed counts and the catalog epoch. Wall-clock seconds and the
trace id are normalized:

  $ ../../bin/xdxq.exe --doc peer1/people.xml=people.xml -s by-value --plan \
  >   --query-log q.jsonl -q "$P" >/dev/null
  $ ../../bin/xdxq.exe --doc peer1/people.xml=people.xml -s by-value --plan --explain \
  >   --query-log q.jsonl -q "$P" >/dev/null
  $ sed -E -e 's/"(serialize_s|shred_s|remote_s|network_s)":[0-9.e+-]+/"\1":W/g' \
  >   -e 's/"trace":"[0-9a-f]+"/"trace":"TID"/' q.jsonl
  {"status":"ok","strategy":"pass-by-value","est_total":464,"est_per_vertex":{"6":464},"message_bytes":607,"document_bytes":0,"messages":2,"calls":1,"serialize_s":W,"shred_s":W,"remote_s":W,"network_s":W,"faults":0,"timeouts":0,"retries":0,"fallbacks":0,"shed":0,"forwarded":0,"failovers":0,"catalog_epoch":null}
  {"status":"ok","strategy":"pass-by-value","est_total":464,"est_per_vertex":{"6":464},"message_bytes":607,"document_bytes":0,"messages":2,"calls":1,"serialize_s":W,"shred_s":W,"remote_s":W,"network_s":W,"faults":0,"timeouts":0,"retries":0,"fallbacks":0,"shed":0,"forwarded":0,"failovers":0,"catalog_epoch":null,"trace":"TID"}

bench regress diffs two BENCH_*.json files against per-metric
tolerances and exits non-zero on regression — here a >=20% goodput drop
and a p95 blowup on one row:

  $ cat > base.json <<'EOF'
  > {"experiment": "overload-shedding",
  >  "rows": [
  >   {"load": 1.00, "shedding": true, "offered": 100, "ok": 100, "late": 0,
  >    "shed": 0, "goodput": 1.0000, "p50_ms": 10.0, "p95_ms": 20.0, "p99_ms": 30.0},
  >   {"load": 2.00, "shedding": true, "offered": 100, "ok": 60, "late": 0,
  >    "shed": 40, "goodput": 0.6000, "p50_ms": 30.0, "p95_ms": 60.0, "p99_ms": 80.0}
  > ]}
  > EOF
  $ sed -e 's/"goodput": 0.6000/"goodput": 0.4500/' -e 's/"p95_ms": 60.0/"p95_ms": 90.0/' \
  >   -e 's/"ok": 60/"ok": 45/' base.json > cur.json
  $ ../../bench/main.exe regress base.json base.json
  bench regress: base.json vs base.json: 2 rows ok
  $ ../../bench/main.exe regress base.json cur.json
  REGRESSION [load=2.00 shedding=true] goodput: 0.6 -> 0.45 (worse by 0.15, budget 0.06)
  REGRESSION [load=2.00 shedding=true] ok: 60 -> 45 (worse by 15, budget 6)
  REGRESSION [load=2.00 shedding=true] p95_ms: 60 -> 90 (worse by 30, budget 9.01)
  bench regress: base.json vs cur.json: 3 regression(s)
  [1]
