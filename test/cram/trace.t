Distributed tracing from the command line: --trace records a span tree
across every peer a query touches; --trace-out/--trace-format export it
as JSONL or Chrome trace_event JSON; --metrics dumps the full registry.

  $ cat > d.xml <<'EOF'
  > <r><x>1</x><x>2</x><x>3</x></r>
  > EOF
  $ cp d.xml e.xml

A dropped-then-retried call, traced as JSONL (one object per completed
span, oldest first). Span/trace ids and clock values are run-dependent
and normalized away (as are the wall-clock busy_s accounting deltas);
the schema — field names, span names, categories, peers, parentage and
attributes — is pinned. Note the two attempt spans (the retry is its
own span with retry=1), the dropped send, the byte counts on network
and server spans, the vertex attribute on the call span (the profiler's
attribution key), and the server-side spans parented under the client's
attempt via the wire's <trace> header:

  $ ../../bin/xdxq.exe --doc peer1/d.xml=d.xml --fault-spec 'drop@1#1' \
  >   --trace --trace-out t.jsonl \
  >   -q 'count(doc("xrpc://peer1/d.xml")/child::r/child::x)'
  3
  $ sed -E -e 's/"(trace|span|parent)":"[0-9a-f]+"/"\1":"ID"/g' \
  >   -e 's/"(wall_start|wall_end|sim_start|sim_end)":[0-9.e+-]+/"\1":T/g' \
  >   -e 's/"busy_s":[0-9.e+-]+/"busy_s":D/g' t.jsonl
  {"trace":"ID","span":"ID","parent":"ID","name":"request","cat":"serialize","peer":"client","wall_start":T,"wall_end":T,"sim_start":T,"sim_end":T,"attrs":{"busy_s":D}}
  {"trace":"ID","span":"ID","parent":"ID","name":"send peer1","cat":"network","peer":"client","wall_start":T,"wall_end":T,"sim_start":T,"sim_end":T,"attrs":{"dropped":true,"bytes":455}}
  {"trace":"ID","span":"ID","parent":"ID","name":"attempt 1","cat":"attempt","peer":"client","wall_start":T,"wall_end":T,"sim_start":T,"sim_end":T,"attrs":{"retry":0,"timeout":true}}
  {"trace":"ID","span":"ID","parent":"ID","name":"send peer1","cat":"network","peer":"client","wall_start":T,"wall_end":T,"sim_start":T,"sim_end":T,"attrs":{"bytes":455}}
  {"trace":"ID","span":"ID","parent":"ID","name":"request","cat":"shred","peer":"peer1","wall_start":T,"wall_end":T,"sim_start":T,"sim_end":T,"attrs":{"busy_s":D}}
  {"trace":"ID","span":"ID","parent":"ID","name":"fragments","cat":"shred","peer":"peer1","wall_start":T,"wall_end":T,"sim_start":T,"sim_end":T,"attrs":{"busy_s":D}}
  {"trace":"ID","span":"ID","parent":"ID","name":"evaluate","cat":"remote","peer":"peer1","wall_start":T,"wall_end":T,"sim_start":T,"sim_end":T,"attrs":{"busy_s":D}}
  {"trace":"ID","span":"ID","parent":"ID","name":"response","cat":"serialize","peer":"peer1","wall_start":T,"wall_end":T,"sim_start":T,"sim_end":T,"attrs":{"busy_s":D}}
  {"trace":"ID","span":"ID","parent":"ID","name":"handle","cat":"server","peer":"peer1","wall_start":T,"wall_end":T,"sim_start":T,"sim_end":T,"attrs":{"bytes":510,"resp_bytes":224}}
  {"trace":"ID","span":"ID","parent":"ID","name":"send client","cat":"network","peer":"client","wall_start":T,"wall_end":T,"sim_start":T,"sim_end":T,"attrs":{"bytes":224}}
  {"trace":"ID","span":"ID","parent":"ID","name":"response","cat":"shred","peer":"client","wall_start":T,"wall_end":T,"sim_start":T,"sim_end":T,"attrs":{"busy_s":D}}
  {"trace":"ID","span":"ID","parent":"ID","name":"attempt 2","cat":"attempt","peer":"client","wall_start":T,"wall_end":T,"sim_start":T,"sim_end":T,"attrs":{"retry":1}}
  {"trace":"ID","span":"ID","parent":"ID","name":"call peer1","cat":"call","peer":"client","wall_start":T,"wall_end":T,"sim_start":T,"sim_end":T,"attrs":{"host":"peer1","vertex":5}}
  {"trace":"ID","span":"ID","name":"execute","cat":"query","peer":"client","wall_start":T,"wall_end":T,"sim_start":T,"sim_end":T,"attrs":{"strategy":"pass-by-projection"}}

The same run exports as Chrome trace_event JSON — thread-name metadata
plus complete events, loadable in chrome://tracing or Perfetto:

  $ ../../bin/xdxq.exe --doc peer1/d.xml=d.xml --fault-spec 'drop@1#1' \
  >   --trace-out t.json --trace-format chrome \
  >   -q 'count(doc("xrpc://peer1/d.xml")/child::r/child::x)'
  3
  $ grep -c '"displayTimeUnit":"ms"' t.json
  1
  $ grep -o '"ph":"M"' t.json | wc -l | tr -d ' '
  2
  $ grep -o '"ph":"X"' t.json | wc -l | tr -d ' '
  14

A multi-peer update under 2PC: the trace carries distinct stage, prepare
and commit spans for each participant, all in one connected tree:

  $ ../../bin/xdxq.exe --doc peer1/d.xml=d.xml --doc peer2/e.xml=e.xml --txn \
  >   --trace --trace-out txn.jsonl \
  >   -q '(insert node <y/> into doc("xrpc://peer1/d.xml")/child::r,
  >        insert node <z/> into doc("xrpc://peer2/e.xml")/child::r)'
  

  $ grep -E '"cat":"(txn|txn.rpc)"' txn.jsonl | sed -E 's/.*"name":"([^"]*)".*/\1/'
  stage
  stage
  prepare
  prepare peer1
  prepare
  prepare peer2
  commit
  commit peer1
  commit
  commit peer2
  2pc
  $ roots=$(grep -cv '"parent"' txn.jsonl); echo "roots: $roots"
  roots: 1

--metrics dumps every registered metric; values are run-dependent, the
names and kinds are pinned:

  $ ../../bin/xdxq.exe --doc peer1/d.xml=d.xml --fault-spec 'drop@1#1' --metrics \
  >   -q 'count(doc("xrpc://peer1/d.xml")/child::r/child::x)' 2>&1 \
  >   | grep -E '^(counter|gauge|histogram)' | sed -E 's/ =.*| count=.*//'
  counter    codec.compiled
  counter    codec.decodes
  histogram  hist.message_bytes
  histogram  hist.remote_exec_s
  histogram  hist.serialize_s
  histogram  hist.shred_s
  counter    sched.groups
  counter    sched.overlapped_calls
  gauge      sched.saved_s
  gauge      time.network_s
  counter    time.remote_clamps
  gauge      time.remote_exec_s
  gauge      time.serialize_s
  gauge      time.shred_s
  counter    topo.churn_events
  counter    topo.epoch_aborts
  counter    topo.failovers
  counter    topo.resolutions
  counter    txn.aborts
  counter    txn.commits
  counter    txn.staged
  counter    xrpc.batch.calls
  counter    xrpc.batch.envelopes
  counter    xrpc.bytes.document
  counter    xrpc.bytes.message
  counter    xrpc.calls
  counter    xrpc.calls{peer=peer1}
  counter    xrpc.dedup.evictions
  counter    xrpc.dedup.hits
  counter    xrpc.documents_fetched
  counter    xrpc.fallbacks
  counter    xrpc.faults
  counter    xrpc.faults.drop
  counter    xrpc.forwarded
  counter    xrpc.messages
  gauge      xrpc.peer_up{peer=peer1}
  counter    xrpc.retries
  counter    xrpc.timeouts

A query with no remote activity says so instead of printing zero stats:

  $ ../../bin/xdxq.exe --doc client/d.xml=d.xml --stats \
  >   -q 'count(doc("d.xml")/child::r/child::x)' 2>&1
  3
  strategy: pass-by-projection
  (no remote activity)
