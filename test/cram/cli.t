The xdxq / xdx-gen command-line tools, end to end.

Generate a small deterministic XMark pair:

  $ ../../bin/xdx_gen.exe --persons 10 --seed 7 --out-people people.xml --out-auctions auctions.xml 2>/dev/null | sed 's/([0-9]* bytes)/(N bytes)/'
  wrote people.xml (N bytes)
  wrote auctions.xml (N bytes)

A selection pushed to the data's peer, under each strategy — all four give
the same answer:

  $ for s in data-shipping by-value by-fragment by-projection; do
  >   ../../bin/xdxq.exe --doc peer1/people.xml=people.xml -s $s \
  >     -q 'string(count(doc("xrpc://peer1/people.xml")//person[profile/age < 40]))'
  > done
  3
  3
  3
  3

The auto strategy consults the cost model (report goes to stderr):

  $ ../../bin/xdxq.exe --doc peer1/people.xml=people.xml -s auto \
  >   -q 'string(count(doc("xrpc://peer1/people.xml")//person))' 2>/dev/null
  10

Plans are explainable:

  $ ../../bin/xdxq.exe --doc peer1/people.xml=people.xml -s by-fragment --explain \
  >   -q 'for $p in doc("xrpc://peer1/people.xml")/site/people/person where $p//age < 30 return string($p/@id)' \
  >   | grep -E 'pushed|strategy'
  strategy: pass-by-fragment
  valid d-points: 16, interesting points: 1, pushed: 1
    pushed v16 -> peer1

Static errors are caught before execution:

  $ ../../bin/xdxq.exe -q 'count($nope)' 2>&1
  static error: v1: unbound variable $nope
  [1]

Parse errors report the offset:

  $ ../../bin/xdxq.exe -q 'for $x in' 2>&1
  parse error at offset 9: unexpected token <eof>
  [1]

A cross-peer join with stats (timings suppressed):

  $ ../../bin/xdxq.exe --doc peer1/people.xml=people.xml --doc peer2/auctions.xml=auctions.xml \
  >   -s by-projection --stats \
  >   -q 'string(count(for $a in doc("xrpc://peer2/auctions.xml")//open_auction
  >        where $a/seller/@person = doc("xrpc://peer1/people.xml")//person[profile/age < 40]/@id
  >        return $a))' 2>/dev/null
  2

Updates execute at the owning peer; over a data-shipped copy they are
refused:

  $ ../../bin/xdxq.exe --doc peer1/people.xml=people.xml -s data-shipping \
  >   -q 'delete node (doc("xrpc://peer1/people.xml")//person)[1]' 2>&1
  dynamic error: update at client targets a shipped copy of a remote document; re-run under a function-shipping strategy so the update executes at its source peer
  [1]

  $ ../../bin/xdxq.exe --doc peer1/people.xml=people.xml -s by-fragment \
  >   -q '(delete node (doc("xrpc://peer1/people.xml")//person)[1])'
  
