The xdxq / xdx-gen command-line tools, end to end.

Generate a small deterministic XMark pair:

  $ ../../bin/xdx_gen.exe --persons 10 --seed 7 --out-people people.xml --out-auctions auctions.xml 2>/dev/null | sed 's/([0-9]* bytes)/(N bytes)/'
  wrote people.xml (N bytes)
  wrote auctions.xml (N bytes)

A selection pushed to the data's peer, under each strategy — all four give
the same answer:

  $ for s in data-shipping by-value by-fragment by-projection; do
  >   ../../bin/xdxq.exe --doc peer1/people.xml=people.xml -s $s \
  >     -q 'string(count(doc("xrpc://peer1/people.xml")//person[profile/age < 40]))'
  > done
  3
  3
  3
  3

The auto strategy consults the cost model (report goes to stderr):

  $ ../../bin/xdxq.exe --doc peer1/people.xml=people.xml -s auto \
  >   -q 'string(count(doc("xrpc://peer1/people.xml")//person))' 2>/dev/null
  10

Plans are explainable:

  $ ../../bin/xdxq.exe --doc peer1/people.xml=people.xml -s by-fragment --explain \
  >   -q 'for $p in doc("xrpc://peer1/people.xml")/site/people/person where $p//age < 30 return string($p/@id)' \
  >   | grep -E 'pushed|strategy'
  strategy: pass-by-fragment
  valid d-points: 16, interesting points: 1, pushed: 1
    pushed v16 -> peer1

Static errors are caught before execution:

  $ ../../bin/xdxq.exe -q 'count($nope)' 2>&1
  static error: v1: unbound variable $nope
  [1]

Parse errors report the offset:

  $ ../../bin/xdxq.exe -q 'for $x in' 2>&1
  parse error at offset 9: unexpected token <eof>
  [1]

A cross-peer join with stats (timings suppressed):

  $ ../../bin/xdxq.exe --doc peer1/people.xml=people.xml --doc peer2/auctions.xml=auctions.xml \
  >   -s by-projection --stats \
  >   -q 'string(count(for $a in doc("xrpc://peer2/auctions.xml")//open_auction
  >        where $a/seller/@person = doc("xrpc://peer1/people.xml")//person[profile/age < 40]/@id
  >        return $a))' 2>/dev/null
  2

Updates execute at the owning peer; over a data-shipped copy they are
refused:

  $ ../../bin/xdxq.exe --doc peer1/people.xml=people.xml -s data-shipping \
  >   -q 'delete node (doc("xrpc://peer1/people.xml")//person)[1]' 2>&1
  dynamic error: update at client targets a shipped copy of a remote document; re-run under a function-shipping strategy so the update executes at its source peer
  [1]

  $ ../../bin/xdxq.exe --doc peer1/people.xml=people.xml -s by-fragment \
  >   -q '(delete node (doc("xrpc://peer1/people.xml")//person)[1])'
  

The distribution-safety verifier re-derives plan safety independently of
the decomposer; --verify-plan prints its report before executing:

  $ ../../bin/xdxq.exe --doc peer1/people.xml=people.xml -s by-value --verify-plan \
  >   -q 'string(count(doc("xrpc://peer1/people.xml")//person[profile/age < 40]))'
  pass-by-value plan verifies: no findings
  3

A hand-written plan (--plan skips decomposition) that navigates out of a
pass-by-value shipped copy is rejected with rule-named diagnostics and a
d-graph witness:

  $ ../../bin/xdxq.exe --doc peer1/people.xml=people.xml -s by-value --plan \
  >   -q 'count((execute at {"peer1"} function () { doc("xrpc://peer1/people.xml")/descendant::person })/parent::people)' 2>&1
  plan rejected by the distribution-safety verifier:
    error[condition-i] v6: parent axis step on a copy shipped by the call at v5: a pass-by-value message does not carry the ancestors/siblings of the original nodes (call v5 -> peer1); witness v6 ~> v5
    error[condition-iii] v6: axis step over a potentially unordered/overlapping sequence of shipped nodes: document order and duplicate elimination are not restored across the message of the call at v5 (call v5 -> peer1); witness v6 ~> v5
  (re-run with --force to execute anyway)
  [1]

--force executes anyway — and delivers exactly the divergence the verifier
predicted (the copies' parents are absent from the message, so the count
silently becomes 0):

  $ ../../bin/xdxq.exe --doc peer1/people.xml=people.xml -s by-value --plan --force \
  >   -q 'count((execute at {"peer1"} function () { doc("xrpc://peer1/people.xml")/descendant::person })/parent::people)'
  0
