Dynamic topology from the command line: --catalog installs a peer catalog,
--topo-churn replays a membership-change script against it, --show-catalog
dumps the final state.

  $ cat > d.xml <<'EOF'
  > <r><x>1</x><x>2</x><x>3</x></r>
  > EOF
  $ cat > e.xml <<'EOF'
  > <r><y>1</y></r>
  > EOF

A quiet catalog changes nothing visible: a literal host that owns its
data routes as before, and no topo counter moves.

  $ ../../bin/xdxq.exe --doc peer1/d.xml=d.xml --catalog 'peer1/d.xml' --stats \
  >   -q 'execute at {"peer1"} function () { count(doc("d.xml")/child::r/child::x) }' \
  >   2>&1 | grep -E '^[0-9]|^topo:|^peers down:'
  3

A computed host is resolved against the catalog at call time: the verifier
knows the owner statically and the session routes there.

  $ ../../bin/xdxq.exe --doc peer1/d.xml=d.xml --catalog 'peer1/d.xml' --stats \
  >   -q 'let $h := "peer1" return execute at {$h} function () { count(doc("d.xml")/child::r/child::x) }' \
  >   2>&1 | grep -E '^[0-9]|^topo:|^peers down:'
  3
  topo: resolutions 1, forwarded 0, failovers 0, epoch-aborts 0

Ownership churn mid-call: the document moves to peer2 after the first
message, the stale owner answers with a typed redirect, and the caller
follows it. --show-catalog prints the post-churn catalog (epoch bumped).

  $ ../../bin/xdxq.exe --doc peer1/d.xml=d.xml --doc peer2/d.xml=d.xml \
  >   --catalog 'peer1/d.xml' --topo-churn '1:move=d.xml/peer2' --stats --show-catalog \
  >   -q 'execute at {"peer1"} function () { count(doc("d.xml")/child::r/child::x) }' \
  >   2>&1 | grep -E '^[0-9]|^topo:|^peers down:|catalog|doc|member'
  3
  catalog epoch 1
    doc d.xml owner peer2
    member peer1 up
    member peer2 up
  messages: 4 (1232 bytes), documents fetched: 0 bytes
  topo: resolutions 0, forwarded 1, failovers 0, epoch-aborts 0

Failover: the owner is down, but the catalog lists a live replica — the
caller re-resolves and the replica serves the call. Only the answer
crosses the wire, not the document.

  $ ../../bin/xdxq.exe --doc peer1/d.xml=d.xml --doc peer2/d.xml=d.xml \
  >   --catalog 'peer1/d.xml+peer2' --fault-spec 'peer1:down' --stats \
  >   -q 'execute at {"peer1"} function () { count(doc("d.xml")/child::r/child::x) }' \
  >   2>&1 | grep -E '^[0-9]|^topo:|^peers down:'
  3
  topo: resolutions 0, forwarded 0, failovers 1, epoch-aborts 0
  peers down: peer1

Epoch fencing: a membership change between staging and prepare makes the
participants vote abort — 2PC refuses to commit across a topology it no
longer agrees on.

  $ ../../bin/xdxq.exe --doc peer1/d.xml=d.xml --catalog 'peer1/d.xml' \
  >   --topo-churn '2:join=peer3' --txn \
  >   -q 'insert node <y/> into doc("xrpc://peer1/d.xml")/child::r'
  xrpc fault from peer1: xrpc:txn.aborted: participant voted to abort
  [1]

The verifier judges literal hosts against the catalog too: shipping a body
to a peer the catalog says can never own its data is a checked error.

  $ ../../bin/xdxq.exe --doc peer1/d.xml=d.xml --doc peer2/e.xml=e.xml \
  >   --catalog 'peer1/d.xml' --verify-plan \
  >   -q 'execute at {"peer2"} function () { count(doc("d.xml")/child::r/child::x) }'
  pass-by-projection plan: 1 error, 0 warnings
    error[host-consistency] v3: body shipped to peer2 reads document d.xml, which the catalog assigns to peer1: peer2 can never own that data
  plan rejected by the distribution-safety verifier:
    error[host-consistency] v3: body shipped to peer2 reads document d.xml, which the catalog assigns to peer1: peer2 can never own that data
  (re-run with --force to execute anyway)
  [1]

And a body whose documents the catalog splits across owners cannot have a
single correct computed host:

  $ ../../bin/xdxq.exe --doc peer1/d.xml=d.xml --doc peer2/e.xml=e.xml \
  >   --catalog 'peer1/d.xml;peer2/e.xml' --verify-plan \
  >   -q 'let $h := "peer1" return execute at {$h} function () { count(doc("d.xml")/child::r/child::x) + count(doc("e.xml")/child::r/child::y) }'
  pass-by-projection plan: 1 error, 0 warnings
    error[host-consistency] v14: no single peer owns every document this execute-at's body reads (the catalog maps them to peer1, peer2): no computed host can execute where all its data lives (call v14)
  plan rejected by the distribution-safety verifier:
    error[host-consistency] v14: no single peer owns every document this execute-at's body reads (the catalog maps them to peer1, peer2): no computed host can execute where all its data lives (call v14)
  (re-run with --force to execute anyway)
  [1]

Malformed specs are rejected up front:

  $ ../../bin/xdxq.exe --doc peer1/d.xml=d.xml --catalog 'nonsense' \
  >   -q 'count(doc("xrpc://peer1/d.xml")/child::r/child::x)'
  bad --catalog: entry "nonsense": expected OWNER/DOC[+REPLICA...]
  [1]

  $ ../../bin/xdxq.exe --doc peer1/d.xml=d.xml --topo-churn '1:join=peer2' \
  >   -q 'count(doc("xrpc://peer1/d.xml")/child::r/child::x)'
  bad --topo-churn: requires --catalog
  [1]

An empty catalog is trivial: the wire is byte-identical to a run without
one.

  $ ../../bin/xdxq.exe --doc peer1/d.xml=d.xml --stats \
  >   -q 'count(doc("xrpc://peer1/d.xml")/child::r/child::x)' 2>&1 | grep '^messages:'
  messages: 2 (657 bytes), documents fetched: 0 bytes
  $ ../../bin/xdxq.exe --doc peer1/d.xml=d.xml --catalog '' --stats \
  >   -q 'count(doc("xrpc://peer1/d.xml")/child::r/child::x)' 2>&1 | grep '^messages:'
  messages: 2 (657 bytes), documents fetched: 0 bytes
