Static type & cardinality inference, from the command line.

  $ ../../bin/xdx_gen.exe --persons 10 --seed 7 --out-people people.xml --out-auctions auctions.xml >/dev/null 2>&1

--types prints the inferred sequence type of every vertex, pre-order:

  $ ../../bin/xdxq.exe --types --doc peer1/people.xml=people.xml \
  >   -q 'let $n := count(doc("xrpc://peer1/people.xml")//person) return string($n)'
  v8 let $n : string
    v5 count(...) : numeric
      v4 child::person : element()*
        v3 descendant-or-self::node() : node()*
          v2 doc(...) : document-node()
            v1 "xrpc://peer1/people.xml" : string
    v7 string(...) : string
      v6 $n : numeric

Definite type errors — a provably-atomic, provably-nonempty value fed to
a node-only position — are diagnosed and fail the query:

  $ ../../bin/xdxq.exe --types -q 'name(3)'
  v2 name(...) : string
    v1 3 : numeric
  type error: v2: wrong-kind argument 1 to fn:name: expected node(), got provably atomic numeric
  [1]

  $ ../../bin/xdxq.exe -q '(1 + 2)/child::a' 2>&1
  type error: v4: axis step child::a over a provably atomic operand (numeric): only nodes have axes
  [1]

The typing proofs widen decomposition: a recursive function over a
count() of remote data ships pass-by-value only because the shipped
result is provably one atomic item.

  $ Q='declare function local:fib($n) { if ($n < 2) then $n else local:fib($n - 1) + local:fib($n - 2) }; local:fib(count(doc("xrpc://peer1/people.xml")//person))'

  $ ../../bin/xdxq.exe --doc peer1/people.xml=people.xml -s by-value --explain -q "$Q" \
  >   | grep -E 'pushed|strategy'
  strategy: pass-by-value
  valid d-points: 2, interesting points: 1, pushed: 1
    pushed v19 -> peer1

  $ ../../bin/xdxq.exe --doc peer1/people.xml=people.xml -s by-value --no-typing --explain -q "$Q" \
  >   | grep -E 'pushed|strategy'
  strategy: pass-by-value
  valid d-points: 0, interesting points: 0, pushed: 0

The cost model sees the difference — one 64-byte atomic response versus
fetching the document — so auto flips from data shipping to by-value:

  $ ../../bin/xdxq.exe --doc peer1/people.xml=people.xml -s auto -q "$Q" 2>&1
  auto strategy: pass-by-value
    data-shipping        fetched=   20542B responses~       0B overhead=    0B total~   20542B
    pass-by-value        fetched=       0B responses~      64B overhead=  400B total~     464B
    pass-by-fragment     fetched=       0B responses~      64B overhead=  400B total~     464B
    pass-by-projection   fetched=       0B responses~      64B overhead=  400B total~     464B
  55

  $ ../../bin/xdxq.exe --doc peer1/people.xml=people.xml -s auto --no-typing -q "$Q" 2>&1
  auto strategy: data-shipping
    data-shipping        fetched=   20542B responses~       0B overhead=    0B total~   20542B
    pass-by-value        fetched=   20542B responses~       0B overhead=    0B total~   20542B
    pass-by-fragment     fetched=   20542B responses~       0B overhead=    0B total~   20542B
    pass-by-projection   fetched=   20542B responses~       0B overhead=    0B total~   20542B
  55

Constant execute-at hosts fold: concat of literals becomes a literal
host, so the call gets full placement instead of the runtime fallback:

  $ ../../bin/xdxq.exe --doc peer1/people.xml=people.xml --explain \
  >   -q 'string(execute at {concat("pe", "er1")} function ($c := count(doc("xrpc://peer1/people.xml")//person)) { $c })' \
  >   2>&1 | head -7
  strategy: pass-by-projection
  valid d-points: 9, interesting points: 1, pushed: 1
    pushed v11 -> peer1
  rewritten query:
  (execute at {"peer1"}
     function ()
     {string((execute at {"peer1"}
