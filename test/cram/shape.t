Static wire-shape inference and the compiled codecs: the --shapes dump,
the codec: stats counters, and the --no-codec ablation (byte-identical
wire either way). --plan keeps the hand-written execute-at as the whole
plan, so the dump shows exactly the call sites written below.

  $ ../../bin/xdx_gen.exe --persons 10 --seed 7 --out-people people.xml --out-auctions auctions.xml >/dev/null 2>&1

  $ COUNT='string((execute at {"peer1"} function () { count(doc("xrpc://peer1/people.xml")//person) }))'

--shapes prints the analysis and the codec-priced cost estimate, then
exits without executing. An all-atomic call site gets both halves of the
codec; the estimate line prices the compiled encoder's savings.

  $ ../../bin/xdxq.exe --doc peer1/people.xml=people.xml -s by-value --plan --shapes -q "$COUNT"
  wire shapes: 1 call site, 1 with a compiled codec
  envelope: request-id (fault injection only) | txn, epoch int | deadline %015.6f (15B, re-stampable) | retry-after %08.4f (8B) | trace header after <env:Body>
  v6 @ peer1 (execute-at v7)
    response : atomic numeric
    codec    : compiled encoder + compiled decoder
  pass-by-value        fetched=       0B responses~      64B overhead=  400B total~     395B (codec saves 69B)

A node-sequence response is dynamic — ⊤ in the shape lattice — so the
decoder stays generic while the request encoder still compiles.

  $ NODES='for $p in (execute at {"peer1"} function () { doc("xrpc://peer1/people.xml")//person }) return $p/name'

  $ ../../bin/xdxq.exe --doc peer1/people.xml=people.xml -s by-value --plan --shapes -q "$NODES"
  wire shapes: 1 call site, 1 with a compiled codec
  envelope: request-id (fault injection only) | txn, epoch int | deadline %015.6f (15B, re-stampable) | retry-after %08.4f (8B) | trace header after <env:Body>
  v5 @ peer1 (execute-at v6)
    response : dynamic
    codec    : compiled encoder, generic decoder
  pass-by-value        fetched=       0B responses~    9243B overhead=  400B total~    9583B (codec saves 60B)

Executing with --stats shows the codec counters: the atomic call site
compiles and its response takes the flat decoder, no bailouts.

  $ ../../bin/xdxq.exe --doc peer1/people.xml=people.xml -s by-value --plan --stats -q "$COUNT" 2>&1 \
  >   | sed -E 's/[0-9]+\.[0-9]{3}ms/Tms/g'
  10
  strategy: pass-by-value
  messages: 2 (607 bytes), documents fetched: 0 bytes
  times: wall Tms, serialize Tms, shred Tms, remote Tms, network(sim) Tms
  faults: injected 0, timeouts 0, retries 0, fallbacks 0, dedup-hits 0
  codec: compiled 1, decodes 1, event-shreds 0, bailouts 0

--no-codec is the ablation: same answer, same message count, same wire
bytes — the compiled paths are strict specializations — and no codec
counters, because no codec was installed.

  $ ../../bin/xdxq.exe --doc peer1/people.xml=people.xml -s by-value --plan --no-codec --stats -q "$COUNT" 2>&1 \
  >   | sed -E 's/[0-9]+\.[0-9]{3}ms/Tms/g'
  10
  strategy: pass-by-value
  messages: 2 (607 bytes), documents fetched: 0 bytes
  times: wall Tms, serialize Tms, shred Tms, remote Tms, network(sim) Tms
  faults: injected 0, timeouts 0, retries 0, fallbacks 0, dedup-hits 0
