(* Distributed-transaction properties: a multi-peer update query run
   through 2PC is ALL-OR-NOTHING and EXACTLY-ONCE under ANY seeded fault
   schedule — including crash-restarts that wipe a participant's volatile
   state at every individual 2PC step. After the outage heals and
   coordinator recovery re-drives unresolved transactions, the world is
   either exactly the committed reference state or exactly the initial
   state; a run that returned a value must have committed everywhere.

   Also: the transaction layer is deterministic (same spec+seed =>
   identical stats, outcome and final state), journals are durable across
   file-backed reopen, the server dedup cache is bounded, and a
   single-site update query keeps a wire byte-identical to a build that
   never heard of transactions. *)

module S = Xd_core.Strategy
module E = Xd_core.Executor
module D = Xd_core.Decompose
module F = Xd_xrpc.Fault
module M = Xd_xrpc.Message
module N = Xd_xrpc.Network
module J = Xd_xrpc.Journal
open Util

let make_net = Gen_queries.make_net
let parse q = Xd_lang.Parser.parse_query q

(* ---- multi-peer update catalog over the Gen_queries database ----------- *)

(* deletes at two peers: partial application is visible as a state that
   matches neither the reference nor the initial world *)
let q_delete_two =
  {|(for $p in doc("xrpc://peerA/students.xml")/child::people/child::person
       return (if (($p/child::age = 23)) then (delete node $p) else ()),
     for $e in doc("xrpc://peerB/course.xml")/child::enroll/child::exam
       return (if (($e/child::grade = "C")) then (delete node $e) else ()))|}

(* inserts at two peers: a double-applied PUL is visible as a duplicated
   <flag> element, so this query also pins exactly-once *)
let q_insert_two =
  {|(insert node <flag>done</flag> into doc("xrpc://peerA/students.xml")/child::people,
     insert node <flag>done</flag> into doc("xrpc://peerB/course.xml")/child::enroll)|}

(* client-local update + remote update: the coordinator is a participant
   of its own transaction *)
let q_mixed_local =
  {|(delete node doc("local.xml")/child::conf/child::wanted,
     for $e in doc("xrpc://peerB/course.xml")/child::enroll/child::exam
       return (if (($e/child::grade = "A")) then (delete node $e) else ()))|}

(* single-peer update: [`Auto] keeps it off 2PC; [`Always] forces it *)
let q_single =
  {|for $p in doc("xrpc://peerA/students.xml")/child::people/child::person
    return (if (($p/child::age = 23)) then (delete node $p) else ())|}

let queries = [| q_delete_two; q_insert_two; q_mixed_local |]

let world_state net =
  List.map
    (fun (host, name) ->
      let peer = Xd_xrpc.Network.find_peer net host in
      let d = Option.get (Xd_xrpc.Peer.find_doc peer name) in
      Xd_xml.Serializer.doc d)
    [ ("peerA", "students.xml"); ("peerB", "course.xml");
      ("client", "local.xml") ]

let initial_state = lazy (world_state (fst (make_net ())))

(* ---- random fault schedules, restart-heavy ----------------------------- *)

let gen_rule =
  let open QCheck.Gen in
  let* target = oneofl [ ""; "peerA:"; "peerB:" ] in
  let* kind =
    oneofl
      [ "drop"; "dup"; "truncate"; "delay=0.3"; "crash=2"; "restart";
        "restart=2"; "down" ]
  in
  let* prob = oneofl [ ""; "@0.2"; "@0.5"; "@1" ] in
  let* limit = oneofl [ ""; "#1"; "#3" ] in
  let* skip = oneofl [ ""; "%1"; "%3"; "%6" ] in
  return (target ^ kind ^ prob ^ limit ^ skip)

let gen_spec =
  let open QCheck.Gen in
  let* n = int_range 1 3 in
  let* rules = list_size (return n) gen_rule in
  return (String.concat ";" rules)

let arb_case queries =
  let open QCheck.Gen in
  let gen =
    let* qi = int_bound (Array.length queries - 1) in
    let* spec = gen_spec in
    let* seed = int_bound 9999 in
    return (qi, spec, seed)
  in
  QCheck.make
    ~print:(fun (qi, spec, seed) ->
      Printf.sprintf "query %d, spec %S, seed %d" qi spec seed)
    gen

let fault_of spec seed =
  match F.parse spec with
  | Ok s -> F.create ~seed s
  | Error e -> Alcotest.failf "generated an unparsable spec %S: %s" spec e

(* ---- the central property: atomic commit under any schedule ------------ *)

(* Fault-free transactional reference, memoized per (strategy, query). *)
let ref_memo : (string * string, (string * string list) option) Hashtbl.t =
  Hashtbl.create 16

let reference ~strategy ~txn src =
  let key = (S.to_string strategy, src) in
  match Hashtbl.find_opt ref_memo key with
  | Some r -> r
  | None ->
    let r =
      let net, client = make_net () in
      match E.run ~txn net ~client strategy (parse src) with
      | r -> Some (Xd_lang.Value.serialize r.E.value, world_state net)
      | exception _ -> None
    in
    Hashtbl.add ref_memo key r;
    r

(* One faulty transactional run: execute, classify, heal the outage, run
   coordinator recovery, and return the settled world. *)
let run_recover ~strategy ~txn src spec seed =
  let net, client = make_net ~fault:(fault_of spec seed) () in
  let outcome =
    match
      E.run ~timeout_s:0.5 ~retries:2 ~txn net ~client strategy (parse src)
    with
    | r -> `Value (Xd_lang.Value.serialize r.E.value)
    | exception M.Xrpc_fault _ -> `Typed_failure
    | exception M.Xrpc_timeout _ -> `Typed_failure
  in
  N.heal net;
  E.recover ~timeout_s:0.5 ~retries:2 net ~client;
  (outcome, world_state net)

let atomic_after_recovery ~strategy ~txn src (spec, seed) =
  match reference ~strategy ~txn src with
  | None -> QCheck.assume_fail ()
  | Some (ref_value, ref_state) -> (
    match run_recover ~strategy ~txn src spec seed with
    | `Value v, state ->
      (* success must be exact: value AND every peer committed *)
      v = ref_value && state = ref_state
    | `Typed_failure, state ->
      (* all-or-nothing: after recovery the transaction either committed
         everywhere or nowhere — any in-between state (one peer applied,
         the other not; an update applied twice) is a failure *)
      state = ref_state || state = Lazy.force initial_state)

let prop_atomic ~count strategy =
  qtest ~count
    (Printf.sprintf "2PC all-or-nothing under any fault schedule (%s)"
       (S.to_string strategy))
    (arb_case queries)
    (fun (qi, spec, seed) ->
      atomic_after_recovery ~strategy ~txn:`Auto queries.(qi) (spec, seed))

(* forcing 2PC onto a single-peer update must preserve the same contract *)
let prop_atomic_forced =
  qtest ~count:150 "forced 2PC on a single-peer update is still atomic"
    (arb_case [| q_single |])
    (fun (_, spec, seed) ->
      atomic_after_recovery ~strategy:S.By_fragment ~txn:`Always q_single
        (spec, seed))

(* ---- determinism -------------------------------------------------------- *)

let stats_tuple net =
  let st = net.Xd_xrpc.Network.stats in
  let module St = Xd_xrpc.Stats in
  ( ( St.messages st,
      St.message_bytes st,
      St.faults st,
      St.timeouts st,
      St.retries st,
      St.dedup_hits st ),
    ( St.dedup_evictions st,
      St.txn_staged st,
      St.txn_commits st,
      St.txn_aborts st ) )

let prop_deterministic =
  qtest ~count:200
    "same spec+seed => identical txn outcome, stats and settled state"
    (arb_case queries)
    (fun (qi, spec, seed) ->
      let once () =
        let net, client = make_net ~fault:(fault_of spec seed) () in
        let q = parse queries.(qi) in
        let outcome =
          match
            E.run ~timeout_s:0.5 ~retries:2 ~txn:`Auto net ~client
              S.By_fragment q
          with
          | r -> "value: " ^ Xd_lang.Value.serialize r.E.value
          | exception M.Xrpc_fault { code; _ } ->
            "fault: " ^ M.fault_code_to_string code
          | exception M.Xrpc_timeout { attempts; _ } ->
            Printf.sprintf "timeout after %d" attempts
        in
        N.heal net;
        E.recover ~timeout_s:0.5 ~retries:2 net ~client;
        (outcome, stats_tuple net, world_state net)
      in
      once () = once ())

(* ---- crash-restart parked at every single 2PC step ---------------------- *)

(* [%SKIP] parks one restart (or permanent outage) at the k-th message a
   peer receives, for every k the exchange can reach: request arrival,
   prepare arrival, commit arrival, and every retry in between. *)
let test_restart_every_step () =
  let ref_state =
    match reference ~strategy:S.By_fragment ~txn:`Auto q_delete_two with
    | Some (_, st) -> st
    | None -> Alcotest.fail "reference run failed"
  in
  List.iter
    (fun target ->
      List.iter
        (fun kind ->
          for skip = 0 to 9 do
            let spec =
              Printf.sprintf "%s%s#1%s" target kind
                (if skip > 0 then Printf.sprintf "%%%d" skip else "")
            in
            let _, state =
              run_recover ~strategy:S.By_fragment ~txn:`Auto q_delete_two
                spec 0
            in
            let ok =
              state = ref_state || state = Lazy.force initial_state
            in
            check_bool
              (Printf.sprintf "all-or-nothing under %S" spec)
              ok
          done)
        [ "restart"; "down" ])
    [ "peerA:"; "peerB:"; "" ]

(* ---- recovery completes an interrupted commit --------------------------- *)

(* peerB dies permanently right when the commit decision reaches it: the
   coordinator has journaled the decision, so recovery must finish the
   commit — not roll it back. *)
let test_recover_finishes_commit () =
  let ref_state =
    match reference ~strategy:S.By_fragment ~txn:`Auto q_delete_two with
    | Some (_, st) -> st
    | None -> Alcotest.fail "reference run failed"
  in
  let net, client = make_net ~fault:(fault_of "peerB:down%2" 0) () in
  (match
     E.run ~timeout_s:0.5 ~retries:2 ~txn:`Auto net ~client S.By_fragment
       (parse q_delete_two)
   with
  | _ -> ()
  | exception (M.Xrpc_fault _ | M.Xrpc_timeout _) -> ());
  N.heal net;
  E.recover ~timeout_s:0.5 ~retries:2 net ~client;
  check_bool "decided transaction committed everywhere after recovery"
    (world_state net = ref_state)

(* ---- journal durability -------------------------------------------------- *)

let test_journal_memory () =
  let j = J.in_memory ~peer:"p" in
  check_bool "stage" (J.stage j ~txn:"t1" ~req:"r1" ~pul:"<pul/>");
  check_bool "retried stage dedups"
    (not (J.stage j ~txn:"t1" ~req:"r1" ~pul:"<pul/>"));
  check_bool "prepare pins" (J.prepare j ~txn:"t1");
  check_bool "in doubt" (J.in_doubt j = [ "t1" ]);
  (match J.commit j ~txn:"t1" with
  | `Apply [ "<pul/>" ] -> J.committed j ~txn:"t1"
  | _ -> Alcotest.fail "expected the staged PUL back");
  check_bool "commit idempotent" (J.commit j ~txn:"t1" = `Already);
  (* abort after commit must not un-commit *)
  J.abort j ~txn:"t1";
  check_bool "commit survives late abort" (J.commit j ~txn:"t1" = `Already);
  (* presumed abort: staged but unprepared does not survive a restart *)
  check_bool "stage t2" (J.stage j ~txn:"t2" ~req:"" ~pul:"<pul/>");
  J.crash_restart j;
  check_bool "unprepared stage presumed aborted"
    (J.commit j ~txn:"t2" = `Unknown);
  check_bool "prepare after restart refused" (not (J.prepare j ~txn:"t2"))

let fresh_dir dir =
  if Sys.file_exists dir then
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir)

let test_journal_file () =
  let dir = "txn-journal-test" in
  fresh_dir dir;
  let j = J.open_file ~dir ~peer:"p1" in
  check_bool "stage" (J.stage j ~txn:"t1" ~req:"r1" ~pul:"<pul a='&'/>");
  check_bool "prepare" (J.prepare j ~txn:"t1");
  (* reopening the file replays it as a crash-restart: the prepared vote
     and its PUL are durable *)
  let j2 = J.open_file ~dir ~peer:"p1" in
  check_bool "prepared survives reopen" (J.in_doubt j2 = [ "t1" ]);
  (match J.commit j2 ~txn:"t1" with
  | `Apply [ "<pul a='&'/>" ] -> J.committed j2 ~txn:"t1"
  | _ -> Alcotest.fail "expected the staged PUL back after reopen");
  let j3 = J.open_file ~dir ~peer:"p1" in
  check_bool "committed is durable" (J.commit j3 ~txn:"t1" = `Already);
  check_bool "stage t2" (J.stage j3 ~txn:"t2" ~req:"" ~pul:"<pul/>");
  let j4 = J.open_file ~dir ~peer:"p1" in
  check_bool "unprepared stage presumed aborted across reopen"
    (J.commit j4 ~txn:"t2" = `Unknown)

(* end-to-end with file-backed journals: an interrupted commit settles
   correctly and the journal files exist on disk *)
let test_journal_dir_end_to_end () =
  let dir = "txn-journal-e2e" in
  fresh_dir dir;
  let ref_state =
    match reference ~strategy:S.By_fragment ~txn:`Auto q_delete_two with
    | Some (_, st) -> st
    | None -> Alcotest.fail "reference run failed"
  in
  let net, client =
    make_net ~fault:(fault_of "peerB:restart#1%2" 0) ~journal_dir:dir ()
  in
  (match
     E.run ~timeout_s:0.5 ~retries:2 ~txn:`Auto net ~client S.By_fragment
       (parse q_delete_two)
   with
  | _ -> ()
  | exception (M.Xrpc_fault _ | M.Xrpc_timeout _) -> ());
  N.heal net;
  E.recover ~timeout_s:0.5 ~retries:2 net ~client;
  check_bool "settled all-or-nothing with file-backed journals"
    (world_state net = ref_state
    || world_state net = Lazy.force initial_state);
  check_bool "journal file written" (Sys.file_exists (dir ^ "/client.journal"))

(* ---- bounded dedup cache -------------------------------------------------- *)

(* two calls to the same peer on a duplicating wire: both responses carry
   request-ids and get cached; a cap of one forces an eviction *)
let test_dedup_cache_bounded () =
  let two_calls =
    {|(execute at {"peerA"} function ()
        { count(doc("xrpc://peerA/students.xml")/child::people/child::person) },
      execute at {"peerA"} function ()
        { count(doc("xrpc://peerA/students.xml")/child::people/child::tutor) })|}
  in
  let net, client = make_net ~fault:(fault_of "dup" 0) () in
  let plan = D.plan_of_query S.By_fragment (parse two_calls) in
  let r =
    E.run_plan ~timeout_s:0.5 ~retries:2 ~dedup_cap:1 net ~client plan
  in
  check_string "value exact under dups" "4 0"
    (Xd_lang.Value.serialize r.E.value);
  check_bool "cache eviction counted" (r.E.timing.E.dedup_evictions >= 1)

(* ---- single-site fast path: wire identity -------------------------------- *)

let trace session_record =
  List.map
    (fun r ->
      match r.Xd_xrpc.Session.dir with
      | `Request h -> "->" ^ h ^ " " ^ r.Xd_xrpc.Session.text
      | `Response h -> "<-" ^ h ^ " " ^ r.Xd_xrpc.Session.text)
    !session_record

(* a single-peer no-fault update query must produce a byte-identical wire
   under [`Auto] and under [`Off]: the transaction layer is invisible
   until a second site is involved *)
let test_single_site_wire_identity () =
  List.iter
    (fun strategy ->
      let run txn =
        let record = ref [] in
        let net, client = make_net () in
        let r = E.run ~record ~txn net ~client strategy (parse q_single) in
        (Xd_lang.Value.serialize r.E.value, trace record, world_state net)
      in
      let v_auto, t_auto, s_auto = run `Auto in
      let v_off, t_off, s_off = run `Off in
      check_bool
        (Printf.sprintf "identical wire bytes (%s)" (S.to_string strategy))
        (t_auto = t_off);
      check_string "identical value" v_off v_auto;
      check_bool "identical state" (s_auto = s_off))
    [ S.By_fragment; S.By_projection ]

(* ---- the static site analysis -------------------------------------------- *)

let test_txn_needed () =
  let plan_query strategy src = (D.decompose strategy (parse src)).D.query in
  check_bool "single-peer plan needs no txn"
    (not (E.txn_needed ~self:"client" (plan_query S.By_fragment q_single)));
  check_bool "two-peer update plan needs txn"
    (E.txn_needed ~self:"client" (plan_query S.By_fragment q_delete_two));
  check_bool "local+remote update plan needs txn"
    (E.txn_needed ~self:"client" (plan_query S.By_fragment q_mixed_local));
  check_bool "read-only plan needs no txn"
    (not
       (E.txn_needed ~self:"client"
          (plan_query S.By_fragment
             {|count(doc("xrpc://peerA/students.xml")//node())|})));
  (* a computed host is statically unknowable: conservative yes *)
  let computed =
    {|execute at {string(doc("local.xml")/child::conf/child::wanted)}
      function () { delete node doc("xrpc://peerA/students.xml")/child::people }|}
  in
  check_bool "computed host is conservative"
    (E.txn_needed ~self:"client" (parse computed))

(* every catalog query must have a fault-free transactional reference
   under both function-shipping strategies — otherwise the atomicity
   properties above would pass vacuously *)
let test_references_exist () =
  List.iter
    (fun strategy ->
      Array.iteri
        (fun qi src ->
          check_bool
            (Printf.sprintf "query %d has a reference under %s" qi
               (S.to_string strategy))
            (reference ~strategy ~txn:`Auto src <> None))
        queries)
    [ S.By_fragment; S.By_projection ]

let () =
  Alcotest.run "xd_txn"
    [
      ( "properties",
        [
          prop_atomic ~count:400 S.By_fragment;
          prop_atomic ~count:300 S.By_projection;
          prop_atomic_forced;
          prop_deterministic;
        ] );
      ( "scenarios",
        [
          tc "references exist" test_references_exist;
          tc "restart at every 2PC step" test_restart_every_step;
          tc "recovery finishes a decided commit" test_recover_finishes_commit;
          tc "journal semantics (memory)" test_journal_memory;
          tc "journal durability (file)" test_journal_file;
          tc "file-backed journals end to end" test_journal_dir_end_to_end;
          tc "dedup cache is bounded" test_dedup_cache_bounded;
          tc "single-site wire identity" test_single_site_wire_identity;
          tc "txn_needed site analysis" test_txn_needed;
        ] );
    ]
