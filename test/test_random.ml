(* Randomized end-to-end equivalence: generate random XCore queries over a
   fixed distributed database and check that every strategy's execution is
   deep-equal to the local reference semantics.

   This is the central guarantee of the paper — the decomposition must be
   *conservative*: whatever it decides to push (or not), the result never
   changes. The generator (shared with test_verify) lives in
   Gen_queries. *)

module Ast = Xd_lang.Ast
module S = Xd_core.Strategy
module E = Xd_core.Executor
open Util

let make_net = Gen_queries.make_net
let arb_query = Gen_queries.arb_query

(* ---- the property ----------------------------------------------------------- *)

let run_reference q =
  let net, client = make_net () in
  E.run_local net ~client q

let prop_all_strategies_equivalent =
  qtest ~count:120 "random queries: all strategies = local semantics"
    arb_query (fun q ->
      match run_reference q with
      | exception _ -> QCheck.assume_fail () (* ill-typed random query *)
      | reference ->
        List.for_all
          (fun strat ->
            let net, client = make_net () in
            let r = E.run net ~client strat q in
            Xd_lang.Value.deep_equal r.E.value reference)
          S.all)

(* the strategies' valid decomposition points are monotone: everything
   by-value allows, by-fragment allows; everything by-fragment allows,
   by-projection allows (Sections V and VI only *remove* restrictions) *)
let prop_monotone_strategies =
  qtest ~count:60 "d-point sets grow with strategy power" arb_query (fun q ->
      (* share one normalized AST so vertex ids are comparable *)
      let q = Xd_core.Normalize.normalize_query (Xd_core.Inline.inline_query q) in
      let g = Xd_dgraph.Dgraph.build q.Ast.body in
      let dps s =
        List.map
          (fun e -> e.Ast.id)
          (Xd_core.Conditions.d_points (Xd_core.Conditions.make_ctx s g))
        |> List.sort_uniq compare
      in
      let subset a b = List.for_all (fun x -> List.mem x b) a in
      let v = dps S.By_value and f = dps S.By_fragment and p = dps S.By_projection in
      subset v f && subset f p)

(* normalization is idempotent on arbitrary generated queries *)
let prop_normalize_idempotent =
  qtest ~count:80 "normalization is idempotent" arb_query (fun q ->
      let n1 = Xd_core.Normalize.normalize q.Ast.body in
      let n2 = Xd_core.Normalize.normalize n1 in
      Xd_lang.Pp.expr_to_string n1 = Xd_lang.Pp.expr_to_string n2)

(* inlining then evaluating = evaluating (semantics preserved) *)
let prop_inline_preserves =
  qtest ~count:60 "inlining preserves local semantics" arb_query (fun q ->
      let run q =
        let net, client = make_net () in
        match E.run_local net ~client q with
        | v -> Some (Xd_lang.Value.serialize v)
        | exception _ -> None
      in
      run q = run (Xd_core.Inline.inline_query q))

(* decomposition itself must also be stable: decomposing twice gives the
   same plan text *)
let prop_decompose_deterministic =
  qtest ~count:60 "decomposition is deterministic" arb_query (fun q ->
      let p1 = Xd_core.Decompose.decompose S.By_projection q in
      let p2 = Xd_core.Decompose.decompose S.By_projection q in
      Xd_lang.Pp.query_to_string p1.Xd_core.Decompose.query
      = Xd_lang.Pp.query_to_string p2.Xd_core.Decompose.query)

(* and the decomposed plan must re-parse (pp round trip on plans) *)
let prop_plan_reparses =
  qtest ~count:60 "decomposed plans re-parse" arb_query (fun q ->
      let p = Xd_core.Decompose.decompose S.By_fragment q in
      let txt = Xd_lang.Pp.query_to_string p.Xd_core.Decompose.query in
      match Xd_lang.Parser.parse_query txt with
      | _ -> true
      | exception _ -> false)

let () =
  Alcotest.run "xd_random"
    [
      ( "equivalence",
        [
          prop_all_strategies_equivalent;
          prop_monotone_strategies;
          prop_normalize_idempotent;
          prop_inline_preserves;
          prop_decompose_deterministic;
          prop_plan_reparses;
        ] );
    ]
