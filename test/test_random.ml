(* Randomized end-to-end equivalence: generate random XCore queries over a
   fixed distributed database and check that every strategy's execution is
   deep-equal to the local reference semantics.

   This is the central guarantee of the paper — the decomposition must be
   *conservative*: whatever it decides to push (or not), the result never
   changes. The generator deliberately produces queries with reverse and
   horizontal axes, node identity tests, node-set operations, repeated
   doc() applications and order-sensitive constructs, i.e. precisely the
   shapes the insertion conditions exist to protect.

   Node-set expressions are kept single-source (each nodeseq subtree draws
   from one document): relative order between *different* documents is
   implementation-defined in XQuery, so cross-document unions may
   legitimately order differently between runs — single-source queries
   must agree exactly. *)

module Ast = Xd_lang.Ast
module S = Xd_core.Strategy
module E = Xd_core.Executor
open Util

let sources =
  [|
    ("xrpc://peerA/students.xml", [| "people"; "person"; "name"; "tutor"; "id"; "age" |]);
    ("xrpc://peerB/course.xml", [| "enroll"; "exam"; "grade"; "topic" |]);
    ("local.xml", [| "conf"; "minage"; "wanted" |]);
  |]

let make_net () =
  let net = Xd_xrpc.Network.create () in
  let client = Xd_xrpc.Network.new_peer net "client" in
  let a = Xd_xrpc.Network.new_peer net "peerA" in
  let b = Xd_xrpc.Network.new_peer net "peerB" in
  ignore
    (Xd_xrpc.Peer.load_xml a ~doc_name:"students.xml"
       {|<people>
           <person id="s1"><name>Ann</name><tutor>Bob</tutor><id>1</id><age>23</age></person>
           <person id="s2"><name>Bob</name><tutor>Zoe</tutor><id>2</id><age>35</age></person>
           <person id="s3"><name>Cyd</name><tutor>Ann</tutor><id>3</id><age>29</age></person>
           <person id="s4"><name>Dan</name><tutor>Cyd</tutor><id>4</id><age>41</age></person>
         </people>|});
  ignore
    (Xd_xrpc.Peer.load_xml b ~doc_name:"course.xml"
       {|<enroll>
           <exam id="1"><grade>A</grade><topic>db</topic></exam>
           <exam id="2"><grade>C</grade><topic>os</topic></exam>
           <exam id="4"><grade>B</grade><topic>ml</topic></exam>
         </enroll>|});
  ignore
    (Xd_xrpc.Peer.load_xml client ~doc_name:"local.xml"
       {|<conf><minage>25</minage><wanted>db</wanted></conf>|});
  (net, client)

(* ---- generator ----------------------------------------------------------- *)

open QCheck.Gen

let fresh =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "g%d" !n

let gen_axis =
  frequencyl
    [
      (6, Ast.Child);
      (3, Ast.Descendant);
      (1, Ast.Descendant_or_self);
      (1, Ast.Self);
      (2, Ast.Attribute);
      (2, Ast.Parent);
      (1, Ast.Ancestor);
      (1, Ast.Following_sibling);
      (1, Ast.Preceding_sibling);
      (1, Ast.Following);
      (1, Ast.Preceding);
    ]

let gen_test names =
  frequency
    [
      (4, map (fun n -> Ast.Name_test n) (oneofa names));
      (2, return Ast.Kind_node);
      (1, return Ast.Wildcard);
      (1, return Ast.Kind_text);
    ]

(* a node sequence drawn from one source; [vars] are in-scope variables
   bound to nodes of the same source *)
let rec gen_nodeseq (uri, names) vars n =
  let base =
    frequency
      ((if vars = [] then []
        else [ (3, map (fun v -> Ast.var v) (oneofl vars)) ])
      @ [ (2, return (Ast.doc uri)) ])
  in
  if n <= 0 then base
  else
    frequency
      [
        (1, base);
        ( 6,
          map2
            (fun ctx (ax, t) -> Ast.step ctx ax t)
            (gen_nodeseq (uri, names) vars (n - 1))
            (pair gen_axis (gen_test names)) );
        ( 2,
          map3
            (fun op a b -> Ast.mk (Ast.Node_set (op, a, b)))
            (oneofl [ Ast.Union; Ast.Intersect; Ast.Except ])
            (gen_nodeseq (uri, names) vars (n / 2))
            (gen_nodeseq (uri, names) vars (n / 2)) );
        ( 2,
          (* for loop with an optional predicate *)
          gen_nodeseq (uri, names) vars (n / 2) >>= fun src ->
          let v = fresh () in
          gen_bool (uri, names) (v :: vars) (n / 2) >>= fun cond ->
          gen_nodeseq (uri, names) (v :: vars) (n / 2) >>= fun body ->
          return
            (Ast.mk
               (Ast.For
                  (v, src, Ast.mk (Ast.If (cond, body, Ast.empty_seq ()))))) );
        ( 1,
          (* let binding *)
          gen_nodeseq (uri, names) vars (n / 2) >>= fun value ->
          let v = fresh () in
          gen_nodeseq (uri, names) (v :: vars) (n / 2) >>= fun body ->
          return (Ast.mk (Ast.Let (v, value, body))) );
        ( 1,
          (* positional selection keeps sequences small *)
          map2
            (fun ns i -> Ast.fun_call "item-at" [ ns; Ast.int (1 + i) ])
            (gen_nodeseq (uri, names) vars (n - 1))
            (int_bound 3) );
      ]

and gen_bool (uri, names) vars n =
  if n <= 0 then return (Ast.literal (Ast.A_bool true))
  else
    frequency
      [
        ( 4,
          map3
            (fun ns op k -> Ast.mk (Ast.Value_cmp (op, ns, Ast.int k)))
            (gen_nodeseq (uri, names) vars (n - 1))
            (oneofl [ Ast.Eq; Ast.Ne; Ast.Lt; Ast.Gt ])
            (int_bound 45) );
        ( 3,
          map2
            (fun a b -> Ast.mk (Ast.Value_cmp (Ast.Eq, a, b)))
            (gen_nodeseq (uri, names) vars (n / 2))
            (gen_nodeseq (uri, names) vars (n / 2)) );
        ( 2,
          map
            (fun ns -> Ast.fun_call "exists" [ ns ])
            (gen_nodeseq (uri, names) vars (n - 1)) );
        ( 2,
          (* node identity / order on singletons *)
          map3
            (fun op a b ->
              Ast.mk
                (Ast.Node_cmp
                   ( op,
                     Ast.fun_call "item-at" [ a; Ast.int 1 ],
                     Ast.fun_call "item-at" [ b; Ast.int 1 ] )))
            (oneofl [ Ast.Is; Ast.Precedes; Ast.Follows ])
            (gen_nodeseq (uri, names) vars (n / 2))
            (gen_nodeseq (uri, names) vars (n / 2)) );
        ( 1,
          map2
            (fun a b -> Ast.mk (Ast.And (a, b)))
            (gen_bool (uri, names) vars (n / 2))
            (gen_bool (uri, names) vars (n / 2)) );
      ]

(* an order-insensitive atomic observation of a node sequence *)
let gen_atom source vars n =
  frequency
    [
      (3, map (fun ns -> Ast.fun_call "count" [ ns ]) (gen_nodeseq source vars n));
      ( 2,
        map
          (fun ns ->
            let v = fresh () in
            Ast.fun_call "string-join"
              [
                Ast.mk
                  (Ast.For (v, ns, Ast.fun_call "name" [ Ast.var v ]));
                Ast.str "-";
              ])
          (gen_nodeseq source vars n) );
      ( 2,
        map
          (fun ns ->
            let v = fresh () in
            Ast.fun_call "string-join"
              [
                Ast.mk
                  (Ast.For (v, ns, Ast.fun_call "string" [ Ast.var v ]));
                Ast.str "|";
              ])
          (gen_nodeseq source vars n) );
      (1, map (fun b -> Ast.fun_call "string" [ b ]) (gen_bool source vars n));
    ]

(* a whole query: a sequence of observations, possibly over different
   sources, plus one node-valued result from a single source *)
let gen_query =
  sized @@ fun size ->
  let n = 2 + min size 5 in
  list_size (int_range 1 3)
    (oneofa sources >>= fun src -> gen_atom src [] n)
  >>= fun atoms ->
  oneofa sources >>= fun src ->
  gen_nodeseq src [] n >>= fun ns ->
  return { Ast.funcs = []; body = Ast.seq (atoms @ [ ns ]) }

let arb_query =
  QCheck.make ~print:(fun q -> Xd_lang.Pp.query_to_string q) gen_query

(* ---- the property ----------------------------------------------------------- *)

let run_reference q =
  let net, client = make_net () in
  E.run_local net ~client q

let prop_all_strategies_equivalent =
  qtest ~count:120 "random queries: all strategies = local semantics"
    arb_query (fun q ->
      match run_reference q with
      | exception _ -> QCheck.assume_fail () (* ill-typed random query *)
      | reference ->
        List.for_all
          (fun strat ->
            let net, client = make_net () in
            let r = E.run net ~client strat q in
            Xd_lang.Value.deep_equal r.E.value reference)
          S.all)

(* the strategies' valid decomposition points are monotone: everything
   by-value allows, by-fragment allows; everything by-fragment allows,
   by-projection allows (Sections V and VI only *remove* restrictions) *)
let prop_monotone_strategies =
  qtest ~count:60 "d-point sets grow with strategy power" arb_query (fun q ->
      (* share one normalized AST so vertex ids are comparable *)
      let q = Xd_core.Normalize.normalize_query (Xd_core.Inline.inline_query q) in
      let g = Xd_dgraph.Dgraph.build q.Ast.body in
      let dps s =
        List.map
          (fun e -> e.Ast.id)
          (Xd_core.Conditions.d_points (Xd_core.Conditions.make_ctx s g))
        |> List.sort_uniq compare
      in
      let subset a b = List.for_all (fun x -> List.mem x b) a in
      let v = dps S.By_value and f = dps S.By_fragment and p = dps S.By_projection in
      subset v f && subset f p)

(* normalization is idempotent on arbitrary generated queries *)
let prop_normalize_idempotent =
  qtest ~count:80 "normalization is idempotent" arb_query (fun q ->
      let n1 = Xd_core.Normalize.normalize q.Ast.body in
      let n2 = Xd_core.Normalize.normalize n1 in
      Xd_lang.Pp.expr_to_string n1 = Xd_lang.Pp.expr_to_string n2)

(* inlining then evaluating = evaluating (semantics preserved) *)
let prop_inline_preserves =
  qtest ~count:60 "inlining preserves local semantics" arb_query (fun q ->
      let run q =
        let net, client = make_net () in
        match E.run_local net ~client q with
        | v -> Some (Xd_lang.Value.serialize v)
        | exception _ -> None
      in
      run q = run (Xd_core.Inline.inline_query q))

(* decomposition itself must also be stable: decomposing twice gives the
   same plan text *)
let prop_decompose_deterministic =
  qtest ~count:60 "decomposition is deterministic" arb_query (fun q ->
      let p1 = Xd_core.Decompose.decompose S.By_projection q in
      let p2 = Xd_core.Decompose.decompose S.By_projection q in
      Xd_lang.Pp.query_to_string p1.Xd_core.Decompose.query
      = Xd_lang.Pp.query_to_string p2.Xd_core.Decompose.query)

(* and the decomposed plan must re-parse (pp round trip on plans) *)
let prop_plan_reparses =
  qtest ~count:60 "decomposed plans re-parse" arb_query (fun q ->
      let p = Xd_core.Decompose.decompose S.By_fragment q in
      let txt = Xd_lang.Pp.query_to_string p.Xd_core.Decompose.query in
      match Xd_lang.Parser.parse_query txt with
      | _ -> true
      | exception _ -> false)

let () =
  Alcotest.run "xd_random"
    [
      ( "equivalence",
        [
          prop_all_strategies_equivalent;
          prop_monotone_strategies;
          prop_normalize_idempotent;
          prop_inline_preserves;
          prop_decompose_deterministic;
          prop_plan_reparses;
        ] );
    ]
