(* Tests for the decomposition framework: insertion conditions per strategy
   (Sections IV-VI), interesting points (Examples 4.1/4.2), the Qv2/Qf2
   decompositions of Table IV, XRPCExpr insertion (Fig. 3) and distributed
   code motion (Example 4.3). *)

module Ast = Xd_lang.Ast
module D = Xd_core.Decompose
module S = Xd_core.Strategy
open Util

let q2 =
  {|(let $s := doc("xrpc://A/students.xml")/child::people/child::person
     return let $c := doc("xrpc://B/course42.xml")
     return let $t := for $x in $s return
                        if ($x/child::tutor = $s/child::name) then $x else ()
     return for $e in $c/child::enroll/child::exam
            return if ($e/attribute::id = $t/child::id) then $e else ())/child::grade|}

let parse = Xd_lang.Parser.parse_query

let execute_ats body =
  let acc = ref [] in
  Ast.iter
    (fun e ->
      match e.Ast.desc with
      | Ast.Execute_at x -> acc := (e, x) :: !acc
      | _ -> ())
    body;
  List.rev !acc

let hosts body =
  List.filter_map
    (fun (_, x) ->
      match x.Ast.host.Ast.desc with
      | Ast.Literal (Ast.A_string h) -> Some h
      | _ -> None)
    (execute_ats body)
  |> List.sort compare

(* ---- Table IV: Qv2 (pass-by-value) ------------------------------------- *)

let test_by_value_q2 () =
  (* Under pass-by-value the selection for-loop must stay local (its result
     feeds further axis steps), so the pushed A-side body is the bare path
     of Qv2's fcn1. Q2's B-side uses only child steps, so it is by-value
     safe too and gets pushed as well (the paper's XMark variant uses
     descendant::, which is what keeps its B-side local; see
     test_by_value_descendant below). *)
  let plan = D.decompose S.By_value (parse q2) in
  let eas = execute_ats plan.D.query.Ast.body in
  check_slist "pushed hosts" [ "A"; "B" ] (hosts plan.D.query.Ast.body);
  List.iter
    (fun (_, x) ->
      check_int "no parameters under by-value" 0 (List.length x.Ast.params);
      let has_for = ref false in
      Ast.iter
        (fun e -> match e.Ast.desc with Ast.For _ -> has_for := true | _ -> ())
        x.Ast.body;
      check_bool "no for-loop pushed under by-value" (not !has_for))
    eas

let test_by_value_descendant () =
  (* the paper's XMark-variant shape: the B side navigates with descendant::
     whose result feeds further steps — by-value must keep it local *)
  let q =
    parse
      {|(let $t := doc("xrpc://A/people.xml")/child::site/child::people/child::person
         return for $e in doc("xrpc://B/auctions.xml")/descendant::open_auction
                return if ($e/child::seller/attribute::person = $t/attribute::id)
                       then $e/child::annotation else ())/child::author|}
  in
  let plan = D.decompose S.By_value q in
  check_slist "by-value pushes only the A path" [ "A" ]
    (hosts plan.D.query.Ast.body);
  let plan_f = D.decompose S.By_fragment q in
  check_slist "by-fragment pushes both" [ "A"; "B" ]
    (hosts plan_f.D.query.Ast.body)

(* ---- Table IV: Qf2 (pass-by-fragment) ----------------------------------- *)

let test_by_fragment_q2 () =
  let plan = D.decompose S.By_fragment (parse q2) in
  let eas = execute_ats plan.D.query.Ast.body in
  check_int "by-fragment pushes two subqueries" 2 (List.length eas);
  check_slist "pushed to A and B" [ "A"; "B" ] (hosts plan.D.query.Ast.body);
  (* fcn1 (at A) has no parameters and contains the selection loop *)
  let a_x =
    snd (List.find (fun (_, x) -> x.Ast.host.Ast.desc = Ast.Literal (Ast.A_string "A")) (execute_ats plan.D.query.Ast.body))
  in
  check_int "fcn1 parameterless" 0 (List.length a_x.Ast.params);
  let has_for = ref false in
  Ast.iter
    (fun e -> match e.Ast.desc with Ast.For _ -> has_for := true | _ -> ())
    a_x.Ast.body;
  check_bool "fcn1 contains the selection loop" !has_for;
  (* fcn2 (at B) takes $t as its parameter *)
  let b_x =
    snd (List.find (fun (_, x) -> x.Ast.host.Ast.desc = Ast.Literal (Ast.A_string "B")) (execute_ats plan.D.query.Ast.body))
  in
  check_slist "fcn2 parameter is $t" [ "t" ] (List.map fst b_x.Ast.params)

let test_by_projection_q2 () =
  let plan = D.decompose S.By_projection (parse q2) in
  check_int "by-projection pushes like by-fragment" 2
    (List.length (execute_ats plan.D.query.Ast.body));
  (* paths filled in: $t needs child::id, the caller needs child::grade *)
  let b_x =
    snd
      (List.find
         (fun (_, x) -> x.Ast.host.Ast.desc = Ast.Literal (Ast.A_string "B"))
         (execute_ats plan.D.query.Ast.body))
  in
  (match b_x.Ast.param_paths with
  | [ ("t", _, rets) ] ->
    check_bool "param projection asks for child::id" (List.mem "child::id" rets)
  | _ -> Alcotest.fail "expected paths for $t");
  let _, rets = b_x.Ast.result_paths in
  check_bool "result projection asks for child::grade"
    (List.mem "child::grade" rets)

(* ---- strategies keep getting more permissive ----------------------------- *)

let test_monotone_d_points () =
  let q = parse q2 in
  let count s = List.length (D.decompose s q).D.d_points in
  let v = count S.By_value
  and f = count S.By_fragment
  and p = count S.By_projection in
  check_bool "by-fragment >= by-value" (f >= v);
  check_bool "by-projection >= by-fragment" (p >= f)

(* ---- condition i: reverse/horizontal axes ------------------------------- *)

let test_reverse_axis_blocks () =
  (* parent:: applied to the remote result: by-value/by-fragment must not
     push, by-projection may. The union with a local document prevents the
     whole query from being pushed wholesale (which would be legal). *)
  let q =
    parse
      {|(doc("xrpc://A/d.xml")/child::r/child::a
         union doc("local.xml")/child::a)/parent::r|}
  in
  let pushed s = List.length (D.decompose s q).D.inserted in
  check_int "by-value refuses" 0 (pushed S.By_value);
  check_int "by-fragment refuses" 0 (pushed S.By_fragment);
  check_int "by-projection pushes" 1 (pushed S.By_projection)

(* ---- condition ii: node comparisons -------------------------------------- *)

let test_node_identity_blocks () =
  (* two applications of doc() on the same URI feed an intersect, and one
     operand is entangled with local data so the intersect cannot simply be
     pushed as a unit: both operands must stay local under every passing
     semantics (hasMatchingDoc) *)
  let q =
    parse
      {|let $k := doc("local.xml")/child::k
        return count((doc("xrpc://A/d.xml")/child::a) intersect
                     (for $x in doc("xrpc://A/d.xml")/child::a
                      return if ($x/child::v = $k) then $x else ()))|}
  in
  List.iter
    (fun s -> check_int (S.to_string s) 0 (List.length (D.decompose s q).D.inserted))
    [ S.By_value; S.By_fragment; S.By_projection ];
  (* without local entanglement the whole intersect lives at A and may be
     pushed as a unit: identity is then evaluated on the originals *)
  let q2 =
    parse
      {|count((doc("xrpc://A/d.xml")/child::a) intersect (doc("xrpc://A/d.xml")/child::a))|}
  in
  check_int "single-host unit still pushable" 1
    (List.length (D.decompose S.By_fragment q2).D.inserted)

let test_node_set_different_docs_ok () =
  (* union over two different remote documents, entangled with local data:
     by-fragment may push each side (different URIs, no mixed-call danger);
     by-value must not (unconditional condition ii) *)
  let q =
    parse
      {|let $k := doc("local.xml")/child::k
        return count((for $x in doc("xrpc://A/d.xml")/child::a
                      return if ($x/child::v = $k) then $x else ())
                     union
                     (for $y in doc("xrpc://B/e.xml")/child::b
                      return if ($y/child::v = $k) then $y else ()))|}
  in
  check_int "by-fragment pushes both sides" 2
    (List.length (D.decompose S.By_fragment q).D.inserted);
  check_int "by-value refuses (unconditional ii)" 0
    (List.length (D.decompose S.By_value q).D.inserted)

(* ---- condition iii: mixed-call sequences ---------------------------------- *)

let test_for_loop_relaxation () =
  (* a downward step over a for-loop result that cannot be pushed wholesale
     (local predicate): by-value refuses (ordering of mixed-call results),
     by-fragment accepts (bulk RPC + fragment ordering) *)
  let q =
    parse
      {|let $k := doc("local.xml")/child::k
        return (for $x in doc("xrpc://A/d.xml")/child::r/child::a
                return if ($x/child::v = $k) then $x else ())/child::b|}
  in
  let pushed_bodies s =
    List.map
      (fun (_, (x : Ast.execute_at)) -> x.Ast.body)
      (execute_ats (D.decompose s q).D.query.Ast.body)
  in
  let contains_for b =
    let f = ref false in
    Ast.iter (fun e -> match e.Ast.desc with Ast.For _ -> f := true | _ -> ()) b;
    !f
  in
  (* by-value may push the inner path but never the loop *)
  check_bool "by-value keeps the loop local"
    (not (List.exists contains_for (pushed_bodies S.By_value)));
  (* by-fragment pushes the whole loop (bulk RPC + fragment ordering) *)
  check_bool "by-fragment pushes the loop"
    (List.exists contains_for (pushed_bodies S.By_fragment))

(* ---- condition iv: context builtins --------------------------------------- *)

let test_root_blocks () =
  (* fn:root applied to a remote result that cannot be pushed wholesale:
     only by-projection may decompose (condition iv lifted) *)
  let q =
    parse
      {|let $k := doc("local.xml")/child::k
        return root((for $x in doc("xrpc://A/d.xml")/child::r/child::a
                     return if ($x/child::v = $k) then $x else ())[1])|}
  in
  check_int "by-value refuses root()" 0
    (List.length (D.decompose S.By_value q).D.inserted);
  check_int "by-fragment refuses root()" 0
    (List.length (D.decompose S.By_fragment q).D.inserted);
  check_int "by-projection allows root()" 1
    (List.length (D.decompose S.By_projection q).D.inserted)

(* ---- interesting points ---------------------------------------------------- *)

let test_doc_only_not_interesting () =
  (* bare doc() fetch: no axis step, pushing is senseless (Example 4.2's
     restriction (c)) *)
  let q = parse {|doc("xrpc://A/d.xml")|} in
  check_int "no i-points for bare doc" 0
    (List.length (D.decompose S.By_fragment q).D.inserted)

let test_local_doc_not_pushed () =
  let q = parse {|doc("local.xml")/child::a|} in
  check_int "local documents stay local" 0
    (List.length (D.decompose S.By_fragment q).D.inserted)

let test_multi_host_not_pushed_as_unit () =
  (* the root depends on two hosts: only single-host subqueries pushed *)
  let plan = D.decompose S.By_fragment (parse q2) in
  List.iter
    (fun (_, x) ->
      match x.Ast.host.Ast.desc with
      | Ast.Literal (Ast.A_string h) -> check_bool "single host" (h = "A" || h = "B")
      | _ -> Alcotest.fail "computed host")
    (execute_ats plan.D.query.Ast.body)

(* ---- insertion mechanics (Fig. 3) ------------------------------------------ *)

let test_insertion_params_are_free_vars () =
  let q =
    parse
      {|let $t := doc("local.xml")/child::x
        return execute at {"B"} function ($p := $t) { $p/child::id }|}
  in
  (* hand-written execute-at: parameters already present; decomposition of a
     generated one must produce the same shape *)
  match execute_ats q.Ast.body with
  | [ (_, x) ] ->
    check_slist "param names" [ "p" ] (List.map fst x.Ast.params);
    check_slist "free vars of body" [ "p" ] (Ast.free_vars x.Ast.body)
  | _ -> Alcotest.fail "expected one execute-at"

(* ---- code motion (Example 4.3) ---------------------------------------------- *)

let test_code_motion () =
  let plan = D.decompose ~code_motion:true S.By_fragment (parse q2) in
  let b_x =
    snd
      (List.find
         (fun (_, x) -> x.Ast.host.Ast.desc = Ast.Literal (Ast.A_string "B"))
         (execute_ats plan.D.query.Ast.body))
  in
  (* $t replaced by a new parameter carrying $t/child::id *)
  check_bool "original $t parameter dropped"
    (not (List.mem "t" (List.map fst b_x.Ast.params)));
  check_int "one moved parameter" 1 (List.length b_x.Ast.params);
  let _, arg = List.hd b_x.Ast.params in
  let s = Xd_lang.Pp.expr_to_string arg in
  check_bool ("argument is the atomized chain: " ^ s)
    (s = "data($t/child::id)");
  (* the body now compares against the parameter directly *)
  let uses_chain = ref false in
  Ast.iter
    (fun e ->
      match e.Ast.desc with
      | Ast.Step ({ Ast.desc = Ast.Var_ref "t"; _ }, _, _) -> uses_chain := true
      | _ -> ())
    b_x.Ast.body;
  check_bool "body no longer navigates $t" (not !uses_chain)

let test_code_motion_semantics () =
  (* code motion must not change results *)
  let net = Xd_xrpc.Network.create () in
  let client = Xd_xrpc.Network.new_peer net "client" in
  let a = Xd_xrpc.Network.new_peer net "A" in
  let b = Xd_xrpc.Network.new_peer net "B" in
  let _ =
    Xd_xrpc.Peer.load_xml a ~doc_name:"students.xml"
      {|<people><person><tutor>Ann</tutor><name>Ann</name><id>7</id></person>
        <person><tutor>Zoe</tutor><name>Bob</name><id>8</id></person></people>|}
  in
  let _ =
    Xd_xrpc.Peer.load_xml b ~doc_name:"course42.xml"
      {|<enroll><exam id="7"><grade>A</grade></exam><exam id="8"><grade>B</grade></exam></enroll>|}
  in
  let q =
    parse
      {|(let $s := doc("xrpc://A/students.xml")/child::people/child::person
         return let $t := for $x in $s return
                            if ($x/child::tutor = $s/child::name) then $x else ()
         return for $e in doc("xrpc://B/course42.xml")/child::enroll/child::exam
                return if ($e/attribute::id = $t/child::id) then $e else ())/child::grade|}
  in
  let reference = Xd_core.Executor.run_local net ~client q in
  let with_cm =
    (Xd_core.Executor.run ~code_motion:true net ~client S.By_fragment q).Xd_core.Executor.value
  in
  let without_cm =
    (Xd_core.Executor.run ~code_motion:false net ~client S.By_fragment q).Xd_core.Executor.value
  in
  check_bool "code motion preserves semantics"
    (Xd_lang.Value.deep_equal reference with_cm);
  check_bool "baseline preserves semantics"
    (Xd_lang.Value.deep_equal reference without_cm)

let test_code_motion_saves_bytes () =
  let net = Xd_xrpc.Network.create () in
  let client = Xd_xrpc.Network.new_peer net "client" in
  let a = Xd_xrpc.Network.new_peer net "A" in
  let b = Xd_xrpc.Network.new_peer net "B" in
  (* persons carry a lot more data than just the id *)
  let person i =
    Printf.sprintf
      "<person><tutor>T%d</tutor><name>T%d</name><id>%d</id><blob>%s</blob></person>"
      i i i (String.make 300 'x')
  in
  let _ =
    Xd_xrpc.Peer.load_xml a ~doc_name:"students.xml"
      ("<people>" ^ String.concat "" (List.init 10 person) ^ "</people>")
  in
  let _ =
    Xd_xrpc.Peer.load_xml b ~doc_name:"course42.xml"
      "<enroll><exam id=\"3\"><grade>A</grade></exam></enroll>"
  in
  let q =
    parse
      {|(let $s := doc("xrpc://A/students.xml")/child::people/child::person
         return let $t := for $x in $s return
                            if ($x/child::tutor = $s/child::name) then $x else ()
         return for $e in doc("xrpc://B/course42.xml")/child::enroll/child::exam
                return if ($e/attribute::id = $t/child::id) then $e else ())/child::grade|}
  in
  let bytes code_motion =
    let r = Xd_core.Executor.run ~code_motion net ~client S.By_fragment q in
    r.Xd_core.Executor.timing.Xd_core.Executor.message_bytes
  in
  let without = bytes false in
  let with_cm = bytes true in
  check_bool
    (Printf.sprintf "code motion reduces bytes (%d < %d)" with_cm without)
    (with_cm < without)

let () =
  Alcotest.run "xd_decompose"
    [
      ( "table-iv",
        [
          tc "Qv2 by-value" test_by_value_q2;
          tc "by-value descendant barrier" test_by_value_descendant;
          tc "Qf2 by-fragment" test_by_fragment_q2;
          tc "by-projection paths" test_by_projection_q2;
          tc "monotone permissiveness" test_monotone_d_points;
        ] );
      ( "conditions",
        [
          tc "i: reverse axis" test_reverse_axis_blocks;
          tc "ii: same-doc node ops" test_node_identity_blocks;
          tc "ii: cross-doc ok" test_node_set_different_docs_ok;
          tc "iii: for-loop relaxation" test_for_loop_relaxation;
          tc "iv: fn:root" test_root_blocks;
        ] );
      ( "i-points",
        [
          tc "bare doc not interesting" test_doc_only_not_interesting;
          tc "local docs stay" test_local_doc_not_pushed;
          tc "single host only" test_multi_host_not_pushed_as_unit;
        ] );
      ("insertion", [ tc "params are free vars" test_insertion_params_are_free_vars ]);
      ( "code-motion",
        [
          tc "rewrites Qf2" test_code_motion;
          tc "semantics preserved" test_code_motion_semantics;
          tc "bytes saved" test_code_motion_saves_bytes;
        ] );
    ]
