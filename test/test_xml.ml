(* Tests for the XML substrate: document encoding, axes, document order,
   parsing/serialization, deep-equal and node-sequence operations. *)

module X = Xd_xml
open Util

let sample () =
  xml
    {|<site><people><person id="p1"><name>Ann</name><age>35</age></person><person id="p2"><name>Bob</name><age>52</age></person></people><extra/></site>|}

(* ---- encoding --------------------------------------------------------- *)

let test_counts () =
  let d = sample () in
  check_int "tree nodes" 14 (X.Doc.n_nodes d);
  check_int "attrs" 2 (X.Doc.n_attrs d);
  check_int "doc size covers all" (X.Doc.n_nodes d - 1) d.X.Doc.size.(0)

let test_parent_size_consistency () =
  let d = sample () in
  for i = 1 to X.Doc.n_nodes d - 1 do
    let p = d.X.Doc.parent.(i) in
    check_bool "parent before child" (p >= 0 && p < i);
    check_bool "child within parent extent" (i <= p + d.X.Doc.size.(p))
  done

(* ---- axes ------------------------------------------------------------- *)

let person_nodes d =
  List.filter
    (fun n -> X.Node.name n = "person")
    (X.Node.descendants (X.Node.doc_node d))

let test_children () =
  let d = sample () in
  let site = List.hd (X.Node.children (X.Node.doc_node d)) in
  check_slist "site children" [ "people"; "extra" ]
    (names (X.Node.children site))

let test_parent_axis () =
  let d = sample () in
  let p1 = List.hd (person_nodes d) in
  check_string "parent of person" "people"
    (X.Node.name (Option.get (X.Node.parent p1)));
  let root = X.Node.doc_node d in
  check_bool "doc node has no parent" (X.Node.parent root = None)

let test_attributes () =
  let d = sample () in
  let p1 = List.hd (person_nodes d) in
  let attrs = X.Node.attributes p1 in
  check_int "one attribute" 1 (List.length attrs);
  check_string "attr name" "id" (X.Node.name (List.hd attrs));
  check_string "attr value" "p1" (X.Node.string_value (List.hd attrs));
  check_string "attr parent" "person"
    (X.Node.name (Option.get (X.Node.parent (List.hd attrs))))

let test_descendants () =
  let d = sample () in
  let site = List.hd (X.Node.children (X.Node.doc_node d)) in
  check_int "descendants of site" 12 (List.length (X.Node.descendants site));
  let p2 = List.nth (person_nodes d) 1 in
  check_slist "descendant names"
    [ "name"; ""; "age"; "" ]
    (names (X.Node.descendants p2))

let test_siblings () =
  let d = sample () in
  match person_nodes d with
  | [ p1; p2 ] ->
    check_slist "following sibling" [ "person" ]
      (names (X.Node.following_sibling p1));
    check_slist "preceding sibling" [ "person" ]
      (names (X.Node.preceding_sibling p2));
    check_bool "no preceding sibling of first"
      (X.Node.preceding_sibling p1 = [])
  | _ -> Alcotest.fail "expected two persons"

let test_following_preceding () =
  let d = sample () in
  match person_nodes d with
  | [ p1; p2 ] ->
    let fol = names (X.Node.following p1) in
    check_slist "following of p1"
      [ "person"; "name"; ""; "age"; ""; "extra" ]
      fol;
    let prec = names (X.Node.preceding p2) in
    (* preceding excludes ancestors (site, people, document) *)
    check_slist "preceding of p2"
      [ "person"; "name"; ""; "age"; "" ]
      prec
  | _ -> Alcotest.fail "expected two persons"

let test_ancestors () =
  let d = sample () in
  let p2 = List.nth (person_nodes d) 1 in
  let age = List.nth (X.Node.children p2) 1 in
  check_slist "ancestors in doc order"
    [ ""; "site"; "people"; "person" ]
    (names (X.Node.ancestors age))

(* ---- order and identity ------------------------------------------------ *)

let test_order () =
  let d = sample () in
  let all = X.Node.descendant_or_self (X.Node.doc_node d) in
  let sorted = X.Seq_ops.sort (List.rev all) in
  check_bool "sort restores document order"
    (List.for_all2 X.Node.same all sorted);
  (* attributes sort after their element, before its children *)
  let p1 = List.hd (person_nodes d) in
  let a = List.hd (X.Node.attributes p1) in
  let name_el = List.hd (X.Node.children p1) in
  check_bool "element << attribute" (X.Node.compare_order p1 a < 0);
  check_bool "attribute << first child" (X.Node.compare_order a name_el < 0)

let test_identity_across_docs () =
  let st = store () in
  let d1 = X.Parser.parse ~store:st ~uri:"a.xml" "<a><b/></a>" in
  let d2 = X.Parser.parse ~store:st ~uri:"b.xml" "<a><b/></a>" in
  let n1 = X.Node.of_tree d1 1 and n2 = X.Node.of_tree d2 1 in
  check_bool "distinct docs, distinct identity" (not (X.Node.same n1 n2));
  check_bool "deep-equal despite identity" (X.Deep_equal.equal n1 n2);
  check_bool "doc order follows registration"
    (X.Node.compare_order n1 n2 < 0)

(* ---- seq ops ----------------------------------------------------------- *)

let test_seq_ops () =
  let d = sample () in
  let ps = person_nodes d in
  let dup = ps @ ps in
  check_int "dedup" 2 (List.length (X.Seq_ops.sort_dedup dup));
  check_int "union" 2 (List.length (X.Seq_ops.union ps ps));
  check_int "intersect" 2 (List.length (X.Seq_ops.intersect ps dup));
  check_int "except all" 0 (List.length (X.Seq_ops.except ps ps));
  let p1 = List.hd ps in
  check_int "except one" 1 (List.length (X.Seq_ops.except ps [ p1 ]))

let test_maximal () =
  let d = sample () in
  let site = List.hd (X.Node.children (X.Node.doc_node d)) in
  let ps = person_nodes d in
  let m = X.Seq_ops.maximal (ps @ [ site ]) in
  check_int "maximal collapses to ancestor" 1 (List.length m);
  check_string "maximal root" "site" (X.Node.name (List.hd m))

let test_lca () =
  let d = sample () in
  let ps = person_nodes d in
  check_string "lca of persons" "people"
    (X.Node.name (X.Seq_ops.lowest_common_ancestor ps));
  let p1 = List.hd ps in
  check_string "lca of single" "person"
    (X.Node.name (X.Seq_ops.lowest_common_ancestor [ p1 ]))

(* ---- parser / serializer ------------------------------------------------ *)

let test_roundtrip () =
  let src = {|<a k="v&amp;w"><b>x &lt; y</b><c/><!--note--><?pi data?></a>|} in
  let d = xml ~uri:"r.xml" src in
  check_string "serialize round-trip" src (X.Serializer.doc d)

let test_entities () =
  let d = xml "<a>&lt;&gt;&amp;&apos;&quot;&#65;&#x42;</a>" in
  check_string "entity decoding" "<>&'\"AB"
    (X.Node.string_value (X.Node.doc_node d))

let test_cdata () =
  let d = xml "<a><![CDATA[<not> &parsed;]]></a>" in
  check_string "cdata" "<not> &parsed;" (X.Node.string_value (X.Node.doc_node d))

let test_strip_ws () =
  let d = xml "<a>\n  <b> x </b>\n</a>" in
  let a = List.hd (X.Node.children (X.Node.doc_node d)) in
  check_int "whitespace-only text stripped" 1 (List.length (X.Node.children a));
  check_string "inner text kept" " x " (X.Node.string_value a)

let test_doctype_and_decl () =
  let d =
    xml
      "<?xml version=\"1.0\"?><!DOCTYPE a [<!ELEMENT a ANY>]><a><b/></a>"
  in
  check_int "nodes" 3 (X.Doc.n_nodes d)

let test_parse_errors () =
  let bad s =
    match X.Parser.parse_doc s with
    | exception X.Parser.Error _ -> true
    | _ -> false
  in
  check_bool "mismatched tag" (bad "<a></b>");
  check_bool "unterminated" (bad "<a>");
  check_bool "unknown entity" (bad "<a>&nope;</a>");
  check_bool "garbage after root is fine for forests" (not (bad "<a/><b/>"))

let test_text_coalescing () =
  let d = xml "<a>x<![CDATA[y]]>z</a>" in
  let a = List.hd (X.Node.children (X.Node.doc_node d)) in
  check_int "adjacent text coalesced" 1 (List.length (X.Node.children a));
  check_string "coalesced value" "xyz" (X.Node.string_value a)

(* ---- deep-equal --------------------------------------------------------- *)

let test_deep_equal () =
  let n s = X.Node.of_tree (xml s) 1 in
  check_bool "equal" (X.Deep_equal.equal (n "<a k='1'><b/></a>") (n "<a k=\"1\"><b/></a>"));
  check_bool "attr order irrelevant"
    (X.Deep_equal.equal (n "<a x='1' y='2'/>") (n "<a y='2' x='1'/>"));
  check_bool "comments ignored"
    (X.Deep_equal.equal (n "<a><!--c--><b/></a>") (n "<a><b/></a>"));
  check_bool "different attr" (not (X.Deep_equal.equal (n "<a k='1'/>") (n "<a k='2'/>")));
  check_bool "different children" (not (X.Deep_equal.equal (n "<a><b/></a>") (n "<a><c/></a>")));
  check_bool "text differs" (not (X.Deep_equal.equal (n "<a>x</a>") (n "<a>y</a>")))

let test_deep_nesting () =
  (* a few thousand levels of nesting must not overflow the parser or the
     axis machinery *)
  let depth = 5000 in
  let buf = Buffer.create (depth * 7) in
  for _ = 1 to depth do
    Buffer.add_string buf "<d>"
  done;
  Buffer.add_string buf "<leaf/>";
  for _ = 1 to depth do
    Buffer.add_string buf "</d>"
  done;
  let d = xml (Buffer.contents buf) in
  check_int "all nodes present" (depth + 2) (X.Doc.n_nodes d);
  let leaf = X.Node.of_tree d (depth + 1) in
  check_int "ancestor chain" (depth + 1) (List.length (X.Node.ancestors leaf));
  check_string "round trip survives"
    (X.Serializer.doc d)
    (X.Serializer.doc (X.Parser.parse_doc (X.Serializer.doc d)))

let test_wide_document () =
  let width = 20000 in
  let buf = Buffer.create (width * 4) in
  Buffer.add_string buf "<r>";
  for _ = 1 to width do
    Buffer.add_string buf "<x/>"
  done;
  Buffer.add_string buf "</r>";
  let d = xml (Buffer.contents buf) in
  let r = List.hd (X.Node.children (X.Node.doc_node d)) in
  check_int "children intact" width (List.length (X.Node.children r))

(* raw '<' inside an attribute value is ill-formed (XML production [10]);
   the parser must reject it rather than silently absorb it, so the
   generic and event parsers agree on the rejection set *)
let test_raw_lt_in_attr () =
  let rejects s =
    match X.Parser.parse_doc s with
    | _ -> false
    | exception X.Parser.Error _ -> true
  in
  check_bool "plain value rejected" (rejects {|<a v="x<y"/>|});
  check_bool "single-quoted rejected" (rejects {|<a v='x<y'/>|});
  check_bool "after entity rejected" (rejects {|<a v="x&amp;<y"/>|});
  check_bool "escaped accepted" (not (rejects {|<a v="x&lt;y"/>|}))

(* random bytes through the parser must fail cleanly (Parser.Error), never
   crash or loop *)
let prop_parser_total =
  qtest ~count:300 "parser is total on garbage"
    QCheck.(string_of_size (QCheck.Gen.int_bound 60))
    (fun s ->
      match X.Parser.parse_doc s with
      | _ -> true
      | exception X.Parser.Error _ -> true
      | exception _ -> false)

(* ---- properties --------------------------------------------------------- *)

let prop_roundtrip =
  qtest "serialize ∘ parse ∘ serialize is stable" arb_tree (fun t ->
      let st = store () in
      let d = X.Store.of_tree st (root_of_tree t) in
      let s1 = X.Serializer.doc d in
      let d2 = X.Parser.parse_doc ~strip_ws:false s1 in
      let s2 = X.Serializer.doc d2 in
      s1 = s2)

let prop_size_descendants =
  qtest "size field equals number of descendants" arb_tree (fun t ->
      let st = store () in
      let d = X.Store.of_tree st (root_of_tree t) in
      let ok = ref true in
      for i = 0 to X.Doc.n_nodes d - 1 do
        let n = X.Node.of_tree d i in
        if List.length (X.Node.descendants n) <> d.X.Doc.size.(i) then
          ok := false
      done;
      !ok)

let prop_parent_child_inverse =
  qtest "children/parent are inverse" arb_tree (fun t ->
      let st = store () in
      let d = X.Store.of_tree st (root_of_tree t) in
      let ok = ref true in
      for i = 0 to X.Doc.n_nodes d - 1 do
        let n = X.Node.of_tree d i in
        List.iter
          (fun c ->
            match X.Node.parent c with
            | Some p when X.Node.same p n -> ()
            | _ -> ok := false)
          (X.Node.children n)
      done;
      !ok)

let prop_following_preceding_partition =
  qtest "self+anc+desc+following+preceding partition the doc" arb_tree
    (fun t ->
      let st = store () in
      let d = X.Store.of_tree st (root_of_tree t) in
      let total = X.Doc.n_nodes d in
      let ok = ref true in
      for i = 0 to total - 1 do
        let n = X.Node.of_tree d i in
        let parts =
          1
          + List.length (X.Node.ancestors n)
          + List.length (X.Node.descendants n)
          + List.length (X.Node.following n)
          + List.length (X.Node.preceding n)
        in
        if parts <> total then ok := false
      done;
      !ok)

let prop_deep_equal_reflexive =
  qtest "deep-equal is reflexive on fresh copies" arb_tree (fun t ->
      let st = store () in
      let d1 = X.Store.of_tree st (root_of_tree t) in
      let d2 = X.Store.of_tree st (root_of_tree t) in
      X.Deep_equal.equal (X.Node.doc_node d1) (X.Node.doc_node d2))

let () =
  Alcotest.run "xd_xml"
    [
      ( "encoding",
        [ tc "counts" test_counts; tc "parent/size" test_parent_size_consistency ] );
      ( "axes",
        [
          tc "children" test_children;
          tc "parent" test_parent_axis;
          tc "attributes" test_attributes;
          tc "descendants" test_descendants;
          tc "siblings" test_siblings;
          tc "following/preceding" test_following_preceding;
          tc "ancestors" test_ancestors;
        ] );
      ( "order",
        [ tc "document order" test_order; tc "cross-doc" test_identity_across_docs ] );
      ( "seq-ops",
        [ tc "dedup/set-ops" test_seq_ops; tc "maximal" test_maximal; tc "lca" test_lca ] );
      ( "parser",
        [
          tc "round-trip" test_roundtrip;
          tc "entities" test_entities;
          tc "cdata" test_cdata;
          tc "strip-ws" test_strip_ws;
          tc "doctype" test_doctype_and_decl;
          tc "errors" test_parse_errors;
          tc "raw-lt-in-attr" test_raw_lt_in_attr;
          tc "text-coalescing" test_text_coalescing;
        ] );
      ("deep-equal", [ tc "cases" test_deep_equal ]);
      ( "robustness",
        [
          tc "deep nesting" test_deep_nesting;
          tc "wide document" test_wide_document;
          prop_parser_total;
        ] );
      ( "properties",
        [
          prop_roundtrip;
          prop_size_descendants;
          prop_parent_child_inverse;
          prop_following_preceding_partition;
          prop_deep_equal_reflexive;
        ] );
    ]
