(* Direct unit tests for the value model: atomization, untyped promotion,
   general comparison, effective boolean value, deep-equal and result
   serialization — the typing rules the distributed semantics rest on. *)

module V = Xd_lang.Value
module Ast = Xd_lang.Ast
open Util

let u s = V.Untyped s
let str s = V.String s
let i n = V.Integer n
let d f = V.Double f
let b x = V.Boolean x

(* ---- atom conversions ---------------------------------------------------- *)

let test_atom_to_string () =
  check_string "integer" "42" (V.atom_to_string (i 42));
  check_string "double integral" "3" (V.atom_to_string (d 3.0));
  check_string "double fractional" "2.5" (V.atom_to_string (d 2.5));
  check_string "boolean" "true" (V.atom_to_string (b true));
  check_string "untyped passthrough" " x " (V.atom_to_string (u " x "))

let test_atom_to_double () =
  check_bool "int" (V.atom_to_double (i 7) = 7.0);
  check_bool "untyped numeric" (V.atom_to_double (u " 2.5 ") = 2.5);
  check_bool "untyped garbage is NaN" (Float.is_nan (V.atom_to_double (u "zz")));
  check_bool "booleans" (V.atom_to_double (b true) = 1.0)

(* ---- general comparison --------------------------------------------------- *)

let test_promotion_rules () =
  check_bool "untyped vs int compares numerically"
    (V.compare_atoms Ast.Eq (u "35") (i 35));
  check_bool "untyped vs untyped compares as strings"
    (V.compare_atoms Ast.Lt (u "10") (u "9"));
  (* string "10" < "9" lexicographically *)
  check_bool "int vs double" (V.compare_atoms Ast.Lt (i 1) (d 1.5));
  check_bool "string vs untyped as strings"
    (V.compare_atoms Ast.Eq (str "a") (u "a"));
  check_bool "string vs int raises"
    (match V.compare_atoms Ast.Eq (str "1") (i 1) with
    | exception V.Type_error _ -> true
    | _ -> false);
  check_bool "bool vs bool" (V.compare_atoms Ast.Le (b false) (b true))

let test_existential_semantics () =
  let seq xs = List.map (fun x -> V.A x) xs in
  check_bool "any pair suffices"
    (V.general_compare Ast.Eq (seq [ i 1; i 2 ]) (seq [ i 2; i 9 ]));
  check_bool "empty never matches"
    (not (V.general_compare Ast.Eq [] (seq [ i 1 ])));
  (* both (1,2) = 1 and (1,2) != 1 hold existentially *)
  check_bool "eq and ne both true"
    (V.general_compare Ast.Eq (seq [ i 1; i 2 ]) (seq [ i 1 ])
    && V.general_compare Ast.Ne (seq [ i 1; i 2 ]) (seq [ i 1 ]))

(* ---- effective boolean value ----------------------------------------------- *)

let test_ebv () =
  check_bool "empty false" (not (V.effective_boolean_value []));
  check_bool "zero false" (not (V.effective_boolean_value [ V.A (i 0) ]));
  check_bool "NaN false"
    (not (V.effective_boolean_value [ V.A (d Float.nan) ]));
  check_bool "empty string false"
    (not (V.effective_boolean_value [ V.A (str "") ]));
  check_bool "nonzero true" (V.effective_boolean_value [ V.A (i 3) ]);
  let doc = xml "<a/>" in
  check_bool "node sequence true"
    (V.effective_boolean_value [ V.N (Xd_xml.Node.doc_node doc) ]);
  check_bool "multi-atomic raises"
    (match V.effective_boolean_value [ V.A (i 1); V.A (i 2) ] with
    | exception V.Type_error _ -> true
    | _ -> false)

(* ---- arithmetic ------------------------------------------------------------ *)

let test_arith_typing () =
  let one x = [ V.A x ] in
  check_bool "int + int stays int"
    (V.arith Ast.Add (one (i 2)) (one (i 3)) = [ V.A (i 5) ]);
  check_bool "int + double is double"
    (match V.arith Ast.Add (one (i 2)) (one (d 0.5)) with
    | [ V.A (V.Double 2.5) ] -> true
    | _ -> false);
  check_bool "empty propagates" (V.arith Ast.Add [] (one (i 1)) = []);
  check_bool "div by zero is infinite"
    (match V.arith Ast.Div (one (i 1)) (one (i 0)) with
    | [ V.A (V.Double f) ] -> Float.is_integer f = false || f = Float.infinity
    | _ -> false);
  check_bool "idiv by zero raises"
    (match V.arith Ast.Idiv (one (i 1)) (one (i 0)) with
    | exception V.Type_error _ -> true
    | _ -> false)

(* ---- deep-equal and serialization ------------------------------------------- *)

let test_deep_equal_sequences () =
  let n1 = Xd_xml.Node.of_tree (xml "<a><b/></a>") 1 in
  let n2 = Xd_xml.Node.of_tree (xml "<a><b/></a>") 1 in
  check_bool "node vs equal node" (V.deep_equal [ V.N n1 ] [ V.N n2 ]);
  check_bool "atom coercion: 1 = 1.0"
    (V.deep_equal [ V.A (i 1) ] [ V.A (d 1.0) ]);
  check_bool "length mismatch" (not (V.deep_equal [ V.A (i 1) ] []));
  check_bool "node vs atom" (not (V.deep_equal [ V.N n1 ] [ V.A (str "x") ]))

let test_serialize () =
  let n = Xd_xml.Node.of_tree (xml "<a>t</a>") 1 in
  check_string "nodes as xml, atoms spaced" "<a>t</a>1 2"
    (V.serialize [ V.N n; V.A (i 1); V.A (i 2) ]);
  check_string "no space around nodes" "1<a>t</a>2"
    (V.serialize [ V.A (i 1); V.N n; V.A (i 2) ]);
  check_string "empty" "" (V.serialize [])

(* ---- order keys -------------------------------------------------------------- *)

let test_order_compare () =
  check_bool "empty sorts first" (V.order_compare None (Some (i 1)) < 0);
  check_bool "numeric" (V.order_compare (Some (i 2)) (Some (d 10.)) < 0);
  check_bool "strings" (V.order_compare (Some (str "a")) (Some (str "b")) < 0);
  check_bool "mixed numeric promotion"
    (V.order_compare (Some (u "9")) (Some (i 10)) < 0)

(* ---- properties ---------------------------------------------------------------- *)

let arb_atom =
  QCheck.oneof
    [
      QCheck.map (fun n -> i n) QCheck.small_int;
      QCheck.map (fun f -> d f) (QCheck.float_range (-1000.) 1000.);
      QCheck.map (fun s -> str s) (QCheck.string_of_size (QCheck.Gen.int_bound 8));
      QCheck.map (fun s -> u s) (QCheck.string_of_size (QCheck.Gen.int_bound 8));
      QCheck.map (fun x -> b x) QCheck.bool;
    ]

let safe_cmp op a b =
  match V.compare_atoms op a b with
  | r -> Some r
  | exception V.Type_error _ -> None

let prop_eq_symmetric =
  qtest ~count:300 "atom equality is symmetric" (QCheck.pair arb_atom arb_atom)
    (fun (a, b) -> safe_cmp Ast.Eq a b = safe_cmp Ast.Eq b a)

let prop_lt_gt_dual =
  qtest ~count:300 "a < b iff b > a" (QCheck.pair arb_atom arb_atom)
    (fun (a, b) -> safe_cmp Ast.Lt a b = safe_cmp Ast.Gt b a)

let prop_ne_negates_eq =
  qtest ~count:300 "!= is the negation of = on atoms"
    (QCheck.pair arb_atom arb_atom) (fun (a, b) ->
      match (safe_cmp Ast.Eq a b, safe_cmp Ast.Ne a b) with
      | Some e, Some n -> e = not n
      | None, None -> true
      | _ -> false)

let prop_atom_equal_reflexive =
  qtest ~count:300 "atom_equal is reflexive (except NaN)" arb_atom (fun a ->
      match a with
      | V.Double f when Float.is_nan f -> true
      | _ -> V.atom_equal a a)

let () =
  Alcotest.run "xd_value"
    [
      ( "atoms",
        [ tc "to_string" test_atom_to_string; tc "to_double" test_atom_to_double ] );
      ( "comparison",
        [
          tc "promotion" test_promotion_rules;
          tc "existential" test_existential_semantics;
        ] );
      ("ebv", [ tc "rules" test_ebv ]);
      ("arithmetic", [ tc "typing" test_arith_typing ]);
      ( "equality",
        [ tc "deep-equal" test_deep_equal_sequences; tc "serialize" test_serialize ] );
      ("ordering", [ tc "order_compare" test_order_compare ]);
      ( "properties",
        [
          prop_eq_symmetric;
          prop_lt_gt_dual;
          prop_ne_negates_eq;
          prop_atom_equal_reflexive;
        ] );
    ]
