(* Tests for the XQuery Core engine: evaluation semantics of FLWOR, paths,
   comparisons, node operations, constructors, typeswitch, order by and the
   builtin library. *)

module X = Xd_xml
module V = Xd_lang.Value
open Util

let doc_xml =
  {|<site><people>
      <person id="p1"><name>Ann</name><age>35</age></person>
      <person id="p2"><name>Bob</name><age>52</age></person>
      <person id="p3"><name>Cyd</name><age>28</age></person>
    </people></site>|}

let run q = eval_on_doc doc_xml q

(* ---- paths ------------------------------------------------------------- *)

let test_child_steps () =
  check_string "names" "<name>Ann</name><name>Bob</name><name>Cyd</name>"
    (run {|doc("test.xml")/site/people/person/name|})

let test_descendant () =
  check_string "double slash" "<age>35</age><age>52</age><age>28</age>"
    (run {|doc("test.xml")//age|})

let test_attribute_step () =
  check_string "attributes atomize" "p1 p2 p3"
    (run {|for $p in doc("test.xml")//person return string($p/@id)|})

let test_parent_step () =
  check_string "parent" "people"
    (run {|name((doc("test.xml")//age)[1]/../..)|})

let test_wildcard () =
  check_string "wildcard counts" "3" (run {|string(count(doc("test.xml")/site/people/*))|})

let test_text_test () =
  check_string "text()" "Ann" (run {|string((doc("test.xml")//name/text())[1])|})

let test_dedup_order () =
  (* the same nodes reached twice: steps dedup and restore doc order *)
  check_string "dedup" "3"
    (run {|string(count((doc("test.xml")//person, doc("test.xml")//person)/name))|})

let test_reverse_doc_order () =
  check_string "reverse input still doc order" "AnnBobCyd"
    (run
       {|string(string-join(for $n in reverse(doc("test.xml")//person)/name return string($n), ""))|})

(* ---- FLWOR -------------------------------------------------------------- *)

let test_for_where () =
  check_string "where filter" "<name>Ann</name><name>Cyd</name>"
    (run {|for $p in doc("test.xml")//person where $p/age < 40 return $p/name|})

let test_let () =
  check_string "let binding" "6"
    (run {|let $x := (1, 2, 3) return string(count($x) * 2)|})

let test_nested_for () =
  check_string "cartesian" "9"
    (run
       {|string(count(for $a in doc("test.xml")//person, $b in doc("test.xml")//person return 1))|})

let test_if () =
  check_string "if" "yes" (run {|if (1 < 2) then "yes" else "no"|});
  check_string "else" "no" (run {|if (2 < 1) then "yes" else "no"|});
  check_string "ebv empty" "no" (run {|if (()) then "yes" else "no"|});
  check_string "ebv node" "yes"
    (run {|if (doc("test.xml")//person) then "yes" else "no"|})

let test_order_by () =
  check_string "ascending" "CydAnnBob"
    (run
       {|string(string-join(for $p in doc("test.xml")//person order by $p/age ascending return string($p/name), ""))|});
  check_string "descending" "BobAnnCyd"
    (run
       {|string(string-join(for $p in doc("test.xml")//person order by $p/age descending return string($p/name), ""))|});
  check_string "string keys" "AnnBobCyd"
    (run
       {|string(string-join(for $p in doc("test.xml")//person order by $p/name return string($p/name), ""))|})

let test_predicates () =
  check_string "boolean predicate" "<name>Bob</name>"
    (run {|doc("test.xml")//person[age > 50]/name|});
  check_string "positional predicate" "<name>Bob</name>"
    (run {|doc("test.xml")//person[2]/name|});
  check_string "nested predicates" "<name>Cyd</name>"
    (run {|doc("test.xml")//person[age < 40][2]/name|})

(* ---- comparisons --------------------------------------------------------- *)

let test_general_comparison () =
  check_string "existential" "true"
    (run {|string(doc("test.xml")//age = 35)|});
  check_string "existential false" "false"
    (run {|string(doc("test.xml")//age = 99)|});
  check_string "untyped vs number" "true" (run {|string((doc("test.xml")//age)[1] < 36)|});
  check_string "string comparison" "true" (run {|string("abc" < "abd")|});
  check_string "ne on sequences" "true" (run {|string((1, 2) != 2)|})

let test_type_errors () =
  let fails q = match run q with exception V.Type_error _ -> true | _ -> false in
  check_bool "string vs int comparison fails" (fails {|string("abc" < 42)|});
  check_bool "arith on multi-item fails" (fails {|string((1,2) + 1)|})

let test_node_comparisons () =
  check_string "is self" "true"
    (run {|let $p := (doc("test.xml")//person)[1] return string($p is $p)|});
  check_string "is distinct" "false"
    (run
       {|string((doc("test.xml")//person)[1] is (doc("test.xml")//person)[2])|});
  check_string "precedes" "true"
    (run
       {|string((doc("test.xml")//person)[1] << (doc("test.xml")//person)[2])|});
  check_string "follows" "true"
    (run
       {|string((doc("test.xml")//person)[2] >> (doc("test.xml")//person)[1])|});
  check_string "empty operand" ""
    (run {|string(count(() is (doc("test.xml")//person)[1]))|} |> fun s ->
     if s = "0" then "" else s)

let test_node_set_ops () =
  check_string "union dedups" "3"
    (run
       {|string(count(doc("test.xml")//person union doc("test.xml")//person))|});
  check_string "intersect" "1"
    (run
       {|string(count(doc("test.xml")//person intersect (doc("test.xml")//person)[2]))|});
  check_string "except" "2"
    (run
       {|string(count(doc("test.xml")//person except (doc("test.xml")//person)[2]))|})

let test_arith () =
  check_string "add" "7" (run {|string(3 + 4)|});
  check_string "precedence" "14" (run {|string(2 + 3 * 4)|});
  check_string "div" "2.5" (run {|string(5 div 2)|});
  check_string "idiv" "2" (run {|string(5 idiv 2)|});
  check_string "mod" "1" (run {|string(5 mod 2)|});
  check_string "untyped arithmetic" "70"
    (run {|string((doc("test.xml")//age)[1] * 2)|})

(* ---- constructors --------------------------------------------------------- *)

let test_direct_constructor () =
  check_string "static" "<a x=\"1\"><b>t</b></a>" (run {|<a x="1"><b>t</b></a>|});
  check_string "splice" "<a><name>Ann</name></a>"
    (run {|<a>{(doc("test.xml")//name)[1]}</a>|});
  check_string "attr splice" "<a n=\"Ann\"/>"
    (run {|<a n="{(doc("test.xml")//name)[1]}"/>|});
  check_string "atoms joined" "<a>1 2 3</a>" (run {|<a>{(1, 2, 3)}</a>|})

let test_computed_constructors () =
  check_string "element" "<x>hi</x>" (run {|element x {"hi"}|});
  check_string "computed name" "<q/>" (run {|element {"q"} {()}|});
  check_string "nested" "<x><y/></x>" (run {|element x {element y {()}}|});
  check_string "attribute in content" "<x a=\"1\">t</x>"
    (run {|element x {attribute a {1}, "t"}|});
  check_string "text node" "hello" (run {|string(text {"hello"})|});
  check_string "document" "<r/>" (run {|document {element r {()}}|})

let test_constructor_identity () =
  (* each evaluation constructs a fresh node *)
  check_string "fresh identity" "false"
    (run {|let $f := <a/> let $g := <a/> return string($f is $g)|});
  check_string "copy severs structure" "0"
    (run
       {|let $p := (doc("test.xml")//person)[1]
         let $c := <wrap>{$p}</wrap>
         return string(count($c/person intersect $p))|})

let test_constructed_navigation () =
  (* the makenodes() example of Table I *)
  check_string "parent of constructed child" "1"
    (run {|let $bc := (<a><b><c/></b></a>)/b return string(count($bc/parent::a))|});
  check_string "value" "<b><c/></b>" (run {|(<a><b><c/></b></a>)/b|})

(* ---- typeswitch ------------------------------------------------------------ *)

let test_typeswitch () =
  check_string "element case" "elem"
    (run
       {|typeswitch (<a/>) case $e as element() return "elem" default $d return "other"|});
  check_string "string case" "str"
    (run
       {|typeswitch ("x") case $e as element() return "elem" case $s as xs:string return "str" default $d return "other"|});
  check_string "occurrence" "many"
    (run
       {|typeswitch ((1, 2)) case $o as xs:integer return "one" case $m as xs:integer+ return "many" default $d return "other"|});
  check_string "empty" "empty"
    (run
       {|typeswitch (()) case $e as empty-sequence() return "empty" default $d return "other"|});
  check_string "default binds" "2"
    (run {|typeswitch ((1, 2)) case $e as element() return "elem" default $d return string(count($d))|})

(* ---- functions -------------------------------------------------------------- *)

let test_user_functions () =
  check_string "simple" "10"
    (eval_on_doc doc_xml
       {|declare function double($x as xs:integer) as xs:integer { $x * 2 };
         string(double(5))|});
  check_string "recursion" "120"
    (eval_on_doc doc_xml
       {|declare function fact($n) { if ($n <= 1) then 1 else $n * fact($n - 1) };
         string(fact(5))|});
  check_string "node params" "Ann"
    (eval_on_doc doc_xml
       {|declare function nm($p as node()) as xs:string { string($p/name) };
         nm((doc("test.xml")//person)[1])|})

let test_builtins () =
  check_string "count" "3" (run {|string(count(doc("test.xml")//person))|});
  check_string "empty/exists" "falsetrue"
    (run {|concat(string(empty((1))), string(exists((1))))|});
  check_string "not" "false" (run {|string(not(1 = 1))|});
  check_string "concat" "abc" (run {|concat("a", "b", "c")|});
  check_string "contains" "true" (run {|string(contains("hello", "ell"))|});
  check_string "starts-with" "true" (run {|string(starts-with("hello", "he"))|});
  check_string "substring" "ell" (run {|substring("hello", 2, 3)|});
  check_string "string-join" "a-b" (run {|string-join(("a", "b"), "-")|});
  check_string "normalize-space" "a b" (run {|normalize-space("  a   b  ")|});
  check_string "upper" "ABC" (run {|upper-case("abc")|});
  check_string "sum" "115" (run {|string(sum(doc("test.xml")//age))|});
  check_string "avg" "38.33" (String.sub (run {|string(avg(doc("test.xml")//age))|}) 0 5);
  check_string "max/min" "52 28"
    (run {|concat(string(max(doc("test.xml")//age)), " ", string(min(doc("test.xml")//age)))|});
  check_string "distinct-values" "2" (run {|string(count(distinct-values((1, 2, 1))))|});
  check_string "reverse" "cba" (run {|string-join(reverse(("a", "b", "c")), "")|});
  check_string "subsequence" "bc" (run {|string-join(subsequence(("a","b","c","d"), 2, 2), "")|});
  check_string "deep-equal true" "true" (run {|string(deep-equal(<a><b/></a>, <a><b/></a>))|});
  check_string "deep-equal false" "false" (run {|string(deep-equal(<a><b/></a>, <a><c/></a>))|});
  check_string "name" "person" (run {|name((doc("test.xml")//person)[1])|});
  check_string "number" "35" (run {|string(number((doc("test.xml")//age)[1]))|});
  check_string "string-length" "5" (run {|string(string-length("hello"))|});
  check_string "substring-before/after" "he-llo"
    (run {|concat(substring-before("he.llo", "."), "-", substring-after("he.llo", "."))|})

let test_doc_functions () =
  check_string "root" "site"
    (run {|name(root((doc("test.xml")//age)[1])/site)|} |> fun s ->
     if s = "site" then "site" else s);
  check_string "base-uri" "test.xml"
    (run {|string(base-uri((doc("test.xml")//person)[1]))|});
  check_string "document-uri" "test.xml"
    (run {|string(document-uri(doc("test.xml")))|});
  check_string "static-base-uri" "xdx://local/" (run {|string(static-base-uri())|});
  check_string "default-collation" "codepoint" (run {|string(default-collation())|})

let test_id_idref () =
  check_string "fn:id" "Bob"
    (run {|string(id("p2", doc("test.xml"))/name)|});
  check_string "fn:id multi" "2"
    (run {|string(count(id(("p1", "p3"), doc("test.xml"))))|})

let test_root_builtin () =
  check_string "root returns doc node" "true"
    (run {|string(root((doc("test.xml")//age)[1]) is doc("test.xml"))|})

(* ---- additional evaluator depth ------------------------------------------- *)

let test_multi_key_order_by () =
  let doc =
    {|<g><p><a>2</a><b>x</b></p><p><a>1</a><b>y</b></p><p><a>2</a><b>a</b></p></g>|}
  in
  check_string "two keys, mixed directions" "y|a|x"
    (eval_on_doc doc
       {|string-join(
           for $p in doc("test.xml")/g/p
           order by $p/a ascending, $p/b ascending
           return string($p/b), "|")|})

let test_copy_attributes_into_constructor () =
  (* an attribute node in constructor content becomes an attribute of the
     new element *)
  check_string "attribute copied" {|<w id="p1"/>|}
    (run {|<w>{(doc("test.xml")//person)[1]/@id}</w>|})

let test_constructed_base_uri () =
  (* constructed nodes have no document uri *)
  check_string "no base-uri on constructed" "0"
    (run {|string(count(base-uri(<a/>)))|})

let test_boolean_comparisons () =
  check_string "bool = bool" "true" (run {|string(true() = true())|});
  check_string "bool order" "true" (run {|string(false() < true())|});
  let fails q = match run q with exception Xd_lang.Value.Type_error _ -> true | _ -> false in
  check_bool "bool vs string errors" (fails {|string(true() = "true")|})

let test_attr_node_set_ops () =
  check_string "attributes in node sets" "3"
    (run
       {|string(count(doc("test.xml")//person/@id union doc("test.xml")//person/@id))|});
  check_string "attr except" "2"
    (run
       {|string(count(doc("test.xml")//person/@id except (doc("test.xml")//person)[1]/@id))|})

let test_axes_from_attributes () =
  check_string "parent of attribute" "person"
    (run {|name(((doc("test.xml")//person)[1]/@id)/..)|});
  check_string "ancestors of attribute" "3"
    (run {|string(count(((doc("test.xml")//person)[1]/@id)/ancestor::*))|})

let test_untyped_arithmetic_from_attr () =
  let doc = {|<r><i v="21"/></r>|} in
  check_string "attr value in arithmetic" "42"
    (eval_on_doc doc {|string(doc("test.xml")/r/i/@v * 2)|})

let test_nested_function_shadowing () =
  check_string "params shadow across calls" "10"
    (eval_on_doc doc_xml
       {|declare function add2($x) { $x + 2 };
         declare function addboth($x) { add2($x) + add2($x * 2) };
         string(addboth(2))|})

let test_empty_sequences_everywhere () =
  check_string "empty in arithmetic" "0" (run {|string(count(1 + ()))|});
  check_string "empty in comparison" "false" (run {|string(() = 1)|});
  check_string "empty path context" "0" (run {|string(count(()/child::a))|});
  check_string "for over empty" "0" (run {|string(count(for $x in () return 1))|})

let test_if_over_node_ebv () =
  check_string "node sequence is truthy" "y"
    (run {|if (doc("test.xml")//nonexistent, doc("test.xml")//person) then "y" else "n"|} |> fun s -> s)

(* ---- errors ------------------------------------------------------------- *)

let test_dynamic_errors () =
  let fails q =
    match run q with
    | exception Xd_lang.Env.Dynamic_error _ -> true
    | _ -> false
  in
  check_bool "unbound variable" (fails {|$nope|});
  check_bool "unknown function" (fails {|nosuchfn(1)|});
  check_bool "missing doc" (fails {|doc("nope.xml")|});
  check_bool "bad arity" (fails {|count(1, 2)|})

let test_parse_errors () =
  let fails q =
    match Xd_lang.Parser.parse_query q with
    | exception Xd_lang.Parser.Error _ -> true
    | exception Xd_lang.Lexer.Error _ -> true
    | _ -> false
  in
  check_bool "unclosed paren" (fails "(1, 2");
  check_bool "missing return" (fails "for $x in (1,2) $x");
  check_bool "bad step" (fails "doc(\"x\")/child::");
  check_bool "trailing garbage" (fails "1 2")

(* ---- properties ------------------------------------------------------------ *)

let arb_small_int = QCheck.int_range 0 30

let prop_arith_matches_ocaml =
  qtest "integer arithmetic matches OCaml"
    (QCheck.pair arb_small_int arb_small_int) (fun (a, b) ->
      let st = store () in
      let got =
        Xd_lang.Value.serialize
          (Xd_lang.Eval.run st (Printf.sprintf "string(%d + %d * 2)" a b))
      in
      got = string_of_int (a + (b * 2)))

let prop_count_of_seq =
  qtest "count of literal sequence" (QCheck.list_of_size (QCheck.Gen.int_bound 20) arb_small_int)
    (fun xs ->
      let st = store () in
      let lit =
        if xs = [] then "()"
        else "(" ^ String.concat ", " (List.map string_of_int xs) ^ ")"
      in
      Xd_lang.Value.serialize
        (Xd_lang.Eval.run st (Printf.sprintf "string(count(%s))" lit))
      = string_of_int (List.length xs))

let prop_steps_sorted_dedup =
  qtest "path steps yield sorted duplicate-free node sequences" arb_tree
    (fun t ->
      let st = store () in
      let _ = X.Store.add st (X.Doc.of_tree ~uri:"p.xml" (root_of_tree t)) in
      let v = Xd_lang.Eval.run st {|doc("p.xml")//*|} in
      let nodes = Xd_lang.Value.nodes_of v in
      let rec ok = function
        | a :: (b :: _ as rest) ->
          X.Node.compare_order a b < 0 && ok rest
        | _ -> true
      in
      ok nodes)

let () =
  Alcotest.run "xd_lang"
    [
      ( "paths",
        [
          tc "child steps" test_child_steps;
          tc "descendant" test_descendant;
          tc "attributes" test_attribute_step;
          tc "parent" test_parent_step;
          tc "wildcard" test_wildcard;
          tc "text test" test_text_test;
          tc "dedup+order" test_dedup_order;
          tc "reverse input" test_reverse_doc_order;
        ] );
      ( "flwor",
        [
          tc "for/where" test_for_where;
          tc "let" test_let;
          tc "nested for" test_nested_for;
          tc "if" test_if;
          tc "order by" test_order_by;
          tc "predicates" test_predicates;
        ] );
      ( "comparisons",
        [
          tc "general" test_general_comparison;
          tc "type errors" test_type_errors;
          tc "node comparisons" test_node_comparisons;
          tc "node set ops" test_node_set_ops;
          tc "arithmetic" test_arith;
        ] );
      ( "constructors",
        [
          tc "direct" test_direct_constructor;
          tc "computed" test_computed_constructors;
          tc "identity" test_constructor_identity;
          tc "navigation" test_constructed_navigation;
        ] );
      ("typeswitch", [ tc "cases" test_typeswitch ]);
      ( "functions",
        [
          tc "user functions" test_user_functions;
          tc "builtins" test_builtins;
          tc "doc functions" test_doc_functions;
          tc "id/idref" test_id_idref;
          tc "root" test_root_builtin;
        ] );
      ( "depth",
        [
          tc "multi-key order by" test_multi_key_order_by;
          tc "attributes into constructors" test_copy_attributes_into_constructor;
          tc "constructed base-uri" test_constructed_base_uri;
          tc "boolean comparisons" test_boolean_comparisons;
          tc "attribute node sets" test_attr_node_set_ops;
          tc "axes from attributes" test_axes_from_attributes;
          tc "untyped arithmetic" test_untyped_arithmetic_from_attr;
          tc "function shadowing" test_nested_function_shadowing;
          tc "empty sequences" test_empty_sequences_everywhere;
          tc "sequence EBV" test_if_over_node_ebv;
        ] );
      ( "errors",
        [ tc "dynamic" test_dynamic_errors; tc "parse" test_parse_errors ] );
      ( "properties",
        [ prop_arith_matches_ocaml; prop_count_of_seq; prop_steps_sorted_dedup ] );
    ]
