(* Fine-grained tests of the insertion-condition machinery (Section IV),
   mirroring Example 4.1's marking of the Qc2 d-graph: under pass-by-value
   the /grade step on top of the for-loops excludes everything the loops
   feed, leaving the root and the two doc-path subtrees as valid points. *)

module Ast = Xd_lang.Ast
module Dg = Xd_dgraph.Dgraph
module C = Xd_core.Conditions
module S = Xd_core.Strategy
open Util

(* Qc2 — the unnormalized XCore variant of Table III. *)
let qc2 =
  {|(let $s := doc("xrpc://A/students.xml")/child::people/child::person
     return let $c := doc("xrpc://B/course42.xml")
     return let $t := for $x in $s return
                        if ($x/child::tutor = $s/child::name) then $x else ()
     return for $e in $c/child::enroll/child::exam
            return if ($e/attribute::id = $t/child::id) then $e else ())/child::grade|}

let build src =
  let body = (Xd_lang.Parser.parse_query src).Ast.body in
  let g = Dg.build body in
  (body, g)

let find body pred =
  let r = ref None in
  Ast.iter (fun e -> if !r = None && pred e then r := Some e) body;
  Option.get !r

let find_for body var =
  find body (fun e ->
      match e.Ast.desc with Ast.For (v, _, _) -> v = var | _ -> false)

let find_let_value body var =
  let l =
    find body (fun e ->
        match e.Ast.desc with Ast.Let (v, _, _) -> v = var | _ -> false)
  in
  List.hd (Ast.children l)

let find_step body axis test =
  find body (fun e ->
      match e.Ast.desc with
      | Ast.Step (_, a, t) -> a = axis && t = test
      | _ -> false)

(* ---- Example 4.1: by-value d-points on Qc2 ------------------------------- *)

let test_example_4_1 () =
  let body, g = build qc2 in
  let ctx = C.make_ctx S.By_value g in
  (* the query root is a valid d-point (v1 in the paper) *)
  check_bool "root valid" (C.valid_d_point ctx body.Ast.id);
  (* the $s binding value (path over doc A) is valid (v3/v4) *)
  let s_value = find_let_value body "s" in
  check_bool "$s value valid" (C.valid_d_point ctx s_value.Ast.id);
  (* the $c binding value (bare doc B) is valid (v9) *)
  let c_value = find_let_value body "c" in
  check_bool "$c value valid" (C.valid_d_point ctx c_value.Ast.id);
  (* the for-loops are NOT valid (everything /grade depends on through the
     loops is excluded) *)
  let for_x = find_for body "x" in
  let for_e = find_for body "e" in
  check_bool "for $x invalid under by-value"
    (not (C.valid_d_point ctx for_x.Ast.id));
  check_bool "for $e invalid under by-value"
    (not (C.valid_d_point ctx for_e.Ast.id));
  (* ... but they become valid under by-fragment (Section V lifts the
     ForExpr restriction) *)
  let ctx_f = C.make_ctx S.By_fragment (snd (build qc2)) in
  ignore ctx_f;
  let body_f, g_f = build qc2 in
  let ctx_f = C.make_ctx S.By_fragment g_f in
  let for_e_f = find_for body_f "e" in
  check_bool "for $e valid under by-fragment"
    (C.valid_d_point ctx_f for_e_f.Ast.id)

(* ---- use_result / use_param ------------------------------------------------ *)

let test_use_result () =
  let body, g = build qc2 in
  let ctx = C.make_ctx S.By_value g in
  let s_value = find_let_value body "s" in
  (* the /grade step (outside) uses the result of the $s subtree *)
  let grade = find_step body Ast.Child (Ast.Name_test "grade") in
  check_bool "grade uses $s's result" (C.use_result ctx grade s_value.Ast.id);
  (* the tutor step inside the for over $x also consumes it from outside
     the subtree *)
  let tutor = find_step body Ast.Child (Ast.Name_test "tutor") in
  check_bool "tutor step uses $s's result"
    (C.use_result ctx tutor s_value.Ast.id);
  (* nothing inside the $s subtree uses parameters: it is closed *)
  check_bool "no param use inside $s"
    (not
       (List.exists
          (fun n -> C.use_param ctx n s_value.Ast.id)
          (Dg.vertices g)))

let test_use_param () =
  (* for $t's binding value (the for over $x), the reference to $s inside
     is an outgoing varref: steps inside using $x/$s are parameter uses *)
  let body, g = build qc2 in
  let ctx = C.make_ctx S.By_value g in
  let t_value = find_let_value body "t" in
  let tutor = find_step body Ast.Child (Ast.Name_test "tutor") in
  check_bool "tutor step inside $t uses a parameter"
    (C.use_param ctx tutor t_value.Ast.id);
  let grade = find_step body Ast.Child (Ast.Name_test "grade") in
  check_bool "grade is outside $t" (not (C.use_param ctx grade t_value.Ast.id))

(* ---- bad_mixer classification ---------------------------------------------- *)

let test_bad_mixer () =
  let mk d = Ast.mk d in
  let seq2 = mk (Ast.Seq [ Ast.int 1; Ast.int 2 ]) in
  let seq0 = mk (Ast.Seq []) in
  let for_e = mk (Ast.For ("x", Ast.int 1, Ast.int 2)) in
  let desc_step = Ast.step (Ast.var "v") Ast.Descendant Ast.Kind_node in
  let child_step = Ast.step (Ast.var "v") Ast.Child Ast.Kind_node in
  check_bool "two-element seq mixes" (C.bad_mixer S.By_value seq2);
  check_bool "empty seq does not" (not (C.bad_mixer S.By_value seq0));
  check_bool "for mixes under by-value" (C.bad_mixer S.By_value for_e);
  check_bool "for fine under by-fragment" (not (C.bad_mixer S.By_fragment for_e));
  check_bool "descendant overlaps under by-value" (C.bad_mixer S.By_value desc_step);
  check_bool "child never overlaps" (not (C.bad_mixer S.By_value child_step));
  check_bool "descendant fine under by-fragment"
    (not (C.bad_mixer S.By_fragment desc_step));
  check_bool "seq still mixes under by-projection" (C.bad_mixer S.By_projection seq2);
  (* sequence-reordering builtins mix under every strategy *)
  let rev_e = Ast.fun_call "reverse" [ Ast.var "v" ] in
  let ins_e =
    Ast.fun_call "insert-before" [ Ast.var "v"; Ast.int 1; Ast.var "w" ]
  in
  let rem_e = Ast.fun_call "remove" [ Ast.var "v"; Ast.int 1 ] in
  let sub_e = Ast.fun_call "subsequence" [ Ast.var "v"; Ast.int 1; Ast.int 2 ] in
  List.iter
    (fun s ->
      check_bool "reverse mixes" (C.bad_mixer s rev_e);
      check_bool "insert-before mixes" (C.bad_mixer s ins_e);
      check_bool "remove mixes" (C.bad_mixer s rem_e);
      check_bool "subsequence does not mix" (not (C.bad_mixer s sub_e)))
    [ S.By_value; S.By_fragment; S.By_projection ]

(* ---- insertion mechanics ------------------------------------------------------ *)

let test_insert_execute_at () =
  let body, _ = build {|let $k := 1 return count(doc("xrpc://A/d.xml")/child::a[v = $k])|} in
  (* find the for generated by the predicate desugaring: it references $k *)
  let target =
    find body (fun e ->
        match e.Ast.desc with Ast.For _ -> true | _ -> false)
  in
  let rewritten = Xd_core.Insert.insert_execute_at ~host:"A" body target.Ast.id in
  let found = ref None in
  Ast.iter
    (fun e ->
      match e.Ast.desc with
      | Ast.Execute_at x -> found := Some x
      | _ -> ())
    rewritten;
  match !found with
  | None -> Alcotest.fail "no execute-at inserted"
  | Some x ->
    check_slist "free vars became parameters" [ "k" ] (List.map fst x.Ast.params);
    check_bool "host literal" (x.Ast.host.Ast.desc = Ast.Literal (Ast.A_string "A"));
    (* replacing a vertex keeps the rest intact *)
    check_bool "count still present"
      (match rewritten.Ast.desc with
      | Ast.Let _ -> true
      | _ -> false)

(* the conditions' update rule: results consumed as update targets pin the
   producer *)
let test_update_condition () =
  let body, g =
    build
      {|let $k := doc("local.xml")/child::k
        return delete node (for $x in doc("xrpc://A/d.xml")/child::a
                            return if ($x/child::v = $k) then $x else ())[1]|}
  in
  let ctx = C.make_ctx S.By_projection g in
  let a_path = find_step body Ast.Child (Ast.Name_test "a") in
  check_bool "update target pins its producer"
    (not (C.valid_d_point ctx a_path.Ast.id))

let () =
  Alcotest.run "xd_conditions"
    [
      ( "example-4.1",
        [
          tc "d-point marking" test_example_4_1;
          tc "use_result" test_use_result;
          tc "use_param" test_use_param;
        ] );
      ("mixers", [ tc "bad_mixer table" test_bad_mixer ]);
      ( "insertion",
        [
          tc "insert_execute_at" test_insert_execute_at;
          tc "update condition" test_update_condition;
        ] );
    ]
