(* The distribution-safety verifier (lib/verify).

   Three angles:
   - soundness on good plans: every plan the decomposer emits, for the
     examples/ corpus and for random queries under all four strategies,
     verifies with zero errors (no false positives);
   - rejection of bad plans: hand-seeded violations of each rule come
     back as error diagnostics naming the rule and carrying a d-graph
     witness;
   - the executor gate: [Executor.run_plan] refuses failing plans with
     [Plan_rejected] unless [~force:true].

   Plus the differential property the verifier is meant to protect: the
   enhanced passing semantics agree with the data-shipping baseline on
   random queries, with the verifier gating every distributed run. *)

module Ast = Xd_lang.Ast
module S = Xd_core.Strategy
module E = Xd_core.Executor
module D = Xd_verify.Diag
module V = Xd_verify.Verify
open Util

let make_net = Gen_queries.make_net
let arb_query = Gen_queries.arb_query

let parse = Xd_lang.Parser.parse_query
let verify ?(self = "client") s q = V.verify ~self s q

let has_error rule (r : V.report) =
  List.exists (fun d -> D.is_error d && d.D.rule = rule) r.V.diags

let has_warning rule (r : V.report) =
  List.exists (fun d -> (not (D.is_error d)) && d.D.rule = rule) r.V.diags

(* ---- good plans: the examples corpus ---------------------------------- *)

(* Query texts of the examples/ programs (kept literally in sync; each is
   plain XQuery over xrpc:// URIs, decomposed here under every strategy).
   examples/projection_demo.ml is deliberately absent: its hand-written
   plan demonstrates the pass-by-value/-fragment divergence the verifier
   exists to reject (covered below in the bad-plan suite). *)
let corpus =
  [
    ( "quickstart join",
      {|for $m in doc("xrpc://hr.example.org/members.xml")/child::team/child::member
        for $s in doc("xrpc://payroll.example.org/salaries.xml")/child::salaries/child::salary
        where $m/attribute::id = $s/attribute::ref and $m/child::role != "prof"
        return element pay { attribute who { string($m/child::name) }, string($s) }|}
    );
    ( "federated join",
      {|for $e in doc("employees.xml")/child::employees/child::emp
        where $e/attribute::dept = doc("xrpc://example.org/depts.xml")/child::depts/child::dept/attribute::name
        return $e|}
    );
    ( "p2p catalog",
      {|let $wanted := doc("preferences.xml")/child::prefs/child::genre
        return for $b in doc("xrpc://books.example/catalog.xml")/child::catalog/child::book
               for $r in doc("xrpc://reviews.example/reviews.xml")/child::reviews/child::review
               where $b/attribute::genre = $wanted and $r/attribute::book = $b/attribute::id
                     and $r/child::stars > 3
               return element hit {
                        attribute title { string($b/child::title) },
                        $r/child::summary }|}
    );
    ( "xmark semijoin",
      {|(let $t := let $s := doc("xrpc://peer1/xmk.xml")/child::site/child::people/child::person
                   return for $x in $s return if ($x/descendant::age < 40) then $x else ()
         return for $e in (let $c := doc("xrpc://peer2/xmk.auctions.xml")
                           return $c/descendant::open_auction)
                return if ($e/child::seller/attribute::person = $t/attribute::id)
                       then $e/child::annotation else ())/child::author|}
    );
  ]

let test_corpus_verifies () =
  List.iter
    (fun (name, src) ->
      let q = parse src in
      List.iter
        (fun strategy ->
          List.iter
            (fun code_motion ->
              (* ~verify:true makes the decomposer gate itself *)
              let plan =
                Xd_core.Decompose.decompose ~code_motion ~verify:true strategy q
              in
              let r = verify strategy plan.Xd_core.Decompose.query in
              check_bool
                (Printf.sprintf "%s / %s%s verifies clean: %s" name
                   (S.to_string strategy)
                   (if code_motion then " +cm" else "")
                   (V.report_to_string r))
                (V.ok r))
            [ false; true ])
        S.all)
    corpus

(* ---- bad plans: one per rule ------------------------------------------ *)

(* condition i: reverse axis on a pass-by-value shipped copy *)
let rev_axis_src =
  {|count((execute at {"peerA"} function () {
      doc("xrpc://peerA/students.xml")/child::people/child::person
    })/parent::people)|}

let test_reject_reverse_axis () =
  let r = verify S.By_value (parse rev_axis_src) in
  check_bool "condition-i error" (has_error D.Cond_i r);
  check_bool "not ok" (not (V.ok r));
  (* the diagnostic must carry a d-graph witness from the offending step
     back to the execute-at call *)
  let d = List.find (fun d -> d.D.rule = D.Cond_i) (V.errors r) in
  check_bool "witness path present" (List.length d.D.witness >= 2);
  check_bool "names the call" (d.D.exec <> None);
  (* by-projection announces the demand in the projection paths — but a
     hand plan with *empty* paths demotes to by-fragment semantics on the
     wire, which does not carry ancestors: condition i applies in full *)
  let rp = verify S.By_projection (parse rev_axis_src) in
  check_bool "projection fallback: error" (has_error D.Cond_i rp);
  check_bool "projection fallback: not ok" (not (V.ok rp))

(* condition ii: node identity across the message boundary *)
let test_reject_node_identity () =
  let src =
    {|let $r := execute at {"peerA"} function () {
        doc("xrpc://peerA/students.xml")/child::people/child::person
      }
      return (item-at($r, 1) is item-at($r, 1))|}
  in
  let r = verify S.By_value (parse src) in
  check_bool "condition-ii error" (has_error D.Cond_ii r)

(* condition iii: axis step over a sequence that was mixed when shipped *)
let test_reject_mixed_step () =
  let src =
    {|count((execute at {"peerA"} function () {
        (doc("xrpc://peerA/students.xml")/child::people,
         doc("xrpc://peerA/students.xml")/child::people)
      })/child::person)|}
  in
  let r = verify S.By_value (parse src) in
  check_bool "condition-iii error" (has_error D.Cond_iii r)

(* condition iv: fn:root escapes the shipped fragment *)
let test_reject_root_escape () =
  let src =
    {|count(root(item-at(execute at {"peerA"} function () {
        doc("xrpc://peerA/students.xml")/child::people/child::person
      }, 1)))|}
  in
  let r = verify S.By_value (parse src) in
  check_bool "condition-iv error" (has_error D.Cond_iv r)

(* closure: the remote body references a caller variable that is not
   passed as a parameter. (Built directly: Static.check refuses such a
   query at the CLI before the verifier ever runs.) *)
let test_reject_unclosed_body () =
  let body =
    Ast.mk
      (Ast.Let
         ( "x",
           Ast.int 1,
           Ast.fun_call "count"
             [
               Ast.mk_execute_at ~host:(Ast.str "peerA") ~params:[]
                 ~body:(Ast.var "x");
             ] ))
  in
  let r = verify S.By_value { Ast.funcs = []; body } in
  check_bool "closure error" (has_error D.Closure r)

(* host consistency: the body shipped to peer2 reads peer1's document *)
let test_reject_host_mismatch () =
  let src =
    {|count(execute at {"peer2"} function () {
        doc("xrpc://peer1/students.xml")/child::people
      })|}
  in
  let r = verify S.By_value (parse src) in
  check_bool "host-consistency error" (has_error D.Host_consistency r)

(* update placement: deleting through a shipped copy would mutate the
   copy, not the remote original *)
let test_reject_update_through_copy () =
  let src =
    {|delete node item-at(execute at {"peerA"} function () {
        doc("xrpc://peerA/students.xml")/descendant::person
      }, 1)|}
  in
  let r = verify S.By_value (parse src) in
  check_bool "update-placement error" (has_error D.Update_placement r)

(* ...but under data shipping the document is a full local replica and
   the runtime refuses bad targets itself: verifier warns, doesn't gate
   (test_updates exercises the dynamic refusal) *)
let test_data_shipping_update_warns_only () =
  let src =
    {|delete node item-at(doc("xrpc://peerA/students.xml")/child::people/child::person, 1)|}
  in
  let plan = Xd_core.Decompose.decompose S.Data_shipping (parse src) in
  let r = verify S.Data_shipping plan.Xd_core.Decompose.query in
  check_bool "no errors" (V.ok r);
  check_bool "but a placement warning" (has_warning D.Update_placement r)

(* projection coverage: tampering with a filled plan's result paths so
   they no longer cover the caller's navigation is caught *)
let test_reject_tampered_projection_paths () =
  let xmark = List.assoc "xmark semijoin" corpus in
  let plan = Xd_core.Decompose.decompose S.By_projection (parse xmark) in
  let q = plan.Xd_core.Decompose.query in
  let tampered = ref false in
  Ast.iter
    (fun e ->
      match e.Ast.desc with
      | Ast.Execute_at x when (not !tampered) && x.Ast.result_paths <> ([], []) ->
        x.Ast.result_paths <- ([ "child::bogus" ], []);
        tampered := true
      | _ -> ())
    q.Ast.body;
  check_bool "found a filled execute-at to tamper with" !tampered;
  let r = verify S.By_projection q in
  check_bool "projection-coverage error" (has_error D.Projection_coverage r)

(* the projection lift, end to end: the paper's makenodes() scenario is
   rejected under pass-by-value but verifies once the by-projection
   pipeline (inline + path fill) has announced the parent::a demand *)
let makenodes_src =
  {|declare function makenodes() { (element a { element b { element c {()} } })/child::b };
    let $bc := execute at {"example.org"} { makenodes() }
    return count($bc/parent::a)|}

let test_projection_lifts_reverse_axis () =
  let r = verify S.By_value (parse makenodes_src) in
  check_bool "by-value: condition-i error" (has_error D.Cond_i r);
  let q = Xd_core.Inline.inline_query (parse makenodes_src) in
  Xd_core.Projection_fill.fill ~funcs:q.Ast.funcs q.Ast.body;
  let r = verify S.By_projection q in
  check_bool
    (Printf.sprintf "by-projection after fill verifies: %s"
       (V.report_to_string r))
    (V.ok r)

(* ---- the executor gate ------------------------------------------------ *)

let test_executor_refuses_unless_forced () =
  let q = parse rev_axis_src in
  let plan = Xd_core.Decompose.plan_of_query S.By_value q in
  let net, client = make_net () in
  (match E.run_plan net ~client plan with
  | exception E.Plan_rejected r ->
    check_bool "rejection report has errors" (V.errors r <> [])
  | _ -> Alcotest.fail "expected Plan_rejected");
  (* decomposer self-check raises the same way *)
  (match Xd_core.Decompose.decompose ~verify:true S.By_value q with
  | exception Xd_core.Decompose.Rejected _ ->
    Alcotest.fail "decomposer's own plan must verify"
  | _ -> ());
  (* --force semantics: execute anyway (the copies' parents don't exist
     in the message, so the count silently comes out 0 — exactly the
     divergence the verifier reports) *)
  let r = E.run_plan ~force:true net ~client plan in
  check_string "forced run executes" "0"
    (Xd_lang.Value.serialize r.E.value)

(* ---- satellite: the builtin registry can't drift ---------------------- *)

let test_builtin_registry_in_sync () =
  (* Builtins.table itself cross-checks against Builtin_names.all and
     raises on any drift *)
  ignore (Xd_lang.Builtins.table ());
  check_bool "conditions share the authoritative list"
    (Xd_core.Conditions.known_builtins == Xd_lang.Builtin_names.all);
  check_bool "doc is known" (Xd_lang.Builtin_names.is_builtin "doc");
  check_bool "frobnicate is not" (not (Xd_lang.Builtin_names.is_builtin "frobnicate"))

(* ---- random queries: zero false positives + differential -------------- *)

(* every plan the decomposer emits verifies with zero errors, under all
   four strategies, with and without code motion *)
let prop_decomposer_plans_verify =
  qtest ~count:80 "random queries: decomposer plans verify clean" arb_query
    (fun q ->
      List.for_all
        (fun strategy ->
          List.for_all
            (fun code_motion ->
              match
                Xd_core.Decompose.decompose ~code_motion ~verify:true strategy q
              with
              | _ -> true
              | exception Xd_core.Decompose.Rejected _ -> false)
            [ false; true ])
        S.all)

(* the enhanced passing semantics equal the data-shipping baseline, with
   the verifier gating every distributed run ([E.run] raises
   [Plan_rejected] on any error — a false positive fails the property) *)
let prop_differential_verified =
  qtest ~count:60 "random queries: verified strategies = data-shipping"
    arb_query (fun q ->
      let baseline =
        let net, client = make_net () in
        try Ok (E.run net ~client S.Data_shipping q).E.value
        with _ -> Error ()
      in
      match baseline with
      | Error () -> QCheck.assume_fail () (* ill-typed random query *)
      | Ok reference ->
        List.for_all
          (fun strategy ->
            let net, client = make_net () in
            let r = E.run net ~client strategy q in
            Xd_lang.Value.deep_equal r.E.value reference)
          [ S.By_value; S.By_fragment; S.By_projection ])

let () =
  Alcotest.run "xd_verify"
    [
      ( "good plans",
        [
          tc "examples corpus verifies under all strategies"
            test_corpus_verifies;
          tc "data-shipping update warns, doesn't gate"
            test_data_shipping_update_warns_only;
          tc "projection fill lifts the reverse-axis rejection"
            test_projection_lifts_reverse_axis;
        ] );
      ( "bad plans",
        [
          tc "reverse axis on shipped copy" test_reject_reverse_axis;
          tc "node identity across the message" test_reject_node_identity;
          tc "step over mixed shipped sequence" test_reject_mixed_step;
          tc "fn:root escape" test_reject_root_escape;
          tc "unclosed remote body" test_reject_unclosed_body;
          tc "host mismatch" test_reject_host_mismatch;
          tc "update through shipped copy" test_reject_update_through_copy;
          tc "tampered projection paths" test_reject_tampered_projection_paths;
        ] );
      ( "executor gate",
        [ tc "refuses failing plans unless forced" test_executor_refuses_unless_forced ] );
      ( "registry", [ tc "builtin list is authoritative" test_builtin_registry_in_sync ] );
      ( "random",
        [ prop_decomposer_plans_verify; prop_differential_verified ] );
    ]
