(* The effect & interference analysis, its runtime scheduler, and the
   verifier's independent schedule check.

   Three layers under test:

   - soundness of the static footprints: every document the evaluator
     actually observes (instrumented via the Env.observe hook) must be
     covered by the analyzed read footprint of the query body;
   - schedule equivalence: executing a plan with the overlap scheduler
     (parallel + batched envelopes) must be indistinguishable from
     sequential execution — same values, same post-run document state,
     and on a faulty wire byte-identical messages;
   - the verifier's re-derivation: hand-made schedules that overlap
     interfering (write-touching) calls are rejected with the
     schedule-interference rule. *)

module Ast = Xd_lang.Ast
module S = Xd_core.Strategy
module E = Xd_core.Executor
module Ef = Xd_effects.Effects
module F = Xd_xrpc.Fault
module M = Xd_xrpc.Message
open Util

let make_net = Gen_queries.make_net
let arb_query = Gen_queries.arb_query
let parse = Xd_lang.Parser.parse_query

(* ---- footprint unit tests ----------------------------------------------- *)

let fp_of src =
  let q = parse src in
  let res = Ef.analyze q in
  match Ef.footprint_of res q.Ast.body with
  | Some fp -> fp
  | None -> Alcotest.fail "no footprint for the query body"

let reads_docs fp = List.map fst (Ef.reads fp)
let writes_docs fp = List.map fst (Ef.writes fp)

let footprint_reads () =
  let fp = fp_of {|doc("xrpc://peerA/students.xml")/child::people|} in
  check_bool "pure" (Ef.pure fp);
  check_slist "read doc" [ "peerA/students.xml" ] (reads_docs fp);
  (* a relative URI resolves against the analysis site (client) *)
  let fp = fp_of {|doc("local.xml")/child::conf|} in
  check_slist "client-relative doc" [ "client/local.xml" ] (reads_docs fp)

let footprint_writes () =
  let fp =
    fp_of {|delete node doc("xrpc://peerA/students.xml")//child::person|}
  in
  check_bool "not pure" (not (Ef.pure fp));
  check_slist "write doc" [ "peerA/students.xml" ] (writes_docs fp)

let footprint_interference () =
  let reader = fp_of {|doc("xrpc://peerA/students.xml")//child::person|} in
  let writer =
    fp_of {|delete node doc("xrpc://peerA/students.xml")//child::person|}
  in
  let other = fp_of {|doc("xrpc://peerB/course.xml")//child::exam|} in
  check_bool "read-read never interferes" (not (Ef.interferes reader other));
  check_bool "write vs overlapping read" (Ef.interferes reader writer);
  check_bool "interference commutes" (Ef.interferes writer reader);
  check_bool "write vs disjoint document" (not (Ef.interferes writer other))

(* ancestor/descendant conservatism: every doc() use reads the document
   root, and a write anywhere below the root stands in a descendant
   relation to it — so a writer interferes with ANY reader of the same
   document, even under sibling-name-disjoint paths. Only distinct
   documents are provably safe. *)
let footprint_disjoint_paths () =
  let w =
    fp_of
      {|delete node doc("xrpc://peerA/students.xml")/child::people/child::person|}
  in
  let r_sibling =
    fp_of {|doc("xrpc://peerA/students.xml")/child::archive/child::box|}
  in
  check_bool "same-document reader still interferes (root is an ancestor)"
    (Ef.interferes w r_sibling)

(* ---- scheduling unit tests ---------------------------------------------- *)

let plan_fanout =
  {|(execute at {"peerA"} function ()
       { count(doc("xrpc://peerA/students.xml")//child::person) },
     execute at {"peerB"} function ()
       { count(doc("xrpc://peerB/course.xml")//child::exam) })|}

let plan_same_peer =
  {|(execute at {"peerA"} function ()
       { count(doc("xrpc://peerA/students.xml")//child::person) },
     execute at {"peerA"} function ()
       { count(doc("xrpc://peerA/students.xml")//child::age) },
     execute at {"peerB"} function ()
       { count(doc("xrpc://peerB/course.xml")//child::exam) })|}

let plan_interfering =
  {|(execute at {"peerA"} function ()
       { count(doc("xrpc://peerA/students.xml")//child::person) },
     execute at {"peerA"} function ()
       { delete node doc("xrpc://peerA/students.xml")//child::tutor })|}

let schedule_of src =
  let q = parse src in
  (q, Ef.schedule (Ef.analyze q) q)

let schedule_groups () =
  let q, groups = schedule_of plan_fanout in
  check_int "one group" 1 (List.length groups);
  let g = List.hd groups in
  check_int "two members" 2 (List.length g.Ef.members);
  check_int "anchored at the Seq" q.Ast.body.Ast.id g.Ef.anchor;
  (* the interfering pair must not be grouped: the write member is not
     schedulable *)
  let _, groups = schedule_of plan_interfering in
  check_int "no group over an updating call" 0 (List.length groups)

let run_plan ?fault ?record ~parallel src =
  let net, client = make_net ?fault () in
  let plan = Xd_core.Decompose.plan_of_query S.By_projection (parse src) in
  let r = E.run_plan ?record ~parallel net ~client plan in
  (net, r)

let makespan_max_not_sum () =
  let _, rs = run_plan ~parallel:false plan_fanout in
  let _, rp = run_plan ~parallel:true plan_fanout in
  check_bool "results agree"
    (Xd_lang.Value.deep_equal rs.E.value rp.E.value);
  let ts = rs.E.timing and tp = rp.E.timing in
  check_bool "parallel wire time < sequential"
    (tp.E.network_s < ts.E.network_s);
  (* the saved time is exactly the sequential sum minus the critical path *)
  Alcotest.check (Alcotest.float 1e-9) "saved = sum - max"
    (ts.E.network_s -. tp.E.network_s)
    tp.E.sched_saved_s;
  check_int "one overlap group" 1 tp.E.sched_groups;
  check_int "two overlapped calls" 2 tp.E.sched_overlapped;
  check_int "sequential run schedules nothing" 0 ts.E.sched_groups

let batching_one_envelope_per_peer () =
  let _, rs = run_plan ~parallel:false plan_same_peer in
  let _, rp = run_plan ~parallel:true plan_same_peer in
  check_bool "results agree"
    (Xd_lang.Value.deep_equal rs.E.value rp.E.value);
  let tp = rp.E.timing in
  (* two peerA calls coalesce into one envelope; the peerB call stays a
     singleton *)
  check_int "one batched envelope" 1 tp.E.batch_envelopes;
  check_int "two calls travelled batched" 2 tp.E.batch_calls;
  check_int "three remote calls in total" 3 tp.E.calls;
  (* one round trip per peer: 2 request/response pairs instead of 3 *)
  check_int "message count drops" (rs.E.timing.E.messages - 2) tp.E.messages

let per_peer_call_counters () =
  let net, rp = run_plan ~parallel:true plan_same_peer in
  let stats = net.Xd_xrpc.Network.stats in
  check_int "calls total" 3 rp.E.timing.E.calls;
  check_int "calls to peerA" 2 (Xd_xrpc.Stats.calls_to stats "peerA");
  check_int "calls to peerB" 1 (Xd_xrpc.Stats.calls_to stats "peerB")

let no_parallel_wire_identical () =
  (* on a fault-free wire the batched messages differ; with --no-parallel
     the wire must be byte-identical to the baseline *)
  let wire src parallel =
    let record = ref [] in
    let _ = run_plan ~record ~parallel src in
    List.rev_map (fun r -> r.Xd_xrpc.Session.text) !record
  in
  check_bool "no-parallel wire = baseline wire"
    (wire plan_same_peer false = wire plan_same_peer false)

(* ---- verifier: schedule vetting ----------------------------------------- *)

let exec_ids body =
  let acc = ref [] in
  let rec go (e : Ast.expr) =
    (match e.Ast.desc with
    | Ast.Execute_at _ -> acc := e.Ast.id :: !acc
    | _ -> ());
    List.iter go (Ast.children e)
  in
  go body;
  List.rev !acc

let has_sched_error report =
  List.exists
    (fun d -> Xd_verify.Diag.rule_name d.Xd_verify.Diag.rule = "schedule-interference")
    (Xd_verify.Verify.errors report)

let verifier_rejects_interference () =
  let q = parse plan_interfering in
  let members = exec_ids q.Ast.body in
  check_int "two calls" 2 (List.length members);
  let schedule = [ (q.Ast.body.Ast.id, members) ] in
  let report = Xd_verify.Verify.verify ~schedule S.By_projection q in
  check_bool "interfering schedule rejected" (has_sched_error report);
  (* the same plan without a schedule is none of the verifier's business *)
  let report = Xd_verify.Verify.verify S.By_projection q in
  check_bool "no schedule, no finding" (not (has_sched_error report))

let verifier_accepts_disjoint () =
  let q = parse plan_fanout in
  let schedule = [ (q.Ast.body.Ast.id, exec_ids q.Ast.body) ] in
  let report = Xd_verify.Verify.verify ~schedule S.By_projection q in
  check_bool "non-interfering schedule passes" (not (has_sched_error report))

let executor_runs_own_schedule () =
  (* the full pipeline: plan_schedule derives the groups, the verifier
     vets them, the session runs them — and an interfering plan never
     produces a schedule in the first place *)
  let net, client = make_net () in
  let plan = Xd_core.Decompose.plan_of_query S.By_projection (parse plan_fanout) in
  check_int "fan-out plan schedules one group" 1
    (List.length (E.plan_schedule ~client plan));
  let plan = Xd_core.Decompose.plan_of_query S.By_projection (parse plan_interfering) in
  check_int "interfering plan schedules nothing" 0
    (List.length (E.plan_schedule ~client plan));
  ignore net

(* updating plans still work under the scheduler, and leave the same
   document state as the sequential baseline *)
let world_state net =
  List.map
    (fun (host, name) ->
      let peer = Xd_xrpc.Network.find_peer net host in
      Xd_xml.Serializer.doc (Option.get (Xd_xrpc.Peer.find_doc peer name)))
    [ ("peerA", "students.xml"); ("peerB", "course.xml") ]

let updates_unchanged_by_scheduler () =
  let run parallel =
    let net, r = run_plan ~parallel plan_interfering in
    (r.E.value, world_state net)
  in
  let vs, ss = run false in
  let vp, sp = run true in
  check_bool "values agree" (Xd_lang.Value.deep_equal vs vp);
  check_bool "post-update document state agrees" (ss = sp)

(* ---- constfold satellites ----------------------------------------------- *)

let constfold_string_join () =
  let const src =
    Xd_core.Constfold.const_string (parse src).Ast.body
  in
  check_bool "nested concat folds"
    (const {|concat("pe", concat("er", "1"))|} = Some "peer1");
  check_bool "string-join over a literal sequence folds"
    (const {|string-join(("pe", "er", "1"), "")|} = Some "peer1");
  check_bool "string-join with separator folds"
    (const {|string-join(("a", "b"), "-")|} = Some "a-b");
  check_bool "nested sequences flatten"
    (const {|string-join(("a", ("b", "c")), "")|} = Some "abc");
  check_bool "string-join of concat folds"
    (const {|string-join((concat("a", "b"), "c"), "")|} = Some "abc");
  check_bool "non-literal member refuses to fold"
    (const {|string-join(("a", string(doc("d.xml"))), "")|} = None)

let constfold_hosts_in_plans () =
  (* a host computed by string-join is treated like a written-out one:
     the decomposed plan schedules and batches it *)
  let src =
    {|(execute at {string-join(("peer", "A"), "")} function ()
         { count(doc("xrpc://peerA/students.xml")//child::person) },
       execute at {concat("peer", "A")} function ()
         { count(doc("xrpc://peerA/students.xml")//child::age) })|}
  in
  let plan = Xd_core.Decompose.plan_of_query S.By_projection (parse src) in
  let net, client = make_net () in
  let r = E.run_plan ~parallel:true net ~client plan in
  check_int "folded hosts batch together" 1 r.E.timing.E.batch_envelopes;
  ignore net

(* ---- QCheck: footprint soundness ---------------------------------------- *)

(* Canonical key of a doc() URI, mirroring the analysis's keying. *)
let canonical uri =
  match Xd_dgraph.Dgraph.split_xrpc_uri uri with
  | Some (h, n) -> h ^ "/" ^ n
  | None -> "client/" ^ uri

(* Evaluate [q] locally with every axis step instrumented: the returned
   set holds the canonical keys of every document whose nodes the
   evaluator actually touched. *)
let observed_docs net client (q : Ast.query) =
  let keymap = Hashtbl.create 8 in
  let observed = Hashtbl.create 8 in
  let resolve_doc env uri =
    let d =
      match Xd_dgraph.Dgraph.split_xrpc_uri uri with
      | Some (host, name) -> (
        let peer = Xd_xrpc.Network.find_peer net host in
        match Xd_xrpc.Peer.find_doc peer name with
        | Some d -> d
        | None -> Xd_lang.Env.dynamic_error "document %S not found" name)
      | None -> Xd_lang.Env.default_resolve_doc env uri
    in
    Hashtbl.replace keymap (X.Doc.id d) (canonical uri);
    d
  in
  let observe n =
    match Hashtbl.find_opt keymap (X.Doc.id (X.Node.doc n)) with
    | Some key -> Hashtbl.replace observed key ()
    | None -> () (* constructed / shredded node: not a stored document *)
  in
  let env =
    Xd_lang.Env.create ~funcs:q.Ast.funcs ~resolve_doc ~observe
      (Xd_xrpc.Peer.store client)
  in
  ignore (Xd_lang.Eval.eval env q.Ast.body);
  Hashtbl.fold (fun k () acc -> k :: acc) observed []

let prop_footprint_soundness =
  qtest ~count:600 "observed documents are in the read footprint" arb_query
    (fun q ->
      let net, client = make_net () in
      match observed_docs net client q with
      | exception _ -> QCheck.assume_fail () (* ill-typed random query *)
      | observed -> (
        let res = Ef.analyze ~self:"client" q in
        match Ef.footprint_of res q.Ast.body with
        | None -> false (* the body must always carry a footprint *)
        | Some fp ->
          Ef.reads_any fp
          || List.for_all
               (fun key -> List.mem_assoc key (Ef.reads fp))
               observed))

(* ---- QCheck: schedule equivalence --------------------------------------- *)

(* Decomposed random queries, executed with and without the scheduler:
   same value, same document state. The decomposer emits the execute-at
   structure; whatever the analysis finds schedulable must not change
   anything observable. *)
let prop_schedule_equivalence =
  qtest ~count:300 "parallel/batched = sequential (random queries)"
    arb_query (fun q ->
      let run parallel =
        let net, client = make_net () in
        let r = E.run ~parallel net ~client S.By_projection q in
        (r.E.value, world_state net)
      in
      match run false with
      | exception _ -> QCheck.assume_fail ()
      | vs, ss ->
        let vp, sp = run true in
        Xd_lang.Value.deep_equal vs vp && ss = sp)

(* On a faulty wire the scheduler must disable itself entirely: the
   recorded messages are byte-identical to the sequential baseline, so a
   seeded fault schedule hits the same bytes in the same order. *)
let arb_fault_case =
  let open QCheck.Gen in
  let gen =
    let* spec = oneofl [ "drop@0.3#2"; "dup@0.4"; "peerA:truncate@0.5#1"; "delay=0.2@0.5" ] in
    let* seed = int_bound 9999 in
    return (spec, seed)
  in
  QCheck.make
    ~print:(fun (spec, seed) -> Printf.sprintf "spec %S, seed %d" spec seed)
    gen

let fault_of spec seed =
  match F.parse spec with
  | Ok s -> F.create ~seed s
  | Error e -> Alcotest.failf "unparsable spec %S: %s" spec e

let prop_faulty_wire_identical =
  qtest ~count:150 "faulty wire: scheduler off, wire byte-identical"
    arb_fault_case (fun (spec, seed) ->
      let wire parallel =
        let record = ref [] in
        let outcome =
          match
            run_plan ~fault:(fault_of spec seed) ~record ~parallel
              plan_same_peer
          with
          | _, r -> `Value (Xd_lang.Value.serialize r.E.value)
          | exception M.Xrpc_fault { code; _ } ->
            `Fault (M.fault_code_to_string code)
          | exception M.Xrpc_timeout _ -> `Timeout
        in
        ( outcome,
          List.rev_map
            (fun r ->
              match r.Xd_xrpc.Session.dir with
              | `Request h -> ("req:" ^ h, r.Xd_xrpc.Session.text)
              | `Response h -> ("resp:" ^ h, r.Xd_xrpc.Session.text))
            !record )
      in
      wire false = wire true)

(* ---- suite -------------------------------------------------------------- *)

let () =
  Alcotest.run "xd_effects"
    [
      ( "footprints",
        [
          tc "reads" footprint_reads;
          tc "writes" footprint_writes;
          tc "interference" footprint_interference;
          tc "disjoint paths" footprint_disjoint_paths;
        ] );
      ( "scheduler",
        [
          tc "groups" schedule_groups;
          tc "makespan = max not sum" makespan_max_not_sum;
          tc "one envelope per peer" batching_one_envelope_per_peer;
          tc "per-peer call counters" per_peer_call_counters;
          tc "no-parallel wire identical" no_parallel_wire_identical;
          tc "updates unchanged" updates_unchanged_by_scheduler;
        ] );
      ( "verifier",
        [
          tc "rejects interference" verifier_rejects_interference;
          tc "accepts disjoint" verifier_accepts_disjoint;
          tc "executor schedules safely" executor_runs_own_schedule;
        ] );
      ( "constfold",
        [
          tc "string-join folding" constfold_string_join;
          tc "folded hosts in plans" constfold_hosts_in_plans;
        ] );
      ( "properties",
        [
          prop_footprint_soundness;
          prop_schedule_equivalence;
          prop_faulty_wire_identical;
        ] );
    ]
