(* Section II: the five semantic-difference problems of pass-by-value,
   demonstrated with the paper's Q1 machinery (Table I) by *hand-written*
   execute-at expressions — the forms the conservative decomposition must
   refuse to generate — and their resolution under pass-by-fragment /
   pass-by-projection. *)

module M = Xd_xrpc.Message
module V = Xd_lang.Value
open Util

let prolog =
  {|declare function makenodes() { (element a { element b { element c {()} } })/child::b };
    declare function overlap($l, $r) { not(empty($l/descendant-or-self::node() intersect $r/descendant-or-self::node())) };
    declare function earlier($l, $r) { if ($l << $r) then $l else $r };
  |}

let run ?(passing = M.By_fragment) ?(with_projection_paths = false) query =
  let net = Xd_xrpc.Network.create () in
  let client = Xd_xrpc.Network.new_peer net "client" in
  let _server = Xd_xrpc.Network.new_peer net "example.org" in
  let session = Xd_xrpc.Session.create net client passing in
  let q = Xd_lang.Parser.parse_query (prolog ^ query) in
  (* inline user functions so execute-at bodies are self-contained and the
     projection analysis can see through them *)
  let q = Xd_core.Inline.inline_query q in
  if with_projection_paths then
    Xd_core.Projection_fill.fill ~funcs:q.Xd_lang.Ast.funcs q.Xd_lang.Ast.body;
  V.serialize (Xd_xrpc.Session.execute session q)

let run_local query =
  let st = store () in
  V.serialize (Xd_lang.Eval.run st (prolog ^ query))

(* ---- Q1 local semantics (Table I) --------------------------------------- *)

let q1 =
  {|let $bc := makenodes()
    let $abc := $bc/parent::a
    return (for $node in ($bc, $abc)
            let $first := earlier($bc, $abc)
            return if (overlap($first, $node)) then $node else ())/descendant-or-self::c|}

(* Q1's final //c: the paper says ONE <c/> because the two returned nodes
   overlap and the path step deduplicates. Check exactly. *)
let test_q1_local_count () =
  let st = store () in
  let v = Xd_lang.Eval.run st (prolog ^ "count((" ^ q1 ^ "))") in
  check_string "exactly one c" "1" (V.serialize v)

(* ---- Problem 1: non-downward steps ---------------------------------------- *)

let p1_query =
  {|let $bc := execute at {"example.org"} { makenodes() }
    return count($bc/parent::a)|}

let test_problem1_by_value () =
  check_string "parent of shipped node is empty under by-value" "0"
    (run ~passing:M.By_value p1_query)

let test_problem1_by_fragment () =
  (* by-fragment ships the subtree only: still broken *)
  check_string "still empty under by-fragment" "0"
    (run ~passing:M.By_fragment p1_query)

let test_problem1_by_projection () =
  (* by-projection ships the ancestor chain announced by the projection
     paths: the parent becomes reachable *)
  check_string "fixed under by-projection" "1"
    (run ~passing:M.By_projection ~with_projection_paths:true p1_query)

let p1_query_local =
  {|let $bc := makenodes()
    return count($bc/parent::a)|}

let test_problem1_local_reference () =
  check_string "local reference" "1" (run_local p1_query_local)

(* ---- Problem 2: node identity -------------------------------------------- *)

(* overlap($first, $node) where both are copies of related nodes: by-value
   makes them unrelated *)
let p2_query =
  {|let $pair := execute at {"example.org"}
                 function () { let $bc := makenodes() return ($bc, $bc/parent::a) }
    return string(overlap($pair[1], $pair[2]))|}

let test_problem2_by_value () =
  check_string "overlap lost under by-value" "false"
    (run ~passing:M.By_value p2_query)

let test_problem2_by_fragment () =
  check_string "overlap preserved under by-fragment" "true"
    (run ~passing:M.By_fragment p2_query)

let p2_query_local =
  {|let $pair := (let $bc := makenodes() return ($bc, $bc/parent::a))
    return string(overlap($pair[1], $pair[2]))|}

let test_problem2_local () = check_string "local" "true" (run_local p2_query_local)

(* ---- Problem 3: document order -------------------------------------------- *)

(* earlier($bc, $abc) remotely: by-value serializes parameters in parameter
   order, so the child appears before its parent *)
let p3_query =
  {|let $bc0 := makenodes()
    let $abc := $bc0/parent::a
    let $first := execute at {"example.org"}
                  function ($l := $bc0, $r := $abc) { earlier($l, $r) }
    return string(count($first/child::b))|}
(* if $first is (correctly) $abc, it has a b child; the by-value copy of
   $bc has none *)

let test_problem3_by_value () =
  check_string "wrong earlier under by-value" "0" (run ~passing:M.By_value p3_query)

let test_problem3_by_fragment () =
  check_string "correct earlier under by-fragment" "1"
    (run ~passing:M.By_fragment p3_query)

let p3_query_local =
  {|let $bc0 := makenodes()
    let $abc := $bc0/parent::a
    let $first := earlier($bc0, $abc)
    return string(count($first/child::b))|}

let test_problem3_local () =
  check_string "local" "1" (run_local p3_query_local)

(* ---- Problem 4: interaction between different calls ------------------------ *)

(* nodes returned by two calls of the same loop: under by-value each call
   copies separately, so the //c step finds two distinct c's; under
   by-fragment (session-wide fragment space = bulk RPC) identity is shared
   and deduplication works *)
let p4_query =
  {|let $bc0 := makenodes()
    let $abc := $bc0/parent::a
    return string(count((for $node in ($bc0, $abc)
      let $first := execute at {"example.org"}
                    function ($l := $node, $r := $abc) { earlier($l, $r) }
      return $first)/descendant-or-self::c))|}

let test_problem4_by_value () =
  check_string "duplicates under by-value" "2" (run ~passing:M.By_value p4_query)

let test_problem4_by_fragment () =
  check_string "dedup under by-fragment" "1" (run ~passing:M.By_fragment p4_query)

let p4_query_local =
  {|let $bc0 := makenodes()
    let $abc := $bc0/parent::a
    return string(count((for $node in ($bc0, $abc)
      let $first := earlier($node, $abc)
      return $first)/descendant-or-self::c))|}

let test_problem4_local () =
  check_string "local" "1" (run_local p4_query_local)

(* ---- Problem 5: builtin functions ------------------------------------------ *)

let test_problem5_static_context () =
  (* class 1 builtins agree between local and remote execution *)
  let remote =
    run ~passing:M.By_value
      {|execute at {"example.org"} function () { string(current-dateTime()) }|}
  in
  let local = run_local {|string(current-dateTime())|} in
  check_string "current-dateTime propagated" local remote

let test_problem5_root_by_value () =
  (* class 3: fn:root on a shipped node sees only the fragment under
     by-value/by-fragment *)
  let q =
    {|let $n := doc("local.xml")/child::r/child::x/child::y
      return execute at {"example.org"} function ($p := $n) { name(root($p)/child::*) }|}
  in
  let net = Xd_xrpc.Network.create () in
  let client = Xd_xrpc.Network.new_peer net "client" in
  let _server = Xd_xrpc.Network.new_peer net "example.org" in
  ignore (Xd_xrpc.Peer.load_xml client ~doc_name:"local.xml" "<r><x><y/></x></r>");
  let exec passing fill =
    let session = Xd_xrpc.Session.create net client passing in
    let q = Xd_lang.Parser.parse_query q in
    if fill then Xd_core.Projection_fill.fill ~funcs:[] q.Xd_lang.Ast.body;
    V.serialize (Xd_xrpc.Session.execute session q)
  in
  check_string "by-fragment root sees only the fragment" "y"
    (exec M.By_fragment false);
  check_string "by-projection ships up to the root" "r"
    (exec M.By_projection true)

let () =
  Alcotest.run "xd_problems"
    [
      ("q1", [ tc "local count" test_q1_local_count ]);
      ( "problem-1 (reverse axes)",
        [
          tc "local" test_problem1_local_reference;
          tc "by-value broken" test_problem1_by_value;
          tc "by-fragment broken" test_problem1_by_fragment;
          tc "by-projection fixed" test_problem1_by_projection;
        ] );
      ( "problem-2 (identity)",
        [
          tc "local" test_problem2_local;
          tc "by-value broken" test_problem2_by_value;
          tc "by-fragment fixed" test_problem2_by_fragment;
        ] );
      ( "problem-3 (order)",
        [
          tc "local" test_problem3_local;
          tc "by-value broken" test_problem3_by_value;
          tc "by-fragment fixed" test_problem3_by_fragment;
        ] );
      ( "problem-4 (mixed calls)",
        [
          tc "local" test_problem4_local;
          tc "by-value broken" test_problem4_by_value;
          tc "by-fragment fixed" test_problem4_by_fragment;
        ] );
      ( "problem-5 (builtins)",
        [
          tc "static context" test_problem5_static_context;
          tc "fn:root" test_problem5_root_by_value;
        ] );
    ]
