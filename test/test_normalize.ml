(* Tests for XCore normalization (let-pushing, Section IV) against the
   paper's Qc2 → Qn2 example, plus the safety barriers and function
   inlining. *)

module Ast = Xd_lang.Ast
open Util

let parse s = (Xd_lang.Parser.parse_query s).Ast.body
let norm e = Xd_core.Normalize.normalize e
let pp = Xd_lang.Pp.expr_to_string

let q2 =
  {|(let $s := doc("xrpc://A/students.xml")/child::people/child::person
     return let $c := doc("xrpc://B/course42.xml")
     return let $t := for $x in $s return
                        if ($x/child::tutor = $s/child::name) then $x else ()
     return for $e in $c/child::enroll/child::exam
            return if ($e/attribute::id = $t/child::id) then $e else ())/child::grade|}

(* structural helpers *)
let rec find_let v (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Let (w, _, _) when w = v -> Some e
  | _ -> List.find_map (find_let v) (Ast.children e)

let rec depth_of target (e : Ast.expr) d =
  if e.Ast.id = target then Some d
  else
    List.find_map (fun c -> depth_of target c (d + 1)) (Ast.children e)

let test_q2_normalization () =
  (* After normalization (Qn2): $s's binding moves inside $t's binding, and
     $c's binding moves inside the for's 'in' expression. *)
  let e = norm (parse q2) in
  let let_t = Option.get (find_let "t" e) in
  let let_s = Option.get (find_let "s" e) in
  let let_c = Option.get (find_let "c" e) in
  (* $s is now inside $t's value expression *)
  let t_value = List.hd (Ast.children let_t) in
  check_bool "$s pushed under $t's value"
    (Option.is_some (depth_of let_s.Ast.id t_value 0));
  (* $c is inside the for-loop subtree, no longer above $t *)
  let t_body = List.nth (Ast.children let_t) 1 in
  check_bool "$c pushed below $t's return"
    (Option.is_some (depth_of let_c.Ast.id t_body 0))

let test_unused_binding_dropped () =
  let e = norm (parse {|let $dead := doc("x.xml") return 42|}) in
  check_bool "dead let dropped" (find_let "dead" e = None)

let test_no_push_into_for_body () =
  (* the binding is used only in the for body, but pushing it there would
     re-evaluate it per iteration: it must stay above the for *)
  let e =
    norm (parse {|let $v := doc("d.xml")//x return for $i in (1, 2, 3) return ($v, $i)|})
  in
  match e.Ast.desc with
  | Ast.Let (v, _, { Ast.desc = Ast.For _; _ }) ->
    check_string "binding stays above the for" "v" v
  | _ -> Alcotest.fail ("expected let above for, got: " ^ pp e)

let test_push_into_for_in_expr () =
  (* used only in the 'in' expression: pushing is fine (Qn2 does this) *)
  let e =
    norm (parse {|let $c := doc("d.xml") return for $e in $c/child::x return $e|})
  in
  match e.Ast.desc with
  | Ast.For _ -> ()
  | _ -> Alcotest.fail ("expected for at top, got: " ^ pp e)

let test_push_into_if_branch () =
  let e =
    norm
      (parse
         {|let $v := doc("d.xml")//x return if (1 < 2) then $v else ()|})
  in
  (match e.Ast.desc with
  | Ast.If (_, { Ast.desc = Ast.Let _; _ }, _) -> ()
  | _ -> Alcotest.fail ("expected let inside then-branch, got: " ^ pp e))

let test_no_capture () =
  (* $x in the binding refers to the OUTER $x; pushing under the inner
     for $x would capture it *)
  let e =
    norm
      (parse
         {|for $x in (1, 2) return let $v := $x + 1 return for $x in (3, 4) return ($v, $x)|})
  in
  (* the binding must stay directly above the inner for (which rebinds $x),
     not descend into its body *)
  let let_v = Option.get (find_let "v" e) in
  (match (List.nth (Ast.children let_v) 1).Ast.desc with
  | Ast.For ("x", _, body) -> (
    match body.Ast.desc with
    | Ast.Let ("v", _, _) -> Alcotest.fail "binding captured inside inner for"
    | _ -> ())
  | _ -> Alcotest.fail "expected let $v directly above the inner for")

let test_idempotent () =
  let e = norm (parse q2) in
  check_string "normalization is idempotent" (pp e) (pp (norm e))

let test_semantics_preserved () =
  (* normalization must not change results *)
  let doc_xml = {|<people><person><tutor>Ann</tutor><name>Ann</name><id>7</id></person></people>|}
  in
  let run body_src =
    let st = store () in
    let _ = Xd_xml.Parser.parse ~store:st ~uri:"d.xml" doc_xml in
    Xd_lang.Value.serialize (Xd_lang.Eval.run st body_src)
  in
  let src =
    {|let $s := doc("d.xml")/people/person
      let $t := for $x in $s return if ($x/tutor = $s/name) then $x else ()
      return count($t)|}
  in
  let st = store () in
  let _ = Xd_xml.Parser.parse ~store:st ~uri:"d.xml" doc_xml in
  let normalized = norm (parse src) in
  let v_norm =
    Xd_lang.Value.serialize
      (Xd_lang.Eval.eval (Xd_lang.Eval.default_env st) normalized)
  in
  check_string "same result" (run src) v_norm

(* property: normalization preserves evaluation on random person docs *)
let prop_preserves_semantics =
  qtest ~count:60 "normalization preserves semantics" arb_tree (fun t ->
      let src =
        {|let $a := doc("p.xml")//a
          let $b := doc("p.xml")//b
          return (count($a), for $x in $b return if ($x/c) then 1 else 0)|}
      in
      let run_with body =
        let st = store () in
        let _ = Xd_xml.Store.add st (Xd_xml.Doc.of_tree ~uri:"p.xml" (root_of_tree t)) in
        Xd_lang.Value.serialize (Xd_lang.Eval.eval (Xd_lang.Eval.default_env st) body)
      in
      let body = parse src in
      run_with body = run_with (norm body))

(* ---- inlining ------------------------------------------------------------ *)

let test_inline_simple () =
  let q =
    Xd_lang.Parser.parse_query
      {|declare function f($x) { $x + 1 }; string(f(2) + f(3))|}
  in
  let q' = Xd_core.Inline.inline_query q in
  let has_call = ref false in
  Ast.iter
    (fun e ->
      match e.Ast.desc with
      | Ast.Fun_call ("f", _) -> has_call := true
      | _ -> ())
    q'.Ast.body;
  check_bool "calls inlined" (not !has_call);
  (* semantics unchanged *)
  let st = store () in
  check_string "value" "7"
    (Xd_lang.Value.serialize (Xd_lang.Eval.run_query st q'))

let test_inline_recursive_kept () =
  let q =
    Xd_lang.Parser.parse_query
      {|declare function fact($n) { if ($n <= 1) then 1 else $n * fact($n - 1) };
        string(fact(4))|}
  in
  let q' = Xd_core.Inline.inline_query q in
  let has_call = ref false in
  Ast.iter
    (fun e ->
      match e.Ast.desc with
      | Ast.Fun_call ("fact", _) -> has_call := true
      | _ -> ())
    q'.Ast.body;
  check_bool "recursive call kept" !has_call;
  let st = store () in
  check_string "value" "24"
    (Xd_lang.Value.serialize (Xd_lang.Eval.run_query st q'))

let test_inline_no_capture () =
  let q =
    Xd_lang.Parser.parse_query
      {|declare function g($x) { let $y := 10 return $x + $y };
        string(let $y := 1 return g($y))|}
  in
  let q' = Xd_core.Inline.inline_query q in
  let st = store () in
  check_string "no capture" "11"
    (Xd_lang.Value.serialize (Xd_lang.Eval.run_query st q'))

let () =
  Alcotest.run "xd_normalize"
    [
      ( "let-pushing",
        [
          tc "Qc2 -> Qn2" test_q2_normalization;
          tc "dead binding" test_unused_binding_dropped;
          tc "for-body barrier" test_no_push_into_for_body;
          tc "for-in push" test_push_into_for_in_expr;
          tc "if-branch push" test_push_into_if_branch;
          tc "no capture" test_no_capture;
          tc "idempotent" test_idempotent;
          tc "semantics" test_semantics_preserved;
        ] );
      ("properties", [ prop_preserves_semantics ]);
      ( "inlining",
        [
          tc "simple" test_inline_simple;
          tc "recursive kept" test_inline_recursive_kept;
          tc "no capture" test_inline_no_capture;
        ] );
    ]
