(* Failure-injection tests for the XRPC runtime: unknown peers, missing
   documents, nesting limits, evaluation failures crossing the wire, and
   accounting invariants under errors. *)

module M = Xd_xrpc.Message
module V = Xd_lang.Value
open Util

let setup () =
  let net = Xd_xrpc.Network.create () in
  let client = Xd_xrpc.Network.new_peer net "client" in
  let server = Xd_xrpc.Network.new_peer net "srv" in
  (net, client, server)

let exec ?(passing = M.By_fragment) net client q =
  let session = Xd_xrpc.Session.create net client passing in
  Xd_xrpc.Session.execute session (Xd_lang.Parser.parse_query q)

let fails_dynamic f =
  match f () with exception Xd_lang.Env.Dynamic_error _ -> true | _ -> false

let test_unknown_peer () =
  let net, client, _ = setup () in
  check_bool "execute at unknown peer"
    (fails_dynamic (fun () ->
         exec net client {|execute at {"nowhere"} function () { 1 }|}));
  check_bool "doc at unknown peer"
    (fails_dynamic (fun () ->
         exec net client {|doc("xrpc://nowhere/d.xml")|}))

let test_missing_remote_doc () =
  let net, client, _ = setup () in
  check_bool "missing doc via data shipping"
    (fails_dynamic (fun () -> exec net client {|doc("xrpc://srv/ghost.xml")|}));
  check_bool "missing doc inside remote body"
    (fails_dynamic (fun () ->
         exec net client
           {|execute at {"srv"} function () { doc("ghost.xml") }|}))

let test_remote_evaluation_error_propagates () =
  let net, client, _ = setup () in
  check_bool "remote dynamic error surfaces at the caller"
    (fails_dynamic (fun () ->
         exec net client {|execute at {"srv"} function () { $unbound }|}))

let test_nesting_limit () =
  (* a remote body that calls itself on the same host recurses through
     server sessions; the depth guard must stop it *)
  let net, client, server = setup () in
  ignore server;
  check_bool "nesting depth guard"
    (fails_dynamic (fun () ->
         exec net client
           {|declare function ping($n) {
               execute at {"srv"} function ($n := $n) { ping($n + 1) } };
             ping(0)|}))

let test_accounting_on_success () =
  let net, client, server = setup () in
  ignore (Xd_xrpc.Peer.load_xml server ~doc_name:"d.xml" "<r><x>7</x></r>");
  let v = exec net client {|execute at {"srv"} function () { string(doc("d.xml")/child::r/child::x) }|} in
  check_string "result" "7" (V.serialize v);
  let st = net.Xd_xrpc.Network.stats in
  check_int "one exchange" 2 st.Xd_xrpc.Stats.messages;
  check_bool "bytes counted" (st.Xd_xrpc.Stats.message_bytes > 0);
  check_bool "simulated time positive" (st.Xd_xrpc.Stats.network_s > 0.)

let test_empty_results_roundtrip () =
  let net, client, _ = setup () in
  List.iter
    (fun passing ->
      let v = exec ~passing net client {|execute at {"srv"} function () { () }|} in
      check_int (M.passing_to_string passing ^ " empty") 0 (List.length v))
    [ M.By_value; M.By_fragment; M.By_projection ]

let test_mixed_result_roundtrip () =
  let net, client, server = setup () in
  ignore (Xd_xrpc.Peer.load_xml server ~doc_name:"d.xml" "<r><x>7</x></r>");
  List.iter
    (fun passing ->
      let v =
        exec ~passing net client
          {|execute at {"srv"} function ()
            { (1, doc("d.xml")/child::r/child::x, "s", 2.5, true()) }|}
      in
      check_string
        (M.passing_to_string passing ^ " mixed sequence")
        "1<x>7</x>s 2.5 true" (V.serialize v))
    [ M.By_value; M.By_fragment; M.By_projection ]

let test_large_atom_roundtrip () =
  let net, client, _ = setup () in
  let big = String.make 50_000 'z' in
  let v =
    exec net client
      (Printf.sprintf
         {|execute at {"srv"} function ($s := "%s") { string-length($s) }|}
         big)
  in
  check_string "50k-char string survives" "50000" (V.serialize v)

let test_special_chars_in_params () =
  let net, client, _ = setup () in
  List.iter
    (fun passing ->
      let v =
        exec ~passing net client
          {|execute at {"srv"} function ($s := "a<b>&amp;'c""d") { $s }|}
      in
      check_string
        (M.passing_to_string passing ^ " special chars")
        "a<b>&amp;'c\"d" (V.serialize v))
    [ M.By_value; M.By_fragment; M.By_projection ]

let test_fetch_cached_per_session () =
  let net, client, server = setup () in
  ignore (Xd_xrpc.Peer.load_xml server ~doc_name:"d.xml" "<r><x/></r>");
  let session = Xd_xrpc.Session.create net client M.By_fragment in
  let q =
    Xd_lang.Parser.parse_query
      {|(count(doc("xrpc://srv/d.xml")//node()), count(doc("xrpc://srv/d.xml")//node()))|}
  in
  let _ = Xd_xrpc.Session.execute session q in
  check_int "document fetched once per session" 1
    net.Xd_xrpc.Network.stats.Xd_xrpc.Stats.documents_fetched

let () =
  Alcotest.run "xd_xrpc_errors"
    [
      ( "failures",
        [
          tc "unknown peer" test_unknown_peer;
          tc "missing document" test_missing_remote_doc;
          tc "remote error propagates" test_remote_evaluation_error_propagates;
          tc "nesting limit" test_nesting_limit;
        ] );
      ( "roundtrips",
        [
          tc "accounting" test_accounting_on_success;
          tc "empty results" test_empty_results_roundtrip;
          tc "mixed sequences" test_mixed_result_roundtrip;
          tc "large atoms" test_large_atom_roundtrip;
          tc "special characters" test_special_chars_in_params;
          tc "fetch caching" test_fetch_cached_per_session;
        ] );
    ]
