(* Failure-injection tests for the XRPC runtime: unknown peers, missing
   documents, nesting limits, evaluation failures crossing the wire, and
   accounting invariants under errors. *)

module M = Xd_xrpc.Message
module V = Xd_lang.Value
open Util

let setup () =
  let net = Xd_xrpc.Network.create () in
  let client = Xd_xrpc.Network.new_peer net "client" in
  let server = Xd_xrpc.Network.new_peer net "srv" in
  (net, client, server)

let exec ?(passing = M.By_fragment) net client q =
  let session = Xd_xrpc.Session.create net client passing in
  Xd_xrpc.Session.execute session (Xd_lang.Parser.parse_query q)

let fails_dynamic f =
  match f () with exception Xd_lang.Env.Dynamic_error _ -> true | _ -> false

let astr_contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* A server-side error must arrive as a parsed <env:Fault>, re-raised as
   the typed exception — never a leaked native exception. *)
let fails_fault code f =
  match f () with
  | exception M.Xrpc_fault fl -> fl.code = code
  | _ -> false

let test_unknown_peer () =
  let net, client, _ = setup () in
  (* these fail at the *client*, before any message exists: they stay
     plain dynamic errors *)
  check_bool "execute at unknown peer"
    (fails_dynamic (fun () ->
         exec net client {|execute at {"nowhere"} function () { 1 }|}));
  check_bool "doc at unknown peer"
    (fails_dynamic (fun () ->
         exec net client {|doc("xrpc://nowhere/d.xml")|}))

let test_missing_remote_doc () =
  let net, client, _ = setup () in
  check_bool "missing doc via data shipping"
    (fails_dynamic (fun () -> exec net client {|doc("xrpc://srv/ghost.xml")|}));
  check_bool "missing doc inside remote body"
    (fails_fault M.App_dynamic (fun () ->
         exec net client
           {|execute at {"srv"} function () { doc("ghost.xml") }|}))

let test_remote_evaluation_error_propagates () =
  let net, client, _ = setup () in
  check_bool "remote dynamic error surfaces as a typed fault"
    (fails_fault M.App_dynamic (fun () ->
         exec net client {|execute at {"srv"} function () { $unbound }|}))

let test_nesting_limit () =
  (* a remote body that calls itself on the same host recurses through
     server sessions; the depth guard must stop it *)
  let net, client, server = setup () in
  ignore server;
  check_bool "nesting depth guard"
    (fails_fault M.App_dynamic (fun () ->
         exec net client
           {|declare function ping($n) {
               execute at {"srv"} function ($n := $n) { ping($n + 1) } };
             ping(0)|}))

(* The raw response on the wire for a failing body really is a SOAP
   <env:Fault> envelope, with the taxonomy code in env:Subcode and the
   reason under env:Reason/env:Text. *)
let test_fault_envelope_on_wire () =
  let net, client, _ = setup () in
  let record = ref [] in
  let session = Xd_xrpc.Session.create ~record net client M.By_fragment in
  (match
     Xd_xrpc.Session.execute session
       (Xd_lang.Parser.parse_query
          {|execute at {"srv"} function () { $unbound }|})
   with
  | exception M.Xrpc_fault { host; code; reason } ->
    check_string "fault host" "srv" host;
    check_bool "fault code" (code = M.App_dynamic);
    check_bool "fault reason mentions the variable"
      (astr_contains reason "unbound")
  | _ -> Alcotest.fail "expected Xrpc_fault");
  let responses =
    List.filter_map
      (fun r ->
        match r.Xd_xrpc.Session.dir with
        | `Response t -> Some t
        | `Request _ -> None)
      (List.rev !record)
  in
  match responses with
  | [ resp ] ->
    check_bool "wire response is an envelope"
      (astr_contains resp "<env:Envelope");
    check_bool "wire response is a fault" (astr_contains resp "<env:Fault>");
    check_bool "wire response carries the subcode"
      (astr_contains resp "xrpc:app.dynamic-error");
    let root = X.Node.doc_node (X.Parser.parse_doc ~strip_ws:false resp) in
    let find n name =
      List.find_opt
        (fun c -> X.Node.kind c = X.Node.Element && X.Node.name c = name)
        (X.Node.children n)
    in
    (match
       Option.bind
         (Option.bind (find root "env:Envelope") (fun b -> find b "env:Body"))
         (fun b -> find b "env:Fault")
     with
    | Some f ->
      let code, reason = M.parse_fault f in
      check_bool "parsed code" (code = M.App_dynamic);
      check_bool "parsed reason" (astr_contains reason "unbound")
    | None -> Alcotest.fail "no parsable <env:Fault> in the response")
  | rs ->
    Alcotest.failf "expected exactly one recorded response, got %d"
      (List.length rs)

let test_accounting_on_success () =
  let net, client, server = setup () in
  ignore (Xd_xrpc.Peer.load_xml server ~doc_name:"d.xml" "<r><x>7</x></r>");
  let v = exec net client {|execute at {"srv"} function () { string(doc("d.xml")/child::r/child::x) }|} in
  check_string "result" "7" (V.serialize v);
  let st = net.Xd_xrpc.Network.stats in
  check_int "one exchange" 2 (Xd_xrpc.Stats.messages st);
  check_bool "bytes counted" (Xd_xrpc.Stats.message_bytes st > 0);
  check_bool "simulated time positive" (Xd_xrpc.Stats.network_s st > 0.)

let test_empty_results_roundtrip () =
  let net, client, _ = setup () in
  List.iter
    (fun passing ->
      let v = exec ~passing net client {|execute at {"srv"} function () { () }|} in
      check_int (M.passing_to_string passing ^ " empty") 0 (List.length v))
    [ M.By_value; M.By_fragment; M.By_projection ]

let test_mixed_result_roundtrip () =
  let net, client, server = setup () in
  ignore (Xd_xrpc.Peer.load_xml server ~doc_name:"d.xml" "<r><x>7</x></r>");
  List.iter
    (fun passing ->
      let v =
        exec ~passing net client
          {|execute at {"srv"} function ()
            { (1, doc("d.xml")/child::r/child::x, "s", 2.5, true()) }|}
      in
      check_string
        (M.passing_to_string passing ^ " mixed sequence")
        "1<x>7</x>s 2.5 true" (V.serialize v))
    [ M.By_value; M.By_fragment; M.By_projection ]

let test_large_atom_roundtrip () =
  let net, client, _ = setup () in
  let big = String.make 50_000 'z' in
  let v =
    exec net client
      (Printf.sprintf
         {|execute at {"srv"} function ($s := "%s") { string-length($s) }|}
         big)
  in
  check_string "50k-char string survives" "50000" (V.serialize v)

let test_special_chars_in_params () =
  let net, client, _ = setup () in
  List.iter
    (fun passing ->
      let v =
        exec ~passing net client
          {|execute at {"srv"} function ($s := "a<b>&amp;'c""d") { $s }|}
      in
      check_string
        (M.passing_to_string passing ^ " special chars")
        "a<b>&amp;'c\"d" (V.serialize v))
    [ M.By_value; M.By_fragment; M.By_projection ]

let test_fetch_cached_per_session () =
  let net, client, server = setup () in
  ignore (Xd_xrpc.Peer.load_xml server ~doc_name:"d.xml" "<r><x/></r>");
  let session = Xd_xrpc.Session.create net client M.By_fragment in
  let q =
    Xd_lang.Parser.parse_query
      {|(count(doc("xrpc://srv/d.xml")//node()), count(doc("xrpc://srv/d.xml")//node()))|}
  in
  let _ = Xd_xrpc.Session.execute session q in
  check_int "document fetched once per session" 1
    (Xd_xrpc.Stats.documents_fetched net.Xd_xrpc.Network.stats)

let () =
  Alcotest.run "xd_xrpc_errors"
    [
      ( "failures",
        [
          tc "unknown peer" test_unknown_peer;
          tc "missing document" test_missing_remote_doc;
          tc "remote error propagates" test_remote_evaluation_error_propagates;
          tc "nesting limit" test_nesting_limit;
          tc "fault envelope on the wire" test_fault_envelope_on_wire;
        ] );
      ( "roundtrips",
        [
          tc "accounting" test_accounting_on_success;
          tc "empty results" test_empty_results_roundtrip;
          tc "mixed sequences" test_mixed_result_roundtrip;
          tc "large atoms" test_large_atom_roundtrip;
          tc "special characters" test_special_chars_in_params;
          tc "fetch caching" test_fetch_cached_per_session;
        ] );
    ]
