(* The static type & cardinality inference (lib/types): lattice laws,
   the typed builtin-signature registry, inference examples, definite
   type errors, and — the load-bearing part — the QCheck soundness
   harness:

     1. whenever local evaluation of a generated query succeeds, the
        runtime value inhabits the inferred type of the query body (and
        the inference reported no definite errors);
     2. typing-widened decompositions stay observationally equivalent to
        the undistributed reference under every function-shipping
        strategy — and pass the (independently typed) safety verifier,
        so a widening the verifier cannot re-derive shows up as a
        Plan_rejected, not a wrong answer;
     3. the widened d-point set contains the structural one (typing only
        removes restrictions, monotonically).

   Plus the acceptance demo: a recursive function over count() of remote
   data, undecomposable without typing, decomposes by-value with it —
   with the cost model reflecting the win. *)

module Ast = Xd_lang.Ast
module St = Xd_types.Stype
module Infer = Xd_types.Infer
module Fn_sig = Xd_lang.Fn_sig
module S = Xd_core.Strategy
module E = Xd_core.Executor
open Util

let parse = Xd_lang.Parser.parse_query

let body_type q res =
  match Infer.type_of res q.Ast.body with
  | Some t -> t
  | None -> Alcotest.fail "body vertex has no inferred type"

let infer_str src =
  let q = parse src in
  St.to_string (body_type q (Infer.infer_query q))

(* ---- lattice laws ---------------------------------------------------- *)

let some_types =
  [
    St.empty;
    St.top;
    St.make St.all_nodes St.O_star;
    St.make St.all_atoms St.O_one;
    St.make { St.no_kinds with St.k_num = true } St.O_opt;
    St.make { St.no_kinds with St.k_str = true } St.O_plus;
    St.make { St.no_kinds with St.k_elem = true; St.k_text = true } St.O_star;
    St.make { St.no_kinds with St.k_bool = true } St.O_one;
  ]

let lattice_laws () =
  List.iter
    (fun a ->
      check_bool "join idempotent" (St.equal (St.join a a) a);
      check_bool "meet idempotent" (St.equal (St.meet a a) a);
      (* bottom is the empty-sequence type, a real denotation — joining it
         in can only relax the occurrence lower bound, never the kinds *)
      check_bool "join with bottom relaxes lo"
        (St.equal (St.join St.bottom a)
           (St.make a.St.kinds (St.occ_relax_lo a.St.occ)));
      check_bool "top absorbs join" (St.equal (St.join St.top a) St.top);
      check_bool "empty is add unit" (St.equal (St.add St.empty a) a);
      check_bool "a <= a" (St.leq a a);
      check_bool "bottom <= a iff a admits ()"
        (St.leq St.bottom a = not (St.definitely_nonempty a));
      check_bool "a <= top" (St.leq a St.top);
      List.iter
        (fun b ->
          check_bool "join commutes" (St.equal (St.join a b) (St.join b a));
          check_bool "meet commutes" (St.equal (St.meet a b) (St.meet b a));
          check_bool "a <= a|b" (St.leq a (St.join a b));
          (* meet over-approximates value-set intersection; when the
             occurrence ranges are disjoint it collapses to the empty
             type, which is not a subtype of a definitely-nonempty a *)
          check_bool "a&b <= a unless disjoint"
            (St.leq (St.meet a b) a || St.is_empty (St.meet a b)))
        some_types)
    some_types

let normalization () =
  (* zero items <-> no kinds, kept consistent by the smart constructor *)
  check_bool "no kinds -> empty"
    (St.is_empty (St.make St.no_kinds St.O_star));
  check_bool "zero occ -> empty" (St.is_empty (St.make St.all_kinds St.O_zero));
  check_string "empty prints" "empty-sequence()" (St.to_string St.empty);
  check_string "top prints" "item()*" (St.to_string St.top)

let occ_arith () =
  check_bool "one+one = plus" (St.occ_add St.O_one St.O_one = St.O_plus);
  check_bool "opt+opt relaxes" (St.occ_add St.O_opt St.O_opt = St.O_star);
  check_bool "one*star = star" (St.occ_mult St.O_one St.O_star = St.O_star);
  check_bool "zero*star = zero" (St.occ_mult St.O_zero St.O_star = St.O_zero);
  check_bool "star*zero = zero" (St.occ_mult St.O_star St.O_zero = St.O_zero);
  check_bool "plus*plus = plus" (St.occ_mult St.O_plus St.O_plus = St.O_plus);
  check_bool "meet one opt = one" (St.occ_meet St.O_one St.O_opt = Some St.O_one);
  check_bool "meet zero one disjoint" (St.occ_meet St.O_zero St.O_one = None);
  check_bool "relax plus = star" (St.occ_relax_lo St.O_plus = St.O_star)

(* ---- the typed builtin registry -------------------------------------- *)

let registry_bijection () =
  (* exactly one signature per builtin, none extra: the registry cannot
     drift from the evaluator's authoritative name list *)
  let names = List.map fst (Fn_sig.all ()) in
  check_int "one signature per builtin"
    (List.length Xd_lang.Builtin_names.all)
    (List.length names);
  List.iter
    (fun n ->
      check_bool (n ^ " has a signature") (Fn_sig.find n <> None);
      check_bool (n ^ " unique")
        (List.length (List.filter (( = ) n) names) = 1))
    Xd_lang.Builtin_names.all

let arity_from_signatures () =
  let ok = Xd_lang.Static.builtin_arity_ok in
  check_bool "count/1" (ok "count" 1);
  check_bool "count/2 rejected" (not (ok "count" 2));
  check_bool "concat needs 2" (not (ok "concat" 1));
  check_bool "concat/2" (ok "concat" 2);
  check_bool "concat variadic" (ok "concat" 7);
  check_bool "substring/2" (ok "substring" 2);
  check_bool "substring/3" (ok "substring" 3);
  check_bool "substring/4 rejected" (not (ok "substring" 4));
  check_bool "error/0" (ok "error" 0);
  check_bool "error/1" (ok "error" 1);
  check_bool "error/2 rejected" (not (ok "error" 2));
  check_bool "doc/0 rejected" (not (ok "doc" 0));
  check_bool "unknown names accepted" (ok "no-such-builtin" 3)

(* ---- inference examples ---------------------------------------------- *)

let infer_examples () =
  check_string "count is one number" "numeric"
    (infer_str {|count(doc("d.xml")//x)|});
  check_string "string literal" "string" (infer_str {|"hi"|});
  check_string "arith of definite numbers" "numeric"
    (infer_str {|count(doc("d.xml")/a) + sum(data(doc("d.xml")/b))|});
  check_string "arith with a possibly-empty operand" "numeric?"
    (infer_str {|1 + zero-or-one(data(doc("d.xml")/a))|});
  check_string "steps give node sequences" "element()*"
    (infer_str {|doc("d.xml")//x|});
  check_string "doc is one document" "document-node()"
    (infer_str {|doc("d.xml")|});
  check_string "attribute axis" "attribute()*"
    (infer_str {|doc("d.xml")//x/@id|});
  check_string "element constructor" "element()"
    (infer_str {|element a { () }|});
  check_string "if joins branches" "(numeric|string)"
    (infer_str {|if (exists(doc("d.xml")/a)) then 1 else "x"|});
  check_string "for multiplies occurrence" "string*"
    (infer_str {|for $x in doc("d.xml")//a return name($x)|});
  check_string "comparison is one boolean" "boolean" (infer_str {|1 < 2|});
  check_string "empty sequence" "empty-sequence()" (infer_str {|()|});
  check_string "atomization strips nodes" "untyped*"
    (infer_str {|data(doc("d.xml")//a)|});
  check_string "boolean builtins" "boolean"
    (infer_str {|exists(doc("d.xml")//a)|})

let infer_functions () =
  (* recursive functions reach a sound fixpoint *)
  let q =
    parse
      {|declare function local:fib($n) {
          if ($n < 2) then $n else local:fib($n - 1) + local:fib($n - 2)
        };
        local:fib(count(doc("d.xml")//person))|}
  in
  let res = Infer.infer_query q in
  check_bool "no definite errors" (res.Infer.errors = []);
  let t = body_type q res in
  check_bool "fib result is atomic" (St.is_atomic t);
  check_bool "fib result has no node kinds" (not (St.kinds_has_node t.St.kinds))

let infer_execute_at () =
  (* rule 27: the body types under exactly its parameters *)
  let q =
    parse
      {|execute at {"peer1"}
          function ($n := count(doc("d.xml")/a)) { $n + 1 }|}
  in
  let res = Infer.infer_query q in
  check_bool "no errors" (res.Infer.errors = []);
  check_string "remote atomic result" "numeric" (St.to_string (body_type q res))

let definite_errors () =
  let errs src = (Infer.infer_query (parse src)).Infer.errors in
  check_bool "name(3) is a wrong-kind error" (errs {|name(3)|} <> []);
  check_bool "axis over atomic" (errs {|(1 + 2)/child::a|} <> []);
  check_bool "node-cmp over atomic" (errs {|"a" is "b"|} <> []);
  check_bool "union of atomics" (errs {|(1 union 2)|} <> []);
  check_bool "delete of an atomic"
    (errs {|delete node count(doc("d.xml")//a)|} <> []);
  (* but anything short of a proof stays silent *)
  check_bool "possibly-empty atomic is not flagged"
    (errs {|name(zero-or-one(data(doc("d.xml")//a)))|} = []);
  check_bool "node inputs are fine"
    (errs {|name(item-at(doc("d.xml")//a, 1))|} = []);
  check_bool "item() stays unflagged"
    (errs {|for $x in doc("d.xml")//a return root($x)|} = [])

let dead_code_not_flagged () =
  (* an uncalled function's parameters sit at bottom — bottom is not
     definitely non-empty, so nothing inside may be flagged *)
  let q =
    parse
      {|declare function local:dead($x) { $x/child::a };
        count(doc("d.xml")//b)|}
  in
  check_bool "uncalled function not flagged"
    ((Infer.infer_query q).Infer.errors = [])

(* ---- soundness: runtime values inhabit inferred types ----------------- *)

let make_net = Gen_queries.make_net
let arb_query = Gen_queries.arb_query

let prop_local_soundness =
  qtest ~count:400 "sound: local values inhabit inferred types" arb_query
    (fun q ->
      let res = Infer.infer_query q in
      let net, client = make_net () in
      match E.run_local net ~client q with
      | exception _ -> QCheck.assume_fail () (* ill-typed random query *)
      | v ->
        res.Infer.errors = []
        && (match Infer.type_of res q.Ast.body with
           | None -> false
           | Some t -> St.value_inhabits v t))

let prop_distributed_soundness =
  qtest ~count:150 "sound: distributed values inhabit inferred types"
    arb_query (fun q ->
      let res = Infer.infer_query q in
      let net, client = make_net () in
      match E.run_local net ~client q with
      | exception _ -> QCheck.assume_fail ()
      | _ -> (
        let net2, client2 = make_net () in
        let r = E.run net2 ~client:client2 S.By_value q in
        match Infer.type_of res q.Ast.body with
        | None -> false
        | Some t -> St.value_inhabits r.E.value t))

let prop_widened_equivalence =
  (* typed decomposition + typed (independently derived) verification:
     every function-shipping strategy still reproduces the reference
     answer, and no plan the widened decomposer emits is rejected by the
     verifier (E.run gates on it — a Plan_rejected fails the property) *)
  qtest ~count:300 "widened decompositions = local semantics" arb_query
    (fun q ->
      let net, client = make_net () in
      match E.run_local net ~client q with
      | exception _ -> QCheck.assume_fail ()
      | reference ->
        List.for_all
          (fun strat ->
            let net2, client2 = make_net () in
            let r = E.run net2 ~client:client2 strat q in
            Xd_lang.Value.deep_equal r.E.value reference)
          [ S.By_value; S.By_fragment; S.By_projection ])

let prop_dpoints_monotone =
  (* typing only removes restrictions: I(G) with proofs contains I(G)
     without. (The *inserted* set need not be monotone — a newly valid
     higher point takes over its subtree — so the superset claim is made
     on d-points, where it is exact.) *)
  qtest ~count:150 "typing widens d-points monotonically" arb_query (fun q ->
      let q =
        Xd_core.Normalize.normalize_query (Xd_core.Inline.inline_query q)
      in
      let g = Xd_dgraph.Dgraph.build q.Ast.body in
      let atomic = Infer.atomic_fact (Infer.infer_query q) in
      let ids ctx =
        List.map (fun e -> e.Ast.id) (Xd_core.Conditions.d_points ctx)
      in
      let plain = ids (Xd_core.Conditions.make_ctx S.By_value g) in
      let widened = ids (Xd_core.Conditions.make_ctx ~atomic S.By_value g) in
      List.for_all (fun x -> List.mem x widened) plain)

(* ---- the acceptance demo: typing unlocks a decomposition -------------- *)

let fib_src =
  {|declare function local:fib($n) {
      if ($n < 2) then $n else local:fib($n - 1) + local:fib($n - 2)
    };
    local:fib(count(doc("xrpc://peer1/people.xml")//person) idiv 2)|}

(* a document big enough that fetching it costs more than the ~400B
   per-call overhead of a pushed execute-at — the regime the widening
   is for (tiny documents are genuinely cheaper to ship) *)
let fib_net () =
  let net = Xd_xrpc.Network.create () in
  let client = Xd_xrpc.Network.new_peer net "client" in
  let p1 = Xd_xrpc.Network.new_peer net "peer1" in
  ignore
    (Xd_xrpc.Peer.load_tree p1 ~doc_name:"people.xml"
       (Xd_xmark.Generator.people_tree ~seed:7 ~persons:16));
  (net, client)

let widening_unlocks_decomposition () =
  let q = parse fib_src in
  let with_typing = Xd_core.Decompose.decompose ~typing:true S.By_value q in
  let without = Xd_core.Decompose.decompose ~typing:false S.By_value q in
  (* the recursive call uses count()'s result, so the structural
     conditions reject every point; the atomic proof readmits it *)
  check_bool "typing pushes the count"
    (with_typing.Xd_core.Decompose.inserted <> []);
  check_int "no push without typing" 0
    (List.length without.Xd_core.Decompose.inserted);
  (* both answers, and the undistributed reference, agree *)
  let net, client = fib_net () in
  let reference = E.run_local net ~client q in
  let net2, client2 = fib_net () in
  let r = E.run_plan net2 ~client:client2 with_typing in
  check_bool "widened plan = reference"
    (Xd_lang.Value.deep_equal r.E.value reference);
  (* and the cost model knows it: a bounded atomic response beats
     fetching the document *)
  let net3, _ = fib_net () in
  let cost p = Xd_core.Cost.total (Xd_core.Cost.estimate net3 p) in
  check_bool "estimate reflects the win" (cost with_typing < cost without)

let auto_strategy_flips () =
  (* under --no-typing the cost model sees no pushable point and falls
     back to data shipping; with typing, by-value wins outright *)
  let q = parse fib_src in
  let net, _ = fib_net () in
  let with_typing = Xd_core.Cost.choose ~typing:true net q in
  let without = Xd_core.Cost.choose ~typing:false net q in
  check_string "typed choice" "pass-by-value" (S.to_string with_typing);
  check_string "untyped choice" "data-shipping" (S.to_string without)

let constant_host_folds () =
  (* satellite: fn:concat of literals is a constant host — the plan gets
     full placement + host-consistency verification instead of the
     unresolved-host warning path *)
  let q =
    parse
      {|execute at {concat("pe", "erA")}
          function ($c := count(doc("xrpc://peerA/students.xml")//person))
          { $c }|}
  in
  let plan = Xd_core.Decompose.plan_of_query S.By_value q in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "host folded to a literal"
    (contains
       (Xd_lang.Pp.query_to_string plan.Xd_core.Decompose.query)
       {|execute at {"peerA"}|});
  check_bool "const_string folds concat trees"
    (Xd_core.Constfold.const_string
       (Ast.fun_call "concat"
          [ Ast.str "pe"; Ast.fun_call "concat" [ Ast.str "er"; Ast.str "A" ] ])
    = Some "peerA");
  check_bool "non-constant hosts stay"
    (Xd_core.Constfold.const_string (Ast.var "h") = None);
  let net, client = make_net () in
  let r = E.run_plan net ~client plan in
  check_string "constant-host plan runs" "4"
    (Xd_lang.Value.serialize r.E.value)

let () =
  Alcotest.run "xd_types"
    [
      ( "lattice",
        [
          tc "laws" lattice_laws;
          tc "normalization" normalization;
          tc "occurrence arithmetic" occ_arith;
        ] );
      ( "registry",
        [
          tc "bijection with Builtin_names.all" registry_bijection;
          tc "arity derived from signatures" arity_from_signatures;
        ] );
      ( "infer",
        [
          tc "examples" infer_examples;
          tc "recursive fixpoint" infer_functions;
          tc "execute-at closure" infer_execute_at;
          tc "definite errors" definite_errors;
          tc "dead code unflagged" dead_code_not_flagged;
        ] );
      ( "soundness",
        [
          prop_local_soundness;
          prop_distributed_soundness;
          prop_widened_equivalence;
          prop_dpoints_monotone;
        ] );
      ( "widening",
        [
          tc "fib/count decomposes only with typing"
            widening_unlocks_decomposition;
          tc "auto strategy flips" auto_strategy_flips;
          tc "constant hosts fold" constant_host_folds;
        ] );
    ]
