(* Tests for the XQUF subset (the paper's Section IX future work):
   local update semantics (pending update list, snapshot application) and
   the distribution restriction — an update executes at the single peer
   owning its target, or is rejected. *)

module X = Xd_xml
module S = Xd_core.Strategy
module E = Xd_core.Executor
module V = Xd_lang.Value
open Util

(* run an updating query against a store, return the (re-resolved) doc *)
let run_update doc_xml query =
  let st = store () in
  let _ = X.Parser.parse ~store:st ~uri:"d.xml" doc_xml in
  let _ = Xd_lang.Eval.run st query in
  Option.get (X.Store.find_uri st "d.xml")

let doc_str d = X.Serializer.doc d

(* ---- local semantics -------------------------------------------------- *)

let test_insert_into () =
  let d = run_update "<r><a/></r>" {|insert node <b>x</b> into doc("d.xml")/r/a|} in
  check_string "appended as last child" "<r><a><b>x</b></a></r>" (doc_str d)

let test_insert_before_after () =
  let d =
    run_update "<r><a/><c/></r>"
      {|(insert node <b0/> before doc("d.xml")/r/c,
         insert node <b1/> after doc("d.xml")/r/c)|}
  in
  check_string "before and after" "<r><a/><b0/><c/><b1/></r>" (doc_str d)

let test_delete () =
  let d =
    run_update "<r><a/><b/><a/></r>" {|delete node doc("d.xml")/r/a|}
  in
  check_string "all targets deleted" "<r><b/></r>" (doc_str d)

let test_delete_attribute () =
  let d =
    run_update {|<r><a k="1" m="2"/></r>|} {|delete node doc("d.xml")/r/a/@k|}
  in
  check_string "attribute deleted" {|<r><a m="2"/></r>|} (doc_str d)

let test_replace_value () =
  let d =
    run_update "<r><a>old</a></r>"
      {|replace value of node doc("d.xml")/r/a with "new"|}
  in
  check_string "element value replaced" "<r><a>new</a></r>" (doc_str d)

let test_replace_attr_value () =
  let d =
    run_update {|<r><a k="1"/></r>|}
      {|replace value of node doc("d.xml")/r/a/@k with 42|}
  in
  check_string "attribute value replaced" {|<r><a k="42"/></r>|} (doc_str d)

let test_rename () =
  let d =
    run_update "<r><old><x/></old></r>"
      {|rename node doc("d.xml")/r/old as "new"|}
  in
  check_string "element renamed, children kept" "<r><new><x/></new></r>"
    (doc_str d)

let test_insert_copies_content () =
  (* inserted nodes are copies: mutating the source later is irrelevant,
     and the inserted subtree has fresh identity *)
  let st = store () in
  let _ = X.Parser.parse ~store:st ~uri:"d.xml" "<r><src><k/></src><dst/></r>" in
  let v =
    Xd_lang.Eval.run st
      {|(insert node doc("d.xml")/r/src into doc("d.xml")/r/dst,
         count(doc("d.xml")/r/dst/src))|}
  in
  (* snapshot semantics: the count sees the PRE-update document *)
  check_string "result is pre-update" "0" (V.serialize v);
  let d = Option.get (X.Store.find_uri st "d.xml") in
  check_string "post-update content" "<r><src><k/></src><dst><src><k/></src></dst></r>"
    (doc_str d)

let test_snapshot_semantics () =
  let st = store () in
  let _ = X.Parser.parse ~store:st ~uri:"d.xml" "<r><a>1</a></r>" in
  let v =
    Xd_lang.Eval.run st
      {|(replace value of node doc("d.xml")/r/a with "2", string(doc("d.xml")/r/a))|}
  in
  check_string "query sees old value" "1" (V.serialize v);
  check_string "store sees new value" "2"
    (Xd_lang.Value.serialize (Xd_lang.Eval.run st {|string(doc("d.xml")/r/a)|}))

let test_multiple_updates_one_doc () =
  let d =
    run_update "<r><a>1</a><b>2</b><c/></r>"
      {|(replace value of node doc("d.xml")/r/a with "x",
         delete node doc("d.xml")/r/b,
         insert node <d/> into doc("d.xml")/r,
         rename node doc("d.xml")/r/c as "cc")|}
  in
  check_string "all applied" "<r><a>x</a><cc/><d/></r>" (doc_str d)

let test_updated_doc_well_formed () =
  (* the rebuilt document has consistent parent/size arrays *)
  let d =
    run_update "<r><a><b/><c/></a><d/></r>"
      {|(insert node <n><m/></n> into doc("d.xml")/r/a, delete node doc("d.xml")/r/d)|}
  in
  for i = 1 to X.Doc.n_nodes d - 1 do
    let p = d.X.Doc.parent.(i) in
    check_bool "parent valid" (p >= 0 && p < i);
    check_bool "extent valid" (i + d.X.Doc.size.(i) <= p + d.X.Doc.size.(p))
  done;
  (* and queries over it still work *)
  let st = store () in
  let _ = X.Store.add st (X.Parser.parse_doc ~uri:"x" (doc_str d)) in
  ()

let test_readonly_context_rejects () =
  let st = store () in
  let _ = X.Parser.parse ~store:st ~uri:"d.xml" "<r/>" in
  let q = Xd_lang.Parser.parse_query {|delete node doc("d.xml")/r|} in
  let env = Xd_lang.Eval.default_env st in
  check_bool "no PUL, updating expression raises"
    (match Xd_lang.Eval.eval env q.Xd_lang.Ast.body with
    | exception Xd_lang.Env.Dynamic_error _ -> true
    | _ -> false)

let test_update_parses_and_prints () =
  let roundtrip src =
    let e = Xd_lang.Parser.parse_expr_string src in
    let s1 = Xd_lang.Pp.expr_to_string e in
    let s2 = Xd_lang.Pp.expr_to_string (Xd_lang.Parser.parse_expr_string s1) in
    check_string ("pp fixpoint: " ^ src) s1 s2
  in
  List.iter roundtrip
    [
      {|insert node <a/> into doc("d.xml")/r|};
      {|insert node <a/> before doc("d.xml")/r/x|};
      {|delete node doc("d.xml")/r/x|};
      {|replace value of node doc("d.xml")/r/x with "v"|};
      {|rename node doc("d.xml")/r/x as "y"|};
    ]

(* ---- distribution ------------------------------------------------------- *)

let make_net () =
  let net = Xd_xrpc.Network.create () in
  let client = Xd_xrpc.Network.new_peer net "client" in
  let a = Xd_xrpc.Network.new_peer net "peerA" in
  let b = Xd_xrpc.Network.new_peer net "peerB" in
  ignore
    (Xd_xrpc.Peer.load_xml a ~doc_name:"inv.xml"
       {|<inventory><item sku="s1"><stock>5</stock></item><item sku="s2"><stock>0</stock></item></inventory>|});
  ignore (Xd_xrpc.Peer.load_xml b ~doc_name:"log.xml" {|<log/>|});
  (net, client, a, b)

let test_remote_update_pushed () =
  let net, client, a, _ = make_net () in
  let q =
    Xd_lang.Parser.parse_query
      {|for $i in doc("xrpc://peerA/inv.xml")/child::inventory/child::item
        return if ($i/child::stock = 0) then delete node $i else ()|}
  in
  let plan = Xd_core.Decompose.decompose S.By_fragment q in
  (* the whole loop is wrapped in an execute-at at peerA *)
  let pushed = ref [] in
  Xd_lang.Ast.iter
    (fun e ->
      match e.Xd_lang.Ast.desc with
      | Xd_lang.Ast.Execute_at x -> (
        match x.Xd_lang.Ast.host.Xd_lang.Ast.desc with
        | Xd_lang.Ast.Literal (Xd_lang.Ast.A_string h) -> pushed := h :: !pushed
        | _ -> ())
      | _ -> ())
    plan.Xd_core.Decompose.query.Xd_lang.Ast.body;
  check_bool "update pushed to peerA" (List.mem "peerA" !pushed);
  (* and executing it really mutates peerA's document *)
  let _ = E.run net ~client S.By_fragment q in
  let d = Option.get (Xd_xrpc.Peer.find_doc a "inv.xml") in
  check_string "out-of-stock item deleted at the source peer"
    {|<inventory><item sku="s1"><stock>5</stock></item></inventory>|}
    (X.Serializer.doc d)

let test_update_entangled_rejected () =
  (* a single update whose target mixes two hosts: no single affected peer *)
  let net, _, _, _ = make_net () in
  ignore net;
  let q =
    Xd_lang.Parser.parse_query
      {|delete node (doc("xrpc://peerA/inv.xml")/child::inventory/child::item
                     union doc("xrpc://peerB/log.xml")/child::log)[1]|}
  in
  check_bool "placement rejected"
    (match Xd_core.Decompose.decompose S.By_fragment q with
    | exception Xd_core.Decompose.Update_placement _ -> true
    | _ -> false)

let test_data_shipping_update_guard () =
  (* under pure data shipping the update would hit a fetched copy: the
     session must refuse rather than silently diverge *)
  let net, client, a, _ = make_net () in
  let q =
    Xd_lang.Parser.parse_query
      {|delete node (doc("xrpc://peerA/inv.xml")/child::inventory/child::item)[2]|}
  in
  check_bool "fetched-copy update refused"
    (match E.run net ~client S.Data_shipping q with
    | exception Xd_lang.Env.Dynamic_error _ -> true
    | _ -> false);
  (* the source document is untouched *)
  let d = Option.get (Xd_xrpc.Peer.find_doc a "inv.xml") in
  check_int "still two items" 2
    (List.length
       (List.filter
          (fun n -> X.Node.name n = "item")
          (X.Node.descendants (X.Node.doc_node d))))

let test_remote_update_with_local_values () =
  (* atomic values may cross the wire into an update (replace with) —
     only node targets are pinned *)
  let net, client, a, _ = make_net () in
  let q =
    Xd_lang.Parser.parse_query
      {|for $i in doc("xrpc://peerA/inv.xml")/child::inventory/child::item
        return if ($i/attribute::sku = "s1")
               then replace value of node $i/child::stock with 99 else ()|}
  in
  let _ = E.run net ~client S.By_projection q in
  let d = Option.get (Xd_xrpc.Peer.find_doc a "inv.xml") in
  check_bool "replacement applied at the peer"
    (let s = X.Serializer.doc d in
     let sub = "<stock>99</stock>" in
     let n = String.length sub in
     let found = ref false in
     for i = 0 to String.length s - n do
       if String.sub s i n = sub then found := true
     done;
     !found)

let test_server_refuses_update_on_shipped_param () =
  (* a hand-written remote body that tries to update its own (shipped)
     parameter: the server's foreign-copy guard must refuse *)
  let net, client, a, _ = make_net () in
  ignore a;
  ignore (Xd_xrpc.Peer.load_xml client ~doc_name:"mine.xml" "<r><x/></r>");
  let session = Xd_xrpc.Session.create net client Xd_xrpc.Message.By_fragment in
  let q =
    Xd_lang.Parser.parse_query
      {|let $n := doc("mine.xml")/child::r/child::x
        return execute at {"peerA"} function ($p := $n) { delete node $p }|}
  in
  check_bool "server refuses to update a shipped parameter"
    (* the server-side refusal (a dynamic error) now travels back as a
       typed, non-retryable application fault *)
    (match Xd_xrpc.Session.execute session q with
    | exception
        Xd_xrpc.Message.Xrpc_fault
          { code = Xd_xrpc.Message.App_dynamic; _ } ->
      true
    | _ -> false);
  (* the client's original document is untouched *)
  let d = Option.get (Xd_xrpc.Peer.find_doc client "mine.xml") in
  check_string "original intact" "<r><x/></r>" (X.Serializer.doc d)

let test_local_update_stays_local () =
  let net, client, _, _ = make_net () in
  ignore
    (Xd_xrpc.Peer.load_xml client ~doc_name:"local.xml" "<notes><n/></notes>");
  let q =
    Xd_lang.Parser.parse_query
      {|insert node <n2/> into doc("local.xml")/child::notes|}
  in
  let r = E.run net ~client S.By_fragment q in
  check_int "no messages for a local update" 0 r.E.timing.E.messages;
  let d = Option.get (Xd_xrpc.Peer.find_doc client "local.xml") in
  check_string "applied locally" "<notes><n/><n2/></notes>" (X.Serializer.doc d)

let () =
  Alcotest.run "xd_updates"
    [
      ( "local",
        [
          tc "insert into" test_insert_into;
          tc "insert before/after" test_insert_before_after;
          tc "delete" test_delete;
          tc "delete attribute" test_delete_attribute;
          tc "replace value" test_replace_value;
          tc "replace attribute value" test_replace_attr_value;
          tc "rename" test_rename;
          tc "insert copies" test_insert_copies_content;
          tc "snapshot semantics" test_snapshot_semantics;
          tc "multiple updates" test_multiple_updates_one_doc;
          tc "well-formed result" test_updated_doc_well_formed;
          tc "read-only context" test_readonly_context_rejects;
          tc "syntax round-trip" test_update_parses_and_prints;
        ] );
      ( "distribution",
        [
          tc "pushed to owner" test_remote_update_pushed;
          tc "entangled rejected" test_update_entangled_rejected;
          tc "data-shipping guard" test_data_shipping_update_guard;
          tc "values cross, targets don't" test_remote_update_with_local_values;
          tc "local stays local" test_local_update_stays_local;
          tc "server refuses shipped-param update"
            test_server_refuses_update_on_shipped_param;
        ] );
    ]
