(* Tests for the lexer, parser and pretty-printer: XCore desugarings,
   contextual keywords, direct constructors, round-trips. *)

module Ast = Xd_lang.Ast
open Util

let parse = Xd_lang.Parser.parse_expr_string
let pp = Xd_lang.Pp.expr_to_string

(* parse → print → parse → print must be a fixpoint *)
let roundtrips src =
  let e1 = parse src in
  let s1 = pp e1 in
  let e2 = parse s1 in
  let s2 = pp e2 in
  check_string ("round-trip of " ^ src) s1 s2

let rec count_desc pred (e : Ast.expr) =
  (if pred e then 1 else 0)
  + List.fold_left (fun acc c -> acc + count_desc pred c) 0 (Ast.children e)

let shape pred src = count_desc pred (parse src)

(* ---- lexer ------------------------------------------------------------- *)

let test_comments () =
  check_string "xquery comments" "3" (pp (parse "(: hi (: nested :) :) 3"));
  check_string "comment between tokens" "(1 + 2)"
    (pp (parse "1 (: plus :) + 2"))

let test_string_literals () =
  check_string "double quotes" "\"a\"" (pp (parse {|"a"|}));
  check_string "escaped quote" "\"a\"\"b\"" (pp (parse {|"a""b"|}));
  check_string "single quotes" "\"x\"" (pp (parse "'x'"));
  check_string "both quote kinds nest" "\"it's\"" (pp (parse {|"it's"|}))

let test_numbers () =
  check_string "int" "42" (pp (parse "42"));
  check_string "float" "2.5" (pp (parse "2.5"));
  check_string "exponent" "150" (pp (parse "1.5e2"));
  check_string "negative" "(0 - 5)" (pp (parse "-5"))

let test_names_with_dashes () =
  (* '-' is a name character: subtraction needs spaces *)
  let e = parse "$a-b" in
  (match e.Ast.desc with
  | Ast.Var_ref "a-b" -> ()
  | _ -> Alcotest.fail "expected variable a-b");
  let e2 = parse "$a - $b" in
  match e2.Ast.desc with
  | Ast.Arith (Ast.Sub, _, _) -> ()
  | _ -> Alcotest.fail "expected subtraction"

(* ---- precedence ----------------------------------------------------------- *)

let test_precedence () =
  check_string "mul before add" "(1 + (2 * 3))" (pp (parse "1 + 2 * 3"));
  check_string "comparison lowest" "((1 + 2) = 3)" (pp (parse "1 + 2 = 3"));
  check_string "and before or"
    "((1 = 1) or ((2 = 2) and (3 = 3)))"
    (pp (parse "1 = 1 or 2 = 2 and 3 = 3"));
  check_string "union binds tighter than comparison"
    "(($a union $b) = $c)"
    (pp (parse "$a union $b = $c"));
  check_string "parens respected" "((1 + 2) * 3)" (pp (parse "(1 + 2) * 3"))

(* ---- path desugaring --------------------------------------------------------- *)

let test_abbreviations () =
  (* // expands to descendant-or-self::node()/ *)
  check_int "// expands" 1
    (shape
       (fun e ->
         match e.Ast.desc with
         | Ast.Step (_, Ast.Descendant_or_self, Ast.Kind_node) -> true
         | _ -> false)
       {|doc("d.xml")//a|});
  (* @ is the attribute axis *)
  check_int "@ expands" 1
    (shape
       (fun e ->
         match e.Ast.desc with
         | Ast.Step (_, Ast.Attribute, Ast.Name_test "id") -> true
         | _ -> false)
       {|doc("d.xml")/a/@id|});
  (* bare names are child steps *)
  check_int "bare name steps" 2
    (shape
       (fun e ->
         match e.Ast.desc with
         | Ast.Step (_, Ast.Child, Ast.Name_test _) -> true
         | _ -> false)
       {|doc("d.xml")/a/b|})

let test_predicates_desugar () =
  (* boolean predicate becomes for/if *)
  let src = {|doc("d.xml")/a[b = 1]|} in
  check_int "predicate for" 1
    (shape (fun e -> match e.Ast.desc with Ast.For _ -> true | _ -> false) src);
  check_int "predicate if" 1
    (shape (fun e -> match e.Ast.desc with Ast.If _ -> true | _ -> false) src);
  (* integer predicate becomes item-at *)
  check_int "positional item-at" 1
    (shape
       (fun e ->
         match e.Ast.desc with
         | Ast.Fun_call ("item-at", _) -> true
         | _ -> false)
       {|doc("d.xml")/a[3]|})

let test_context_in_predicates () =
  (* '.' and relative paths inside predicates refer to the context item *)
  let e = parse {|doc("d.xml")/a[. = "x"]|} in
  let has_var_cmp = ref false in
  Ast.iter
    (fun n ->
      match n.Ast.desc with
      | Ast.Value_cmp (_, { Ast.desc = Ast.Var_ref _; _ }, _) ->
        has_var_cmp := true
      | _ -> ())
    e;
  check_bool "dot resolves to the context variable" !has_var_cmp;
  (* a relative path at top level has no context *)
  check_bool "relative path without context rejected"
    (match parse "a/b" with
    | exception Xd_lang.Parser.Error _ -> true
    | _ -> false)

let test_where_desugar () =
  let src = {|for $x in (1, 2) where $x = 1 return $x|} in
  check_int "where becomes if" 1
    (shape (fun e -> match e.Ast.desc with Ast.If _ -> true | _ -> false) src)

let test_multi_var_for () =
  let src = {|for $x in (1, 2), $y in (3, 4) return $x + $y|} in
  check_int "two nested fors" 2
    (shape (fun e -> match e.Ast.desc with Ast.For _ -> true | _ -> false) src)

let test_flwor_let_chain () =
  let src = {|let $a := 1, $b := 2 let $c := 3 return $a + $b + $c|} in
  check_int "three lets" 3
    (shape (fun e -> match e.Ast.desc with Ast.Let _ -> true | _ -> false) src)

(* ---- kind tests vs constructors vs function calls ---------------------------- *)

let test_kind_test_vs_constructor () =
  (* element(foo) after a slash is a kind test *)
  check_int "kind test" 1
    (shape
       (fun e ->
         match e.Ast.desc with
         | Ast.Step (_, _, Ast.Kind_element (Some "foo")) -> true
         | _ -> false)
       {|doc("d.xml")/element(foo)|});
  (* element foo { } is a constructor *)
  check_int "constructor" 1
    (shape
       (fun e ->
         match e.Ast.desc with Ast.Elem_constr _ -> true | _ -> false)
       {|element foo {"x"}|});
  (* text {..} constructor vs text() kind test *)
  check_int "text constructor" 1
    (shape
       (fun e -> match e.Ast.desc with Ast.Text_constr _ -> true | _ -> false)
       {|text {"x"}|});
  check_int "text kind test" 1
    (shape
       (fun e ->
         match e.Ast.desc with
         | Ast.Step (_, _, Ast.Kind_text) -> true
         | _ -> false)
       {|doc("d.xml")/a/text()|})

let test_keywords_not_reserved () =
  (* 'if', 'for' etc. are usable as element names in paths *)
  check_int "if as name test" 1
    (shape
       (fun e ->
         match e.Ast.desc with
         | Ast.Step (_, Ast.Child, Ast.Name_test "if") -> true
         | _ -> false)
       {|doc("d.xml")/if|});
  check_int "return as name" 1
    (shape
       (fun e ->
         match e.Ast.desc with
         | Ast.Step (_, Ast.Child, Ast.Name_test "return") -> true
         | _ -> false)
       {|doc("d.xml")/return|})

(* ---- direct constructors ------------------------------------------------------ *)

let test_direct_basic () =
  roundtrips {|<a/>|};
  roundtrips {|<a x="1" y="2"/>|};
  roundtrips {|<a><b>text</b><c/></a>|}

let test_direct_splices () =
  let st = store () in
  let run src = Xd_lang.Value.serialize (Xd_lang.Eval.run st src) in
  check_string "content splice" "<a><x>1</x></a>" (run {|<a><x>{1}</x></a>|});
  check_string "double braces escape" "<a>{}</a>" (run {|<a>{{}}</a>|});
  check_string "attribute splice" "<a v=\"3\"/>" (run {|<a v="{1 + 2}"/>|});
  check_string "mixed attr" "<a v=\"x3y\"/>" (run {|<a v="x{3}y"/>|});
  check_string "entities in constructor" "<a>&lt;&amp;</a>"
    (run {|<a>&lt;&amp;</a>|});
  check_string "boundary whitespace stripped" "<a><b/></a>"
    (run "<a>\n  <b/>\n</a>");
  check_string "nested splice" "<a><b><c>7</c></b></a>"
    (run {|<a><b>{<c>{7}</c>}</b></a>|})

let test_direct_vs_comparison () =
  (* '<' as comparison where a constructor cannot start *)
  check_string "less-than" "(1 < 2)" (pp (parse "1 < 2"));
  let st = store () in
  check_string "constructor at operand start" "<a/>"
    (Xd_lang.Value.serialize (Xd_lang.Eval.run st "<a/>"))

(* ---- execute at ------------------------------------------------------------------ *)

let test_execute_at_forms () =
  (* anonymous-function form (rule 27) *)
  let e = parse {|execute at {"h"} function ($p := 1, $q := 2) { $p + $q }|} in
  (match e.Ast.desc with
  | Ast.Execute_at x ->
    check_slist "param names" [ "p"; "q" ] (List.map fst x.Ast.params)
  | _ -> Alcotest.fail "expected execute-at");
  (* call form desugars to fresh parameters *)
  let e2 = parse {|execute at {"h"} { f(1, 2) }|} in
  match e2.Ast.desc with
  | Ast.Execute_at x ->
    check_int "two fresh params" 2 (List.length x.Ast.params);
    (match x.Ast.body.Ast.desc with
    | Ast.Fun_call ("f", [ _; _ ]) -> ()
    | _ -> Alcotest.fail "body should call f")
  | _ -> Alcotest.fail "expected execute-at"

(* ---- prolog ------------------------------------------------------------------------ *)

let test_function_declarations () =
  let q =
    Xd_lang.Parser.parse_query
      {|declare function f($x as xs:integer, $y) as xs:integer { $x };
        declare function g() as node()* { () };
        f(1, 2)|}
  in
  check_int "two functions" 2 (List.length q.Ast.funcs);
  let f = List.hd q.Ast.funcs in
  check_string "name" "f" f.Ast.f_name;
  check_int "arity" 2 (List.length f.Ast.f_params);
  check_bool "typed first param"
    (match f.Ast.f_params with
    | (_, Some (Ast.St_items (Ast.It_atomic "xs:integer", Ast.Occ_one))) :: _ ->
      true
    | _ -> false);
  let g = List.nth q.Ast.funcs 1 in
  check_bool "node()* return"
    (g.Ast.f_return = Some (Ast.St_items (Ast.It_node, Ast.Occ_star)))

(* ---- big round-trips ------------------------------------------------------------------ *)

let roundtrip_corpus =
  [
    {|for $x in doc("d.xml")/a/b where $x/@k = "v" return <r>{$x}</r>|};
    {|let $a := (1, 2.5, "three") return count($a)|};
    {|typeswitch (doc("d.xml")/x) case $e as element() return 1 default $d return 2|};
    {|for $x in doc("d.xml")//p order by $x/age descending return $x|};
    {|doc("d.xml")//a[b = 1][2]/parent::c/following-sibling::d|};
    {|execute at {"peer"} function ($p := doc("d.xml")//x) { $p/child::y }|};
    {|element out { attribute n { count(doc("d.xml")//z) }, text { "done" } }|};
    {|(doc("a.xml")//x union doc("b.xml")//y) except doc("c.xml")//z|};
    {|if (doc("d.xml")//a) then doc("d.xml")//b else ()|};
    {|1 + 2 * 3 - 4 div 5 idiv 6 mod 7|};
  ]

let test_roundtrip_corpus () = List.iter roundtrips roundtrip_corpus

(* random AST round-trip: print, parse, print -> fixpoint *)
let arb_expr =
  let open QCheck.Gen in
  let atom =
    oneof
      [
        map Ast.int (int_bound 100);
        map Ast.str (oneofl [ "a"; "b c"; "x\"y"; "" ]);
      ]
  in
  let rec gen n =
    if n <= 0 then atom
    else
      frequency
        [
          (1, atom);
          ( 2,
            map2
              (fun a b -> Ast.mk (Ast.Arith (Ast.Add, a, b)))
              (gen (n / 2)) (gen (n / 2)) );
          ( 2,
            map2
              (fun a b -> Ast.mk (Ast.Seq [ a; b ]))
              (gen (n / 2)) (gen (n / 2)) );
          ( 2,
            map2
              (fun a b -> Ast.mk (Ast.Let ("v", a, b)))
              (gen (n / 2)) (gen (n / 2)) );
          ( 1,
            map3
              (fun a b c -> Ast.mk (Ast.If (a, b, c)))
              (gen (n / 3)) (gen (n / 3)) (gen (n / 3)) );
          ( 1,
            map
              (fun a -> Ast.mk (Ast.Elem_constr (Ast.Fixed_name "e", a)))
              (gen (n / 2)) );
          (1, map (fun a -> Ast.fun_call "count" [ a ]) (gen (n / 2)));
        ]
  in
  QCheck.make
    ~print:(fun e -> pp e)
    (sized (fun n -> gen (min n 12)))

let prop_pp_parse_fixpoint =
  qtest ~count:200 "pp ∘ parse ∘ pp is a fixpoint on random ASTs" arb_expr
    (fun e ->
      let s1 = pp e in
      let s2 = pp (parse s1) in
      s1 = s2)

let () =
  Alcotest.run "xd_parser"
    [
      ( "lexer",
        [
          tc "comments" test_comments;
          tc "strings" test_string_literals;
          tc "numbers" test_numbers;
          tc "dashed names" test_names_with_dashes;
        ] );
      ("precedence", [ tc "operators" test_precedence ]);
      ( "desugaring",
        [
          tc "abbreviations" test_abbreviations;
          tc "predicates" test_predicates_desugar;
          tc "predicate context" test_context_in_predicates;
          tc "where" test_where_desugar;
          tc "multi-var for" test_multi_var_for;
          tc "let chains" test_flwor_let_chain;
        ] );
      ( "disambiguation",
        [
          tc "kind tests vs constructors" test_kind_test_vs_constructor;
          tc "keywords not reserved" test_keywords_not_reserved;
          tc "lt vs constructor" test_direct_vs_comparison;
        ] );
      ( "direct constructors",
        [ tc "basic" test_direct_basic; tc "splices" test_direct_splices ] );
      ("execute-at", [ tc "forms" test_execute_at_forms ]);
      ("prolog", [ tc "declarations" test_function_declarations ]);
      ( "round-trips",
        [ tc "corpus" test_roundtrip_corpus; prop_pp_parse_fixpoint ] );
    ]
