(* Dynamic topology: the peer catalog against an independent model oracle,
   forwarding loop-freedom under scripted ownership churn, parallel ≡
   sequential execution under the same churn script, epoch-mismatch 2PC
   aborts leaving every store untouched, and the deterministic retry
   jitter. *)

module C = Xd_topo.Catalog
module Ch = Xd_topo.Churn
module M = Xd_xrpc.Message
module E = Xd_core.Executor
module S = Xd_core.Strategy
open Util

let contains_sub s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ---- the catalog vs a purely functional oracle ---------------------------- *)

(* An assoc-list re-implementation of the catalog semantics, written
   against the documented contract (catalog.mli), not the code: register
   without epoch bump, move/join/leave with one bump each, leave promoting
   the first *live* replica, liveness marks without bumps, unknown peers
   presumed up. *)

type model = {
  m_entries : (string * (string * string list)) list;
  m_members : (string * bool) list;
  m_epoch : int;
}

let m_empty = { m_entries = []; m_members = []; m_epoch = 0 }
let set k v l = (k, v) :: List.remove_assoc k l
let m_enroll p m =
  if List.mem_assoc p m.m_members then m
  else { m with m_members = set p true m.m_members }

type op =
  | Register of string * string * string list
  | Move of string * string
  | Join of string
  | Leave of string
  | Mark_down of string
  | Mark_up of string

let m_apply m = function
  | Register (doc, owner, replicas) ->
    let m = { m with m_entries = set doc (owner, replicas) m.m_entries } in
    List.fold_left (fun m p -> m_enroll p m) m (owner :: replicas)
  | Move (doc, owner) ->
    let replicas =
      match List.assoc_opt doc m.m_entries with
      | Some (o, rs) -> List.filter (fun r -> r <> owner && r <> o) rs
      | None -> []
    in
    let m = { m with m_entries = set doc (owner, replicas) m.m_entries } in
    let m = m_enroll owner m in
    { m with m_epoch = m.m_epoch + 1 }
  | Join p ->
    { m with m_members = set p true m.m_members; m_epoch = m.m_epoch + 1 }
  | Leave p ->
    let members = List.remove_assoc p m.m_members in
    let live r =
      match List.assoc_opt r members with Some up -> up | None -> false
    in
    let entries =
      List.map
        (fun (doc, (owner, rs)) ->
          let rs = List.filter (fun r -> r <> p) rs in
          if owner = p then
            match List.find_opt live rs with
            | Some promoted ->
              (doc, (promoted, List.filter (fun r -> r <> promoted) rs))
            | None -> (doc, (owner, rs))
          else (doc, (owner, rs)))
        m.m_entries
    in
    { m_entries = entries; m_members = members; m_epoch = m.m_epoch + 1 }
  | Mark_down p -> { m with m_members = set p false m.m_members }
  | Mark_up p -> { m with m_members = set p true m.m_members }

let c_apply cat = function
  | Register (doc, owner, replicas) -> C.register cat ~doc ~owner ~replicas ()
  | Move (doc, owner) -> C.move cat ~doc ~owner
  | Join p -> C.join cat p
  | Leave p -> C.leave cat p
  | Mark_down p -> C.mark_down cat p
  | Mark_up p -> C.mark_up cat p

let docs = [ "a.xml"; "b.xml"; "c.xml" ]
let peers = [ "p1"; "p2"; "p3"; "p4" ]

let gen_op =
  let open QCheck.Gen in
  let doc = oneofl docs and peer = oneofl peers in
  frequency
    [
      ( 3,
        map3
          (fun d o rs -> Register (d, o, List.filter (fun r -> r <> o) rs))
          doc peer
          (list_size (int_bound 2) peer) );
      (3, map2 (fun d o -> Move (d, o)) doc peer);
      (2, map (fun p -> Join p) peer);
      (2, map (fun p -> Leave p) peer);
      (2, map (fun p -> Mark_down p) peer);
      (2, map (fun p -> Mark_up p) peer);
    ]

let op_to_string = function
  | Register (d, o, rs) ->
    Printf.sprintf "register %s->%s[%s]" d o (String.concat "," rs)
  | Move (d, o) -> Printf.sprintf "move %s->%s" d o
  | Join p -> "join " ^ p
  | Leave p -> "leave " ^ p
  | Mark_down p -> "down " ^ p
  | Mark_up p -> "up " ^ p

let arb_ops =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map op_to_string ops))
    QCheck.Gen.(list_size (int_bound 20) gen_op)

let agrees cat m =
  let m_entries =
    List.map (fun (doc, (owner, replicas)) -> { C.doc; owner; replicas }) m.m_entries
    |> List.sort (fun a b -> compare a.C.doc b.C.doc)
  in
  C.entries cat = m_entries
  && C.members cat = List.sort compare m.m_members
  && C.epoch cat = m.m_epoch
  && List.for_all
       (fun d ->
         C.owner_of cat d = Option.map fst (List.assoc_opt d m.m_entries))
       docs
  && List.for_all
       (fun p ->
         C.is_up cat p
         = (match List.assoc_opt p m.m_members with
           | Some up -> up
           | None -> true)
         && List.for_all
              (fun d ->
                C.serves cat ~peer:p ~doc:d
                = (match List.assoc_opt d m.m_entries with
                  | Some (o, rs) -> o = p || List.mem p rs
                  | None -> false))
              docs)
       peers

let prop_catalog_oracle =
  qtest ~count:1000 "catalog = oracle on random op sequences" arb_ops
    (fun ops ->
      let cat = C.create () in
      List.for_all
        (fun (op, m) ->
          c_apply cat op;
          agrees cat m)
        (snd
           (List.fold_left
              (fun (m, acc) op ->
                let m = m_apply m op in
                (m, acc @ [ (op, m) ]))
              (m_empty, []) ops)))

(* ---- forwarding terminates under arbitrary move schedules ----------------- *)

let little_doc = "<r><x>1</x><x>2</x><x>3</x></r>"

let make_net3 () =
  let net = Xd_xrpc.Network.create () in
  let client = Xd_xrpc.Network.new_peer net "client" in
  let ps =
    List.map
      (fun name ->
        let p = Xd_xrpc.Network.new_peer net name in
        ignore (Xd_xrpc.Peer.load_xml p ~doc_name:"d.xml" little_doc);
        p)
      [ "peer1"; "peer2"; "peer3" ]
  in
  (net, client, ps)

let arb_moves =
  QCheck.make
    ~print:(fun l ->
      String.concat ";"
        (List.map (fun (n, p) -> Printf.sprintf "%d:move=d.xml/peer%d" n p) l))
    QCheck.Gen.(list_size (int_bound 5) (pair (int_range 1 8) (int_range 1 3)))

(* Whatever the move schedule does — including moving the document away
   again while a redirect is in flight — the call either completes with
   the right answer or fails with the typed unroutable fault. It never
   loops, never leaks a native exception, never answers wrong. *)
let prop_forward_loop_free =
  qtest ~count:300 "forwarding: right answer or typed unroutable" arb_moves
    (fun moves ->
      let net, client, _ = make_net3 () in
      let cat = C.create () in
      C.register cat ~doc:"d.xml" ~owner:"peer1" ();
      Xd_xrpc.Network.set_catalog net cat;
      Xd_xrpc.Network.set_churn net
        (Ch.create
           (List.map
              (fun (n, p) ->
                (n, Ch.Move { doc = "d.xml"; owner = Printf.sprintf "peer%d" p }))
              moves));
      let session = Xd_xrpc.Session.create net client M.By_fragment in
      let q =
        Xd_lang.Parser.parse_query
          {|execute at {"peer1"} function ()
              { count(doc("d.xml")/child::r/child::x) }|}
      in
      match Xd_xrpc.Session.execute session q with
      | v -> Xd_lang.Value.serialize v = "3"
      | exception M.Xrpc_fault { code = M.Topo_unroutable; _ } -> true)

(* ---- parallel ≡ sequential under the same churn script -------------------- *)

type churn_ev = Cmove of string * int | Cdown of int | Cup of int | Cjoin

let arb_churn =
  let open QCheck.Gen in
  let ev =
    frequency
      [
        ( 3,
          map2
            (fun d p -> Cmove ((if d then "d.xml" else "e.xml"), p))
            bool (int_range 1 2) );
        (2, map (fun p -> Cdown p) (int_range 1 2));
        (2, map (fun p -> Cup p) (int_range 1 2));
        (1, return Cjoin);
      ]
  in
  QCheck.make
    ~print:(fun l -> Printf.sprintf "%d events" (List.length l))
    (list_size (int_bound 4) (pair (int_range 1 8) ev))

let churn_of evs =
  Ch.create
    (List.map
       (fun (n, ev) ->
         ( n,
           match ev with
           | Cmove (doc, p) ->
             Ch.Move { doc; owner = Printf.sprintf "peer%d" p }
           | Cdown p -> Ch.Down (Printf.sprintf "peer%d" p)
           | Cup p -> Ch.Up (Printf.sprintf "peer%d" p)
           | Cjoin -> Ch.Join "peer9" ))
       evs)

let fanout_plan () =
  Xd_core.Decompose.plan_of_query S.By_fragment
    (Xd_lang.Parser.parse_query
       {|(execute at {"peer1"} function ()
            { count(doc("d.xml")/child::r/child::x) },
          execute at {"peer2"} function ()
            { count(doc("e.xml")/child::r/child::x) })|})

(* Both peers hold both documents, so any move schedule stays servable. *)
let make_net2 () =
  let net = Xd_xrpc.Network.create () in
  let client = Xd_xrpc.Network.new_peer net "client" in
  let ps =
    List.map
      (fun name ->
        let p = Xd_xrpc.Network.new_peer net name in
        ignore (Xd_xrpc.Peer.load_xml p ~doc_name:"d.xml" little_doc);
        ignore (Xd_xrpc.Peer.load_xml p ~doc_name:"e.xml" little_doc);
        p)
      [ "peer1"; "peer2" ]
  in
  (net, client, ps)

let prop_par_seq_churn =
  qtest ~count:200 "parallel = sequential under churn" arb_churn (fun evs ->
      let outcome ~parallel =
        let net, client, _ = make_net2 () in
        let cat = C.create () in
        C.register cat ~doc:"d.xml" ~owner:"peer1" ();
        C.register cat ~doc:"e.xml" ~owner:"peer2" ();
        Xd_xrpc.Network.set_catalog net cat;
        Xd_xrpc.Network.set_churn net (churn_of evs);
        match E.run_plan ~parallel net ~client (fanout_plan ()) with
        | r -> `Value (Xd_lang.Value.serialize r.E.value)
        | exception M.Xrpc_fault { code; _ } -> `Fault code
      in
      outcome ~parallel:true = outcome ~parallel:false)

(* ---- epoch mismatch: 2PC refuses to commit across a membership change ----- *)

let store_snapshot peers =
  List.map
    (fun (p, doc) ->
      match Xd_xrpc.Peer.find_doc p doc with
      | Some d -> Xd_xml.Serializer.doc d
      | None -> "")
    peers

let update_plan () =
  Xd_core.Decompose.plan_of_query S.By_fragment
    (Xd_lang.Parser.parse_query
       {|(execute at {"peer1"} function ()
            { insert node <y/> into doc("d.xml")/child::r },
          execute at {"peer2"} function ()
            { insert node <z/> into doc("e.xml")/child::r })|})

let make_update_net () =
  let net = Xd_xrpc.Network.create () in
  let client = Xd_xrpc.Network.new_peer net "client" in
  let p1 = Xd_xrpc.Network.new_peer net "peer1" in
  let p2 = Xd_xrpc.Network.new_peer net "peer2" in
  ignore (Xd_xrpc.Peer.load_xml p1 ~doc_name:"d.xml" little_doc);
  ignore (Xd_xrpc.Peer.load_xml p2 ~doc_name:"e.xml" little_doc);
  let cat = C.create () in
  C.register cat ~doc:"d.xml" ~owner:"peer1" ();
  C.register cat ~doc:"e.xml" ~owner:"peer2" ();
  Xd_xrpc.Network.set_catalog net cat;
  (net, client, [ (p1, "d.xml"); (p2, "e.xml") ])

let arb_abort_point =
  QCheck.make
    ~print:(fun (n, p) -> Printf.sprintf "%d:join=p%d" n p)
    QCheck.Gen.(pair (int_range 1 4) (int_range 3 9))

let prop_epoch_abort_untouched =
  qtest ~count:200 "epoch bump mid-txn aborts, stores untouched"
    arb_abort_point (fun (n, p) ->
      let net, client, stores = make_update_net () in
      Xd_xrpc.Network.set_churn net
        (Ch.create [ (n, Ch.Join (Printf.sprintf "p%d" p)) ]);
      let before = store_snapshot stores in
      match E.run_plan ~txn:`Always net ~client (update_plan ()) with
      | _ -> false (* the epoch moved under the transaction: must abort *)
      | exception M.Xrpc_fault { code = M.Txn_aborted; _ } ->
        store_snapshot stores = before
        && Xd_xrpc.Stats.topo_epoch_aborts net.Xd_xrpc.Network.stats >= 1)

let test_commit_without_churn () =
  (* control: the same transaction with a quiet catalog commits both *)
  let net, client, stores = make_update_net () in
  let before = store_snapshot stores in
  let r = E.run_plan ~txn:`Always net ~client (update_plan ()) in
  check_int "both commits applied" 1 r.E.timing.E.txn_commits;
  check_bool "stores changed" (store_snapshot stores <> before);
  check_bool "inserted at peer1"
    (contains_sub (List.nth (store_snapshot stores) 0) "<y/>");
  check_bool "inserted at peer2"
    (contains_sub (List.nth (store_snapshot stores) 1) "<z/>")

(* ---- deterministic retry jitter ------------------------------------------- *)

(* The schedule is pinned: changing the hash, the fold or the base scale
   shows up here as a literal diff, not as a silent perf drift. *)
let test_backoff_pinned () =
  let b key attempt = Xd_xrpc.Session.backoff_s ~key ~attempt in
  let close msg expected got =
    check_bool
      (Printf.sprintf "%s: expected %.17g, got %.17g" msg expected got)
      (Float.abs (expected -. got) < 1e-15)
  in
  close "req-1 attempt 2" 0.057333374023437501 (b "req-1" 2);
  close "req-1 attempt 3" 0.11533050537109375 (b "req-1" 3);
  close "req-2 attempt 2" 0.069293975830078125 (b "req-2" 2);
  close "peer1 attempt 2" 0.093427276611328131 (b "peer1" 2);
  (* the retry layer keys by "<request-id>@<host>": the same request
     re-driven at another hop (forward / failover) draws fresh jitter
     instead of replaying the first hop's schedule *)
  close "req-1@peer1 attempt 2" 0.066692352294921875 (b "req-1@peer1" 2);
  close "req-1@peer2 attempt 2" 0.079545593261718756 (b "req-1@peer2" 2);
  close "req-1@peer1 attempt 3" 0.132720947265625 (b "req-1@peer1" 3);
  close "req-1@peer2 attempt 3" 0.15975494384765626 (b "req-1@peer2" 3);
  check_bool "hops decorrelate"
    (b "req-1@peer1" 2 <> b "req-1@peer2" 2);
  (* same key and attempt always replay the same backoff *)
  check_bool "deterministic" (b "req-1" 2 = b "req-1" 2)

let prop_backoff_range =
  qtest ~count:200 "backoff in [base, 2*base) and deterministic"
    QCheck.(pair (string_of_size (QCheck.Gen.int_bound 12)) (int_range 2 6))
    (fun (key, attempt) ->
      let base = 0.05 *. (2. ** float_of_int (attempt - 2)) in
      let v = Xd_xrpc.Session.backoff_s ~key ~attempt in
      v >= base && v < 2. *. base
      && v = Xd_xrpc.Session.backoff_s ~key ~attempt)

let () =
  Alcotest.run "topo"
    [
      ("catalog", [ prop_catalog_oracle ]);
      ("forwarding", [ prop_forward_loop_free ]);
      ("equivalence", [ prop_par_seq_churn ]);
      ( "epoch",
        [
          prop_epoch_abort_untouched;
          tc "commit without churn" test_commit_without_churn;
        ] );
      ("backoff", [ tc "pinned schedule" test_backoff_pinned; prop_backoff_range ]);
    ]
