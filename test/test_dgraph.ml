(* Tests for the dependency graph (Section III): parse/varref edges,
   reachability, URI dependency sets D(v), hasMatchingDoc, and xrpc URI
   handling. Uses the paper's Q2 (Table III) where applicable. *)

module Ast = Xd_lang.Ast
module Dg = Xd_dgraph.Dgraph
open Util

let q2 =
  {|(let $s := doc("xrpc://A/students.xml")/child::people/child::person
     return let $c := doc("xrpc://B/course42.xml")
     return let $t := for $x in $s return
                        if ($x/child::tutor = $s/child::name) then $x else ()
     return for $e in $c/child::enroll/child::exam
            return if ($e/attribute::id = $t/child::id) then $e else ())/child::grade|}

let parse s = (Xd_lang.Parser.parse_query s).Ast.body

let find_desc body pred =
  let found = ref [] in
  Ast.iter (fun e -> if pred e then found := e :: !found) body;
  List.rev !found

let var_refs body name =
  find_desc body (fun e ->
      match e.Ast.desc with Ast.Var_ref v -> v = name | _ -> false)

let binding_value body name =
  match
    find_desc body (fun e ->
        match e.Ast.desc with
        | Ast.Let (v, _, _) | Ast.For (v, _, _) -> v = name
        | _ -> false)
  with
  | b :: _ -> List.hd (Ast.children b)
  | [] -> Alcotest.fail ("no binding for $" ^ name)

(* ---- edges and reachability ------------------------------------------- *)

let test_varref_edges () =
  let body = parse q2 in
  let g = Dg.build body in
  let s_value = binding_value body "s" in
  List.iter
    (fun vr ->
      match Dg.binder_of g vr.Ast.id with
      | Some b -> check_int "varref points to binder value" s_value.Ast.id b
      | None -> Alcotest.fail "missing varref edge")
    (var_refs body "s")

let test_parse_reaches () =
  let body = parse q2 in
  let g = Dg.build body in
  let s_value = binding_value body "s" in
  check_bool "root reaches everything" (Dg.parse_reaches g body.Ast.id s_value.Ast.id);
  check_bool "reflexive" (Dg.parse_reaches g s_value.Ast.id s_value.Ast.id);
  check_bool "not upward" (not (Dg.parse_reaches g s_value.Ast.id body.Ast.id))

let test_depends_through_varref () =
  let body = parse q2 in
  let g = Dg.build body in
  let s_value = binding_value body "s" in
  let t_value = binding_value body "t" in
  (* $t's binding iterates over $s: t-value ⤳ s-value via varref *)
  check_bool "depends via varref" (Dg.depends g t_value.Ast.id s_value.Ast.id);
  check_bool "no reverse dependency"
    (not (Dg.depends g s_value.Ast.id t_value.Ast.id))

let test_outgoing_varrefs () =
  let body = parse q2 in
  let g = Dg.build body in
  let t_value = binding_value body "t" in
  (* inside $t's binding, $s is free: one outgoing variable *)
  let out = Dg.outgoing_varrefs g t_value.Ast.id in
  check_bool "at least one outgoing" (out <> []);
  List.iter
    (fun (vr, b) ->
      check_bool "ref inside" (Dg.parse_reaches g t_value.Ast.id vr);
      check_bool "binder outside" (not (Dg.parse_reaches g t_value.Ast.id b)))
    out

(* ---- URI dependency sets ------------------------------------------------ *)

let test_uri_deps () =
  let body = parse q2 in
  let g = Dg.build body in
  let deps = Dg.uri_deps g body.Ast.id in
  let uris =
    List.sort_uniq compare
      (List.filter_map
         (fun d -> match d.Dg.uri with Dg.Uri u -> Some u | _ -> None)
         deps)
  in
  check_slist "all doc uris"
    [ "xrpc://A/students.xml"; "xrpc://B/course42.xml" ]
    uris;
  let s_value = binding_value body "s" in
  check_int "D of $s binding has one site" 1
    (List.length (Dg.uri_deps g s_value.Ast.id))

let test_wildcard_and_constructor () =
  let body = parse {|let $u := "x.xml" return (doc($u), <a/>, doc("y.xml"))|} in
  let g = Dg.build body in
  let deps = Dg.uri_deps g body.Ast.id in
  let kinds = List.map (fun d -> d.Dg.uri) deps in
  check_bool "has wildcard" (List.mem Dg.Wildcard kinds);
  check_bool "has constructor site" (List.mem Dg.Constr kinds);
  check_bool "has literal" (List.mem (Dg.Uri "y.xml") kinds)

let test_has_matching_doc () =
  (* two doc() calls on the same URI: the mixed-call danger *)
  let body1 = parse {|(doc("d.xml")//a, doc("d.xml")//b)|} in
  let g1 = Dg.build body1 in
  check_bool "same uri twice matches" (Dg.has_matching_doc g1 body1.Ast.id);
  (* two different URIs: no danger *)
  let body2 = parse {|(doc("d.xml")//a, doc("e.xml")//b)|} in
  let g2 = Dg.build body2 in
  check_bool "different uris don't match" (not (Dg.has_matching_doc g2 body2.Ast.id));
  (* a single call used twice through a variable is ONE application *)
  let body3 = parse {|let $d := doc("d.xml") return ($d//a, $d//b)|} in
  let g3 = Dg.build body3 in
  check_bool "one application, two uses: no match"
    (not (Dg.has_matching_doc g3 body3.Ast.id));
  (* wildcard matches any literal *)
  let body4 = parse {|let $u := "d.xml" return (doc($u)//a, doc("d.xml")//b)|} in
  let g4 = Dg.build body4 in
  check_bool "wildcard matches" (Dg.has_matching_doc g4 body4.Ast.id);
  (* two constructors never match each other *)
  let body5 = parse {|(<a/>, <b/>)|} in
  let g5 = Dg.build body5 in
  check_bool "constructors don't match" (not (Dg.has_matching_doc g5 body5.Ast.id))

let test_extended_deps_through_vars () =
  (* extended D follows varref edges (the footnote-3 refinement) *)
  let body =
    parse {|let $a := doc("d.xml")//x return ($a, doc("d.xml")//y)|}
  in
  let g = Dg.build body in
  let seq =
    List.hd
      (find_desc body (fun e ->
           match e.Ast.desc with
           | Ast.Seq es -> List.length es = 2
           | _ -> false))
  in
  check_bool "seq extended deps see both doc calls"
    (Dg.has_matching_doc g seq.Ast.id)

(* ---- xrpc uris ----------------------------------------------------------- *)

let test_split_xrpc () =
  check_bool "host and path"
    (Dg.split_xrpc_uri "xrpc://example.org/depts.xml"
    = Some ("example.org", "depts.xml"));
  check_bool "nested path"
    (Dg.split_xrpc_uri "xrpc://h/a/b.xml" = Some ("h", "a/b.xml"));
  check_bool "host only" (Dg.split_xrpc_uri "xrpc://h" = Some ("h", ""));
  check_bool "not xrpc" (Dg.split_xrpc_uri "http://h/d.xml" = None);
  check_bool "plain name" (Dg.split_xrpc_uri "d.xml" = None)

let test_xrpc_hosts () =
  let body = parse q2 in
  let g = Dg.build body in
  check_slist "hosts of whole query" [ "A"; "B" ]
    (Dg.xrpc_hosts (Dg.uri_deps g body.Ast.id))

let () =
  Alcotest.run "xd_dgraph"
    [
      ( "edges",
        [
          tc "varref edges" test_varref_edges;
          tc "parse reachability" test_parse_reaches;
          tc "depends via varref" test_depends_through_varref;
          tc "outgoing varrefs" test_outgoing_varrefs;
        ] );
      ( "uri-deps",
        [
          tc "D(v)" test_uri_deps;
          tc "wildcard/constructor" test_wildcard_and_constructor;
          tc "hasMatchingDoc" test_has_matching_doc;
          tc "extended deps" test_extended_deps_through_vars;
        ] );
      ( "xrpc",
        [ tc "split uri" test_split_xrpc; tc "hosts" test_xrpc_hosts ] );
    ]
