(* Property tests for the per-vertex profiler (lib/obs/profile): the
   actuals --explain folds out of a span tree must reconcile with the
   Stats registry totals the same run recorded.

   The profiler's exact set — bytes, serialize/shred/remote seconds,
   calls, fallbacks — comes from [busy_s]/[bytes] span attributes that
   record the *measured Stats delta* of each traced accounting region,
   so the per-vertex rows must sum back to the registry gauges to float
   rounding, whatever the run hit: wire faults, retries, dedup replay,
   membership churn mid-call, or an overloaded admission queue.
   Queue-wait reconciles exactly only on a fault-free wire (a dropped
   trace header leaves the server's charge unattributed), so that check
   is confined to the fault-free property. *)

module Ast = Xd_lang.Ast
module E = Xd_core.Executor
module S = Xd_core.Strategy
module T = Xd_obs.Trace
module P = Xd_obs.Profile
module St = Xd_xrpc.Stats
open Util

let arb_query = Gen_queries.arb_query
let fault_spec = "drop@0.25#2;dup@0.15#1"

let students_xml =
  {|<people>
      <person id="s1"><name>Ann</name><tutor>Bob</tutor><id>1</id><age>23</age></person>
      <person id="s2"><name>Bob</name><tutor>Zoe</tutor><id>2</id><age>35</age></person>
      <person id="s3"><name>Cyd</name><tutor>Ann</tutor><id>3</id><age>29</age></person>
      <person id="s4"><name>Dan</name><tutor>Cyd</tutor><id>4</id><age>41</age></person>
    </people>|}

(* [moves]: a scripted ownership shuffle of students.xml; both peers hold
   a copy so the document stays servable wherever the catalog points. *)
let run ?(overload = false) ?(moves = []) ?fault_seed q =
  let fault =
    match fault_seed with
    | None -> Xd_xrpc.Fault.none
    | Some seed -> (
      match Xd_xrpc.Fault.parse fault_spec with
      | Ok spec -> Xd_xrpc.Fault.create ~seed spec
      | Error e -> failwith e)
  in
  let net, client = Gen_queries.make_net ~fault () in
  if overload then
    Xd_xrpc.Network.set_overload net
      (Xd_xrpc.Overload.create ~capacity:1 ~queue_cap:4 ~service_s:0.001 ());
  if moves <> [] then begin
    let b = Xd_xrpc.Network.find_peer net "peerB" in
    ignore (Xd_xrpc.Peer.load_xml b ~doc_name:"students.xml" students_xml);
    let cat = Xd_topo.Catalog.create () in
    Xd_topo.Catalog.register cat ~doc:"students.xml" ~owner:"peerA" ();
    Xd_topo.Catalog.register cat ~doc:"course.xml" ~owner:"peerB" ();
    Xd_xrpc.Network.set_catalog net cat;
    Xd_xrpc.Network.set_churn net
      (Xd_topo.Churn.create
         (List.map
            (fun (n, to_b) ->
              ( n,
                Xd_topo.Churn.Move
                  {
                    doc = "students.xml";
                    owner = (if to_b then "peerB" else "peerA");
                  } ))
            moves))
  end;
  let trace = T.create () in
  (match E.run ~trace net ~client S.By_projection q with
  | _ -> ()
  | exception Xd_xrpc.Message.Xrpc_fault _
  | exception Xd_xrpc.Message.Xrpc_timeout _
  | exception Xd_lang.Env.Dynamic_error _
  | exception Xd_lang.Value.Type_error _ ->
    ());
  (net.Xd_xrpc.Network.stats, trace)

let feq a b = Float.abs (a -. b) <= 1e-6

let reconciles ?(queue_exact = false) st tr =
  (* a saturated ring would drop spans and their attrs with them; the
     generator's queries never get near the 65536 cap *)
  T.dropped tr = 0
  &&
  let tot = P.totals (P.of_spans (T.spans tr)) in
  tot.P.bytes = St.total_bytes st
  && tot.P.calls = St.calls st
  && tot.P.fallbacks = St.fallbacks st
  && feq tot.P.serialize_s (St.serialize_s st)
  && feq tot.P.shred_s (St.shred_s st)
  && feq tot.P.remote_s (St.remote_exec_s st)
  && ((not queue_exact) || feq tot.P.queue_wait_s (St.ov_queue_wait_s st))

let prop_reconcile_faults =
  qtest ~count:300 "per-vertex actuals sum to Stats totals under faults"
    QCheck.(pair arb_query (option small_int))
    (fun (q, fault_seed) ->
      let st, tr = run ?fault_seed q in
      reconciles st tr)

let prop_reconcile_fault_free =
  qtest ~count:250
    "fault-free: totals reconcile and queue-wait is exact under overload"
    arb_query
    (fun q ->
      let st, tr = run ~overload:true q in
      reconciles ~queue_exact:true st tr)

let prop_reconcile_churn =
  qtest ~count:250 "totals reconcile under membership churn"
    QCheck.(
      pair arb_query
        (list_of_size (Gen.int_bound 4)
           (pair (int_range 1 8) bool)))
    (fun (q, moves) ->
      let st, tr = run ~moves q in
      reconciles st tr)

let prop_reconcile_overload_faults =
  qtest ~count:150 "totals reconcile under overload plus wire faults"
    QCheck.(pair arb_query small_int)
    (fun (q, seed) ->
      let st, tr = run ~overload:true ~fault_seed:seed q in
      reconciles st tr)

(* Every profiled vertex is either the client pseudo-vertex or a real
   execute-at body id of the plan that ran — attribution never invents
   vertices. *)
let prop_vertices_exist =
  qtest ~count:100 "profile rows map to plan vertices"
    QCheck.(pair arb_query (option small_int))
    (fun (q, fault_seed) ->
      let fault =
        match fault_seed with
        | None -> Xd_xrpc.Fault.none
        | Some seed -> (
          match Xd_xrpc.Fault.parse fault_spec with
          | Ok spec -> Xd_xrpc.Fault.create ~seed spec
          | Error e -> failwith e)
      in
      let net, client = Gen_queries.make_net ~fault () in
      let trace = T.create () in
      match E.run ~trace net ~client S.By_projection q with
      | exception _ -> true (* no plan to check against *)
      | r ->
        let ids = Hashtbl.create 8 in
        let rec walk (e : Ast.expr) =
          (match e.Ast.desc with
          | Ast.Execute_at x -> Hashtbl.replace ids x.Ast.body.Ast.id ()
          | _ -> ());
          List.iter walk (Ast.children e)
        in
        let pq = r.E.plan.Xd_core.Decompose.query in
        walk pq.Ast.body;
        List.iter (fun (f : Ast.func) -> walk f.Ast.f_body) pq.Ast.funcs;
        List.for_all
          (fun (row : P.row) ->
            row.P.vertex = P.local_vertex || Hashtbl.mem ids row.P.vertex)
          (P.rows (P.of_spans (T.spans trace))))

let () =
  Alcotest.run "xd_profile"
    [
      ( "properties",
        [
          prop_reconcile_faults;
          prop_reconcile_fault_free;
          prop_reconcile_churn;
          prop_reconcile_overload_faults;
          prop_vertices_exist;
        ] );
    ]
