(* Tests for the XMark-shaped data generator. *)

module X = Xd_xml
module G = Xd_xmark.Generator
open Util

let load ~persons =
  let st = store () in
  let p = X.Store.of_tree st ~uri:"p.xml" (G.people_tree ~seed:7 ~persons) in
  let a = X.Store.of_tree st ~uri:"a.xml" (G.auctions_tree ~seed:7 ~persons) in
  (st, p, a)

let count_elements d name =
  List.length
    (List.filter
       (fun n -> X.Node.name n = name)
       (X.Node.descendants (X.Node.doc_node d)))

let test_schema_shape () =
  let _, p, a = load ~persons:20 in
  check_int "persons" 20 (count_elements p "person");
  check_int "ages" 20 (count_elements p "age");
  check_bool "filler sections present"
    (count_elements p "item" > 0 && count_elements p "category" > 0
   && count_elements p "closed_auction" > 0);
  check_int "auctions at half the persons" 10 (count_elements a "open_auction");
  check_int "annotations" 10 (count_elements a "annotation");
  check_int "authors" 10 (count_elements a "author")

let test_determinism () =
  let t1 = G.people_tree ~seed:42 ~persons:15 in
  let t2 = G.people_tree ~seed:42 ~persons:15 in
  let st = store () in
  let d1 = X.Store.of_tree st t1 and d2 = X.Store.of_tree st t2 in
  check_string "same seed, same document" (X.Serializer.doc d1)
    (X.Serializer.doc d2);
  let t3 = G.people_tree ~seed:43 ~persons:15 in
  let d3 = X.Store.of_tree st t3 in
  check_bool "different seed, different document"
    (X.Serializer.doc d1 <> X.Serializer.doc d3)

let test_size_scaling () =
  let size persons =
    let st = store () in
    X.Serializer.doc_bytes (X.Store.of_tree st (G.people_tree ~seed:1 ~persons))
  in
  let s1 = size 10 and s2 = size 20 and s4 = size 40 in
  check_bool "monotone growth" (s1 < s2 && s2 < s4);
  (* roughly linear: doubling persons roughly doubles bytes *)
  let ratio = float_of_int s4 /. float_of_int s2 in
  check_bool (Printf.sprintf "roughly linear (ratio %.2f)" ratio)
    (ratio > 1.6 && ratio < 2.4)

let test_referential_integrity () =
  (* seller/@person and author/@person reference existing person ids *)
  let _, p, a = load ~persons:25 in
  let ids =
    List.filter_map
      (fun n ->
        if X.Node.name n = "person" then
          List.find_map
            (fun at ->
              if X.Node.name at = "id" then Some (X.Node.string_value at)
              else None)
            (X.Node.attributes n)
        else None)
      (X.Node.descendants (X.Node.doc_node p))
  in
  let refs =
    List.filter_map
      (fun n ->
        if X.Node.name n = "seller" || X.Node.name n = "author" then
          List.find_map
            (fun at ->
              if X.Node.name at = "person" then Some (X.Node.string_value at)
              else None)
            (X.Node.attributes n)
        else None)
      (X.Node.descendants (X.Node.doc_node a))
  in
  check_bool "some references" (refs <> []);
  List.iter
    (fun r -> check_bool ("dangling reference " ^ r) (List.mem r ids))
    refs

let test_benchmark_selectivity () =
  (* the paper's age predicate must be selective but non-empty *)
  let st, p, _ = load ~persons:60 in
  ignore st;
  let ages =
    List.filter (fun n -> X.Node.name n = "age")
      (X.Node.descendants (X.Node.doc_node p))
  in
  let young =
    List.filter (fun n -> int_of_string (X.Node.string_value n) < 40) ages
  in
  let frac = float_of_int (List.length young) /. float_of_int (List.length ages) in
  check_bool
    (Printf.sprintf "age<40 selectivity %.2f in (0.1, 0.9)" frac)
    (frac > 0.1 && frac < 0.9)

let test_load_pair () =
  let net = Xd_xrpc.Network.create () in
  let p1 = Xd_xrpc.Network.new_peer net "p1" in
  let p2 = Xd_xrpc.Network.new_peer net "p2" in
  let b1, b2 =
    G.load_pair ~persons:10 ~people_peer:p1 ~auctions_peer:p2
      ~people_doc:"people.xml" ~auctions_doc:"auctions.xml" ()
  in
  check_bool "sizes positive" (b1 > 0 && b2 > 0);
  check_bool "documents resolvable"
    (Xd_xrpc.Peer.find_doc p1 "people.xml" <> None
    && Xd_xrpc.Peer.find_doc p2 "auctions.xml" <> None)

let test_parses_back () =
  (* generated documents survive a serialize/parse round trip *)
  let _, p, _ = load ~persons:12 in
  let text = Xd_xml.Serializer.doc p in
  let st2 = store () in
  let d2 = Xd_xml.Parser.parse ~store:st2 ~uri:"x" text in
  check_bool "deep-equal after reparse"
    (Xd_xml.Deep_equal.equal (X.Node.doc_node p) (X.Node.doc_node d2))

let () =
  Alcotest.run "xd_xmark"
    [
      ( "generator",
        [
          tc "schema shape" test_schema_shape;
          tc "determinism" test_determinism;
          tc "size scaling" test_size_scaling;
          tc "referential integrity" test_referential_integrity;
          tc "selectivity" test_benchmark_selectivity;
          tc "load pair" test_load_pair;
          tc "reparse" test_parses_back;
        ] );
    ]
