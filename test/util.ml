(* Shared helpers for the test suites. *)

module X = Xd_xml

let check = Alcotest.check
let check_bool msg b = Alcotest.check Alcotest.bool msg true b
let check_slist = Alcotest.(check (list string))
let check_int = Alcotest.check Alcotest.int
let check_string = Alcotest.check Alcotest.string

let tc name f = Alcotest.test_case name `Quick f

let store () = X.Store.create ()

(* Parse an XML string into a fresh store. *)
let xml ?(uri = "test.xml") s =
  let st = store () in
  X.Parser.parse ~store:st ~uri s

(* Evaluate a query against a store and serialize the result. *)
let eval_str st q = Xd_lang.Value.serialize (Xd_lang.Eval.run st q)

(* Evaluate a query over a single document given as XML text. *)
let eval_on_doc ?(uri = "test.xml") doc_xml q =
  let st = store () in
  let _ = X.Parser.parse ~store:st ~uri doc_xml in
  eval_str st q

let names ns = List.map X.Node.name ns

(* QCheck: random XML trees. *)
let gen_tree =
  let open QCheck.Gen in
  let tag = oneofl [ "a"; "b"; "c"; "d"; "e" ] in
  let attr = oneofl [ []; [ ("id", "x1") ]; [ ("k", "v"); ("id", "y2") ] ] in
  let text = oneofl [ "t"; "hello"; "42"; "x<y&z" ] in
  sized @@ fix (fun self n ->
      if n <= 0 then map (fun t -> X.Doc.T t) text
      else
        frequency
          [
            (1, map (fun t -> X.Doc.T t) text);
            ( 3,
              map3
                (fun name attrs children -> X.Doc.E (name, attrs, children))
                tag attr
                (list_size (int_bound 4) (self (n / 2))) );
          ])

let arb_tree =
  let rec print = function
    | X.Doc.E (n, attrs, cs) ->
      Printf.sprintf "<%s%s>%s</%s>" n
        (String.concat ""
           (List.map (fun (k, v) -> Printf.sprintf " %s=%S" k v) attrs))
        (String.concat "" (List.map print cs))
        n
    | X.Doc.T t -> t
    | X.Doc.C c -> Printf.sprintf "<!--%s-->" c
    | X.Doc.P (t, d) -> Printf.sprintf "<?%s %s?>" t d
  in
  QCheck.make ~print gen_tree

(* Wrap a generated tree in a root element so it is a well-formed document. *)
let root_of_tree t = X.Doc.E ("root", [], [ t ])

let qtest ?(count = 200) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)
