(* Property tests for the distributed tracer (lib/obs + the session's
   span instrumentation), over the same random query generator as the
   end-to-end equivalence suite:

   - every traced run yields a well-formed span tree: one root, parents
     resolve within the buffer, no cycles, children nest inside their
     parent on the simulated clock;
   - tracing is observationally transparent: the result, the
     deterministic Stats counters and the seeded fault schedule are
     identical with tracing on and off;
   - leaf span durations reconcile with the Stats buckets: the summed
     wall time of serialize/shred leaf spans matches the corresponding
     gauge (spans wrap exactly the timed regions, so they can exceed
     them only by bookkeeping overhead). *)

module Ast = Xd_lang.Ast
module E = Xd_core.Executor
module S = Xd_core.Strategy
module T = Xd_obs.Trace
open Util

let make_net = Gen_queries.make_net
let arb_query = Gen_queries.arb_query

(* A fault mix that exercises retries, dedup replay and timeouts without
   making every query fail: drops force re-sends, dups hit the server
   cache. *)
let fault_spec = "drop@0.25#2;dup@0.15#1"

type outcome =
  | Value of string
  | Rpc_fault of string
  | Rpc_timeout of string
  | Other of string

let run ?(traced = false) ?fault_seed q =
  let fault =
    match fault_seed with
    | None -> Xd_xrpc.Fault.none
    | Some seed -> (
      match Xd_xrpc.Fault.parse fault_spec with
      | Ok spec -> Xd_xrpc.Fault.create ~seed spec
      | Error e -> failwith e)
  in
  let net, client = make_net ~fault () in
  let trace = if traced then Some (T.create ()) else None in
  let outcome =
    match E.run ?trace net ~client S.By_projection q with
    | r -> Value (Xd_lang.Value.serialize r.E.value)
    | exception Xd_xrpc.Message.Xrpc_fault { host; code; reason } ->
      Rpc_fault
        (Printf.sprintf "%s/%s/%s" host
           (Xd_xrpc.Message.fault_code_to_string code)
           reason)
    | exception Xd_xrpc.Message.Xrpc_timeout { host; attempts } ->
      Rpc_timeout (Printf.sprintf "%s/%d" host attempts)
    | exception e -> Other (Printexc.to_string e)
  in
  (outcome, net.Xd_xrpc.Network.stats, trace)

(* The deterministic slice of Stats: counts, bytes and simulated time.
   Wall-clock gauges (serialize/shred/remote) legitimately differ between
   runs and are covered by the reconciliation property instead. *)
let wire_stats st =
  let module St = Xd_xrpc.Stats in
  ( (St.messages st, St.message_bytes st),
    (St.documents_fetched st, St.document_bytes st),
    St.network_s st,
    (St.faults st, St.timeouts st, St.retries st, St.fallbacks st),
    (St.dedup_hits st, St.dedup_evictions st),
    (St.txn_staged st, St.txn_commits st, St.txn_aborts st) )

(* ---- (a) well-formed span trees -------------------------------------- *)

let well_formed tr =
  let spans = T.spans tr in
  let by_id = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace by_id s.T.span_id s) spans;
  let unique_ids = Hashtbl.length by_id = List.length spans in
  let roots = List.filter (fun s -> s.T.parent_id = None) spans in
  let one_root = List.length roots = 1 in
  let trace_id =
    match roots with [ r ] -> r.T.trace_id | _ -> "?"
  in
  let eps = 1e-9 in
  let span_ok s =
    s.T.trace_id = trace_id
    && s.T.end_wall >= s.T.start_wall
    && s.T.end_sim >= s.T.start_sim -. eps
    &&
    match s.T.parent_id with
    | None -> true
    | Some p -> (
      match Hashtbl.find_opt by_id p with
      | None -> false (* dangling parent *)
      | Some ps ->
        (* children nest inside their parent on the simulated clock —
           including server-side spans attached via the wire header *)
        ps.T.start_sim <= s.T.start_sim +. eps
        && s.T.end_sim <= ps.T.end_sim +. eps)
  in
  let acyclic s =
    let rec up seen id =
      match id with
      | None -> true
      | Some p ->
        (not (List.mem p seen))
        && (match Hashtbl.find_opt by_id p with
           | None -> false
           | Some ps -> up (p :: seen) ps.T.parent_id)
    in
    up [ s.T.span_id ] s.T.parent_id
  in
  T.dropped tr = 0 && unique_ids && one_root
  && List.for_all span_ok spans
  && List.for_all acyclic spans

let prop_well_formed =
  qtest ~count:60 "traced runs yield well-formed span trees"
    QCheck.(pair arb_query (option small_int))
    (fun (q, fault_seed) ->
      let _, _, trace = run ~traced:true ?fault_seed q in
      match trace with
      | Some tr -> well_formed tr
      | None -> false)

(* ---- (b) observational transparency ----------------------------------- *)

let prop_transparent =
  qtest ~count:50
    "tracing changes neither results, Stats nor the fault schedule"
    QCheck.(pair arb_query small_int)
    (fun (q, seed) ->
      let o_off, st_off, _ = run ~traced:false ~fault_seed:seed q in
      let o_on, st_on, _ = run ~traced:true ~fault_seed:seed q in
      o_off = o_on && wire_stats st_off = wire_stats st_on)

let prop_transparent_fault_free =
  qtest ~count:40 "transparency holds on a fault-free wire" arb_query
    (fun q ->
      let o_off, st_off, _ = run ~traced:false q in
      let o_on, st_on, _ = run ~traced:true q in
      o_off = o_on && wire_stats st_off = wire_stats st_on)

(* ---- (c) durations reconcile with Stats ------------------------------- *)

let prop_durations_reconcile =
  qtest ~count:40 "leaf span durations reconcile with Stats buckets"
    arb_query (fun q ->
      let _, st, trace = run ~traced:true q in
      let tr = Option.get trace in
      let spans = T.spans tr in
      let is_leaf s =
        not (List.exists (fun c -> c.T.parent_id = Some s.T.span_id) spans)
      in
      let sum cat =
        List.fold_left
          (fun acc s ->
            if s.T.cat = cat && is_leaf s then
              acc +. (s.T.end_wall -. s.T.start_wall)
            else acc)
          0. spans
      in
      let module St = Xd_xrpc.Stats in
      (* spans cover at least the timed region, plus only per-span
         bookkeeping — a generous absolute tolerance keeps the property
         robust on loaded machines *)
      let close span_sum bucket =
        span_sum >= bucket -. 1e-9 && span_sum -. bucket <= 0.05
      in
      close (sum "serialize") (St.serialize_s st)
      && close (sum "shred") (St.shred_s st))

let () =
  Alcotest.run "xd_trace"
    [
      ( "properties",
        [
          prop_well_formed;
          prop_transparent;
          prop_transparent_fault_free;
          prop_durations_reconcile;
        ] );
    ]
