(* Tests for the static checker and the Graphviz d-graph export. *)

module Ast = Xd_lang.Ast
module St = Xd_lang.Static
open Util

let check_q src = St.check (Xd_lang.Parser.parse_query src)

let has_error_containing errors sub =
  List.exists
    (fun e ->
      let msg = e.St.message in
      let n = String.length sub in
      let found = ref false in
      for i = 0 to String.length msg - n do
        if String.sub msg i n = sub then found := true
      done;
      !found)
    errors

let test_clean_queries () =
  List.iter
    (fun src -> check_int ("no errors in: " ^ src) 0 (List.length (check_q src)))
    [
      {|1 + 2|};
      {|for $x in (1, 2) return $x|};
      {|let $a := doc("d.xml") return $a//b|};
      {|declare function f($x) { $x }; f(3)|};
      {|typeswitch (1) case $i as xs:integer return $i default $d return 0|};
      {|execute at {"h"} function ($p := 1) { $p }|};
    ]

let test_unbound_variable () =
  check_bool "unbound var detected" (has_error_containing (check_q "$nope") "unbound");
  (* shadowing is fine *)
  check_int "shadowing ok" 0
    (List.length (check_q {|for $x in (1, 2) return for $x in (3) return $x|}));
  (* out-of-scope use after binding *)
  check_bool "scope ends with the binding"
    (has_error_containing
       (check_q {|(let $y := 1 return $y, $y)|})
       "unbound variable $y")

let test_unknown_function () =
  check_bool "unknown function" (has_error_containing (check_q "mystery(1)") "unknown function")

let test_arities () =
  check_bool "user function arity"
    (has_error_containing
       (check_q {|declare function f($x) { $x }; f(1, 2)|})
       "expects 1 argument");
  check_bool "builtin fixed arity"
    (has_error_containing (check_q "count(1, 2)") "arguments");
  check_bool "variadic concat minimum"
    (has_error_containing (check_q {|concat("a")|}) "arguments");
  check_int "concat ok with many" 0
    (List.length (check_q {|concat("a", "b", "c", "d")|}));
  check_int "substring both arities" 0
    (List.length (check_q {|(substring("abc", 2), substring("abc", 2, 1))|}))

let test_duplicates () =
  check_bool "duplicate functions"
    (has_error_containing
       (check_q {|declare function f() { 1 }; declare function f() { 2 }; f()|})
       "duplicate function");
  check_bool "duplicate params"
    (has_error_containing
       (check_q {|declare function g($a, $a) { $a }; g(1, 2)|})
       "duplicate parameter")

let test_collects_all () =
  let errs = check_q {|($a, $b, nope())|} in
  check_int "three errors collected" 3 (List.length errs)

let test_function_scope () =
  (* function bodies see only their parameters *)
  check_bool "body cannot see caller scope"
    (has_error_containing
       (check_q {|declare function f() { $outer }; let $outer := 1 return f()|})
       "unbound variable $outer")

let test_execute_at_scope () =
  (* execute-at bodies see only their parameters (rule 27 semantics) *)
  check_bool "remote body sees only params"
    (has_error_containing
       (check_q {|let $x := 1 return execute at {"h"} function () { $x }|})
       "unbound variable $x");
  check_int "param makes it visible" 0
    (List.length
       (check_q {|let $x := 1 return execute at {"h"} function ($x := $x) { $x }|}))

let test_check_exn () =
  check_bool "check_exn raises"
    (match St.check_exn (Xd_lang.Parser.parse_query "$nope") with
    | exception Xd_lang.Env.Dynamic_error _ -> true
    | () -> false)

(* ---- dot export ------------------------------------------------------------ *)

let test_dot_export () =
  let q =
    Xd_lang.Parser.parse_query
      {|let $s := doc("xrpc://A/students.xml")/child::people return $s/child::person|}
  in
  let g = Xd_dgraph.Dgraph.build q.Ast.body in
  let dot = Xd_dgraph.Dot.to_dot ~name:"q" g in
  let contains sub =
    let n = String.length sub in
    let found = ref false in
    for i = 0 to String.length dot - n do
      if String.sub dot i n = sub then found := true
    done;
    !found
  in
  check_bool "digraph header" (contains "digraph q {");
  check_bool "let vertex" (contains "LetExpr[$s]");
  check_bool "step vertex" (contains "AxisStep[child::person]");
  check_bool "doc call" (contains "FunCall[doc]");
  check_bool "varref dashed edge" (contains "style=dashed");
  check_bool "balanced braces" (String.length dot > 0 && dot.[String.length dot - 2] = '}')

let () =
  Alcotest.run "xd_static"
    [
      ( "checker",
        [
          tc "clean queries" test_clean_queries;
          tc "unbound variables" test_unbound_variable;
          tc "unknown functions" test_unknown_function;
          tc "arities" test_arities;
          tc "duplicates" test_duplicates;
          tc "collects all errors" test_collects_all;
          tc "function scope" test_function_scope;
          tc "execute-at scope" test_execute_at_scope;
          tc "check_exn" test_check_exn;
        ] );
      ("dot", [ tc "export" test_dot_export ]);
    ]
