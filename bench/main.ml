(* Benchmark harness: regenerates every figure of the paper's evaluation
   (Section VII) plus ablations and bechamel micro-benchmarks.

     dune exec bench/main.exe            -- all experiments, default scale
     dune exec bench/main.exe fig7       -- a single figure
     dune exec bench/main.exe -- --scale 80   -- bigger documents
     dune exec bench/main.exe micro      -- bechamel micro-benchmarks
     dune exec bench/main.exe -- fig8 --trace-dir traces
                                         -- Chrome trace per strategy
*)

let base_scale = ref 40
let trace_dir = ref None

let run_fig7 () = Experiments.print_fig7 (Experiments.fig7 ~base:!base_scale ())

let run_fig8 () =
  let persons = !base_scale * 16 in
  Experiments.print_fig8 ~persons
    (Experiments.fig8 ?trace_dir:!trace_dir ~persons ());
  match !trace_dir with
  | Some dir ->
    Printf.printf "   (chrome traces written under %s/fig8-*.trace.json)\n\n"
      dir
  | None -> ()

let run_fig9 () = Experiments.print_fig9 (Experiments.fig9 ~base:!base_scale ())

let run_fig10_11 () =
  let rows = Experiments.fig10_11 ~base:(!base_scale / 4 * 10) () in
  Experiments.print_fig10 rows;
  Experiments.print_fig11 rows

let run_fig10 () =
  Experiments.print_fig10 (Experiments.fig10_11 ~base:(!base_scale / 4 * 10) ())

let run_fig11 () =
  Experiments.print_fig11 (Experiments.fig10_11 ~base:(!base_scale / 4 * 10) ())

let run_ablations () =
  Experiments.ablation_code_motion ~persons:(!base_scale * 4) ();
  Experiments.ablation_bulk ~persons:!base_scale ();
  Experiments.ablation_cost_model ~persons:(!base_scale * 2) ()

let run_effects () =
  let persons = !base_scale * 2 in
  let rows = Experiments.effects ~persons () in
  Experiments.print_effects rows;
  Experiments.write_effects_json ~path:"BENCH_effects.json" ~persons rows;
  print_endline "   (written to BENCH_effects.json)\n"

let run_topo () =
  let persons = !base_scale * 2 in
  let rows = Experiments.topo ~persons () in
  Experiments.print_topo rows;
  Experiments.write_topo_json ~path:"BENCH_topo.json" ~persons rows;
  print_endline "   (written to BENCH_topo.json)\n"

let run_overload () =
  (* floor at 200 arrivals: below that the FIFO backlog never outgrows
     the deadline and the saturation comparison is vacuous (the requests
     are cheap — sim-clock only — so the floor costs nothing) *)
  let requests = max 200 (!base_scale * 5) in
  let rows = Experiments.overload ~requests () in
  Experiments.print_overload rows;
  Experiments.write_overload_json ~path:"BENCH_overload.json" rows;
  print_endline "   (written to BENCH_overload.json)\n"

let run_codec () =
  let persons = !base_scale * 2 in
  let rows = Experiments.codec ~persons () in
  Experiments.print_codec ~persons rows;
  Experiments.write_codec_json ~path:"BENCH_codec.json" ~persons rows;
  print_endline "   (written to BENCH_codec.json)\n"

let run_verify () = Experiments.verify ~persons:(!base_scale * 2) ()
let run_workloads () = Experiments.workload_suite ~persons:(!base_scale * 2) ()

(* ---- bechamel micro-benchmarks --------------------------------------------- *)

let micro () =
  let open Bechamel in
  let store () = Xd_xml.Store.create () in
  let people_xml =
    let st = store () in
    Xd_xml.Serializer.doc
      (Xd_xml.Store.add st
         (Xd_xml.Doc.of_tree (Xd_xmark.Generator.people_tree ~seed:1 ~persons:50)))
  in
  let parsed =
    let st = store () in
    Xd_xml.Parser.parse ~store:st ~uri:"p.xml" people_xml
  in
  let persons_nodes =
    List.filter
      (fun n -> Xd_xml.Node.name n = "person")
      (Xd_xml.Node.descendants (Xd_xml.Node.doc_node parsed))
  in
  let test_parse =
    Test.make ~name:"xml-parse-50-persons"
      (Staged.stage (fun () -> Xd_xml.Parser.parse_doc people_xml))
  in
  let test_serialize =
    Test.make ~name:"xml-serialize-50-persons"
      (Staged.stage (fun () -> Xd_xml.Serializer.doc parsed))
  in
  let test_projection =
    Test.make ~name:"runtime-projection-50-persons"
      (Staged.stage (fun () ->
           Xd_projection.Runtime.project ~used:persons_nodes ~returned:[] parsed))
  in
  let q = Xd_lang.Parser.parse_query {|doc("p.xml")/descendant::age|} in
  let test_eval =
    Test.make ~name:"xquery-descendant-age"
      (Staged.stage (fun () ->
           let st = store () in
           let _ = Xd_xml.Parser.parse ~store:st ~uri:"p.xml" people_xml in
           Xd_lang.Eval.run_query st q))
  in
  let test_decompose =
    Test.make ~name:"decompose-benchmark-query"
      (Staged.stage (fun () ->
           Xd_core.Decompose.decompose Xd_core.Strategy.By_projection
             (Xd_lang.Parser.parse_query Experiments.benchmark_query)))
  in
  let tests =
    [ test_parse; test_serialize; test_projection; test_eval; test_decompose ]
  in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
    let raw = Benchmark.all cfg [ instance ] test in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    let results = Analyze.all ols instance raw in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.printf "  %-34s %12.0f ns/run\n" name est
        | _ -> Printf.printf "  %-34s (no estimate)\n" name)
      results
  in
  print_endline "== bechamel micro-benchmarks ==";
  List.iter (fun t -> benchmark t) tests

(* ---- driver ------------------------------------------------------------------ *)

let all () =
  run_verify ();
  run_fig7 ();
  run_fig8 ();
  run_fig9 ();
  run_fig10_11 ();
  run_workloads ();
  run_effects ();
  run_topo ();
  run_overload ();
  run_codec ();
  run_ablations ()

(* One cheap pass over every experiment — the @bench-smoke alias. Tiny
   scale, every code path: catches bit-rot in the harness without the
   minutes a full run takes. *)
let smoke () =
  base_scale := 4;
  all ()

let () =
  (* bench hygiene: a roomy minor heap (4M words = 32MB) keeps minor
     collections from firing inside the µs-scale timed buckets, where
     their cost would be charged to whichever bucket happened to be
     open. Affects every experiment equally. *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 4 * 1024 * 1024 };
  let args = Array.to_list Sys.argv in
  let rec parse = function
    | [] -> []
    | "--scale" :: n :: rest ->
      base_scale := int_of_string n;
      parse rest
    | "--trace-dir" :: dir :: rest ->
      trace_dir := Some dir;
      parse rest
    | x :: rest -> x :: parse rest
  in
  match parse (List.tl args) with
  | [] | [ "all" ] -> all ()
  | [ "regress"; base; cur ] -> exit (Regress.regress base cur)
  | "regress" :: _ ->
    prerr_endline "usage: bench regress BASE.json CUR.json";
    exit 2
  | cmds ->
    List.iter
      (function
        | "fig7" -> run_fig7 ()
        | "fig8" -> run_fig8 ()
        | "fig9" -> run_fig9 ()
        | "fig10" -> run_fig10 ()
        | "fig11" -> run_fig11 ()
        | "fig10_11" | "fig1011" -> run_fig10_11 ()
        | "ablation" | "ablations" -> run_ablations ()
        | "verify" -> run_verify ()
        | "workloads" -> run_workloads ()
        | "effects" -> run_effects ()
        | "topo" -> run_topo ()
        | "overload" -> run_overload ()
        | "codec" -> run_codec ()
        | "smoke" -> smoke ()
        | "micro" -> micro ()
        | other ->
          Printf.eprintf
            "unknown experiment %S (fig7|fig8|fig9|fig10|fig11|ablation|workloads|effects|topo|overload|codec|smoke|verify|micro|all|regress)\n"
            other;
          exit 1)
      cmds
