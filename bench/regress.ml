(* `bench regress BASE CUR` — the perf regression gate.

   Diffs two BENCH_*.json records (effects / topo / overload / codec)
   metric by metric against per-metric tolerance thresholds and exits
   non-zero on any regression. Nearly every metric in those files is
   simulated-clock or count based, so smoke-scale baselines are
   bit-stable across machines and can be checked in (bench/baselines/);
   the codec timing buckets are the wall-clock exception and carry an
   absolute slack sized to drown machine noise. The @bench-regress
   alias re-runs the smoke-scale experiments and gates fresh output
   against them.

   No JSON library is assumed (same stance as Xd_obs.Sink on the write
   side): a ~60-line recursive-descent parser covers the subset the
   bench writers emit. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

(* ---- minimal JSON parser --------------------------------------------------- *)

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      incr pos;
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char b '"'
             | '\\' -> Buffer.add_char b '\\'
             | '/' -> Buffer.add_char b '/'
             | 'n' -> Buffer.add_char b '\n'
             | 't' -> Buffer.add_char b '\t'
             | 'r' -> Buffer.add_char b '\r'
             | 'b' -> Buffer.add_char b '\b'
             | 'f' -> Buffer.add_char b '\012'
             | 'u' ->
               (* the bench writers only emit ASCII; decode to '?' *)
               pos := !pos + 4;
               Buffer.add_char b '?'
             | c -> fail (Printf.sprintf "bad escape %C" c));
          incr pos;
          go ()
        | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else
        let rec members acc =
          skip_ws ();
          let k = string_lit () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ((k, v) :: acc)
          | Some '}' ->
            incr pos;
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        Arr []
      end
      else
        let rec elems acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            elems (v :: acc)
          | Some ']' ->
            incr pos;
            Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elems []
    | Some '"' -> Str (string_lit ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> number ()
    | None -> fail "unexpected end of input"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ---- the gate -------------------------------------------------------------- *)

(* Direction of goodness per metric. Tolerances sit below the 20%
   regression the acceptance bar injects; count metrics are exact (the
   simulation is deterministic — any drift is a behaviour change and
   should either fail the gate or update the baseline). *)
type direction = Lower_better | Higher_better

type rule = { metric : string; dir : direction; rel_tol : float; abs_slack : float }

let rules =
  [
    (* effects-overlap-batching *)
    { metric = "seq_network_s"; dir = Lower_better; rel_tol = 0.10; abs_slack = 1e-6 };
    { metric = "par_network_s"; dir = Lower_better; rel_tol = 0.10; abs_slack = 1e-6 };
    { metric = "seq_messages"; dir = Lower_better; rel_tol = 0.0; abs_slack = 0.0 };
    { metric = "par_messages"; dir = Lower_better; rel_tol = 0.0; abs_slack = 0.0 };
    { metric = "calls"; dir = Lower_better; rel_tol = 0.0; abs_slack = 0.0 };
    { metric = "sched_groups"; dir = Higher_better; rel_tol = 0.0; abs_slack = 0.0 };
    { metric = "sched_overlapped"; dir = Higher_better; rel_tol = 0.0; abs_slack = 0.0 };
    { metric = "sched_saved_s"; dir = Higher_better; rel_tol = 0.10; abs_slack = 1e-6 };
    { metric = "batch_envelopes"; dir = Lower_better; rel_tol = 0.0; abs_slack = 0.0 };
    { metric = "batch_calls"; dir = Higher_better; rel_tol = 0.0; abs_slack = 0.0 };
    (* topo-forwarding-failover *)
    { metric = "network_s"; dir = Lower_better; rel_tol = 0.10; abs_slack = 1e-6 };
    { metric = "messages"; dir = Lower_better; rel_tol = 0.0; abs_slack = 0.0 };
    { metric = "message_bytes"; dir = Lower_better; rel_tol = 0.10; abs_slack = 0.0 };
    { metric = "document_bytes"; dir = Lower_better; rel_tol = 0.10; abs_slack = 0.0 };
    { metric = "forwarded"; dir = Lower_better; rel_tol = 0.0; abs_slack = 0.0 };
    { metric = "failovers"; dir = Lower_better; rel_tol = 0.0; abs_slack = 0.0 };
    { metric = "fallbacks"; dir = Lower_better; rel_tol = 0.0; abs_slack = 0.0 };
    (* codec-compiled-wire-shapes: counts and wire bytes are exact (the
       wire is byte-identical by construction — drift is a codec bug);
       the timing buckets are the one wall-clock exception in these
       files, so they get the 15% relative band plus an absolute slack
       that swallows smoke-scale scheduling noise *)
    { metric = "wire_bytes"; dir = Lower_better; rel_tol = 0.0; abs_slack = 0.0 };
    { metric = "codec_compiled"; dir = Higher_better; rel_tol = 0.0; abs_slack = 0.0 };
    { metric = "codec_decodes"; dir = Higher_better; rel_tol = 0.0; abs_slack = 0.0 };
    { metric = "codec_event_shreds"; dir = Higher_better; rel_tol = 0.0; abs_slack = 0.0 };
    { metric = "codec_bailouts"; dir = Lower_better; rel_tol = 0.0; abs_slack = 0.0 };
    { metric = "generic_serialize_s"; dir = Lower_better; rel_tol = 0.15; abs_slack = 0.01 };
    { metric = "codec_serialize_s"; dir = Lower_better; rel_tol = 0.15; abs_slack = 0.01 };
    { metric = "generic_shred_s"; dir = Lower_better; rel_tol = 0.15; abs_slack = 0.01 };
    { metric = "codec_shred_s"; dir = Lower_better; rel_tol = 0.15; abs_slack = 0.01 };
    (* overload-shedding *)
    { metric = "goodput"; dir = Higher_better; rel_tol = 0.10; abs_slack = 0.0 };
    { metric = "ok"; dir = Higher_better; rel_tol = 0.10; abs_slack = 0.0 };
    { metric = "late"; dir = Lower_better; rel_tol = 0.15; abs_slack = 1.0 };
    { metric = "p50_ms"; dir = Lower_better; rel_tol = 0.15; abs_slack = 0.01 };
    { metric = "p95_ms"; dir = Lower_better; rel_tol = 0.15; abs_slack = 0.01 };
    { metric = "p99_ms"; dir = Lower_better; rel_tol = 0.15; abs_slack = 0.01 };
  ]

let obj_assoc k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

(* The row array, whatever the experiment named it. *)
let rows_of j =
  let candidates = [ "workloads"; "scenarios"; "rows" ] in
  let rec pick = function
    | [] -> []
    | k :: rest -> (
      match obj_assoc k j with Some (Arr rs) -> rs | _ -> pick rest)
  in
  pick candidates

(* A stable identity for a row: "name", or (load, shedding). *)
let row_key r =
  match obj_assoc "name" r with
  | Some (Str s) -> s
  | _ -> (
    let load =
      match obj_assoc "load" r with Some (Num f) -> Printf.sprintf "%.2f" f | _ -> "?"
    in
    let shed =
      match obj_assoc "shedding" r with
      | Some (Bool b) -> string_of_bool b
      | _ -> "?"
    in
    Printf.sprintf "load=%s shedding=%s" load shed)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Compare one (base, cur) row pair; returns regression descriptions. *)
let diff_row key base cur =
  List.filter_map
    (fun { metric; dir; rel_tol; abs_slack } ->
      match (obj_assoc metric base, obj_assoc metric cur) with
      | Some (Num b), Some (Num c) ->
        let delta = match dir with Lower_better -> c -. b | Higher_better -> b -. c in
        let budget = (rel_tol *. Float.abs b) +. abs_slack in
        if delta > budget then
          Some
            (Printf.sprintf
               "REGRESSION [%s] %s: %g -> %g (worse by %g, budget %g)" key
               metric b c delta budget)
        else None
      | _ -> None)
    rules

let regress base_path cur_path =
  let load path =
    try parse_json (read_file path) with
    | Parse_error m ->
      Printf.eprintf "bench regress: %s: %s\n" path m;
      exit 2
    | Sys_error m ->
      Printf.eprintf "bench regress: %s\n" m;
      exit 2
  in
  let base = load base_path in
  let cur = load cur_path in
  let base_rows = List.map (fun r -> (row_key r, r)) (rows_of base) in
  let cur_rows = List.map (fun r -> (row_key r, r)) (rows_of cur) in
  let failures = ref [] in
  let add f = failures := f :: !failures in
  List.iter
    (fun (key, b) ->
      match List.assoc_opt key cur_rows with
      | None -> add (Printf.sprintf "REGRESSION [%s]: row missing from %s" key cur_path)
      | Some c -> List.iter add (diff_row key b c))
    base_rows;
  List.iter
    (fun (key, _) ->
      if not (List.mem_assoc key base_rows) then
        Printf.printf "note: [%s] not in baseline %s (new row, not gated)\n" key
          base_path)
    cur_rows;
  match List.rev !failures with
  | [] ->
    Printf.printf "bench regress: %s vs %s: %d rows ok\n" base_path cur_path
      (List.length base_rows);
    0
  | fs ->
    List.iter print_endline fs;
    Printf.printf "bench regress: %s vs %s: %d regression(s)\n" base_path
      cur_path (List.length fs);
    1
