(* The paper's evaluation (Section VII), one experiment per figure.

   The benchmark query is the paper's modified Qn2 over XMark data split
   across two peers (with the paper's evident $c/$e typo fixed):

     (let $t := let $s := doc("xrpc://peer1/xmk.xml")/site/people/person
                return for $x in $s return if ($x//age < 40) then $x else ()
      return for $e in (let $c := doc("xrpc://peer2/xmk.auctions.xml")
                        return $c//open_auction)
             return if ($e/seller/@person = $t/@id)
                    then $e/annotation else ())/author

   Document sizes double across the sweep like the paper's scale factors
   0.1/0.2/0.4/0.8/1.6 (absolute sizes are laptop-scale; the shapes are
   what the reproduction checks — see EXPERIMENTS.md). *)

module E = Xd_core.Executor
module S = Xd_core.Strategy
module X = Xd_xml

let benchmark_query =
  {|(let $t := let $s := doc("xrpc://peer1/xmk.xml")/child::site/child::people/child::person
               return for $x in $s return if ($x/descendant::age < 40) then $x else ()
     return for $e in (let $c := doc("xrpc://peer2/xmk.auctions.xml")
                       return $c/descendant::open_auction)
            return if ($e/child::seller/attribute::person = $t/attribute::id)
                   then $e/child::annotation else ())/child::author|}

type setup = {
  net : Xd_xrpc.Network.t;
  client : Xd_xrpc.Peer.t;
  peer1 : Xd_xrpc.Peer.t;
  peer2 : Xd_xrpc.Peer.t;
  doc_bytes : int; (* total size of the two documents *)
}

let make_setup ~persons =
  let net = Xd_xrpc.Network.create () in
  let client = Xd_xrpc.Network.new_peer net "client" in
  let peer1 = Xd_xrpc.Network.new_peer net "peer1" in
  let peer2 = Xd_xrpc.Network.new_peer net "peer2" in
  let b1, b2 =
    Xd_xmark.Generator.load_pair ~persons ~people_peer:peer1
      ~auctions_peer:peer2 ~people_doc:"xmk.xml"
      ~auctions_doc:"xmk.auctions.xml" ()
  in
  { net; client; peer1; peer2; doc_bytes = b1 + b2 }

let query () = Xd_lang.Parser.parse_query benchmark_query

let sizes ~base = List.init 5 (fun i -> base * (1 lsl i))

(* ---- Fig. 7: bandwidth usage ------------------------------------------- *)

type fig7_row = {
  f7_persons : int;
  f7_doc_bytes : int;
  f7_transferred : (S.t * int) list;
}

let fig7 ~base () =
  List.map
    (fun persons ->
      let transferred =
        List.map
          (fun strat ->
            let setup = make_setup ~persons in
            let r = E.run setup.net ~client:setup.client strat (query ()) in
            ( strat,
              r.E.timing.E.message_bytes + r.E.timing.E.document_bytes ))
          S.all
      in
      let setup = make_setup ~persons in
      { f7_persons = persons; f7_doc_bytes = setup.doc_bytes; f7_transferred = transferred })
    (sizes ~base)

let print_fig7 rows =
  print_endline
    "== Fig. 7: bandwidth usage (total transferred bytes per query) ==";
  print_endline
    "   paper shape: data-shipping >> by-value > by-fragment >> by-projection, linear in document size";
  Printf.printf "%10s %12s %14s %14s %14s %14s\n" "persons" "docs(B)"
    "data-ship" "by-value" "by-fragment" "by-projection";
  List.iter
    (fun r ->
      Printf.printf "%10d %12d" r.f7_persons r.f7_doc_bytes;
      List.iter (fun (_, b) -> Printf.printf " %14d" b) r.f7_transferred;
      print_newline ())
    rows;
  print_newline ()

(* ---- Fig. 8: execution time breakdown ----------------------------------- *)

type fig8_row = { f8_strategy : S.t; f8_timing : E.timing }

(* With [trace_dir], each strategy's run is traced and exported as a
   Chrome trace_event file (fig8-<strategy>.trace.json) — the Fig. 8
   breakdown read straight off the span tree in chrome://tracing. *)
let fig8 ?trace_dir ~persons () =
  Option.iter
    (fun dir -> if not (Sys.file_exists dir) then Unix.mkdir dir 0o755)
    trace_dir;
  List.map
    (fun strat ->
      let setup = make_setup ~persons in
      let trace = Option.map (fun _ -> Xd_obs.Trace.create ()) trace_dir in
      let r = E.run ?trace setup.net ~client:setup.client strat (query ()) in
      Option.iter
        (fun dir ->
          let tr = Option.get trace in
          Xd_obs.Sink.write_file
            (Filename.concat dir
               (Printf.sprintf "fig8-%s.trace.json" (S.to_string strat)))
            (Xd_obs.Sink.chrome tr))
        trace_dir;
      { f8_strategy = strat; f8_timing = r.E.timing })
    S.all

let print_fig8 ~persons rows =
  Printf.printf
    "== Fig. 8: query time breakdown at the largest size (%d persons) ==\n"
    persons;
  print_endline
    "   paper shape: shred dominates data-shipping (>99%) and by-value; decomposed strategies 84-94% faster";
  Printf.printf "%-20s %10s %10s %10s %10s %10s %10s\n" "strategy" "total ms"
    "shred" "local" "(de)ser" "remote" "net(sim)";
  List.iter
    (fun { f8_strategy; f8_timing = t } ->
      Printf.printf "%-20s %10.2f %10.2f %10.2f %10.2f %10.2f %10.3f\n"
        (S.to_string f8_strategy)
        (E.total_time t *. 1000.)
        (t.E.shred_s *. 1000.) (t.E.local_exec_s *. 1000.)
        (t.E.serialize_s *. 1000.) (t.E.remote_exec_s *. 1000.)
        (t.E.network_s *. 1000.))
    rows;
  print_newline ()

(* ---- Fig. 9: total execution time over sizes ------------------------------ *)

type fig9_row = {
  f9_persons : int;
  f9_times : (S.t * float) list; (* total seconds *)
}

let fig9 ~base () =
  List.map
    (fun persons ->
      let times =
        List.map
          (fun strat ->
            let setup = make_setup ~persons in
            let r = E.run setup.net ~client:setup.client strat (query ()) in
            (strat, E.total_time r.E.timing))
          S.all
      in
      { f9_persons = persons; f9_times = times })
    (sizes ~base)

let print_fig9 rows =
  print_endline "== Fig. 9: total execution time per query (ms) ==";
  print_endline
    "   paper shape: by-fragment and by-projection beat data-shipping/by-value at every size";
  Printf.printf "%10s %14s %14s %14s %14s\n" "persons" "data-ship" "by-value"
    "by-fragment" "by-projection";
  List.iter
    (fun r ->
      Printf.printf "%10d" r.f9_persons;
      List.iter (fun (_, t) -> Printf.printf " %14.2f" (t *. 1000.)) r.f9_times;
      print_newline ())
    rows;
  print_newline ()

(* ---- Fig. 10/11: runtime vs compile-time projection ------------------------ *)

(* The by-projection benchmark sub-experiment: project the people document
   for the age predicate. Compile-time evaluates the full projection paths
   from the root (all persons + ages); runtime starts from the materialized,
   selected person sequence. *)

type fig10_row = {
  f10_persons : int;
  f10_doc_bytes : int;
  f10_compile_bytes : int;
  f10_runtime_bytes : int;
  f10_compile_ms : float;
  f10_runtime_ms : float;
}

let projection_experiment ~persons =
  let store = X.Store.create () in
  let doc =
    X.Store.add store
      (X.Doc.of_tree ~uri:"xmk.xml"
         (Xd_xmark.Generator.people_tree ~seed:42 ~persons))
  in
  let used_paths =
    [ Xd_projection.Path.of_string
        "child::site/child::people/child::person" ]
  in
  let returned_paths =
    [ Xd_projection.Path.of_string
        "child::site/child::people/child::person/descendant::age" ]
  in
  (* best of three repetitions, to keep single-run noise out of Fig. 11 *)
  let time f =
    let once () =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (r, (Unix.gettimeofday () -. t0) *. 1000.)
    in
    let r1, t1 = once () in
    let _, t2 = once () in
    let _, t3 = once () in
    (r1, Float.min t1 (Float.min t2 t3))
  in
  (* compile-time: selection-blind *)
  let ct, ct_ms =
    time (fun () ->
        Xd_projection.Compile_time.project ~used_paths ~returned_paths doc)
  in
  (* runtime: the materialized context after the age selection *)
  let rt, rt_ms =
    time (fun () ->
        let persons_sel =
          List.filter
            (fun n ->
              X.Node.name n = "person"
              && List.exists
                   (fun a ->
                     X.Node.name a = "age"
                     &&
                     (* age > 59: ~20% selectivity, mirroring the paper's
                        "age larger than 45" under its own age
                        distribution *)
                     match int_of_string_opt (X.Node.string_value a) with
                     | Some v -> v > 59
                     | None -> false)
                   (X.Node.descendants n))
            (X.Node.descendants (X.Node.doc_node doc))
        in
        let ages =
          Xd_projection.Path.eval
            (Xd_projection.Path.of_string "descendant::age")
            persons_sel
        in
        Xd_projection.Runtime.project ~used:persons_sel ~returned:ages doc)
  in
  let bytes pr = String.length (X.Serializer.doc pr.Xd_projection.Runtime.doc) in
  {
    f10_persons = persons;
    f10_doc_bytes = X.Serializer.doc_bytes doc;
    f10_compile_bytes = bytes ct;
    f10_runtime_bytes = bytes rt;
    f10_compile_ms = ct_ms;
    f10_runtime_ms = rt_ms;
  }

let fig10_11 ~base () =
  List.map (fun persons -> projection_experiment ~persons)
    (List.init 4 (fun i -> base * (1 lsl (2 * i)))) (* 4 points, x4 apart like 10/40/160/640 *)

let print_fig10 rows =
  print_endline "== Fig. 10: projected document size, compile-time vs runtime ==";
  print_endline "   paper shape: runtime projection ~5x smaller";
  Printf.printf "%10s %12s %16s %16s %8s\n" "persons" "doc(B)" "compile-time(B)"
    "runtime(B)" "ratio";
  List.iter
    (fun r ->
      Printf.printf "%10d %12d %16d %16d %8.2f\n" r.f10_persons r.f10_doc_bytes
        r.f10_compile_bytes r.f10_runtime_bytes
        (float_of_int r.f10_compile_bytes /. float_of_int (max 1 r.f10_runtime_bytes)))
    rows;
  print_newline ()

let print_fig11 rows =
  print_endline "== Fig. 11: projection execution time, compile-time vs runtime ==";
  print_endline
    "   paper shape: the runtime investment in XPath evaluation pays off (comparable or faster)";
  Printf.printf "%10s %16s %16s\n" "persons" "compile-time(ms)" "runtime(ms)";
  List.iter
    (fun r ->
      Printf.printf "%10d %16.3f %16.3f\n" r.f10_persons r.f10_compile_ms
        r.f10_runtime_ms)
    rows;
  print_newline ()

(* ---- ablation: code motion, session caching -------------------------------- *)

let ablation_code_motion ~persons () =
  print_endline "== Ablation: distributed code motion (by-fragment, Example 4.3) ==";
  let bytes code_motion =
    let setup = make_setup ~persons in
    let r =
      E.run ~code_motion setup.net ~client:setup.client S.By_fragment (query ())
    in
    r.E.timing.E.message_bytes
  in
  let without = bytes false in
  let with_cm = bytes true in
  Printf.printf "  message bytes without code motion: %d\n" without;
  Printf.printf "  message bytes with    code motion: %d (%.1f%%)\n\n" with_cm
    (100. *. float_of_int with_cm /. float_of_int without)

(* Bulk RPC (session-wide fragment caching) ablation: a loop-nested call
   re-ships its parameter nodes on every iteration when disabled. *)
let ablation_bulk ~persons () =
  print_endline
    "== Ablation: bulk RPC session caching (loop-nested call, by-fragment) ==";
  let q =
    Xd_lang.Parser.parse_query
      {|let $t := doc("xrpc://peer1/xmk.xml")/child::site/child::people/child::person
        return for $e in doc("xrpc://peer2/xmk.auctions.xml")/descendant::open_auction
               return execute at {"peer2"}
                      function ($t := $t, $e := $e)
                      { if ($e/child::seller/attribute::person = $t/attribute::id)
                        then $e/child::annotation/child::author else () }|}
  in
  (* run the hand-written plan directly (no decomposition — the decomposer
     would otherwise push the whole loop and defeat the measurement) *)
  let stats bulk =
    let setup = make_setup ~persons in
    let session =
      Xd_xrpc.Session.create ~bulk setup.net setup.client
        Xd_xrpc.Message.By_fragment
    in
    Xd_xrpc.Stats.reset setup.net.Xd_xrpc.Network.stats;
    let v = Xd_xrpc.Session.execute session q in
    let st = setup.net.Xd_xrpc.Network.stats in
    (Xd_xrpc.Stats.message_bytes st, Xd_xrpc.Stats.messages st, v)
  in
  let b1, m1, v1 = stats true in
  let b0, m0, v0 = stats false in
  Printf.printf "  without bulk caching: %8d bytes over %4d messages
" b0 m0;
  Printf.printf "  with    bulk caching: %8d bytes over %4d messages (%.1f%% of bytes)
"
    b1 m1
    (100. *. float_of_int b1 /. float_of_int b0);
  if not (Xd_lang.Value.deep_equal v0 v1) then
    print_endline "  WARNING: results differ (expected for identity-sensitive queries)";
  print_newline ()

(* A workload suite beyond the paper's single benchmark query: different
   query shapes over the same two-peer XMark split, showing where each
   strategy pays off. *)
let workloads =
  [
    ( "point lookup",
      {|for $p in doc("xrpc://peer1/xmk.xml")/child::site/child::people/child::person
        return if ($p/attribute::id = "person7") then string($p/child::name) else ()|}
    );
    ( "selection (age < 30)",
      {|for $p in doc("xrpc://peer1/xmk.xml")/child::site/child::people/child::person
        return if ($p/descendant::age < 30) then $p/child::name else ()|} );
    ( "aggregation",
      {|(count(doc("xrpc://peer1/xmk.xml")/descendant::person),
         count(doc("xrpc://peer2/xmk.auctions.xml")/descendant::open_auction))|}
    );
    ( "join + construction",
      {|element report {
          for $a in doc("xrpc://peer2/xmk.auctions.xml")/descendant::open_auction
          for $p in doc("xrpc://peer1/xmk.xml")/child::site/child::people/child::person
          return if ($a/child::seller/attribute::person = $p/attribute::id
                     and $p/descendant::age < 30)
                 then element sale { $p/child::name } else () }|} );
    ( "full subtree export",
      {|doc("xrpc://peer1/xmk.xml")/child::site/child::people|} );
  ]

let workload_suite ~persons () =
  Printf.printf
    "== Workload suite (beyond the paper): transferred bytes per strategy (%d persons) ==
"
    persons;
  Printf.printf "%-24s %12s %12s %12s %12s %8s
" "workload" "data-ship"
    "by-value" "by-fragment" "by-proj" "auto";
  List.iter
    (fun (name, src) ->
      let q = Xd_lang.Parser.parse_query src in
      Printf.printf "%-24s" name;
      List.iter
        (fun strat ->
          let setup = make_setup ~persons in
          let r = E.run setup.net ~client:setup.client strat q in
          Printf.printf " %12d"
            (r.E.timing.E.message_bytes + r.E.timing.E.document_bytes))
        S.all;
      let setup = make_setup ~persons in
      Printf.printf " %8s
"
        (match Xd_core.Cost.choose setup.net q with
        | S.Data_shipping -> "ship"
        | S.By_value -> "value"
        | S.By_fragment -> "frag"
        | S.By_projection -> "proj"))
    workloads;
  print_newline ()

(* Cost-model validation: the static estimator's ranking vs the measured
   ranking on the benchmark query. *)
let ablation_cost_model ~persons () =
  print_endline "== Cost model: estimated vs measured transfer (benchmark query) ==";
  let setup = make_setup ~persons in
  let q = query () in
  let ests = Xd_core.Cost.estimate_all setup.net q in
  List.iter
    (fun e ->
      let r = E.run setup.net ~client:setup.client e.Xd_core.Cost.strategy q in
      Printf.printf "  %-20s estimated %8dB   measured %8dB
"
        (S.to_string e.Xd_core.Cost.strategy)
        (Xd_core.Cost.total e)
        (r.E.timing.E.message_bytes + r.E.timing.E.document_bytes))
    ests;
  Printf.printf "  auto choice: %s

"
    (S.to_string (Xd_core.Cost.choose setup.net q))

(* ---- effects: overlap scheduling & batched envelopes ----------------------- *)

(* Sequential vs parallel/batched execution of read-only fan-out plans:
   the effect analysis proves the calls non-interfering, the session
   overlaps them on the simulated clock (makespan = max, not sum, of the
   call latencies) and coalesces same-peer calls into one batched
   envelope per round trip. Results are checked deep-equal between the
   two modes — the schedule must never change the answer. *)

type effects_row = {
  ef_name : string;
  ef_seq_net_s : float; (* sequential simulated wire time *)
  ef_par_net_s : float; (* parallel/batched simulated wire time *)
  ef_seq_messages : int;
  ef_par_messages : int;
  ef_calls : int;
  ef_groups : int;
  ef_overlapped : int;
  ef_saved_s : float;
  ef_batch_envelopes : int;
  ef_batch_calls : int;
}

(* Hand-written plans (run without re-decomposition, like --plan): the
   overlap structure under test is the plan's, not the decomposer's. *)
let effects_workloads =
  [
    ( "two-peer fan-out",
      {|(execute at {"peer1"} function ()
           { count(doc("xrpc://peer1/xmk.xml")/descendant::person) },
         execute at {"peer2"} function ()
           { count(doc("xrpc://peer2/xmk.auctions.xml")/descendant::open_auction) })|}
    );
    ( "same-peer batch",
      {|(execute at {"peer1"} function ()
           { count(doc("xrpc://peer1/xmk.xml")/descendant::person) },
         execute at {"peer1"} function ()
           { count(doc("xrpc://peer1/xmk.xml")/descendant::age) },
         execute at {"peer2"} function ()
           { count(doc("xrpc://peer2/xmk.auctions.xml")/descendant::open_auction) })|}
    );
    ( "let-chain fan-out",
      {|let $p := execute at {"peer1"} function ()
           { count(doc("xrpc://peer1/xmk.xml")/descendant::person) }
        return let $a := execute at {"peer2"} function ()
           { count(doc("xrpc://peer2/xmk.auctions.xml")/descendant::open_auction) }
        return ($p, $a)|} );
  ]

let effects ~persons () =
  List.map
    (fun (name, src) ->
      let plan () =
        Xd_core.Decompose.plan_of_query S.By_projection
          (Xd_lang.Parser.parse_query src)
      in
      let run parallel =
        let setup = make_setup ~persons in
        E.run_plan ~parallel setup.net ~client:setup.client (plan ())
      in
      let rs = run false in
      let rp = run true in
      if not (Xd_lang.Value.deep_equal rs.E.value rp.E.value) then
        failwith (name ^ ": parallel run diverges from the sequential result");
      let ts = rs.E.timing and tp = rp.E.timing in
      {
        ef_name = name;
        ef_seq_net_s = ts.E.network_s;
        ef_par_net_s = tp.E.network_s;
        ef_seq_messages = ts.E.messages;
        ef_par_messages = tp.E.messages;
        ef_calls = tp.E.calls;
        ef_groups = tp.E.sched_groups;
        ef_overlapped = tp.E.sched_overlapped;
        ef_saved_s = tp.E.sched_saved_s;
        ef_batch_envelopes = tp.E.batch_envelopes;
        ef_batch_calls = tp.E.batch_calls;
      })
    effects_workloads

let print_effects rows =
  print_endline
    "== Effects: overlap scheduling & batched envelopes (sequential vs parallel) ==";
  print_endline
    "   expected shape: fan-out makespan ~ max (not sum) of call latencies; one envelope per peer per round";
  Printf.printf "%-20s %12s %12s %8s %8s %6s %6s %6s\n" "workload" "seq net(ms)"
    "par net(ms)" "seq msg" "par msg" "calls" "groups" "batch";
  List.iter
    (fun r ->
      Printf.printf "%-20s %12.3f %12.3f %8d %8d %6d %6d %6d\n" r.ef_name
        (r.ef_seq_net_s *. 1000.) (r.ef_par_net_s *. 1000.) r.ef_seq_messages
        r.ef_par_messages r.ef_calls r.ef_groups r.ef_batch_envelopes)
    rows;
  print_newline ()

(* BENCH_effects.json: the machine-readable perf record of the overlap
   scheduler — the repo's first BENCH_*.json trajectory point. *)
let effects_json ~persons rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"experiment\": \"effects-overlap-batching\",\n";
  Buffer.add_string b (Printf.sprintf "  \"persons\": %d,\n" persons);
  Buffer.add_string b "  \"workloads\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": %S, \"seq_network_s\": %.6f, \"par_network_s\": \
            %.6f,\n\
           \     \"seq_messages\": %d, \"par_messages\": %d, \"calls\": %d,\n\
           \     \"sched_groups\": %d, \"sched_overlapped\": %d, \
            \"sched_saved_s\": %.6f,\n\
           \     \"batch_envelopes\": %d, \"batch_calls\": %d}%s\n"
           r.ef_name r.ef_seq_net_s r.ef_par_net_s r.ef_seq_messages
           r.ef_par_messages r.ef_calls r.ef_groups r.ef_overlapped
           r.ef_saved_s r.ef_batch_envelopes r.ef_batch_calls
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let write_effects_json ~path ~persons rows =
  let oc = open_out path in
  output_string oc (effects_json ~persons rows);
  close_out oc

(* ---- topo: dynamic topology — forwarding & replica failover --------------- *)

(* The robustness story of the peer catalog, on one read-only call to the
   people owner: a moved document costs one extra redirect round trip; a
   down owner without replicas degrades to data shipping (the whole
   document crosses the wire); the same down owner *with* a catalogued
   replica fails over and ships only the answer. *)

type topo_row = {
  tp_name : string;
  tp_net_s : float; (* simulated wire time *)
  tp_messages : int;
  tp_message_bytes : int;
  tp_document_bytes : int;
  tp_forwarded : int;
  tp_failovers : int;
  tp_fallbacks : int;
}

let topo_query =
  {|execute at {"peer1"} function ()
      { count(doc("xrpc://peer1/xmk.xml")/descendant::person) }|}

let topo ~persons () =
  let run ~fault ~catalog ~churn ~replicate =
    let fault =
      match fault with
      | None -> Xd_xrpc.Fault.none
      | Some s -> (
        match Xd_xrpc.Fault.parse s with
        | Ok spec -> Xd_xrpc.Fault.create ~seed:0 spec
        | Error e -> failwith e)
    in
    let net = Xd_xrpc.Network.create ~fault () in
    let client = Xd_xrpc.Network.new_peer net "client" in
    let peer1 = Xd_xrpc.Network.new_peer net "peer1" in
    let peer2 = Xd_xrpc.Network.new_peer net "peer2" in
    ignore
      (Xd_xmark.Generator.load_pair ~persons ~people_peer:peer1
         ~auctions_peer:peer2 ~people_doc:"xmk.xml"
         ~auctions_doc:"xmk.auctions.xml" ());
    if replicate then
      (* the replica peer holds its own copy of the people document *)
      ignore
        (Xd_xmark.Generator.load_pair ~persons ~people_peer:peer2
           ~auctions_peer:peer2 ~people_doc:"xmk.xml"
           ~auctions_doc:"xmk.auctions.xml" ());
    (match catalog with
    | None -> ()
    | Some spec -> (
      match Xd_topo.Catalog.of_spec spec with
      | Ok cat -> Xd_xrpc.Network.set_catalog net cat
      | Error e -> failwith e));
    (match churn with
    | None -> ()
    | Some spec -> (
      match Xd_topo.Churn.parse spec with
      | Ok events -> Xd_xrpc.Network.set_churn net (Xd_topo.Churn.create events)
      | Error e -> failwith e));
    let plan =
      Xd_core.Decompose.plan_of_query S.By_projection
        (Xd_lang.Parser.parse_query topo_query)
    in
    E.run_plan net ~client plan
  in
  let reference = (run ~fault:None ~catalog:None ~churn:None ~replicate:false).E.value in
  List.map
    (fun (name, fault, catalog, churn, replicate) ->
      let r = run ~fault ~catalog ~churn ~replicate in
      if not (Xd_lang.Value.deep_equal r.E.value reference) then
        failwith (name ^ ": diverges from the owner-up result");
      let t = r.E.timing in
      {
        tp_name = name;
        tp_net_s = t.E.network_s;
        tp_messages = t.E.messages;
        tp_message_bytes = t.E.message_bytes;
        tp_document_bytes = t.E.document_bytes;
        tp_forwarded = t.E.forwarded;
        tp_failovers = t.E.topo_failovers;
        tp_fallbacks = t.E.fallbacks;
      })
    [
      ("direct (owner up)", None, None, None, false);
      ( "forward (doc moved)",
        None,
        Some "peer1/xmk.xml",
        Some "1:move=xmk.xml/peer2",
        true );
      ("degrade (owner down)", Some "peer1:down", None, None, false);
      ( "failover (replica)",
        Some "peer1:down",
        Some "peer1/xmk.xml+peer2",
        None,
        true );
    ]

let print_topo rows =
  print_endline
    "== Topo: catalog forwarding & replica failover (one read-only call) ==";
  print_endline
    "   expected shape: forward costs one redirect round trip; degrade ships \
     the document, failover ships only the answer";
  Printf.printf "%-22s %10s %8s %10s %10s %5s %5s %5s\n" "scenario" "net(ms)"
    "msgs" "msg B" "doc B" "fwd" "fail" "degr";
  List.iter
    (fun r ->
      Printf.printf "%-22s %10.3f %8d %10d %10d %5d %5d %5d\n" r.tp_name
        (r.tp_net_s *. 1000.) r.tp_messages r.tp_message_bytes
        r.tp_document_bytes r.tp_forwarded r.tp_failovers r.tp_fallbacks)
    rows;
  print_newline ()

let topo_json ~persons rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"experiment\": \"topo-forwarding-failover\",\n";
  Buffer.add_string b (Printf.sprintf "  \"persons\": %d,\n" persons);
  Buffer.add_string b "  \"scenarios\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": %S, \"network_s\": %.6f, \"messages\": %d,\n\
           \     \"message_bytes\": %d, \"document_bytes\": %d,\n\
           \     \"forwarded\": %d, \"failovers\": %d, \"fallbacks\": %d}%s\n"
           r.tp_name r.tp_net_s r.tp_messages r.tp_message_bytes
           r.tp_document_bytes r.tp_forwarded r.tp_failovers r.tp_fallbacks
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let write_topo_json ~path ~persons rows =
  let oc = open_out path in
  output_string oc (topo_json ~persons rows);
  close_out oc

(* ---- overload: admission control & graceful load shedding ----------------- *)

(* The robustness story of the bounded-capacity server model, open loop:
   requests arrive at a fixed offered rate (a multiple of the peer's
   service capacity) regardless of completions — each arrival pins the
   simulated clock to its arrival instant while the peer's busy slots
   persist, so a backlog builds exactly as it would at a real server.
   With shedding ON the peer runs a bounded admission queue and every
   request carries a deadline budget: hopeless work is refused up front
   and the queue never grows past its cap, so admitted requests finish
   in budget. With shedding OFF the same peer queues everything FIFO
   with no deadline: every request completes, but past saturation the
   backlog grows without bound and completions are increasingly late —
   counted against the same deadline post hoc. Goodput is the fraction
   of offered requests answered within the deadline. *)

type overload_row = {
  ovr_load : float; (* offered load as a multiple of service capacity *)
  ovr_shedding : bool;
  ovr_offered : int;
  ovr_ok : int; (* completed within the deadline *)
  ovr_late : int; (* completed past the deadline *)
  ovr_shed : int; (* refused with a typed overload/deadline fault *)
  ovr_p50_ms : float; (* completion-latency percentiles (completed only) *)
  ovr_p95_ms : float;
  ovr_p99_ms : float;
}

let ovr_goodput r = float_of_int r.ovr_ok /. float_of_int r.ovr_offered

let overload_capacity = 2
let overload_service_s = 0.01
let overload_deadline_s = 0.1

(* one shared definition of p50/p95/p99 (also used by --explain) *)
let percentile = Xd_obs.Quantile.percentile

let overload_run ~shedding ~load ~requests =
  let net = Xd_xrpc.Network.create () in
  let client = Xd_xrpc.Network.new_peer net "client" in
  let peer1 = Xd_xrpc.Network.new_peer net "peer1" in
  ignore
    (Xd_xrpc.Peer.load_xml peer1 ~doc_name:"d.xml"
       "<r><x>1</x><x>2</x><x>3</x></r>");
  Xd_xrpc.Network.set_overload net
    (Xd_xrpc.Overload.create ~capacity:overload_capacity
       ~queue_cap:(if shedding then 8 else 1_000_000)
       ~service_s:overload_service_s ());
  let plan =
    Xd_core.Decompose.decompose S.By_projection
      (Xd_lang.Parser.parse_query
         {|count(doc("xrpc://peer1/d.xml")/child::r/child::x)|})
  in
  let stats = net.Xd_xrpc.Network.stats in
  (* service capacity in requests/s; arrivals are evenly spaced at
     [load] times that rate *)
  let rate =
    load *. float_of_int overload_capacity /. overload_service_s
  in
  let ok = ref 0 and late = ref 0 and shed = ref 0 in
  let latencies = ref [] in
  for i = 0 to requests - 1 do
    let arrival = float_of_int i /. rate in
    Xd_xrpc.Stats.set_network_s stats arrival;
    let session =
      Xd_xrpc.Session.create
        ?deadline:(if shedding then Some overload_deadline_s else None)
        net client (S.passing S.By_projection)
    in
    match Xd_xrpc.Session.execute session plan.Xd_core.Decompose.query with
    | _ ->
      let l = Xd_xrpc.Stats.network_s stats -. arrival in
      latencies := l :: !latencies;
      if l <= overload_deadline_s then incr ok else incr late
    | exception Xd_xrpc.Message.Xrpc_fault _ -> incr shed
    | exception Xd_xrpc.Message.Xrpc_timeout _ -> incr shed
  done;
  let sorted = Array.of_list !latencies in
  Array.sort compare sorted;
  {
    ovr_load = load;
    ovr_shedding = shedding;
    ovr_offered = requests;
    ovr_ok = !ok;
    ovr_late = !late;
    ovr_shed = !shed;
    ovr_p50_ms = percentile sorted 50. *. 1000.;
    ovr_p95_ms = percentile sorted 95. *. 1000.;
    ovr_p99_ms = percentile sorted 99. *. 1000.;
  }

let overload ~requests () =
  let loads = [ 0.5; 1.0; 1.5; 2.0 ] in
  let rows =
    List.concat_map
      (fun load ->
        let on = overload_run ~shedding:true ~load ~requests in
        let off = overload_run ~shedding:false ~load ~requests in
        (* the acceptance property: past saturation, shedding wins *)
        if load >= 1.5 && ovr_goodput on <= ovr_goodput off then
          failwith
            (Printf.sprintf
               "overload: shedding-on goodput %.3f not above shedding-off \
                %.3f at %.1fx load"
               (ovr_goodput on) (ovr_goodput off) load);
        [ on; off ])
      loads
  in
  rows

let print_overload rows =
  Printf.printf
    "== Overload: admission control & graceful shedding (open loop, %d \
     slots x %.0fms service, %.0fms deadline) ==\n"
    overload_capacity
    (overload_service_s *. 1000.)
    (overload_deadline_s *. 1000.);
  print_endline
    "   expected shape: identical below saturation; past it, shedding \
     keeps goodput near capacity while FIFO latency collapses";
  Printf.printf "%6s %9s %8s %6s %6s %6s %8s %8s %8s %8s\n" "load"
    "shedding" "offered" "ok" "late" "shed" "goodput" "p50ms" "p95ms"
    "p99ms";
  List.iter
    (fun r ->
      Printf.printf "%5.1fx %9s %8d %6d %6d %6d %7.1f%% %8.2f %8.2f %8.2f\n"
        r.ovr_load
        (if r.ovr_shedding then "on" else "off")
        r.ovr_offered r.ovr_ok r.ovr_late r.ovr_shed
        (100. *. ovr_goodput r)
        r.ovr_p50_ms r.ovr_p95_ms r.ovr_p99_ms)
    rows;
  print_newline ()

let overload_json rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"experiment\": \"overload-shedding\",\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"capacity\": %d, \"service_s\": %.3f, \"deadline_s\": %.3f,\n"
       overload_capacity overload_service_s overload_deadline_s);
  Buffer.add_string b "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"load\": %.2f, \"shedding\": %b, \"offered\": %d,\n\
           \     \"ok\": %d, \"late\": %d, \"shed\": %d, \"goodput\": %.4f,\n\
           \     \"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f}%s\n"
           r.ovr_load r.ovr_shedding r.ovr_offered r.ovr_ok r.ovr_late
           r.ovr_shed (ovr_goodput r) r.ovr_p50_ms r.ovr_p95_ms r.ovr_p99_ms
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let write_overload_json ~path rows =
  let oc = open_out path in
  output_string oc (overload_json rows);
  close_out oc

(* ---- codec: compiled wire-shape codecs — shred/serialize fast paths ------- *)

(* The ablation of the static wire-shape analysis: every workload runs
   codec-off (generic XML writer + tree-parse shred) and codec-on
   (compiled string-builder encoders, flat atomic decoders, event-based
   shredding) on identical fresh networks. The wire must be
   byte-identical and the values deep-equal — the codecs only buy time,
   never bytes. Timing buckets are wall-clock, so each workload is
   iterated and summed; the headline number is the shred speedup on the
   atomic-scan workload. *)

type codec_row = {
  cd_name : string;
  cd_iters : int;
  cd_wire_bytes : int; (* one iteration's message bytes (on == off) *)
  cd_messages : int;
  cd_calls : int;
  cd_compiled : int; (* codec-on counters, one iteration *)
  cd_decodes : int;
  cd_event_shreds : int;
  cd_bailouts : int;
  cd_gen_serialize_s : float; (* median iteration x iters (robust total) *)
  cd_cod_serialize_s : float;
  cd_gen_shred_s : float;
  cd_cod_shred_s : float;
}

let codec_speedup gen cod = if cod > 0. then gen /. cod else Float.nan

(* Hand-written plans (like the effects workloads): the call-site shapes
   under test are the plan's own. The headline workload runs on 4x the
   sweep's documents: the timing buckets are wall-clock, so the response
   work has to dwarf per-run fixed costs (codec compilation, GC
   spillover, scheduler noise) for the speedup to be a property of the
   codec rather than of the machine. *)
let codec_workloads =
  [
    (* big all-atomic response: the compiled flat decoder replaces a full
       XML parse + tree walk of the response — the headline fast path.
       Leaf scans (age/name/emailaddress/street/city) keep the wire
       tag-dense: many small atomic-value elements is exactly where a
       node-per-element parse pays most per byte *)
    ( "atomic scan",
      8,
      {|(execute at {"peer1"} function ()
           { data(doc("xrpc://peer1/xmk.xml")/descendant::age) },
         execute at {"peer1"} function ()
           { data(doc("xrpc://peer1/xmk.xml")/descendant::name
                  | doc("xrpc://peer1/xmk.xml")/descendant::emailaddress) },
         execute at {"peer1"} function ()
           { data(doc("xrpc://peer1/xmk.xml")/descendant::street
                  | doc("xrpc://peer1/xmk.xml")/descendant::city) })|}
    );
    (* atomic parameters: the compiled string-builder encoder emits the
       whole request from precomputed constant segments *)
    ( "atomic args",
      1,
      {|let $n := 40 return
        execute at {"peer1"} function ($n := $n)
          { count(doc("xrpc://peer1/xmk.xml")
                  /descendant::person[descendant::age < $n]) }|} );
    (* node-sequence response: the decoder bails to the generic path, but
       the event shredder still routes every <copy> subtree straight
       into the store during the one response parse *)
    ( "node response",
      4,
      {|execute at {"peer1"} function ()
          { doc("xrpc://peer1/xmk.xml")/descendant::person }|} );
  ]

let codec ~persons () =
  let iters = 8 in
  List.map
    (fun (name, mult, src) ->
      let plan () =
        Xd_core.Decompose.plan_of_query S.By_value
          (Xd_lang.Parser.parse_query src)
      in
      (* parallel off: the overlap scheduler coalesces same-peer calls
         into batch envelopes, which stay on the generic writer by
         design — the ablation under test is the per-call codec *)
      let run codec =
        let setup = make_setup ~persons:(persons * mult) in
        let record = ref [] in
        (* settle the allocation debt of document generation (and of the
           previous run) now, outside the timed buckets: GC slices fire
           on allocation, and the µs-scale buckets would otherwise be
           charged for whoever allocated last *)
        Gc.full_major ();
        let r =
          E.run_plan ~record ~codec ~parallel:false setup.net
            ~client:setup.client (plan ())
        in
        (r, !record)
      in
      (* interleave the configs: background load drifts on wall-clock
         scales, and a generic-then-compiled block order would hand one
         config the quiet half of the machine *)
      let pairs = List.init iters (fun _ -> (run false, run true)) in
      let roff = List.map fst pairs and ron = List.map snd pairs in
      let r0off, woff = List.hd roff and r0on, won = List.hd ron in
      if not (Xd_lang.Value.deep_equal r0off.E.value r0on.E.value) then
        failwith (name ^ ": codec-on run diverges from the generic result");
      let text (m : Xd_xrpc.Session.recorded) = m.Xd_xrpc.Session.text in
      if List.map text woff <> List.map text won then
        failwith (name ^ ": codec-on wire differs from the generic wire");
      (* median per-iteration bucket, not the sum: one GC pause or
         scheduler stall inside a timed section would otherwise dominate
         the whole comparison *)
      let median f rs =
        let a = Array.of_list (List.map (fun (r, _) -> f r.E.timing) rs) in
        Array.sort compare a;
        let n = Array.length a in
        if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.
      in
      let sum f rs =
        float_of_int iters *. median f rs
      in
      let t = r0on.E.timing in
      {
        cd_name = name;
        cd_iters = iters;
        cd_wire_bytes = t.E.message_bytes;
        cd_messages = t.E.messages;
        cd_calls = t.E.calls;
        cd_compiled = t.E.codec_compiled;
        cd_decodes = t.E.codec_decodes;
        cd_event_shreds = t.E.codec_event_shreds;
        cd_bailouts = t.E.codec_bailouts;
        cd_gen_serialize_s = sum (fun t -> t.E.serialize_s) roff;
        cd_cod_serialize_s = sum (fun t -> t.E.serialize_s) ron;
        cd_gen_shred_s = sum (fun t -> t.E.shred_s) roff;
        cd_cod_shred_s = sum (fun t -> t.E.shred_s) ron;
      })
    codec_workloads

let print_codec ~persons rows =
  print_endline
    "== Codec: compiled wire-shape codecs (generic vs compiled, identical \
     wire) ==";
  print_endline
    "   expected shape: all-atomic call sites compile; shred collapses to \
     a flat scan; bailout paths stay correct";
  Printf.printf "%-14s %8s %5s %5s %5s %5s %5s %10s %10s %8s %8s\n" "workload"
    "wire B" "comp" "dec" "evt" "bail" "calls" "ser x" "shred x" "gen ms"
    "cod ms";
  List.iter
    (fun r ->
      Printf.printf "%-14s %8d %5d %5d %5d %5d %5d %9.1fx %9.1fx %8.3f %8.3f\n"
        r.cd_name r.cd_wire_bytes r.cd_compiled r.cd_decodes r.cd_event_shreds
        r.cd_bailouts r.cd_calls
        (codec_speedup r.cd_gen_serialize_s r.cd_cod_serialize_s)
        (codec_speedup r.cd_gen_shred_s r.cd_cod_shred_s)
        (r.cd_gen_shred_s *. 1000.) (r.cd_cod_shred_s *. 1000.))
    rows;
  (* the acceptance property, at benchmark scale only (smoke-scale totals
     are microseconds of pure overhead): the compiled decoder must shred
     the atomic-scan responses at least 5x faster than the generic parse *)
  (match List.find_opt (fun r -> r.cd_name = "atomic scan") rows with
  | Some r when persons >= 160 ->
    let x = codec_speedup r.cd_gen_shred_s r.cd_cod_shred_s in
    if not (x >= 5.0) then
      failwith
        (Printf.sprintf
           "codec: atomic-scan shred speedup %.1fx below the 5x target" x)
  | _ -> ());
  print_newline ()

let codec_json ~persons rows =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"experiment\": \"codec-compiled-wire-shapes\",\n";
  Buffer.add_string b (Printf.sprintf "  \"persons\": %d,\n" persons);
  Buffer.add_string b "  \"workloads\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": %S, \"iters\": %d, \"wire_bytes\": %d, \
            \"messages\": %d, \"calls\": %d,\n\
           \     \"codec_compiled\": %d, \"codec_decodes\": %d, \
            \"codec_event_shreds\": %d, \"codec_bailouts\": %d,\n\
           \     \"generic_serialize_s\": %.6f, \"codec_serialize_s\": %.6f,\n\
           \     \"generic_shred_s\": %.6f, \"codec_shred_s\": %.6f}%s\n"
           r.cd_name r.cd_iters r.cd_wire_bytes r.cd_messages r.cd_calls
           r.cd_compiled r.cd_decodes r.cd_event_shreds r.cd_bailouts
           r.cd_gen_serialize_s r.cd_cod_serialize_s r.cd_gen_shred_s
           r.cd_cod_shred_s
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let write_codec_json ~path ~persons rows =
  let oc = open_out path in
  output_string oc (codec_json ~persons rows);
  close_out oc

(* Sanity: all strategies produce the reference result. *)
let verify ~persons () =
  let setup = make_setup ~persons in
  let q = query () in
  let reference = E.run_local setup.net ~client:setup.client q in
  List.iter
    (fun strat ->
      let setup = make_setup ~persons in
      let r = E.run setup.net ~client:setup.client strat q in
      if not (Xd_lang.Value.deep_equal r.E.value reference) then
        failwith
          (Printf.sprintf "strategy %s diverges from local semantics!"
             (S.to_string strat)))
    S.all;
  Printf.printf
    "verified: all strategies deep-equal to local semantics (%d persons, %d result items)\n\n"
    persons (List.length reference)
