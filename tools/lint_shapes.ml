(* Source lint for the library tree, wired into `dune build @lint`.

   The codec layer generates wire bytes from compiled closures, which
   makes a handful of shortcuts uniquely dangerous there — and cheap to
   ban everywhere:

   - `Obj.magic`: defeats the type system; a shape descriptor that lies
     about a value's type must be a bailout, never a cast.
   - `Printf.printf` in lib/: libraries must not write to stdout; all
     diagnostics go through Xd_obs or a Format.formatter the caller
     picks (bin/ and bench/ own stdout, so they are not scanned).
   - catch-all `with _ ->`: swallows Stack_overflow / Out_of_memory and
     turns codec bugs into silent generic fallbacks instead of faults;
     handlers must name the exceptions they mean.

   Usage: lint_shapes.exe DIR...  — scans every .ml/.mli under each DIR
   and exits non-zero with file:line diagnostics on any hit. *)

let banned =
  [
    ("Obj.magic", "unsafe cast (use a typed bailout instead)");
    ("Printf.printf", "stdout write in library code (use Xd_obs or a formatter)");
    ("with _ ->", "catch-all exception handler (name the exceptions)");
  ]

let violations = ref 0

let scan_line file lineno line =
  List.iter
    (fun (pat, why) ->
      let plen = String.length pat in
      let llen = String.length line in
      let rec find i =
        if i + plen > llen then ()
        else if String.sub line i plen = pat then begin
          incr violations;
          Printf.eprintf "%s:%d: banned construct %S — %s\n" file lineno pat
            why
        end
        else find (i + 1)
      in
      find 0)
    banned

let scan_file file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lineno = ref 0 in
      try
        while true do
          incr lineno;
          scan_line file !lineno (input_line ic)
        done
      with End_of_file -> ())

let is_source file =
  Filename.check_suffix file ".ml" || Filename.check_suffix file ".mli"

let rec scan_dir dir =
  Array.iter
    (fun entry ->
      let path = Filename.concat dir entry in
      if Sys.is_directory path then scan_dir path
      else if is_source entry then scan_file path)
    (Sys.readdir dir)

let () =
  let dirs =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as dirs) -> dirs
    | _ ->
      prerr_endline "usage: lint_shapes.exe DIR...";
      exit 2
  in
  List.iter scan_dir dirs;
  if !violations > 0 then begin
    Printf.eprintf "lint_shapes: %d violation(s)\n" !violations;
    exit 1
  end
