(* Graphviz export of dependency graphs, in the style of the paper's
   Fig. 2: solid arrows are parse edges, dashed arrows are varref edges,
   vertices are labelled with their grammar rule and salient value. *)

module Ast = Xd_lang.Ast

let rule_label (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Literal (Ast.A_string s) ->
    let s = if String.length s > 18 then String.sub s 0 15 ^ "..." else s in
    Printf.sprintf "Literal[%s]" s
  | Ast.Literal (Ast.A_int i) -> Printf.sprintf "Literal[%d]" i
  | Ast.Literal (Ast.A_float f) -> Printf.sprintf "Literal[%g]" f
  | Ast.Literal (Ast.A_bool b) -> Printf.sprintf "Literal[%b]" b
  | Ast.Var_ref v -> Printf.sprintf "VarRef[$%s]" v
  | Ast.Seq [] -> "()"
  | Ast.Seq _ -> "ExprSeq"
  | Ast.For (v, _, _) -> Printf.sprintf "ForExpr[$%s]" v
  | Ast.Let (v, _, _) -> Printf.sprintf "LetExpr[$%s]" v
  | Ast.If _ -> "IfExpr"
  | Ast.Typeswitch _ -> "Typeswitch"
  | Ast.Value_cmp (op, _, _) ->
    Printf.sprintf "CompExpr[%s]" (Xd_lang.Pp.value_comp_name op)
  | Ast.Node_cmp (op, _, _) ->
    Printf.sprintf "NodeCmp[%s]" (Xd_lang.Pp.node_comp_name op)
  | Ast.Arith (op, _, _) ->
    Printf.sprintf "Arith[%s]" (Xd_lang.Pp.arith_op_name op)
  | Ast.And _ -> "And"
  | Ast.Or _ -> "Or"
  | Ast.Order_by _ -> "OrderExpr"
  | Ast.Node_set (op, _, _) ->
    Printf.sprintf "NodeSetExpr[%s]" (Xd_lang.Pp.set_op_name op)
  | Ast.Doc_constr _ -> "Constructor[document]"
  | Ast.Text_constr _ -> "Constructor[text]"
  | Ast.Elem_constr (Ast.Fixed_name n, _) ->
    Printf.sprintf "Constructor[<%s>]" n
  | Ast.Elem_constr (Ast.Computed_name _, _) -> "Constructor[element]"
  | Ast.Attr_constr _ -> "Constructor[attribute]"
  | Ast.Step (_, ax, t) ->
    Printf.sprintf "AxisStep[%s::%s]" (Xd_lang.Pp.axis_name ax)
      (Xd_lang.Pp.node_test_name t)
  | Ast.Fun_call (n, _) -> Printf.sprintf "FunCall[%s]" n
  | Ast.Execute_at _ -> "XRPCExpr"
  | Ast.Insert_node _ -> "InsertExpr"
  | Ast.Delete_node _ -> "DeleteExpr"
  | Ast.Replace_value _ -> "ReplaceExpr"
  | Ast.Rename_node _ -> "RenameExpr"

let escape s =
  String.concat ""
    (List.map
       (function '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let to_dot ?(name = "dgraph") (g : Dgraph.t) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf "  node [shape=box, fontsize=10];\n";
  let vs =
    List.sort (fun a b -> compare a.Ast.id b.Ast.id) (Dgraph.vertices g)
  in
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "  v%d [label=\"v%d:%s\"];\n" v.Ast.id v.Ast.id
           (escape (rule_label v))))
    vs;
  (* parse edges *)
  List.iter
    (fun v ->
      List.iter
        (fun c ->
          Buffer.add_string buf
            (Printf.sprintf "  v%d -> v%d;\n" v.Ast.id c.Ast.id))
        (Ast.children v))
    vs;
  (* varref edges *)
  List.iter
    (fun v ->
      match Dgraph.binder_of g v.Ast.id with
      | Some b ->
        Buffer.add_string buf
          (Printf.sprintf "  v%d -> v%d [style=dashed, constraint=false];\n"
             v.Ast.id b)
      | None -> ())
    vs;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
