(** Graphviz export of dependency graphs, in the style of the paper's
    Fig. 2: solid arrows are parse edges, dashed arrows varref edges. *)

val rule_label : Xd_lang.Ast.expr -> string
val to_dot : ?name:string -> Dgraph.t -> string
