(** The dependency graph (d-graph) of Section III.

    Vertices are the AST expression nodes (each carries a unique id);
    parse edges are the AST edges; a varref edge connects every variable
    reference to the value expression of its binder (the paper routes it
    through a Var vertex whose only parse child is that value expression —
    same reachability). *)

module Ast = Xd_lang.Ast
module Iset : Set.S with type elt = int

(** A fn:doc call site in a URI dependency set: literal URI, computed URI
    (wildcard), or a node constructor (artificial per-site URI). *)
type uri_kind = Uri of string | Wildcard | Constr

type uri_dep = { uri : uri_kind; site : int  (** call-site vertex id *) }

val uri_kind_to_string : uri_kind -> string
val pp_uri_dep : Format.formatter -> uri_dep -> unit

type t

val build : Ast.expr -> t
val vertex : t -> int -> Ast.expr
val vertices : t -> Ast.expr list
val parent_of : t -> int -> int option
val binder_of : t -> int -> int option
(** Varref edge target: the binder's value-expression vertex. *)

val varrefs_of : t -> int -> int list

val parse_reaches : t -> int -> int -> bool
(** [parse_reaches g v u] — v ⤳p u (u in v's parse subtree; reflexive). *)

val reachable_set : t -> int -> Iset.t
val depends : t -> int -> int -> bool
(** [depends g x y] — x ⤳ y over parse and varref edges (reflexive). *)

val in_subgraph : t -> int -> int -> bool

val witness : t -> int -> int -> int list option
(** [witness g x y] — the shortest chain of vertex ids realizing x ⤳ y
    over parse-child and varref edges (reflexive: [witness g x x] is
    [Some [x]]). If only y ⤳ x holds, that chain is returned reversed, so
    a result always starts at [x] and ends at [y]. [None] when the two
    vertices are unrelated or unknown to the graph. Used by the
    {!Xd_verify} diagnostics to print the dependency path that carries a
    shipped value to the vertex that misuses it. *)

val outgoing_varrefs : t -> int -> (int * int) list
(** Varref edges leaving the subgraph of a vertex: [(varref vertex, binder
    value vertex)] pairs. These become the XRPC parameters at insertion. *)

val direct_uri_deps_of_vertex : Ast.expr -> uri_dep list

val uri_deps : t -> int -> uri_dep list
(** D(v) of Section IV: doc call sites reachable via parse edges. *)

val extended_uri_deps : t -> int -> uri_dep list
(** D over full ⤳ reachability — the conservative footnote-3 refinement
    used by the hasMatchingDoc guard. *)

val uris_match : uri_kind -> uri_kind -> bool

val has_matching_doc_in : uri_dep list -> bool
(** Two *distinct* call sites with matching URIs — the mixed-call danger
    (the paper's definition has an evident [vi = vj] typo; the prose
    requires two different applications). *)

val has_matching_doc : t -> int -> bool

val xrpc_prefix : string
val split_xrpc_uri : string -> (string * string) option
(** [split_xrpc_uri "xrpc://host/doc.xml"] is [Some ("host", "doc.xml")]. *)

val xrpc_hosts : uri_dep list -> string list
