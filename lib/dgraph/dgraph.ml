(* The dependency graph (d-graph) of Section III. Vertices are the AST
   expression nodes themselves (each carries a unique id); parse edges are
   the AST edges; a varref edge connects each variable reference to the
   value expression of its binder (the paper routes it through a Var vertex
   whose only parse child is that value expression — same reachability).

   Reachability notions:
     parse_reaches v u  —  v ⤳p u  (u in the parse subtree of v; reflexive)
     depends x y        —  x ⤳ y   (reachable via parse and varref edges;
                                     reflexive)

   The URI dependency set D(v) of Section IV tags every fn:doc() call site
   reachable from v via parse edges with its vertex id; computed URIs
   become wildcards; element constructors get an artificial per-site URI.
   [extended_uri_deps] unions D over everything reachable via ⤳, which is
   the conservative version of the footnote-3 refinement used by the
   by-fragment / by-projection conditions (hasMatchingDoc). *)

module Ast = Xd_lang.Ast
module Iset = Set.Make (Int)

type uri_kind = Uri of string | Wildcard | Constr

type uri_dep = { uri : uri_kind; site : int }

let uri_kind_to_string = function
  | Uri u -> u
  | Wildcard -> "*"
  | Constr -> "#constructed"

let pp_uri_dep fmt d =
  Fmt.pf fmt "%s::v%d" (uri_kind_to_string d.uri) d.site

type t = {
  root : Ast.expr;
  by_id : (int, Ast.expr) Hashtbl.t;
  parent : (int, int) Hashtbl.t; (* AST child -> parent *)
  binder : (int, int) Hashtbl.t; (* varref id -> binder value-expr id *)
  uses : (int, int list) Hashtbl.t; (* binder value-expr id -> varref ids *)
  mutable reach_memo : (int, Iset.t) Hashtbl.t;
  mutable deps_memo : (int, uri_dep list) Hashtbl.t;
}

(* Scope environment: variable name -> value-expression id of its binder. *)
let build (root : Ast.expr) =
  let by_id = Hashtbl.create 256 in
  let parent = Hashtbl.create 256 in
  let binder = Hashtbl.create 64 in
  let uses = Hashtbl.create 64 in
  let add_use b r =
    Hashtbl.replace uses b (r :: Option.value ~default:[] (Hashtbl.find_opt uses b))
  in
  let rec go scope (e : Ast.expr) =
    Hashtbl.replace by_id e.Ast.id e;
    (match e.desc with
    | Ast.Var_ref v -> (
      match List.assoc_opt v scope with
      | Some bid ->
        Hashtbl.replace binder e.Ast.id bid;
        add_use bid e.Ast.id
      | None -> () (* free variable of the whole query/function body *))
    | _ -> ());
    let cs = Ast.children e in
    let bnd = Ast.bound_in_children e in
    (* a variable bound by this node maps to the vertex of its value expr *)
    let value_vertex_for v =
      match e.desc with
      | Ast.For (v', e1, _) when v' = v -> Some e1.Ast.id
      | Ast.Let (v', e1, _) when v' = v -> Some e1.Ast.id
      | Ast.Order_by (v', e1, _, _) when v' = v -> Some e1.Ast.id
      | Ast.Typeswitch (e0, _, _, _) -> Some e0.Ast.id
      | Ast.Execute_at x -> (
        match List.assoc_opt v x.params with
        | Some pe -> Some pe.Ast.id
        | None -> None)
      | _ -> None
    in
    List.iter2
      (fun child extra ->
        Hashtbl.replace parent child.Ast.id e.Ast.id;
        let scope' =
          List.fold_left
            (fun sc v ->
              match value_vertex_for v with
              | Some vid -> (v, vid) :: sc
              | None -> sc)
            scope extra
        in
        go scope' child)
      cs bnd
  in
  go [] root;
  {
    root;
    by_id;
    parent;
    binder;
    uses;
    reach_memo = Hashtbl.create 64;
    deps_memo = Hashtbl.create 64;
  }

let vertex t id =
  match Hashtbl.find_opt t.by_id id with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Dgraph.vertex: unknown id %d" id)

let vertices t = Hashtbl.fold (fun _ e acc -> e :: acc) t.by_id []

let parent_of t id = Hashtbl.find_opt t.parent id

let binder_of t id = Hashtbl.find_opt t.binder id

let varrefs_of t binder_value_id =
  Option.value ~default:[] (Hashtbl.find_opt t.uses binder_value_id)

(* v ⤳p u : u is in the parse subtree of v (reflexive). Walk up from u. *)
let parse_reaches t v u =
  let rec up x = x = v || (match parent_of t x with Some p -> up p | None -> false) in
  up u

(* Full dependency reachability x ⤳ y over parse + varref edges,
   memoized per source vertex. *)
let reachable_set t x =
  match Hashtbl.find_opt t.reach_memo x with
  | Some s -> s
  | None ->
    let visited = ref Iset.empty in
    let rec dfs id =
      if not (Iset.mem id !visited) then begin
        visited := Iset.add id !visited;
        let e = vertex t id in
        List.iter (fun c -> dfs c.Ast.id) (Ast.children e);
        match binder_of t id with Some b -> dfs b | None -> ()
      end
    in
    dfs x;
    Hashtbl.replace t.reach_memo x !visited;
    !visited

let depends t x y = Iset.mem y (reachable_set t x)

(* A witness path from x to y over parse-child and varref edges: the chain
   of vertices realizing x ⤳ y, found by BFS (so it is shortest). Used by
   the xd_verify diagnostics to explain *why* a vertex observes a shipped
   value. When only the reverse direction is connected (e.g. explaining a
   vertex inside the subtree of an execute-at), the y ⤳ x chain is
   returned reversed, so the result always starts at x and ends at y. *)
let witness_directed t x y =
  if not (Hashtbl.mem t.by_id x) || not (Hashtbl.mem t.by_id y) then None
  else begin
    let pred = Hashtbl.create 32 in
    let queue = Queue.create () in
    Queue.add x queue;
    Hashtbl.replace pred x x;
    let found = ref (x = y) in
    while (not !found) && not (Queue.is_empty queue) do
      let id = Queue.pop queue in
      let push next =
        if not (Hashtbl.mem pred next) then begin
          Hashtbl.replace pred next id;
          if next = y then found := true else Queue.add next queue
        end
      in
      List.iter (fun c -> push c.Ast.id) (Ast.children (vertex t id));
      match binder_of t id with Some b -> push b | None -> ()
    done;
    if not !found then None
    else begin
      let rec back id acc =
        if id = x then x :: acc else back (Hashtbl.find pred id) (id :: acc)
      in
      Some (back y [])
    end
  end

let witness t x y =
  match witness_directed t x y with
  | Some p -> Some p
  | None -> Option.map List.rev (witness_directed t y x)

let in_subgraph t rs n = parse_reaches t rs n

(* Varref edges leaving the subgraph of rs: references inside whose binder
   value expression lies outside. These become the XRPC parameters. *)
let outgoing_varrefs t rs =
  Hashtbl.fold
    (fun vr b acc ->
      if parse_reaches t rs vr && not (parse_reaches t rs b) then
        (vr, b) :: acc
      else acc)
    t.binder []

(* ---- URI dependency sets ---------------------------------------------- *)

let direct_uri_deps_of_vertex (e : Ast.expr) =
  match e.desc with
  | Ast.Fun_call (("doc" | "collection"), args) -> (
    match args with
    | [ { desc = Ast.Literal (Ast.A_string u); _ } ] ->
      [ { uri = Uri u; site = e.Ast.id } ]
    | _ -> [ { uri = Wildcard; site = e.Ast.id } ])
  | Ast.Elem_constr _ | Ast.Doc_constr _ | Ast.Text_constr _
  | Ast.Attr_constr _ ->
    [ { uri = Constr; site = e.Ast.id } ]
  | _ -> []

(* D(v): doc call sites reachable via parse edges only. *)
let uri_deps t v =
  match Hashtbl.find_opt t.deps_memo v with
  | Some d -> d
  | None ->
    let e = vertex t v in
    let acc = ref [] in
    Ast.iter (fun x -> acc := direct_uri_deps_of_vertex x @ !acc) e;
    let d = !acc in
    Hashtbl.replace t.deps_memo v d;
    d

(* Extended D over full dependency reachability (footnote 3, conservative):
   every doc site any vertex reachable from v depends on. *)
let extended_uri_deps t v =
  let s = reachable_set t v in
  Iset.fold
    (fun id acc -> direct_uri_deps_of_vertex (vertex t id) @ acc)
    s []

let uris_match a b =
  match (a, b) with
  | Uri x, Uri y -> x = y
  | Wildcard, (Uri _ | Wildcard) | Uri _, Wildcard -> true
  | Constr, _ | _, Constr -> false

(* hasMatchingDoc: two *distinct* fn:doc call sites with matching URIs —
   the mixed-call danger (the paper's definition has an evident vi = vj
   typo; the prose requires two different applications). *)
let has_matching_doc_in deps =
  let rec go = function
    | [] -> false
    | d :: rest ->
      List.exists (fun d' -> d'.site <> d.site && uris_match d.uri d'.uri) rest
      || go rest
  in
  go deps

let has_matching_doc t v = has_matching_doc_in (extended_uri_deps t v)

(* Hosts referenced by xrpc:// URIs in D(v). *)
let xrpc_prefix = "xrpc://"

let split_xrpc_uri u =
  (* xrpc://host/path -> Some (host, path) *)
  let n = String.length xrpc_prefix in
  if String.length u > n && String.sub u 0 n = xrpc_prefix then
    let rest = String.sub u n (String.length u - n) in
    match String.index_opt rest '/' with
    | Some i ->
      Some
        ( String.sub rest 0 i,
          String.sub rest (i + 1) (String.length rest - i - 1) )
    | None -> Some (rest, "")
  else None

let xrpc_hosts deps =
  List.filter_map
    (fun d ->
      match d.uri with
      | Uri u -> Option.map fst (split_xrpc_uri u)
      | Wildcard | Constr -> None)
    deps
  |> List.sort_uniq compare
