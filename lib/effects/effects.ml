(* Static effect and interference analysis: an abstract interpretation of
   XCore computing, per expression and per user function, a read/write
   footprint — sets of (document, projection-path) pairs plus "anywhere"
   bits — by the same monotone-fixpoint scheme as lib/types/infer.ml.

   The value abstraction tracks *provenance*: which documents (and which
   paths within them) the nodes of a value may have been selected from.
   An axis step both extends the provenance paths of its input and records
   the extended selection as a read; content-consuming positions
   (atomization, serialization, constructors) record the whole subtrees of
   their operands as read; XQUF primitives record writes at their target's
   provenance (widened to the parent selection where the update can
   disturb sibling selections: insert before/after and rename).

   Documents are keyed canonically as "host/name": an absolute
   xrpc://h/n URI is (h, n); a relative URI names a document at the site
   the expression executes on, which the walk threads through execute-at
   boundaries. A computed URI or unknown site widens to "any document".

   Soundness contract (enforced by the QCheck harness in
   test/test_effects.ml): every node the evaluator observes through an
   axis step over a store document lies inside the evaluation of some
   inferred read path of that document. The scheduler only ever overlaps
   calls whose footprints are pure (no writes), and the verifier
   re-derives these footprints independently to vet any schedule. *)

module Ast = Xd_lang.Ast
module Path = Xd_projection.Path
module Smap = Map.Make (String)

(* ---- bounded path sets ------------------------------------------------ *)

(* The lattice must be finite: path sets are capped in breadth and paths
   in depth; exceeding either widens to the whole-document path
   (descendant-or-self::node() from the root), which every selection is
   a subset of. *)
let max_paths = 8
let max_steps = 6

let top_path : Path.t = [ Path.Axis (Ast.Descendant_or_self, Ast.Kind_node) ]

module Pset = struct
  type t = Path.t list (* sorted, deduplicated *)

  let norm (ps : Path.t list) : t =
    let ps =
      List.map
        (fun p -> if List.length p > max_steps then top_path else p)
        ps
    in
    let ps = List.sort_uniq compare ps in
    if List.length ps > max_paths || List.mem top_path ps then [ top_path ]
    else ps

  let root : t = [ [] ] (* the document node itself *)
  let top : t = [ top_path ]
  let paths (t : t) : Path.t list = t
  let union a b = norm (a @ b)
  let extend (t : t) (step : Path.pstep) = norm (List.map (fun p -> p @ [ step ]) t)

  (* Close each selection over its subtree: the form recorded when the
     content below the selected nodes is consumed. *)
  let subtree (t : t) =
    norm
      (List.map
         (fun p ->
           match List.rev p with
           | Path.Axis (Ast.Descendant_or_self, Ast.Kind_node) :: _ -> p
           | _ -> p @ [ Path.Axis (Ast.Descendant_or_self, Ast.Kind_node) ])
         t)

  (* Widen a write selection to the parent level: the form recorded for
     updates that can disturb the *sibling* selections of their target
     (insert before/after changes the parent's child list; rename changes
     what a name test on the parent selects). Only a literal child (or
     attribute) last step can be peeled soundly; anything else widens to
     the whole document. *)
  let parents (t : t) =
    norm
      (List.map
         (fun p ->
           match List.rev p with
           | Path.Axis ((Ast.Child | Ast.Attribute), _) :: rest ->
             List.rev rest
           | [] -> [] (* the root has no parent; keep the root *)
           | _ -> top_path)
         t)

  (* May the two selections interfere — share nodes, or stand in an
     ancestor/descendant relation (a write at a node disturbs its whole
     subtree, and reads recorded as subtree closures cover the rest)?
     The only disjointness proofs are two literal child steps with
     different names at the same depth, and a child step against an
     attribute step (attribute nodes never lie inside element-child
     subtrees). *)
  let rec may_overlap_paths (p : Path.t) (q : Path.t) =
    match (p, q) with
    | [], _ | _, [] -> true
    | Path.Axis (Ast.Child, Ast.Name_test a) :: p',
      Path.Axis (Ast.Child, Ast.Name_test b) :: q' ->
      if a = b then may_overlap_paths p' q' else false
    | Path.Axis (Ast.Attribute, Ast.Name_test a) :: _,
      Path.Axis (Ast.Attribute, Ast.Name_test b) :: _
      when a <> b ->
      false
    | Path.Axis (Ast.Child, _) :: _, Path.Axis (Ast.Attribute, _) :: _
    | Path.Axis (Ast.Attribute, _) :: _, Path.Axis (Ast.Child, _) :: _ ->
      false
    | _ -> true

  let overlap (a : t) (b : t) =
    List.exists (fun p -> List.exists (may_overlap_paths p) b) a

  let to_string (t : t) =
    String.concat "," (List.map Path.to_string t)
end

(* ---- the value abstraction and footprints ----------------------------- *)

(* Provenance of a value: per-document path selections its nodes may come
   from; [vany] = may contain nodes of unknown documents. *)
type absval = { srcs : Pset.t Smap.t; vany : bool }

type footprint = {
  reads : Pset.t Smap.t;
  r_any : bool;
  writes : Pset.t Smap.t;
  w_any : bool;
}

let av_empty = { srcs = Smap.empty; vany = false }
let av_any = { srcs = Smap.empty; vany = true }
let fp_empty = { reads = Smap.empty; r_any = false; writes = Smap.empty; w_any = false }

let map_union = Smap.union (fun _ a b -> Some (Pset.union a b))

let av_join a b = { srcs = map_union a.srcs b.srcs; vany = a.vany || b.vany }

let fp_join a b =
  {
    reads = map_union a.reads b.reads;
    r_any = a.r_any || b.r_any;
    writes = map_union a.writes b.writes;
    w_any = a.w_any || b.w_any;
  }

let av_equal a b = a.vany = b.vany && Smap.equal ( = ) a.srcs b.srcs

let fp_equal a b =
  a.r_any = b.r_any && a.w_any = b.w_any
  && Smap.equal ( = ) a.reads b.reads
  && Smap.equal ( = ) a.writes b.writes

let pure fp = (not fp.w_any) && Smap.is_empty fp.writes

let reads fp = List.map (fun (d, ps) -> (d, Pset.paths ps)) (Smap.bindings fp.reads)
let writes fp = List.map (fun (d, ps) -> (d, Pset.paths ps)) (Smap.bindings fp.writes)
let reads_any fp = fp.r_any
let writes_any fp = fp.w_any

(* Does a write set touch an access (read or write) set? *)
let sets_touch (w : Pset.t Smap.t) ~w_any (acc : Pset.t Smap.t) ~acc_any =
  if w_any then acc_any || not (Smap.is_empty acc)
  else if acc_any then not (Smap.is_empty w)
  else
    Smap.exists
      (fun doc ps ->
        match Smap.find_opt doc acc with
        | Some qs -> Pset.overlap ps qs
        | None -> false)
      w

(* Two footprints interfere when either's writes may touch the other's
   reads or writes. Read-read never interferes. *)
let interferes a b =
  let touches w =
    sets_touch w.writes ~w_any:w.w_any
      (map_union b.reads b.writes)
      ~acc_any:(b.r_any || b.w_any)
  and touches' w =
    sets_touch w.writes ~w_any:w.w_any
      (map_union a.reads a.writes)
      ~acc_any:(a.r_any || a.w_any)
  in
  touches a || touches' b

(* ---- footprint helpers ------------------------------------------------- *)

let read_of av =
  { fp_empty with reads = av.srcs; r_any = av.vany }

let subtree_read av =
  { fp_empty with reads = Smap.map Pset.subtree av.srcs; r_any = av.vany }

let write_of av =
  { fp_empty with writes = av.srcs; w_any = av.vany }

let parent_write av =
  {
    fp_empty with
    writes = map_union av.srcs (Smap.map Pset.parents av.srcs);
    w_any = av.vany;
  }

(* Canonical document key: "host/name". *)
let doc_key site uri =
  match Xd_dgraph.Dgraph.split_xrpc_uri uri with
  | Some (h, n) -> Some (h ^ "/" ^ n)
  | None -> ( match site with Some s -> Some (s ^ "/" ^ uri) | None -> None)

(* ---- interpreter state ------------------------------------------------ *)

type fstate = {
  mutable params : absval list;
  mutable result : absval;
  mutable eff : footprint; (* effects of one call of the body *)
}

type st = {
  funcs : Ast.func list;
  ftab : (string, fstate) Hashtbl.t;
  fps : (int, footprint) Hashtbl.t; (* vertex id -> footprint of its eval *)
  mutable changed : bool;
}

type result = {
  fps : (int, footprint) Hashtbl.t;
  fsummaries : (string, footprint) Hashtbl.t;
}

let footprint res id = Hashtbl.find_opt res.fps id
let footprint_of res (e : Ast.expr) = footprint res e.Ast.id

(* ---- builtin classification ------------------------------------------- *)

(* Builtins that return (a subset of) their argument nodes unchanged and
   read no content. *)
let passthrough_builtins =
  [
    "reverse"; "subsequence"; "item-at"; "insert-before"; "remove";
    "zero-or-one"; "exactly-one"; "one-or-more";
  ]

(* Builtins reading only shallow node properties (name, uri) — recorded as
   reads of the selections themselves, so a concurrent rename/replace at
   those nodes is seen as interfering. *)
let shallow_builtins = [ "name"; "local-name"; "base-uri"; "document-uri" ]

(* Builtins that inspect no node content at all. *)
let noread_builtins =
  [ "count"; "empty"; "exists"; "not"; "boolean"; "true"; "false";
    "static-base-uri"; "default-collation"; "current-dateTime"; "error" ]

(* ---- the abstract walk ------------------------------------------------ *)

let record (st : st) (e : Ast.expr) fp =
  Hashtbl.replace st.fps e.Ast.id fp;
  fp

let rec walk (st : st) env site (e : Ast.expr) : absval * footprint =
  let av, fp =
    match e.Ast.desc with
    | Ast.Literal _ -> (av_empty, fp_empty)
    | Ast.Var_ref v -> (
      match Smap.find_opt v env with
      | Some av -> (av, fp_empty)
      | None -> (av_any, fp_empty))
    | Ast.Seq es ->
      List.fold_left
        (fun (av, fp) c ->
          let av', fp' = walk st env site c in
          (av_join av av', fp_join fp fp'))
        (av_empty, fp_empty) es
    | Ast.For (v, src, body) ->
      let asrc, esrc = walk st env site src in
      let ab, eb = walk st (Smap.add v asrc env) site body in
      (ab, fp_join esrc eb)
    | Ast.Let (v, value, body) ->
      let av, ev = walk st env site value in
      let ab, eb = walk st (Smap.add v av env) site body in
      (ab, fp_join ev eb)
    | Ast.If (c, t, f) ->
      let _, ec = walk st env site c in
      let at, et = walk st env site t in
      let af, ef = walk st env site f in
      (av_join at af, fp_join ec (fp_join et ef))
    | Ast.Typeswitch (e0, cases, dv, dflt) ->
      let a0, e0f = walk st env site e0 in
      let branches =
        List.map (fun (cv, _, ce) -> walk st (Smap.add cv a0 env) site ce) cases
        @ [ walk st (Smap.add dv a0 env) site dflt ]
      in
      List.fold_left
        (fun (av, fp) (av', fp') -> (av_join av av', fp_join fp fp'))
        (av_empty, e0f) branches
    | Ast.Value_cmp (_, a, b) | Ast.Arith (_, a, b) ->
      (* both operands atomize: their subtrees are read *)
      let aa, ea = walk st env site a in
      let ab, eb = walk st env site b in
      ( av_empty,
        fp_join (fp_join ea eb) (fp_join (subtree_read aa) (subtree_read ab)) )
    | Ast.Node_cmp (_, a, b) | Ast.And (a, b) | Ast.Or (a, b) ->
      (* identity / effective-boolean tests: no content is read *)
      let _, ea = walk st env site a in
      let _, eb = walk st env site b in
      (av_empty, fp_join ea eb)
    | Ast.Order_by (v, src, specs, body) ->
      let asrc, esrc = walk st env site src in
      let env' = Smap.add v asrc env in
      let espec =
        List.fold_left
          (fun fp (spec, _) ->
            let aspec, ef = walk st env' site spec in
            fp_join fp (fp_join ef (subtree_read aspec)))
          fp_empty specs
      in
      let ab, eb = walk st env' site body in
      (ab, fp_join esrc (fp_join espec eb))
    | Ast.Node_set (_, a, b) ->
      let aa, ea = walk st env site a in
      let ab, eb = walk st env site b in
      (av_join aa ab, fp_join ea eb)
    | Ast.Doc_constr c | Ast.Text_constr c ->
      (* content is copied/serialized into a fresh document *)
      let ac, ec = walk st env site c in
      (av_empty, fp_join ec (subtree_read ac))
    | Ast.Elem_constr (ns, c) | Ast.Attr_constr (ns, c) ->
      let en =
        match ns with
        | Ast.Fixed_name _ -> fp_empty
        | Ast.Computed_name ne ->
          let an, ef = walk st env site ne in
          fp_join ef (subtree_read an)
      in
      let ac, ec = walk st env site c in
      (av_empty, fp_join en (fp_join ec (subtree_read ac)))
    | Ast.Step (e1, ax, test) ->
      let a1, e1f = walk st env site e1 in
      let srcs = Smap.map (fun ps -> Pset.extend ps (Path.Axis (ax, test))) a1.srcs in
      let av = { srcs; vany = a1.vany } in
      (av, fp_join e1f (read_of av))
    | Ast.Fun_call (name, args) -> walk_call st env site e name args
    | Ast.Execute_at x -> walk_execute_at st env site x
    | Ast.Insert_node (src, pos, tgt) ->
      let asrc, esrc = walk st env site src in
      let atgt, etgt = walk st env site tgt in
      let w =
        match pos with
        | Ast.Into -> write_of atgt
        | Ast.Before | Ast.After -> parent_write atgt
      in
      (av_empty, fp_join esrc (fp_join (subtree_read asrc) (fp_join etgt w)))
    | Ast.Delete_node tgt ->
      let atgt, etgt = walk st env site tgt in
      (av_empty, fp_join etgt (write_of atgt))
    | Ast.Replace_value (tgt, v) ->
      let atgt, etgt = walk st env site tgt in
      let av, ev = walk st env site v in
      ( av_empty,
        fp_join etgt (fp_join ev (fp_join (subtree_read av) (write_of atgt))) )
    | Ast.Rename_node (tgt, n) ->
      let atgt, etgt = walk st env site tgt in
      let an, en = walk st env site n in
      ( av_empty,
        fp_join etgt (fp_join en (fp_join (subtree_read an) (parent_write atgt))) )
  in
  ignore (record st e fp);
  (av, fp)

and walk_call st env site (e : Ast.expr) name args =
  let argvs = List.map (walk st env site) args in
  let arg_effs = List.fold_left (fun fp (_, ef) -> fp_join fp ef) fp_empty argvs in
  let argavs = List.map fst argvs in
  match List.find_opt (fun f -> f.Ast.f_name = name) st.funcs with
  | Some f ->
    let fs = Hashtbl.find st.ftab name in
    (if List.length argavs = List.length f.Ast.f_params then begin
       let params' = List.map2 av_join fs.params argavs in
       if not (List.for_all2 av_equal params' fs.params) then begin
         fs.params <- params';
         st.changed <- true
       end
     end);
    (fs.result, fp_join arg_effs fs.eff)
  | None -> walk_builtin st env site e name args argavs arg_effs

and walk_builtin _st _env site _e name args argavs arg_effs =
  let all_args = List.fold_left av_join av_empty argavs in
  match name with
  | "doc" | "collection" -> (
    let uri =
      match args with
      | [ { Ast.desc = Ast.Literal (Ast.A_string u); _ } ] -> Some u
      | _ -> None
    in
    match Option.bind uri (doc_key site) with
    | Some key ->
      let av = { srcs = Smap.singleton key Pset.root; vany = false } in
      (av, fp_join arg_effs (read_of av))
    | None ->
      (* computed URI or unknown site: may read any document *)
      (av_any, fp_join arg_effs { fp_empty with r_any = true }))
  | "root" ->
    let av =
      { srcs = Smap.map (fun _ -> Pset.root) all_args.srcs; vany = all_args.vany }
    in
    (av, arg_effs)
  | "id" | "idref" ->
    (* conservatively scans all elements (and their attributes) of the
       context documents *)
    let av =
      { srcs = Smap.map (fun _ -> Pset.top) all_args.srcs; vany = all_args.vany }
    in
    (av, fp_join arg_effs (read_of av))
  | _ when List.mem name passthrough_builtins -> (all_args, arg_effs)
  | _ when List.mem name shallow_builtins ->
    (av_empty, fp_join arg_effs (read_of all_args))
  | _ when List.mem name noread_builtins -> (av_empty, arg_effs)
  | _ ->
    (* default: atomizing builtins read their operands' subtrees; the
       result is kept node-free (every node-returning builtin is listed
       above) *)
    (av_empty, fp_join arg_effs (subtree_read all_args))

and walk_execute_at st env site (x : Ast.execute_at) =
  let _, ehost = walk st env site x.Ast.host in
  let params =
    List.map
      (fun (v, ae) ->
        let av, ef = walk st env site ae in
        (v, av, ef))
      x.Ast.params
  in
  let arg_effs =
    List.fold_left
      (fun fp (_, av, ef) ->
        (* parameter values are serialized onto the wire: subtree reads *)
        fp_join fp (fp_join ef (subtree_read av)))
      fp_empty params
  in
  let callee_site =
    match x.Ast.host.Ast.desc with
    | Ast.Literal (Ast.A_string "") -> site (* empty host = run here *)
    | Ast.Literal (Ast.A_string h) -> Some h
    | _ -> None (* computed host: unknown site *)
  in
  let benv =
    List.fold_left (fun m (v, av, _) -> Smap.add v av m) Smap.empty params
  in
  let bav, beff = walk st benv callee_site x.Ast.body in
  (* the response is serialized back: its subtrees are read *)
  (bav, fp_join ehost (fp_join arg_effs (fp_join beff (subtree_read bav))))

(* ---- driver ----------------------------------------------------------- *)

let analyze ?(self = "client") (q : Ast.query) : result =
  let ftab = Hashtbl.create 8 in
  List.iter
    (fun f ->
      Hashtbl.replace ftab f.Ast.f_name
        {
          params = List.map (fun _ -> av_empty) f.Ast.f_params;
          result = av_empty;
          eff = fp_empty;
        })
    q.Ast.funcs;
  let st = { funcs = q.Ast.funcs; ftab; fps = Hashtbl.create 64; changed = true } in
  let pass () =
    st.changed <- false;
    ignore (walk st Smap.empty (Some self) q.Ast.body);
    List.iter
      (fun f ->
        match Hashtbl.find_opt ftab f.Ast.f_name with
        | None -> ()
        | Some fs ->
          (* function bodies execute at their (unknown) call site, so
             relative document URIs inside them widen to "any" *)
          let env =
            List.fold_left2
              (fun m (v, _) av -> Smap.add v av m)
              Smap.empty f.Ast.f_params fs.params
          in
          let av, eff = walk st env None f.Ast.f_body in
          let r' = av_join fs.result av and e' = fp_join fs.eff eff in
          if not (av_equal r' fs.result && fp_equal e' fs.eff) then begin
            fs.result <- r';
            fs.eff <- e';
            st.changed <- true
          end)
      q.Ast.funcs
  in
  (* both lattice components are finite (bounded path sets over a finite
     document-key universe) and all updates are joins; the budget is
     paranoia, mirroring lib/types/infer.ml *)
  let budget = ref 100 in
  while st.changed && !budget > 0 do
    decr budget;
    pass ()
  done;
  pass ();
  let fsummaries = Hashtbl.create 8 in
  Hashtbl.iter (fun name fs -> Hashtbl.replace fsummaries name fs.eff) ftab;
  { fps = st.fps; fsummaries }

let function_summary res name = Hashtbl.find_opt res.fsummaries name

(* ---- scheduling ------------------------------------------------------- *)

(* A group of provably non-interfering execute-at calls, anchored at the
   enclosing Seq/Let/For vertex where the runtime's schedule hook fires.
   Members are the Execute_at vertex ids, in sequential evaluation
   order. *)
type group = { anchor : int; members : int list }

(* Only pure (read-only) calls are grouped: read-read never interferes,
   so purity of every member makes the whole group safe, including
   against the host/argument evaluations of its peers. *)
let schedulable res (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Execute_at _ -> (
    match footprint_of res e with Some fp -> pure fp | None -> false)
  | _ -> false

let schedule res (q : Ast.query) : group list =
  let groups = ref [] in
  let emit anchor members =
    if List.length members >= 2 then
      groups :=
        { anchor; members = List.map (fun m -> m.Ast.id) members } :: !groups
  in
  let rec visit (e : Ast.expr) =
    match e.Ast.desc with
    | Ast.Seq es ->
      (* maximal runs of >=2 consecutive schedulable calls *)
      let flush run = emit e.Ast.id (List.rev run) in
      let rec runs acc = function
        | [] -> flush acc
        | c :: rest when schedulable res c -> runs (c :: acc) rest
        | _ :: rest ->
          flush acc;
          runs [] rest
      in
      runs [] es;
      List.iter visit es
    | Ast.Let _ ->
      (* a chain of let-bindings whose values are schedulable calls not
         referencing earlier bindings of the chain *)
      let rec chain bound acc (cur : Ast.expr) =
        match cur.Ast.desc with
        | Ast.Let (v, value, rest)
          when schedulable res value
               && not (List.exists (fun fv -> List.mem fv bound) (Ast.free_vars value)) ->
          chain (v :: bound) (value :: acc) rest
        | _ -> (List.rev acc, cur)
      in
      let members, k = chain [] [] e in
      if List.length members >= 2 then begin
        emit e.Ast.id members;
        (* skip the spine itself (no nested sub-chain anchors), but still
           visit inside the members and the continuation *)
        List.iter (fun m -> List.iter visit (Ast.children m)) members;
        visit k
      end
      else List.iter visit (Ast.children e)
    | Ast.For (_, src, body) when schedulable res body ->
      (* every iteration issues an independent pure call *)
      groups := { anchor = e.Ast.id; members = [ body.Ast.id ] } :: !groups;
      visit src;
      List.iter visit (Ast.children body)
    | _ -> List.iter visit (Ast.children e)
  in
  visit q.Ast.body;
  List.iter (fun f -> visit f.Ast.f_body) q.Ast.funcs;
  List.rev !groups

(* ---- printing --------------------------------------------------------- *)

let side_to_string any m =
  let entries =
    List.map (fun (d, ps) -> d ^ ":" ^ Pset.to_string ps) (Smap.bindings m)
  in
  let entries = if any then entries @ [ "*" ] else entries in
  "{" ^ String.concat "; " entries ^ "}"

let to_string fp =
  Printf.sprintf "R%s W%s%s"
    (side_to_string fp.r_any fp.reads)
    (side_to_string fp.w_any fp.writes)
    (if pure fp then " pure" else "")

let pp_dump fmt (q : Ast.query) (res : result) =
  let rec dump depth (e : Ast.expr) =
    let fp =
      match footprint_of res e with
      | Some fp -> to_string fp
      | None -> "(no footprint)"
    in
    Fmt.pf fmt "%sv%d %s : %s@."
      (String.make (2 * depth) ' ')
      e.Ast.id
      (Xd_types.Infer.sketch e)
      fp;
    List.iter (dump (depth + 1)) (Ast.children e)
  in
  List.iter
    (fun f ->
      Fmt.pf fmt "function %s#%d : %s@." f.Ast.f_name
        (List.length f.Ast.f_params)
        (match function_summary res f.Ast.f_name with
        | Some fp -> to_string fp
        | None -> "(no footprint)");
      dump 1 f.Ast.f_body)
    q.Ast.funcs;
  dump 0 q.Ast.body;
  match schedule res q with
  | [] -> Fmt.pf fmt "schedule: (sequential)@."
  | groups ->
    Fmt.pf fmt "schedule:@.";
    List.iter
      (fun g ->
        Fmt.pf fmt "  group @@v%d:%s@." g.anchor
          (String.concat ""
             (List.map (fun m -> Printf.sprintf " v%d" m) g.members)))
      groups
