(** Static effect and interference analysis.

    Computes, per expression and per user function (monotone fixpoint,
    mirroring {!Xd_types.Infer}), a read/write footprint: sets of
    (document, projection-path) pairs plus "anywhere" bits. Documents
    are keyed canonically as ["host/name"]. The footprints license the
    runtime scheduler ({!Xd_xrpc.Session}) to overlap and batch provably
    non-interfering read-only [execute at] calls, let {!Xd_core.Cost}
    price fan-out plans by critical path, and give the verifier an
    independent interference check over proposed schedules. *)

(** A read/write footprint. Paths are selections in the sense of
    {!Xd_projection.Path.eval}: a read of (d, p) means nodes selected by
    [p] from [d]'s root may be observed; content consumption is recorded
    with explicit [descendant-or-self::node()] closure steps. *)
type footprint

val fp_empty : footprint
val pure : footprint -> bool
(** No writes at all — the license for concurrent scheduling. *)

val reads : footprint -> (string * Xd_projection.Path.t list) list
val writes : footprint -> (string * Xd_projection.Path.t list) list
val reads_any : footprint -> bool
val writes_any : footprint -> bool

val interferes : footprint -> footprint -> bool
(** May either footprint's writes touch the other's reads or writes?
    Read-read never interferes. Conservative: [true] unless provably
    disjoint. *)

val fp_join : footprint -> footprint -> footprint
val to_string : footprint -> string

type result

val analyze : ?self:string -> Xd_lang.Ast.query -> result
(** Run the fixpoint. [self] (default ["client"]) is the site the query
    body executes on; relative document URIs resolve against it. *)

val footprint : result -> int -> footprint option
(** The footprint of evaluating the given vertex (including its
    subexpressions), or [None] for vertices the walk never reached. *)

val footprint_of : result -> Xd_lang.Ast.expr -> footprint option
val function_summary : result -> string -> footprint option

(** {2 Scheduling} *)

type group = { anchor : int; members : int list }
(** A set of provably non-interfering read-only [execute at] calls that
    may overlap on the simulated clock. [anchor] is the enclosing
    Seq/Let/For vertex where the runtime hook fires; [members] are the
    Execute_at vertex ids in sequential evaluation order. A [For] anchor
    has a single member (the loop body): each iteration issues an
    independent call. *)

val schedulable : result -> Xd_lang.Ast.expr -> bool
(** Is this vertex a pure [execute at] call? *)

val schedule : result -> Xd_lang.Ast.query -> group list
(** Extract all overlap groups: maximal runs of consecutive schedulable
    calls in sequences, chains of independent schedulable let-bindings,
    and for-loops whose body is a schedulable call. *)

(** {2 The --effects dump} *)

val pp_dump : Format.formatter -> Xd_lang.Ast.query -> result -> unit
