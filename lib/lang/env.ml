(* Dynamic evaluation context. The [execute_at] and [resolve_doc] hooks keep
   the language layer transport-agnostic: a purely local engine plugs in
   local implementations, while the XRPC runtime plugs in implementations
   that marshal values through (simulated) network messages — the exact
   place where the paper's pass-by-value / by-fragment / by-projection
   semantics differ. *)

module Smap = Map.Make (String)

exception Dynamic_error of string

let dynamic_error fmt = Format.kasprintf (fun s -> raise (Dynamic_error s)) fmt

type t = {
  store : Xd_xml.Store.t;
  vars : Value.t Smap.t;
  funcs : Ast.func Smap.t;
  resolve_doc : t -> string -> Xd_xml.Doc.t;
  execute_at :
    t -> Ast.execute_at -> host:string -> args:(Ast.var * Value.t) list ->
    Value.t;
  builtins : (string, t -> Value.t list -> Value.t) Hashtbl.t;
  schedule : (t -> Ast.expr -> Value.t option) option;
      (* scheduling hook, consulted at Seq/Let/For vertices before normal
         evaluation: the XRPC runtime uses it to overlap and batch groups
         of provably independent execute-at calls. [None] from the hook
         falls back to plain sequential evaluation. *)
  observe : (Xd_xml.Node.t -> unit) option;
      (* node observer, called on every axis-step result: lets the effect
         analysis' soundness harness watch what evaluation actually
         reads. *)
  static_base_uri : string;
  default_collation : string;
  current_datetime : string;
  mutable recursion_depth : int;
  pul : Pul.t option; (* pending update list; None = read-only context *)
}

let default_resolve_doc env uri =
  match Xd_xml.Store.find_uri env.store uri with
  | Some d -> d
  | None -> dynamic_error "fn:doc: document %S not found" uri

let no_execute_at _env _x ~host ~args:_ =
  dynamic_error "execute at {%s}: no RPC handler installed" host

let create ?(vars = Smap.empty) ?(funcs = []) ?(resolve_doc = default_resolve_doc)
    ?(execute_at = no_execute_at) ?builtins ?schedule ?observe
    ?(static_base_uri = "xdx://local/") ?(default_collation = "codepoint")
    ?(current_datetime = "2009-03-29T00:00:00Z") ?pul store =
  let fmap =
    List.fold_left (fun m f -> Smap.add f.Ast.f_name f m) Smap.empty funcs
  in
  {
    store;
    vars;
    funcs = fmap;
    resolve_doc;
    execute_at;
    builtins = (match builtins with Some b -> b | None -> Hashtbl.create 64);
    schedule;
    observe;
    static_base_uri;
    default_collation;
    current_datetime;
    recursion_depth = 0;
    pul;
  }

let bind env v value = { env with vars = Smap.add v value env.vars }

let lookup env v =
  match Smap.find_opt v env.vars with
  | Some x -> x
  | None -> dynamic_error "unbound variable $%s" v

let lookup_func env name = Smap.find_opt name env.funcs

let with_funcs env funcs =
  let fmap =
    List.fold_left (fun m f -> Smap.add f.Ast.f_name f m) env.funcs funcs
  in
  { env with funcs = fmap }

let func_list env = List.map snd (Smap.bindings env.funcs)

let register_builtin env name f = Hashtbl.replace env.builtins name f
