(** The pending update list (XQUF subset): updating expressions append
    here; application happens when the query completes (snapshot
    semantics). *)

type pending =
  | P_insert of Xd_xml.Node.t * Ast.insert_pos * Xd_xml.Doc.tree list
  | P_delete of Xd_xml.Node.t
  | P_replace_value of Xd_xml.Node.t * string
  | P_rename of Xd_xml.Node.t * string

val target_of : pending -> Xd_xml.Node.t

type t

val create : unit -> t
val add : t -> pending -> unit
val list : t -> pending list
val is_empty : t -> bool
