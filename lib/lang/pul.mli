(** The pending update list (XQUF subset): updating expressions append
    here; application happens when the query completes (snapshot
    semantics). *)

type pending =
  | P_insert of Xd_xml.Node.t * Ast.insert_pos * Xd_xml.Doc.tree list
  | P_delete of Xd_xml.Node.t
  | P_replace_value of Xd_xml.Node.t * string
  | P_rename of Xd_xml.Node.t * string

val target_of : pending -> Xd_xml.Node.t

type t

val create : unit -> t
val add : t -> pending -> unit
val list : t -> pending list
val is_empty : t -> bool

val to_xml : pending list -> string
(** Serialize for staging in a transaction journal (a [<pul>] element;
    see PROTOCOL.md). Targets are identified by (did, pre index[, attribute
    name]) in the owning store, so the form only round-trips at the peer
    that staged it. *)

val of_xml : store:Xd_xml.Store.t -> string -> pending list
(** Inverse of {!to_xml}, resolving targets against [store].
    @raise Failure on a corrupt or stale staged PUL. *)
