(** Recursive-descent parser producing XCore ASTs.

    Surface XQuery conveniences are desugared at parse time so downstream
    analysis sees only Table II constructs:
    - predicates [E[p]] become [for $dot in E return if (p') then $dot
      else ()] (integer-literal predicates use the [item-at] builtin);
    - [where] clauses become conditionals;
    - [//], [@name], [..], [.] expand to explicit steps;
    - direct constructors become computed constructors;
    - [execute at {h} {f(a)}] becomes an [Execute_at] with fresh
      parameters (rules 27/28).

    Keywords are recognized contextually; the [fn:] prefix of builtin
    calls is stripped (see {!Builtin_names}). *)

exception Error of string * int
(** Message and byte offset. *)

val parse_query : string -> Ast.query
(** Parse [declare function …;]* followed by the query body. *)

val parse_expr_string : string -> Ast.expr
(** Parse a single expression (no prolog). *)
