(* Pretty-printer for XCore expressions. Output is re-parseable by
   [Parser.parse_expr_string]; tests rely on the round-trip. *)

open Format

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
    s;
  Buffer.contents buf

let axis_name = function
  | Ast.Child -> "child"
  | Ast.Descendant -> "descendant"
  | Ast.Descendant_or_self -> "descendant-or-self"
  | Ast.Self -> "self"
  | Ast.Attribute -> "attribute"
  | Ast.Parent -> "parent"
  | Ast.Ancestor -> "ancestor"
  | Ast.Ancestor_or_self -> "ancestor-or-self"
  | Ast.Following -> "following"
  | Ast.Following_sibling -> "following-sibling"
  | Ast.Preceding -> "preceding"
  | Ast.Preceding_sibling -> "preceding-sibling"

let node_test_name = function
  | Ast.Name_test n -> n
  | Ast.Wildcard -> "*"
  | Ast.Kind_node -> "node()"
  | Ast.Kind_text -> "text()"
  | Ast.Kind_comment -> "comment()"
  | Ast.Kind_element None -> "element()"
  | Ast.Kind_element (Some n) -> Printf.sprintf "element(%s)" n
  | Ast.Kind_attribute None -> "attribute()"
  | Ast.Kind_attribute (Some n) -> Printf.sprintf "attribute(%s)" n

let value_comp_name = function
  | Ast.Eq -> "="
  | Ast.Ne -> "!="
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="

let node_comp_name = function
  | Ast.Is -> "is"
  | Ast.Precedes -> "<<"
  | Ast.Follows -> ">>"

let set_op_name = function
  | Ast.Union -> "union"
  | Ast.Intersect -> "intersect"
  | Ast.Except -> "except"

let arith_op_name = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "div"
  | Ast.Idiv -> "idiv"
  | Ast.Mod -> "mod"

let occurrence_name = function
  | Ast.Occ_one -> ""
  | Ast.Occ_opt -> "?"
  | Ast.Occ_star -> "*"
  | Ast.Occ_plus -> "+"

let sequence_type_name = function
  | Ast.St_empty -> "empty-sequence()"
  | Ast.St_items (it, occ) ->
    let base =
      match it with
      | Ast.It_node -> "node()"
      | Ast.It_element None -> "element()"
      | Ast.It_element (Some n) -> Printf.sprintf "element(%s)" n
      | Ast.It_attribute None -> "attribute()"
      | Ast.It_attribute (Some n) -> Printf.sprintf "attribute(%s)" n
      | Ast.It_text -> "text()"
      | Ast.It_document -> "document-node()"
      | Ast.It_atomic n -> n
      | Ast.It_item -> "item()"
    in
    base ^ occurrence_name occ

(* FLWOR / conditional / typeswitch / execute-at expressions are
   ExprSingle forms that cannot appear bare as operator operands; printing
   them parenthesized keeps the output re-parseable in every position. *)
let rec pp_expr fmt (e : Ast.expr) =
  match e.desc with
  | Ast.For _ | Ast.Let _ | Ast.If _ | Ast.Typeswitch _ | Ast.Order_by _
  | Ast.Execute_at _ | Ast.Insert_node _ | Ast.Delete_node _
  | Ast.Replace_value _ | Ast.Rename_node _ ->
    Format.fprintf fmt "(%a)" pp_expr_raw e
  | _ -> pp_expr_raw fmt e

and pp_expr_raw fmt (e : Ast.expr) =
  match e.desc with
  | Ast.Literal (Ast.A_string s) -> fprintf fmt "\"%s\"" (escape_string s)
  | Ast.Literal (Ast.A_int i) -> fprintf fmt "%d" i
  | Ast.Literal (Ast.A_float f) -> fprintf fmt "%s" (Printf.sprintf "%.12g" f)
  | Ast.Literal (Ast.A_bool b) -> fprintf fmt "%s()" (if b then "true" else "false")
  | Ast.Var_ref v -> fprintf fmt "$%s" v
  | Ast.Seq es ->
    fprintf fmt "(@[%a@])" (pp_print_list ~pp_sep:(fun f () -> fprintf f ",@ ") pp_expr) es
  | Ast.For (v, e1, e2) ->
    fprintf fmt "@[<hv 2>for $%s in %a@ return %a@]" v pp_expr e1 pp_expr e2
  | Ast.Let (v, e1, e2) ->
    fprintf fmt "@[<hv 2>let $%s := %a@ return %a@]" v pp_expr e1 pp_expr e2
  | Ast.If (c, t, f) ->
    fprintf fmt "@[<hv 2>if (%a)@ then %a@ else %a@]" pp_expr c pp_expr t
      pp_expr f
  | Ast.Typeswitch (e0, cases, dv, dflt) ->
    fprintf fmt "@[<hv 2>typeswitch (%a)" pp_expr e0;
    List.iter
      (fun (v, st, b) ->
        fprintf fmt "@ case $%s as %s return %a" v (sequence_type_name st)
          pp_expr b)
      cases;
    fprintf fmt "@ default $%s return %a@]" dv pp_expr dflt
  | Ast.Value_cmp (op, a, b) ->
    fprintf fmt "(%a %s %a)" pp_expr a (value_comp_name op) pp_expr b
  | Ast.Node_cmp (op, a, b) ->
    fprintf fmt "(%a %s %a)" pp_expr a (node_comp_name op) pp_expr b
  | Ast.Arith (op, a, b) ->
    fprintf fmt "(%a %s %a)" pp_expr a (arith_op_name op) pp_expr b
  | Ast.And (a, b) -> fprintf fmt "(%a and %a)" pp_expr a pp_expr b
  | Ast.Or (a, b) -> fprintf fmt "(%a or %a)" pp_expr a pp_expr b
  | Ast.Order_by (v, e1, specs, body) ->
    fprintf fmt "@[<hv 2>for $%s in %a@ order by %a@ return %a@]" v pp_expr e1
      (pp_print_list
         ~pp_sep:(fun f () -> fprintf f ",@ ")
         (fun f (s, asc) ->
           fprintf f "%a %s" pp_expr s (if asc then "ascending" else "descending")))
      specs pp_expr body
  | Ast.Node_set (op, a, b) ->
    fprintf fmt "(%a %s %a)" pp_expr a (set_op_name op) pp_expr b
  | Ast.Doc_constr e1 -> fprintf fmt "document {%a}" pp_expr e1
  | Ast.Text_constr e1 -> fprintf fmt "text {%a}" pp_expr e1
  | Ast.Elem_constr (Ast.Fixed_name n, e1) ->
    fprintf fmt "element %s {%a}" n pp_expr e1
  | Ast.Elem_constr (Ast.Computed_name ne, e1) ->
    fprintf fmt "element {%a} {%a}" pp_expr ne pp_expr e1
  | Ast.Attr_constr (Ast.Fixed_name n, e1) ->
    fprintf fmt "attribute %s {%a}" n pp_expr e1
  | Ast.Attr_constr (Ast.Computed_name ne, e1) ->
    fprintf fmt "attribute {%a} {%a}" pp_expr ne pp_expr e1
  | Ast.Step (e1, axis, test) ->
    let atomic_ctx =
      match e1.desc with
      | Ast.Var_ref _ | Ast.Fun_call _ | Ast.Step _ | Ast.Literal _ | Ast.Seq _
        ->
        true
      | _ -> false
    in
    if atomic_ctx then
      fprintf fmt "%a/%s::%s" pp_expr e1 (axis_name axis) (node_test_name test)
    else
      fprintf fmt "(%a)/%s::%s" pp_expr e1 (axis_name axis)
        (node_test_name test)
  | Ast.Fun_call (n, args) ->
    fprintf fmt "%s(@[%a@])" n
      (pp_print_list ~pp_sep:(fun f () -> fprintf f ",@ ") pp_expr)
      args
  | Ast.Execute_at x ->
    fprintf fmt "@[<hv 2>execute at {%a}@ function (@[%a@])@ {%a}@]" pp_expr
      x.host
      (pp_print_list
         ~pp_sep:(fun f () -> fprintf f ",@ ")
         (fun f (v, e1) -> fprintf f "$%s := %a" v pp_expr e1))
      x.params pp_expr x.body
  | Ast.Insert_node (src, pos, tgt) ->
    fprintf fmt "@[<hv 2>insert node %a %s %a@]" pp_expr src
      (match pos with
      | Ast.Into -> "into"
      | Ast.Before -> "before"
      | Ast.After -> "after")
      pp_expr tgt
  | Ast.Delete_node tgt -> fprintf fmt "delete node %a" pp_expr tgt
  | Ast.Replace_value (tgt, v) ->
    fprintf fmt "@[<hv 2>replace value of node %a with %a@]" pp_expr tgt
      pp_expr v
  | Ast.Rename_node (tgt, n) ->
    fprintf fmt "@[<hv 2>rename node %a as %a@]" pp_expr tgt pp_expr n

let pp_func fmt (f : Ast.func) =
  fprintf fmt "@[<hv 2>declare function %s(@[%a@])%s {@ %a };@]" f.f_name
    (pp_print_list
       ~pp_sep:(fun fm () -> fprintf fm ",@ ")
       (fun fm (v, ty) ->
         match ty with
         | None -> fprintf fm "$%s" v
         | Some t -> fprintf fm "$%s as %s" v (sequence_type_name t)))
    f.f_params
    (match f.f_return with
    | None -> ""
    | Some t -> " as " ^ sequence_type_name t)
    pp_expr f.f_body

let pp_query fmt (q : Ast.query) =
  List.iter (fun f -> fprintf fmt "%a@." pp_func f) q.funcs;
  fprintf fmt "%a@." pp_expr q.body

let expr_to_string e = Format.asprintf "%a" pp_expr e
let query_to_string q = Format.asprintf "%a" pp_query q
