(** Static checks, run before evaluation or decomposition: unbound
    variables, unknown functions, wrong arities, duplicate declarations.
    Scope-precise (follows the evaluator's binder structure) and collects
    every error. *)

type error = { vertex : int; message : string }

val pp_error : Format.formatter -> error -> unit
val default_builtin_names : unit -> string list
val builtin_arity_ok : string -> int -> bool

val check_expr :
  funcs:Ast.func list ->
  builtins:string list ->
  ?bound:Ast.var list ->
  Ast.expr ->
  error list

val check : Ast.query -> error list
val check_exn : Ast.query -> unit
(** @raise Env.Dynamic_error on the first error. *)
