(** Function-name normalization: the [fn:] prefix is stripped at parse
    time, so builtins are identified by local name everywhere downstream
    (evaluator, insertion conditions, path analysis). *)

val normalize : string -> string
