(** Function-name normalization: the [fn:] prefix is stripped at parse
    time, so builtins are identified by local name everywhere downstream
    (evaluator, insertion conditions, path analysis). *)

val normalize : string -> string

val all : string list
(** The authoritative list of builtin function names (local names plus
    the [xrpc:]-prefixed accessors). {!Builtins.table} registers exactly
    this set; the decomposition conditions and the {!Xd_verify} plan
    verifier treat a call outside it as an opaque user function. *)

val is_builtin : string -> bool
