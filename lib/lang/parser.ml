(* Recursive-descent parser producing XCore ASTs. Surface conveniences are
   desugared at parse time so that downstream analysis sees only Table II
   constructs:
   - predicates  E[p]      -> for $dot in E return if (p') then $dot else ()
     (numeric literal predicates use the fn:item-at builtin)
   - E[p] with p positional other than a literal integer is rejected
   - where clauses         -> if/then/else ()
   - //                    -> /descendant-or-self::node()/
   - @name, .., .          -> attribute::name, parent::node(), context var
   - direct constructors   -> element/attribute/text constructors
   - execute at {h}{f(a)}  -> Execute_at with fresh parameters (rule 27/28)

   Keywords are recognized contextually (XQuery does not reserve words). *)

exception Error of string * int

type t = {
  lx : Lexer.t;
  mutable ctx_var : Ast.var option; (* context item inside predicates *)
  mutable fresh : int;
}

let fail p msg = raise (Error (msg, Lexer.raw_start p.lx))

let failf p fmt = Format.kasprintf (fun s -> fail p s) fmt

let cur p = Lexer.current p.lx
let adv p = Lexer.advance p.lx

let eat p tok =
  if cur p = tok then adv p
  else
    failf p "expected %s, found %s" (Lexer.token_to_string tok)
      (Lexer.token_to_string (cur p))

let eat_name p kw =
  match cur p with
  | Lexer.NAME n when n = kw -> adv p
  | t -> failf p "expected %s, found %s" kw (Lexer.token_to_string t)

let is_name p kw = match cur p with Lexer.NAME n -> n = kw | _ -> false

let fresh_var p prefix =
  p.fresh <- p.fresh + 1;
  Printf.sprintf "%s__%d" prefix p.fresh

let parse_var p =
  eat p Lexer.DOLLAR;
  match cur p with
  | Lexer.NAME n ->
    adv p;
    n
  | t -> failf p "expected variable name, found %s" (Lexer.token_to_string t)

(* ---- sequence types ---------------------------------------------------- *)

let parse_occurrence p =
  match cur p with
  | Lexer.QMARK ->
    adv p;
    Ast.Occ_opt
  | Lexer.STAR ->
    adv p;
    Ast.Occ_star
  | Lexer.PLUS ->
    adv p;
    Ast.Occ_plus
  | _ -> Ast.Occ_one

let parse_sequence_type p =
  match cur p with
  | Lexer.NAME "empty-sequence" ->
    adv p;
    eat p Lexer.LPAR;
    eat p Lexer.RPAR;
    Ast.St_empty
  | Lexer.NAME n ->
    adv p;
    let with_optional_name () =
      eat p Lexer.LPAR;
      let nm =
        match cur p with
        | Lexer.NAME x ->
          adv p;
          Some x
        | Lexer.STAR ->
          adv p;
          None
        | _ -> None
      in
      eat p Lexer.RPAR;
      nm
    in
    let it =
      match n with
      | "node" ->
        eat p Lexer.LPAR;
        eat p Lexer.RPAR;
        Ast.It_node
      | "item" ->
        eat p Lexer.LPAR;
        eat p Lexer.RPAR;
        Ast.It_item
      | "text" ->
        eat p Lexer.LPAR;
        eat p Lexer.RPAR;
        Ast.It_text
      | "document-node" ->
        eat p Lexer.LPAR;
        eat p Lexer.RPAR;
        Ast.It_document
      | "element" -> Ast.It_element (with_optional_name ())
      | "attribute" -> Ast.It_attribute (with_optional_name ())
      | _ -> Ast.It_atomic n (* xs:string, xs:integer, xs:boolean ... *)
    in
    Ast.St_items (it, parse_occurrence p)
  | t -> failf p "expected sequence type, found %s" (Lexer.token_to_string t)

(* ---- node tests --------------------------------------------------------- *)

let parse_node_test p =
  match cur p with
  | Lexer.STAR ->
    adv p;
    Ast.Wildcard
  | Lexer.NAME n -> (
    adv p;
    match (n, cur p) with
    | "node", Lexer.LPAR ->
      adv p;
      eat p Lexer.RPAR;
      Ast.Kind_node
    | "text", Lexer.LPAR ->
      adv p;
      eat p Lexer.RPAR;
      Ast.Kind_text
    | "comment", Lexer.LPAR ->
      adv p;
      eat p Lexer.RPAR;
      Ast.Kind_comment
    | "element", Lexer.LPAR ->
      adv p;
      let nm =
        match cur p with
        | Lexer.NAME x ->
          adv p;
          Some x
        | _ -> None
      in
      eat p Lexer.RPAR;
      Ast.Kind_element nm
    | "attribute", Lexer.LPAR ->
      adv p;
      let nm =
        match cur p with
        | Lexer.NAME x ->
          adv p;
          Some x
        | _ -> None
      in
      eat p Lexer.RPAR;
      Ast.Kind_attribute nm
    | _ -> Ast.Name_test n)
  | t -> failf p "expected node test, found %s" (Lexer.token_to_string t)

let axis_of_name = function
  | "child" -> Some Ast.Child
  | "descendant" -> Some Ast.Descendant
  | "descendant-or-self" -> Some Ast.Descendant_or_self
  | "self" -> Some Ast.Self
  | "attribute" -> Some Ast.Attribute
  | "parent" -> Some Ast.Parent
  | "ancestor" -> Some Ast.Ancestor
  | "ancestor-or-self" -> Some Ast.Ancestor_or_self
  | "following" -> Some Ast.Following
  | "following-sibling" -> Some Ast.Following_sibling
  | "preceding" -> Some Ast.Preceding
  | "preceding-sibling" -> Some Ast.Preceding_sibling
  | _ -> None

(* ---- expressions --------------------------------------------------------- *)

let rec parse_expr p =
  let e1 = parse_expr_single p in
  if cur p = Lexer.COMMA then begin
    let rec more acc =
      if cur p = Lexer.COMMA then begin
        adv p;
        more (parse_expr_single p :: acc)
      end
      else List.rev acc
    in
    Ast.mk (Ast.Seq (more [ e1 ]))
  end
  else e1

and parse_expr_single p =
  match cur p with
  | Lexer.NAME "for" | Lexer.NAME "let" -> parse_flwor p
  | Lexer.NAME "if" -> parse_if p
  | Lexer.NAME "typeswitch" -> parse_typeswitch p
  | Lexer.NAME "execute" -> parse_execute_at p
  | Lexer.NAME "insert" when next_name_is p "node" -> parse_insert p
  | Lexer.NAME "delete" when next_name_is p "node" -> parse_delete p
  | Lexer.NAME "replace" when next_name_is p "value" -> parse_replace p
  | Lexer.NAME "rename" when next_name_is p "node" -> parse_rename p
  | _ -> parse_or p

(* peek whether the raw source after the current NAME token continues with
   the given word (keywords are contextual) *)
and next_name_is p word =
  let lx = p.lx in
  let src = lx.Lexer.src in
  let rec skip i =
    if
      i < String.length src
      && (src.[i] = ' ' || src.[i] = '\t' || src.[i] = '\n' || src.[i] = '\r')
    then skip (i + 1)
    else i
  in
  let i = skip lx.Lexer.pos in
  let n = String.length word in
  i + n <= String.length src
  && String.sub src i n = word
  && (i + n = String.length src || not (Lexer.is_name_char src.[i + n]))

(* XQUF subset (rules follow the XQuery Update Facility surface syntax):
   insert node E (into|before|after) E / delete node E /
   replace value of node E with E / rename node E as E *)
and parse_insert p =
  eat_name p "insert";
  eat_name p "node";
  let src = parse_expr_single p in
  let pos =
    match cur p with
    | Lexer.NAME "into" ->
      adv p;
      Ast.Into
    | Lexer.NAME "before" ->
      adv p;
      Ast.Before
    | Lexer.NAME "after" ->
      adv p;
      Ast.After
    | t ->
      failf p "expected into/before/after, found %s" (Lexer.token_to_string t)
  in
  let tgt = parse_expr_single p in
  Ast.mk (Ast.Insert_node (src, pos, tgt))

and parse_delete p =
  eat_name p "delete";
  eat_name p "node";
  Ast.mk (Ast.Delete_node (parse_expr_single p))

and parse_replace p =
  eat_name p "replace";
  eat_name p "value";
  eat_name p "of";
  eat_name p "node";
  let tgt = parse_expr_single p in
  eat_name p "with";
  Ast.mk (Ast.Replace_value (tgt, parse_expr_single p))

and parse_rename p =
  eat_name p "rename";
  eat_name p "node";
  let tgt = parse_expr_single p in
  eat_name p "as";
  Ast.mk (Ast.Rename_node (tgt, parse_expr_single p))

and parse_flwor p =
  (* clauses, then optional where, optional order by, then return *)
  let clauses = ref [] in
  let rec collect () =
    match cur p with
    | Lexer.NAME "for" ->
      adv p;
      let rec vars () =
        let v = parse_var p in
        eat_name p "in";
        let e = parse_expr_single p in
        clauses := `For (v, e) :: !clauses;
        if cur p = Lexer.COMMA then begin
          adv p;
          vars ()
        end
      in
      vars ();
      collect ()
    | Lexer.NAME "let" ->
      adv p;
      let rec vars () =
        let v = parse_var p in
        eat p Lexer.ASSIGN;
        let e = parse_expr_single p in
        clauses := `Let (v, e) :: !clauses;
        if cur p = Lexer.COMMA then begin
          adv p;
          vars ()
        end
      in
      vars ();
      collect ()
    | _ -> ()
  in
  collect ();
  let where =
    if is_name p "where" then begin
      adv p;
      Some (parse_expr_single p)
    end
    else None
  in
  let order =
    if is_name p "order" then begin
      adv p;
      eat_name p "by";
      let rec specs acc =
        let e = parse_expr_single p in
        let asc =
          if is_name p "ascending" then begin
            adv p;
            true
          end
          else if is_name p "descending" then begin
            adv p;
            false
          end
          else true
        in
        if cur p = Lexer.COMMA then begin
          adv p;
          specs ((e, asc) :: acc)
        end
        else List.rev ((e, asc) :: acc)
      in
      Some (specs [])
    end
    else None
  in
  eat_name p "return";
  let body = parse_expr_single p in
  let body =
    match where with
    | None -> body
    | Some c -> Ast.mk (Ast.If (c, body, Ast.empty_seq ()))
  in
  (* Fold clauses back; order by attaches to the innermost for clause. *)
  let rec build clauses body ord =
    match clauses with
    | [] -> body
    | `For (v, e) :: rest -> (
      match ord with
      | Some specs -> build rest (Ast.mk (Ast.Order_by (v, e, specs, body))) None
      | None -> build rest (Ast.mk (Ast.For (v, e, body))) None)
    | `Let (v, e) :: rest -> build rest (Ast.mk (Ast.Let (v, e, body))) ord
  in
  (match (order, !clauses) with
  | Some _, [] -> fail p "order by requires a for clause"
  | Some _, `Let _ :: _ ->
    fail p "order by must directly follow a for clause in this subset"
  | _ -> ());
  build !clauses body order

and parse_if p =
  eat_name p "if";
  eat p Lexer.LPAR;
  let c = parse_expr p in
  eat p Lexer.RPAR;
  eat_name p "then";
  let t = parse_expr_single p in
  eat_name p "else";
  let e = parse_expr_single p in
  Ast.mk (Ast.If (c, t, e))

and parse_typeswitch p =
  eat_name p "typeswitch";
  eat p Lexer.LPAR;
  let e0 = parse_expr p in
  eat p Lexer.RPAR;
  let rec cases acc =
    if is_name p "case" then begin
      adv p;
      let v = parse_var p in
      eat_name p "as";
      let st = parse_sequence_type p in
      eat_name p "return";
      let b = parse_expr_single p in
      cases ((v, st, b) :: acc)
    end
    else List.rev acc
  in
  let cs = cases [] in
  if cs = [] then fail p "typeswitch requires at least one case";
  eat_name p "default";
  let dv =
    if cur p = Lexer.DOLLAR then parse_var p else fresh_var p "default"
  in
  eat_name p "return";
  let d = parse_expr_single p in
  Ast.mk (Ast.Typeswitch (e0, cs, dv, d))

and parse_execute_at p =
  eat_name p "execute";
  eat_name p "at";
  eat p Lexer.LBRACE;
  let host = parse_expr p in
  eat p Lexer.RBRACE;
  if is_name p "function" then begin
    (* rule 27 anonymous-function form:
       execute at {E} function ($p := expr, ...) { body } *)
    adv p;
    eat p Lexer.LPAR;
    let rec params acc =
      if cur p = Lexer.RPAR then List.rev acc
      else begin
        let v = parse_var p in
        eat p Lexer.ASSIGN;
        let e = parse_expr_single p in
        let acc = (v, e) :: acc in
        if cur p = Lexer.COMMA then begin
          adv p;
          params acc
        end
        else List.rev acc
      end
    in
    let params = params [] in
    eat p Lexer.RPAR;
    eat p Lexer.LBRACE;
    let body = parse_expr p in
    eat p Lexer.RBRACE;
    Ast.mk_execute_at ~host ~params ~body
  end
  else begin
    (* surface form: execute at {E} { f(a1, ..., an) } *)
    eat p Lexer.LBRACE;
    let fname =
      match cur p with
      | Lexer.NAME n ->
        adv p;
        n
      | t -> failf p "expected function name, found %s" (Lexer.token_to_string t)
    in
    eat p Lexer.LPAR;
    let rec args acc =
      if cur p = Lexer.RPAR then List.rev acc
      else begin
        let e = parse_expr_single p in
        let acc = e :: acc in
        if cur p = Lexer.COMMA then begin
          adv p;
          args acc
        end
        else List.rev acc
      end
    in
    let args = args [] in
    eat p Lexer.RPAR;
    eat p Lexer.RBRACE;
    let params =
      List.map (fun a -> (fresh_var p "arg", a)) args
    in
    let body =
      Ast.fun_call fname (List.map (fun (v, _) -> Ast.var v) params)
    in
    Ast.mk_execute_at ~host ~params ~body
  end

and parse_or p =
  let rec loop acc =
    if is_name p "or" then begin
      adv p;
      loop (Ast.mk (Ast.Or (acc, parse_and p)))
    end
    else acc
  in
  loop (parse_and p)

and parse_and p =
  let rec loop acc =
    if is_name p "and" then begin
      adv p;
      loop (Ast.mk (Ast.And (acc, parse_comparison p)))
    end
    else acc
  in
  loop (parse_comparison p)

and parse_comparison p =
  let l = parse_additive p in
  let mk_v op =
    adv p;
    Ast.mk (Ast.Value_cmp (op, l, parse_additive p))
  in
  let mk_n op =
    adv p;
    Ast.mk (Ast.Node_cmp (op, l, parse_additive p))
  in
  match cur p with
  | Lexer.EQ -> mk_v Ast.Eq
  | Lexer.NE -> mk_v Ast.Ne
  | Lexer.LT -> mk_v Ast.Lt
  | Lexer.LE -> mk_v Ast.Le
  | Lexer.GT -> mk_v Ast.Gt
  | Lexer.GE -> mk_v Ast.Ge
  | Lexer.LTLT -> mk_n Ast.Precedes
  | Lexer.GTGT -> mk_n Ast.Follows
  | Lexer.NAME "is" -> mk_n Ast.Is
  | _ -> l

and parse_additive p =
  let rec loop acc =
    match cur p with
    | Lexer.PLUS ->
      adv p;
      loop (Ast.mk (Ast.Arith (Ast.Add, acc, parse_multiplicative p)))
    | Lexer.MINUS ->
      adv p;
      loop (Ast.mk (Ast.Arith (Ast.Sub, acc, parse_multiplicative p)))
    | _ -> acc
  in
  loop (parse_multiplicative p)

and parse_multiplicative p =
  let rec loop acc =
    match cur p with
    | Lexer.STAR ->
      adv p;
      loop (Ast.mk (Ast.Arith (Ast.Mul, acc, parse_union p)))
    | Lexer.NAME "div" ->
      adv p;
      loop (Ast.mk (Ast.Arith (Ast.Div, acc, parse_union p)))
    | Lexer.NAME "idiv" ->
      adv p;
      loop (Ast.mk (Ast.Arith (Ast.Idiv, acc, parse_union p)))
    | Lexer.NAME "mod" ->
      adv p;
      loop (Ast.mk (Ast.Arith (Ast.Mod, acc, parse_union p)))
    | _ -> acc
  in
  loop (parse_union p)

and parse_union p =
  let rec loop acc =
    match cur p with
    | Lexer.PIPE | Lexer.NAME "union" ->
      adv p;
      loop (Ast.mk (Ast.Node_set (Ast.Union, acc, parse_intersect p)))
    | _ -> acc
  in
  loop (parse_intersect p)

and parse_intersect p =
  let rec loop acc =
    match cur p with
    | Lexer.NAME "intersect" ->
      adv p;
      loop (Ast.mk (Ast.Node_set (Ast.Intersect, acc, parse_path p)))
    | Lexer.NAME "except" ->
      adv p;
      loop (Ast.mk (Ast.Node_set (Ast.Except, acc, parse_path p)))
    | _ -> acc
  in
  loop (parse_path p)

and parse_path p =
  (* leading / or // needs a context item to find the document root *)
  let leading_root () =
    match p.ctx_var with
    | Some v -> Ast.fun_call "root" [ Ast.var v ]
    | None -> fail p "absolute path without a context item"
  in
  let start =
    match cur p with
    | Lexer.SLASH ->
      adv p;
      let root = leading_root () in
      (* bare "/" or "/step..." *)
      if starts_step p then parse_rel_path p root else root
    | Lexer.DSLASH ->
      adv p;
      let root = leading_root () in
      let dos = Ast.step root Ast.Descendant_or_self Ast.Kind_node in
      parse_rel_path p dos
    | _ ->
      let first = parse_step_or_primary p in
      if cur p = Lexer.SLASH then begin
        adv p;
        parse_rel_path p first
      end
      else if cur p = Lexer.DSLASH then begin
        adv p;
        parse_rel_path p (Ast.step first Ast.Descendant_or_self Ast.Kind_node)
      end
      else first
  in
  start

and starts_step p =
  match cur p with
  | Lexer.NAME _ | Lexer.STAR | Lexer.AT | Lexer.DOTDOT | Lexer.DOT -> true
  | _ -> false

and parse_rel_path p ctx =
  let e = parse_axis_step p ctx in
  match cur p with
  | Lexer.SLASH ->
    adv p;
    parse_rel_path p e
  | Lexer.DSLASH ->
    adv p;
    parse_rel_path p (Ast.step e Ast.Descendant_or_self Ast.Kind_node)
  | _ -> e

(* A step applied to an explicit context expression (after '/'). *)
and parse_axis_step p ctx =
  let e =
    match cur p with
    | Lexer.AT ->
      adv p;
      Ast.step ctx Ast.Attribute (parse_node_test p)
    | Lexer.DOTDOT ->
      adv p;
      Ast.step ctx Ast.Parent Ast.Kind_node
    | Lexer.DOT ->
      adv p;
      ctx
    | Lexer.NAME n when axis_of_name n <> None && peek_dcolon p ->
      adv p;
      eat p Lexer.DCOLON;
      let axis = Option.get (axis_of_name n) in
      Ast.step ctx axis (parse_node_test p)
    | _ -> Ast.step ctx Ast.Child (parse_node_test p)
  in
  parse_predicates p e

and peek_dcolon p =
  (* The lexer has one-token lookahead only; check raw source after the
     current NAME token for "::". *)
  let lx = p.lx in
  let src = lx.Lexer.src in
  let pos = lx.Lexer.pos in
  pos + 1 < String.length src && src.[pos] = ':' && src.[pos + 1] = ':'

(* First step of a relative path, or a primary expression. *)
and parse_step_or_primary p =
  match cur p with
  | Lexer.AT | Lexer.DOTDOT ->
    let ctx = context_var p in
    parse_axis_step p ctx
  | Lexer.DOT ->
    adv p;
    parse_predicates p (context_var p)
  | Lexer.NAME n when axis_of_name n <> None && peek_dcolon p ->
    let ctx = context_var p in
    parse_axis_step p ctx
  | Lexer.NAME n when is_constructor_keyword p n -> parse_computed_constructor p
  | Lexer.NAME _ when peek_lpar p -> parse_predicates p (parse_fun_call p)
  | Lexer.NAME _ ->
    (* bare name = child step on the context item *)
    let ctx = context_var p in
    parse_axis_step p ctx
  | Lexer.STAR ->
    let ctx = context_var p in
    parse_axis_step p ctx
  | _ -> parse_predicates p (parse_primary p)

and context_var p =
  match p.ctx_var with
  | Some v -> Ast.var v
  | None -> fail p "relative path step without a context item"

and peek_lpar p =
  let lx = p.lx in
  let src = lx.Lexer.src in
  let pos = lx.Lexer.pos in
  (* skip whitespace between name and '(' — XQuery allows it *)
  let rec skip i =
    if i < String.length src && (src.[i] = ' ' || src.[i] = '\t' || src.[i] = '\n' || src.[i] = '\r')
    then skip (i + 1)
    else i
  in
  let i = skip pos in
  i < String.length src && src.[i] = '('

and is_constructor_keyword p n =
  match n with
  | "document" | "text" -> next_raw_is p '{'
  | "element" | "attribute" -> true
  | _ -> false

and next_raw_is p c =
  let lx = p.lx in
  let src = lx.Lexer.src in
  let rec skip i =
    if i < String.length src && (src.[i] = ' ' || src.[i] = '\t' || src.[i] = '\n' || src.[i] = '\r')
    then skip (i + 1)
    else i
  in
  let i = skip lx.Lexer.pos in
  i < String.length src && src.[i] = c

and parse_computed_constructor p =
  match cur p with
  | Lexer.NAME "document" ->
    adv p;
    eat p Lexer.LBRACE;
    let e = parse_expr_opt p in
    eat p Lexer.RBRACE;
    Ast.mk (Ast.Doc_constr e)
  | Lexer.NAME "text" ->
    adv p;
    eat p Lexer.LBRACE;
    let e = parse_expr_opt p in
    eat p Lexer.RBRACE;
    Ast.mk (Ast.Text_constr e)
  | Lexer.NAME kw when kw = "element" || kw = "attribute" ->
    adv p;
    let name_spec =
      match cur p with
      | Lexer.LBRACE ->
        adv p;
        let n = parse_expr p in
        eat p Lexer.RBRACE;
        Ast.Computed_name n
      | Lexer.NAME n ->
        adv p;
        Ast.Fixed_name n
      | t -> failf p "expected element name, found %s" (Lexer.token_to_string t)
    in
    eat p Lexer.LBRACE;
    let e = parse_expr_opt p in
    eat p Lexer.RBRACE;
    if kw = "element" then Ast.mk (Ast.Elem_constr (name_spec, e))
    else Ast.mk (Ast.Attr_constr (name_spec, e))
  | _ -> fail p "expected constructor"

and parse_expr_opt p =
  if cur p = Lexer.RBRACE then Ast.empty_seq () else parse_expr p

and parse_fun_call p =
  let name =
    match cur p with
    | Lexer.NAME n -> n
    | t -> failf p "expected function name, found %s" (Lexer.token_to_string t)
  in
  adv p;
  eat p Lexer.LPAR;
  let rec args acc =
    if cur p = Lexer.RPAR then List.rev acc
    else begin
      let e = parse_expr_single p in
      let acc = e :: acc in
      if cur p = Lexer.COMMA then begin
        adv p;
        args acc
      end
      else List.rev acc
    end
  in
  let args = args [] in
  eat p Lexer.RPAR;
  (* normalize unprefixed builtin names to the fn: prefix *)
  let name = Builtin_names.normalize name in
  Ast.fun_call name args

and parse_primary p =
  match cur p with
  | Lexer.STR s ->
    adv p;
    Ast.str s
  | Lexer.INT i ->
    adv p;
    Ast.int i
  | Lexer.FLOAT f ->
    adv p;
    Ast.literal (Ast.A_float f)
  | Lexer.MINUS ->
    adv p;
    let e = parse_primary p in
    Ast.mk (Ast.Arith (Ast.Sub, Ast.int 0, e))
  | Lexer.DOLLAR ->
    let v = parse_var p in
    Ast.var v
  | Lexer.LPAR ->
    adv p;
    if cur p = Lexer.RPAR then begin
      adv p;
      Ast.empty_seq ()
    end
    else begin
      let e = parse_expr p in
      eat p Lexer.RPAR;
      e
    end
  | Lexer.LT -> parse_direct_constructor p
  | t -> failf p "unexpected token %s" (Lexer.token_to_string t)

(* ---- predicates ----------------------------------------------------------- *)

and parse_predicates p e =
  if cur p = Lexer.LBRACKET then begin
    adv p;
    let e' =
      match cur p with
      | Lexer.INT i when peek_rbracket p ->
        adv p;
        Ast.fun_call "item-at" [ e; Ast.int i ]
      | _ ->
        let v = fresh_var p "dot" in
        let saved = p.ctx_var in
        p.ctx_var <- Some v;
        let pred = parse_expr p in
        p.ctx_var <- saved;
        Ast.mk
          (Ast.For
             (v, e, Ast.mk (Ast.If (pred, Ast.var v, Ast.empty_seq ()))))
    in
    eat p Lexer.RBRACKET;
    parse_predicates p e'
  end
  else e

and peek_rbracket p =
  let lx = p.lx in
  let src = lx.Lexer.src in
  let rec skip i =
    if i < String.length src && (src.[i] = ' ' || src.[i] = '\t' || src.[i] = '\n' || src.[i] = '\r')
    then skip (i + 1)
    else i
  in
  let i = skip lx.Lexer.pos in
  i < String.length src && src.[i] = ']'

(* ---- direct constructors (XML mode) ---------------------------------------- *)

and parse_direct_constructor p =
  (* current token is LT; re-read raw characters from its start *)
  let lx = p.lx in
  let src = lx.Lexer.src in
  let pos = ref (Lexer.raw_start lx) in
  let peekc () = if !pos < String.length src then src.[!pos] else '\000' in
  let advc () = incr pos in
  let failc msg = raise (Error (msg, !pos)) in
  let expectc c =
    if peekc () = c then advc ()
    else failc (Printf.sprintf "in direct constructor: expected %C" c)
  in
  let skip_wsc () =
    while
      !pos < String.length src
      && (let c = peekc () in
          c = ' ' || c = '\t' || c = '\n' || c = '\r')
    do
      advc ()
    done
  in
  let read_name () =
    let start = !pos in
    if not (Lexer.is_name_start (peekc ())) then
      failc "in direct constructor: expected name";
    while Lexer.is_name_char (peekc ()) || peekc () = ':' do
      advc ()
    done;
    String.sub src start (!pos - start)
  in
  (* parse an embedded { expr } starting right after '{'; returns expr and
     leaves !pos after the matching '}' *)
  let embedded_expr () =
    Lexer.resume_at lx !pos;
    let e = parse_expr p in
    if cur p <> Lexer.RBRACE then failc "expected } in direct constructor";
    (* lx.pos is the char right after '}' *)
    pos := lx.Lexer.pos;
    e
  in
  let all_ws s =
    let ok = ref true in
    String.iter (fun c -> if not (c = ' ' || c = '\t' || c = '\n' || c = '\r') then ok := false) s;
    !ok
  in
  let rec element () =
    expectc '<';
    let name = read_name () in
    (* attributes *)
    let attrs = ref [] in
    let rec attr_loop () =
      skip_wsc ();
      match peekc () with
      | '/' | '>' -> ()
      | _ ->
        let an = read_name () in
        skip_wsc ();
        expectc '=';
        skip_wsc ();
        let quote = peekc () in
        if quote <> '"' && quote <> '\'' then failc "expected attribute value";
        advc ();
        (* attribute content: text and {expr} splices, concatenated *)
        let parts = ref [] in
        let buf = Buffer.create 16 in
        let flush () =
          if Buffer.length buf > 0 then begin
            parts := Ast.str (Buffer.contents buf) :: !parts;
            Buffer.clear buf
          end
        in
        let rec scan_av () =
          let c = peekc () in
          if c = '\000' then failc "unterminated attribute value"
          else if c = quote then advc ()
          else if c = '{' then
            if !pos + 1 < String.length src && src.[!pos + 1] = '{' then begin
              Buffer.add_char buf '{';
              pos := !pos + 2;
              scan_av ()
            end
            else begin
              advc ();
              flush ();
              parts := Ast.fun_call "string" [ embedded_expr () ] :: !parts;
              scan_av ()
            end
          else if c = '}' && !pos + 1 < String.length src && src.[!pos + 1] = '}'
          then begin
            Buffer.add_char buf '}';
            pos := !pos + 2;
            scan_av ()
          end
          else if c = '&' then begin
            (* minimal entity support in attribute values *)
            let close = try String.index_from src !pos ';' with Not_found -> failc "unterminated entity" in
            let ent = String.sub src (!pos + 1) (close - !pos - 1) in
            (match ent with
            | "lt" -> Buffer.add_char buf '<'
            | "gt" -> Buffer.add_char buf '>'
            | "amp" -> Buffer.add_char buf '&'
            | "quot" -> Buffer.add_char buf '"'
            | "apos" -> Buffer.add_char buf '\''
            | _ -> failc ("unknown entity &" ^ ent ^ ";"));
            pos := close + 1;
            scan_av ()
          end
          else begin
            Buffer.add_char buf c;
            advc ();
            scan_av ()
          end
        in
        scan_av ();
        flush ();
        let value_expr =
          match List.rev !parts with
          | [] -> Ast.str ""
          | [ e ] -> e
          | es -> Ast.fun_call "concat" es
        in
        attrs :=
          Ast.mk (Ast.Attr_constr (Ast.Fixed_name an, value_expr)) :: !attrs;
        attr_loop ()
    in
    attr_loop ();
    let attrs = List.rev !attrs in
    if peekc () = '/' then begin
      advc ();
      expectc '>';
      Ast.mk (Ast.Elem_constr (Ast.Fixed_name name, Ast.seq attrs))
    end
    else begin
      expectc '>';
      let content = ref [] in
      let buf = Buffer.create 32 in
      let flush () =
        let s = Buffer.contents buf in
        Buffer.clear buf;
        (* boundary whitespace is stripped (default boundary-space strip) *)
        if s <> "" && not (all_ws s) then content := Ast.str s :: !content
      in
      let rec content_loop () =
        match peekc () with
        | '\000' -> failc "unterminated element constructor"
        | '<' ->
          if !pos + 1 < String.length src && src.[!pos + 1] = '/' then begin
            flush ();
            pos := !pos + 2;
            let close = read_name () in
            if close <> name then
              failc (Printf.sprintf "mismatched </%s> for <%s>" close name);
            skip_wsc ();
            expectc '>'
          end
          else begin
            flush ();
            let child = element () in
            content := child :: !content;
            content_loop ()
          end
        | '{' ->
          if !pos + 1 < String.length src && src.[!pos + 1] = '{' then begin
            Buffer.add_char buf '{';
            pos := !pos + 2;
            content_loop ()
          end
          else begin
            advc ();
            flush ();
            content := embedded_expr () :: !content;
            content_loop ()
          end
        | '}' when !pos + 1 < String.length src && src.[!pos + 1] = '}' ->
          Buffer.add_char buf '}';
          pos := !pos + 2;
          content_loop ()
        | '&' ->
          let close = try String.index_from src !pos ';' with Not_found -> failc "unterminated entity" in
          let ent = String.sub src (!pos + 1) (close - !pos - 1) in
          (match ent with
          | "lt" -> Buffer.add_char buf '<'
          | "gt" -> Buffer.add_char buf '>'
          | "amp" -> Buffer.add_char buf '&'
          | "quot" -> Buffer.add_char buf '"'
          | "apos" -> Buffer.add_char buf '\''
          | _ -> failc ("unknown entity &" ^ ent ^ ";"));
          pos := close + 1;
          content_loop ()
        | c ->
          Buffer.add_char buf c;
          advc ();
          content_loop ()
      in
      content_loop ();
      Ast.mk
        (Ast.Elem_constr (Ast.Fixed_name name, Ast.seq (attrs @ List.rev !content)))
    end
  in
  let e = element () in
  Lexer.resume_at lx !pos;
  parse_predicates p e

(* ---- prolog and queries ------------------------------------------------- *)

let parse_function p =
  eat_name p "declare";
  eat_name p "function";
  let name =
    match cur p with
    | Lexer.NAME n ->
      adv p;
      n
    | t -> failf p "expected function name, found %s" (Lexer.token_to_string t)
  in
  eat p Lexer.LPAR;
  let rec params acc =
    if cur p = Lexer.RPAR then List.rev acc
    else begin
      let v = parse_var p in
      let ty =
        if is_name p "as" then begin
          adv p;
          Some (parse_sequence_type p)
        end
        else None
      in
      let acc = (v, ty) :: acc in
      if cur p = Lexer.COMMA then begin
        adv p;
        params acc
      end
      else List.rev acc
    end
  in
  let params = params [] in
  eat p Lexer.RPAR;
  let ret =
    if is_name p "as" then begin
      adv p;
      Some (parse_sequence_type p)
    end
    else None
  in
  eat p Lexer.LBRACE;
  let body = parse_expr p in
  eat p Lexer.RBRACE;
  eat p Lexer.SEMI;
  { Ast.f_name = name; f_params = params; f_return = ret; f_body = body }

let create src = { lx = Lexer.create src; ctx_var = None; fresh = 0 }

let parse_query src =
  let p = create src in
  let rec prolog acc =
    if is_name p "declare" then prolog (parse_function p :: acc)
    else List.rev acc
  in
  let funcs = prolog [] in
  let body = parse_expr p in
  (match cur p with
  | Lexer.EOF -> ()
  | t -> failf p "trailing input: %s" (Lexer.token_to_string t));
  { Ast.funcs; body }

let parse_expr_string src =
  let p = create src in
  let e = parse_expr p in
  (match cur p with
  | Lexer.EOF -> ()
  | t -> failf p "trailing input: %s" (Lexer.token_to_string t));
  e
