(** Dynamic evaluation context.

    The [execute_at] and [resolve_doc] hooks keep the language layer
    transport-agnostic: a local engine plugs in local implementations; the
    XRPC runtime plugs in implementations that marshal values through
    messages — the precise point where the paper's three passing semantics
    differ. *)

module Smap : Map.S with type key = string

exception Dynamic_error of string

val dynamic_error : ('a, Format.formatter, unit, 'b) format4 -> 'a

type t = {
  store : Xd_xml.Store.t;  (** where constructed/shredded nodes live *)
  vars : Value.t Smap.t;
  funcs : Ast.func Smap.t;
  resolve_doc : t -> string -> Xd_xml.Doc.t;  (** fn:doc *)
  execute_at :
    t -> Ast.execute_at -> host:string -> args:(Ast.var * Value.t) list ->
    Value.t;
      (** called with the host string and the evaluated parameter values *)
  builtins : (string, t -> Value.t list -> Value.t) Hashtbl.t;
  schedule : (t -> Ast.expr -> Value.t option) option;
      (** scheduling hook, consulted at Seq/Let/For vertices before
          normal evaluation; [None] from the hook falls back to plain
          sequential evaluation *)
  observe : (Xd_xml.Node.t -> unit) option;
      (** node observer, called on every axis-step result *)
  static_base_uri : string;  (** Problem 5 class-1 context *)
  default_collation : string;
  current_datetime : string;
  mutable recursion_depth : int;
  pul : Pul.t option;
      (** pending update list; [None] = read-only context (updating
          expressions raise) *)
}

val default_resolve_doc : t -> string -> Xd_xml.Doc.t
(** Resolve in the local store by URI. *)

val no_execute_at :
  t -> Ast.execute_at -> host:string -> args:(Ast.var * Value.t) list ->
  Value.t
(** Raises: installed when no RPC transport is configured. *)

val create :
  ?vars:Value.t Smap.t ->
  ?funcs:Ast.func list ->
  ?resolve_doc:(t -> string -> Xd_xml.Doc.t) ->
  ?execute_at:
    (t -> Ast.execute_at -> host:string -> args:(Ast.var * Value.t) list ->
     Value.t) ->
  ?builtins:(string, t -> Value.t list -> Value.t) Hashtbl.t ->
  ?schedule:(t -> Ast.expr -> Value.t option) ->
  ?observe:(Xd_xml.Node.t -> unit) ->
  ?static_base_uri:string ->
  ?default_collation:string ->
  ?current_datetime:string ->
  ?pul:Pul.t ->
  Xd_xml.Store.t ->
  t

val bind : t -> Ast.var -> Value.t -> t
val lookup : t -> Ast.var -> Value.t
val lookup_func : t -> string -> Ast.func option
val with_funcs : t -> Ast.func list -> t
val func_list : t -> Ast.func list
val register_builtin : t -> string -> (t -> Value.t list -> Value.t) -> unit
