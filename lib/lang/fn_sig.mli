(* Typed builtin-function signatures, keyed off [Builtin_names.all].

   The single declarative registry behind three consumers: the static
   checker derives arity acceptance from the parameter shape, the type
   inference pass (lib/types) reads parameter/result sequence types as
   its baseline builtin transfer functions, and tests assert the
   registry stays in bijection with the builtin name list. *)

type t = {
  required : Ast.sequence_type list;
  optional : Ast.sequence_type list; (* accepted after the required ones *)
  variadic : Ast.sequence_type option; (* any number more of this type *)
  result : Ast.sequence_type;
}

(* All signatures. Raises [Invalid_argument] on first use if the registry
   and [Builtin_names.all] disagree (missing, duplicate or extra name). *)
val all : unit -> (string * t) list

val find : string -> t option

(* Is [n] an acceptable argument count for builtin [name]? Names unknown
   to the registry are accepted (non-builtins are checked elsewhere). *)
val arity_ok : string -> int -> bool

(* Declared type of the [i]-th (0-based) argument, following the
   required → optional → variadic order; [None] past the arity. *)
val param_type : t -> int -> Ast.sequence_type option
