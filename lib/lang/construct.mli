(** Node construction (element/attribute/text/document constructors).

    Constructors deep-copy their node content into a fresh document of the
    evaluating store — fresh node identity, per XQuery semantics. Message
    shredding performs the same operation, which is exactly why
    pass-by-value behaves like construction and loses identity. *)

val copy_into : Xd_xml.Doc.Builder.b -> Xd_xml.Node.t -> unit
val split_content : Value.t -> (string * string) list * Value.t
val add_content : Xd_xml.Doc.Builder.b -> Value.t -> unit

val element : Xd_xml.Store.t -> string -> Value.t -> Xd_xml.Node.t
val attribute : Xd_xml.Store.t -> string -> string -> Xd_xml.Node.t
(** A standalone attribute lives on a synthetic wrapper element. *)

val text : Xd_xml.Store.t -> string -> Xd_xml.Node.t
val document : Xd_xml.Store.t -> Value.t -> Xd_xml.Node.t
val deep_copy : Xd_xml.Store.t -> Xd_xml.Node.t -> Xd_xml.Node.t
