(** The XCore evaluator.

    A standard environment-passing interpreter with two load-bearing
    choices: path steps always sort and deduplicate their result in
    document order (the property whose loss pass-by-value causes — the
    paper's Problems 1-4), and [Execute_at] delegates to the environment's
    RPC hook. *)

val max_recursion : int

val test_matches : Ast.axis -> Ast.node_test -> Xd_xml.Node.t -> bool
(** Node-test semantics, with the axis's principal node kind. *)

val axis_nodes : Ast.axis -> Xd_xml.Node.t -> Xd_xml.Node.t list

val eval_step :
  Ast.axis -> Ast.node_test -> Xd_xml.Node.t list -> Xd_xml.Node.t list
(** One axis step over a context sequence: filter by test, concatenate,
    sort and deduplicate in document order. *)

val matches_sequence_type : Value.t -> Ast.sequence_type -> bool
(** Typeswitch case matching (occurrence + item kinds). *)

val eval : Env.t -> Ast.expr -> Value.t
(** Evaluate an expression.
    @raise Env.Dynamic_error on unbound variables, unknown functions, …
    @raise Value.Type_error on typing violations. *)

val local_execute_at :
  Env.t -> Ast.execute_at -> host:string -> args:(Ast.var * Value.t) list ->
  Value.t
(** Reference handler: evaluates the body in place, sharing the store —
    full node-identity fidelity. Any decomposition must reproduce this
    semantics. *)

val default_env :
  ?vars:Value.t Env.Smap.t ->
  ?funcs:Ast.func list ->
  ?resolve_doc:(Env.t -> string -> Xd_xml.Doc.t) ->
  ?execute_at:
    (Env.t -> Ast.execute_at -> host:string ->
     args:(Ast.var * Value.t) list -> Value.t) ->
  ?pul:Pul.t ->
  Xd_xml.Store.t ->
  Env.t
(** Environment with the full builtin library; [execute_at] defaults to
    {!local_execute_at}. Without [pul], updating expressions raise. *)

val eval_and_apply : Env.t -> Ast.expr -> Value.t
(** Evaluate, then apply the environment's pending update list (snapshot
    semantics: the result reflects the pre-update state). *)

val run :
  ?resolve_doc:(Env.t -> string -> Xd_xml.Doc.t) ->
  ?execute_at:
    (Env.t -> Ast.execute_at -> host:string ->
     args:(Ast.var * Value.t) list -> Value.t) ->
  Xd_xml.Store.t ->
  string ->
  Value.t
(** Parse and evaluate a query text against a store. *)

val run_query :
  ?resolve_doc:(Env.t -> string -> Xd_xml.Doc.t) ->
  ?execute_at:
    (Env.t -> Ast.execute_at -> host:string ->
     args:(Ast.var * Value.t) list -> Value.t) ->
  Xd_xml.Store.t ->
  Ast.query ->
  Value.t
