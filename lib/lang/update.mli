(** XQUF application (the paper's Section IX future work).

    Updating expressions accumulate a pending update list during
    evaluation; {!apply} rebuilds each touched document and re-registers it
    in its store under the same id and URI (snapshot semantics: results
    computed before application keep reading the old version). *)

val content_of_value : Value.t -> Xd_xml.Doc.tree list
(** Copy a value into insertable content trees (XQUF copies inserted
    nodes); adjacent atoms merge into one text node. *)

val apply_to_doc : Xd_xml.Doc.t -> Pul.pending list -> Xd_xml.Doc.t

val apply : Xd_xml.Store.t -> Pul.pending list -> int
(** Apply a PUL, grouping by target document. All documents are rebuilt
    before the first is swapped in, so failure leaves the store untouched.
    Returns the number of primitives applied. *)

val apply_staged : Xd_xml.Store.t -> string list -> int
(** Commit a transaction's staged PULs (serialized {!Pul.to_xml} form, in
    staging order) atomically against [store]. Shared by live commit and
    crash-recovery replay. @raise Failure on a corrupt or stale PUL. *)
