(** XQUF application (the paper's Section IX future work).

    Updating expressions accumulate a pending update list during
    evaluation; {!apply} rebuilds each touched document and re-registers it
    in its store under the same id and URI (snapshot semantics: results
    computed before application keep reading the old version). *)

val content_of_value : Value.t -> Xd_xml.Doc.tree list
(** Copy a value into insertable content trees (XQUF copies inserted
    nodes); adjacent atoms merge into one text node. *)

val apply_to_doc : Xd_xml.Doc.t -> Pul.pending list -> Xd_xml.Doc.t

val apply : Xd_xml.Store.t -> Pul.pending list -> int
(** Apply a PUL, grouping by target document. Returns the number of
    primitives applied. *)
