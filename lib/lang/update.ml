(* XQUF subset (the paper's Section IX future work): pending update lists
   and their application.

   Updating expressions evaluate to the empty sequence and append to the
   dynamic context's pending update list (PUL); the PUL is applied when the
   query completes — snapshot semantics: the query result is computed
   against the pre-update state. Applying an update rebuilds the target
   document (the store is immutable-per-document) and re-registers it
   under the same document id and URI, so subsequent queries see the new
   content while node handles held by the old result keep pointing at the
   untouched old version. *)

module X = Xd_xml
open Pul

(* Convert a value into copied content trees (XQUF copies inserted
   content); adjacent atoms merge into one text node. *)
let content_of_value (v : Value.t) : X.Doc.tree list =
  let rec tree_of_node n =
    match X.Node.kind n with
    | X.Node.Element ->
      X.Doc.E
        ( X.Node.name n,
          List.map
            (fun a -> (X.Node.name a, X.Node.string_value a))
            (X.Node.attributes n),
          List.map tree_of_node (X.Node.children n) )
    | X.Node.Text -> X.Doc.T (X.Node.string_value n)
    | X.Node.Comment -> X.Doc.C (X.Node.string_value n)
    | X.Node.Pi -> X.Doc.P (X.Node.name n, X.Node.string_value n)
    | X.Node.Document ->
      (* splice document content *)
      X.Doc.E ("#doc", [], List.map tree_of_node (X.Node.children n))
    | X.Node.Attribute ->
      Env.dynamic_error "cannot insert a bare attribute node"
  in
  let rec go prev_atom acc = function
    | [] -> List.rev acc
    | Value.N n :: rest -> (
      match tree_of_node n with
      | X.Doc.E ("#doc", _, kids) -> go false (List.rev_append kids acc) rest
      | t -> go false (t :: acc) rest)
    | Value.A a :: rest ->
      let s = Value.atom_to_string a in
      let acc =
        match acc with
        | X.Doc.T prev :: tl when prev_atom -> X.Doc.T (prev ^ " " ^ s) :: tl
        | _ -> X.Doc.T s :: acc
      in
      go true acc rest
  in
  go false [] v

(* ---- application ---------------------------------------------------- *)

(* Per-document rebuild: walk the original tree, consulting index-keyed
   edit maps. Inserted content is emitted via the builder. *)
let apply_to_doc (d : X.Doc.t) (edits : pending list) : X.Doc.t =
  let deletes = Hashtbl.create 8 in
  let inserts_into = Hashtbl.create 8 in
  let inserts_before = Hashtbl.create 8 in
  let inserts_after = Hashtbl.create 8 in
  let replacements = Hashtbl.create 8 in
  let renames = Hashtbl.create 8 in
  let attr_deletes = Hashtbl.create 8 in
  let attr_replacements = Hashtbl.create 8 in
  let attr_renames = Hashtbl.create 8 in
  let add tbl k v =
    Hashtbl.replace tbl k (Option.value ~default:[] (Hashtbl.find_opt tbl k) @ v)
  in
  List.iter
    (fun p ->
      let n = target_of p in
      let idx = X.Node.index n in
      if X.Node.is_attribute n then
        let key = (idx, X.Node.name n) in
        match p with
        | P_delete _ -> Hashtbl.replace attr_deletes key ()
        | P_replace_value (_, s) -> Hashtbl.replace attr_replacements key s
        | P_rename (_, nm) -> Hashtbl.replace attr_renames key nm
        | P_insert _ ->
          Env.dynamic_error "cannot insert into an attribute node"
      else
        match p with
        | P_delete _ -> Hashtbl.replace deletes idx ()
        | P_insert (_, Ast.Into, content) -> add inserts_into idx content
        | P_insert (_, Ast.Before, content) -> add inserts_before idx content
        | P_insert (_, Ast.After, content) -> add inserts_after idx content
        | P_replace_value (_, s) -> Hashtbl.replace replacements idx s
        | P_rename (_, nm) -> Hashtbl.replace renames idx nm)
    edits;
  let b = X.Doc.Builder.create ?uri:(X.Doc.uri d) () in
  let emit_trees ts =
    List.iter
      (fun t ->
        let rec go = function
          | X.Doc.E (n, attrs, kids) ->
            X.Doc.Builder.start_element b n attrs;
            List.iter go kids;
            X.Doc.Builder.end_element b
          | X.Doc.T s -> X.Doc.Builder.text b s
          | X.Doc.C s -> X.Doc.Builder.comment b s
          | X.Doc.P (t, v) -> X.Doc.Builder.pi b t v
        in
        go t)
      ts
  in
  let find tbl k = Option.value ~default:[] (Hashtbl.find_opt tbl k) in
  let rec emit i =
    if not (Hashtbl.mem deletes i) then begin
      emit_trees (find inserts_before i);
      (match d.X.Doc.kind.(i) with
      | X.Doc.Element ->
        let name =
          Option.value ~default:d.X.Doc.name.(i) (Hashtbl.find_opt renames i)
        in
        let attrs =
          match d.X.Doc.attr_first.(i) with
          | -1 -> []
          | first ->
            List.filter_map
              (fun k ->
                let an = d.X.Doc.attr_name.(first + k) in
                if Hashtbl.mem attr_deletes (i, an) then None
                else
                  let an' =
                    Option.value ~default:an
                      (Hashtbl.find_opt attr_renames (i, an))
                  in
                  let av =
                    Option.value
                      ~default:d.X.Doc.attr_value.(first + k)
                      (Hashtbl.find_opt attr_replacements (i, an))
                  in
                  Some (an', av))
              (List.init d.X.Doc.attr_count.(i) Fun.id)
        in
        X.Doc.Builder.start_element b name attrs;
        (match Hashtbl.find_opt replacements i with
        | Some s -> X.Doc.Builder.text b s (* replace value of element *)
        | None -> emit_children i);
        emit_trees (find inserts_into i);
        X.Doc.Builder.end_element b
      | X.Doc.Text ->
        X.Doc.Builder.text b
          (Option.value ~default:d.X.Doc.value.(i) (Hashtbl.find_opt replacements i))
      | X.Doc.Comment ->
        X.Doc.Builder.comment b
          (Option.value ~default:d.X.Doc.value.(i) (Hashtbl.find_opt replacements i))
      | X.Doc.Pi ->
        X.Doc.Builder.pi b
          (Option.value ~default:d.X.Doc.name.(i) (Hashtbl.find_opt renames i))
          d.X.Doc.value.(i)
      | X.Doc.Document -> emit_children i);
      emit_trees (find inserts_after i)
    end
  and emit_children i =
    let stop = i + d.X.Doc.size.(i) in
    let j = ref (i + 1) in
    while !j <= stop do
      emit !j;
      j := !j + d.X.Doc.size.(!j) + 1
    done
  in
  emit_children 0;
  emit_trees (find inserts_into 0);
  X.Doc.Builder.finish b

(* Apply a pending update list: group by target document, rebuild each, and
   re-register the results in the owning store under the same ids and URIs.
   Two phases — all rebuilds (which may fail) complete before the first
   document is swapped in, so a failing PUL leaves the store untouched and
   a staged-PUL commit is all-or-nothing locally. *)
let apply (store : X.Store.t) (pul : pending list) : int =
  let by_doc = Hashtbl.create 4 in
  let order = ref [] in
  List.iter
    (fun p ->
      let d = (target_of p).X.Node.doc in
      (match Hashtbl.find_opt by_doc d.X.Doc.did with
      | None ->
        order := d.X.Doc.did :: !order;
        Hashtbl.replace by_doc d.X.Doc.did (d, [ p ])
      | Some (d0, edits) -> Hashtbl.replace by_doc d.X.Doc.did (d0, p :: edits)))
    pul;
  let rebuilt =
    List.rev_map
      (fun did ->
        let d, edits = Hashtbl.find by_doc did in
        (d, apply_to_doc d (List.rev edits)))
      !order
  in
  X.Store.swap_all store rebuilt;
  List.length pul

(* Commit a transaction's staged PULs (journal/wire form, in staging
   order): deserialize them all, then apply as one list — so commit and
   crash-recovery replay share one code path and one atomicity argument. *)
let apply_staged (store : X.Store.t) (staged : string list) : int =
  apply store (List.concat_map (fun s -> Pul.of_xml ~store s) staged)
