(* The pending update list type (XQUF subset). Kept in its own module so
   the dynamic environment can hold a PUL without depending on the update
   application machinery. *)

module X = Xd_xml

type pending =
  | P_insert of X.Node.t * Ast.insert_pos * X.Doc.tree list
      (* target node, position, already-copied content *)
  | P_delete of X.Node.t
  | P_replace_value of X.Node.t * string
  | P_rename of X.Node.t * string

let target_of = function
  | P_insert (n, _, _) | P_delete n | P_replace_value (n, _) | P_rename (n, _)
    ->
    n

type t = { mutable pending : pending list (* reversed *) }

let create () = { pending = [] }
let add t p = t.pending <- p :: t.pending
let list t = List.rev t.pending
let is_empty t = t.pending = []

(* ---- wire / journal form --------------------------------------------- *)

(* A staged PUL travels (and is journaled) as one XML element:

     <pul>
       <u kind="delete|insert|replace-value|rename"
          did="D" idx="I" [attr="name"] [pos="into|before|after"]>
         <v>…replacement/rename text…</v>          (value-carrying kinds)
         <c k="e|t|c|p" [n="pi-target"]>…</c>      (insert content items)
       </u>
     </pul>

   Targets are identified by (document id, pre-order index[, attribute
   name]) in the *owning* store — staging happens at the peer that owns
   the target document, so the ids resolve locally at commit time. The
   replacement text rides in a child element rather than an attribute so
   that newlines survive the round trip. *)

let buf_escape_text buf s =
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | c -> Buffer.add_char buf c)
    s

let buf_attr buf name v =
  Buffer.add_char buf ' ';
  Buffer.add_string buf name;
  Buffer.add_string buf "=\"";
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.add_char buf '"'

let rec buf_tree buf = function
  | X.Doc.E (name, attrs, kids) ->
    Buffer.add_char buf '<';
    Buffer.add_string buf name;
    List.iter (fun (n, v) -> buf_attr buf n v) attrs;
    Buffer.add_char buf '>';
    List.iter (buf_tree buf) kids;
    Buffer.add_string buf "</";
    Buffer.add_string buf name;
    Buffer.add_char buf '>'
  | X.Doc.T s -> buf_escape_text buf s
  | X.Doc.C s ->
    Buffer.add_string buf "<!--";
    Buffer.add_string buf s;
    Buffer.add_string buf "-->"
  | X.Doc.P (t, v) ->
    Buffer.add_string buf "<?";
    Buffer.add_string buf t;
    Buffer.add_char buf ' ';
    Buffer.add_string buf v;
    Buffer.add_string buf "?>"

let buf_content_item buf t =
  let wrap k ?n body =
    Buffer.add_string buf "<c k=\"";
    Buffer.add_string buf k;
    Buffer.add_char buf '"';
    (match n with Some n -> buf_attr buf "n" n | None -> ());
    Buffer.add_char buf '>';
    body ();
    Buffer.add_string buf "</c>"
  in
  match t with
  | X.Doc.E _ -> wrap "e" (fun () -> buf_tree buf t)
  | X.Doc.T s -> wrap "t" (fun () -> buf_escape_text buf s)
  | X.Doc.C s -> wrap "c" (fun () -> buf_escape_text buf s)
  | X.Doc.P (tgt, v) -> wrap "p" ~n:tgt (fun () -> buf_escape_text buf v)

let to_xml (ps : pending list) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "<pul>";
  List.iter
    (fun p ->
      let n = target_of p in
      let kind, pos, payload =
        match p with
        | P_insert (_, Ast.Into, c) -> ("insert", Some "into", `Content c)
        | P_insert (_, Ast.Before, c) -> ("insert", Some "before", `Content c)
        | P_insert (_, Ast.After, c) -> ("insert", Some "after", `Content c)
        | P_delete _ -> ("delete", None, `None)
        | P_replace_value (_, s) -> ("replace-value", None, `Text s)
        | P_rename (_, s) -> ("rename", None, `Text s)
      in
      Buffer.add_string buf "<u";
      buf_attr buf "kind" kind;
      buf_attr buf "did" (string_of_int n.X.Node.doc.X.Doc.did);
      buf_attr buf "idx" (string_of_int (X.Node.index n));
      if X.Node.is_attribute n then buf_attr buf "attr" (X.Node.name n);
      (match pos with Some p -> buf_attr buf "pos" p | None -> ());
      Buffer.add_char buf '>';
      (match payload with
      | `None -> ()
      | `Text s ->
        Buffer.add_string buf "<v>";
        buf_escape_text buf s;
        Buffer.add_string buf "</v>"
      | `Content trees -> List.iter (buf_content_item buf) trees);
      Buffer.add_string buf "</u>")
    ps;
  Buffer.add_string buf "</pul>";
  Buffer.contents buf

(* Deserialization: resolves targets against [store]. Any inconsistency
   (missing document, stale index, unknown attribute) is a corrupt or
   stale staged PUL — fail loudly; the caller turns this into a protocol
   fault. *)

let corrupt fmt = Printf.ksprintf failwith fmt

let elem_children n =
  List.filter (fun c -> X.Node.kind c = X.Node.Element) (X.Node.children n)

let attr_of n name =
  List.find_map
    (fun a -> if X.Node.name a = name then Some (X.Node.string_value a) else None)
    (X.Node.attributes n)

let req_attr n name =
  match attr_of n name with
  | Some v -> v
  | None -> corrupt "staged PUL: <%s> missing %s=" (X.Node.name n) name

let rec tree_of_elem n =
  match X.Node.kind n with
  | X.Node.Element ->
    X.Doc.E
      ( X.Node.name n,
        List.map
          (fun a -> (X.Node.name a, X.Node.string_value a))
          (X.Node.attributes n),
        List.map tree_of_elem (X.Node.children n) )
  | X.Node.Text -> X.Doc.T (X.Node.string_value n)
  | X.Node.Comment -> X.Doc.C (X.Node.string_value n)
  | X.Node.Pi -> X.Doc.P (X.Node.name n, X.Node.string_value n)
  | X.Node.Document | X.Node.Attribute ->
    corrupt "staged PUL: unexpected node kind in content"

let content_of n =
  match req_attr n "k" with
  | "e" -> (
    match elem_children n with
    | [ e ] -> tree_of_elem e
    | _ -> corrupt "staged PUL: <c k=\"e\"> must wrap one element")
  | "t" -> X.Doc.T (X.Node.string_value n)
  | "c" -> X.Doc.C (X.Node.string_value n)
  | "p" -> X.Doc.P (req_attr n "n", X.Node.string_value n)
  | k -> corrupt "staged PUL: unknown content kind %S" k

let of_xml ~(store : X.Store.t) (s : string) : pending list =
  let d =
    try X.Parser.parse_doc ~strip_ws:false s
    with X.Parser.Error (m, _) -> corrupt "staged PUL unparsable: %s" m
  in
  let root =
    match elem_children (X.Node.doc_node d) with
    | [ r ] when X.Node.name r = "pul" -> r
    | _ -> corrupt "staged PUL: root element must be <pul>"
  in
  List.map
    (fun u ->
      if X.Node.name u <> "u" then
        corrupt "staged PUL: unexpected <%s>" (X.Node.name u);
      let did = int_of_string (req_attr u "did") in
      let idx = int_of_string (req_attr u "idx") in
      let doc =
        match X.Store.find_did store did with
        | Some doc -> doc
        | None -> corrupt "staged PUL: unknown document %d" did
      in
      if idx < 0 || idx >= X.Doc.n_nodes doc then
        corrupt "staged PUL: stale index %d in document %d" idx did;
      let target =
        let n = X.Node.of_tree doc idx in
        match attr_of u "attr" with
        | None -> n
        | Some a -> (
          match
            List.find_opt (fun x -> X.Node.name x = a) (X.Node.attributes n)
          with
          | Some attr -> attr
          | None -> corrupt "staged PUL: no attribute %S on node %d:%d" a did idx)
      in
      match req_attr u "kind" with
      | "delete" -> P_delete target
      | "replace-value" -> (
        match elem_children u with
        | [ v ] when X.Node.name v = "v" ->
          P_replace_value (target, X.Node.string_value v)
        | _ -> corrupt "staged PUL: replace-value without <v>")
      | "rename" -> (
        match elem_children u with
        | [ v ] when X.Node.name v = "v" -> P_rename (target, X.Node.string_value v)
        | _ -> corrupt "staged PUL: rename without <v>")
      | "insert" ->
        let pos =
          match req_attr u "pos" with
          | "into" -> Ast.Into
          | "before" -> Ast.Before
          | "after" -> Ast.After
          | p -> corrupt "staged PUL: unknown insert position %S" p
        in
        P_insert (target, pos, List.map content_of (elem_children u))
      | k -> corrupt "staged PUL: unknown update kind %S" k)
    (elem_children root)
