(* The pending update list type (XQUF subset). Kept in its own module so
   the dynamic environment can hold a PUL without depending on the update
   application machinery. *)

module X = Xd_xml

type pending =
  | P_insert of X.Node.t * Ast.insert_pos * X.Doc.tree list
      (* target node, position, already-copied content *)
  | P_delete of X.Node.t
  | P_replace_value of X.Node.t * string
  | P_rename of X.Node.t * string

let target_of = function
  | P_insert (n, _, _) | P_delete n | P_replace_value (n, _) | P_rename (n, _)
    ->
    n

type t = { mutable pending : pending list (* reversed *) }

let create () = { pending = [] }
let add t p = t.pending <- p :: t.pending
let list t = List.rev t.pending
let is_empty t = t.pending = []
