(* Function-name normalization: the "fn:" prefix is stripped at parse time
   so builtins are identified by their local name ("doc", "root", "id", ...)
   everywhere downstream (evaluator, decomposition conditions, projection
   path analysis). Other prefixes (user modules, xrpc:) are kept. *)

let normalize name =
  if String.length name > 3 && String.sub name 0 3 = "fn:" then
    String.sub name 3 (String.length name - 3)
  else name
