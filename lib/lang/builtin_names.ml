(* Function-name normalization: the "fn:" prefix is stripped at parse time
   so builtins are identified by their local name ("doc", "root", "id", ...)
   everywhere downstream (evaluator, decomposition conditions, projection
   path analysis). Other prefixes (user modules, xrpc:) are kept.

   [all] is the single authoritative list of builtin function names. The
   evaluator registry (Builtins.table) asserts it registers exactly this
   set, and the decomposition conditions and the plan verifier derive
   their known-function set from it, so the three can never drift. *)

let normalize name =
  if String.length name > 3 && String.sub name 0 3 = "fn:" then
    String.sub name 3 (String.length name - 3)
  else name

let all =
  [
    (* documents and node identity *)
    "doc"; "collection"; "root"; "id"; "idref"; "base-uri"; "document-uri";
    (* static context *)
    "static-base-uri"; "default-collation"; "current-dateTime";
    (* booleans *)
    "true"; "false"; "not"; "boolean";
    (* cardinality *)
    "count"; "empty"; "exists"; "zero-or-one"; "exactly-one"; "one-or-more";
    (* atomization and strings *)
    "string"; "data"; "number"; "concat"; "string-length"; "contains";
    "starts-with"; "ends-with"; "substring"; "string-join"; "normalize-space";
    "upper-case"; "lower-case"; "substring-before"; "substring-after";
    (* numerics and aggregates *)
    "sum"; "avg"; "max"; "min"; "abs"; "floor"; "ceiling"; "round";
    (* sequences *)
    "distinct-values"; "reverse"; "subsequence"; "item-at"; "insert-before";
    "remove"; "deep-equal";
    (* names *)
    "name"; "local-name";
    (* XRPC accessors (class-2 functions of the paper: evaluated against
       the peer-local static context, never shipped) *)
    "xrpc:base-uri"; "xrpc:document-uri";
    (* errors *)
    "error";
  ]

let is_builtin name = List.mem name all
