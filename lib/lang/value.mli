(** Runtime values: sequences of items (nodes or typed atomics), with the
    XQuery atomization, comparison and effective-boolean-value rules of the
    XCore subset. Operating schemaless, node atomization yields
    xs:untypedAtomic, which promotes to double next to a number and
    compares as a string next to a string. *)

exception Type_error of string

val type_error : ('a, Format.formatter, unit, 'b) format4 -> 'a

type atom =
  | String of string
  | Integer of int
  | Double of float
  | Boolean of bool
  | Untyped of string

type item = N of Xd_xml.Node.t | A of atom
type t = item list

val of_node : Xd_xml.Node.t -> t
val of_bool : bool -> t
val of_int : int -> t
val of_float : float -> t
val of_string : string -> t
val empty : t

val nodes_of : t -> Xd_xml.Node.t list
(** @raise Type_error if the sequence contains atomic items. *)

val atom_to_string : atom -> string
val atomize_item : item -> atom
val atomize : t -> atom list
val atom_to_double : atom -> float

val compare_atoms : Ast.value_comp -> atom -> atom -> bool
(** One pairwise general comparison with untyped promotion.
    @raise Type_error on incomparable types. *)

val general_compare : Ast.value_comp -> t -> t -> bool
(** Existential general comparison over two sequences. *)

val effective_boolean_value : t -> bool
val string_value : t -> string
val to_double : t -> float
val arith : Ast.arith_op -> t -> t -> t

val order_compare : atom option -> atom option -> int
(** [order by] key comparison; empty sorts first. *)

val atom_equal : atom -> atom -> bool
val deep_equal : t -> t -> bool
(** fn:deep-equal over whole sequences — the paper's query-equivalence
    notion. *)

val pp_atom : Format.formatter -> atom -> unit
val pp_item : Format.formatter -> item -> unit
val pp : Format.formatter -> t -> unit

val serialize : t -> string
(** Render as a query result: nodes as XML, atoms space-separated. *)
