(* Static checks: run before evaluation or decomposition to reject queries
   that would only fail at runtime — unbound variables, unknown functions,
   wrong arities, duplicate parameters/functions. The check is
   scope-precise (it follows the same binder structure as the evaluator)
   and collects *all* errors rather than stopping at the first. *)

type error = {
  vertex : int; (* AST vertex id where the problem sits *)
  message : string;
}

let pp_error fmt e = Fmt.pf fmt "v%d: %s" e.vertex e.message

(* builtins are resolved against the default table; custom engines can pass
   additional names *)
let default_builtin_names () =
  let t = Builtins.table () in
  Hashtbl.fold (fun name _ acc -> name :: acc) t []

(* Arity acceptance is derived from the typed signature registry: a
   builtin accepts [n] arguments iff n covers the required parameters and
   stays within optional/variadic bounds. The registry is keyed off
   Builtin_names.all, so a builtin can neither miss its arity check nor
   carry a stale hand-copied one. *)
let builtin_arity_ok = Fn_sig.arity_ok

let check_expr ~funcs ~builtins ?(bound = []) (e : Ast.expr) : error list =
  let errors = ref [] in
  let err vertex fmt =
    Format.kasprintf (fun message -> errors := { vertex; message } :: !errors) fmt
  in
  let fun_arity name =
    List.find_map
      (fun f ->
        if f.Ast.f_name = name then Some (List.length f.Ast.f_params) else None)
      funcs
  in
  let rec go scope (x : Ast.expr) =
    (match x.Ast.desc with
    | Ast.Var_ref v ->
      if not (List.mem v scope) then err x.Ast.id "unbound variable $%s" v
    | Ast.Fun_call (name, args) -> (
      let n = List.length args in
      match fun_arity name with
      | Some arity ->
        if n <> arity then
          err x.Ast.id "function %s expects %d argument(s), got %d" name arity n
      | None ->
        if not (List.mem name builtins) then
          err x.Ast.id "unknown function %s()" name
        else if not (builtin_arity_ok name n) then
          err x.Ast.id "wrong number of arguments (%d) for fn:%s" n name)
    | Ast.Execute_at ea ->
      let names = List.map fst ea.Ast.params in
      if List.length (List.sort_uniq compare names) <> List.length names then
        err x.Ast.id "duplicate execute-at parameter names"
    | _ -> ());
    match x.Ast.desc with
    | Ast.Execute_at ea ->
      (* rule 27: the remote body is a closed function — it sees only its
         parameters, never the caller's scope *)
      go scope ea.Ast.host;
      List.iter (fun (_, pe) -> go scope pe) ea.Ast.params;
      go (List.map fst ea.Ast.params) ea.Ast.body
    | _ ->
      List.iter2
        (fun child extra -> go (extra @ scope) child)
        (Ast.children x) (Ast.bound_in_children x)
  in
  go bound e;
  List.rev !errors

let check (q : Ast.query) : error list =
  let builtins = default_builtin_names () in
  let fnames = List.map (fun f -> f.Ast.f_name) q.Ast.funcs in
  let dup_errors =
    let rec dups = function
      | [] -> []
      | n :: rest when List.mem n rest ->
        [ { vertex = 0; message = "duplicate function declaration " ^ n } ]
        @ dups rest
      | _ :: rest -> dups rest
    in
    dups fnames
  in
  let func_errors =
    List.concat_map
      (fun f ->
        let params = List.map fst f.Ast.f_params in
        let dup_params =
          if List.length (List.sort_uniq compare params) <> List.length params
          then
            [
              {
                vertex = f.Ast.f_body.Ast.id;
                message = "duplicate parameter in function " ^ f.Ast.f_name;
              };
            ]
          else []
        in
        dup_params
        @ check_expr ~funcs:q.Ast.funcs ~builtins ~bound:params f.Ast.f_body)
      q.Ast.funcs
  in
  dup_errors @ func_errors @ check_expr ~funcs:q.Ast.funcs ~builtins q.Ast.body

let check_exn q =
  match check q with
  | [] -> ()
  | e :: _ -> Env.dynamic_error "static error: %s" e.message
