(* The XCore evaluator. Standard environment-passing interpreter; the only
   unusual pieces are (a) path steps always sort and deduplicate their
   result in document order — the property whose loss under pass-by-value
   the paper's Problems 1-4 describe — and (b) Execute_at delegates to the
   environment's RPC hook. *)

module X = Xd_xml

let max_recursion = 4096

let test_matches axis test n =
  let principal_attr = axis = Ast.Attribute in
  let kind = X.Node.kind n in
  match test with
  | Ast.Kind_node -> true
  | Ast.Kind_text -> kind = X.Node.Text
  | Ast.Kind_comment -> kind = X.Node.Comment
  | Ast.Kind_element None -> kind = X.Node.Element
  | Ast.Kind_element (Some nm) -> kind = X.Node.Element && X.Node.name n = nm
  | Ast.Kind_attribute None -> kind = X.Node.Attribute
  | Ast.Kind_attribute (Some nm) ->
    kind = X.Node.Attribute && X.Node.name n = nm
  | Ast.Wildcard ->
    if principal_attr then kind = X.Node.Attribute else kind = X.Node.Element
  | Ast.Name_test nm ->
    if principal_attr then kind = X.Node.Attribute && X.Node.name n = nm
    else kind = X.Node.Element && X.Node.name n = nm

let axis_nodes axis n =
  match axis with
  | Ast.Child -> X.Node.children n
  | Ast.Descendant -> X.Node.descendants n
  | Ast.Descendant_or_self -> X.Node.descendant_or_self n
  | Ast.Self -> [ n ]
  | Ast.Attribute -> X.Node.attributes n
  | Ast.Parent -> ( match X.Node.parent n with None -> [] | Some p -> [ p ])
  | Ast.Ancestor -> X.Node.ancestors n
  | Ast.Ancestor_or_self -> X.Node.ancestor_or_self n
  | Ast.Following -> X.Node.following n
  | Ast.Following_sibling -> X.Node.following_sibling n
  | Ast.Preceding -> X.Node.preceding n
  | Ast.Preceding_sibling -> X.Node.preceding_sibling n

let eval_step axis test ctx_nodes =
  let per_node n =
    List.filter (test_matches axis test) (axis_nodes axis n)
  in
  X.Seq_ops.sort_dedup (List.concat_map per_node ctx_nodes)

let matches_sequence_type (v : Value.t) = function
  | Ast.St_empty -> v = []
  | Ast.St_items (it, occ) ->
    let count_ok =
      match occ with
      | Ast.Occ_one -> List.length v = 1
      | Ast.Occ_opt -> List.length v <= 1
      | Ast.Occ_star -> true
      | Ast.Occ_plus -> v <> []
    in
    let item_ok item =
      match (it, item) with
      | Ast.It_item, _ -> true
      | Ast.It_node, Value.N _ -> true
      | Ast.It_element nm, Value.N n ->
        X.Node.kind n = X.Node.Element
        && (match nm with None -> true | Some x -> X.Node.name n = x)
      | Ast.It_attribute nm, Value.N n ->
        X.Node.kind n = X.Node.Attribute
        && (match nm with None -> true | Some x -> X.Node.name n = x)
      | Ast.It_text, Value.N n -> X.Node.kind n = X.Node.Text
      | Ast.It_document, Value.N n -> X.Node.kind n = X.Node.Document
      | Ast.It_atomic ty, Value.A a -> (
        match (ty, a) with
        | ("xs:string" | "string"), Value.String _ -> true
        | ("xs:integer" | "integer" | "xs:int"), Value.Integer _ -> true
        | ("xs:double" | "xs:decimal" | "double" | "decimal"), Value.Double _
          ->
          true
        | ("xs:boolean" | "boolean"), Value.Boolean _ -> true
        | ("xs:untypedAtomic" | "untypedAtomic"), Value.Untyped _ -> true
        | ("xs:anyAtomicType" | "anyAtomicType"), _ -> true
        | _ -> false)
      | _, _ -> false
    in
    count_ok && List.for_all item_ok v

let rec eval (env : Env.t) (e : Ast.expr) : Value.t =
  (* the scheduling hook gets first refusal on the vertices that can
     anchor an overlap group; [None] means "no schedule here" and falls
     through to plain sequential evaluation *)
  match (env.Env.schedule, e.desc) with
  | Some f, (Ast.Seq _ | Ast.Let _ | Ast.For _) -> (
    match f env e with Some v -> v | None -> eval_desc env e)
  | _ -> eval_desc env e

and eval_desc (env : Env.t) (e : Ast.expr) : Value.t =
  match e.desc with
  | Ast.Literal (Ast.A_string s) -> Value.of_string s
  | Ast.Literal (Ast.A_int i) -> Value.of_int i
  | Ast.Literal (Ast.A_float f) -> Value.of_float f
  | Ast.Literal (Ast.A_bool b) -> Value.of_bool b
  | Ast.Var_ref v -> Env.lookup env v
  | Ast.Seq es -> List.concat_map (eval env) es
  | Ast.For (v, e1, e2) ->
    let seq = eval env e1 in
    List.concat_map (fun item -> eval (Env.bind env v [ item ]) e2) seq
  | Ast.Let (v, e1, e2) -> eval (Env.bind env v (eval env e1)) e2
  | Ast.If (c, t, f) ->
    if Value.effective_boolean_value (eval env c) then eval env t
    else eval env f
  | Ast.Typeswitch (e0, cases, dv, dflt) ->
    let v0 = eval env e0 in
    let rec try_cases = function
      | [] -> eval (Env.bind env dv v0) dflt
      | (v, st, body) :: rest ->
        if matches_sequence_type v0 st then eval (Env.bind env v v0) body
        else try_cases rest
    in
    try_cases cases
  | Ast.Value_cmp (op, a, b) ->
    Value.of_bool (Value.general_compare op (eval env a) (eval env b))
  | Ast.Node_cmp (op, a, b) -> (
    let get name v =
      match v with
      | [] -> None
      | [ Value.N n ] -> Some n
      | _ -> Env.dynamic_error "operand of %s must be a single node" name
    in
    let na = get (Pp.node_comp_name op) (eval env a) in
    let nb = get (Pp.node_comp_name op) (eval env b) in
    match (na, nb) with
    | None, _ | _, None -> []
    | Some x, Some y ->
      Value.of_bool
        (match op with
        | Ast.Is -> X.Node.same x y
        | Ast.Precedes -> X.Node.compare_order x y < 0
        | Ast.Follows -> X.Node.compare_order x y > 0))
  | Ast.Arith (op, a, b) -> Value.arith op (eval env a) (eval env b)
  | Ast.And (a, b) ->
    Value.of_bool
      (Value.effective_boolean_value (eval env a)
      && Value.effective_boolean_value (eval env b))
  | Ast.Or (a, b) ->
    Value.of_bool
      (Value.effective_boolean_value (eval env a)
      || Value.effective_boolean_value (eval env b))
  | Ast.Order_by (v, e1, specs, body) ->
    let items = eval env e1 in
    let keyed =
      List.map
        (fun item ->
          let ienv = Env.bind env v [ item ] in
          let keys =
            List.map
              (fun (spec, asc) ->
                let k =
                  match Value.atomize (eval ienv spec) with
                  | [] -> None
                  | [ a ] -> Some a
                  | _ ->
                    Env.dynamic_error
                      "order by key must be zero or one atomic value"
                in
                (k, asc))
              specs
          in
          (keys, item))
        items
    in
    let compare_keys (ka, _) (kb, _) =
      let rec go ka kb =
        match (ka, kb) with
        | [], [] -> 0
        | (a, asc) :: ra, (b, _) :: rb ->
          let c = Value.order_compare a b in
          let c = if asc then c else -c in
          if c <> 0 then c else go ra rb
        | _ -> 0
      in
      go ka kb
    in
    let sorted = List.stable_sort compare_keys keyed in
    List.concat_map (fun (_, item) -> eval (Env.bind env v [ item ]) body) sorted
  | Ast.Node_set (op, a, b) ->
    let na = Value.nodes_of (eval env a) in
    let nb = Value.nodes_of (eval env b) in
    let res =
      match op with
      | Ast.Union -> X.Seq_ops.union na nb
      | Ast.Intersect -> X.Seq_ops.intersect na nb
      | Ast.Except -> X.Seq_ops.except na nb
    in
    List.map (fun n -> Value.N n) res
  | Ast.Doc_constr e1 ->
    [ Value.N (Construct.document env.Env.store (eval env e1)) ]
  | Ast.Text_constr e1 -> (
    let s =
      String.concat "" (List.map Value.atom_to_string (Value.atomize (eval env e1)))
    in
    if s = "" then [] else [ Value.N (Construct.text env.Env.store s) ])
  | Ast.Elem_constr (ns, e1) ->
    let name = eval_name env ns in
    [ Value.N (Construct.element env.Env.store name (eval env e1)) ]
  | Ast.Attr_constr (ns, e1) ->
    let name = eval_name env ns in
    let value =
      String.concat " " (List.map Value.atom_to_string (Value.atomize (eval env e1)))
    in
    [ Value.N (Construct.attribute env.Env.store name value) ]
  | Ast.Step (e1, axis, test) ->
    let ctx = eval env e1 in
    let nodes = Value.nodes_of ctx in
    let res = eval_step axis test nodes in
    (match env.Env.observe with
    | None -> ()
    | Some f -> List.iter f res);
    List.map (fun n -> Value.N n) res
  | Ast.Fun_call (name, args) -> eval_fun_call env name args
  | Ast.Execute_at x ->
    let host = Value.string_value (eval env x.host) in
    let args = List.map (fun (v, pe) -> (v, eval env pe)) x.params in
    env.Env.execute_at env x ~host ~args
  | Ast.Insert_node (src, pos, tgt) ->
    let content = Update.content_of_value (eval env src) in
    let target = update_target env "insert" tgt in
    add_pending env (Pul.P_insert (target, pos, content))
  | Ast.Delete_node tgt ->
    (* delete accepts a whole sequence of targets *)
    let targets = Value.nodes_of (eval env tgt) in
    List.iter (fun n -> ignore (add_pending env (Pul.P_delete n))) targets;
    []
  | Ast.Replace_value (tgt, v) ->
    let target = update_target env "replace value of" tgt in
    let s =
      String.concat " "
        (List.map Value.atom_to_string (Value.atomize (eval env v)))
    in
    add_pending env (Pul.P_replace_value (target, s))
  | Ast.Rename_node (tgt, n) ->
    let target = update_target env "rename" tgt in
    add_pending env (Pul.P_rename (target, Value.string_value (eval env n)))

and update_target env what tgt =
  match eval env tgt with
  | [ Value.N n ] -> n
  | _ ->
    Env.dynamic_error "%s: target must evaluate to exactly one node" what

and add_pending env p =
  match env.Env.pul with
  | Some pul ->
    Pul.add pul p;
    []
  | None ->
    Env.dynamic_error "updating expression in a read-only context"

and eval_name env = function

  | Ast.Fixed_name n -> n
  | Ast.Computed_name e -> Value.string_value (eval env e)

and eval_fun_call env name args =
  match Env.lookup_func env name with
  | Some f ->
    if List.length args <> List.length f.Ast.f_params then
      Env.dynamic_error "function %s expects %d argument(s), got %d" name
        (List.length f.Ast.f_params)
        (List.length args);
    if env.Env.recursion_depth > max_recursion then
      Env.dynamic_error "recursion limit exceeded in %s" name;
    let bound =
      List.fold_left2
        (fun acc (v, _ty) arg -> Env.Smap.add v (eval env arg) acc)
        Env.Smap.empty f.Ast.f_params args
    in
    let call_env = { env with Env.vars = bound } in
    call_env.Env.recursion_depth <- env.Env.recursion_depth + 1;
    let r = eval call_env f.Ast.f_body in
    call_env.Env.recursion_depth <- env.Env.recursion_depth;
    r
  | None -> (
    match Hashtbl.find_opt env.Env.builtins name with
    | Some f -> f env (List.map (eval env) args)
    | None -> Env.dynamic_error "unknown function %s()" name)

(* Local (non-distributed) execute-at handler: evaluates the body in place,
   sharing the store, so node identity is fully preserved. This is the
   reference semantics that a decomposed query must reproduce. *)
let local_execute_at env (x : Ast.execute_at) ~host:_ ~args =
  let vars =
    List.fold_left
      (fun acc (v, value) -> Env.Smap.add v value acc)
      Env.Smap.empty args
  in
  eval { env with Env.vars = vars } x.Ast.body

let default_env ?vars ?funcs ?resolve_doc ?execute_at ?pul store =
  let execute_at =
    match execute_at with Some h -> h | None -> local_execute_at
  in
  Env.create ?vars ?funcs ?resolve_doc ~execute_at ~builtins:(Builtins.table ())
    ?pul store

(* Evaluate and then apply the pending update list (snapshot semantics:
   the result is computed against the pre-update state). *)
let eval_and_apply env e =
  let v = eval env e in
  (match env.Env.pul with
  | Some pul when not (Pul.is_empty pul) ->
    ignore (Update.apply env.Env.store (Pul.list pul))
  | _ -> ());
  v

(* Convenience: parse and run a full query against a store. *)
let run ?resolve_doc ?execute_at store src =
  let q = Parser.parse_query src in
  let env =
    default_env ~funcs:q.Ast.funcs ?resolve_doc ?execute_at
      ~pul:(Pul.create ()) store
  in
  eval_and_apply env q.Ast.body

let run_query ?resolve_doc ?execute_at store (q : Ast.query) =
  let env =
    default_env ~funcs:q.Ast.funcs ?resolve_doc ?execute_at
      ~pul:(Pul.create ()) store
  in
  eval_and_apply env q.Ast.body
