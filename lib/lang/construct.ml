(* Node construction: element/attribute/text/document constructors create
   fresh documents in the evaluating store. Per XQuery semantics a
   constructor copies its node content deeply, and the result has a fresh
   node identity — the same operation an XRPC peer performs when shredding
   a message, which is why pass-by-value "feels like" construction and
   loses identity. *)

module X = Xd_xml

let rec copy_into b n =
  match X.Node.kind n with
  | X.Node.Document -> List.iter (copy_into b) (X.Node.children n)
  | X.Node.Element ->
    let attrs =
      List.map
        (fun a -> (X.Node.name a, X.Node.string_value a))
        (X.Node.attributes n)
    in
    X.Doc.Builder.start_element b (X.Node.name n) attrs;
    List.iter (copy_into b) (X.Node.children n);
    X.Doc.Builder.end_element b
  | X.Node.Text -> X.Doc.Builder.text b (X.Node.string_value n)
  | X.Node.Comment -> X.Doc.Builder.comment b (X.Node.string_value n)
  | X.Node.Pi -> X.Doc.Builder.pi b (X.Node.name n) (X.Node.string_value n)
  | X.Node.Attribute ->
    (* bare attribute in content: becomes text (checked by callers) *)
    X.Doc.Builder.text b (X.Node.string_value n)

(* Split constructor content into attributes and proper content, joining
   adjacent atoms with a single space (XQuery content rules). *)
let split_content (items : Value.t) =
  let attrs = ref [] in
  let content = ref [] in
  List.iter
    (fun it ->
      match it with
      | Value.N n when X.Node.kind n = X.Node.Attribute ->
        attrs := (X.Node.name n, X.Node.string_value n) :: !attrs
      | _ -> content := it :: !content)
    items;
  (List.rev !attrs, List.rev !content)

let add_content b content =
  let rec go prev_atom = function
    | [] -> ()
    | Value.N n :: rest ->
      copy_into b n;
      go false rest
    | Value.A a :: rest ->
      if prev_atom then X.Doc.Builder.text b " ";
      X.Doc.Builder.text b (Value.atom_to_string a);
      go true rest
  in
  go false content

let element store name (items : Value.t) =
  let attrs, content = split_content items in
  let b = X.Doc.Builder.create () in
  X.Doc.Builder.start_element b name attrs;
  add_content b content;
  X.Doc.Builder.end_element b;
  let doc = X.Store.add store (X.Doc.Builder.finish b) in
  X.Node.of_tree doc 1

(* A standalone constructed attribute lives on a synthetic wrapper element;
   its handle is the attribute node itself. *)
let attribute store name value_string =
  let b = X.Doc.Builder.create () in
  X.Doc.Builder.start_element b "xdx:attribute-wrapper" [ (name, value_string) ];
  X.Doc.Builder.end_element b;
  let doc = X.Store.add store (X.Doc.Builder.finish b) in
  X.Node.of_attr doc 0

let text store s =
  let b = X.Doc.Builder.create () in
  X.Doc.Builder.text b s;
  let doc = X.Store.add store (X.Doc.Builder.finish b) in
  X.Node.of_tree doc 1

let document store (items : Value.t) =
  let attrs, content = split_content items in
  if attrs <> [] then
    raise (Env.Dynamic_error "document constructor cannot contain attributes");
  let b = X.Doc.Builder.create () in
  add_content b content;
  let doc = X.Store.add store (X.Doc.Builder.finish b) in
  X.Node.doc_node doc

(* Deep copy of an arbitrary node into [store] with fresh identity; the
   building block of message shredding. *)
let deep_copy store n =
  match X.Node.kind n with
  | X.Node.Attribute -> attribute store (X.Node.name n) (X.Node.string_value n)
  | X.Node.Document -> document store (List.map (fun c -> Value.N c) (X.Node.children n))
  | X.Node.Text -> text store (X.Node.string_value n)
  | _ ->
    let b = X.Doc.Builder.create () in
    copy_into b n;
    let doc = X.Store.add store (X.Doc.Builder.finish b) in
    X.Node.of_tree doc 1
