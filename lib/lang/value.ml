(* Runtime values: sequences of items (nodes or typed atomics), with the
   XQuery atomization, type-promotion, comparison and effective-boolean-
   value rules needed by the XCore subset. We operate schemaless, so node
   atomization yields xs:untypedAtomic, which casts to double next to a
   number and compares as a string next to a string. *)

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

type atom =
  | String of string
  | Integer of int
  | Double of float
  | Boolean of bool
  | Untyped of string

type item = N of Xd_xml.Node.t | A of atom
type t = item list

let of_node n = [ N n ]
let of_bool b = [ A (Boolean b) ]
let of_int i = [ A (Integer i) ]
let of_float f = [ A (Double f) ]
let of_string s = [ A (String s) ]
let empty : t = []

let nodes_of v =
  List.map
    (function
      | N n -> n
      | A _ -> type_error "expected a sequence of nodes, found an atomic value")
    v

let atom_to_string = function
  | String s | Untyped s -> s
  | Integer i -> string_of_int i
  | Double f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else string_of_float f
  | Boolean b -> if b then "true" else "false"

let atomize_item = function
  | A a -> a
  | N n -> Untyped (Xd_xml.Node.string_value n)

let atomize (v : t) : atom list = List.map atomize_item v

let atom_to_double = function
  | Integer i -> float_of_int i
  | Double f -> f
  | Untyped s | String s -> (
    match float_of_string_opt (String.trim s) with
    | Some f -> f
    | None -> Float.nan)
  | Boolean b -> if b then 1.0 else 0.0

(* General-comparison pairwise rule with untypedAtomic promotion. *)
let compare_atoms op a b =
  let cmp_float x y =
    match op with
    | Ast.Eq -> x = y
    | Ast.Ne -> x <> y
    | Ast.Lt -> x < y
    | Ast.Le -> x <= y
    | Ast.Gt -> x > y
    | Ast.Ge -> x >= y
  in
  let cmp_string x y =
    let c = String.compare x y in
    match op with
    | Ast.Eq -> c = 0
    | Ast.Ne -> c <> 0
    | Ast.Lt -> c < 0
    | Ast.Le -> c <= 0
    | Ast.Gt -> c > 0
    | Ast.Ge -> c >= 0
  in
  match (a, b) with
  | (Integer _ | Double _), (Integer _ | Double _)
  | (Integer _ | Double _), Untyped _
  | Untyped _, (Integer _ | Double _) ->
    cmp_float (atom_to_double a) (atom_to_double b)
  | Boolean x, Boolean y -> cmp_float (Bool.to_float x) (Bool.to_float y)
  | (String _ | Untyped _), (String _ | Untyped _) ->
    cmp_string (atom_to_string a) (atom_to_string b)
  | Boolean _, _ | _, Boolean _ ->
    type_error "cannot compare xs:boolean with a non-boolean"
  | (String _, (Integer _ | Double _)) | ((Integer _ | Double _), String _) ->
    type_error "cannot compare xs:string with a numeric value"

(* Existential general comparison over two sequences. *)
let general_compare op (l : t) (r : t) =
  let la = atomize l and ra = atomize r in
  List.exists (fun a -> List.exists (fun b -> compare_atoms op a b) ra) la

let effective_boolean_value (v : t) =
  match v with
  | [] -> false
  | N _ :: _ -> true
  | [ A (Boolean b) ] -> b
  | [ A (String s) ] | [ A (Untyped s) ] -> s <> ""
  | [ A (Integer i) ] -> i <> 0
  | [ A (Double f) ] -> f <> 0.0 && not (Float.is_nan f)
  | A _ :: _ :: _ ->
    type_error "effective boolean value of a multi-atomic sequence"

let string_value (v : t) =
  match v with
  | [] -> ""
  | [ it ] -> atom_to_string (atomize_item it)
  | _ -> type_error "fn:string applied to a sequence of more than one item"

let to_double (v : t) =
  match atomize v with
  | [ a ] -> atom_to_double a
  | [] -> Float.nan
  | _ -> type_error "numeric operation on a sequence of more than one item"

let arith op (l : t) (r : t) : t =
  match (atomize l, atomize r) with
  | [], _ | _, [] -> []
  | [ a ], [ b ] -> (
    let fa = atom_to_double a and fb = atom_to_double b in
    let both_int =
      match (a, b) with Integer _, Integer _ -> true | _ -> false
    in
    match op with
    | Ast.Add ->
      if both_int then of_int (int_of_float fa + int_of_float fb)
      else of_float (fa +. fb)
    | Ast.Sub ->
      if both_int then of_int (int_of_float fa - int_of_float fb)
      else of_float (fa -. fb)
    | Ast.Mul ->
      if both_int then of_int (int_of_float fa * int_of_float fb)
      else of_float (fa *. fb)
    | Ast.Div -> of_float (fa /. fb)
    | Ast.Idiv ->
      if fb = 0.0 then type_error "integer division by zero"
      else of_int (int_of_float (Float.trunc (fa /. fb)))
    | Ast.Mod ->
      if both_int then
        let ib = int_of_float fb in
        if ib = 0 then type_error "modulo by zero"
        else of_int (int_of_float fa mod ib)
      else of_float (Float.rem fa fb))
  | _ -> type_error "arithmetic on sequences of more than one item"

(* Ordering key used by [order by]: empty sequence sorts first. *)
let order_compare (a : atom option) (b : atom option) =
  match (a, b) with
  | None, None -> 0
  | None, Some _ -> -1
  | Some _, None -> 1
  | Some x, Some y -> (
    match (x, y) with
    | (Integer _ | Double _ | Boolean _), _ | _, (Integer _ | Double _ | Boolean _)
      ->
      Float.compare (atom_to_double x) (atom_to_double y)
    | _ -> String.compare (atom_to_string x) (atom_to_string y))

let atom_equal a b =
  match (a, b) with
  | (Integer _ | Double _), (Integer _ | Double _) ->
    atom_to_double a = atom_to_double b
  | Boolean x, Boolean y -> x = y
  | _ -> atom_to_string a = atom_to_string b

(* fn:deep-equal over sequences. *)
let deep_equal (l : t) (r : t) =
  List.length l = List.length r
  && List.for_all2
       (fun a b ->
         match (a, b) with
         | N x, N y -> Xd_xml.Deep_equal.equal x y
         | A x, A y -> atom_equal x y
         | _ -> false)
       l r

let pp_atom fmt = function
  | String s -> Fmt.pf fmt "%S" s
  | Integer i -> Fmt.pf fmt "%d" i
  | Double f -> Fmt.pf fmt "%g" f
  | Boolean b -> Fmt.pf fmt "%b" b
  | Untyped s -> Fmt.pf fmt "u%S" s

let pp_item fmt = function
  | N n -> Xd_xml.Node.pp fmt n
  | A a -> pp_atom fmt a

let pp fmt v = Fmt.pf fmt "(%a)" (Fmt.list ~sep:Fmt.comma pp_item) v

(* Serialize a value the way a query result is rendered: nodes as XML,
   atoms as strings, separated by spaces between adjacent atoms. *)
let serialize (v : t) =
  let buf = Buffer.create 256 in
  let rec go prev_atom = function
    | [] -> ()
    | N n :: rest ->
      Xd_xml.Serializer.node_to_buf buf n;
      go false rest
    | A a :: rest ->
      if prev_atom then Buffer.add_char buf ' ';
      Buffer.add_string buf (atom_to_string a);
      go true rest
  in
  go false v;
  Buffer.contents buf
