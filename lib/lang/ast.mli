(** XQuery Core abstract syntax (the paper's Table II grammar, rules 1-26,
    plus the XRPC extension rules 27-28).

    Every expression node carries a unique vertex id, so the AST doubles as
    the vertex set of the dependency graph of Section III: parse edges are
    the AST edges, varref edges connect variable references to their
    binders. Axis steps are individual [Step] nodes, giving the per-step
    granularity that the insertion conditions need. *)

type atomic =
  | A_string of string
  | A_int of int
  | A_float of float
  | A_bool of bool

type var = string
(** Variable name, without the ['$']. *)

type axis =
  | Child
  | Descendant
  | Descendant_or_self
  | Self
  | Attribute
  | Parent
  | Ancestor
  | Ancestor_or_self
  | Following
  | Following_sibling
  | Preceding
  | Preceding_sibling

(** Forward / reverse / horizontal classification (insertion condition i). *)
type axis_class = Fwd | Rev | Hor

val classify_axis : axis -> axis_class

val non_overlapping_axis : axis -> bool
(** Axes that cannot produce overlapping sequences from duplicate-free
    ordered input — the set excepted in insertion condition iii. *)

type node_test =
  | Name_test of string
  | Wildcard
  | Kind_node
  | Kind_text
  | Kind_comment
  | Kind_element of string option
  | Kind_attribute of string option

type value_comp = Eq | Ne | Lt | Le | Gt | Ge
type node_comp = Is | Precedes | Follows
type set_op = Union | Intersect | Except
type arith_op = Add | Sub | Mul | Div | Idiv | Mod
type occurrence = Occ_one | Occ_opt | Occ_star | Occ_plus

type item_type =
  | It_node
  | It_element of string option
  | It_attribute of string option
  | It_text
  | It_document
  | It_atomic of string
  | It_item

type sequence_type = St_empty | St_items of item_type * occurrence

(** XQUF subset: where inserted content goes relative to the target. *)
type insert_pos = Into | Before | After

type name_spec = Fixed_name of string | Computed_name of expr

and expr = { id : int; desc : desc }

and desc =
  | Literal of atomic
  | Var_ref of var
  | Seq of expr list  (** ExprSeq; [[]] is the empty sequence [()] *)
  | For of var * expr * expr
  | Let of var * expr * expr
  | If of expr * expr * expr
  | Typeswitch of expr * (var * sequence_type * expr) list * var * expr
  | Value_cmp of value_comp * expr * expr
  | Node_cmp of node_comp * expr * expr
  | Arith of arith_op * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Order_by of var * expr * (expr * bool) list * expr
      (** [for $v in e order by (spec, ascending)… return body] *)
  | Node_set of set_op * expr * expr
  | Doc_constr of expr
  | Text_constr of expr
  | Elem_constr of name_spec * expr
  | Attr_constr of name_spec * expr
  | Step of expr * axis * node_test
  | Fun_call of string * expr list
  | Execute_at of execute_at
  | Insert_node of expr * insert_pos * expr
      (** [insert node E1 into/before/after E2] — appends to the pending
          update list, applied at query completion (snapshot semantics) *)
  | Delete_node of expr
  | Replace_value of expr * expr
  | Rename_node of expr * expr

and execute_at = {
  host : expr;
  params : (var * expr) list;
      (** each parameter expression is evaluated at the caller and its
          value marshaled per the session's passing semantics *)
  body : expr;
  mutable param_paths : (var * string list * string list) list;
      (** per-parameter relative projection paths (used, returned), as
          strings of {!Xd_projection.Path}; filled by the by-projection
          decomposer *)
  mutable result_paths : string list * string list;
      (** relative projection paths for the call's result *)
}

type func = {
  f_name : string;
  f_params : (var * sequence_type option) list;
  f_return : sequence_type option;
  f_body : expr;
}

type query = { funcs : func list; body : expr }

(** {2 Construction} *)

val next_id : int ref
val mk : desc -> expr
(** Allocate an expression with a fresh vertex id. *)

val mk_execute_at :
  host:expr -> params:(var * expr) list -> body:expr -> expr

val literal : atomic -> expr
val str : string -> expr
val int : int -> expr
val var : var -> expr
val empty_seq : unit -> expr
val seq : expr list -> expr
(** [seq [e]] is [e]; otherwise a [Seq]. *)

val fun_call : string -> expr list -> expr
val doc : string -> expr
val step : expr -> axis -> node_test -> expr
val child : expr -> string -> expr

(** {2 Traversal} *)

val children : expr -> expr list
(** Structural children in syntactic order (the parse edges). *)

val bound_in_children : expr -> var list list
(** Per child (aligned with {!children}): the variables this node newly
    binds in that child's scope. *)

val fold : ('a -> expr -> 'a) -> 'a -> expr -> 'a
val iter : (expr -> unit) -> expr -> unit
val free_vars : expr -> var list

val with_children : expr -> expr list -> expr
(** Rebuild with new children (same binder structure, same id).
    @raise Invalid_argument on arity mismatch. *)

val map_bottom_up : (expr -> expr) -> expr -> expr
val rename_var : from:var -> to_:var -> expr -> expr
val subst_var : from:var -> by:expr -> expr -> expr
val refresh_ids : expr -> expr
(** Deep copy with fresh vertex ids. *)

val size : expr -> int
val is_updating_desc : desc -> bool
val contains_update : expr -> bool
val update_target : expr -> expr option
val find_vertex : expr -> int -> expr option
