(* XQuery Core AST, following the paper's Table II grammar (rules 1-26) plus
   the XRPC extension (rules 27-28). Every expression node carries a unique
   vertex id: the AST doubles as the vertex set of the dependency graph
   (parse edges = AST edges, varref edges = Var_ref -> binder). Each axis
   step is its own expression node ([Step]), so the per-step granularity the
   insertion conditions need (RevAxis / HorAxis / AxisStep vertices) falls
   out directly. *)

type atomic =
  | A_string of string
  | A_int of int
  | A_float of float
  | A_bool of bool

type var = string (* variable name, without the '$' *)

type axis =
  | Child
  | Descendant
  | Descendant_or_self
  | Self
  | Attribute
  | Parent
  | Ancestor
  | Ancestor_or_self
  | Following
  | Following_sibling
  | Preceding
  | Preceding_sibling

(* Reverse / horizontal / forward classification used by insertion
   condition i (Problems 1). *)
type axis_class = Fwd | Rev | Hor

let classify_axis = function
  | Child | Descendant | Descendant_or_self | Self | Attribute -> Fwd
  | Parent | Ancestor | Ancestor_or_self -> Rev
  | Following | Following_sibling | Preceding | Preceding_sibling -> Hor

(* Axes that cannot produce overlapping node sequences from a duplicate-free
   ordered input (the set excluded in insertion condition iii). *)
let non_overlapping_axis = function
  | Parent | Preceding_sibling | Following_sibling | Self | Child | Attribute
    ->
    true
  | Descendant | Descendant_or_self | Ancestor | Ancestor_or_self | Following
  | Preceding ->
    false

type node_test =
  | Name_test of string
  | Wildcard
  | Kind_node
  | Kind_text
  | Kind_comment
  | Kind_element of string option
  | Kind_attribute of string option

type value_comp = Eq | Ne | Lt | Le | Gt | Ge
type node_comp = Is | Precedes | Follows
type set_op = Union | Intersect | Except
type arith_op = Add | Sub | Mul | Div | Idiv | Mod

type occurrence = Occ_one | Occ_opt | Occ_star | Occ_plus

type item_type =
  | It_node
  | It_element of string option
  | It_attribute of string option
  | It_text
  | It_document
  | It_atomic of string (* xs:string, xs:integer, ... *)
  | It_item

type sequence_type =
  | St_empty
  | St_items of item_type * occurrence

(* XQUF subset (the paper's Section IX future work): where inserted
   content goes relative to the target. *)
type insert_pos = Into | Before | After

type name_spec = Fixed_name of string | Computed_name of expr

and expr = { id : int; desc : desc }

and desc =
  | Literal of atomic
  | Var_ref of var
  | Seq of expr list (* ExprSeq; [] is the empty sequence () *)
  | For of var * expr * expr
  | Let of var * expr * expr
  | If of expr * expr * expr
  | Typeswitch of expr * (var * sequence_type * expr) list * var * expr
  | Value_cmp of value_comp * expr * expr
  | Node_cmp of node_comp * expr * expr
  | Arith of arith_op * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Order_by of var * expr * (expr * bool) list * expr
      (* for $v in e order by (spec, ascending)... return body *)
  | Node_set of set_op * expr * expr
  | Doc_constr of expr
  | Text_constr of expr
  | Elem_constr of name_spec * expr
  | Attr_constr of name_spec * expr
  | Step of expr * axis * node_test
  | Fun_call of string * expr list
  | Execute_at of execute_at
  (* XQUF subset: updating expressions. They evaluate to the empty
     sequence and append to the pending update list, applied when the
     query completes (snapshot semantics). *)
  | Insert_node of expr * insert_pos * expr (* insert node E1 into/before/after E2 *)
  | Delete_node of expr
  | Replace_value of expr * expr (* replace value of node E1 with E2 *)
  | Rename_node of expr * expr (* rename node E1 as E2 *)

and execute_at = {
  host : expr;
  params : (var * expr) list;
  body : expr;
  (* relative projection paths, filled in by the by-projection decomposer:
     per-parameter used/returned suffixes and result used/returned
     suffixes. Opaque strings at this level (parsed by xd_projection). *)
  mutable param_paths : (var * string list * string list) list;
  mutable result_paths : string list * string list;
}

type func = {
  f_name : string;
  f_params : (var * sequence_type option) list;
  f_return : sequence_type option;
  f_body : expr;
}

type query = { funcs : func list; body : expr }

(* ------------------------------------------------------------------ *)

let next_id = ref 0

let mk desc =
  incr next_id;
  { id = !next_id; desc }

let mk_execute_at ~host ~params ~body =
  mk
    (Execute_at
       { host; params; body; param_paths = []; result_paths = ([], []) })

let literal a = mk (Literal a)
let str s = literal (A_string s)
let int i = literal (A_int i)
let var v = mk (Var_ref v)
let empty_seq () = mk (Seq [])

let seq = function [ e ] -> e | es -> mk (Seq es)

let fun_call name args = mk (Fun_call (name, args))
let doc uri = fun_call "doc" [ str uri ]
let step e axis test = mk (Step (e, axis, test))
let child e name = step e Child (Name_test name)

(* Structural children of an expression, in syntactic order (= parse
   edges). *)
let children e =
  match e.desc with
  | Literal _ | Var_ref _ -> []
  | Seq es -> es
  | For (_, e1, e2) | Let (_, e1, e2) -> [ e1; e2 ]
  | If (e1, e2, e3) -> [ e1; e2; e3 ]
  | Typeswitch (e0, cases, _, dflt) ->
    (e0 :: List.map (fun (_, _, b) -> b) cases) @ [ dflt ]
  | Value_cmp (_, a, b)
  | Node_cmp (_, a, b)
  | Arith (_, a, b)
  | And (a, b)
  | Or (a, b)
  | Node_set (_, a, b) ->
    [ a; b ]
  | Order_by (_, e1, specs, body) -> (e1 :: List.map fst specs) @ [ body ]
  | Doc_constr e1 | Text_constr e1 -> [ e1 ]
  | Elem_constr (ns, e1) | Attr_constr (ns, e1) -> (
    match ns with Fixed_name _ -> [ e1 ] | Computed_name n -> [ n; e1 ])
  | Step (e1, _, _) -> [ e1 ]
  | Fun_call (_, args) -> args
  | Execute_at x -> (x.host :: List.map snd x.params) @ [ x.body ]
  | Insert_node (src, _, tgt) -> [ src; tgt ]
  | Delete_node tgt -> [ tgt ]
  | Replace_value (tgt, v) -> [ tgt; v ]
  | Rename_node (tgt, n) -> [ tgt; n ]

(* Variables bound by an expression for each child position; used to compute
   free variables and varref edges. Returns, per child (in the order of
   [children]), the variables in scope within that child that this node
   introduces. *)
let bound_in_children e =
  match e.desc with
  | For (v, _, _) | Let (v, _, _) -> [ []; [ v ] ]
  | Typeswitch (_, cases, dv, _) ->
    ([] :: List.map (fun (v, _, _) -> [ v ]) cases) @ [ [ dv ] ]
  | Order_by (v, _, specs, _) ->
    ([] :: List.map (fun _ -> [ v ]) specs) @ [ [ v ] ]
  | Execute_at x ->
    ([] :: List.map (fun _ -> []) x.params) @ [ List.map fst x.params ]
  | _ -> List.map (fun _ -> []) (children e)

let rec fold f acc e = List.fold_left (fold f) (f acc e) (children e)

let iter f e = fold (fun () x -> f x) () e

let free_vars e =
  let module S = Set.Make (String) in
  let rec go bound acc e =
    let acc =
      match e.desc with
      | Var_ref v when not (S.mem v bound) -> S.add v acc
      | _ -> acc
    in
    List.fold_left2
      (fun acc child extra ->
        go (List.fold_left (fun b v -> S.add v b) bound extra) acc child)
      acc (children e) (bound_in_children e)
  in
  S.elements (go S.empty S.empty e)

(* Rebuild an expression with new children (same shape, fresh ids only where
   the desc changes). Children must match the arity of [children e]. *)
let with_children e cs =
  let desc =
    match (e.desc, cs) with
    | (Literal _ | Var_ref _), [] -> e.desc
    | Seq _, es -> Seq es
    | For (v, _, _), [ a; b ] -> For (v, a, b)
    | Let (v, _, _), [ a; b ] -> Let (v, a, b)
    | If _, [ a; b; c ] -> If (a, b, c)
    | Typeswitch (_, cases, dv, _), e0 :: rest ->
      let rec split cases rest =
        match (cases, rest) with
        | [], [ d ] -> ([], d)
        | (v, t, _) :: cs', b :: rest' ->
          let cs'', d = split cs' rest' in
          ((v, t, b) :: cs'', d)
        | _ -> invalid_arg "with_children: typeswitch arity"
      in
      let cases', dflt = split cases rest in
      Typeswitch (e0, cases', dv, dflt)
    | Value_cmp (op, _, _), [ a; b ] -> Value_cmp (op, a, b)
    | Node_cmp (op, _, _), [ a; b ] -> Node_cmp (op, a, b)
    | Arith (op, _, _), [ a; b ] -> Arith (op, a, b)
    | And _, [ a; b ] -> And (a, b)
    | Or _, [ a; b ] -> Or (a, b)
    | Node_set (op, _, _), [ a; b ] -> Node_set (op, a, b)
    | Order_by (v, _, specs, _), e1 :: rest ->
      let rec split specs rest =
        match (specs, rest) with
        | [], [ b ] -> ([], b)
        | (_, asc) :: ss, s :: rest' ->
          let ss', b = split ss rest' in
          ((s, asc) :: ss', b)
        | _ -> invalid_arg "with_children: order_by arity"
      in
      let specs', body = split specs rest in
      Order_by (v, e1, specs', body)
    | Doc_constr _, [ a ] -> Doc_constr a
    | Text_constr _, [ a ] -> Text_constr a
    | Elem_constr (Fixed_name n, _), [ a ] -> Elem_constr (Fixed_name n, a)
    | Elem_constr (Computed_name _, _), [ n; a ] ->
      Elem_constr (Computed_name n, a)
    | Attr_constr (Fixed_name n, _), [ a ] -> Attr_constr (Fixed_name n, a)
    | Attr_constr (Computed_name _, _), [ n; a ] ->
      Attr_constr (Computed_name n, a)
    | Step (_, ax, t), [ a ] -> Step (a, ax, t)
    | Fun_call (n, _), args -> Fun_call (n, args)
    | Insert_node (_, pos, _), [ a; b ] -> Insert_node (a, pos, b)
    | Delete_node _, [ a ] -> Delete_node a
    | Replace_value _, [ a; b ] -> Replace_value (a, b)
    | Rename_node _, [ a; b ] -> Rename_node (a, b)
    | Execute_at x, host :: rest ->
      let rec split ps rest =
        match (ps, rest) with
        | [], [ b ] -> ([], b)
        | (v, _) :: ps', a :: rest' ->
          let ps'', b = split ps' rest' in
          ((v, a) :: ps'', b)
        | _ -> invalid_arg "with_children: execute_at arity"
      in
      let params, body = split x.params rest in
      Execute_at
        {
          host;
          params;
          body;
          param_paths = x.param_paths;
          result_paths = x.result_paths;
        }
    | _ -> invalid_arg "with_children: arity mismatch"
  in
  { e with desc }

(* Bottom-up transformation preserving ids of untouched nodes. *)
let rec map_bottom_up f e =
  let e' = with_children e (List.map (map_bottom_up f) (children e)) in
  f e'

(* Rename free occurrences of variable [from] to [to_]. *)
let rec rename_var ~from ~to_ e =
  match e.desc with
  | Var_ref v when v = from -> { e with desc = Var_ref to_ }
  | _ ->
    let cs = children e and bnd = bound_in_children e in
    let cs' =
      List.map2
        (fun c extra ->
          if List.mem from extra then c else rename_var ~from ~to_ c)
        cs bnd
    in
    with_children e cs'

(* Substitute expression [by] for free occurrences of variable [from].
   [by] is duplicated verbatim (same ids); callers that need distinct
   vertices must refresh ids themselves. *)
let rec subst_var ~from ~by e =
  match e.desc with
  | Var_ref v when v = from -> by
  | _ ->
    let cs = children e and bnd = bound_in_children e in
    let cs' =
      List.map2
        (fun c extra -> if List.mem from extra then c else subst_var ~from ~by c)
        cs bnd
    in
    with_children e cs'

let rec refresh_ids e =
  let e' = with_children e (List.map refresh_ids (children e)) in
  mk e'.desc

let size e = fold (fun n _ -> n + 1) 0 e

let is_updating_desc = function
  | Insert_node _ | Delete_node _ | Replace_value _ | Rename_node _ -> true
  | _ -> false

(* Does the expression contain any updating subexpression? *)
let contains_update e =
  fold (fun acc x -> acc || is_updating_desc x.desc) false e

(* The target subexpression of an updating vertex, if any. *)
let update_target e =
  match e.desc with
  | Insert_node (_, _, tgt) | Delete_node tgt | Replace_value (tgt, _)
  | Rename_node (tgt, _) ->
    Some tgt
  | _ -> None

let find_vertex e target_id =
  let found = ref None in
  iter (fun x -> if x.id = target_id then found := Some x) e;
  !found
