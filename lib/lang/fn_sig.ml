(* Typed builtin-function signatures, keyed off [Builtin_names.all].

   One declarative registry replaces the hand-written arity match that
   used to live in [Static.builtin_arity_ok]: each builtin declares the
   sequence types of its required, optional and variadic parameters plus
   its result type, in the AST's own [Ast.sequence_type] language. The
   static checker derives arity acceptance from the shape, and the
   abstract type interpreter (lib/types) reads the result types as its
   baseline transfer functions — so arity checking, type inference and
   the evaluator registry can never drift: construction fails loudly
   unless every name in [Builtin_names.all] has exactly one signature
   and no extra names are declared.

   Parameter types are enforcement-relevant only where they demand a
   *node*: feeding a provably atomic, provably non-empty value to a
   node-requiring parameter (fn:root, fn:name, ...) is a definite
   dynamic error the type checker reports statically. Atomic parameter
   types are documentation — nodes atomize, so they are accepted. *)

type t = {
  required : Ast.sequence_type list;
  optional : Ast.sequence_type list; (* accepted after the required ones *)
  variadic : Ast.sequence_type option; (* any number more of this type *)
  result : Ast.sequence_type;
}

let item occ = Ast.St_items (Ast.It_item, occ)
let node occ = Ast.St_items (Ast.It_node, occ)
let elem occ = Ast.St_items (Ast.It_element None, occ)
let document occ = Ast.St_items (Ast.It_document, occ)
let str occ = Ast.St_items (Ast.It_atomic "xs:string", occ)
let int occ = Ast.St_items (Ast.It_atomic "xs:integer", occ)
let dbl occ = Ast.St_items (Ast.It_atomic "xs:double", occ)
let boolean occ = Ast.St_items (Ast.It_atomic "xs:boolean", occ)
let any_atomic occ = Ast.St_items (Ast.It_atomic "xs:anyAtomicType", occ)

let fixed required result = { required; optional = []; variadic = None; result }

let declarations : (string * t) list =
  [
    (* documents and node identity *)
    ("doc", fixed [ str Ast.Occ_one ] (document Ast.Occ_one));
    ("collection", fixed [ str Ast.Occ_one ] (document Ast.Occ_one));
    ("root", fixed [ node Ast.Occ_opt ] (node Ast.Occ_opt));
    ("id", fixed [ str Ast.Occ_star; node Ast.Occ_one ] (elem Ast.Occ_star));
    ("idref", fixed [ str Ast.Occ_star; node Ast.Occ_one ] (elem Ast.Occ_star));
    ("base-uri", fixed [ node Ast.Occ_opt ] (str Ast.Occ_opt));
    ("document-uri", fixed [ node Ast.Occ_opt ] (str Ast.Occ_opt));
    (* static context *)
    ("static-base-uri", fixed [] (str Ast.Occ_one));
    ("default-collation", fixed [] (str Ast.Occ_one));
    ("current-dateTime", fixed [] (str Ast.Occ_one));
    (* booleans *)
    ("true", fixed [] (boolean Ast.Occ_one));
    ("false", fixed [] (boolean Ast.Occ_one));
    ("not", fixed [ item Ast.Occ_star ] (boolean Ast.Occ_one));
    ("boolean", fixed [ item Ast.Occ_star ] (boolean Ast.Occ_one));
    (* cardinality *)
    ("count", fixed [ item Ast.Occ_star ] (int Ast.Occ_one));
    ("empty", fixed [ item Ast.Occ_star ] (boolean Ast.Occ_one));
    ("exists", fixed [ item Ast.Occ_star ] (boolean Ast.Occ_one));
    ("zero-or-one", fixed [ item Ast.Occ_star ] (item Ast.Occ_opt));
    ("exactly-one", fixed [ item Ast.Occ_star ] (item Ast.Occ_one));
    ("one-or-more", fixed [ item Ast.Occ_star ] (item Ast.Occ_plus));
    (* atomization and strings *)
    ("string", fixed [ item Ast.Occ_opt ] (str Ast.Occ_one));
    ("data", fixed [ item Ast.Occ_star ] (any_atomic Ast.Occ_star));
    ("number", fixed [ item Ast.Occ_opt ] (dbl Ast.Occ_one));
    ( "concat",
      {
        required = [ item Ast.Occ_opt; item Ast.Occ_opt ];
        optional = [];
        variadic = Some (item Ast.Occ_opt);
        result = str Ast.Occ_one;
      } );
    ("string-length", fixed [ item Ast.Occ_opt ] (int Ast.Occ_one));
    ("contains", fixed [ item Ast.Occ_opt; item Ast.Occ_opt ] (boolean Ast.Occ_one));
    ( "starts-with",
      fixed [ item Ast.Occ_opt; item Ast.Occ_opt ] (boolean Ast.Occ_one) );
    ( "ends-with",
      fixed [ item Ast.Occ_opt; item Ast.Occ_opt ] (boolean Ast.Occ_one) );
    ( "substring",
      {
        required = [ item Ast.Occ_opt; item Ast.Occ_opt ];
        optional = [ item Ast.Occ_opt ];
        variadic = None;
        result = str Ast.Occ_one;
      } );
    ( "string-join",
      fixed [ item Ast.Occ_star; item Ast.Occ_opt ] (str Ast.Occ_one) );
    ("normalize-space", fixed [ item Ast.Occ_opt ] (str Ast.Occ_one));
    ("upper-case", fixed [ item Ast.Occ_opt ] (str Ast.Occ_one));
    ("lower-case", fixed [ item Ast.Occ_opt ] (str Ast.Occ_one));
    ( "substring-before",
      fixed [ item Ast.Occ_opt; item Ast.Occ_opt ] (str Ast.Occ_one) );
    ( "substring-after",
      fixed [ item Ast.Occ_opt; item Ast.Occ_opt ] (str Ast.Occ_one) );
    (* numerics and aggregates *)
    ("sum", fixed [ item Ast.Occ_star ] (dbl Ast.Occ_one));
    ("avg", fixed [ item Ast.Occ_star ] (dbl Ast.Occ_opt));
    ("max", fixed [ item Ast.Occ_star ] (dbl Ast.Occ_opt));
    ("min", fixed [ item Ast.Occ_star ] (dbl Ast.Occ_opt));
    ("abs", fixed [ item Ast.Occ_opt ] (dbl Ast.Occ_one));
    ("floor", fixed [ item Ast.Occ_opt ] (dbl Ast.Occ_one));
    ("ceiling", fixed [ item Ast.Occ_opt ] (dbl Ast.Occ_one));
    ("round", fixed [ item Ast.Occ_opt ] (dbl Ast.Occ_one));
    (* sequences *)
    ("distinct-values", fixed [ item Ast.Occ_star ] (any_atomic Ast.Occ_star));
    ("reverse", fixed [ item Ast.Occ_star ] (item Ast.Occ_star));
    ( "subsequence",
      {
        required = [ item Ast.Occ_star; item Ast.Occ_opt ];
        optional = [ item Ast.Occ_opt ];
        variadic = None;
        result = item Ast.Occ_star;
      } );
    ("item-at", fixed [ item Ast.Occ_star; item Ast.Occ_opt ] (item Ast.Occ_opt));
    ( "insert-before",
      fixed
        [ item Ast.Occ_star; item Ast.Occ_opt; item Ast.Occ_star ]
        (item Ast.Occ_star) );
    ("remove", fixed [ item Ast.Occ_star; item Ast.Occ_opt ] (item Ast.Occ_star));
    ( "deep-equal",
      fixed [ item Ast.Occ_star; item Ast.Occ_star ] (boolean Ast.Occ_one) );
    (* names *)
    ("name", fixed [ node Ast.Occ_opt ] (str Ast.Occ_one));
    ("local-name", fixed [ node Ast.Occ_opt ] (str Ast.Occ_one));
    (* XRPC accessors: aliases of base-uri/document-uri *)
    ("xrpc:base-uri", fixed [ node Ast.Occ_opt ] (str Ast.Occ_opt));
    ("xrpc:document-uri", fixed [ node Ast.Occ_opt ] (str Ast.Occ_opt));
    (* errors *)
    ( "error",
      {
        required = [];
        optional = [ item Ast.Occ_opt ];
        variadic = None;
        result = Ast.St_empty;
      } );
  ]

(* The registry and Builtin_names.all must coincide exactly, mirroring the
   drift check in Builtins.table: a builtin without a signature would
   silently lose its arity check and its typing. *)
let table =
  lazy
    (let names = List.map fst declarations in
     List.iter
       (fun name ->
         match List.filter (fun n -> n = name) names with
         | [ _ ] -> ()
         | [] ->
           invalid_arg
             ("Fn_sig: " ^ name ^ " is in Builtin_names.all but has no signature")
         | _ ->
           invalid_arg ("Fn_sig: " ^ name ^ " has more than one signature"))
       Builtin_names.all;
     List.iter
       (fun name ->
         if not (Builtin_names.is_builtin name) then
           invalid_arg
             ("Fn_sig: " ^ name ^ " has a signature but is missing from \
               Builtin_names.all"))
       names;
     declarations)

let all () = Lazy.force table

let find name = List.assoc_opt name (all ())

let arity_ok name n =
  match find name with
  | None -> true (* unknown to the registry: accept, like the old table *)
  | Some s ->
    let min_n = List.length s.required in
    let max_n = min_n + List.length s.optional in
    n >= min_n && (s.variadic <> None || n <= max_n)

(* Declared type of the [i]-th (0-based) argument, following the
   required → optional → variadic order. *)
let param_type s i =
  let fixed = s.required @ s.optional in
  match List.nth_opt fixed i with
  | Some t -> Some t
  | None -> if i >= List.length fixed then s.variadic else None
