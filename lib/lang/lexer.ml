(* Hand-written lexer with one-token lookahead under parser control. The
   parser can rewind to the raw character position of the current token
   (needed to switch into XML mode for direct element constructors). XQuery
   comments "(: ... :)" nest. Keywords are not reserved; the parser decides
   contextually whether a NAME is a keyword. *)

exception Error of string * int

type token =
  | NAME of string (* QName, possibly prefixed: fn:doc, xs:string *)
  | STR of string
  | INT of int
  | FLOAT of float
  | LPAR
  | RPAR
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | ASSIGN (* := *)
  | DOLLAR
  | SLASH
  | DSLASH (* // *)
  | DCOLON (* :: *)
  | AT
  | DOT
  | DOTDOT
  | STAR
  | PLUS
  | MINUS
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | LTLT (* << *)
  | GTGT (* >> *)
  | PIPE
  | QMARK
  | EOF

let token_to_string = function
  | NAME s -> s
  | STR s -> Printf.sprintf "%S" s
  | INT i -> string_of_int i
  | FLOAT f -> string_of_float f
  | LPAR -> "("
  | RPAR -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | SEMI -> ";"
  | ASSIGN -> ":="
  | DOLLAR -> "$"
  | SLASH -> "/"
  | DSLASH -> "//"
  | DCOLON -> "::"
  | AT -> "@"
  | DOT -> "."
  | DOTDOT -> ".."
  | STAR -> "*"
  | PLUS -> "+"
  | MINUS -> "-"
  | EQ -> "="
  | NE -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | LTLT -> "<<"
  | GTGT -> ">>"
  | PIPE -> "|"
  | QMARK -> "?"
  | EOF -> "<eof>"

type t = {
  src : string;
  mutable pos : int; (* position after the current token *)
  mutable tok : token;
  mutable tok_start : int; (* raw position where the current token began *)
}

let fail lx msg = raise (Error (msg, lx.tok_start))

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false
let is_digit c = c >= '0' && c <= '9'

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
  || Char.code c >= 128

let is_name_char c = is_name_start c || is_digit c || c = '-' || c = '.'

let rec skip_ws_comments lx =
  let n = String.length lx.src in
  while lx.pos < n && is_ws lx.src.[lx.pos] do
    lx.pos <- lx.pos + 1
  done;
  if lx.pos + 1 < n && lx.src.[lx.pos] = '(' && lx.src.[lx.pos + 1] = ':' then begin
    (* nested XQuery comment *)
    let depth = ref 1 in
    lx.pos <- lx.pos + 2;
    while !depth > 0 do
      if lx.pos + 1 >= n then raise (Error ("unterminated comment", lx.pos));
      if lx.src.[lx.pos] = '(' && lx.src.[lx.pos + 1] = ':' then begin
        incr depth;
        lx.pos <- lx.pos + 2
      end
      else if lx.src.[lx.pos] = ':' && lx.src.[lx.pos + 1] = ')' then begin
        decr depth;
        lx.pos <- lx.pos + 2
      end
      else lx.pos <- lx.pos + 1
    done;
    skip_ws_comments lx
  end

let scan_string lx quote =
  let buf = Buffer.create 16 in
  let n = String.length lx.src in
  let rec loop () =
    if lx.pos >= n then raise (Error ("unterminated string literal", lx.pos));
    let c = lx.src.[lx.pos] in
    if c = quote then
      if lx.pos + 1 < n && lx.src.[lx.pos + 1] = quote then begin
        (* doubled quote = escaped quote *)
        Buffer.add_char buf quote;
        lx.pos <- lx.pos + 2;
        loop ()
      end
      else lx.pos <- lx.pos + 1
    else begin
      Buffer.add_char buf c;
      lx.pos <- lx.pos + 1;
      loop ()
    end
  in
  loop ();
  Buffer.contents buf

let scan_name lx =
  let start = lx.pos in
  let n = String.length lx.src in
  while lx.pos < n && is_name_char lx.src.[lx.pos] do
    lx.pos <- lx.pos + 1
  done;
  (* optional prefix:local — but beware of "::" (axis separator) and ":=" *)
  if
    lx.pos + 1 < n
    && lx.src.[lx.pos] = ':'
    && is_name_start lx.src.[lx.pos + 1]
    && not (lx.pos + 1 < n && lx.src.[lx.pos + 1] = ':')
  then begin
    lx.pos <- lx.pos + 1;
    while lx.pos < n && is_name_char lx.src.[lx.pos] do
      lx.pos <- lx.pos + 1
    done
  end;
  String.sub lx.src start (lx.pos - start)

let scan_number lx =
  let start = lx.pos in
  let n = String.length lx.src in
  while lx.pos < n && is_digit lx.src.[lx.pos] do
    lx.pos <- lx.pos + 1
  done;
  let is_float = ref false in
  if
    lx.pos + 1 < n
    && lx.src.[lx.pos] = '.'
    && is_digit lx.src.[lx.pos + 1]
  then begin
    is_float := true;
    lx.pos <- lx.pos + 1;
    while lx.pos < n && is_digit lx.src.[lx.pos] do
      lx.pos <- lx.pos + 1
    done
  end;
  if lx.pos < n && (lx.src.[lx.pos] = 'e' || lx.src.[lx.pos] = 'E') then begin
    is_float := true;
    lx.pos <- lx.pos + 1;
    if lx.pos < n && (lx.src.[lx.pos] = '+' || lx.src.[lx.pos] = '-') then
      lx.pos <- lx.pos + 1;
    while lx.pos < n && is_digit lx.src.[lx.pos] do
      lx.pos <- lx.pos + 1
    done
  end;
  let s = String.sub lx.src start (lx.pos - start) in
  if !is_float then FLOAT (float_of_string s) else INT (int_of_string s)

let scan lx =
  skip_ws_comments lx;
  lx.tok_start <- lx.pos;
  let n = String.length lx.src in
  if lx.pos >= n then EOF
  else
    let c = lx.src.[lx.pos] in
    let c2 = if lx.pos + 1 < n then lx.src.[lx.pos + 1] else '\000' in
    let two tok =
      lx.pos <- lx.pos + 2;
      tok
    in
    let one tok =
      lx.pos <- lx.pos + 1;
      tok
    in
    match (c, c2) with
    | '"', _ | '\'', _ ->
      lx.pos <- lx.pos + 1;
      STR (scan_string lx c)
    | ':', '=' -> two ASSIGN
    | ':', ':' -> two DCOLON
    | '/', '/' -> two DSLASH
    | '.', '.' -> two DOTDOT
    | '!', '=' -> two NE
    | '<', '=' -> two LE
    | '<', '<' -> two LTLT
    | '>', '=' -> two GE
    | '>', '>' -> two GTGT
    | '(', _ -> one LPAR
    | ')', _ -> one RPAR
    | '{', _ -> one LBRACE
    | '}', _ -> one RBRACE
    | '[', _ -> one LBRACKET
    | ']', _ -> one RBRACKET
    | ',', _ -> one COMMA
    | ';', _ -> one SEMI
    | '$', _ -> one DOLLAR
    | '/', _ -> one SLASH
    | '@', _ -> one AT
    | '.', _ -> one DOT
    | '*', _ -> one STAR
    | '+', _ -> one PLUS
    | '-', _ -> one MINUS
    | '=', _ -> one EQ
    | '<', _ -> one LT
    | '>', _ -> one GT
    | '|', _ -> one PIPE
    | '?', _ -> one QMARK
    | c, _ when is_digit c -> scan_number lx
    | c, _ when is_name_start c -> NAME (scan_name lx)
    | c, _ -> raise (Error (Printf.sprintf "unexpected character %C" c, lx.pos))

let create src =
  let lx = { src; pos = 0; tok = EOF; tok_start = 0 } in
  lx.tok <- scan lx;
  lx

let current lx = lx.tok
let advance lx = lx.tok <- scan lx

(* Raw character position where the current token starts; used by the
   parser to enter XML mode for direct constructors. *)
let raw_start lx = lx.tok_start

(* Resume tokenizing from raw position [p] (after XML-mode reading). *)
let resume_at lx p =
  lx.pos <- p;
  lx.tok <- scan lx
