(* The builtin function library. Classes per the paper's Problem 5:
   - class 1 (static context): static-base-uri, default-collation,
     current-dateTime — read from the dynamic environment, which XRPC
     propagates in message attributes;
   - class 2 (node dynamic context): base-uri, document-uri — the XRPC
     runtime overrides these with xrpc: wrappers for shipped nodes;
   - class 3/4 (non-descendant access): root, id, idref — supported locally;
     remotely only under pass-by-projection.
   Being schemaless, id/idref treat attributes named "id" as IDs and
   "idref"/"idrefs" as IDREFs (documented simplification). *)

module X = Xd_xml

let err = Env.dynamic_error

(* Argument shapes the arity check already rules out: report the function
   instead of dying on a blind assertion if an evaluator bug ever feeds a
   builtin a malformed argument list. *)
let bad_args name =
  err "%s: internal error — argument list shape does not match its arity"
    name

let arity name n args =
  if List.length args <> n then
    err "%s expects %d argument(s), got %d" name n (List.length args)

let one_node name (v : Value.t) =
  match v with
  | [ Value.N n ] -> n
  | _ -> err "%s expects a single node" name

let opt_node name (v : Value.t) =
  match v with
  | [] -> None
  | [ Value.N n ] -> Some n
  | _ -> err "%s expects at most one node" name

let doubles v = List.map Value.atom_to_double (Value.atomize v)

let strings v = List.map Value.atom_to_string (Value.atomize v)

let node_doc_elements n =
  let root = X.Node.root n in
  List.filter
    (fun x -> X.Node.kind x = X.Node.Element)
    (X.Node.descendant_or_self root)

let id_attrs = [ "id"; "xml:id" ]
let idref_attrs = [ "idref"; "idrefs" ]

let lookup_by_attr names values ctx =
  let wanted = strings values in
  let wanted =
    List.concat_map (fun s -> String.split_on_char ' ' s) wanted
    |> List.filter (fun s -> s <> "")
  in
  List.filter
    (fun e ->
      List.exists
        (fun a ->
          List.mem (X.Node.name a) names
          && List.exists
               (fun w ->
                 List.mem w
                   (String.split_on_char ' ' (X.Node.string_value a)))
               wanted)
        (X.Node.attributes e))
    (node_doc_elements ctx)

let table () : (string, Env.t -> Value.t list -> Value.t) Hashtbl.t =
  let t = Hashtbl.create 64 in
  let reg name f = Hashtbl.replace t name f in

  (* ---- documents and node context ---- *)
  reg "doc" (fun env args ->
      arity "fn:doc" 1 args;
      match args with
      | [ v ] ->
        let uri = Value.string_value v in
        let d = env.Env.resolve_doc env uri in
        [ Value.N (X.Node.doc_node d) ]
      | _ -> bad_args "fn:doc");
  reg "collection" (fun env args ->
      arity "fn:collection" 1 args;
      match args with
      | [ v ] ->
        let uri = Value.string_value v in
        let d = env.Env.resolve_doc env uri in
        [ Value.N (X.Node.doc_node d) ]
      | _ -> bad_args "fn:collection");
  reg "root" (fun _ args ->
      arity "fn:root" 1 args;
      match opt_node "fn:root" (List.hd args) with
      | None -> []
      | Some n -> [ Value.N (X.Node.root n) ]);
  reg "id" (fun _ args ->
      match args with
      | [ vals; ctx ] ->
        let ctx = one_node "fn:id" ctx in
        List.map (fun n -> Value.N n) (lookup_by_attr id_attrs vals ctx)
      | _ -> err "fn:id expects 2 arguments (values, context node)");
  reg "idref" (fun _ args ->
      match args with
      | [ vals; ctx ] ->
        let ctx = one_node "fn:idref" ctx in
        List.map (fun n -> Value.N n) (lookup_by_attr idref_attrs vals ctx)
      | _ -> err "fn:idref expects 2 arguments (values, context node)");
  reg "base-uri" (fun _ args ->
      arity "fn:base-uri" 1 args;
      match opt_node "fn:base-uri" (List.hd args) with
      | None -> []
      | Some n -> (
        match X.Node.document_uri n with
        | Some u -> Value.of_string u
        | None -> []));
  reg "document-uri" (fun _ args ->
      arity "fn:document-uri" 1 args;
      match opt_node "fn:document-uri" (List.hd args) with
      | None -> []
      | Some n -> (
        if X.Node.kind n <> X.Node.Document then []
        else
          match X.Node.document_uri n with
          | Some u -> Value.of_string u
          | None -> []));

  (* ---- static context (class 1) ---- *)
  reg "static-base-uri" (fun env args ->
      arity "fn:static-base-uri" 0 args;
      Value.of_string env.Env.static_base_uri);
  reg "default-collation" (fun env args ->
      arity "fn:default-collation" 0 args;
      Value.of_string env.Env.default_collation);
  reg "current-dateTime" (fun env args ->
      arity "fn:current-dateTime" 0 args;
      Value.of_string env.Env.current_datetime);

  (* ---- booleans ---- *)
  reg "true" (fun _ args ->
      arity "fn:true" 0 args;
      Value.of_bool true);
  reg "false" (fun _ args ->
      arity "fn:false" 0 args;
      Value.of_bool false);
  reg "not" (fun _ args ->
      arity "fn:not" 1 args;
      Value.of_bool (not (Value.effective_boolean_value (List.hd args))));
  reg "boolean" (fun _ args ->
      arity "fn:boolean" 1 args;
      Value.of_bool (Value.effective_boolean_value (List.hd args)));

  (* ---- cardinality ---- *)
  reg "count" (fun _ args ->
      arity "fn:count" 1 args;
      Value.of_int (List.length (List.hd args)));
  reg "empty" (fun _ args ->
      arity "fn:empty" 1 args;
      Value.of_bool (List.hd args = []));
  reg "exists" (fun _ args ->
      arity "fn:exists" 1 args;
      Value.of_bool (List.hd args <> []));
  reg "zero-or-one" (fun _ args ->
      arity "fn:zero-or-one" 1 args;
      match List.hd args with
      | ([] | [ _ ]) as v -> v
      | _ -> err "fn:zero-or-one: more than one item");
  reg "exactly-one" (fun _ args ->
      arity "fn:exactly-one" 1 args;
      match List.hd args with
      | [ _ ] as v -> v
      | _ -> err "fn:exactly-one: not exactly one item");
  reg "one-or-more" (fun _ args ->
      arity "fn:one-or-more" 1 args;
      match List.hd args with
      | [] -> err "fn:one-or-more: empty sequence"
      | v -> v);

  (* ---- strings ---- *)
  reg "string" (fun _ args ->
      arity "fn:string" 1 args;
      Value.of_string (Value.string_value (List.hd args)));
  reg "data" (fun _ args ->
      arity "fn:data" 1 args;
      List.map (fun a -> Value.A a) (Value.atomize (List.hd args)));
  reg "number" (fun _ args ->
      arity "fn:number" 1 args;
      Value.of_float (Value.to_double (List.hd args)));
  reg "concat" (fun _ args ->
      if List.length args < 2 then err "fn:concat expects at least 2 arguments";
      Value.of_string (String.concat "" (List.map Value.string_value args)));
  reg "string-length" (fun _ args ->
      arity "fn:string-length" 1 args;
      Value.of_int (String.length (Value.string_value (List.hd args))));
  reg "contains" (fun _ args ->
      arity "fn:contains" 2 args;
      match args with
      | [ a; b ] ->
        let s = Value.string_value a and sub = Value.string_value b in
        let n = String.length sub in
        let found = ref (n = 0) in
        for i = 0 to String.length s - n do
          if (not !found) && String.sub s i n = sub then found := true
        done;
        Value.of_bool !found
      | _ -> bad_args "fn:contains");
  reg "starts-with" (fun _ args ->
      arity "fn:starts-with" 2 args;
      match args with
      | [ a; b ] ->
        let s = Value.string_value a and p = Value.string_value b in
        Value.of_bool
          (String.length s >= String.length p
          && String.sub s 0 (String.length p) = p)
      | _ -> bad_args "fn:starts-with");
  reg "ends-with" (fun _ args ->
      arity "fn:ends-with" 2 args;
      match args with
      | [ a; b ] ->
        let s = Value.string_value a and p = Value.string_value b in
        let ls = String.length s and lp = String.length p in
        Value.of_bool (ls >= lp && String.sub s (ls - lp) lp = p)
      | _ -> bad_args "fn:ends-with");
  reg "substring" (fun _ args ->
      match args with
      | [ s; start ] ->
        let s = Value.string_value s in
        let st = int_of_float (Value.to_double start) in
        let st = max 1 st in
        if st > String.length s then Value.of_string ""
        else Value.of_string (String.sub s (st - 1) (String.length s - st + 1))
      | [ s; start; len ] ->
        let s = Value.string_value s in
        let st = int_of_float (Value.to_double start) in
        let ln = int_of_float (Value.to_double len) in
        let first = max 1 st in
        let last = min (String.length s) (st + ln - 1) in
        if last < first then Value.of_string ""
        else Value.of_string (String.sub s (first - 1) (last - first + 1))
      | _ -> err "fn:substring expects 2 or 3 arguments");
  reg "string-join" (fun _ args ->
      arity "fn:string-join" 2 args;
      match args with
      | [ parts; sep ] ->
        Value.of_string (String.concat (Value.string_value sep) (strings parts))
      | _ -> bad_args "fn:string-join");
  reg "normalize-space" (fun _ args ->
      arity "fn:normalize-space" 1 args;
      let s = Value.string_value (List.hd args) in
      let words =
        String.split_on_char ' '
          (String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s)
        |> List.filter (fun w -> w <> "")
      in
      Value.of_string (String.concat " " words));
  reg "upper-case" (fun _ args ->
      arity "fn:upper-case" 1 args;
      Value.of_string (String.uppercase_ascii (Value.string_value (List.hd args))));
  reg "lower-case" (fun _ args ->
      arity "fn:lower-case" 1 args;
      Value.of_string (String.lowercase_ascii (Value.string_value (List.hd args))));
  reg "substring-before" (fun _ args ->
      arity "fn:substring-before" 2 args;
      match args with
      | [ a; b ] ->
        let s = Value.string_value a and sub = Value.string_value b in
        let n = String.length sub in
        let res = ref "" in
        (try
           for i = 0 to String.length s - n do
             if String.sub s i n = sub then begin
               res := String.sub s 0 i;
               raise Exit
             end
           done
         with Exit -> ());
        Value.of_string !res
      | _ -> bad_args "fn:substring-before");
  reg "substring-after" (fun _ args ->
      arity "fn:substring-after" 2 args;
      match args with
      | [ a; b ] ->
        let s = Value.string_value a and sub = Value.string_value b in
        let n = String.length sub in
        let res = ref "" in
        (try
           for i = 0 to String.length s - n do
             if String.sub s i n = sub then begin
               res := String.sub s (i + n) (String.length s - i - n);
               raise Exit
             end
           done
         with Exit -> ());
        Value.of_string !res
      | _ -> bad_args "fn:substring-after");

  (* ---- numerics and aggregates ---- *)
  let agg name f =
    reg name (fun _ args ->
        arity ("fn:" ^ name) 1 args;
        match doubles (List.hd args) with [] -> [] | ds -> f ds)
  in
  agg "avg" (fun ds ->
      Value.of_float (List.fold_left ( +. ) 0.0 ds /. float_of_int (List.length ds)));
  agg "max" (fun ds -> Value.of_float (List.fold_left Float.max neg_infinity ds));
  agg "min" (fun ds -> Value.of_float (List.fold_left Float.min infinity ds));
  reg "sum" (fun _ args ->
      arity "fn:sum" 1 args;
      match doubles (List.hd args) with
      | [] -> Value.of_int 0
      | ds -> Value.of_float (List.fold_left ( +. ) 0.0 ds));
  reg "abs" (fun _ args ->
      arity "fn:abs" 1 args;
      Value.of_float (Float.abs (Value.to_double (List.hd args))));
  reg "floor" (fun _ args ->
      arity "fn:floor" 1 args;
      Value.of_float (Float.floor (Value.to_double (List.hd args))));
  reg "ceiling" (fun _ args ->
      arity "fn:ceiling" 1 args;
      Value.of_float (Float.ceil (Value.to_double (List.hd args))));
  reg "round" (fun _ args ->
      arity "fn:round" 1 args;
      Value.of_float (Float.round (Value.to_double (List.hd args))));

  (* ---- sequences ---- *)
  reg "distinct-values" (fun _ args ->
      arity "fn:distinct-values" 1 args;
      let atoms = Value.atomize (List.hd args) in
      let rec dedup seen = function
        | [] -> List.rev seen
        | a :: rest ->
          if List.exists (Value.atom_equal a) seen then dedup seen rest
          else dedup (a :: seen) rest
      in
      List.map (fun a -> Value.A a) (dedup [] atoms));
  reg "reverse" (fun _ args ->
      arity "fn:reverse" 1 args;
      List.rev (List.hd args));
  reg "subsequence" (fun _ args ->
      match args with
      | [ v; start ] ->
        let st = int_of_float (Value.to_double start) in
        List.filteri (fun i _ -> i + 1 >= st) v
      | [ v; start; len ] ->
        let st = int_of_float (Value.to_double start) in
        let ln = int_of_float (Value.to_double len) in
        List.filteri (fun i _ -> i + 1 >= st && i + 1 < st + ln) v
      | _ -> err "fn:subsequence expects 2 or 3 arguments");
  reg "item-at" (fun _ args ->
      arity "fn:item-at" 2 args;
      match args with
      | [ v; idx ] -> (
        let i = int_of_float (Value.to_double idx) in
        match List.nth_opt v (i - 1) with None -> [] | Some it -> [ it ])
      | _ -> bad_args "fn:item-at");
  reg "insert-before" (fun _ args ->
      arity "fn:insert-before" 3 args;
      match args with
      | [ v; pos; ins ] ->
        let p = max 1 (int_of_float (Value.to_double pos)) in
        let rec go i = function
          | [] -> ins
          | x :: rest when i = p -> ins @ (x :: rest)
          | x :: rest -> x :: go (i + 1) rest
        in
        go 1 v
      | _ -> bad_args "fn:insert-before");
  reg "remove" (fun _ args ->
      arity "fn:remove" 2 args;
      match args with
      | [ v; pos ] ->
        let p = int_of_float (Value.to_double pos) in
        List.filteri (fun i _ -> i + 1 <> p) v
      | _ -> bad_args "fn:remove");
  reg "deep-equal" (fun _ args ->
      arity "fn:deep-equal" 2 args;
      match args with
      | [ a; b ] -> Value.of_bool (Value.deep_equal a b)
      | _ -> bad_args "fn:deep-equal");

  (* ---- names ---- *)
  reg "name" (fun _ args ->
      arity "fn:name" 1 args;
      match opt_node "fn:name" (List.hd args) with
      | None -> Value.of_string ""
      | Some n -> Value.of_string (X.Node.name n));
  reg "local-name" (fun _ args ->
      arity "fn:local-name" 1 args;
      match opt_node "fn:local-name" (List.hd args) with
      | None -> Value.of_string ""
      | Some n ->
        let nm = X.Node.name n in
        let local =
          match String.rindex_opt nm ':' with
          | Some i -> String.sub nm (i + 1) (String.length nm - i - 1)
          | None -> nm
        in
        Value.of_string local);

  (* paper-fidelity aliases: in XRPC, fn:base-uri / fn:document-uri on
     shipped nodes are substituted by xrpc: wrappers reading the message
     attributes; in this implementation shredded documents adopt the
     origin base-uri directly, so the wrappers coincide with the plain
     functions *)
  reg "xrpc:base-uri" (fun env args ->
      (Hashtbl.find t "base-uri") env args);
  reg "xrpc:document-uri" (fun env args ->
      (Hashtbl.find t "document-uri") env args);

  reg "error" (fun _ args ->
      let msg = match args with v :: _ -> Value.string_value v | [] -> "fn:error" in
      err "%s" msg);

  (* the registry and Builtin_names.all must coincide exactly — the
     decomposition conditions and the plan verifier derive their known
     set from the list, so drift would silently change what counts as an
     opaque function *)
  List.iter
    (fun name ->
      if not (Hashtbl.mem t name) then
        invalid_arg
          ("Builtins.table: " ^ name
         ^ " is in Builtin_names.all but not registered"))
    Builtin_names.all;
  Hashtbl.iter
    (fun name _ ->
      if not (Builtin_names.is_builtin name) then
        invalid_arg
          ("Builtins.table: " ^ name
         ^ " is registered but missing from Builtin_names.all"))
    t;
  t
