(** The builtin function library, keyed by local name ([fn:] stripped).

    Relative to the paper's Problem 5 classification:
    class 1 (static context: static-base-uri, default-collation,
    current-dateTime) reads the dynamic environment, which XRPC propagates
    in message attributes; class 2 (base-uri, document-uri) works on
    shipped nodes because fragments carry their origin base-uri; classes
    3/4 (root, id, idref) work locally and — remotely — only under
    pass-by-projection. Being schemaless, id/idref treat attributes named
    "id"/"xml:id" as IDs and "idref"/"idrefs" as IDREFs. *)

val table : unit -> (string, Env.t -> Value.t list -> Value.t) Hashtbl.t
(** A fresh table with every builtin registered. *)
