(** Pretty-printer for XCore. The output is re-parseable by
    {!Parser.parse_expr_string} / {!Parser.parse_query}; the test suite
    relies on the round trip. Also exports the name tables shared with the
    projection-path syntax. *)

val escape_string : string -> string
val axis_name : Ast.axis -> string
val node_test_name : Ast.node_test -> string
val value_comp_name : Ast.value_comp -> string
val node_comp_name : Ast.node_comp -> string
val set_op_name : Ast.set_op -> string
val arith_op_name : Ast.arith_op -> string
val occurrence_name : Ast.occurrence -> string
val sequence_type_name : Ast.sequence_type -> string

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_func : Format.formatter -> Ast.func -> unit
val pp_query : Format.formatter -> Ast.query -> unit
val expr_to_string : Ast.expr -> string
val query_to_string : Ast.query -> string
