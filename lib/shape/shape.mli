(** Static wire-shape inference over a decomposed plan.

    Per execute-at call site, infers a {!descriptor}: the wire shape of
    each parameter and of the response, joined from the
    {!Xd_types.Stype} lattice (with the function fixpoint inherited
    from {!Xd_types.Infer}). A shape is either provably atomic — the
    value crosses the wire as a run of [<atomic>] elements with a
    constant [<fragments></fragments>] section under every passing
    strategy — or ⊤ ("dynamic"), the safe escape hatch that keeps the
    generic codec.

    Descriptors drive [Xd_xrpc.Codec]'s per-call-site compiled
    encoder/decoder closures; the verifier re-derives them with an
    independent run of {!analyze} and rejects disagreements. *)

type param_shape = P_atomic of Xd_types.Stype.t | P_dynamic
type resp_shape = R_atomic of Xd_types.Stype.t | R_dynamic

type descriptor = {
  vertex : int;  (** the remote body's vertex id (the call-site key) *)
  exec : int;  (** the execute-at vertex itself *)
  host : string option;  (** literal target host; [None] = computed *)
  params : (Xd_lang.Ast.var * param_shape) list;
  resp : resp_shape;
}

type result = {
  descriptors : descriptor list;  (** in plan traversal order *)
  by_vertex : (int, descriptor) Hashtbl.t;
}

val analyze : Xd_lang.Ast.query -> result

val param_shape_equal : param_shape -> param_shape -> bool
val resp_shape_equal : resp_shape -> resp_shape -> bool
val descriptor_equal : descriptor -> descriptor -> bool

val encoder_applicable : descriptor -> bool
(** Every parameter atomic: a specialized request encoder applies. *)

val decoder_applicable : descriptor -> bool
(** Atomic response: a specialized response decoder applies. *)

val param_shape_to_string : param_shape -> string
val resp_shape_to_string : resp_shape -> string

val pp_dump : Format.formatter -> result -> unit
(** The [--shapes] dump: the fixed envelope layout, then every call
    site with its parameter/response shapes and codec disposition. *)
