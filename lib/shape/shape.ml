(* Static wire-shape inference.

   A monotone analysis over the decomposed plan that infers, per
   execute-at call site, a *wire-shape descriptor*: the shape each
   parameter takes on the wire (a run of <atomic> values when the
   {!Xd_types.Stype} lattice proves the parameter atomic, the full
   fragment grammar otherwise) and the shape of the response (from the
   body's inferred type). The fixpoint over user-defined functions is
   inherited from {!Xd_types.Infer}; anything the lattice cannot prove
   atomic is ⊤ ("dynamic"), the safe escape hatch — a dynamic shape
   just keeps the generic codec.

   The descriptors drive the XRPC codec generator (Xd_xrpc.Codec),
   which compiles per-call-site encoder/decoder closures with
   precomputed constant segments. The verifier re-derives every
   descriptor with a second, independent run of this analysis and
   rejects plans whose compiled shapes disagree — codegen never trusts
   a descriptor that only one derivation produced.

   The envelope attribute layout is *not* inferred: it is fixed by the
   protocol (PROTOCOL.md) — request-id only under fault injection,
   txn/epoch as decimal ints, deadline as a fixed 15-byte %015.6f so it
   can be re-stamped in place, retry-after as a fixed 8-byte %08.4f —
   and the dump restates it so a descriptor is a complete picture of
   the message bytes. *)

module Ast = Xd_lang.Ast
module Stype = Xd_types.Stype
module Infer = Xd_types.Infer

type param_shape =
  | P_atomic of Stype.t
      (** provably atomic: marshaled as a run of [<atomic>] values —
          nothing for a message copy to damage, no fragments, no
          projection paths *)
  | P_dynamic  (** ⊤ — may carry nodes; full fragment grammar *)

type resp_shape = R_atomic of Stype.t | R_dynamic

type descriptor = {
  vertex : int;  (** the remote body's vertex id (the call-site key) *)
  exec : int;  (** the execute-at vertex itself *)
  host : string option;  (** literal target host; [None] = computed *)
  params : (Ast.var * param_shape) list;  (** in declaration order *)
  resp : resp_shape;
}

type result = {
  descriptors : descriptor list;  (** in plan traversal order *)
  by_vertex : (int, descriptor) Hashtbl.t;  (** keyed by body vertex *)
}

let param_shape_equal a b =
  match (a, b) with
  | P_atomic x, P_atomic y -> Stype.equal x y
  | P_dynamic, P_dynamic -> true
  | _ -> false

let resp_shape_equal a b =
  match (a, b) with
  | R_atomic x, R_atomic y -> Stype.equal x y
  | R_dynamic, R_dynamic -> true
  | _ -> false

let descriptor_equal a b =
  a.vertex = b.vertex && a.exec = b.exec && a.host = b.host
  && (try List.for_all2
            (fun (v1, s1) (v2, s2) -> v1 = v2 && param_shape_equal s1 s2)
            a.params b.params
      with Invalid_argument _ -> false)
  && resp_shape_equal a.resp b.resp

(* A compiled encoder needs every parameter atomic (then the fragments
   section is the constant <fragments></fragments> under every passing
   strategy); a compiled decoder needs the response atomic. *)
let encoder_applicable d =
  List.for_all (fun (_, s) -> match s with P_atomic _ -> true | P_dynamic -> false)
    d.params

let decoder_applicable d =
  match d.resp with R_atomic _ -> true | R_dynamic -> false

let analyze (q : Ast.query) : result =
  let res = Infer.infer_query q in
  let by_vertex = Hashtbl.create 16 in
  let acc = ref [] in
  let shape_of_param e =
    match Infer.type_of res e with
    | Some t when Stype.is_atomic t -> P_atomic t
    | _ -> P_dynamic
  in
  let rec walk (e : Ast.expr) =
    (match e.Ast.desc with
    | Ast.Execute_at x ->
      let host =
        match x.Ast.host.Ast.desc with
        | Ast.Literal (Ast.A_string h) -> Some h
        | _ -> None
      in
      let params =
        List.map (fun (v, pe) -> (v, shape_of_param pe)) x.Ast.params
      in
      let resp =
        match Infer.type_of_vertex res x.Ast.body.Ast.id with
        | Some t when Stype.is_atomic t -> R_atomic t
        | _ -> R_dynamic
      in
      let d = { vertex = x.Ast.body.Ast.id; exec = e.Ast.id; host; params; resp } in
      if not (Hashtbl.mem by_vertex d.vertex) then begin
        Hashtbl.replace by_vertex d.vertex d;
        acc := d :: !acc
      end
    | _ -> ());
    List.iter walk (Ast.children e)
  in
  walk q.Ast.body;
  List.iter (fun f -> walk f.Ast.f_body) q.Ast.funcs;
  { descriptors = List.rev !acc; by_vertex }

let param_shape_to_string = function
  | P_atomic t -> "atomic " ^ Stype.to_string t
  | P_dynamic -> "dynamic"

let resp_shape_to_string = function
  | R_atomic t -> "atomic " ^ Stype.to_string t
  | R_dynamic -> "dynamic"

let pp_dump fmt (r : result) =
  let compiled =
    List.length
      (List.filter (fun d -> encoder_applicable d || decoder_applicable d)
         r.descriptors)
  in
  Fmt.pf fmt "wire shapes: %d call site%s, %d with a compiled codec@."
    (List.length r.descriptors)
    (if List.length r.descriptors = 1 then "" else "s")
    compiled;
  Fmt.pf fmt
    "envelope: request-id (fault injection only) | txn, epoch int | deadline \
     %%015.6f (15B, re-stampable) | retry-after %%08.4f (8B) | trace header \
     after <env:Body>@.";
  List.iter
    (fun d ->
      Fmt.pf fmt "v%d @@ %s (execute-at v%d)@." d.vertex
        (match d.host with Some h -> h | None -> "<computed>")
        d.exec;
      List.iter
        (fun (v, s) ->
          Fmt.pf fmt "  param $%s : %s@." v (param_shape_to_string s))
        d.params;
      Fmt.pf fmt "  response : %s@." (resp_shape_to_string d.resp);
      let enc = encoder_applicable d and dec = decoder_applicable d in
      Fmt.pf fmt "  codec    : %s@."
        (match (enc, dec) with
        | true, true -> "compiled encoder + compiled decoder"
        | true, false -> "compiled encoder, generic decoder"
        | false, true -> "generic encoder, compiled decoder"
        | false, false -> "generic"))
    r.descriptors
