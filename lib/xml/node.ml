(* Node handles and the XPath axes.

   A node is (document, tree index) or (document, attribute index). Global
   document order: documents are ordered by their store id; within a
   document tree nodes are in pre-order, and an element's attributes come
   after the element itself but before its first child. *)

type t = {
  doc : Doc.t;
  idx : int; (* tree node pre index; for attributes: owner's pre index *)
  attr : int; (* -1 for tree nodes, else index into the attribute table *)
}

type kind =
  | Document
  | Element
  | Attribute
  | Text
  | Comment
  | Pi

let kind_to_string = function
  | Document -> "document-node"
  | Element -> "element"
  | Attribute -> "attribute"
  | Text -> "text"
  | Comment -> "comment"
  | Pi -> "processing-instruction"

let of_tree doc idx = { doc; idx; attr = -1 }
let of_attr doc ai = { doc; idx = doc.Doc.attr_owner.(ai); attr = ai }
let doc_node doc = of_tree doc 0
let doc n = n.doc
let index n = n.idx
let is_attribute n = n.attr >= 0

let kind n =
  if n.attr >= 0 then Attribute
  else
    match n.doc.Doc.kind.(n.idx) with
    | Doc.Document -> Document
    | Doc.Element -> Element
    | Doc.Text -> Text
    | Doc.Comment -> Comment
    | Doc.Pi -> Pi

let name n =
  if n.attr >= 0 then n.doc.Doc.attr_name.(n.attr) else n.doc.Doc.name.(n.idx)

(* Ordering key: (did, pre, is_attr, attr_idx). An attribute of element with
   pre p sorts after (p,0,_) and before (p+1,0,_). *)
let order_key n = (n.doc.Doc.did, n.idx, (if n.attr >= 0 then 1 else 0), n.attr)

let compare_order a b = compare (order_key a) (order_key b)
let same a b = compare_order a b = 0

let string_value n =
  if n.attr >= 0 then n.doc.Doc.attr_value.(n.attr)
  else
    match n.doc.Doc.kind.(n.idx) with
    | Doc.Text | Doc.Comment | Doc.Pi -> n.doc.Doc.value.(n.idx)
    | Doc.Element | Doc.Document ->
      let buf = Buffer.create 32 in
      let last = n.idx + n.doc.Doc.size.(n.idx) in
      for i = n.idx to last do
        if n.doc.Doc.kind.(i) = Doc.Text then
          Buffer.add_string buf n.doc.Doc.value.(i)
      done;
      Buffer.contents buf

let document_uri n = Doc.uri n.doc

(* --- structural predicates ------------------------------------------- *)

let is_tree_descendant_or_self ~anc:a ~desc:d =
  a.doc.Doc.did = d.doc.Doc.did
  && d.idx >= a.idx
  && d.idx <= a.idx + a.doc.Doc.size.(a.idx)

(* [contains a d]: d is a (or an attribute of a) descendant-or-self of a. *)
let contains a d =
  if a.attr >= 0 then same a d else is_tree_descendant_or_self ~anc:a ~desc:d

(* --- axes -------------------------------------------------------------
   All axes return nodes in document order (path-step semantics). *)

let parent n =
  if n.attr >= 0 then Some (of_tree n.doc n.idx)
  else
    let p = n.doc.Doc.parent.(n.idx) in
    if p < 0 then None else Some (of_tree n.doc p)

let attributes n =
  if n.attr >= 0 then []
  else
    let first = n.doc.Doc.attr_first.(n.idx) in
    if first < 0 then []
    else
      List.init n.doc.Doc.attr_count.(n.idx) (fun i -> of_attr n.doc (first + i))

let children n =
  if n.attr >= 0 then []
  else begin
    let d = n.doc in
    let stop = n.idx + d.Doc.size.(n.idx) in
    let rec loop i acc =
      if i > stop then List.rev acc
      else loop (i + d.Doc.size.(i) + 1) (of_tree d i :: acc)
    in
    loop (n.idx + 1) []
  end

let descendants n =
  if n.attr >= 0 then []
  else
    let d = n.doc in
    let stop = n.idx + d.Doc.size.(n.idx) in
    List.init (stop - n.idx) (fun i -> of_tree d (n.idx + 1 + i))

let descendant_or_self n = if n.attr >= 0 then [ n ] else n :: descendants n

let ancestors n =
  let rec up acc cur =
    match parent cur with
    | None -> acc (* document order: outermost first *)
    | Some p -> up (p :: acc) p
  in
  up [] n

let ancestor_or_self n = ancestors n @ [ n ]

let following_sibling n =
  if n.attr >= 0 then []
  else
    match parent n with
    | None -> []
    | Some p -> List.filter (fun c -> c.idx > n.idx) (children p)

let preceding_sibling n =
  if n.attr >= 0 then []
  else
    match parent n with
    | None -> []
    | Some p -> List.filter (fun c -> c.idx < n.idx) (children p)

(* following: nodes strictly after the subtree of n, excluding ancestors
   (ancestors all have smaller pre, so the pre > n.idx + size test suffices).
   For attribute nodes we use their owner element, per common practice. *)
let following n =
  let base = if n.attr >= 0 then of_tree n.doc n.idx else n in
  let d = base.doc in
  let start = base.idx + d.Doc.size.(base.idx) + 1 in
  let total = Doc.n_nodes d in
  List.init (max 0 (total - start)) (fun i -> of_tree d (start + i))

(* preceding: nodes before n in document order, excluding ancestors. *)
let preceding n =
  let base = if n.attr >= 0 then of_tree n.doc n.idx else n in
  let d = base.doc in
  let ancs = List.map (fun a -> a.idx) (ancestors base) in
  let rec loop i acc =
    if i >= base.idx then List.rev acc
    else
      let acc = if List.mem i ancs then acc else of_tree d i :: acc in
      loop (i + 1) acc
  in
  loop 0 []

let root n = of_tree n.doc 0

let pp fmt n =
  match kind n with
  | Document -> Fmt.pf fmt "document(%s)" (Option.value ~default:"?" (Doc.uri n.doc))
  | Element -> Fmt.pf fmt "<%s>@%d.%d" (name n) n.doc.Doc.did n.idx
  | Attribute -> Fmt.pf fmt "@%s=%S" (name n) (string_value n)
  | Text -> Fmt.pf fmt "text(%S)" (string_value n)
  | Comment -> Fmt.pf fmt "comment(%S)" (string_value n)
  | Pi -> Fmt.pf fmt "pi(%s)" (name n)
