(** Node handles and XPath axes.

    A node identifies a tree node or an attribute within a stored document.
    Node identity and global document order are derived from the (document
    id, pre index, attribute index) triple, so they survive any amount of
    navigation — but not copying into another document, which is exactly the
    property the paper's message-passing semantics must work around. *)

type t = { doc : Doc.t; idx : int; attr : int }

type kind =
  | Document
  | Element
  | Attribute
  | Text
  | Comment
  | Pi

val kind_to_string : kind -> string

val of_tree : Doc.t -> int -> t
val of_attr : Doc.t -> int -> t
val doc_node : Doc.t -> t
val doc : t -> Doc.t
val index : t -> int
val is_attribute : t -> bool
val kind : t -> kind
val name : t -> string

val order_key : t -> int * int * int * int
val compare_order : t -> t -> int
(** Global document order (documents ordered by store id). *)

val same : t -> t -> bool
(** Node identity ([is] in XQuery). *)

val string_value : t -> string
val document_uri : t -> string option

val contains : t -> t -> bool
(** [contains a d] — [d] is [a] or a descendant (or attribute of a
    descendant-or-self) of [a]. *)

(** {2 Axes} — all results in document order. *)

val parent : t -> t option
val attributes : t -> t list
val children : t -> t list
val descendants : t -> t list
val descendant_or_self : t -> t list
val ancestors : t -> t list
val ancestor_or_self : t -> t list
val following_sibling : t -> t list
val preceding_sibling : t -> t list
val following : t -> t list
val preceding : t -> t list
val root : t -> t

val pp : Format.formatter -> t -> unit
