(** XML text parser.

    Handles elements, attributes, character data, CDATA, comments,
    processing instructions, predefined entities and numeric character
    references; skips the XML declaration and DOCTYPE. With
    [strip_ws = true] (the default) whitespace-only text nodes are dropped,
    matching how document stores load data-oriented XML. *)

exception Error of string * int

val parse_doc : ?strip_ws:bool -> ?uri:string -> string -> Doc.t
(** Parse into an unregistered document ([did = -1]). Accepts a top-level
    forest (needed when shredding XRPC message fragments). *)

val parse : ?strip_ws:bool -> store:Store.t -> ?uri:string -> string -> Doc.t
(** Parse and register in [store]. *)
