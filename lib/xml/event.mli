(** Event-based (SAX-style) XML parser — the single grammar core behind
    both the tree-building {!Parser} and the XRPC codec's streaming
    shred fast path. Because both sit on this core they accept and
    reject exactly the same byte strings.

    Supports elements, attributes, character data, CDATA, comments,
    processing instructions, the five predefined entities and numeric
    character references; DOCTYPE declarations are skipped; namespace
    prefixes are kept as part of the name. Attribute values containing
    a raw ['<'] are rejected, per the XML well-formedness rules. *)

exception Error of string * int
(** Parse failure: message and byte offset. *)

type handler = {
  start_element : string -> (string * string) list -> unit;
      (** name, attributes in document order (duplicates preserved) *)
  end_element : string -> unit;  (** name of the element being closed *)
  text : string -> unit;
      (** one decoded character-data run (entities resolved); a CDATA
          section is its own run and bypasses whitespace stripping *)
  comment : string -> unit;
  pi : string -> string -> unit;  (** target, data *)
}

val parse : ?strip_ws:bool -> handler -> string -> unit
(** [parse h src] streams the events of [src] into [h]. A forest (or
    bare text) at top level is allowed — the XRPC shredder relies on
    it. [strip_ws] (default [true]) suppresses [text] callbacks for
    runs that are entirely whitespace. Raises {!Error} on malformed
    input; handler callbacks run as the input is consumed, so partial
    output may have been emitted by then. *)
