(* Document representation: tree nodes in pre-order arrays (MonetDB-style
   pre/size/parent encoding) plus a separate attribute table. The pre/size
   encoding gives O(1) subtree extent, which the runtime projection algorithm
   (Algorithm 1 of the paper) depends on for fast subtree skipping. *)

type kind =
  | Document
  | Element
  | Text
  | Comment
  | Pi

let kind_to_string = function
  | Document -> "document"
  | Element -> "element"
  | Text -> "text"
  | Comment -> "comment"
  | Pi -> "processing-instruction"

type t = {
  mutable did : int;
  uri : string option;
  kind : kind array;
  name : string array;
  value : string array;
  parent : int array;
  size : int array;
  attr_owner : int array;
  attr_name : string array;
  attr_value : string array;
  attr_first : int array;
  attr_count : int array;
}

let n_nodes d = Array.length d.kind
let n_attrs d = Array.length d.attr_owner
let uri d = d.uri
let id d = d.did

(* Total serialized-tree node count (tree nodes + attributes), used in
   statistics and size reporting. *)
let total_nodes d = n_nodes d + n_attrs d

exception Malformed of string

module Builder = struct
  type pending = {
    p_kind : kind;
    p_name : string;
    p_idx : int;
  }

  type b = {
    b_uri : string option;
    mutable nodes_kind : kind list;
    mutable nodes_name : string list;
    mutable nodes_value : string list;
    mutable nodes_parent : int list;
    mutable count : int;
    mutable sizes : (int * int) list; (* (idx, size), filled at close *)
    mutable attrs : (int * string * string) list; (* owner, name, value *)
    mutable stack : pending list;
    mutable text_buf : Buffer.t option; (* coalesce adjacent text *)
  }

  let create ?uri () =
    let b =
      {
        b_uri = uri;
        nodes_kind = [];
        nodes_name = [];
        nodes_value = [];
        nodes_parent = [];
        count = 0;
        sizes = [];
        attrs = [];
        stack = [];
        text_buf = None;
      }
    in
    (* implicit document node at index 0 *)
    b.nodes_kind <- [ Document ];
    b.nodes_name <- [ "" ];
    b.nodes_value <- [ "" ];
    b.nodes_parent <- [ -1 ];
    b.count <- 1;
    b.stack <- [ { p_kind = Document; p_name = ""; p_idx = 0 } ];
    b

  let current_parent b =
    match b.stack with
    | [] -> raise (Malformed "builder: no open node")
    | p :: _ -> p.p_idx

  let push_node b kind name value =
    let idx = b.count in
    b.nodes_kind <- kind :: b.nodes_kind;
    b.nodes_name <- name :: b.nodes_name;
    b.nodes_value <- value :: b.nodes_value;
    b.nodes_parent <- current_parent b :: b.nodes_parent;
    b.count <- idx + 1;
    idx

  let flush_text b =
    match b.text_buf with
    | None -> ()
    | Some buf ->
      b.text_buf <- None;
      let s = Buffer.contents buf in
      if s <> "" then begin
        let idx = push_node b Text "" s in
        b.sizes <- (idx, 0) :: b.sizes
      end

  let start_element b name attrs =
    flush_text b;
    let idx = push_node b Element name "" in
    List.iter (fun (an, av) -> b.attrs <- (idx, an, av) :: b.attrs) attrs;
    b.stack <- { p_kind = Element; p_name = name; p_idx = idx } :: b.stack

  (* pre-order index of the innermost open node (the document node when
     no element is open) — lets a streaming consumer key side tables by
     the index an element will occupy in the finished document *)
  let current_index b = current_parent b

  let end_element b =
    flush_text b;
    match b.stack with
    | { p_kind = Element; p_idx; _ } :: rest ->
      b.sizes <- (p_idx, b.count - p_idx - 1) :: b.sizes;
      b.stack <- rest
    | _ -> raise (Malformed "builder: end_element without matching start")

  let text b s =
    if s <> "" then begin
      let buf =
        match b.text_buf with
        | Some buf -> buf
        | None ->
          let buf = Buffer.create 32 in
          b.text_buf <- Some buf;
          buf
      in
      Buffer.add_string buf s
    end

  let comment b s =
    flush_text b;
    let idx = push_node b Comment "" s in
    b.sizes <- (idx, 0) :: b.sizes

  let pi b target data =
    flush_text b;
    let idx = push_node b Pi target data in
    b.sizes <- (idx, 0) :: b.sizes

  let finish b =
    flush_text b;
    (match b.stack with
    | [ { p_kind = Document; _ } ] -> ()
    | _ -> raise (Malformed "builder: unclosed elements at finish"));
    let n = b.count in
    let kind = Array.make n Document in
    let name = Array.make n "" in
    let value = Array.make n "" in
    let parent = Array.make n (-1) in
    let size = Array.make n 0 in
    let fill lst arr =
      let i = ref (n - 1) in
      List.iter
        (fun x ->
          arr.(!i) <- x;
          decr i)
        lst
    in
    fill b.nodes_kind kind;
    fill b.nodes_name name;
    fill b.nodes_value value;
    fill b.nodes_parent parent;
    List.iter (fun (idx, sz) -> size.(idx) <- sz) b.sizes;
    size.(0) <- n - 1;
    (* attributes, grouped by owner in pre-order; within an owner the
       original declaration order is kept. *)
    let attrs = List.rev b.attrs in
    let attrs = List.stable_sort (fun (o1, _, _) (o2, _, _) -> compare o1 o2) attrs in
    let na = List.length attrs in
    let attr_owner = Array.make na 0 in
    let attr_name = Array.make na "" in
    let attr_value = Array.make na "" in
    List.iteri
      (fun i (o, an, av) ->
        attr_owner.(i) <- o;
        attr_name.(i) <- an;
        attr_value.(i) <- av)
      attrs;
    let attr_first = Array.make n (-1) in
    let attr_count = Array.make n 0 in
    for i = na - 1 downto 0 do
      attr_first.(attr_owner.(i)) <- i;
      attr_count.(attr_owner.(i)) <- attr_count.(attr_owner.(i)) + 1
    done;
    {
      did = -1;
      uri = b.b_uri;
      kind;
      name;
      value;
      parent;
      size;
      attr_owner;
      attr_name;
      attr_value;
      attr_first;
      attr_count;
    }
end

(* Allocation-lean builder used by the XRPC event-shred fast path: the
   pre-order arrays grow in place and the element stack of the decoding
   state machine *is* an int array of open pre indexes — no per-node
   list cells, no final reverse pass, no attribute sort (attributes
   arrive grouped by owner in pre-order by construction). Given the
   same call sequence it produces a document structurally identical to
   {!Builder}'s (same arrays, same text coalescing) — a property the
   differential tests pin. *)
module Direct = struct
  type b = {
    d_uri : string option;
    mutable kind : kind array;
    mutable name : string array;
    mutable value : string array;
    mutable parent : int array;
    mutable size : int array;
    mutable count : int;
    mutable a_owner : int array;
    mutable a_name : string array;
    mutable a_value : string array;
    mutable a_count : int;
    mutable stack : int array; (* open node pre indexes; stack.(0) = 0 *)
    mutable depth : int;
    tbuf : Buffer.t; (* coalesce adjacent text *)
    mutable pending_text : bool;
  }

  let create ?uri () =
    let b =
      {
        d_uri = uri;
        kind = Array.make 64 Document;
        name = Array.make 64 "";
        value = Array.make 64 "";
        parent = Array.make 64 (-1);
        size = Array.make 64 0;
        count = 1;
        a_owner = Array.make 16 0;
        a_name = Array.make 16 "";
        a_value = Array.make 16 "";
        a_count = 0;
        stack = Array.make 32 0;
        depth = 1;
        tbuf = Buffer.create 64;
        pending_text = false;
      }
    in
    (* implicit document node at index 0; parent -1 is the initial fill *)
    b

  let grow_nodes b =
    let cap = Array.length b.kind in
    if b.count = cap then begin
      let n = cap * 2 in
      let g a fill =
        let a' = Array.make n fill in
        Array.blit a 0 a' 0 cap;
        a'
      in
      b.kind <- g b.kind Document;
      b.name <- g b.name "";
      b.value <- g b.value "";
      b.parent <- g b.parent (-1);
      b.size <- g b.size 0
    end

  let push_node b kind name value =
    grow_nodes b;
    let idx = b.count in
    b.kind.(idx) <- kind;
    b.name.(idx) <- name;
    b.value.(idx) <- value;
    b.parent.(idx) <- b.stack.(b.depth - 1);
    b.count <- idx + 1;
    idx

  let flush_text b =
    if b.pending_text then begin
      b.pending_text <- false;
      let s = Buffer.contents b.tbuf in
      Buffer.clear b.tbuf;
      (* only nonempty runs are buffered, so s <> "" *)
      ignore (push_node b Text "" s)
    end

  let start_element b name attrs =
    flush_text b;
    let idx = push_node b Element name "" in
    List.iter
      (fun (an, av) ->
        let cap = Array.length b.a_owner in
        if b.a_count = cap then begin
          let n = cap * 2 in
          let g a fill =
            let a' = Array.make n fill in
            Array.blit a 0 a' 0 cap;
            a'
          in
          b.a_owner <- g b.a_owner 0;
          b.a_name <- g b.a_name "";
          b.a_value <- g b.a_value ""
        end;
        b.a_owner.(b.a_count) <- idx;
        b.a_name.(b.a_count) <- an;
        b.a_value.(b.a_count) <- av;
        b.a_count <- b.a_count + 1)
      attrs;
    if b.depth = Array.length b.stack then begin
      let s' = Array.make (b.depth * 2) 0 in
      Array.blit b.stack 0 s' 0 b.depth;
      b.stack <- s'
    end;
    b.stack.(b.depth) <- idx;
    b.depth <- b.depth + 1

  let end_element b =
    flush_text b;
    if b.depth <= 1 then
      raise (Malformed "builder: end_element without matching start");
    let idx = b.stack.(b.depth - 1) in
    b.depth <- b.depth - 1;
    b.size.(idx) <- b.count - idx - 1

  let text b s =
    if s <> "" then begin
      Buffer.add_string b.tbuf s;
      b.pending_text <- true
    end

  let comment b s =
    flush_text b;
    ignore (push_node b Comment "" s)

  let pi b target data =
    flush_text b;
    ignore (push_node b Pi target data)

  let finish b =
    flush_text b;
    if b.depth <> 1 then raise (Malformed "builder: unclosed elements at finish");
    let n = b.count in
    let sub a = Array.sub a 0 n in
    let size = sub b.size in
    size.(0) <- n - 1;
    let na = b.a_count in
    let attr_owner = Array.sub b.a_owner 0 na in
    let attr_first = Array.make n (-1) in
    let attr_count = Array.make n 0 in
    for i = na - 1 downto 0 do
      attr_first.(attr_owner.(i)) <- i;
      attr_count.(attr_owner.(i)) <- attr_count.(attr_owner.(i)) + 1
    done;
    {
      did = -1;
      uri = b.d_uri;
      kind = sub b.kind;
      name = sub b.name;
      value = sub b.value;
      parent = sub b.parent;
      size;
      attr_owner;
      attr_name = Array.sub b.a_name 0 na;
      attr_value = Array.sub b.a_value 0 na;
      attr_first;
      attr_count;
    }
end

(* Convenience element-tree description for building documents in tests and
   generators without going through the imperative builder. *)
type tree =
  | E of string * (string * string) list * tree list
  | T of string
  | C of string
  | P of string * string

let of_tree ?uri t =
  let b = Builder.create ?uri () in
  let rec go = function
    | E (name, attrs, children) ->
      Builder.start_element b name attrs;
      List.iter go children;
      Builder.end_element b
    | T s -> Builder.text b s
    | C s -> Builder.comment b s
    | P (target, data) -> Builder.pi b target data
  in
  go t;
  Builder.finish b

let of_forest ?uri ts =
  let b = Builder.create ?uri () in
  let rec go = function
    | E (name, attrs, children) ->
      Builder.start_element b name attrs;
      List.iter go children;
      Builder.end_element b
    | T s -> Builder.text b s
    | C s -> Builder.comment b s
    | P (target, data) -> Builder.pi b target data
  in
  List.iter go ts;
  Builder.finish b
