(** XML document storage.

    A document is an immutable array-based tree in pre-order (MonetDB-style
    pre/size/parent encoding) with a separate attribute table. Index 0 is
    always the document node. The pre/size encoding gives O(1) subtree
    extents, which the runtime projection algorithm exploits to skip
    subtrees. *)

type kind =
  | Document
  | Element
  | Text
  | Comment
  | Pi

val kind_to_string : kind -> string

type t = {
  mutable did : int;  (** global document id, assigned by {!Store.add} *)
  uri : string option;
  kind : kind array;
  name : string array;  (** element name / PI target *)
  value : string array;  (** text / comment / PI content *)
  parent : int array;  (** parent pre index, -1 for the document node *)
  size : int array;  (** number of tree descendants (attributes excluded) *)
  attr_owner : int array;
  attr_name : string array;
  attr_value : string array;
  attr_first : int array;  (** per tree node: first attribute index or -1 *)
  attr_count : int array;
}

val n_nodes : t -> int
(** Number of tree nodes (document, elements, text, comments, PIs). *)

val n_attrs : t -> int
val total_nodes : t -> int
val uri : t -> string option
val id : t -> int

exception Malformed of string

(** Imperative SAX-style document builder. Adjacent text is coalesced and
    empty text nodes are dropped, per the XDM. *)
module Builder : sig
  type b

  val create : ?uri:string -> unit -> b
  val start_element : b -> string -> (string * string) list -> unit
  val end_element : b -> unit
  val text : b -> string -> unit
  val comment : b -> string -> unit
  val pi : b -> string -> string -> unit

  val current_index : b -> int
  (** Pre-order index of the innermost open node (the document node when
      no element is open). Lets a streaming consumer key side tables by
      the index an element will occupy in the finished document. *)

  val finish : b -> t
  (** Freeze into a document. The result has [did = -1] until registered
      with {!Store.add}. @raise Malformed on unbalanced elements. *)
end

(** Allocation-lean array builder used by the XRPC event-shred fast
    path: pre-order arrays grown in place, the element stack is an int
    array of open pre indexes, attributes need no sort because they
    arrive grouped by owner in pre-order. Same call sequence, same
    coalescing rules, structurally identical result to {!Builder}. *)
module Direct : sig
  type b

  val create : ?uri:string -> unit -> b
  val start_element : b -> string -> (string * string) list -> unit
  val end_element : b -> unit
  val text : b -> string -> unit
  val comment : b -> string -> unit
  val pi : b -> string -> string -> unit

  val finish : b -> t
  (** Freeze into a document ([did = -1]).
      @raise Malformed on unbalanced elements. *)
end

(** Declarative tree description, convenient in tests and generators. *)
type tree =
  | E of string * (string * string) list * tree list
  | T of string
  | C of string
  | P of string * string

val of_tree : ?uri:string -> tree -> t
val of_forest : ?uri:string -> tree list -> t
