(** fn:deep-equal on nodes: structural equality ignoring node identity,
    comments and processing instructions — the paper's query-equivalence
    notion (Q ≡ Q' iff deep-equal(Q(D), Q'(D)) for all D). *)

val equal : Node.t -> Node.t -> bool
