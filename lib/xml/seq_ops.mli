(** Node-sequence operations (document order, identity-based). *)

val sort : Node.t list -> Node.t list
val sort_dedup : Node.t list -> Node.t list
val union : Node.t list -> Node.t list -> Node.t list
val intersect : Node.t list -> Node.t list -> Node.t list
val except : Node.t list -> Node.t list -> Node.t list
val contains_node : Node.t list -> Node.t -> bool

val maximal : Node.t list -> Node.t list
(** Drop nodes contained in another node of the set (pass-by-fragment
    deduplication). Result is in document order. *)

val lowest_common_ancestor : Node.t list -> Node.t
(** @raise Invalid_argument on empty input or nodes from different
    documents. *)
