(* The single XML grammar core, exposed as an event stream: elements,
   attributes, character data, CDATA, comments, processing instructions,
   the five predefined entities and numeric character references.
   DOCTYPE declarations are skipped; namespace prefixes are kept as part
   of the name.

   Both the tree-building {!Parser} and the XRPC codec's streaming shred
   fast path sit on this core, so the two necessarily accept and reject
   exactly the same byte strings — the property the malformed-message
   fault tests pin.

   Character data is scanned in bulk: a run without entity references is
   a single [String.sub], and entity-bearing runs fall back to a buffer
   only between references. One [text] callback is emitted per run so
   whitespace stripping can judge the decoded run as a whole. *)

exception Error of string * int (* message, byte offset *)

type handler = {
  start_element : string -> (string * string) list -> unit;
  end_element : string -> unit;
  text : string -> unit;
  comment : string -> unit;
  pi : string -> string -> unit;
}

type state = {
  src : string;
  mutable pos : int;
  strip_ws : bool;
  h : handler;
}

let fail st msg = raise (Error (msg, st.pos))
let eof st = st.pos >= String.length st.src

let peek st = if eof st then '\000' else st.src.[st.pos]

let peek2 st =
  if st.pos + 1 >= String.length st.src then '\000' else st.src.[st.pos + 1]

let advance st = st.pos <- st.pos + 1

let expect st c =
  if peek st = c then advance st
  else fail st (Printf.sprintf "expected %C, found %C" c (peek st))

let expect_str st s =
  let n = String.length s in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = s then
    st.pos <- st.pos + n
  else fail st (Printf.sprintf "expected %S" s)

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_ws st =
  while (not (eof st)) && is_ws (peek st) do
    advance st
  done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
  || Char.code c >= 128

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  let start = st.pos in
  if not (is_name_start (peek st)) then fail st "expected name";
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let parse_reference st buf =
  (* at '&' *)
  advance st;
  let start = st.pos in
  while (not (eof st)) && peek st <> ';' do
    advance st
  done;
  if eof st then fail st "unterminated entity reference";
  let ent = String.sub st.src start (st.pos - start) in
  advance st;
  match ent with
  | "lt" -> Buffer.add_char buf '<'
  | "gt" -> Buffer.add_char buf '>'
  | "amp" -> Buffer.add_char buf '&'
  | "apos" -> Buffer.add_char buf '\''
  | "quot" -> Buffer.add_char buf '"'
  | _ ->
    if String.length ent > 1 && ent.[0] = '#' then begin
      let code =
        try
          if ent.[1] = 'x' || ent.[1] = 'X' then
            int_of_string ("0x" ^ String.sub ent 2 (String.length ent - 2))
          else int_of_string (String.sub ent 1 (String.length ent - 1))
        with Failure _ -> fail st ("bad character reference &" ^ ent ^ ";")
      in
      if code < 0 || code > 0x10FFFF then
        fail st ("bad character reference &" ^ ent ^ ";");
      (* encode as UTF-8 *)
      if code < 0x80 then Buffer.add_char buf (Char.chr code)
      else if code < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
      else if code < 0x10000 then begin
        Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
    end
    else fail st ("unknown entity &" ^ ent ^ ";")

(* Scan forward over plain attribute-value characters; stop at the
   quote, '&', '<' or end of input. *)
let scan_attr_plain st quote =
  let src = st.src in
  let n = String.length src in
  let i = ref st.pos in
  while
    !i < n
    &&
    let c = src.[!i] in
    c <> quote && c <> '&' && c <> '<'
  do
    incr i
  done;
  !i

let parse_attr_value st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then fail st "expected attribute value";
  advance st;
  let start = st.pos in
  let stop = scan_attr_plain st quote in
  if stop >= String.length st.src then begin
    st.pos <- stop;
    fail st "unterminated attribute value"
  end
  else if st.src.[stop] = quote then begin
    (* the common case: no references — a single substring *)
    let v = String.sub st.src start (stop - start) in
    st.pos <- stop + 1;
    v
  end
  else begin
    st.pos <- stop;
    if st.src.[stop] = '<' then fail st "raw '<' in attribute value";
    let buf = Buffer.create 16 in
    Buffer.add_substring buf st.src start (stop - start);
    let rec loop () =
      if eof st then fail st "unterminated attribute value"
      else if peek st = quote then advance st
      else if peek st = '<' then fail st "raw '<' in attribute value"
      else begin
        parse_reference st buf;
        let s2 = st.pos in
        let stop2 = scan_attr_plain st quote in
        Buffer.add_substring buf st.src s2 (stop2 - s2);
        st.pos <- stop2;
        loop ()
      end
    in
    loop ();
    Buffer.contents buf
  end

let parse_attrs st =
  let rec loop acc =
    skip_ws st;
    if peek st = '>' || peek st = '/' || peek st = '?' then List.rev acc
    else begin
      let name = parse_name st in
      skip_ws st;
      expect st '=';
      skip_ws st;
      let v = parse_attr_value st in
      loop ((name, v) :: acc)
    end
  in
  loop []

let skip_until st stop =
  let n = String.length stop in
  let rec loop () =
    if st.pos + n > String.length st.src then fail st ("expected " ^ stop)
    else if String.sub st.src st.pos n = stop then st.pos <- st.pos + n
    else begin
      advance st;
      loop ()
    end
  in
  loop ()

let read_until st stop =
  let start = st.pos in
  skip_until st stop;
  String.sub st.src start (st.pos - start - String.length stop)

let skip_doctype st =
  (* at "<!DOCTYPE"; skip balancing '<'/'>' to handle internal subsets *)
  let depth = ref 0 in
  let continue = ref true in
  while !continue do
    if eof st then fail st "unterminated DOCTYPE"
    else begin
      (match peek st with
      | '<' -> incr depth
      | '>' -> if !depth = 0 then continue := false else decr depth
      | '[' -> incr depth
      | ']' -> decr depth
      | _ -> ());
      advance st
    end
  done

let all_ws s =
  let ok = ref true in
  String.iter (fun c -> if not (is_ws c) then ok := false) s;
  !ok

(* Scan forward over plain character data; stop at '<', '&' or eof. *)
let scan_text_plain st =
  let src = st.src in
  let n = String.length src in
  let i = ref st.pos in
  while
    !i < n
    &&
    let c = src.[!i] in
    c <> '<' && c <> '&'
  do
    incr i
  done;
  !i

let emit_text st s = if not (st.strip_ws && all_ws s) then st.h.text s

let parse_text st =
  let start = st.pos in
  let stop = scan_text_plain st in
  if stop >= String.length st.src || st.src.[stop] = '<' then begin
    st.pos <- stop;
    emit_text st (String.sub st.src start (stop - start))
  end
  else begin
    (* run with entity references: buffer between the references *)
    let buf = Buffer.create 32 in
    Buffer.add_substring buf st.src start (stop - start);
    st.pos <- stop;
    let rec loop () =
      if (not (eof st)) && peek st = '&' then begin
        parse_reference st buf;
        let s2 = st.pos in
        let stop2 = scan_text_plain st in
        Buffer.add_substring buf st.src s2 (stop2 - s2);
        st.pos <- stop2;
        loop ()
      end
    in
    loop ();
    emit_text st (Buffer.contents buf)
  end

let rec parse_content st =
  if eof st then ()
  else if peek st = '<' then begin
    match peek2 st with
    | '/' -> () (* end tag: caller handles *)
    | '!' ->
      if
        st.pos + 3 < String.length st.src
        && String.sub st.src st.pos 4 = "<!--"
      then begin
        st.pos <- st.pos + 4;
        let c = read_until st "-->" in
        st.h.comment c;
        parse_content st
      end
      else if
        st.pos + 8 < String.length st.src
        && String.sub st.src st.pos 9 = "<![CDATA["
      then begin
        st.pos <- st.pos + 9;
        let c = read_until st "]]>" in
        st.h.text c;
        parse_content st
      end
      else fail st "unexpected markup declaration in content"
    | '?' ->
      st.pos <- st.pos + 2;
      let target = parse_name st in
      skip_ws st;
      let data = read_until st "?>" in
      st.h.pi target data;
      parse_content st
    | _ ->
      parse_element st;
      parse_content st
  end
  else begin
    parse_text st;
    parse_content st
  end

and parse_element st =
  expect st '<';
  let name = parse_name st in
  let attrs = parse_attrs st in
  st.h.start_element name attrs;
  if peek st = '/' then begin
    advance st;
    expect st '>';
    st.h.end_element name
  end
  else begin
    expect st '>';
    parse_content st;
    expect_str st "</";
    let close = parse_name st in
    if close <> name then
      fail st (Printf.sprintf "mismatched end tag </%s> for <%s>" close name);
    skip_ws st;
    expect st '>';
    st.h.end_element name
  end

let parse_prolog st =
  let rec loop () =
    skip_ws st;
    if (not (eof st)) && peek st = '<' then
      match peek2 st with
      | '?' ->
        st.pos <- st.pos + 2;
        let _target = parse_name st in
        skip_until st "?>";
        loop ()
      | '!' ->
        if
          st.pos + 3 < String.length st.src
          && String.sub st.src st.pos 4 = "<!--"
        then begin
          st.pos <- st.pos + 4;
          skip_until st "-->";
          loop ()
        end
        else begin
          expect_str st "<!";
          let _ = parse_name st in
          skip_doctype st;
          loop ()
        end
      | _ -> ()
  in
  loop ()

let parse ?(strip_ws = true) h src =
  let st = { src; pos = 0; strip_ws; h } in
  parse_prolog st;
  if eof st then fail st "no root element";
  (* allow a forest at top level (used when shredding message fragments) *)
  parse_content st;
  skip_ws st;
  if not (eof st) then fail st "trailing content after document"
