(** XML serialization (compact, measured by the bandwidth experiments). *)

val node : Node.t -> string
val nodes : Node.t list -> string
val doc : Doc.t -> string
val doc_bytes : Doc.t -> int
val node_to_buf : Buffer.t -> Node.t -> unit
