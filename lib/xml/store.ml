(* The document store: assigns global document ids (which define cross-
   document order) and resolves URIs. Every peer, and the query client,
   owns exactly one store; shipping a node to another peer necessarily
   means re-creating it in the remote store with a fresh identity. *)

type t = {
  mutable docs : Doc.t list; (* newest first *)
  by_uri : (string, Doc.t) Hashtbl.t;
  by_did : (int, Doc.t) Hashtbl.t;
}

(* Document ids are allocated from a global counter so that they are unique
   across stores: cross-store node sequences (as arise when a query mixes
   local and peer documents) then still have a well-defined, consistent
   document order. *)
let global_next = ref 0

let create () =
  { docs = []; by_uri = Hashtbl.create 16; by_did = Hashtbl.create 16 }

let register ~index_uri t doc =
  t.docs <- doc :: t.docs;
  Hashtbl.replace t.by_did doc.Doc.did doc;
  (match Doc.uri doc with
  | Some u when index_uri -> Hashtbl.replace t.by_uri u doc
  | Some _ | None -> ());
  doc

(* [index_uri:false] keeps the document's uri (fn:base-uri still works) but
   does not make it resolvable through fn:doc — shredded message copies
   must never shadow a peer's original documents. *)
let add ?(index_uri = true) t doc =
  if doc.Doc.did >= 0 then invalid_arg "Store.add: document already registered";
  doc.Doc.did <- !global_next;
  incr global_next;
  register ~index_uri t doc

(* Register with an explicit document id. Used by the XRPC shredder, which
   derives ids from origin keys so that document order among shredded
   fragments mirrors their order at the sending peer (the by-fragment
   ordering guarantee). Bumps the id past collisions. *)
let add_with_did t doc did =
  if doc.Doc.did >= 0 then
    invalid_arg "Store.add_with_did: document already registered";
  let rec free i = if Hashtbl.mem t.by_did i then free (i + 1) else i in
  let did = free did in
  doc.Doc.did <- did;
  register ~index_uri:false t doc

let find_did t did = Hashtbl.find_opt t.by_did did

(* Replace a registered document with a rebuilt version (XQUF apply): the
   new document takes over the old one's id and uri bindings. Handles held
   on the old version keep working against its unchanged arrays. *)
let replace_doc t old_doc new_doc =
  if new_doc.Doc.did >= 0 then
    invalid_arg "Store.replace_doc: replacement already registered";
  new_doc.Doc.did <- old_doc.Doc.did;
  t.docs <- new_doc :: List.filter (fun d -> d != old_doc) t.docs;
  Hashtbl.replace t.by_did new_doc.Doc.did new_doc;
  (match Doc.uri new_doc with
  | Some u -> (
    match Hashtbl.find_opt t.by_uri u with
    | Some bound when bound == old_doc -> Hashtbl.replace t.by_uri u new_doc
    | Some _ | None -> ())
  | None -> ());
  new_doc

(* Atomic multi-document replace (staged-PUL commit): validate every pair
   before mutating anything, so a bad pair leaves the store untouched and
   a distributed commit never half-applies locally. *)
let swap_all t pairs =
  List.iter
    (fun (old_doc, new_doc) ->
      if new_doc.Doc.did >= 0 then
        invalid_arg "Store.swap_all: replacement already registered";
      if not (Hashtbl.mem t.by_did old_doc.Doc.did) then
        invalid_arg "Store.swap_all: old document not in this store")
    pairs;
  List.iter (fun (old_doc, new_doc) -> ignore (replace_doc t old_doc new_doc)) pairs

(* Rollback of a replace: put a previously-registered document back under
   its own id (and uri binding, if it had one). *)
let reinstate t doc =
  if doc.Doc.did < 0 then invalid_arg "Store.reinstate: never registered";
  t.docs <- doc :: List.filter (fun d -> d.Doc.did <> doc.Doc.did) t.docs;
  Hashtbl.replace t.by_did doc.Doc.did doc;
  match Doc.uri doc with
  | Some u -> (
    match Hashtbl.find_opt t.by_uri u with
    | Some bound when bound.Doc.did = doc.Doc.did -> Hashtbl.replace t.by_uri u doc
    | Some _ | None -> ())
  | None -> ()

let find_uri t u = Hashtbl.find_opt t.by_uri u
let documents t = List.rev t.docs
let count t = List.length t.docs

let total_bytes_estimate t =
  (* rough retained-size proxy: node counts *)
  List.fold_left (fun acc d -> acc + Doc.total_nodes d) 0 t.docs

let of_tree t ?uri tree = add t (Doc.of_tree ?uri tree)
let of_forest t ?uri trees = add t (Doc.of_forest ?uri trees)
