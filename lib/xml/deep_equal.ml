(* fn:deep-equal on nodes: structural equality ignoring node identity,
   comments and processing instructions (per the XQuery F&O definition).
   This is the query-equivalence notion of the paper: Q ≡ Q' iff
   deep-equal(Q(D), Q'(D)) for all D. *)

let rec node_equal a b =
  match (Node.kind a, Node.kind b) with
  | Node.Document, Node.Document -> children_equal a b
  | Node.Element, Node.Element ->
    Node.name a = Node.name b && attrs_equal a b && children_equal a b
  | Node.Attribute, Node.Attribute ->
    Node.name a = Node.name b && Node.string_value a = Node.string_value b
  | Node.Text, Node.Text -> Node.string_value a = Node.string_value b
  | Node.Comment, Node.Comment -> Node.string_value a = Node.string_value b
  | Node.Pi, Node.Pi ->
    Node.name a = Node.name b && Node.string_value a = Node.string_value b
  | _ -> false

and attrs_equal a b =
  let attrs n =
    List.sort compare
      (List.map (fun x -> (Node.name x, Node.string_value x)) (Node.attributes n))
  in
  attrs a = attrs b

and children_equal a b =
  (* comments and PIs are invisible to deep-equal *)
  let visible n =
    List.filter
      (fun c ->
        match Node.kind c with
        | Node.Comment | Node.Pi -> false
        | _ -> true)
      (Node.children n)
  in
  let ca = visible a and cb = visible b in
  List.length ca = List.length cb && List.for_all2 node_equal ca cb

let equal = node_equal
