(* XML serialization: documents, subtrees and node sequences back to text.
   Serialized sizes are what the bandwidth experiments (Fig. 7) measure, so
   the output is compact: no added indentation, minimal escaping. *)

let escape_text buf s =
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | c -> Buffer.add_char buf c)
    s

let escape_attr buf s =
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s

let add_attrs buf n =
  List.iter
    (fun a ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf (Node.name a);
      Buffer.add_string buf "=\"";
      escape_attr buf (Node.string_value a);
      Buffer.add_char buf '"')
    (Node.attributes n)

let rec add_node buf n =
  match Node.kind n with
  | Node.Document -> List.iter (add_node buf) (Node.children n)
  | Node.Element ->
    Buffer.add_char buf '<';
    Buffer.add_string buf (Node.name n);
    add_attrs buf n;
    let kids = Node.children n in
    if kids = [] then Buffer.add_string buf "/>"
    else begin
      Buffer.add_char buf '>';
      List.iter (add_node buf) kids;
      Buffer.add_string buf "</";
      Buffer.add_string buf (Node.name n);
      Buffer.add_char buf '>'
    end
  | Node.Text -> escape_text buf (Node.string_value n)
  | Node.Comment ->
    Buffer.add_string buf "<!--";
    Buffer.add_string buf (Node.string_value n);
    Buffer.add_string buf "-->"
  | Node.Pi ->
    Buffer.add_string buf "<?";
    Buffer.add_string buf (Node.name n);
    Buffer.add_char buf ' ';
    Buffer.add_string buf (Node.string_value n);
    Buffer.add_string buf "?>"
  | Node.Attribute ->
    (* a bare attribute serializes as its value (XQuery serialization would
       raise; value form is more useful in messages) *)
    escape_text buf (Node.string_value n)

let node_to_buf = add_node

let node n =
  let buf = Buffer.create 256 in
  add_node buf n;
  Buffer.contents buf

let doc d =
  let buf = Buffer.create 1024 in
  add_node buf (Node.doc_node d);
  Buffer.contents buf

let nodes ns =
  let buf = Buffer.create 256 in
  List.iter (add_node buf) ns;
  Buffer.contents buf

let doc_bytes d = String.length (doc d)
