(* Node-sequence operations: document-order sorting, duplicate elimination
   (by node identity), and the three node-set operators. These are the
   operations whose semantics silently change when nodes are copied into
   messages — the crux of the paper. *)

let sort ns = List.stable_sort Node.compare_order ns

let sort_dedup ns =
  let sorted = sort ns in
  let rec dedup = function
    | a :: (b :: _ as rest) ->
      if Node.same a b then dedup rest else a :: dedup rest
    | rest -> rest
  in
  dedup sorted

let union a b = sort_dedup (a @ b)

let intersect a b =
  let b = sort_dedup b in
  let mem n = List.exists (Node.same n) b in
  List.filter mem (sort_dedup a)

let except a b =
  let b = sort_dedup b in
  let mem n = List.exists (Node.same n) b in
  List.filter (fun n -> not (mem n)) (sort_dedup a)

let contains_node ns n = List.exists (Node.same n) ns

(* Maximal nodes of a set: drop any node contained in another node of the
   set. Used by pass-by-fragment to avoid serializing a shipped node that is
   a descendant of another shipped node. *)
let maximal ns =
  let ns = sort_dedup ns in
  let rec keep = function
    | [] -> []
    | n :: rest ->
      (* sorted by document order: a containing ancestor appears before its
         descendants, so filter the tail against n *)
      let rest = List.filter (fun m -> not (Node.contains n m)) rest in
      n :: keep rest
  in
  keep ns

(* Lowest common ancestor of a non-empty set of nodes of one document. *)
let lowest_common_ancestor ns =
  match sort_dedup ns with
  | [] -> invalid_arg "lowest_common_ancestor: empty"
  | first :: rest ->
    let rec meet anc n =
      if Node.contains anc n then anc
      else
        match Node.parent anc with
        | Some p -> meet p n
        | None -> invalid_arg "lowest_common_ancestor: multiple documents"
    in
    List.fold_left meet first rest
