(** Document store.

    Assigns global document ids (defining cross-document order) and resolves
    URIs to loaded documents. Each peer owns one store. *)

type t

val create : unit -> t

val add : ?index_uri:bool -> t -> Doc.t -> Doc.t
(** Register a freshly built document, assigning its id. Returns the same
    document for convenience. With [index_uri:false] the document keeps its
    uri (for fn:base-uri) but is not resolvable through the store — used
    for shredded message copies, which must never shadow original
    documents. @raise Invalid_argument if already registered. *)

val add_with_did : t -> Doc.t -> int -> Doc.t
(** Register with an explicit document id (bumped past collisions). The
    XRPC shredder derives ids from origin keys so that document order among
    shredded fragments mirrors the sending peer's order. *)

val find_uri : t -> string -> Doc.t option
val find_did : t -> int -> Doc.t option

val replace_doc : t -> Doc.t -> Doc.t -> Doc.t
(** [replace_doc t old new] — the rebuilt document takes over the old
    one's id and uri bindings (XQUF application). Handles on the old
    version keep reading its unchanged arrays. *)

val swap_all : t -> (Doc.t * Doc.t) list -> unit
(** Replace several documents at once (staged-PUL commit): every pair is
    validated before any mutation, so a failure leaves the store
    untouched. @raise Invalid_argument without having mutated anything. *)

val reinstate : t -> Doc.t -> unit
(** Rollback of a {!replace_doc}: re-bind a previously-registered document
    under its own id and uri. *)

val documents : t -> Doc.t list
val count : t -> int

val total_bytes_estimate : t -> int
(** Total node count across all documents (a cheap retained-size proxy). *)

val of_tree : t -> ?uri:string -> Doc.tree -> Doc.t
val of_forest : t -> ?uri:string -> Doc.tree list -> Doc.t
