(* A small, dependency-free XML parser sufficient for the XRPC message
   formats and the benchmark documents: elements, attributes, character
   data, CDATA, comments, processing instructions, the five predefined
   entities and numeric character references. DOCTYPE declarations are
   skipped. Namespace prefixes are kept as part of the name. *)

exception Error of string * int (* message, byte offset *)

type state = {
  src : string;
  mutable pos : int;
  strip_ws : bool;
  b : Doc.Builder.b;
}

let fail st msg = raise (Error (msg, st.pos))
let eof st = st.pos >= String.length st.src

let peek st = if eof st then '\000' else st.src.[st.pos]

let peek2 st =
  if st.pos + 1 >= String.length st.src then '\000' else st.src.[st.pos + 1]

let advance st = st.pos <- st.pos + 1

let expect st c =
  if peek st = c then advance st
  else fail st (Printf.sprintf "expected %C, found %C" c (peek st))

let expect_str st s =
  let n = String.length s in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = s then
    st.pos <- st.pos + n
  else fail st (Printf.sprintf "expected %S" s)

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_ws st =
  while (not (eof st)) && is_ws (peek st) do
    advance st
  done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
  || Char.code c >= 128

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  let start = st.pos in
  if not (is_name_start (peek st)) then fail st "expected name";
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let parse_reference st buf =
  (* at '&' *)
  advance st;
  let start = st.pos in
  while (not (eof st)) && peek st <> ';' do
    advance st
  done;
  if eof st then fail st "unterminated entity reference";
  let ent = String.sub st.src start (st.pos - start) in
  advance st;
  match ent with
  | "lt" -> Buffer.add_char buf '<'
  | "gt" -> Buffer.add_char buf '>'
  | "amp" -> Buffer.add_char buf '&'
  | "apos" -> Buffer.add_char buf '\''
  | "quot" -> Buffer.add_char buf '"'
  | _ ->
    if String.length ent > 1 && ent.[0] = '#' then begin
      let code =
        try
          if ent.[1] = 'x' || ent.[1] = 'X' then
            int_of_string ("0x" ^ String.sub ent 2 (String.length ent - 2))
          else int_of_string (String.sub ent 1 (String.length ent - 1))
        with _ -> fail st ("bad character reference &" ^ ent ^ ";")
      in
      (* encode as UTF-8 *)
      if code < 0x80 then Buffer.add_char buf (Char.chr code)
      else if code < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
      else if code < 0x10000 then begin
        Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
      end
    end
    else fail st ("unknown entity &" ^ ent ^ ";")

let parse_attr_value st =
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then fail st "expected attribute value";
  advance st;
  let buf = Buffer.create 16 in
  let rec loop () =
    if eof st then fail st "unterminated attribute value"
    else if peek st = quote then advance st
    else if peek st = '&' then begin
      parse_reference st buf;
      loop ()
    end
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      loop ()
    end
  in
  loop ();
  Buffer.contents buf

let parse_attrs st =
  let rec loop acc =
    skip_ws st;
    if peek st = '>' || peek st = '/' || peek st = '?' then List.rev acc
    else begin
      let name = parse_name st in
      skip_ws st;
      expect st '=';
      skip_ws st;
      let v = parse_attr_value st in
      loop ((name, v) :: acc)
    end
  in
  loop []

let skip_until st stop =
  let n = String.length stop in
  let rec loop () =
    if st.pos + n > String.length st.src then fail st ("expected " ^ stop)
    else if String.sub st.src st.pos n = stop then st.pos <- st.pos + n
    else begin
      advance st;
      loop ()
    end
  in
  loop ()

let read_until st stop =
  let start = st.pos in
  skip_until st stop;
  String.sub st.src start (st.pos - start - String.length stop)

let skip_doctype st =
  (* at "<!DOCTYPE"; skip balancing '<'/'>' to handle internal subsets *)
  let depth = ref 0 in
  let continue = ref true in
  while !continue do
    if eof st then fail st "unterminated DOCTYPE"
    else begin
      (match peek st with
      | '<' -> incr depth
      | '>' -> if !depth = 0 then continue := false else decr depth
      | '[' -> incr depth
      | ']' -> decr depth
      | _ -> ());
      advance st
    end
  done

let all_ws s =
  let ok = ref true in
  String.iter (fun c -> if not (is_ws c) then ok := false) s;
  !ok

let rec parse_content st =
  if eof st then ()
  else if peek st = '<' then begin
    match peek2 st with
    | '/' -> () (* end tag: caller handles *)
    | '!' ->
      if
        st.pos + 3 < String.length st.src
        && String.sub st.src st.pos 4 = "<!--"
      then begin
        st.pos <- st.pos + 4;
        let c = read_until st "-->" in
        Doc.Builder.comment st.b c;
        parse_content st
      end
      else if
        st.pos + 8 < String.length st.src
        && String.sub st.src st.pos 9 = "<![CDATA["
      then begin
        st.pos <- st.pos + 9;
        let c = read_until st "]]>" in
        Doc.Builder.text st.b c;
        parse_content st
      end
      else fail st "unexpected markup declaration in content"
    | '?' ->
      st.pos <- st.pos + 2;
      let target = parse_name st in
      skip_ws st;
      let data = read_until st "?>" in
      Doc.Builder.pi st.b target data;
      parse_content st
    | _ ->
      parse_element st;
      parse_content st
  end
  else begin
    let buf = Buffer.create 32 in
    let rec text_loop () =
      if eof st || peek st = '<' then ()
      else if peek st = '&' then begin
        parse_reference st buf;
        text_loop ()
      end
      else begin
        Buffer.add_char buf (peek st);
        advance st;
        text_loop ()
      end
    in
    text_loop ();
    let s = Buffer.contents buf in
    if not (st.strip_ws && all_ws s) then Doc.Builder.text st.b s;
    parse_content st
  end

and parse_element st =
  expect st '<';
  let name = parse_name st in
  let attrs = parse_attrs st in
  Doc.Builder.start_element st.b name attrs;
  if peek st = '/' then begin
    advance st;
    expect st '>';
    Doc.Builder.end_element st.b
  end
  else begin
    expect st '>';
    parse_content st;
    expect_str st "</";
    let close = parse_name st in
    if close <> name then
      fail st (Printf.sprintf "mismatched end tag </%s> for <%s>" close name);
    skip_ws st;
    expect st '>';
    Doc.Builder.end_element st.b
  end

let parse_prolog st =
  let rec loop () =
    skip_ws st;
    if (not (eof st)) && peek st = '<' then
      match peek2 st with
      | '?' ->
        st.pos <- st.pos + 2;
        let _target = parse_name st in
        skip_until st "?>";
        loop ()
      | '!' ->
        if
          st.pos + 3 < String.length st.src
          && String.sub st.src st.pos 4 = "<!--"
        then begin
          st.pos <- st.pos + 4;
          skip_until st "-->";
          loop ()
        end
        else begin
          expect_str st "<!";
          let _ = parse_name st in
          skip_doctype st;
          loop ()
        end
      | _ -> ()
  in
  loop ()

let parse_doc ?(strip_ws = true) ?uri src =
  let st = { src; pos = 0; strip_ws; b = Doc.Builder.create ?uri () } in
  parse_prolog st;
  if eof st then fail st "no root element";
  (* allow a forest at top level (used when shredding message fragments) *)
  parse_content st;
  skip_ws st;
  if not (eof st) then fail st "trailing content after document";
  Doc.Builder.finish st.b

let parse ?strip_ws ~store ?uri src =
  Store.add store (parse_doc ?strip_ws ?uri src)
