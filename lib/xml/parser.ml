(* The tree-building XML parser: a thin shell over the {!Event} core
   that streams events into a {!Doc.Builder}. The grammar — elements,
   attributes, character data, CDATA, comments, processing
   instructions, entities, numeric character references — lives
   entirely in {!Event}, so this parser and the XRPC codec's event
   shred fast path agree byte-for-byte on what they accept. *)

exception Error = Event.Error

let parse_doc ?strip_ws ?uri src =
  let b = Doc.Builder.create ?uri () in
  Event.parse ?strip_ws
    {
      Event.start_element = (fun name attrs -> Doc.Builder.start_element b name attrs);
      end_element = (fun _ -> Doc.Builder.end_element b);
      text = (fun s -> Doc.Builder.text b s);
      comment = (fun s -> Doc.Builder.comment b s);
      pi = (fun target data -> Doc.Builder.pi b target data);
    }
    src;
  Doc.Builder.finish b

let parse ?strip_ws ~store ?uri src =
  Store.add store (parse_doc ?strip_ws ?uri src)
