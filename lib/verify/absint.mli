(** The provenance abstract interpreter of the distribution-safety
    verifier.

    Evaluates a decomposed plan's expression tree over the {!Prov}
    domain: remote bodies are interpreted at their target site with
    parameters bound to message-copy provenance, and every consumer that
    distinguishes a copy from the original — reverse/horizontal axes,
    node identity, order-sensitive steps, fn:root/id/idref, pending
    updates, opaque calls — is checked against the strategy's passing
    semantics. Sound relative to the decomposer: plans emitted by
    {!Xd_core.Decompose} verify without errors. *)

module Ast = Xd_lang.Ast
module Dg = Xd_dgraph.Dgraph

val run :
  strategy:Xd_xrpc.Strategy.t ->
  g:Dg.t ->
  funcs:Ast.func list ->
  ?self:string ->
  ?atomic:(int -> bool) ->
  ?catalog:Xd_topo.Catalog.t ->
  Ast.expr ->
  Diag.t list
(** [run ~strategy ~g ~funcs ?self e] interprets [e] — [g] must be
    [Dg.build e] so vertex ids, guards and witnesses line up — and
    returns the diagnostics in discovery order. [self] is the client
    peer's name; an [execute at] targeting it (or the empty string) is
    local evaluation, not a message. [atomic] (default: constant
    [false]) is a typing fact — the vertex provably produces only
    atomic values — under which execute-at parameters and results cross
    the wire as exact values with no copy provenance; callers must
    derive it independently (see [Xd_types.Infer]), never accept it from
    the decomposer.

    [catalog], when given and non-trivial, is the topology catalog the
    plan will execute against. It tightens two judgments: a computed
    [execute at] host whose body's documents all resolve to one
    catalogued owner verifies cleanly (the runtime routes there), one
    whose documents provably span several owners is a [host-consistency]
    error, and relative document names inside remote bodies check
    against the catalogued owner/replicas instead of erroring as
    locally-resolved names. *)
