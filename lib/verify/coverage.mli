(** Projection-path coverage check (by-projection plans).

    Re-derives the relative projection paths of every execute-at vertex
    with the same compile-time analysis the decomposer's fill pass uses,
    and reports stored path sets that fail to cover the derived ones — a
    projected message would then silently drop nodes its consumers
    navigate. Absent paths (the full-format runtime fallback) and
    analysis overflow are warnings, not errors. *)

val check : funcs:Xd_lang.Ast.func list -> Xd_lang.Ast.expr -> Diag.t list
