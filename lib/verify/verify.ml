(* The distribution-safety verifier: driver.

   Takes a *decomposed* plan — a query whose AST already contains
   Execute_at vertices, whether produced by Decompose or written by hand
   — together with the passing strategy it is meant to run under, and
   re-derives from scratch that executing it distributed gives the same
   answer as executing it locally:

     - the provenance interpretation (Absint) re-checks the paper's
       insertion conditions i-iv on every remote body and call result,
       plus variable closure, host consistency, update placement and
       opaque function calls;
     - the coverage pass (Coverage) re-derives the by-projection message
       paths and demands the stored ones cover them.

   The decomposer and the verifier share no conclusions: the former
   computes where Execute_at may be inserted, the latter interprets the
   inserted result. Agreement between two independent derivations is the
   point — a bug in either shows up as a mismatch on the differential
   test corpus. *)

module Ast = Xd_lang.Ast
module Dg = Xd_dgraph.Dgraph
module S = Xd_xrpc.Strategy

type report = { strategy : S.t; diags : Diag.t list }

let errors r = Diag.errors r.diags
let warnings r = List.filter (fun d -> not (Diag.is_error d)) r.diags
let ok r = errors r = []

let verify ?self strategy (q : Ast.query) : report =
  (* typing facts are re-derived here, from the plan as given — the
     verifier never accepts the decomposer's typing. A proven-atomic
     execute-at parameter or result crosses the wire as an exact value
     (nothing for a message copy to damage), which is precisely the
     widening the decomposer's insertion conditions claim; deriving the
     proof independently keeps the two analyses cross-checking each
     other on the differential corpus. *)
  let atomic = Xd_types.Infer.atomic_fact (Xd_types.Infer.infer_query q) in
  let run_body body =
    let g = Dg.build body in
    Absint.run ~strategy ~g ~funcs:q.Ast.funcs ?self ~atomic body
  in
  let main = run_body q.Ast.body in
  (* function bodies execute wherever the module ships: check each one
     with its parameters treated as local values *)
  let fns = List.concat_map (fun f -> run_body f.Ast.f_body) q.Ast.funcs in
  let cov =
    if strategy = S.By_projection then
      Coverage.check ~funcs:q.Ast.funcs q.Ast.body
    else []
  in
  { strategy; diags = Diag.dedup (main @ fns @ cov) }

let pp_report fmt r =
  let errs = List.length (errors r) and warns = List.length (warnings r) in
  if r.diags = [] then
    Fmt.pf fmt "%s plan verifies: no findings" (S.to_string r.strategy)
  else begin
    Fmt.pf fmt "%s plan: %d error%s, %d warning%s" (S.to_string r.strategy)
      errs
      (if errs = 1 then "" else "s")
      warns
      (if warns = 1 then "" else "s");
    List.iter (fun d -> Fmt.pf fmt "@.  %a" Diag.pp d) r.diags
  end

let report_to_string r = Fmt.str "%a" pp_report r
