(* The distribution-safety verifier: driver.

   Takes a *decomposed* plan — a query whose AST already contains
   Execute_at vertices, whether produced by Decompose or written by hand
   — together with the passing strategy it is meant to run under, and
   re-derives from scratch that executing it distributed gives the same
   answer as executing it locally:

     - the provenance interpretation (Absint) re-checks the paper's
       insertion conditions i-iv on every remote body and call result,
       plus variable closure, host consistency, update placement and
       opaque function calls;
     - the coverage pass (Coverage) re-derives the by-projection message
       paths and demands the stored ones cover them.

   The decomposer and the verifier share no conclusions: the former
   computes where Execute_at may be inserted, the latter interprets the
   inserted result. Agreement between two independent derivations is the
   point — a bug in either shows up as a mismatch on the differential
   test corpus. *)

module Ast = Xd_lang.Ast
module Dg = Xd_dgraph.Dgraph
module S = Xd_xrpc.Strategy

type report = { strategy : S.t; diags : Diag.t list }

let errors r = Diag.errors r.diags
let warnings r = List.filter (fun d -> not (Diag.is_error d)) r.diags
let ok r = errors r = []

(* Vet an overlap schedule against footprints re-derived *here* — the
   verifier never trusts the analysis that proposed the schedule. Every
   member must carry a derivable, pure (read-only) footprint, and no two
   members of a group may interfere (a write of one touching a read or
   write of the other). *)
let check_schedule ?self (q : Ast.query) (schedule : (int * int list) list) =
  match schedule with
  | [] -> []
  | groups ->
    let module E = Xd_effects.Effects in
    let res = E.analyze ?self q in
    let hosts = Hashtbl.create 16 in
    let rec idx (e : Ast.expr) =
      (match e.Ast.desc with
      | Ast.Execute_at { Ast.host = { Ast.desc = Ast.Literal (Ast.A_string h); _ }; _ }
        ->
        Hashtbl.replace hosts e.Ast.id h
      | _ -> ());
      List.iter idx (Ast.children e)
    in
    idx q.Ast.body;
    List.iter (fun f -> idx f.Ast.f_body) q.Ast.funcs;
    let diag m fmt =
      Diag.make ?host:(Hashtbl.find_opt hosts m) ~exec:m
        ~severity:Diag.Error Diag.Schedule_interference m fmt
    in
    List.concat_map
      (fun (anchor, members) ->
        let fps = List.map (fun m -> (m, E.footprint res m)) members in
        let unit_diags =
          List.filter_map
            (fun (m, fp) ->
              match fp with
              | None ->
                Some
                  (diag m
                     "overlap group at v%d schedules v%d, which has no \
                      derivable effect footprint"
                     anchor m)
              | Some fp when not (E.pure fp) ->
                Some
                  (diag m
                     "overlap group at v%d schedules v%d, which is not \
                      read-only: %s"
                     anchor m (E.to_string fp))
              | Some _ -> None)
            fps
        in
        let rec pair_diags = function
          | [] -> []
          | (m1, Some fp1) :: rest ->
            List.filter_map
              (fun (m2, fp2) ->
                match fp2 with
                | Some fp2 when E.interferes fp1 fp2 ->
                  Some
                    (diag m2
                       "overlap group at v%d schedules interfering calls v%d \
                        and v%d: %s vs %s"
                       anchor m1 m2 (E.to_string fp1) (E.to_string fp2))
                | _ -> None)
              rest
            @ pair_diags rest
          | (_, None) :: rest -> pair_diags rest
        in
        unit_diags @ pair_diags fps)
      groups

(* Vet compiled-codec wire-shape descriptors against a re-derivation by
   a second, independent run of the shape analysis — codegen never
   trusts a descriptor only one derivation produced. A descriptor for a
   call site the re-derivation does not know, or whose shapes disagree,
   rejects the plan. (The re-derivation finding *more* call sites is
   fine: those simply keep the generic codec.) *)
let check_shapes (q : Ast.query) (claimed : Xd_shape.Shape.descriptor list) =
  match claimed with
  | [] -> []
  | claimed ->
    let module Sh = Xd_shape.Shape in
    let own = Sh.analyze q in
    List.filter_map
      (fun (d : Sh.descriptor) ->
        let diag fmt =
          Diag.make ?host:d.Sh.host ~exec:d.Sh.exec ~severity:Diag.Error
            Diag.Wire_shape d.Sh.vertex fmt
        in
        match Hashtbl.find_opt own.Sh.by_vertex d.Sh.vertex with
        | None ->
          Some
            (diag
               "compiled codec claims a wire-shape descriptor for v%d, but \
                the re-derivation finds no such call site"
               d.Sh.vertex)
        | Some mine when not (Sh.descriptor_equal d mine) ->
          Some
            (diag
               "wire-shape descriptor for v%d disagrees with the \
                re-derivation: claimed params [%s] resp %s, derived params \
                [%s] resp %s"
               d.Sh.vertex
               (String.concat "; "
                  (List.map
                     (fun (v, s) -> "$" ^ v ^ " : " ^ Sh.param_shape_to_string s)
                     d.Sh.params))
               (Sh.resp_shape_to_string d.Sh.resp)
               (String.concat "; "
                  (List.map
                     (fun (v, s) -> "$" ^ v ^ " : " ^ Sh.param_shape_to_string s)
                     mine.Sh.params))
               (Sh.resp_shape_to_string mine.Sh.resp))
        | Some _ -> None)
      claimed

let verify ?self ?(schedule = []) ?(shapes = []) ?catalog strategy
    (q : Ast.query) : report =
  (* typing facts are re-derived here, from the plan as given — the
     verifier never accepts the decomposer's typing. A proven-atomic
     execute-at parameter or result crosses the wire as an exact value
     (nothing for a message copy to damage), which is precisely the
     widening the decomposer's insertion conditions claim; deriving the
     proof independently keeps the two analyses cross-checking each
     other on the differential corpus. *)
  let atomic = Xd_types.Infer.atomic_fact (Xd_types.Infer.infer_query q) in
  let run_body body =
    let g = Dg.build body in
    Absint.run ~strategy ~g ~funcs:q.Ast.funcs ?self ~atomic ?catalog body
  in
  let main = run_body q.Ast.body in
  (* function bodies execute wherever the module ships: check each one
     with its parameters treated as local values *)
  let fns = List.concat_map (fun f -> run_body f.Ast.f_body) q.Ast.funcs in
  let cov =
    if strategy = S.By_projection then
      Coverage.check ~funcs:q.Ast.funcs q.Ast.body
    else []
  in
  let sched = check_schedule ?self q schedule in
  let wire = check_shapes q shapes in
  { strategy; diags = Diag.dedup (main @ fns @ cov @ sched @ wire) }

let pp_report fmt r =
  let errs = List.length (errors r) and warns = List.length (warnings r) in
  if r.diags = [] then
    Fmt.pf fmt "%s plan verifies: no findings" (S.to_string r.strategy)
  else begin
    Fmt.pf fmt "%s plan: %d error%s, %d warning%s" (S.to_string r.strategy)
      errs
      (if errs = 1 then "" else "s")
      warns
      (if warns = 1 then "" else "s");
    List.iter (fun d -> Fmt.pf fmt "@.  %a" Diag.pp d) r.diags
  end

let report_to_string r = Fmt.str "%a" pp_report r
