(* The provenance abstract domain.

   Every subexpression of a decomposed plan is assigned an abstract value
   describing where the nodes it may evaluate to came from:

     Local          — nodes native to the evaluating peer (or atomics);
     Fetched h      — a full replica of a remote document obtained by data
                      shipping (fn:doc over an xrpc:// URI evaluated away
                      from the owner). Identity/order/ancestors are intact
                      within the replica, but it is still a copy: updates
                      through it are refused at runtime;
     Shipped_copy   — a deep copy that crossed an XRPC message under
                      pass-by-value or pass-by-fragment (a parameter seen
                      from inside the remote body, or a call result seen
                      from the caller);
     Projected      — a copy that crossed a pass-by-projection message:
                      ancestors up to the LCA travel along, so reverse and
                      horizontal axes, fn:root/id/idref stay meaningful.

   An abstract value is the *set* of sources that may flow into it (the
   lattice join is set union; Mixed is simply a set with more than one
   member, which is what the insertion conditions care about), plus a
   taint bit recording that the value passed through an order/duplicate
   destroying producer (ExprSeq, node-set operation, and — under
   pass-by-value — for/order-by and overlapping axis steps), the exact
   producer set of insertion condition iii. *)

module Sset = Set.Make (String)

type origin = { exec : int; (* the execute-at vertex *) host : string }

type t = {
  local : bool;
  fetched : Sset.t; (* hosts whose documents were data-shipped here *)
  shipped : origin list; (* by-value / by-fragment message copies *)
  projected : origin list; (* by-projection message copies *)
  tainted : bool;
  disordered : bool;
}

let local =
  {
    local = true;
    fetched = Sset.empty;
    shipped = [];
    projected = [];
    tainted = false;
    disordered = false;
  }
let bottom = { local with local = false }
let atoms = local
let fetched host = { bottom with fetched = Sset.singleton host }
let shipped origin = { bottom with shipped = [ origin ] }
let projected origin = { bottom with projected = [ origin ] }

let merge_origins a b =
  List.sort_uniq compare (a @ b)

let join a b =
  {
    local = a.local || b.local;
    fetched = Sset.union a.fetched b.fetched;
    shipped = merge_origins a.shipped b.shipped;
    projected = merge_origins a.projected b.projected;
    tainted = a.tainted || b.tainted;
    disordered = a.disordered || b.disordered;
  }

let join_all = List.fold_left join bottom

let taint t = { t with tainted = true }
let untainted t = { t with tainted = false }

(* Crossing an XRPC message: a sequence mixed at crossing time can never
   be put back into document order on the far side — the taint freezes
   into the [disordered] bit that condition iii's step check consults. A
   sequence mixed only *after* it crossed is recombined by local,
   deterministic computation that the reference execution performs
   identically, so plain [tainted] is harmless until the next crossing. *)
let crossed t = { t with disordered = t.tainted || t.disordered }

let copies t = merge_origins t.shipped t.projected

let has_copy t = copies t <> []
let has_shipped t = t.shipped <> []
let is_local t = not (has_copy t) && Sset.is_empty t.fetched

(* The four-point readout of the lattice used in messages: the set view
   collapses back to the Local | Shipped_copy | Projected | Mixed picture
   of the analysis write-up. *)
let classify t =
  match (has_shipped t, t.projected <> [], t.local || not (Sset.is_empty t.fetched)) with
  | false, false, _ -> `Local
  | true, false, false -> `Shipped_copy
  | false, true, false -> `Projected
  | _ -> `Mixed

let classify_name t =
  match classify t with
  | `Local -> "local"
  | `Shipped_copy -> "shipped-copy"
  | `Projected -> "projected"
  | `Mixed -> "mixed"

let to_string t =
  let parts =
    (if t.local then [ "local" ] else [])
    @ List.map (fun h -> "fetched(" ^ h ^ ")") (Sset.elements t.fetched)
    @ List.map
        (fun o -> Printf.sprintf "shipped(v%d@%s)" o.exec o.host)
        t.shipped
    @ List.map
        (fun o -> Printf.sprintf "projected(v%d@%s)" o.exec o.host)
        t.projected
  in
  let s = match parts with [] -> "none" | _ -> String.concat "|" parts in
  let s = if t.tainted then s ^ "!" else s in
  if t.disordered then s ^ "#" else s
