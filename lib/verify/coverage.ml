(* Projection-path coverage (by-projection plans only).

   A by-projection message ships exactly the nodes selected by the
   projection paths recorded on the execute-at vertex (plus their
   ancestors). If those recorded paths miss a path the consumers actually
   navigate, the projected copy silently lacks nodes — forward steps come
   back empty, which is wrong without any runtime error to notice.

   The check re-runs the same compile-time path analysis the decomposer's
   Projection_fill pass uses and demands that the *stored* paths cover
   the *derived* ones:

     - result paths: the whole-query analysis, suffixes rooted at the
       execute-at's result anchor;
     - parameter paths: the body analysis with each parameter bound to
       its own anchor.

   Absent paths are not an error: the runtime falls back to full-format
   (pass-by-fragment) shipping, which the interpreter models as a
   [shipped] copy — the fallback's loss of ancestors is reported there,
   as condition-i/-iv warnings. Analysis overflow likewise downgrades to
   a warning, matching the fill pass, which leaves such calls pathless. *)

module Ast = Xd_lang.Ast
module An = Xd_projection.Analysis

let path_strings = List.map Xd_projection.Path.to_string

let missing ~derived ~stored =
  List.filter (fun p -> not (List.mem p stored)) derived

let check ~funcs (body : Ast.expr) : Diag.t list =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let whole = An.run ~funcs ~env:[] body in
  let check_one (x : Ast.execute_at) id =
    let host =
      match x.Ast.host.Ast.desc with
      | Ast.Literal (Ast.A_string h) -> Some h
      | _ -> None
    in
    let mk ?witness severity fmt =
      match host with
      | Some h ->
        Diag.make ~exec:id ~host:h ?witness ~severity Diag.Projection_coverage
          id fmt
      | None ->
        Diag.make ~exec:id ?witness ~severity Diag.Projection_coverage id fmt
    in
    (* result paths *)
    if whole.An.overflow then
      add
        (mk Diag.Warning
           "path analysis overflowed on the whole query; the call's \
            result ships in full format")
    else begin
      let u, r = An.relative_paths whole (An.xrpc_anchor id) in
      let du, dr = (path_strings u, path_strings r) in
      let su, sr = x.Ast.result_paths in
      if (su, sr) <> ([], []) then begin
        let miss =
          missing ~derived:du ~stored:su @ missing ~derived:dr ~stored:sr
        in
        if miss <> [] then
          add
            (mk Diag.Error
               "result projection paths do not cover the caller's \
                navigation: missing %s — a projected reply would \
                silently drop nodes the caller selects"
               (String.concat ", " miss))
      end
    end;
    (* parameter paths *)
    let env =
      List.map
        (fun (v, _) -> (v, [ { An.root = An.R_anchor v; steps = [] } ]))
        x.Ast.params
    in
    let res = An.run ~funcs ~env x.Ast.body in
    if res.An.overflow then begin
      if x.Ast.params <> [] then
        add
          (mk Diag.Warning
             "path analysis overflowed on the remote body; parameters \
              ship in full format")
    end
    else
      List.iter
        (fun (v, _) ->
          match
            List.find_opt (fun (pv, _, _) -> pv = v) x.Ast.param_paths
          with
          | None -> () (* full-format fallback, modeled by the interpreter *)
          | Some (_, su, sr) ->
            let u, r = An.relative_paths res v in
            let miss =
              missing ~derived:(path_strings u) ~stored:su
              @ missing ~derived:(path_strings r) ~stored:sr
            in
            if miss <> [] then
              add
                (mk Diag.Error
                   "projection paths of parameter $%s do not cover the \
                    body's navigation: missing %s — the projected \
                    message would silently drop nodes the body selects" v
                   (String.concat ", " miss)))
        x.Ast.params
  in
  Ast.iter
    (fun e ->
      match e.Ast.desc with
      | Ast.Execute_at x -> check_one x e.Ast.id
      | _ -> ())
    body;
  List.rev !diags
