(** Structured diagnostics of the distribution-safety verifier.

    Each diagnostic names the rule it re-derives — the paper's insertion
    conditions i–iv, or one of the plan-level invariants (variable
    closure, host consistency, update placement, projection coverage) —
    the offending vertex, the execute-at call involved, and a witness
    path through the d-graph showing how a shipped value reaches the
    vertex that misuses it. *)

type rule =
  | Cond_i  (** reverse/horizontal axis step on shipped nodes *)
  | Cond_ii  (** node comparison / node-set operation on shipped nodes *)
  | Cond_iii  (** axis step over a mixed/unordered shipped sequence *)
  | Cond_iv  (** fn:root/fn:id/fn:idref on shipped nodes *)
  | Closure  (** remote body not variable-closed / ill-scoped parameters *)
  | Host_consistency
      (** body's URI dependencies disagree with its target host *)
  | Update_placement  (** pending-update target flows through a copy *)
  | Projection_coverage
      (** remote axis steps not covered by the message's projection paths *)
  | Unknown_function  (** opaque user function over shipped nodes *)
  | Schedule_interference
      (** an overlap-schedule member is not read-only, or two members'
          effect footprints may touch the same data *)
  | Wire_shape
      (** a compiled codec's wire-shape descriptor disagrees with the
          verifier's independent re-derivation of the same analysis *)

type severity = Error | Warning

type t = {
  rule : rule;
  severity : severity;
  vertex : int;  (** offending vertex id *)
  exec : int option;  (** the execute-at vertex involved, if any *)
  host : string option;  (** its target host, if known *)
  witness : int list;  (** d-graph vertex chain: offender ... origin *)
  message : string;
}

val rule_name : rule -> string
val severity_name : severity -> string

val make :
  ?exec:int ->
  ?host:string ->
  ?witness:int list ->
  severity:severity ->
  rule ->
  int ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

val is_error : t -> bool
val errors : t list -> t list
val pp : Format.formatter -> t -> unit

val dedup : t list -> t list
(** Collapse structurally identical findings (same rule, vertex, text). *)
