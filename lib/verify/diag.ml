(* Structured diagnostics of the distribution-safety verifier. Each
   diagnostic names the rule it re-derives (the paper's insertion
   conditions i-iv, plus the plan-level invariants: variable closure, host
   consistency, update placement, projection coverage), the offending
   vertex, the execute-at call involved, and a witness path through the
   d-graph showing how the shipped value reaches the vertex. *)

type rule =
  | Cond_i (* reverse/horizontal axis step on shipped nodes *)
  | Cond_ii (* node comparison / node-set operation on shipped nodes *)
  | Cond_iii (* axis step over a mixed/unordered shipped sequence *)
  | Cond_iv (* fn:root/fn:id/fn:idref on shipped nodes *)
  | Closure (* remote body not variable-closed / ill-scoped parameters *)
  | Host_consistency (* body's URI dependencies disagree with its target *)
  | Update_placement (* pending-update target flows through a copy *)
  | Projection_coverage (* remote axis steps not covered by message paths *)
  | Unknown_function (* opaque user function over shipped nodes *)
  | Schedule_interference
    (* an overlap-schedule member is not read-only, or two members'
       footprints may touch the same data *)
  | Wire_shape
    (* a compiled codec's wire-shape descriptor disagrees with the
       verifier's independent re-derivation *)

type severity = Error | Warning

type t = {
  rule : rule;
  severity : severity;
  vertex : int; (* offending vertex id *)
  exec : int option; (* the execute-at vertex involved, if any *)
  host : string option; (* its target host, if known *)
  witness : int list; (* d-graph vertex chain: offender ... origin *)
  message : string;
}

let rule_name = function
  | Cond_i -> "condition-i"
  | Cond_ii -> "condition-ii"
  | Cond_iii -> "condition-iii"
  | Cond_iv -> "condition-iv"
  | Closure -> "closure"
  | Host_consistency -> "host-consistency"
  | Update_placement -> "update-placement"
  | Projection_coverage -> "projection-coverage"
  | Unknown_function -> "unknown-function"
  | Schedule_interference -> "schedule-interference"
  | Wire_shape -> "wire-shape"

let severity_name = function Error -> "error" | Warning -> "warning"

let make ?exec ?host ?(witness = []) ~severity rule vertex fmt =
  Format.kasprintf
    (fun message -> { rule; severity; vertex; exec; host; witness; message })
    fmt

let is_error d = d.severity = Error

let errors ds = List.filter is_error ds

let pp fmt d =
  Fmt.pf fmt "%s[%s] v%d: %s" (severity_name d.severity) (rule_name d.rule)
    d.vertex d.message;
  (match (d.exec, d.host) with
  | Some x, Some h -> Fmt.pf fmt " (call v%d -> %s)" x h
  | Some x, None -> Fmt.pf fmt " (call v%d)" x
  | None, _ -> ());
  match d.witness with
  | [] | [ _ ] -> ()
  | w ->
    Fmt.pf fmt "; witness %s"
      (String.concat " ~> " (List.map (Printf.sprintf "v%d") w))

(* Two structurally identical findings (same rule, vertex and text) are one
   finding: the interpreter may reach a vertex once per enclosing check. *)
let dedup ds =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun d ->
      let key = (d.rule, d.vertex, d.message) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    ds
