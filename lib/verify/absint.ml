(* The provenance abstract interpreter.

   Where the decomposer derives insertion conditions i-iv on the
   *original* query to decide where Execute_at vertices may go, this pass
   takes a query that already contains Execute_at vertices (a decomposed
   plan, or a hand-written distributed query) and re-derives safety from
   scratch: every subexpression is evaluated to a {!Prov.t} abstract
   value, remote bodies are interpreted at their target site with their
   parameters bound to message-copy provenance, and each consumer that
   would observe the difference between a copy and the original — reverse
   and horizontal axes (i), node identity and node-set operations (ii),
   axis steps over order/duplicate-losing producers (iii), fn:root/id/
   idref (iv), pending updates, opaque function calls — is checked
   against the passing semantics of the session's strategy.

   The interpreter is sound relative to the decomposer: its value flow is
   a subset of the d-graph's ⤳ reachability and it applies the same
   hasMatchingDoc guard, so every plan the decomposer emits verifies
   cleanly (no false positives), while hand-seeded unsafe plans are
   rejected with a rule-named diagnostic and a d-graph witness. *)

module Ast = Xd_lang.Ast
module Dg = Xd_dgraph.Dgraph
module S = Xd_xrpc.Strategy
module Smap = Map.Make (String)

type ctx = {
  strategy : S.t;
  g : Dg.t;
  funcs : Ast.func list;
  self : string; (* the client peer's name; "" matches the session default *)
  catalog : Xd_topo.Catalog.t option;
      (* the topology catalog the plan will run against, when one is
         installed. It upgrades two judgments: a computed [execute at]
         host becomes checkable (the runtime resolves it against the
         same catalog), and relative document names inside remote bodies
         resolve to their catalogued owner instead of "whoever
         evaluates". *)
  atomic : int -> bool;
      (* independently re-derived typing fact: the vertex provably
         produces only atomic values. A message carrying only atoms is an
         exact copy — no identity, order or ancestry to lose — so such
         parameters and results cross the wire as plain [Prov.atoms]
         instead of shipped-copy provenance. The verifier must never
         trust the decomposer's typing: callers derive this from their
         own {!Xd_types.Infer} run over the plan. *)
  mutable diags : Diag.t list;
}

let add ctx d = ctx.diags <- d :: ctx.diags

(* Data shipping and by-value marshal messages under value semantics; the
   conditions the two passing classes impose differ (Sections IV-VI). *)
let value_passing = function
  | S.Data_shipping | S.By_value -> true
  | S.By_fragment | S.By_projection -> false

(* hasMatchingDoc guard on the consuming vertex (conditions ii and iii
   under the enhanced passing semantics; by-value forbids outright). *)
let guarded ctx id =
  value_passing ctx.strategy || Dg.has_matching_doc ctx.g id

let witness ctx from target =
  match Dg.witness ctx.g from target with Some p -> p | None -> []

let first_origin t = match Prov.copies t with [] -> None | o :: _ -> Some o

let axis_name = function
  | Ast.Child -> "child"
  | Ast.Descendant -> "descendant"
  | Ast.Descendant_or_self -> "descendant-or-self"
  | Ast.Self -> "self"
  | Ast.Attribute -> "attribute"
  | Ast.Parent -> "parent"
  | Ast.Ancestor -> "ancestor"
  | Ast.Ancestor_or_self -> "ancestor-or-self"
  | Ast.Following -> "following"
  | Ast.Following_sibling -> "following-sibling"
  | Ast.Preceding -> "preceding"
  | Ast.Preceding_sibling -> "preceding-sibling"

let site_name ctx site = if site = ctx.self then "the client" else site

(* ---- condition i: reverse/horizontal axes on shipped copies ---------- *)

let check_axis ctx (e : Ast.expr) ax tc =
  match Ast.classify_axis ax with
  | Ast.Fwd -> ()
  | Ast.Rev | Ast.Hor -> (
    (* Projected copies carry their ancestor envelope, so upward and
       sideways navigation stays meaningful (Section VI lifts i). A
       [shipped] origin under by-projection is the projection-overflow
       fallback: the response demotes to by-fragment semantics, which
       does not carry ancestors — condition i applies in full. *)
    match tc.Prov.shipped with
    | [] -> ()
    | o :: _ ->
      if ctx.strategy = S.By_projection then
        add ctx
          (Diag.make ~exec:o.Prov.exec ~host:o.Prov.host
             ~witness:(witness ctx e.Ast.id o.Prov.exec) ~severity:Diag.Error
             Diag.Cond_i e.Ast.id
             "%s axis over a copy that traveled without projection paths \
              (path-analysis overflow fallback, demoted to by-fragment \
              semantics): ancestors were not shipped"
             (axis_name ax))
      else
        add ctx
          (Diag.make ~exec:o.Prov.exec ~host:o.Prov.host
             ~witness:(witness ctx e.Ast.id o.Prov.exec) ~severity:Diag.Error
             Diag.Cond_i e.Ast.id
             "%s axis step on a copy shipped by the call at v%d: a %s \
              message does not carry the ancestors/siblings of the \
              original nodes" (axis_name ax) o.Prov.exec
             (S.to_string ctx.strategy)))

(* ---- condition iii: axis steps over mixed/unordered sequences -------- *)

let check_mixed_step ctx (e : Ast.expr) tc =
  if tc.Prov.disordered && Prov.has_copy tc && guarded ctx e.Ast.id then
    match first_origin tc with
    | None -> ()
    | Some o ->
      add ctx
        (Diag.make ~exec:o.Prov.exec ~host:o.Prov.host
           ~witness:(witness ctx e.Ast.id o.Prov.exec) ~severity:Diag.Error
           Diag.Cond_iii e.Ast.id
           "axis step over a potentially unordered/overlapping sequence \
            of shipped nodes: document order and duplicate elimination \
            are not restored across the message of the call at v%d"
           o.Prov.exec)

(* ---- condition ii: node identity / node-set ops on copies ------------ *)

let check_node_identity ctx (e : Ast.expr) what t =
  if Prov.has_copy t && guarded ctx e.Ast.id then
    match first_origin t with
    | None -> ()
    | Some o ->
      add ctx
        (Diag.make ~exec:o.Prov.exec ~host:o.Prov.host
           ~witness:(witness ctx e.Ast.id o.Prov.exec) ~severity:Diag.Error
           Diag.Cond_ii e.Ast.id
           "%s on nodes shipped by the call at v%d: a message copy has \
            fresh node identities" what o.Prov.exec)

(* ---- condition iv: fn:root / fn:id / fn:idref on copies -------------- *)

let check_escape ctx (e : Ast.expr) name t =
  match t.Prov.shipped with
  | [] -> ()
  | o :: _ ->
    let severity, tail =
      if ctx.strategy = S.By_projection then
        ( Diag.Warning,
          "the copy traveled without projection paths (overflow fallback)" )
      else (Diag.Error, "a copy is rooted in the message, not the original")
    in
    add ctx
      (Diag.make ~exec:o.Prov.exec ~host:o.Prov.host
         ~witness:(witness ctx e.Ast.id o.Prov.exec) ~severity Diag.Cond_iv
         e.Ast.id "fn:%s escapes the fragment shipped by the call at v%d: %s"
         name o.Prov.exec tail)

(* ---- update placement ------------------------------------------------ *)

let check_update ctx site (e : Ast.expr) t =
  (match first_origin t with
  | Some o ->
    add ctx
      (Diag.make ~exec:o.Prov.exec ~host:o.Prov.host
         ~witness:(witness ctx e.Ast.id o.Prov.exec) ~severity:Diag.Error
         Diag.Update_placement e.Ast.id
         "update target flows through the copy shipped by the call at v%d: \
          the pending update would be applied to the message copy, never \
          reaching the original at %s" o.Prov.exec o.Prov.host)
  | None -> ());
  Prov.Sset.iter
    (fun h ->
      if h = "*" then
        add ctx
          (Diag.make ~severity:Diag.Warning Diag.Update_placement e.Ast.id
             "update target may stem from a computed document URI; its \
              placement cannot be verified statically")
      else if ctx.strategy = S.Data_shipping then
        (* The data-shipping runtime refuses such updates dynamically
           (Session.apply_updates); keep that contract: warn, don't gate. *)
        add ctx
          (Diag.make ~host:h ~severity:Diag.Warning Diag.Update_placement
             e.Ast.id
             "update targets a replica of a document fetched from %s by \
              data shipping; the runtime will refuse to apply it" h)
      else
        add ctx
          (Diag.make ~host:h ~severity:Diag.Error Diag.Update_placement
             e.Ast.id
             "update executes at %s but targets a replica fetched from %s; \
              push the update to its owner with an execute-at"
             (site_name ctx site) h))
    t.Prov.fetched

(* ---- host consistency of a remote body ------------------------------- *)

(* Every document dependency of a body shipped to [h] must resolve to [h]
   itself: a different owner or a caller-local name silently changes which
   store the name resolves against once the body runs remotely. Bodies of
   nested remote calls are skipped — they are checked against their own
   target when the interpreter reaches them — but a nested call back to
   [h] executes locally there, so its body stays in this frame. *)
let rec check_host ctx h (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Execute_at x ->
    List.iter (check_host ctx h) (x.Ast.host :: List.map snd x.Ast.params);
    (match x.Ast.host.Ast.desc with
    | Ast.Literal (Ast.A_string h') when h' = h || h' = "" ->
      check_host ctx h x.Ast.body
    | _ -> ())
  | _ ->
    List.iter
      (fun d ->
        match d.Dg.uri with
        | Dg.Constr -> ()
        | Dg.Wildcard ->
          add ctx
            (Diag.make ~host:h ~severity:Diag.Error Diag.Host_consistency
               d.Dg.site
               "computed document URI inside a body shipped to %s cannot \
                be pinned to the target host" h)
        | Dg.Uri u -> (
          match Dg.split_xrpc_uri u with
          | Some (h', _) when h' = h -> ()
          | Some (h', _) ->
            add ctx
              (Diag.make ~host:h ~severity:Diag.Error Diag.Host_consistency
                 d.Dg.site
                 "body shipped to %s reads %s, owned by %s: the call does \
                  not execute where its data lives" h u h')
          | None -> (
            match ctx.catalog with
            | Some cat when Xd_topo.Catalog.resolve cat u <> None ->
              if not (Xd_topo.Catalog.serves cat ~peer:h ~doc:u) then
                add ctx
                  (Diag.make ~host:h ~severity:Diag.Error
                     Diag.Host_consistency d.Dg.site
                     "body shipped to %s reads document %s, which the \
                      catalog assigns to %s: %s can never own that data"
                     h u
                     (match Xd_topo.Catalog.owner_of cat u with
                     | Some o -> o
                     | None -> "another peer")
                     h)
            | _ ->
              add ctx
                (Diag.make ~host:h ~severity:Diag.Error Diag.Host_consistency
                   d.Dg.site
                   "body shipped to %s reads document %s, a name that \
                    resolves against the local store of whichever peer \
                    evaluates it" h u))))
      (Dg.direct_uri_deps_of_vertex e);
    List.iter (check_host ctx h) (Ast.children e)

(* ---- computed-host judgment against the catalog ---------------------- *)

(* Direct document dependencies of a remote body, nested remote bodies
   excluded (they route against their own target). *)
let body_doc_deps (body : Ast.expr) =
  let deps = ref [] in
  let rec go (e : Ast.expr) =
    match e.Ast.desc with
    | Ast.Execute_at x ->
      go x.Ast.host;
      List.iter (fun (_, a) -> go a) x.Ast.params
    | _ ->
      deps := Dg.direct_uri_deps_of_vertex e @ !deps;
      List.iter go (Ast.children e)
  in
  go body;
  !deps

(* What the runtime's call-time resolution will conclude for a computed
   host: [`Owner o] — every document the body touches is catalogued and
   owned by the single peer [o] (the session routes there, so the plan
   is judged as if [o] were written literally); [`Clean] — the body
   touches no routable data at all, any host gives the same answer;
   [`Split owners] — provably no single peer owns everything the body
   reads; [`Unknown] — at least one dependency escapes the catalog
   (computed URI or uncatalogued name), so the static judgment stays the
   old warning. *)
let judge_computed_host cat (x : Ast.execute_at) =
  let unknown = ref false in
  let owners =
    List.filter_map
      (fun d ->
        match d.Dg.uri with
        | Dg.Constr -> None
        | Dg.Wildcard ->
          unknown := true;
          None
        | Dg.Uri u -> (
          let name =
            match Dg.split_xrpc_uri u with Some (_, n) -> n | None -> u
          in
          match Xd_topo.Catalog.owner_of cat name with
          | Some o -> Some o
          | None -> (
            match Dg.split_xrpc_uri u with
            | Some (h, _) -> Some h (* uncatalogued but host-pinned *)
            | None ->
              unknown := true;
              None)))
      (body_doc_deps x.Ast.body)
    |> List.sort_uniq compare
  in
  match owners with
  | _ :: _ :: _ -> `Split owners
  | _ when !unknown -> `Unknown
  | [ o ] -> `Owner o
  | [] -> `Clean

(* ---- the interpreter ------------------------------------------------- *)

let seq_passthrough =
  [ "item-at"; "subsequence"; "zero-or-one"; "exactly-one"; "one-or-more" ]

(* Sequence-reordering/splicing builtins are condition-iii mixers: their
   output is not a document-order subsequence of their input, so a
   downstream step's sort+dedup observably changes it. Provenance flows
   through, tainted — mirroring the decomposer's [bad_mixer]. *)
let seq_reorder = [ "reverse"; "insert-before"; "remove" ]

let rec eval ctx env site (e : Ast.expr) : Prov.t =
  match e.Ast.desc with
  | Ast.Literal _ -> Prov.atoms
  | Ast.Var_ref v -> (
    match Smap.find_opt v env with Some p -> p | None -> Prov.local)
  | Ast.Seq es ->
    let p = Prov.join_all (List.map (eval ctx env site) es) in
    if List.length es >= 2 then Prov.taint p else p
  | Ast.For (v, src, body) ->
    let ps = eval ctx env site src in
    let pb = eval ctx (Smap.add v ps env) site body in
    if value_passing ctx.strategy then Prov.taint pb else pb
  | Ast.Order_by (v, src, specs, body) ->
    let ps = eval ctx env site src in
    let env' = Smap.add v ps env in
    List.iter (fun (s, _) -> ignore (eval ctx env' site s)) specs;
    let pb = eval ctx env' site body in
    if value_passing ctx.strategy then Prov.taint pb else pb
  | Ast.Let (v, value, body) ->
    let pv = eval ctx env site value in
    eval ctx (Smap.add v pv env) site body
  | Ast.If (c, t, f) ->
    ignore (eval ctx env site c);
    Prov.join (eval ctx env site t) (eval ctx env site f)
  | Ast.Typeswitch (e0, cases, dv, dflt) ->
    let p0 = eval ctx env site e0 in
    let pc =
      List.map (fun (cv, _, ce) -> eval ctx (Smap.add cv p0 env) site ce) cases
    in
    Prov.join_all (eval ctx (Smap.add dv p0 env) site dflt :: pc)
  | Ast.Value_cmp (_, a, b) | Ast.Arith (_, a, b) | Ast.And (a, b)
  | Ast.Or (a, b) ->
    ignore (eval ctx env site a);
    ignore (eval ctx env site b);
    Prov.atoms
  | Ast.Node_cmp (_, a, b) ->
    let p = Prov.join (eval ctx env site a) (eval ctx env site b) in
    check_node_identity ctx e "node identity comparison" p;
    Prov.atoms
  | Ast.Node_set (_, a, b) ->
    let p = Prov.join (eval ctx env site a) (eval ctx env site b) in
    check_node_identity ctx e "node-set operation" p;
    Prov.taint p
  | Ast.Doc_constr c | Ast.Text_constr c ->
    ignore (eval ctx env site c);
    Prov.local
  | Ast.Elem_constr (ns, c) | Ast.Attr_constr (ns, c) ->
    (match ns with
    | Ast.Computed_name ne -> ignore (eval ctx env site ne)
    | Ast.Fixed_name _ -> ());
    ignore (eval ctx env site c);
    (* constructed nodes are freshly built at the evaluating site *)
    Prov.local
  | Ast.Step (ctx_e, ax, _) ->
    let tc = eval ctx env site ctx_e in
    check_axis ctx e ax tc;
    check_mixed_step ctx e tc;
    if value_passing ctx.strategy && not (Ast.non_overlapping_axis ax) then
      Prov.taint tc
    else tc
  | Ast.Fun_call (name, args) -> eval_call ctx env site e name args
  | Ast.Execute_at x -> eval_execute_at ctx env site e x
  | Ast.Insert_node (src, _, tgt) ->
    ignore (eval ctx env site src);
    let pt = eval ctx env site tgt in
    check_update ctx site tgt pt;
    Prov.bottom
  | Ast.Delete_node tgt ->
    let pt = eval ctx env site tgt in
    check_update ctx site tgt pt;
    Prov.bottom
  | Ast.Replace_value (tgt, v) | Ast.Rename_node (tgt, v) ->
    let pt = eval ctx env site tgt in
    ignore (eval ctx env site v);
    check_update ctx site tgt pt;
    Prov.bottom

and eval_call ctx env site (e : Ast.expr) name args =
  let ps = List.map (eval ctx env site) args in
  match name with
  | "doc" | "collection" -> (
    match args with
    | [ { Ast.desc = Ast.Literal (Ast.A_string u); _ } ] -> (
      match Dg.split_xrpc_uri u with
      | Some (h, _) when h = site -> Prov.local (* native at this site *)
      | Some (h, _) -> Prov.fetched h (* full replica, data-shipped *)
      | None -> Prov.local (* resolves against the local store *))
    | _ -> Prov.fetched "*" (* computed URI: owner unknown *))
  | "root" ->
    let p = Prov.join_all ps in
    check_escape ctx e name p;
    p
  | "id" | "idref" ->
    (* the optional second argument carries the context document *)
    let p =
      match ps with [ _; pctx ] -> pctx | _ -> Prov.join_all ps
    in
    check_escape ctx e name p;
    p
  | _ when List.mem name seq_passthrough -> Prov.join_all ps
  | _ when List.mem name seq_reorder -> Prov.taint (Prov.join_all ps)
  | _ when Xd_lang.Builtin_names.is_builtin name -> Prov.atoms
  | _ ->
    (* User function: the decomposer inlines what it can; what remains
       (recursive functions, hand plans) is opaque. Shipped nodes
       disappearing into an opaque body defeat the analysis — exactly the
       conservative treatment of unknown calls in the conditions pass. *)
    let p = Prov.join_all ps in
    let declared = List.exists (fun f -> f.Ast.f_name = name) ctx.funcs in
    (match first_origin p with
    | Some o ->
      add ctx
        (Diag.make ~exec:o.Prov.exec ~host:o.Prov.host
           ~witness:(witness ctx e.Ast.id o.Prov.exec) ~severity:Diag.Error
           Diag.Unknown_function e.Ast.id
           "call to %s function %s receives nodes shipped by the call at \
            v%d; its body is opaque to the verifier"
           (if declared then "user" else "undeclared")
           name o.Prov.exec)
    | None ->
      if not declared then
        add ctx
          (Diag.make ~severity:Diag.Warning Diag.Unknown_function e.Ast.id
             "call to undeclared function %s" name));
    p

and eval_execute_at ctx env site (e : Ast.expr) (x : Ast.execute_at) =
  (* variable closure: the body may only see the declared parameters *)
  let param_names = List.map fst x.Ast.params in
  let rec dups seen = function
    | [] -> []
    | p :: r ->
      if List.mem p seen then p :: dups seen r else dups (p :: seen) r
  in
  List.iter
    (fun p ->
      add ctx
        (Diag.make ~exec:e.Ast.id ~severity:Diag.Error Diag.Closure e.Ast.id
           "parameter $%s is declared twice on the same execute-at" p))
    (dups [] param_names);
  List.iter
    (fun v ->
      add ctx
        (Diag.make ~exec:e.Ast.id
           ~witness:(witness ctx e.Ast.id x.Ast.body.Ast.id)
           ~severity:Diag.Error Diag.Closure x.Ast.body.Ast.id
           "remote body is not variable-closed: free variable $%s is not \
            among the call's parameters" v))
    (List.sort_uniq compare
       (List.filter
          (fun v -> not (List.mem v param_names))
          (Ast.free_vars x.Ast.body)));
  (* parameter expressions are evaluated in the caller's frame *)
  let args =
    List.map (fun (v, ae) -> (v, eval ctx env site ae, ae.Ast.id)) x.Ast.params
  in
  match x.Ast.host.Ast.desc with
  | Ast.Literal (Ast.A_string h) when h = site || h = "" ->
    (* a call to the current site short-circuits to plain local evaluation
       (Session.execute_at / Eval.local_execute_at): full fidelity, no
       copy semantics — only the closure check above applies *)
    let env' =
      List.fold_left (fun m (v, p, _) -> Smap.add v p m) Smap.empty args
    in
    eval ctx env' site x.Ast.body
  | host_desc ->
    let h, known =
      match host_desc with
      | Ast.Literal (Ast.A_string h) -> (h, true)
      | _ -> (
        ignore (eval ctx env site x.Ast.host);
        match ctx.catalog with
        | Some cat when not (Xd_topo.Catalog.trivial cat) -> (
          (* the runtime resolves computed hosts against this same
             catalog at call time (Session.execute_at), so the warning
             tightens into a checked judgment *)
          match judge_computed_host cat x with
          | `Owner o -> (o, true)
          | `Clean -> ("?", false)
          | `Split owners ->
            add ctx
              (Diag.make ~exec:e.Ast.id ~severity:Diag.Error
                 Diag.Host_consistency e.Ast.id
                 "no single peer owns every document this execute-at's \
                  body reads (the catalog maps them to %s): no computed \
                  host can execute where all its data lives"
                 (String.concat ", " owners));
            ("?", false)
          | `Unknown ->
            add ctx
              (Diag.make ~exec:e.Ast.id ~severity:Diag.Warning
                 Diag.Host_consistency e.Ast.id
                 "cannot statically resolve the target host of this \
                  execute-at");
            ("?", false))
        | _ ->
          add ctx
            (Diag.make ~exec:e.Ast.id ~severity:Diag.Warning
               Diag.Host_consistency e.Ast.id
               "cannot statically resolve the target host of this \
                execute-at");
          ("?", false))
    in
    if known then check_host ctx h x.Ast.body;
    let origin = { Prov.exec = e.Ast.id; host = h } in
    (* parameters cross the message under the session's passing
       semantics; under by-projection a parameter with recorded paths
       ships projected (ancestors travel), one without falls back to the
       full-format copy *)
    let param_prov v p arg_id =
      (* a proven-atomic argument marshals exactly: no copy provenance,
         no taint — the remote body sees the very same atoms *)
      if ctx.atomic arg_id then Prov.atoms
      else
        let base =
          if
            ctx.strategy = S.By_projection
            && List.exists (fun (pv, _, _) -> pv = v) x.Ast.param_paths
          then Prov.projected origin
          else Prov.shipped origin
        in
        Prov.crossed
          (if p.Prov.tainted || p.Prov.disordered then Prov.taint base
           else base)
    in
    let env' =
      List.fold_left
        (fun m (v, p, arg_id) -> Smap.add v (param_prov v p arg_id) m)
        Smap.empty args
    in
    let pb = eval ctx env' h x.Ast.body in
    if ctx.atomic x.Ast.body.Ast.id then
      (* proven-atomic result: the response is an exact value, whatever
         happened inside the body *)
      Prov.atoms
    else
      let res =
        if ctx.strategy = S.By_projection && x.Ast.result_paths <> ([], []) then
          Prov.projected origin
        else Prov.shipped origin
      in
      Prov.crossed
        (if pb.Prov.tainted || pb.Prov.disordered then Prov.taint res else res)

let run ~strategy ~g ~funcs ?(self = "") ?(atomic = fun _ -> false) ?catalog
    (e : Ast.expr) =
  let ctx = { strategy; g; funcs; self; catalog; atomic; diags = [] } in
  ignore (eval ctx Smap.empty self e);
  List.rev ctx.diags
