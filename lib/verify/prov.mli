(** The provenance abstract domain of the distribution-safety verifier.

    An abstract value is the set of sources that may flow into a
    subexpression's value — [local] nodes, [fetched] full document
    replicas (data shipping), [shipped] deep copies (pass-by-value /
    pass-by-fragment messages) and [projected] copies (pass-by-projection
    messages) — plus a taint bit recording passage through an
    order/duplicate-destroying producer (insertion condition iii's
    producer set). The lattice join is set union; the classic
    [Local | Shipped_copy | Projected | Mixed] lattice of the analysis is
    recovered by {!classify}. *)

module Sset : Set.S with type elt = string

type origin = { exec : int;  (** the execute-at vertex *) host : string }

type t = {
  local : bool;
  fetched : Sset.t;
  shipped : origin list;
  projected : origin list;
  tainted : bool;
      (** the value may be a mixed/unordered/overlapping sequence {e now}
          (condition iii's producer set applied locally) *)
  disordered : bool;
      (** the value was mixed when it crossed an XRPC message — document
          order and duplicates are unrecoverable on this side *)
}

val local : t
(** Native nodes or atomics; the top-of-query assumption. *)

val bottom : t
val atoms : t
val fetched : string -> t
val shipped : origin -> t
val projected : origin -> t

val join : t -> t -> t
val join_all : t list -> t
val taint : t -> t
val untainted : t -> t

val crossed : t -> t
(** Freeze the taint across a message crossing: mixed-at-crossing-time
    becomes {!field-disordered}, the bit condition iii's step check
    consults. Mixing applied {e after} a crossing is local deterministic
    recombination — harmless until the next crossing. *)

val copies : t -> origin list
(** All message-copy origins (shipped and projected). *)

val has_copy : t -> bool
val has_shipped : t -> bool
val is_local : t -> bool

val classify : t -> [ `Local | `Shipped_copy | `Projected | `Mixed ]
val classify_name : t -> string
val to_string : t -> string
