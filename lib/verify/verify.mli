(** The distribution-safety verifier.

    An independent static analysis over *decomposed* plans: given a query
    whose AST contains [execute at] vertices (emitted by
    [Xd_core.Decompose] or written by hand) and the strategy it will run
    under, re-derives from scratch — by provenance abstract
    interpretation, not by replaying the decomposer's insertion logic —
    that distributed execution preserves local semantics. Violations come
    back as rule-named {!Diag.t} diagnostics carrying the offending
    vertex, the call involved and a d-graph witness path. *)

type report = { strategy : Xd_xrpc.Strategy.t; diags : Diag.t list }

val verify :
  ?self:string -> ?schedule:(int * int list) list ->
  ?shapes:Xd_shape.Shape.descriptor list ->
  ?catalog:Xd_topo.Catalog.t -> Xd_xrpc.Strategy.t ->
  Xd_lang.Ast.query -> report
(** [verify ?self ?schedule strategy q] checks [q] under [strategy].
    [self] is the client peer's name ([execute at] targeting it is local
    evaluation, not a message; defaults to [""], the session-local
    pseudo-host).

    [catalog] is the topology catalog the plan will run against, when
    dynamic topology is active. A non-trivial catalog tightens the
    computed-host warning into a checked judgment: clean pass when every
    document a computed-host body touches resolves to one catalogued
    owner, [host-consistency] error when the documents provably span
    several owners (see {!Absint.run}).

    [schedule] is a proposed overlap schedule ([(anchor, members)] pairs
    of Seq/Let/For anchor and [execute at] member vertex ids, as produced
    by {!Xd_effects.Effects.schedule}). The verifier re-derives every
    member's effect footprint with its own {!Xd_effects.Effects.analyze}
    run — never trusting the proposer — and reports a
    [schedule-interference] error for any member that is not provably
    read-only, lacks a derivable footprint, or may touch data another
    member of its group accesses.

    [shapes] is the list of wire-shape descriptors a compiled codec was
    generated from ({!Xd_xrpc.Codec.descriptors}). The verifier
    re-derives every descriptor with its own {!Xd_shape.Shape.analyze}
    run and reports a [wire-shape] error for any claimed descriptor the
    re-derivation does not reproduce exactly — a plan whose codegen and
    verification disagree on the message bytes never executes. *)

val ok : report -> bool
(** No error-severity findings (warnings don't gate execution). *)

val errors : report -> Diag.t list
val warnings : report -> Diag.t list
val pp_report : Format.formatter -> report -> unit
val report_to_string : report -> string
