(* A deterministic XMark-shaped data generator (Schmidt et al., VLDB 2002).

   The paper's evaluation splits the XMark data over two peers: a people
   document (site/people/person elements) and an auctions document
   (site/open_auctions/open_auction elements). We generate both shapes with the
   attributes and elements the benchmark query touches (person/@id,
   person//age, open_auction/seller/@person, annotation/author/@person)
   plus realistic filler (names, addresses, profiles with interests,
   auction descriptions, bidders) so that selectivities and projection
   gains behave like the real generator's output.

   Sizes are controlled by the number of persons; auctions scale at the
   XMark ratio of roughly one open auction per two persons. Everything is
   driven by a seeded PRNG (splitmix-style), so documents are reproducible
   bit-for-bit. *)

module X = Xd_xml

type rng = { mutable state : int64 }

let rng seed = { state = Int64.of_int (seed * 2654435761 + 12345) }

let next r =
  (* splitmix64 *)
  r.state <- Int64.add r.state 0x9E3779B97F4A7C15L;
  let z = r.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int r bound = Int64.to_int (Int64.rem (Int64.logand (next r) Int64.max_int) (Int64.of_int bound))

let pick r arr = arr.(int r (Array.length arr))

let first_names =
  [| "Ying"; "Nan"; "Peter"; "Anna"; "Jose"; "Mehmet"; "Wei"; "Fatima";
     "Ivan"; "Chen"; "Maria"; "John"; "Aisha"; "Lars"; "Elena"; "Raj";
     "Yuki"; "Omar"; "Lucia"; "Sven" |]

let last_names =
  [| "Zhang"; "Tang"; "Boncz"; "Smith"; "Garcia"; "Yilmaz"; "Wang"; "Khan";
     "Petrov"; "Li"; "Rossi"; "Brown"; "Diallo"; "Larsen"; "Popova"; "Patel";
     "Sato"; "Hassan"; "Lopez"; "Berg" |]

let cities =
  [| "Amsterdam"; "Beijing"; "Paris"; "Istanbul"; "Moscow"; "Lagos"; "Tokyo";
     "Lima"; "Cairo"; "Oslo" |]

let countries =
  [| "Netherlands"; "China"; "France"; "Turkey"; "Russia"; "Nigeria";
     "Japan"; "Peru"; "Egypt"; "Norway" |]

let interests =
  [| "books"; "music"; "antiques"; "computers"; "stamps"; "coins"; "art";
     "travel"; "gardening"; "photography" |]

let words =
  [| "page"; "gold"; "shadow"; "river"; "market"; "silver"; "ancient";
     "rare"; "signed"; "first"; "edition"; "mint"; "condition"; "original";
     "vintage"; "classic"; "limited"; "unique"; "antique"; "collector" |]

let sentence r n =
  String.concat " " (List.init n (fun _ -> pick r words))

(* ---- people document -------------------------------------------------- *)

let person r i =
  let name = pick r first_names ^ " " ^ pick r last_names in
  let age = 18 + int r 52 in
  let n_interests = int r 4 in
  X.Doc.E
    ( "person",
      [ ("id", Printf.sprintf "person%d" i) ],
      [
        X.Doc.E ("name", [], [ X.Doc.T name ]);
        X.Doc.E
          ( "emailaddress",
            [],
            [
              X.Doc.T
                (Printf.sprintf "mailto:%s%d@example.org"
                   (String.lowercase_ascii (pick r last_names))
                   i);
            ] );
        X.Doc.E
          ( "address",
            [],
            [
              X.Doc.E ("street", [], [ X.Doc.T (Printf.sprintf "%d %s St" (1 + int r 99) (pick r words)) ]);
              X.Doc.E ("city", [], [ X.Doc.T (pick r cities) ]);
              X.Doc.E ("country", [], [ X.Doc.T (pick r countries) ]);
              X.Doc.E ("zipcode", [], [ X.Doc.T (string_of_int (10000 + int r 89999)) ]);
            ] );
        X.Doc.E
          ( "profile",
            [ ("income", Printf.sprintf "%d.%02d" (20000 + int r 80000) (int r 100)) ],
            X.Doc.E ("age", [], [ X.Doc.T (string_of_int age) ])
            :: X.Doc.E
                 ( "education",
                   [],
                   [
                     X.Doc.T
                       (pick r
                          [| "High School"; "College"; "Graduate School"; "Other" |]);
                   ] )
            :: List.init n_interests (fun _ ->
                   X.Doc.E ("interest", [ ("category", pick r interests) ], []))
          );
        X.Doc.E ("homepage", [], [ X.Doc.T (Printf.sprintf "http://www.example.org/~u%d" i) ]);
        X.Doc.E ("creditcard", [], [ X.Doc.T (Printf.sprintf "%04d %04d %04d %04d" (int r 10000) (int r 10000) (int r 10000) (int r 10000)) ]);
      ] )

(* The paper's first document is a full XMark site document (persons are
   only a fraction of it); the benchmark query touches just
   site/people/person, so the remaining sections are the realistic filler
   that function shipping avoids moving. *)

let item r i =
  X.Doc.E
    ( "item",
      [ ("id", Printf.sprintf "item%d" i) ],
      [
        X.Doc.E ("location", [], [ X.Doc.T (pick r countries) ]);
        X.Doc.E ("quantity", [], [ X.Doc.T (string_of_int (1 + int r 10)) ]);
        X.Doc.E ("name", [], [ X.Doc.T (sentence r 2) ]);
        X.Doc.E ("payment", [], [ X.Doc.T "Creditcard, Money order" ]);
        X.Doc.E
          ( "description",
            [],
            [ X.Doc.E ("text", [], [ X.Doc.T (sentence r (15 + int r 30)) ]) ] );
        X.Doc.E ("shipping", [], [ X.Doc.T "Will ship internationally" ]);
        X.Doc.E
          ( "incategory",
            [ ("category", Printf.sprintf "category%d" (int r 20)) ],
            [] );
      ] )

let category r i =
  X.Doc.E
    ( "category",
      [ ("id", Printf.sprintf "category%d" i) ],
      [
        X.Doc.E ("name", [], [ X.Doc.T (sentence r 2) ]);
        X.Doc.E
          ( "description",
            [],
            [ X.Doc.E ("text", [], [ X.Doc.T (sentence r (10 + int r 15)) ]) ] );
      ] )

let closed_auction r ~persons i =
  X.Doc.E
    ( "closed_auction",
      [],
      [
        X.Doc.E ("seller", [ ("person", Printf.sprintf "person%d" (int r persons)) ], []);
        X.Doc.E ("buyer", [ ("person", Printf.sprintf "person%d" (int r persons)) ], []);
        X.Doc.E ("itemref", [ ("item", Printf.sprintf "item%d" i) ], []);
        X.Doc.E ("price", [], [ X.Doc.T (Printf.sprintf "%d.%02d" (5 + int r 400) (int r 100)) ]);
        X.Doc.E ("date", [], [ X.Doc.T (Printf.sprintf "%02d/%02d/2008" (1 + int r 12) (1 + int r 28)) ]);
        X.Doc.E ("quantity", [], [ X.Doc.T (string_of_int (1 + int r 3)) ]);
        X.Doc.E
          ( "annotation",
            [],
            [
              X.Doc.E ("author", [ ("person", Printf.sprintf "person%d" (int r persons)) ], []);
              X.Doc.E
                ( "description",
                  [],
                  [ X.Doc.E ("text", [], [ X.Doc.T (sentence r (8 + int r 16)) ]) ] );
            ] );
      ] )

let people_tree ~seed ~persons =
  let r = rng seed in
  let items = persons * 2 in
  X.Doc.E
    ( "site",
      [],
      [
        X.Doc.E
          ( "regions",
            [],
            [
              X.Doc.E ("europe", [], List.init (items / 2) (fun i -> item r i));
              X.Doc.E
                ( "namerica",
                  [],
                  List.init (items - (items / 2)) (fun i -> item r (i + (items / 2))) );
            ] );
        X.Doc.E ("categories", [], List.init 20 (fun i -> category r i));
        X.Doc.E ("people", [], List.init persons (fun i -> person r i));
        X.Doc.E
          ( "closed_auctions",
            [],
            List.init (max 1 (persons / 2)) (fun i -> closed_auction r ~persons i) );
      ] )

(* ---- auctions document ------------------------------------------------ *)

let open_auction r ~persons i =
  let n_bidders = int r 4 in
  let seller = int r persons in
  let author = int r persons in
  X.Doc.E
    ( "open_auction",
      [ ("id", Printf.sprintf "open_auction%d" i) ],
      [
        X.Doc.E ("initial", [], [ X.Doc.T (Printf.sprintf "%d.%02d" (1 + int r 300) (int r 100)) ]);
        X.Doc.E ("reserve", [], [ X.Doc.T (Printf.sprintf "%d.%02d" (50 + int r 500) (int r 100)) ]);
      ]
      @ List.init n_bidders (fun b ->
            X.Doc.E
              ( "bidder",
                [],
                [
                  X.Doc.E ("date", [], [ X.Doc.T (Printf.sprintf "%02d/%02d/2008" (1 + int r 12) (1 + int r 28)) ]);
                  X.Doc.E ("personref", [ ("person", Printf.sprintf "person%d" (int r persons)) ], []);
                  X.Doc.E ("increase", [], [ X.Doc.T (Printf.sprintf "%d.%02d" (1 + int r 50) (int r 100)) ]);
                  X.Doc.E ("time", [], [ X.Doc.T (Printf.sprintf "%02d:%02d:%02d" (int r 24) (int r 60) (b * 7 mod 60)) ]);
                ] ))
      @ [
          X.Doc.E ("current", [], [ X.Doc.T (Printf.sprintf "%d.%02d" (10 + int r 800) (int r 100)) ]);
          X.Doc.E ("itemref", [ ("item", Printf.sprintf "item%d" (int r (persons * 2))) ], []);
          X.Doc.E ("seller", [ ("person", Printf.sprintf "person%d" seller) ], []);
          X.Doc.E
            ( "annotation",
              [],
              [
                X.Doc.E ("author", [ ("person", Printf.sprintf "person%d" author) ], []);
                X.Doc.E
                  ( "description",
                    [],
                    [ X.Doc.E ("text", [], [ X.Doc.T (sentence r (8 + int r 20)) ]) ] );
                X.Doc.E ("happiness", [], [ X.Doc.T (string_of_int (1 + int r 10)) ]);
              ] );
          X.Doc.E ("quantity", [], [ X.Doc.T (string_of_int (1 + int r 5)) ]);
          X.Doc.E ("type", [], [ X.Doc.T (if int r 2 = 0 then "Regular" else "Featured") ]);
          X.Doc.E ("interval", [], [
            X.Doc.E ("start", [], [ X.Doc.T "01/01/2008" ]);
            X.Doc.E ("end", [], [ X.Doc.T "12/31/2008" ]);
          ]);
        ] )

let auctions_tree ~seed ~persons =
  let r = rng (seed + 7919) in
  let auctions = max 1 (persons / 2) in
  X.Doc.E
    ( "site",
      [],
      [
        X.Doc.E
          ( "open_auctions",
            [],
            List.init auctions (fun i -> open_auction r ~persons i) );
      ] )

(* ---- loading ----------------------------------------------------------- *)

(* Load a people/auctions pair on two peers; returns the serialized sizes
   (the x-axis of Fig. 7/9). *)
let load_pair ?(seed = 42) ~persons ~(people_peer : Xd_xrpc.Peer.t)
    ~(auctions_peer : Xd_xrpc.Peer.t) ~people_doc ~auctions_doc () =
  let pd =
    Xd_xrpc.Peer.load_tree people_peer ~doc_name:people_doc
      (people_tree ~seed ~persons)
  in
  let ad =
    Xd_xrpc.Peer.load_tree auctions_peer ~doc_name:auctions_doc
      (auctions_tree ~seed ~persons)
  in
  (X.Serializer.doc_bytes pd, X.Serializer.doc_bytes ad)
