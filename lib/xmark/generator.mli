(** Deterministic XMark-shaped data generator (Schmidt et al., VLDB 2002).

    The paper's evaluation splits XMark over two peers: the full site
    document (regions/items, categories, people, closed auctions — the
    benchmark query touches only site/people/person) and an open-auctions
    document. Generation is driven by a splitmix64 PRNG, so documents are
    reproducible bit-for-bit from the seed; sizes scale linearly in
    [persons] (auctions at the XMark ratio of one open auction per two
    persons). *)

type rng

val rng : int -> rng
val int : rng -> int -> int
val pick : rng -> 'a array -> 'a

val person : rng -> int -> Xd_xml.Doc.tree
val item : rng -> int -> Xd_xml.Doc.tree
val category : rng -> int -> Xd_xml.Doc.tree
val closed_auction : rng -> persons:int -> int -> Xd_xml.Doc.tree
val open_auction : rng -> persons:int -> int -> Xd_xml.Doc.tree

val people_tree : seed:int -> persons:int -> Xd_xml.Doc.tree
val auctions_tree : seed:int -> persons:int -> Xd_xml.Doc.tree

val load_pair :
  ?seed:int ->
  persons:int ->
  people_peer:Xd_xrpc.Peer.t ->
  auctions_peer:Xd_xrpc.Peer.t ->
  people_doc:string ->
  auctions_doc:string ->
  unit ->
  int * int
(** Load a people/auctions pair on two peers; returns the serialized byte
    sizes (the x-axis of Fig. 7/9). *)
