(** Deterministic membership churn: a script of catalog events, each fired
    just before the N-th wire message of the run. Message counts (not wall
    clocks) key the schedule so runs replay bit-for-bit — the same discipline
    as the seeded fault model ([--fault-spec]). *)

type event =
  | Move of { doc : string; owner : string }
  | Join of string
  | Leave of string
  | Down of string
  | Up of string

type t

val empty : t

(** [parse s] reads the [--topo-churn] mini-language: ';'-separated
    [N:EVENT] rules where [EVENT] is [move=DOC/PEER], [join=PEER],
    [leave=PEER], [down=PEER] or [up=PEER], e.g.
    ["1:move=d.xml/peer2;5:leave=peer1"]. Counts are 1-based. *)
val parse : string -> ((int * event) list, string) result

val create : (int * event) list -> t
val apply : Catalog.t -> event -> unit

(** [tick t cat ~count] fires (and removes) every rule whose trigger count is
    [<= count], applying it to [cat]; returns the fired events in order. *)
val tick : t -> Catalog.t -> count:int -> event list

val event_to_string : event -> string
