type event =
  | Move of { doc : string; owner : string }
  | Join of string
  | Leave of string
  | Down of string
  | Up of string

type t = { mutable pending : (int * event) list (* sorted by trigger count *) }

let empty = { pending = [] }

let create rules =
  { pending = List.stable_sort (fun (a, _) (b, _) -> compare a b) rules }

let apply cat = function
  | Move { doc; owner } -> Catalog.move cat ~doc ~owner
  | Join p -> Catalog.join cat p
  | Leave p -> Catalog.leave cat p
  | Down p -> Catalog.mark_down cat p
  | Up p -> Catalog.mark_up cat p

let tick t cat ~count =
  let fired, pending = List.partition (fun (at, _) -> at <= count) t.pending in
  t.pending <- pending;
  List.map
    (fun (_, ev) ->
      apply cat ev;
      ev)
    fired

let event_to_string = function
  | Move { doc; owner } -> Printf.sprintf "move %s -> %s" doc owner
  | Join p -> "join " ^ p
  | Leave p -> "leave " ^ p
  | Down p -> "down " ^ p
  | Up p -> "up " ^ p

let parse s =
  let rules = ref [] in
  let err = ref None in
  let fail fmt = Format.kasprintf (fun m -> if !err = None then err := Some m) fmt in
  String.split_on_char ';' s
  |> List.iter (fun item ->
         let item = String.trim item in
         if item <> "" then
           match String.index_opt item ':' with
           | None -> fail "rule %S: expected N:EVENT" item
           | Some i -> (
             let count = String.sub item 0 i in
             let ev = String.sub item (i + 1) (String.length item - i - 1) in
             match int_of_string_opt count with
             | None -> fail "rule %S: bad message count %S" item count
             | Some n when n < 1 -> fail "rule %S: message counts are 1-based" item
             | Some n -> (
               let kind, arg =
                 match String.index_opt ev '=' with
                 | None -> (ev, "")
                 | Some j ->
                   ( String.sub ev 0 j,
                     String.sub ev (j + 1) (String.length ev - j - 1) )
               in
               let peer_event mk =
                 if arg = "" then fail "rule %S: %s needs =PEER" item kind
                 else rules := (n, mk arg) :: !rules
               in
               match kind with
               | "join" -> peer_event (fun p -> Join p)
               | "leave" -> peer_event (fun p -> Leave p)
               | "down" -> peer_event (fun p -> Down p)
               | "up" -> peer_event (fun p -> Up p)
               | "move" -> (
                 match String.index_opt arg '/' with
                 | Some j when j > 0 && j < String.length arg - 1 ->
                   rules :=
                     ( n,
                       Move
                         {
                           doc = String.sub arg 0 j;
                           owner =
                             String.sub arg (j + 1) (String.length arg - j - 1);
                         } )
                     :: !rules
                 | _ -> fail "rule %S: move needs =DOC/PEER" item)
               | _ ->
                 fail "rule %S: unknown event %S (move|join|leave|down|up)" item
                   kind)));
  match !err with Some m -> Error m | None -> Ok (List.rev !rules)
