(** Replicated peer registry: which peer owns which document, with optional
    replicas, versioned by an epoch counter so stale routing is detectable.

    The catalog is the runtime story for computed [execute at] hosts (ROADMAP
    "Dynamic topology", in the spirit of the DXQ distributed query network):
    callers resolve document names to owners at call time, a peer that no
    longer owns the data answers with a [<forward>] redirect, and the epoch
    lets 2PC refuse to commit across a membership change.

    Ownership changes ([move]/[join]/[leave]) bump the epoch; liveness changes
    ([mark_down]/[mark_up]) do not — a crashed owner still owns its documents,
    it just cannot serve them, which is what replica failover is for. *)

type entry = { doc : string; owner : string; replicas : string list }

type t

val create : unit -> t

(** [of_spec s] parses the [--catalog] mini-language: ';'-separated
    [OWNER/DOC[+REPLICA...]] entries, e.g. ["peer1/d.xml+peer2;peer2/e.xml"].
    The empty string yields a trivial catalog. *)
val of_spec : string -> (t, string) result

(** Rebuild a catalog from its parts, exactly as received on the wire. *)
val of_parts :
  epoch:int -> entries:entry list -> members:(string * bool) list -> t

val epoch : t -> int

(** A trivial catalog has no entries; installing one changes nothing
    observable (the wire stays byte-identical to the static build). *)
val trivial : t -> bool

(** [register] maps [doc] to [owner] (replacing any previous entry) and
    enrolls owner and replicas as members. Initial placement: no epoch bump. *)
val register : t -> doc:string -> owner:string -> ?replicas:string list -> unit -> unit

val resolve : t -> string -> entry option
val owner_of : t -> string -> string option

(** [serves t ~peer ~doc] — is [peer] the owner or a replica of [doc]? *)
val serves : t -> peer:string -> doc:string -> bool

(** [move t ~doc ~owner] transfers ownership and bumps the epoch. The old
    owner is dropped entirely (it will forward, not serve); the new owner is
    removed from the replica list if present. *)
val move : t -> doc:string -> owner:string -> unit

(** [join t peer] enrolls [peer] (up) and bumps the epoch. *)
val join : t -> string -> unit

(** [leave t peer] removes [peer] from membership and from every replica
    list; entries it owned promote their first live replica (entries with no
    live replica keep the departed owner on record — unroutable until it
    rejoins). One epoch bump for the whole departure. *)
val leave : t -> string -> unit

(** Liveness marks; no epoch bump. Unknown peers are presumed up. *)
val mark_down : t -> string -> unit

val mark_up : t -> string -> unit
val is_up : t -> string -> bool

(** Sorted views (deterministic, for dumps and tests). *)
val entries : t -> entry list

val members : t -> (string * bool) list

(** Deterministic dump, pinned by [test/cram/topo.t]. *)
val pp : Format.formatter -> t -> unit
