type entry = { doc : string; owner : string; replicas : string list }

type t = {
  entries : (string, entry) Hashtbl.t; (* doc -> entry *)
  members : (string, bool) Hashtbl.t; (* peer -> up *)
  mutable epoch : int;
}

let create () = { entries = Hashtbl.create 8; members = Hashtbl.create 8; epoch = 0 }
let epoch t = t.epoch
let trivial t = Hashtbl.length t.entries = 0

let enroll t peer =
  if not (Hashtbl.mem t.members peer) then Hashtbl.replace t.members peer true

let register t ~doc ~owner ?(replicas = []) () =
  Hashtbl.replace t.entries doc { doc; owner; replicas };
  enroll t owner;
  List.iter (enroll t) replicas

let resolve t doc = Hashtbl.find_opt t.entries doc
let owner_of t doc = Option.map (fun e -> e.owner) (resolve t doc)

let serves t ~peer ~doc =
  match resolve t doc with
  | Some e -> e.owner = peer || List.mem peer e.replicas
  | None -> false

let move t ~doc ~owner =
  let replicas =
    match resolve t doc with
    | Some e -> List.filter (fun r -> r <> owner && r <> e.owner) e.replicas
    | None -> []
  in
  Hashtbl.replace t.entries doc { doc; owner; replicas };
  enroll t owner;
  t.epoch <- t.epoch + 1

let join t peer =
  Hashtbl.replace t.members peer true;
  t.epoch <- t.epoch + 1

let leave t peer =
  Hashtbl.remove t.members peer;
  let live p = match Hashtbl.find_opt t.members p with Some up -> up | None -> false in
  Hashtbl.iter
    (fun doc e ->
      let replicas = List.filter (fun r -> r <> peer) e.replicas in
      if e.owner = peer then
        match List.find_opt live replicas with
        | Some promoted ->
          Hashtbl.replace t.entries doc
            { e with owner = promoted; replicas = List.filter (fun r -> r <> promoted) replicas }
        | None -> Hashtbl.replace t.entries doc { e with replicas }
      else if replicas <> e.replicas then
        Hashtbl.replace t.entries doc { e with replicas })
    (Hashtbl.copy t.entries);
  t.epoch <- t.epoch + 1

let mark_down t peer = Hashtbl.replace t.members peer false
let mark_up t peer = Hashtbl.replace t.members peer true

let is_up t peer =
  match Hashtbl.find_opt t.members peer with Some up -> up | None -> true

let entries t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.entries []
  |> List.sort (fun a b -> compare a.doc b.doc)

let members t =
  Hashtbl.fold (fun p up acc -> (p, up) :: acc) t.members []
  |> List.sort compare

let of_parts ~epoch ~entries ~members =
  let t = create () in
  List.iter (fun e -> Hashtbl.replace t.entries e.doc e) entries;
  List.iter (fun (p, up) -> Hashtbl.replace t.members p up) members;
  t.epoch <- epoch;
  t

let pp fmt t =
  Format.fprintf fmt "catalog epoch %d" t.epoch;
  List.iter
    (fun e ->
      Format.fprintf fmt "@\n  doc %s owner %s" e.doc e.owner;
      if e.replicas <> [] then
        Format.fprintf fmt " replicas %s" (String.concat "," e.replicas))
    (entries t);
  List.iter
    (fun (p, up) ->
      Format.fprintf fmt "@\n  member %s %s" p (if up then "up" else "down"))
    (members t)

let of_spec s =
  let t = create () in
  let err = ref None in
  let fail fmt = Format.kasprintf (fun m -> if !err = None then err := Some m) fmt in
  String.split_on_char ';' s
  |> List.iter (fun item ->
         let item = String.trim item in
         if item <> "" then
           match String.index_opt item '/' with
           | None ->
             fail "entry %S: expected OWNER/DOC[+REPLICA...]" item
           | Some i ->
             let owner = String.sub item 0 i in
             let rest = String.sub item (i + 1) (String.length item - i - 1) in
             (match String.split_on_char '+' rest with
             | doc :: replicas
               when owner <> "" && doc <> "" && List.for_all (fun r -> r <> "") replicas
               -> register t ~doc ~owner ~replicas ()
             | _ -> fail "entry %S: expected OWNER/DOC[+REPLICA...]" item));
  match !err with Some m -> Error m | None -> Ok t
