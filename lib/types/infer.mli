(* Static type and cardinality inference over {!Stype}: an abstract
   interpretation of XCore that assigns a sequence type to every AST
   vertex, solving user-defined (possibly recursive) functions by a
   monotone fixpoint. Never raises; diagnostics are restricted to
   *definite* errors (provably atomic, provably non-empty values in
   node-requiring positions), so a reported error fails every
   evaluation that reaches the vertex. *)

type error = { vertex : int; message : string }

val pp_error : Format.formatter -> error -> unit

type result = {
  types : (int, Stype.t) Hashtbl.t; (* vertex id -> inferred type *)
  errors : error list; (* definite type errors, in traversal order *)
}

val infer_query : Xd_lang.Ast.query -> result

val type_of : result -> Xd_lang.Ast.expr -> Stype.t option
val type_of_vertex : result -> int -> Stype.t option

(* Is the vertex proven to produce only atomic values? Unknown vertices
   answer [false]: absence of proof never widens anything. *)
val atomic : result -> int -> bool

(* [atomic] partially applied — the shape the decomposer's condition
   context takes. *)
val atomic_fact : result -> int -> bool

(* A one-line syntactic sketch of a vertex, shared by the --types and
   --effects dumps. *)
val sketch : Xd_lang.Ast.expr -> string

(* The [--types] dump: every vertex with its sketch and inferred type,
   functions first, indented by AST depth. *)
val pp_dump : Format.formatter -> Xd_lang.Ast.query -> result -> unit
