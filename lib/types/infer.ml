(* Static type and cardinality inference: an abstract interpretation of
   XCore over the {!Stype} lattice.

   Every AST vertex is assigned a sequence type; FLWOR binders,
   typeswitch cases and execute-at parameters refine the environment;
   builtins transfer through the typed signatures of {!Xd_lang.Fn_sig}
   (with precise special cases for the sequence-polymorphic ones); and
   user-defined functions — including recursive ones the decomposer
   cannot inline — are solved by a monotone fixpoint over their
   parameter and result types. The lattice is finite in both components,
   so the fixpoint converges; a generous iteration budget guards the
   loop anyway.

   The pass never raises: it is called unconditionally inside the
   decomposer and the verifier. Diagnostics are restricted to *definite*
   errors — a provably atomic, provably non-empty value flowing into a
   position that requires a node (axis steps, node comparisons, node-set
   operations, update targets, node-requiring builtin parameters) fails
   every evaluation that reaches it. Anything less certain stays silent:
   a false type error would reject a query the runtime executes fine.

   Soundness contract (enforced by the QCheck harness in
   test/test_types.ml): whenever evaluation of a vertex succeeds, the
   resulting value inhabits the vertex's inferred type. The decomposer
   widens insertion conditions i–iv with [Stype.is_atomic] proofs over
   these types, and the verifier re-derives the same facts
   independently, so a hole in the inference shows up as a differential
   failure, not a silent wrong answer. *)

module Ast = Xd_lang.Ast
module Fn_sig = Xd_lang.Fn_sig
module Smap = Map.Make (String)

type error = { vertex : int; message : string }

let pp_error fmt e = Fmt.pf fmt "v%d: %s" e.vertex e.message

type result = {
  types : (int, Stype.t) Hashtbl.t; (* vertex id -> inferred type *)
  errors : error list; (* definite type errors, in traversal order *)
}

let type_of res (e : Ast.expr) = Hashtbl.find_opt res.types e.Ast.id

let type_of_vertex res id = Hashtbl.find_opt res.types id

(* Is the vertex proven to produce only atomic values? Unknown vertices
   are not atomic — absence of proof must never widen anything. *)
let atomic res id =
  match Hashtbl.find_opt res.types id with
  | Some t -> Stype.is_atomic t
  | None -> false

(* ---- shorthand types -------------------------------------------------- *)

let k_num = { Stype.no_kinds with Stype.k_num = true }
let k_str = { Stype.no_kinds with Stype.k_str = true }
let k_bool = { Stype.no_kinds with Stype.k_bool = true }
let k_doc = { Stype.no_kinds with Stype.k_doc = true }
let k_elem = { Stype.no_kinds with Stype.k_elem = true }
let k_attr = { Stype.no_kinds with Stype.k_attr = true }
let k_text = { Stype.no_kinds with Stype.k_text = true }
let num1 = Stype.make k_num Stype.O_one
let str1 = Stype.make k_str Stype.O_one
let bool1 = Stype.make k_bool Stype.O_one
let bool_opt = Stype.make k_bool Stype.O_opt

(* A value that is provably atomic-only *and* provably non-empty can
   never satisfy a node-requiring position: a definite dynamic error. *)
let atomic_nonempty t = Stype.is_atomic t && Stype.definitely_nonempty t

(* ---- interpreter state ------------------------------------------------ *)

type fstate = { mutable params : Stype.t list; mutable result : Stype.t }

type st = {
  funcs : Ast.func list;
  ftab : (string, fstate) Hashtbl.t;
  types : (int, Stype.t) Hashtbl.t;
  mutable changed : bool;
  mutable collect : bool; (* final pass: collect definite errors *)
  mutable errors : error list;
}

let err st (e : Ast.expr) fmt =
  Format.kasprintf
    (fun message ->
      if st.collect then
        st.errors <- { vertex = e.Ast.id; message } :: st.errors)
    fmt

let record st (e : Ast.expr) t =
  Hashtbl.replace st.types e.Ast.id t;
  t

(* Result kinds of one axis step, from the node test and principal axis. *)
let step_kinds ax test =
  let principal_attr = ax = Ast.Attribute in
  match test with
  | Ast.Name_test _ | Ast.Wildcard -> if principal_attr then k_attr else k_elem
  | Ast.Kind_node -> Stype.all_nodes
  | Ast.Kind_text -> k_text
  | Ast.Kind_comment -> { Stype.no_kinds with Stype.k_comment = true }
  | Ast.Kind_element _ -> k_elem
  | Ast.Kind_attribute _ -> k_attr

let node_item_type = function
  | Ast.It_node | Ast.It_element _ | Ast.It_attribute _ | Ast.It_text
  | Ast.It_document ->
    true
  | Ast.It_atomic _ | Ast.It_item -> false

let rec infer st env (e : Ast.expr) : Stype.t =
  let t =
    match e.Ast.desc with
    | Ast.Literal (Ast.A_string _) -> str1
    | Ast.Literal (Ast.A_int _) | Ast.Literal (Ast.A_float _) -> num1
    | Ast.Literal (Ast.A_bool _) -> bool1
    | Ast.Var_ref v -> (
      match Smap.find_opt v env with Some t -> t | None -> Stype.top)
    | Ast.Seq es ->
      List.fold_left
        (fun acc c -> Stype.add acc (infer st env c))
        Stype.empty es
    | Ast.For (v, src, body) ->
      let ts = infer st env src in
      let tb = infer st (Smap.add v (Stype.item_of ts) env) body in
      Stype.make tb.Stype.kinds (Stype.occ_mult ts.Stype.occ tb.Stype.occ)
    | Ast.Let (v, value, body) ->
      let tv = infer st env value in
      infer st (Smap.add v tv env) body
    | Ast.If (c, th, el) ->
      ignore (infer st env c);
      Stype.join (infer st env th) (infer st env el)
    | Ast.Typeswitch (e0, cases, dv, dflt) ->
      let t0 = infer st env e0 in
      let tc =
        List.map
          (fun (cv, sty, ce) ->
            (* the case body runs only when the value matches [sty] *)
            let bound = Stype.meet t0 (Stype.of_seqtype sty) in
            infer st (Smap.add cv bound env) ce)
          cases
      in
      List.fold_left Stype.join (infer st (Smap.add dv t0 env) dflt) tc
    | Ast.Value_cmp (_, a, b) ->
      ignore (infer st env a);
      ignore (infer st env b);
      bool1
    | Ast.Node_cmp (op, a, b) ->
      let ta = infer st env a and tb = infer st env b in
      List.iter
        (fun t ->
          if atomic_nonempty t then
            err st e
              "operand of node comparison '%s' is provably atomic (%s): a \
               single node is required"
              (Xd_lang.Pp.node_comp_name op)
              (Stype.to_string t))
        [ ta; tb ];
      bool_opt
    | Ast.Arith (_, a, b) ->
      let ta = infer st env a and tb = infer st env b in
      let la, ha = Stype.occ_bounds ta.Stype.occ in
      let lb, hb = Stype.occ_bounds tb.Stype.occ in
      let hi = if ha = Some 0 || hb = Some 0 then Some 0 else Some 1 in
      Stype.make k_num (Stype.occ_of_bounds (min la lb, hi))
    | Ast.And (a, b) | Ast.Or (a, b) ->
      ignore (infer st env a);
      ignore (infer st env b);
      bool1
    | Ast.Order_by (v, src, specs, body) ->
      let ts = infer st env src in
      let env' = Smap.add v (Stype.item_of ts) env in
      List.iter (fun (spec, _) -> ignore (infer st env' spec)) specs;
      let tb = infer st env' body in
      Stype.make tb.Stype.kinds (Stype.occ_mult ts.Stype.occ tb.Stype.occ)
    | Ast.Node_set (op, a, b) ->
      let ta = infer st env a and tb = infer st env b in
      List.iter
        (fun t ->
          if atomic_nonempty t then
            err st e
              "operand of node-set operation '%s' is provably atomic (%s): \
               only node sequences are allowed"
              (Xd_lang.Pp.set_op_name op) (Stype.to_string t))
        [ ta; tb ];
      let kinds =
        Stype.kinds_meet
          (Stype.kinds_join ta.Stype.kinds tb.Stype.kinds)
          Stype.all_nodes
      in
      let la, ha = Stype.occ_bounds ta.Stype.occ in
      let lb, hb = Stype.occ_bounds tb.Stype.occ in
      let occ =
        match op with
        | Ast.Union ->
          let hi =
            match (ha, hb) with Some x, Some y -> Some (x + y) | _ -> None
          in
          Stype.occ_of_bounds (max la lb, hi)
        | Ast.Intersect ->
          let hi =
            match (ha, hb) with
            | Some x, Some y -> Some (min x y)
            | Some x, None | None, Some x -> Some x
            | None, None -> None
          in
          Stype.occ_of_bounds (0, hi)
        | Ast.Except -> Stype.occ_of_bounds (0, ha)
      in
      Stype.make kinds occ
    | Ast.Doc_constr c ->
      ignore (infer st env c);
      Stype.make k_doc Stype.O_one
    | Ast.Text_constr c ->
      (* an all-empty string collapses to the empty sequence *)
      ignore (infer st env c);
      Stype.make k_text Stype.O_opt
    | Ast.Elem_constr (ns, c) ->
      (match ns with
      | Ast.Computed_name ne -> ignore (infer st env ne)
      | Ast.Fixed_name _ -> ());
      ignore (infer st env c);
      Stype.make k_elem Stype.O_one
    | Ast.Attr_constr (ns, c) ->
      (match ns with
      | Ast.Computed_name ne -> ignore (infer st env ne)
      | Ast.Fixed_name _ -> ());
      ignore (infer st env c);
      Stype.make k_attr Stype.O_one
    | Ast.Step (e1, ax, test) ->
      let t1 = infer st env e1 in
      if atomic_nonempty t1 then
        err st e
          "axis step %s::%s over a provably atomic operand (%s): only nodes \
           have axes"
          (Xd_lang.Pp.axis_name ax)
          (Xd_lang.Pp.node_test_name test)
          (Stype.to_string t1);
      let occ = if Stype.is_empty t1 then Stype.O_zero else Stype.O_star in
      Stype.make (step_kinds ax test) occ
    | Ast.Fun_call (name, args) -> infer_call st env e name args
    | Ast.Execute_at x -> infer_execute_at st env x
    | Ast.Insert_node (src, _, tgt) ->
      ignore (infer st env src);
      check_update_target st env tgt;
      Stype.empty
    | Ast.Delete_node tgt ->
      check_update_target st env tgt;
      Stype.empty
    | Ast.Replace_value (tgt, v) | Ast.Rename_node (tgt, v) ->
      check_update_target st env tgt;
      ignore (infer st env v);
      Stype.empty
  in
  record st e t

and check_update_target st env tgt =
  let t = infer st env tgt in
  if atomic_nonempty t then
    err st tgt
      "update target is provably atomic (%s): updates apply to nodes only"
      (Stype.to_string t)

and infer_call st env (e : Ast.expr) name args =
  let argts = List.map (infer st env) args in
  match List.find_opt (fun f -> f.Ast.f_name = name) st.funcs with
  | Some f ->
    let fs = Hashtbl.find st.ftab name in
    (if List.length argts = List.length f.Ast.f_params then
       let params' = List.map2 Stype.join fs.params argts in
       if not (List.for_all2 Stype.equal params' fs.params) then begin
         fs.params <- params';
         st.changed <- true
       end);
    fs.result
  | None ->
    if Xd_lang.Builtin_names.is_builtin name then
      infer_builtin st e name argts
    else Stype.top

and infer_builtin st (e : Ast.expr) name argts =
  (* definite wrong-kind arguments against the typed signature: a
     node-requiring parameter fed a provably atomic, provably non-empty
     value errors on every evaluation *)
  let signature = Fn_sig.find name in
  (match signature with
  | Some s ->
    List.iteri
      (fun i t ->
        match Fn_sig.param_type s i with
        | Some (Ast.St_items (it, _)) when node_item_type it ->
          if atomic_nonempty t then
            err st e
              "wrong-kind argument %d to fn:%s: expected %s, got provably \
               atomic %s"
              (i + 1) name
              (Xd_lang.Pp.sequence_type_name (Ast.St_items (it, Ast.Occ_one)))
              (Stype.to_string t)
        | _ -> ())
      argts
  | None -> ());
  let registry_result () =
    match signature with
    | Some s -> Stype.of_seqtype s.Fn_sig.result
    | None -> Stype.top
  in
  (* sequence-polymorphic builtins: propagate the input kinds instead of
     falling back to the registry's item()* result *)
  match (name, argts) with
  | "root", [ t ] ->
    let lo, hi = Stype.occ_bounds t.Stype.occ in
    let occ =
      if hi = Some 0 then Stype.O_zero
      else if lo >= 1 then Stype.O_one
      else Stype.O_opt
    in
    Stype.make Stype.all_nodes occ
  | ("data" | "distinct-values"), [ t ] ->
    Stype.make (Stype.kinds_atomize t.Stype.kinds) t.Stype.occ
  | "reverse", [ t ] -> t
  | ("subsequence" | "remove"), t :: _ ->
    Stype.make t.Stype.kinds (Stype.occ_relax_lo t.Stype.occ)
  | "item-at", t :: _ ->
    let _, hi = Stype.occ_bounds t.Stype.occ in
    let hi = match hi with Some 0 -> Some 0 | _ -> Some 1 in
    Stype.make t.Stype.kinds (Stype.occ_of_bounds (0, hi))
  | "zero-or-one", [ t ] ->
    let lo, hi = Stype.occ_bounds t.Stype.occ in
    let hi = match hi with Some 0 -> Some 0 | _ -> Some 1 in
    Stype.make t.Stype.kinds (Stype.occ_of_bounds (lo, hi))
  | "exactly-one", [ t ] -> Stype.make t.Stype.kinds Stype.O_one
  | "one-or-more", [ t ] ->
    let _, hi = Stype.occ_bounds t.Stype.occ in
    Stype.make t.Stype.kinds (Stype.occ_of_bounds (1, hi))
  | "insert-before", [ t1; _; t3 ] ->
    Stype.make
      (Stype.kinds_join t1.Stype.kinds t3.Stype.kinds)
      (Stype.occ_add t1.Stype.occ t3.Stype.occ)
  | ("avg" | "max" | "min"), [ t ] ->
    if Stype.definitely_nonempty t then num1
    else if Stype.is_empty t then Stype.empty
    else Stype.make k_num Stype.O_opt
  | _ -> registry_result ()

and infer_execute_at st env (x : Ast.execute_at) =
  ignore (infer st env x.Ast.host);
  (* parameter expressions evaluate in the caller's frame; the body is a
     closed function over exactly its parameters (rule 27) — any other
     free variable would be a static error and types as ⊤ *)
  let body_env =
    List.fold_left
      (fun m (v, ae) -> Smap.add v (infer st env ae) m)
      Smap.empty x.Ast.params
  in
  infer st body_env x.Ast.body

(* ---- driver ----------------------------------------------------------- *)

let infer_query (q : Ast.query) : result =
  let ftab = Hashtbl.create 8 in
  List.iter
    (fun f ->
      Hashtbl.replace ftab f.Ast.f_name
        {
          params = List.map (fun _ -> Stype.bottom) f.Ast.f_params;
          result = Stype.bottom;
        })
    q.Ast.funcs;
  let st =
    {
      funcs = q.Ast.funcs;
      ftab;
      types = Hashtbl.create 64;
      changed = true;
      collect = false;
      errors = [];
    }
  in
  let pass () =
    st.changed <- false;
    ignore (infer st Smap.empty q.Ast.body);
    List.iter
      (fun f ->
        match Hashtbl.find_opt ftab f.Ast.f_name with
        | None -> ()
        | Some fs ->
          let env =
            List.fold_left2
              (fun m (v, _) t -> Smap.add v t m)
              Smap.empty f.Ast.f_params fs.params
          in
          let tb = infer st env f.Ast.f_body in
          let r' = Stype.join fs.result tb in
          if not (Stype.equal r' fs.result) then begin
            fs.result <- r';
            st.changed <- true
          end)
      q.Ast.funcs
  in
  (* the lattice is finite and all updates are joins, so this terminates
     well inside the budget; the bound is pure paranoia *)
  let budget = ref 100 in
  while st.changed && !budget > 0 do
    decr budget;
    pass ()
  done;
  st.collect <- true;
  pass ();
  { types = st.types; errors = List.rev st.errors }

(* Convenience for callers widening on single vertices. *)
let atomic_fact res = fun id -> atomic res id

(* ---- the --types dump ------------------------------------------------- *)

let rec sketch (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Literal (Ast.A_string s) -> Printf.sprintf "%S" s
  | Ast.Literal (Ast.A_int i) -> string_of_int i
  | Ast.Literal (Ast.A_float f) -> string_of_float f
  | Ast.Literal (Ast.A_bool b) -> string_of_bool b
  | Ast.Var_ref v -> "$" ^ v
  | Ast.Seq [] -> "()"
  | Ast.Seq _ -> "sequence"
  | Ast.For (v, _, _) -> "for $" ^ v
  | Ast.Let (v, _, _) -> "let $" ^ v
  | Ast.If _ -> "if"
  | Ast.Typeswitch _ -> "typeswitch"
  | Ast.Value_cmp (op, _, _) -> "op " ^ Xd_lang.Pp.value_comp_name op
  | Ast.Node_cmp (op, _, _) -> "op " ^ Xd_lang.Pp.node_comp_name op
  | Ast.Arith (op, _, _) -> "op " ^ Xd_lang.Pp.arith_op_name op
  | Ast.And _ -> "op and"
  | Ast.Or _ -> "op or"
  | Ast.Order_by (v, _, _, _) -> "for $" ^ v ^ " order by"
  | Ast.Node_set (op, _, _) -> "op " ^ Xd_lang.Pp.set_op_name op
  | Ast.Doc_constr _ -> "document { }"
  | Ast.Text_constr _ -> "text { }"
  | Ast.Elem_constr (Ast.Fixed_name n, _) -> "element " ^ n
  | Ast.Elem_constr (Ast.Computed_name _, _) -> "element { }"
  | Ast.Attr_constr (Ast.Fixed_name n, _) -> "attribute " ^ n
  | Ast.Attr_constr (Ast.Computed_name _, _) -> "attribute { }"
  | Ast.Step (_, ax, test) ->
    Xd_lang.Pp.axis_name ax ^ "::" ^ Xd_lang.Pp.node_test_name test
  | Ast.Fun_call (n, _) -> n ^ "(...)"
  | Ast.Execute_at x -> "execute at " ^ sketch x.Ast.host
  | Ast.Insert_node _ -> "insert node"
  | Ast.Delete_node _ -> "delete node"
  | Ast.Replace_value _ -> "replace value"
  | Ast.Rename_node _ -> "rename node"

let pp_dump fmt (q : Ast.query) (res : result) =
  let rec dump depth (e : Ast.expr) =
    let ty =
      match type_of res e with
      | Some t -> Stype.to_string t
      | None -> "(untyped)"
    in
    Fmt.pf fmt "%sv%d %s : %s@." (String.make (2 * depth) ' ') e.Ast.id
      (sketch e) ty;
    List.iter (dump (depth + 1)) (Ast.children e)
  in
  List.iter
    (fun f ->
      Fmt.pf fmt "function %s#%d : %s@." f.Ast.f_name
        (List.length f.Ast.f_params)
        (match type_of res f.Ast.f_body with
        | Some t -> Stype.to_string t
        | None -> "(untyped)");
      dump 1 f.Ast.f_body)
    q.Ast.funcs;
  dump 0 q.Ast.body
