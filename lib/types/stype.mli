(* The abstract sequence-type lattice: a kind set (which item kinds a
   sequence may contain) × an occurrence interval [lo, hi] with
   lo ∈ {0,1}, hi ∈ {0,1,∞}. ⊥ is the empty sequence, ⊤ is item()*.
   Finite in both components, so monotone fixpoints converge. *)

type kinds = {
  k_doc : bool;
  k_elem : bool;
  k_attr : bool;
  k_text : bool;
  k_comment : bool;
  k_pi : bool;
  k_num : bool;
  k_str : bool;
  k_bool : bool;
  k_untyped : bool;
}

val no_kinds : kinds
val all_nodes : kinds
val all_atoms : kinds
val all_kinds : kinds
val kinds_join : kinds -> kinds -> kinds
val kinds_meet : kinds -> kinds -> kinds
val kinds_has_node : kinds -> bool
val kinds_has_atom : kinds -> bool

(* Atomization: nodes become xs:untypedAtomic, atoms survive. *)
val kinds_atomize : kinds -> kinds

type occ = O_zero | O_one | O_opt | O_plus | O_star

val occ_bounds : occ -> int * int option
val occ_of_bounds : int * int option -> occ
val occ_join : occ -> occ -> occ

(* [None] when the intervals are disjoint (uninhabited occurrence). *)
val occ_meet : occ -> occ -> occ option

(* Concatenation (lengths add) and for-loop iteration (lengths multiply). *)
val occ_add : occ -> occ -> occ
val occ_mult : occ -> occ -> occ

(* Possibly-fewer items, same upper bound (filtering, subsequences). *)
val occ_relax_lo : occ -> occ

type t = private { kinds : kinds; occ : occ }

(* Smart constructor: keeps kinds and occurrence consistent (zero items ↔
   no kinds). *)
val make : kinds -> occ -> t

val empty : t
val bottom : t (* = empty: the least element *)
val top : t (* item()* *)

val join : t -> t -> t
val meet : t -> t -> t
val add : t -> t -> t (* sequence concatenation *)
val equal : t -> t -> bool
val leq : t -> t -> bool

val is_empty : t -> bool

(* No node kind possible: the sequence provably contains only atomic
   values — nothing an XRPC message copy could damage. *)
val is_atomic : t -> bool

val definitely_nonempty : t -> bool

(* Upper cardinality bound; [None] = unbounded. *)
val card_max : t -> int option

(* One item of this type (what a [for] binder sees). *)
val item_of : t -> t

val of_occurrence : Xd_lang.Ast.occurrence -> occ
val of_seqtype : Xd_lang.Ast.sequence_type -> t

(* Does a runtime value inhabit the type? The QCheck soundness harness
   asserts this for every evaluated vertex. *)
val value_inhabits : Xd_lang.Value.t -> t -> bool

val to_string : t -> string
val pp : Format.formatter -> t -> unit
