(* The abstract sequence-type lattice.

   A static type is a pair: a *kind set* (which item kinds the sequence
   may contain — the six node kinds, crossed with four atomic
   categories) and an *occurrence* abstracting the length as an interval
   [lo, hi] with lo ∈ {0,1} and hi ∈ {0, 1, ∞}. ⊥ is the empty sequence
   (no kinds, exactly zero items); ⊤ is item()*.

   Both components are finite lattices, so any monotone fixpoint over
   them converges. The payoff is the [is_atomic] predicate: a vertex
   whose kind set contains no node kind provably produces only atomic
   values, which have no identity, order or structure to lose across an
   XRPC message — the decomposer and verifier use this to skip insertion
   conditions i–iv, and the cost model uses [card_max] to bound the
   response size. *)

module Ast = Xd_lang.Ast

type kinds = {
  k_doc : bool;
  k_elem : bool;
  k_attr : bool;
  k_text : bool;
  k_comment : bool;
  k_pi : bool;
  k_num : bool; (* xs:integer and xs:double collapse into one category *)
  k_str : bool;
  k_bool : bool;
  k_untyped : bool;
}

let no_kinds =
  {
    k_doc = false;
    k_elem = false;
    k_attr = false;
    k_text = false;
    k_comment = false;
    k_pi = false;
    k_num = false;
    k_str = false;
    k_bool = false;
    k_untyped = false;
  }

let all_nodes =
  {
    no_kinds with
    k_doc = true;
    k_elem = true;
    k_attr = true;
    k_text = true;
    k_comment = true;
    k_pi = true;
  }

let all_atoms =
  { no_kinds with k_num = true; k_str = true; k_bool = true; k_untyped = true }

let all_kinds =
  {
    k_doc = true;
    k_elem = true;
    k_attr = true;
    k_text = true;
    k_comment = true;
    k_pi = true;
    k_num = true;
    k_str = true;
    k_bool = true;
    k_untyped = true;
  }

let kinds_join a b =
  {
    k_doc = a.k_doc || b.k_doc;
    k_elem = a.k_elem || b.k_elem;
    k_attr = a.k_attr || b.k_attr;
    k_text = a.k_text || b.k_text;
    k_comment = a.k_comment || b.k_comment;
    k_pi = a.k_pi || b.k_pi;
    k_num = a.k_num || b.k_num;
    k_str = a.k_str || b.k_str;
    k_bool = a.k_bool || b.k_bool;
    k_untyped = a.k_untyped || b.k_untyped;
  }

let kinds_meet a b =
  {
    k_doc = a.k_doc && b.k_doc;
    k_elem = a.k_elem && b.k_elem;
    k_attr = a.k_attr && b.k_attr;
    k_text = a.k_text && b.k_text;
    k_comment = a.k_comment && b.k_comment;
    k_pi = a.k_pi && b.k_pi;
    k_num = a.k_num && b.k_num;
    k_str = a.k_str && b.k_str;
    k_bool = a.k_bool && b.k_bool;
    k_untyped = a.k_untyped && b.k_untyped;
  }

let kinds_has_node k =
  k.k_doc || k.k_elem || k.k_attr || k.k_text || k.k_comment || k.k_pi

let kinds_has_atom k = k.k_num || k.k_str || k.k_bool || k.k_untyped

(* Atomization: nodes become xs:untypedAtomic, atoms survive. *)
let kinds_atomize k =
  let atoms = kinds_meet k all_atoms in
  if kinds_has_node k then { atoms with k_untyped = true } else atoms

(* ---- occurrence indicators -------------------------------------------- *)

type occ = O_zero | O_one | O_opt | O_plus | O_star

(* Interval view: (lo, hi) with hi = None meaning unbounded. *)
let occ_bounds = function
  | O_zero -> (0, Some 0)
  | O_one -> (1, Some 1)
  | O_opt -> (0, Some 1)
  | O_plus -> (1, None)
  | O_star -> (0, None)

let occ_of_bounds (lo, hi) =
  match (min lo 1, hi) with
  | _, Some 0 -> O_zero
  | 1, Some 1 -> O_one
  | 0, Some 1 -> O_opt
  | 1, _ -> O_plus (* any bounded hi ≥ 2 collapses to unbounded *)
  | _, _ -> O_star

let occ_join a b =
  let la, ha = occ_bounds a and lb, hb = occ_bounds b in
  let hi =
    match (ha, hb) with Some x, Some y -> Some (max x y) | _ -> None
  in
  occ_of_bounds (min la lb, hi)

(* Greatest lower bound; [None] when the intervals are disjoint (an
   impossible occurrence — the value cannot exist). *)
let occ_meet a b =
  let la, ha = occ_bounds a and lb, hb = occ_bounds b in
  let lo = max la lb in
  let hi =
    match (ha, hb) with
    | Some x, Some y -> Some (min x y)
    | Some x, None | None, Some x -> Some x
    | None, None -> None
  in
  match hi with
  | Some h when lo > h -> None
  | _ -> Some (occ_of_bounds (lo, hi))

(* Sequence concatenation: lengths add. *)
let occ_add a b =
  let la, ha = occ_bounds a and lb, hb = occ_bounds b in
  let hi =
    match (ha, hb) with Some x, Some y -> Some (x + y) | _ -> None
  in
  occ_of_bounds (la + lb, hi)

(* [for]-loop iteration: [a] bindings each produce a [b]-sequence. *)
let occ_mult a b =
  let la, ha = occ_bounds a and lb, hb = occ_bounds b in
  let hi =
    match (ha, hb) with Some x, Some y -> Some (x * y) | _, _ ->
      if ha = Some 0 || hb = Some 0 then Some 0 else None
  in
  occ_of_bounds (la * lb, hi)

(* Possibly-fewer items, same upper bound (filtering, subsequences). *)
let occ_relax_lo o =
  let _, hi = occ_bounds o in
  occ_of_bounds (0, hi)

(* ---- the sequence type ------------------------------------------------ *)

type t = { kinds : kinds; occ : occ }

(* Normalization keeps the two components consistent: zero items means no
   kinds, and no possible kinds means no possible items. *)
let make kinds occ =
  if occ = O_zero || kinds = no_kinds then
    { kinds = no_kinds; occ = O_zero }
  else { kinds; occ }

let empty = { kinds = no_kinds; occ = O_zero }
let bottom = empty
let top = { kinds = all_kinds; occ = O_star }

let join a b = make (kinds_join a.kinds b.kinds) (occ_join a.occ b.occ)

let meet a b =
  match occ_meet a.occ b.occ with
  | None -> empty
  | Some occ -> make (kinds_meet a.kinds b.kinds) occ

let add a b =
  (* concatenation: () is the unit *)
  if a.occ = O_zero then b
  else if b.occ = O_zero then a
  else make (kinds_join a.kinds b.kinds) (occ_add a.occ b.occ)

let equal (a : t) b = a = b
let leq a b = join a b = b

let is_empty t = t.occ = O_zero
let is_atomic t = not (kinds_has_node t.kinds)
let definitely_nonempty t = fst (occ_bounds t.occ) >= 1

let card_max t = snd (occ_bounds t.occ)

(* One item of this type: what a [for] binder sees. *)
let item_of t = make t.kinds O_one

(* ---- conversions ------------------------------------------------------ *)

let of_occurrence = function
  | Ast.Occ_one -> O_one
  | Ast.Occ_opt -> O_opt
  | Ast.Occ_star -> O_star
  | Ast.Occ_plus -> O_plus

let kinds_of_item_type = function
  | Ast.It_node -> all_nodes
  | Ast.It_element _ -> { no_kinds with k_elem = true }
  | Ast.It_attribute _ -> { no_kinds with k_attr = true }
  | Ast.It_text -> { no_kinds with k_text = true }
  | Ast.It_document -> { no_kinds with k_doc = true }
  | Ast.It_item -> all_kinds
  | Ast.It_atomic name -> (
    match name with
    | "xs:string" | "string" -> { no_kinds with k_str = true }
    | "xs:integer" | "integer" | "xs:int" | "xs:double" | "xs:decimal"
    | "double" | "decimal" ->
      { no_kinds with k_num = true }
    | "xs:boolean" | "boolean" -> { no_kinds with k_bool = true }
    | "xs:untypedAtomic" | "untypedAtomic" -> { no_kinds with k_untyped = true }
    | _ -> all_atoms (* xs:anyAtomicType and unknown atomic names *))

let of_seqtype = function
  | Ast.St_empty -> empty
  | Ast.St_items (it, occ) ->
    make (kinds_of_item_type it) (of_occurrence occ)

(* ---- soundness predicate ---------------------------------------------- *)

let item_inhabits (it : Xd_lang.Value.item) k =
  match it with
  | Xd_lang.Value.N n -> (
    match Xd_xml.Node.kind n with
    | Xd_xml.Node.Document -> k.k_doc
    | Xd_xml.Node.Element -> k.k_elem
    | Xd_xml.Node.Attribute -> k.k_attr
    | Xd_xml.Node.Text -> k.k_text
    | Xd_xml.Node.Comment -> k.k_comment
    | Xd_xml.Node.Pi -> k.k_pi)
  | Xd_lang.Value.A a -> (
    match a with
    | Xd_lang.Value.Integer _ | Xd_lang.Value.Double _ -> k.k_num
    | Xd_lang.Value.String _ -> k.k_str
    | Xd_lang.Value.Boolean _ -> k.k_bool
    | Xd_lang.Value.Untyped _ -> k.k_untyped)

let value_inhabits (v : Xd_lang.Value.t) t =
  let n = List.length v in
  let lo, hi = occ_bounds t.occ in
  n >= lo
  && (match hi with None -> true | Some h -> n <= h)
  && List.for_all (fun it -> item_inhabits it t.kinds) v

(* ---- pretty printing -------------------------------------------------- *)

let kind_names k =
  List.filter_map
    (fun (flag, name) -> if flag then Some name else None)
    [
      (k.k_doc, "document-node()");
      (k.k_elem, "element()");
      (k.k_attr, "attribute()");
      (k.k_text, "text()");
      (k.k_comment, "comment()");
      (k.k_pi, "processing-instruction()");
      (k.k_num, "numeric");
      (k.k_str, "string");
      (k.k_bool, "boolean");
      (k.k_untyped, "untyped");
    ]

let occ_suffix = function
  | O_zero -> "" (* unreachable through to_string *)
  | O_one -> ""
  | O_opt -> "?"
  | O_plus -> "+"
  | O_star -> "*"

let to_string t =
  if t.occ = O_zero then "empty-sequence()"
  else
    let base =
      if t.kinds = all_kinds then "item()"
      else if t.kinds = all_nodes then "node()"
      else if t.kinds = all_atoms then "anyAtomicType"
      else
        match kind_names t.kinds with
        | [ one ] -> one
        | names -> "(" ^ String.concat "|" names ^ ")"
    in
    base ^ occ_suffix t.occ

let pp fmt t = Format.pp_print_string fmt (to_string t)
