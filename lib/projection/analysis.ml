(* Compile-time projection path analysis (Section VI-A), extended from
   Marian & Siméon with reverse/horizontal axes and the root()/id()/idref()
   pseudo-steps (rules DOC1/DOC2/ROOT/ID of the paper).

   For every expression we compute the *returned* paths (nodes the value may
   contain) and accumulate two consumed sets:
     - used:        nodes needed bare, as structural anchors
                    (identity tests, counting, loop iteration);
     - value_needed: nodes whose string value / subtree is needed
                    (atomization, construction content, shipping).
   In Algorithm 1 terms, [used] feeds U and [value_needed] feeds R.

   Paths are rooted either at a fn:doc()/constructor site or at a named
   anchor. Anchors stand for XRPC function parameters and for the results
   of execute-at expressions, so the relative suffixes Urel/Rrel that the
   by-projection message format needs are simply the analysis paths rooted
   at the corresponding anchor. *)

module Ast = Xd_lang.Ast
module Smap = Map.Make (String)

type root =
  | R_doc of string * int (* literal URI, call-site vertex id *)
  | R_doc_any of int (* computed URI (wildcard) *)
  | R_constr of int (* constructor site *)
  | R_anchor of string (* parameter or execute-at result anchor *)

type apath = { root : root; steps : Path.pstep list }

let root_to_string = function
  | R_doc (u, v) -> Printf.sprintf "doc(%s::v%d)" u v
  | R_doc_any v -> Printf.sprintf "doc(*::v%d)" v
  | R_constr v -> Printf.sprintf "doc(v%d::v%d)" v v
  | R_anchor a -> Printf.sprintf "$%s" a

let apath_to_string p =
  match p.steps with
  | [] -> root_to_string p.root
  | steps ->
    root_to_string p.root ^ "/"
    ^ String.concat "/" (List.map Path.step_to_string steps)

let max_steps = 24
let max_paths = 128
let max_inline_depth = 8

(* The anchor name used for the result of an execute-at vertex. *)
let xrpc_anchor id = Printf.sprintf "#xrpc%d" id

type state = {
  mutable used : apath list;
  mutable value_needed : apath list;
  funcs : Ast.func Smap.t;
  mutable overflow : bool;
}

let add_path set p = if List.mem p set then set else p :: set

let extend st step paths =
  List.map
    (fun p ->
      if List.length p.steps >= max_steps then begin
        st.overflow <- true;
        { p with steps = p.steps }
      end
      else { p with steps = p.steps @ [ step ] })
    paths

let note_used st ps = List.iter (fun p -> st.used <- add_path st.used p) ps

let note_value st ps =
  List.iter (fun p -> st.value_needed <- add_path st.value_needed p) ps

let union a b = List.fold_left add_path a b

(* Pass-through builtins: result paths = paths of the first argument. *)
let passthrough_first =
  [ "reverse"; "zero-or-one"; "exactly-one"; "one-or-more"; "subsequence";
    "item-at"; "remove"; "distinct-nodes" ]

(* Builtins whose arguments are consumed by value (atomization). *)
let value_consumers =
  [ "string"; "data"; "number"; "concat"; "string-length"; "contains";
    "starts-with"; "ends-with"; "substring"; "string-join"; "normalize-space";
    "upper-case"; "lower-case"; "substring-before"; "substring-after"; "sum";
    "avg"; "max"; "min"; "abs"; "floor"; "ceiling"; "round";
    "distinct-values"; "deep-equal"; "error"; "boolean" ]

(* Builtins whose arguments are consumed as bare anchors. *)
let anchor_consumers =
  [ "count"; "empty"; "exists"; "not"; "name"; "local-name"; "base-uri";
    "document-uri" ]

let rec analyze st depth (env : apath list Smap.t) (e : Ast.expr) : apath list
    =
  let an env x = analyze st depth env x in
  match e.desc with
  | Ast.Literal _ -> []
  | Ast.Var_ref v -> (
    match Smap.find_opt v env with Some ps -> ps | None -> [])
  | Ast.Seq es -> List.fold_left (fun acc x -> union acc (an env x)) [] es
  | Ast.For (v, e1, e2) ->
    let p1 = an env e1 in
    note_used st p1;
    analyze st depth (Smap.add v p1 env) e2
  | Ast.Let (v, e1, e2) ->
    let p1 = an env e1 in
    analyze st depth (Smap.add v p1 env) e2
  | Ast.If (c, t, f) ->
    note_used st (an env c);
    union (an env t) (an env f)
  | Ast.Typeswitch (e0, cases, dv, dflt) ->
    let p0 = an env e0 in
    note_used st p0;
    let branch acc (v, _st, b) =
      union acc (analyze st depth (Smap.add v p0 env) b)
    in
    let acc = List.fold_left branch [] cases in
    union acc (analyze st depth (Smap.add dv p0 env) dflt)
  | Ast.Value_cmp (_, a, b) | Ast.Arith (_, a, b) ->
    note_value st (an env a);
    note_value st (an env b);
    []
  | Ast.Node_cmp (_, a, b) ->
    note_used st (an env a);
    note_used st (an env b);
    []
  | Ast.And (a, b) | Ast.Or (a, b) ->
    note_used st (an env a);
    note_used st (an env b);
    []
  | Ast.Order_by (v, e1, specs, body) ->
    let p1 = an env e1 in
    note_used st p1;
    let env' = Smap.add v p1 env in
    List.iter (fun (s, _) -> note_value st (analyze st depth env' s)) specs;
    analyze st depth env' body
  | Ast.Node_set (_, a, b) -> union (an env a) (an env b)
  | Ast.Doc_constr c | Ast.Text_constr c ->
    note_value st (an env c);
    [ { root = R_constr e.id; steps = [] } ]
  | Ast.Elem_constr (ns, c) | Ast.Attr_constr (ns, c) ->
    (match ns with
    | Ast.Computed_name n -> note_value st (an env n)
    | Ast.Fixed_name _ -> ());
    note_value st (an env c);
    [ { root = R_constr e.id; steps = [] } ]
  | Ast.Step (e1, axis, test) ->
    let p1 = an env e1 in
    (* for a forward step the context nodes are ancestors of the result and
       are kept implicitly; reverse/horizontal steps navigate away from the
       context, so the context nodes must be kept explicitly *)
    (match Ast.classify_axis axis with
    | Ast.Rev | Ast.Hor -> note_used st p1
    | Ast.Fwd -> ());
    extend st (Path.Axis (axis, test)) p1
  | Ast.Execute_at x ->
    note_value st (an env x.host);
    (* Parameters are *not* consumed wholesale: only the parts the remote
       body touches need to travel. Analyzing the body with parameters
       bound to their argument paths propagates the remote demands back to
       the argument roots — this is what makes the request projection of
       the paper's experiment ship only $t/attribute::id. The body's own
       returned paths stay at the callee (the response projection is
       driven by the caller's use of the result anchor). *)
    let param_env =
      List.fold_left
        (fun m (v, pe) -> Smap.add v (an env pe) m)
        Smap.empty x.params
    in
    let _body_returned = analyze st depth param_env x.body in
    [ { root = R_anchor (xrpc_anchor e.id); steps = [] } ]
  | Ast.Fun_call (name, args) -> analyze_call st depth env e name args
  | Ast.Insert_node (src, _, tgt) ->
    (* inserted content is copied (value-needed); the target is a bare
       anchor the rebuild walks from *)
    note_value st (an env src);
    note_used st (an env tgt);
    []
  | Ast.Delete_node tgt ->
    note_used st (an env tgt);
    []
  | Ast.Replace_value (tgt, v) | Ast.Rename_node (tgt, v) ->
    note_used st (an env tgt);
    note_value st (an env v);
    []

and analyze_call st depth env e name args =
  let an x = analyze st depth env x in
  match (name, args) with
  | ("doc" | "collection"), [ { desc = Ast.Literal (Ast.A_string u); _ } ] ->
    [ { root = R_doc (u, e.Ast.id); steps = [] } ]
  | ("doc" | "collection"), args ->
    List.iter (fun a -> note_value st (an a)) args;
    [ { root = R_doc_any e.Ast.id; steps = [] } ]
  | "root", [ a ] -> extend st Path.Root_fn (an a)
  | "id", [ vals; ctx ] ->
    note_value st (an vals);
    extend st Path.Id_fn (an ctx)
  | "idref", [ vals; ctx ] ->
    note_value st (an vals);
    extend st Path.Idref_fn (an ctx)
  | "insert-before", [ a; pos; b ] ->
    note_value st (an pos);
    union (an a) (an b)
  | _ when List.mem name passthrough_first -> (
    match args with
    | [] -> []
    | first :: rest ->
      List.iter (fun a -> note_value st (an a)) rest;
      an first)
  | _ when List.mem name value_consumers ->
    List.iter (fun a -> note_value st (an a)) args;
    []
  | _ when List.mem name anchor_consumers ->
    List.iter (fun a -> note_used st (an a)) args;
    []
  | ( ("true" | "false" | "static-base-uri" | "default-collation"
      | "current-dateTime"),
      _ ) ->
    []
  | _ -> (
    (* user-defined function: inline-analyze its body with parameters bound
       to the argument paths; recursion / excessive depth degrades to the
       conservative "ship everything reachable" approximation. *)
    match Smap.find_opt name st.funcs with
    | Some f when depth < max_inline_depth ->
      let env' =
        List.fold_left2
          (fun acc (v, _ty) arg -> Smap.add v (an arg) acc)
          Smap.empty f.Ast.f_params args
      in
      analyze st (depth + 1) env' f.Ast.f_body
    | _ ->
      st.overflow <- true;
      let arg_paths = List.concat_map an args in
      note_value st arg_paths;
      let deep =
        extend st (Path.Axis (Ast.Descendant_or_self, Ast.Kind_node)) arg_paths
      in
      note_value st deep;
      union arg_paths deep)

type result = {
  returned : apath list;
  used : apath list;
  value_needed : apath list;
  overflow : bool;
}

let run ~funcs ~env expr =
  let fmap =
    List.fold_left (fun m f -> Smap.add f.Ast.f_name f m) Smap.empty funcs
  in
  let st = { used = []; value_needed = []; funcs = fmap; overflow = false } in
  let env =
    List.fold_left (fun m (v, ps) -> Smap.add v ps m) Smap.empty env
  in
  let returned = analyze st 0 env expr in
  let clip l = if List.length l > max_paths then (st.overflow <- true; l) else l in
  {
    returned = clip returned;
    used = clip st.used;
    value_needed = clip st.value_needed;
    overflow = st.overflow;
  }

(* Suffixes of paths rooted at a given anchor. *)
let suffixes_at anchor paths =
  List.filter_map
    (fun p ->
      match p.root with
      | R_anchor a when a = anchor -> Some p.steps
      | _ -> None)
    paths
  |> List.sort_uniq compare

(* Used/returned relative paths for an anchor, per the allSuffixes scheme:
   U from [used], R from [value_needed] plus [returned]. *)
let relative_paths (r : result) anchor =
  let u = suffixes_at anchor r.used in
  let ret = suffixes_at anchor (r.value_needed @ r.returned) in
  (u, ret)
