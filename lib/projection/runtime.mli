(** Runtime XML projection — Algorithm 1 of the paper.

    Inputs are the *materialized* used and returned node sets (from
    evaluating relative projection paths on actual parameter/result
    sequences), which is what makes the runtime technique more precise
    than compile-time projection: selections have already pruned the
    context. The traversal is top-down over the pre-order array with O(1)
    subtree skipping. *)

type projected = {
  doc : Xd_xml.Doc.t;  (** unregistered projected document ([did = -1]) *)
  map : (int, int) Hashtbl.t;  (** original tree index → projected index *)
  content_root : int;  (** projected index of the (possibly trimmed) root *)
  orig_content_root : int;
  kept : int;  (** number of original tree nodes kept *)
}

val tree_index : Xd_xml.Node.t -> int

val project :
  ?schema:(string -> string list) ->
  ?trim_lca:bool ->
  used:Xd_xml.Node.t list ->
  returned:Xd_xml.Node.t list ->
  Xd_xml.Doc.t ->
  projected
(** Project one document. Used nodes are kept bare, returned nodes with
    their whole subtree, plus all ancestors. [schema name] returns the
    mandatory (minOccurs ≥ 1) child element names kept by the
    schema-aware variant. [trim_lca] (default true) applies the paper's
    post-processing — descend to the lowest common ancestor of the
    projection nodes; pass [false] for root-anchored load-and-query
    baselines. The index [map] is what the XRPC marshaller uses to emit
    fragid/nodeid references. *)

val group_by_doc :
  Xd_xml.Node.t list -> (Xd_xml.Doc.t * Xd_xml.Node.t list) list
