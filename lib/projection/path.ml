(* Projection paths (Table V): forward, reverse and horizontal axis steps
   plus the root()/id()/idref() pseudo-steps. A path here is a *relative*
   suffix — the form shipped inside XRPC messages and evaluated at runtime
   against a materialized context sequence. The empty path (printed ".")
   denotes the context itself. *)

module Ast = Xd_lang.Ast
module X = Xd_xml

type pstep =
  | Axis of Ast.axis * Ast.node_test
  | Root_fn
  | Id_fn
  | Idref_fn

type t = pstep list

let empty : t = []

exception Parse_error of string

(* ---- printing ----------------------------------------------------------- *)

let step_to_string = function
  | Axis (axis, test) ->
    Printf.sprintf "%s::%s" (Xd_lang.Pp.axis_name axis)
      (Xd_lang.Pp.node_test_name test)
  | Root_fn -> "root()"
  | Id_fn -> "id()"
  | Idref_fn -> "idref()"

let to_string = function
  | [] -> "."
  | steps -> String.concat "/" (List.map step_to_string steps)

(* ---- parsing ------------------------------------------------------------ *)

let axis_of_string s =
  match s with
  | "child" -> Ast.Child
  | "descendant" -> Ast.Descendant
  | "descendant-or-self" -> Ast.Descendant_or_self
  | "self" -> Ast.Self
  | "attribute" -> Ast.Attribute
  | "parent" -> Ast.Parent
  | "ancestor" -> Ast.Ancestor
  | "ancestor-or-self" -> Ast.Ancestor_or_self
  | "following" -> Ast.Following
  | "following-sibling" -> Ast.Following_sibling
  | "preceding" -> Ast.Preceding
  | "preceding-sibling" -> Ast.Preceding_sibling
  | _ -> raise (Parse_error ("unknown axis " ^ s))

let test_of_string s =
  match s with
  | "*" -> Ast.Wildcard
  | "node()" -> Ast.Kind_node
  | "text()" -> Ast.Kind_text
  | "comment()" -> Ast.Kind_comment
  | "element()" -> Ast.Kind_element None
  | "attribute()" -> Ast.Kind_attribute None
  | s -> Ast.Name_test s

let step_of_string s =
  match s with
  | "root()" -> Root_fn
  | "id()" -> Id_fn
  | "idref()" -> Idref_fn
  | _ -> (
    match String.index_opt s ':' with
    | Some i
      when i + 1 < String.length s && s.[i + 1] = ':' ->
      let axis = String.sub s 0 i in
      let test = String.sub s (i + 2) (String.length s - i - 2) in
      Axis (axis_of_string axis, test_of_string test)
    | _ -> raise (Parse_error ("malformed projection step " ^ s)))

let of_string s =
  if s = "." || s = "" then []
  else List.map step_of_string (String.split_on_char '/' s)

(* ---- evaluation ----------------------------------------------------------

   Relative paths are evaluated with the plain axis machinery; the
   pseudo-steps root()/id()/idref() follow Section VI-B: id()/idref()
   conservatively select all elements carrying an ID/IDREF attribute in the
   context documents (the value argument is unknown to the path
   abstraction). *)

let id_like_elements names n =
  let root = X.Node.root n in
  List.filter
    (fun e ->
      X.Node.kind e = X.Node.Element
      && List.exists (fun a -> List.mem (X.Node.name a) names) (X.Node.attributes e))
    (X.Node.descendant_or_self root)

let eval_step_on ctx = function
  | Axis (axis, test) -> Xd_lang.Eval.eval_step axis test ctx
  | Root_fn -> X.Seq_ops.sort_dedup (List.map X.Node.root ctx)
  | Id_fn ->
    X.Seq_ops.sort_dedup
      (List.concat_map (id_like_elements [ "id"; "xml:id" ]) ctx)
  | Idref_fn ->
    X.Seq_ops.sort_dedup
      (List.concat_map (id_like_elements [ "idref"; "idrefs" ]) ctx)

let eval (path : t) (ctx : X.Node.t list) : X.Node.t list =
  List.fold_left eval_step_on (X.Seq_ops.sort_dedup ctx) path
