(** Compile-time projection path analysis (Section VI-A), extended from
    Marian & Siméon with reverse/horizontal axes and the
    root()/id()/idref() pseudo-steps (rules DOC1/DOC2/ROOT/ID).

    For every expression the analysis computes the {e returned} paths
    (nodes the value may contain) and accumulates two consumed sets:
    {e used} (nodes needed bare, as structural anchors: identity tests,
    counting, loop iteration) and {e value_needed} (nodes whose subtree is
    needed: atomization, construction, shipping). In Algorithm 1 terms,
    [used] feeds U and [value_needed] feeds R.

    Paths are rooted at fn:doc()/constructor sites or at named {e anchors}
    standing for XRPC function parameters and execute-at results, so the
    relative suffixes Urel/Rrel the by-projection messages need are simply
    the analysis paths rooted at the corresponding anchor. *)

type root =
  | R_doc of string * int  (** literal URI, call-site vertex id *)
  | R_doc_any of int  (** computed URI *)
  | R_constr of int  (** constructor site *)
  | R_anchor of string  (** parameter or execute-at result anchor *)

type apath = { root : root; steps : Path.pstep list }

val root_to_string : root -> string
val apath_to_string : apath -> string

val max_steps : int
val max_paths : int
val max_inline_depth : int

val xrpc_anchor : int -> string
(** Anchor name for the result of the execute-at vertex with this id. *)

val value_consumers : string list
(** Builtins whose arguments are consumed by value (atomized). Shared with
    distributed code motion. *)

type result = {
  returned : apath list;
  used : apath list;
  value_needed : apath list;
  overflow : bool;
      (** true when the analysis degraded (recursion, path blow-up); the
          runtime then falls back to shipping full subtrees *)
}

val run :
  funcs:Xd_lang.Ast.func list ->
  env:(string * apath list) list ->
  Xd_lang.Ast.expr ->
  result

val suffixes_at : string -> apath list -> Path.pstep list list

val relative_paths : result -> string -> Path.t list * Path.t list
(** [(Urel, Rrel)] for an anchor: U from [used], R from [value_needed] and
    [returned]. *)
