(* Compile-time projection baseline (Marian & Siméon style), used by the
   Fig. 10 / Fig. 11 precision comparison. Absolute projection paths are
   evaluated from the document root without any knowledge of runtime
   selections, then the same core projection (Algorithm 1) is applied. The
   runtime technique starts instead from the materialized, already-filtered
   context — hence its higher precision. *)

module X = Xd_xml

(* Evaluate an absolute path (a relative path anchored at the document
   node) on a document. *)
let eval_absolute (p : Path.t) (d : X.Doc.t) =
  Path.eval p [ X.Node.doc_node d ]

let project ?schema ~used_paths ~returned_paths (d : X.Doc.t) =
  let used = List.concat_map (fun p -> eval_absolute p d) used_paths in
  let returned = List.concat_map (fun p -> eval_absolute p d) returned_paths in
  (* no LCA trimming: the projected document is re-loaded and queried with
     root-anchored paths, so the ancestor chain from the root must stay *)
  Runtime.project ?schema ~trim_lca:false ~used ~returned d
