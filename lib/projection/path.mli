(** Projection paths (the paper's Table V grammar): forward, reverse and
    horizontal axis steps plus the root()/id()/idref() pseudo-steps.

    A value of this type is a *relative* suffix — the form shipped inside
    by-projection XRPC messages and evaluated at runtime against a
    materialized context sequence. The empty path (printed ".") denotes
    the context itself. *)

type pstep =
  | Axis of Xd_lang.Ast.axis * Xd_lang.Ast.node_test
  | Root_fn
  | Id_fn
  | Idref_fn

type t = pstep list

val empty : t

exception Parse_error of string

val step_to_string : pstep -> string
val to_string : t -> string
val of_string : string -> t
(** Inverse of {!to_string}. @raise Parse_error on malformed input. *)

val eval : t -> Xd_xml.Node.t list -> Xd_xml.Node.t list
(** Evaluate on a context sequence with the ordinary axis machinery.
    Per Section VI-B, id()/idref() conservatively select all elements
    carrying an ID/IDREF attribute in the context documents (the value
    argument is unknown to the path abstraction). *)
