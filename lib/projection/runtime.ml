(* Runtime XML projection — Algorithm 1 of the paper.

   Inputs are the *materialized* used and returned node sets (obtained by
   evaluating relative projection paths on actual parameter/result
   sequences), which is what makes the runtime technique more precise than
   compile-time projection: selections have already pruned the context.

   The traversal is top-down over the pre-order array; subtrees containing
   no projection node are skipped in O(1) thanks to the pre/size encoding.
   Post-processing trims the result to the lowest common ancestor of the
   projection nodes. The function also returns the original→projected
   index mapping, which the XRPC marshaller needs to emit fragid/nodeid
   references. *)

module X = Xd_xml

type projected = {
  doc : X.Doc.t; (* unregistered (did = -1) projected document *)
  map : (int, int) Hashtbl.t; (* original tree index -> projected index *)
  content_root : int; (* projected index of the trimmed root *)
  orig_content_root : int; (* original index of the trimmed root *)
  kept : int; (* number of original tree nodes kept *)
}

(* Normalize a projection node: attribute nodes are represented by their
   owner element (attributes travel with their element). *)
let tree_index n = X.Node.index n

(* [trim_lca] applies the paper's post-processing (lines 24-27 of
   Algorithm 1): descend to the lowest common ancestor of the projection
   nodes. Right for message fragments, whose references are relative; wrong
   for load-and-query baselines that re-run root-anchored paths — those
   pass [~trim_lca:false]. *)
let project ?schema ?(trim_lca = true) ~used ~returned (d : X.Doc.t) :
    projected =
  let n = X.Doc.n_nodes d in
  let used_idx =
    List.filter_map
      (fun nd ->
        if nd.X.Node.doc == d || nd.X.Node.doc.X.Doc.did = d.X.Doc.did then
          Some (tree_index nd)
        else None)
      used
  in
  let ret_idx =
    List.filter_map
      (fun nd ->
        if nd.X.Node.doc == d || nd.X.Node.doc.X.Doc.did = d.X.Doc.did then
          Some (tree_index nd)
        else None)
      returned
  in
  let is_returned = Array.make n false in
  List.iter (fun i -> is_returned.(i) <- true) ret_idx;
  let proj = List.sort_uniq compare (used_idx @ ret_idx) in
  let keep = Array.make n false in
  (* Algorithm 1 main loop. [cur] walks the document, [ps] the sorted
     projection nodes. *)
  let rec loop cur ps =
    match ps with
    | [] -> ()
    | p :: rest ->
      if cur >= n then ()
      else if p > cur && p <= cur + d.X.Doc.size.(cur) then begin
        (* proj is a strict descendant of cur: keep cur, descend *)
        keep.(cur) <- true;
        loop (cur + 1) ps
      end
      else if p = cur then
        if is_returned.(cur) then begin
          (* returned: keep the whole subtree, skip past it *)
          for i = cur to cur + d.X.Doc.size.(cur) do
            keep.(i) <- true
          done;
          let stop = cur + d.X.Doc.size.(cur) in
          let rest = List.filter (fun q -> q > stop) rest in
          loop (stop + 1) rest
        end
        else begin
          keep.(cur) <- true;
          loop (cur + 1) rest
        end
      else
        (* proj not in the subtree of cur: skip the subtree *)
        loop (cur + d.X.Doc.size.(cur) + 1) ps
  in
  loop 0 proj;
  (* schema awareness: minOccurs>=1 children of kept elements must stay.
     [schema name] returns the mandatory child element names of [name]. *)
  (match schema with
  | None -> ()
  | Some mandatory ->
    (* one forward pass suffices: children have larger indices, and newly
       kept children are processed later in the same pass *)
    for i = 0 to n - 1 do
      if keep.(i) && d.X.Doc.kind.(i) = X.Doc.Element then begin
        let wanted = mandatory d.X.Doc.name.(i) in
        if wanted <> [] then begin
          let stop = i + d.X.Doc.size.(i) in
          let j = ref (i + 1) in
          while !j <= stop do
            if
              d.X.Doc.kind.(!j) = X.Doc.Element
              && List.mem d.X.Doc.name.(!j) wanted
            then
              (* keep the mandatory child with its whole content — an
                 emptied element would not validate either *)
              for k = !j to !j + d.X.Doc.size.(!j) do
                keep.(k) <- true
              done;
            j := !j + d.X.Doc.size.(!j) + 1
          done
        end
      end
    done);
  (* post-processing: trim to the lowest common ancestor — descend while the
     current root has exactly one kept child and is not itself a projection
     node. *)
  let is_proj = Array.make n false in
  List.iter (fun i -> is_proj.(i) <- true) proj;
  let kept_children i =
    let stop = i + d.X.Doc.size.(i) in
    let acc = ref [] in
    let j = ref (i + 1) in
    while !j <= stop do
      if keep.(!j) then acc := !j :: !acc;
      j := !j + d.X.Doc.size.(!j) + 1
    done;
    List.rev !acc
  in
  let rec find_root i =
    if is_proj.(i) then i
    else
      match kept_children i with
      | [ c ] -> find_root c
      | _ -> i
  in
  let root = if trim_lca && keep.(0) then find_root 0 else 0 in
  (* build the projected document, recording the index mapping *)
  let b = X.Doc.Builder.create ?uri:(X.Doc.uri d) () in
  let map = Hashtbl.create 64 in
  let count = ref 0 in
  let next_proj_index = ref 1 (* builder index 0 is the document node *) in
  let rec emit i =
    if keep.(i) then begin
      incr count;
      Hashtbl.replace map i !next_proj_index;
      incr next_proj_index;
      match d.X.Doc.kind.(i) with
      | X.Doc.Element ->
        let attrs =
          match d.X.Doc.attr_first.(i) with
          | -1 -> []
          | first ->
            List.init d.X.Doc.attr_count.(i) (fun k ->
                (d.X.Doc.attr_name.(first + k), d.X.Doc.attr_value.(first + k)))
        in
        X.Doc.Builder.start_element b d.X.Doc.name.(i) attrs;
        emit_children i;
        X.Doc.Builder.end_element b
      | X.Doc.Text -> X.Doc.Builder.text b d.X.Doc.value.(i)
      | X.Doc.Comment -> X.Doc.Builder.comment b d.X.Doc.value.(i)
      | X.Doc.Pi -> X.Doc.Builder.pi b d.X.Doc.name.(i) d.X.Doc.value.(i)
      | X.Doc.Document ->
        decr next_proj_index;
        Hashtbl.replace map i 0;
        emit_children i
    end
  and emit_children i =
    let stop = i + d.X.Doc.size.(i) in
    let j = ref (i + 1) in
    while !j <= stop do
      emit !j;
      j := !j + d.X.Doc.size.(!j) + 1
    done
  in
  if proj <> [] && keep.(root) then emit root;
  let pdoc = X.Doc.Builder.finish b in
  {
    doc = pdoc;
    map;
    content_root = (match Hashtbl.find_opt map root with Some r -> r | None -> 0);
    orig_content_root = root;
    kept = !count;
  }

(* Convenience: group a mixed node set by document and project each. *)
let group_by_doc nodes =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun nd ->
      let d = nd.X.Node.doc in
      let key = d.X.Doc.did in
      let cur = Option.value ~default:(d, []) (Hashtbl.find_opt tbl key) in
      Hashtbl.replace tbl key (d, nd :: snd cur))
    nodes;
  Hashtbl.fold (fun _ (d, ns) acc -> (d, List.rev ns) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a.X.Doc.did b.X.Doc.did)
