(** Compile-time projection baseline (Marian & Siméon style) for the
    Fig. 10 / Fig. 11 precision comparison: absolute projection paths are
    evaluated from the document root, selection-blind, then the same core
    projection is applied (without LCA trimming, as the result is
    re-queried with root-anchored paths). *)

val eval_absolute : Path.t -> Xd_xml.Doc.t -> Xd_xml.Node.t list

val project :
  ?schema:(string -> string list) ->
  used_paths:Path.t list ->
  returned_paths:Path.t list ->
  Xd_xml.Doc.t ->
  Runtime.projected
