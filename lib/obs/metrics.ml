(* Named counters / gauges / histograms behind a single registry.

   Registration is idempotent per (name, kind): components grab handles
   at construction time, drivers [reset] between runs, and the dump is
   sorted so tests can pin it. *)

type counter = { mutable c : int }
type gauge = { mutable g : float }

type histogram = {
  bounds : float array; (* strictly increasing, +inf excluded *)
  counts : int array; (* per-bucket (non-cumulative); last = +inf *)
  mutable sum : float;
  mutable n : int;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = { tbl : (string, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let register t name want make =
  match Hashtbl.find_opt t.tbl name with
  | Some m ->
      if kind_name m <> want then
        invalid_arg
          (Printf.sprintf "Metrics: %S is a %s, not a %s" name (kind_name m)
             want);
      m
  | None ->
      let m = make () in
      Hashtbl.replace t.tbl name m;
      m

let counter t name =
  match register t name "counter" (fun () -> Counter { c = 0 }) with
  | Counter c -> c
  | _ -> assert false

let incr ?(by = 1) c = c.c <- c.c + by
let counter_value c = c.c

let gauge t name =
  match register t name "gauge" (fun () -> Gauge { g = 0. }) with
  | Gauge g -> g
  | _ -> assert false

let set g v = g.g <- v
let add g v = g.g <- g.g +. v
let gauge_value g = g.g

let default_buckets =
  [ 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.; 10. ]

let histogram ?(buckets = default_buckets) t name =
  let make () =
    let bounds = Array.of_list (List.sort_uniq compare buckets) in
    Histogram
      { bounds; counts = Array.make (Array.length bounds + 1) 0; sum = 0.; n = 0 }
  in
  match register t name "histogram" make with
  | Histogram h -> h
  | _ -> assert false

let observe h v =
  let rec bucket i =
    if i >= Array.length h.bounds then i
    else if v <= h.bounds.(i) then i
    else bucket (i + 1)
  in
  let i = bucket 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.sum <- h.sum +. v;
  h.n <- h.n + 1

let hist_count h = h.n
let hist_sum h = h.sum

let hist_buckets h =
  let acc = ref 0 in
  let cum =
    Array.mapi
      (fun i n ->
        acc := !acc + n;
        let bound =
          if i < Array.length h.bounds then h.bounds.(i) else infinity
        in
        (bound, !acc))
      h.counts
  in
  Array.to_list cum

let reset t =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> c.c <- 0
      | Gauge g -> g.g <- 0.
      | Histogram h ->
          Array.fill h.counts 0 (Array.length h.counts) 0;
          h.sum <- 0.;
          h.n <- 0)
    t.tbl

let names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl [] |> List.sort compare

let pp_bound ppf b =
  if b = infinity then Format.pp_print_string ppf "inf"
  else Format.fprintf ppf "le%g" b

let dump ppf t =
  names t
  |> List.iter (fun name ->
         match Hashtbl.find t.tbl name with
         | Counter c -> Format.fprintf ppf "counter    %s = %d@." name c.c
         | Gauge g -> Format.fprintf ppf "gauge      %s = %.6f@." name g.g
         | Histogram h ->
             Format.fprintf ppf "histogram  %s count=%d sum=%.6f |" name h.n
               h.sum;
             List.iter
               (fun (b, n) -> Format.fprintf ppf " %a:%d" pp_bound b n)
               (hist_buckets h);
             Format.fprintf ppf "@.")
