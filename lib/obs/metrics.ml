(* Named counters / gauges / histograms behind a single registry.

   Registration is idempotent per (name, kind): components grab handles
   at construction time, drivers [reset] between runs, and the dump is
   sorted so tests can pin it. *)

type counter = { mutable c : int }
type gauge = { mutable g : float }

type histogram = {
  bounds : float array; (* strictly increasing, +inf excluded *)
  counts : int array; (* per-bucket (non-cumulative); last = +inf *)
  mutable sum : float;
  mutable n : int;
  (* exemplar: the extreme (max) observation seen since the last reset,
     together with the trace id that produced it — the hook that links a
     p99 outlier in an exposition back to its trace. *)
  mutable ex_value : float;
  mutable ex_trace : string option;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = { tbl : (string, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let register t name want make =
  match Hashtbl.find_opt t.tbl name with
  | Some m ->
      if kind_name m <> want then
        invalid_arg
          (Printf.sprintf "Metrics: %S is a %s, not a %s" name (kind_name m)
             want);
      m
  | None ->
      let m = make () in
      Hashtbl.replace t.tbl name m;
      m

let counter t name =
  match register t name "counter" (fun () -> Counter { c = 0 }) with
  | Counter c -> c
  | _ -> assert false

let incr ?(by = 1) c = c.c <- c.c + by
let counter_value c = c.c

let gauge t name =
  match register t name "gauge" (fun () -> Gauge { g = 0. }) with
  | Gauge g -> g
  | _ -> assert false

let set g v = g.g <- v
let add g v = g.g <- g.g +. v
let gauge_value g = g.g

let default_buckets =
  [ 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.; 10. ]

let histogram ?(buckets = default_buckets) t name =
  let make () =
    let bounds = Array.of_list (List.sort_uniq compare buckets) in
    Histogram
      {
        bounds;
        counts = Array.make (Array.length bounds + 1) 0;
        sum = 0.;
        n = 0;
        ex_value = neg_infinity;
        ex_trace = None;
      }
  in
  match register t name "histogram" make with
  | Histogram h -> h
  | _ -> assert false

let observe ?exemplar h v =
  let rec bucket i =
    if i >= Array.length h.bounds then i
    else if v <= h.bounds.(i) then i
    else bucket (i + 1)
  in
  let i = bucket 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.sum <- h.sum +. v;
  h.n <- h.n + 1;
  match exemplar with
  | Some tid when v >= h.ex_value ->
      h.ex_value <- v;
      h.ex_trace <- Some tid
  | _ -> ()

let exemplar h =
  match h.ex_trace with None -> None | Some tid -> Some (tid, h.ex_value)

let hist_count h = h.n
let hist_sum h = h.sum

let hist_buckets h =
  let acc = ref 0 in
  let cum =
    Array.mapi
      (fun i n ->
        acc := !acc + n;
        let bound =
          if i < Array.length h.bounds then h.bounds.(i) else infinity
        in
        (bound, !acc))
      h.counts
  in
  Array.to_list cum

let reset t =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> c.c <- 0
      | Gauge g -> g.g <- 0.
      | Histogram h ->
          Array.fill h.counts 0 (Array.length h.counts) 0;
          h.sum <- 0.;
          h.n <- 0;
          h.ex_value <- neg_infinity;
          h.ex_trace <- None)
    t.tbl

let names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl [] |> List.sort compare

let pp_bound ppf b =
  if b = infinity then Format.pp_print_string ppf "inf"
  else Format.fprintf ppf "le%g" b

let dump ppf t =
  names t
  |> List.iter (fun name ->
         match Hashtbl.find t.tbl name with
         | Counter c -> Format.fprintf ppf "counter    %s = %d@." name c.c
         | Gauge g -> Format.fprintf ppf "gauge      %s = %.6f@." name g.g
         | Histogram h ->
             Format.fprintf ppf "histogram  %s count=%d sum=%.6f |" name h.n
               h.sum;
             List.iter
               (fun (b, n) -> Format.fprintf ppf " %a:%d" pp_bound b n)
               (hist_buckets h);
             Format.fprintf ppf "@.")

(* ---- Prometheus text exposition ----------------------------------------

   Registry names are dotted and may carry a label suffix in the
   [name{key=value}] form that the labeled-metric helpers use
   (e.g. [xrpc.peer_up{peer=hostA}]). The exposition sanitizes the base
   name (dots become underscores), turns the suffix into proper
   Prometheus labels, renders histograms as cumulative [_bucket]/[_sum]/
   [_count] series, and appends the exemplar (OpenMetrics style) to the
   [+Inf] bucket so an outlier links back to its trace. *)

let prom_name s =
  String.map
    (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':') as c -> c | _ -> '_')
    s

(* Split ["name{k=v,k2=v2}"] into the sanitized base name and its label
   pairs; names without a suffix get no labels. *)
let split_labels name =
  match String.index_opt name '{' with
  | None -> (prom_name name, [])
  | Some i ->
      let base = String.sub name 0 i in
      let rest = String.sub name (i + 1) (String.length name - i - 1) in
      let rest =
        match String.rindex_opt rest '}' with
        | Some j -> String.sub rest 0 j
        | None -> rest
      in
      let labels =
        String.split_on_char ',' rest
        |> List.filter_map (fun kv ->
               match String.index_opt kv '=' with
               | None -> None
               | Some e ->
                   Some
                     ( prom_name (String.sub kv 0 e),
                       String.sub kv (e + 1) (String.length kv - e - 1) ))
      in
      (prom_name base, labels)

let prom_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prom_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> k ^ "=\"" ^ prom_escape v ^ "\"") labels)
      ^ "}"

let prom_float f =
  if Float.is_nan f then "NaN"
  else if f = infinity then "+Inf"
  else if f = neg_infinity then "-Inf"
  else Printf.sprintf "%.9g" f

let prom ppf t =
  let last_type = ref "" in
  let emit_type base kind =
    let key = base ^ "/" ^ kind in
    if !last_type <> key then begin
      last_type := key;
      Format.fprintf ppf "# TYPE %s %s@." base kind
    end
  in
  names t
  |> List.iter (fun name ->
         let base, labels = split_labels name in
         match Hashtbl.find t.tbl name with
         | Counter c ->
             emit_type base "counter";
             Format.fprintf ppf "%s%s %d@." base (prom_labels labels) c.c
         | Gauge g ->
             emit_type base "gauge";
             Format.fprintf ppf "%s%s %s@." base (prom_labels labels)
               (prom_float g.g)
         | Histogram h ->
             emit_type base "histogram";
             List.iter
               (fun (bound, cum) ->
                 let le = ("le", prom_float bound) in
                 let ex =
                   (* exemplar rides the +Inf bucket: the one bucket every
                      observation (the extreme included) falls under *)
                   if bound = infinity then
                     match exemplar h with
                     | Some (tid, v) ->
                         Printf.sprintf " # {trace_id=\"%s\"} %s"
                           (prom_escape tid) (prom_float v)
                     | None -> ""
                   else ""
                 in
                 Format.fprintf ppf "%s_bucket%s %d%s@." base
                   (prom_labels (labels @ [ le ]))
                   cum ex)
               (hist_buckets h);
             Format.fprintf ppf "%s_sum%s %s@." base (prom_labels labels)
               (prom_float h.sum);
             Format.fprintf ppf "%s_count%s %d@." base (prom_labels labels)
               h.n)
