(* Nearest-rank percentiles, shared by the bench harness and the
   --explain report so p50/p95/p99 mean the same thing everywhere. *)

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.
  | n ->
      let idx = int_of_float (Float.ceil (p /. 100. *. float_of_int n)) - 1 in
      sorted.(max 0 (min (n - 1) idx))

let of_list xs p =
  let sorted = Array.of_list xs in
  Array.sort compare sorted;
  percentile sorted p
