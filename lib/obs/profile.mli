(** Per-plan-vertex profile folded from a finished span tree.

    Client call spans carry a [vertex] attribute (the execute-at body's
    d-graph vertex id — the same key the cost model's per-vertex
    estimates use); every other span is attributed to its nearest
    ancestor carrying one, across peers via the [<trace>] header
    linkage. Spans with no such ancestor (root, local evaluation, the
    data-shipping client's document fetches) fold into
    {!local_vertex}.

    Time buckets come from the [busy_s] attributes the runtime stamps on
    its accounting regions — the exact Stats deltas — so
    {!totals}.[serialize_s]/[shred_s]/[remote_s]/[bytes]/[calls]/
    [fallbacks] reconcile with the registry totals to float rounding.
    [wire_s] and [server_s] are span intervals and informational. *)

type row = {
  vertex : int;
  mutable serialize_s : float;
  mutable shred_s : float;
  mutable remote_s : float;  (** self remote-exec time (nested removed) *)
  mutable wire_s : float;  (** sim-clock interval of network spans *)
  mutable server_s : float;  (** wall interval of server handle spans *)
  mutable queue_wait_s : float;  (** admission-queue delay charged *)
  mutable bytes : int;  (** wire bytes billed inside network spans *)
  mutable calls : int;
  mutable retries : int;
  mutable timeouts : int;
  mutable fallbacks : int;  (** degradations to data shipping *)
  mutable forwards : int;  (** redirects followed (caller side) *)
  mutable failovers : int;  (** reads re-routed to a replica *)
  mutable shed : int;  (** breaker + admission-queue refusals *)
}

type t

val local_vertex : int
(** The pseudo-vertex ([-1]) holding unattributed (client-local) work. *)

val of_spans : Trace.span list -> t
(** Fold finished spans (as returned by {!Trace.spans}) into a profile. *)

val rows : t -> row list
(** Rows in ascending vertex order ({!local_vertex} first, if present). *)

val find : t -> int -> row option

val totals : t -> row
(** Column-wise sum across every row (its [vertex] is {!local_vertex}). *)
