(* Fold a finished span tree into a per-plan-vertex profile.

   Attribution: client call spans carry a [vertex] attribute — the
   execute-at body's d-graph vertex id, the same key Cost's per-vertex
   estimates use — and every other span belongs to the nearest ancestor
   carrying one (server-side spans connect through the <trace> header's
   Remote parent linkage, so a peer's evaluate/serialize/shred work lands
   under the attempt that delivered the request). Spans with no such
   ancestor — the root, local evaluation, document fetches by the
   data-shipping client — fold into the pseudo-vertex {!local_vertex}.

   The time buckets come from the [busy_s] attributes the runtime stamps
   on its accounting regions: the exact Stats delta each region charged,
   not the span's wall interval (a separate clock read that drifts). A
   remote region's delta includes the charges of remote regions nested
   under it, so the self amount is its delta minus its nearest remote
   descendants'; with that subtraction the per-vertex sums reconcile
   with the registry totals to float rounding, which the test suite
   checks over generated query/fault/churn/overload schedules. Wire time
   ([wire_s]) is the simulated-clock interval of network spans and is
   informational only: group overlap rewinds the clock and timeouts bill
   it outside any span, so it does not decompose per-span. *)

type row = {
  vertex : int;
  mutable serialize_s : float;
  mutable shred_s : float;
  mutable remote_s : float;
  mutable wire_s : float; (* sim-clock interval of network spans *)
  mutable server_s : float; (* wall interval of server handle spans *)
  mutable queue_wait_s : float;
  mutable bytes : int; (* wire bytes billed inside network spans *)
  mutable calls : int;
  mutable retries : int;
  mutable timeouts : int;
  mutable fallbacks : int;
  mutable forwards : int;
  mutable failovers : int;
  mutable shed : int; (* breaker + admission-queue refusals *)
}

let local_vertex = -1

type t = { rows : row list (* ascending vertex; local_vertex first *) }

let empty_row vertex =
  {
    vertex;
    serialize_s = 0.;
    shred_s = 0.;
    remote_s = 0.;
    wire_s = 0.;
    server_s = 0.;
    queue_wait_s = 0.;
    bytes = 0;
    calls = 0;
    retries = 0;
    timeouts = 0;
    fallbacks = 0;
    forwards = 0;
    failovers = 0;
    shed = 0;
  }

let attr_i (s : Trace.span) key =
  List.fold_left
    (fun acc (k, v) ->
      match v with Trace.I i when k = key -> acc + i | _ -> acc)
    0 s.Trace.attrs

let attr_f (s : Trace.span) key =
  List.fold_left
    (fun acc (k, v) ->
      match v with Trace.F f when k = key -> acc +. f | _ -> acc)
    0. s.Trace.attrs

let has_attr (s : Trace.span) key =
  List.mem_assoc key s.Trace.attrs

let attr_is (s : Trace.span) key value =
  List.exists
    (fun (k, v) -> k = key && match v with Trace.S x -> x = value | _ -> false)
    s.Trace.attrs

let of_spans (spans : Trace.span list) : t =
  let by_id = Hashtbl.create (List.length spans * 2) in
  List.iter (fun (s : Trace.span) -> Hashtbl.replace by_id s.Trace.span_id s) spans;
  (* nearest ancestor-or-self with a [vertex] attribute, memoized *)
  let vcache = Hashtbl.create 64 in
  let rec vertex_of (s : Trace.span) =
    match Hashtbl.find_opt vcache s.Trace.span_id with
    | Some v -> v
    | None ->
        let v =
          if has_attr s "vertex" then attr_i s "vertex"
          else
            match s.Trace.parent_id with
            | Some p -> (
                match Hashtbl.find_opt by_id p with
                | Some parent -> vertex_of parent
                | None -> local_vertex)
            | None -> local_vertex
        in
        Hashtbl.replace vcache s.Trace.span_id v;
        v
  in
  (* nearest strict remote-category ancestor, for remote self-time *)
  let rec remote_parent (s : Trace.span) =
    match s.Trace.parent_id with
    | None -> None
    | Some p -> (
        match Hashtbl.find_opt by_id p with
        | None -> None
        | Some parent ->
            if parent.Trace.cat = "remote" then Some parent
            else remote_parent parent)
  in
  let remote_self = Hashtbl.create 16 in
  List.iter
    (fun (s : Trace.span) ->
      if s.Trace.cat = "remote" then begin
        let busy = attr_f s "busy_s" in
        Hashtbl.replace remote_self s.Trace.span_id
          (busy
          +. (try Hashtbl.find remote_self s.Trace.span_id with Not_found -> 0.));
        match remote_parent s with
        | Some a ->
            Hashtbl.replace remote_self a.Trace.span_id
              ((try Hashtbl.find remote_self a.Trace.span_id
                with Not_found -> 0.)
              -. busy)
        | None -> ()
      end)
    spans;
  let rows = Hashtbl.create 16 in
  let row v =
    match Hashtbl.find_opt rows v with
    | Some r -> r
    | None ->
        let r = empty_row v in
        Hashtbl.replace rows v r;
        r
  in
  List.iter
    (fun (s : Trace.span) ->
      let r = row (vertex_of s) in
      r.queue_wait_s <- r.queue_wait_s +. attr_f s "queue_wait_s";
      (* admission-queue refusals surface as a fault attribute on the
         serving peer's handle span (the client's attempt span echoes the
         same code — counting both would double) *)
      if s.Trace.cat = "server" && attr_is s "fault" "xrpc:server.overloaded"
      then r.shed <- r.shed + 1;
      (match s.Trace.cat with
      | "serialize" -> r.serialize_s <- r.serialize_s +. attr_f s "busy_s"
      | "shred" -> r.shred_s <- r.shred_s +. attr_f s "busy_s"
      | "remote" ->
          r.remote_s <-
            r.remote_s
            +. (try Hashtbl.find remote_self s.Trace.span_id
                with Not_found -> 0.)
      | "network" ->
          r.bytes <- r.bytes + attr_i s "bytes";
          if
            (not (Float.is_nan s.Trace.end_sim))
            && not (Float.is_nan s.Trace.start_sim)
          then r.wire_s <- r.wire_s +. (s.Trace.end_sim -. s.Trace.start_sim)
      | "server" ->
          if
            (not (Float.is_nan s.Trace.end_wall))
            && not (Float.is_nan s.Trace.start_wall)
          then
            r.server_s <- r.server_s +. (s.Trace.end_wall -. s.Trace.start_wall)
      | "call" -> r.calls <- r.calls + (if has_attr s "calls" then attr_i s "calls" else 1)
      | "attempt" ->
          if attr_i s "retry" > 0 then r.retries <- r.retries + 1;
          if has_attr s "timeout" then r.timeouts <- r.timeouts + 1
      | "fallback" -> r.fallbacks <- r.fallbacks + 1
      | "topo" -> (
          match s.Trace.name with
          | "forward" ->
              (* only the caller-side note (it carries [from]); the
                 serving peer notes the same redirect without one *)
              if has_attr s "from" then r.forwards <- r.forwards + 1
          | "failover" -> r.failovers <- r.failovers + 1
          | _ -> ())
      | "overload" ->
          if s.Trace.name = "breaker shed" then r.shed <- r.shed + 1
      | _ -> ()))
    spans;
  let rows = Hashtbl.fold (fun _ r acc -> r :: acc) rows [] in
  { rows = List.sort (fun a b -> compare a.vertex b.vertex) rows }

let rows t = t.rows

let find t vertex = List.find_opt (fun r -> r.vertex = vertex) t.rows

(* Column-wise sum across every row — what the reconciliation property
   compares against the registry totals. *)
let totals t =
  let acc = empty_row local_vertex in
  List.iter
    (fun r ->
      acc.serialize_s <- acc.serialize_s +. r.serialize_s;
      acc.shred_s <- acc.shred_s +. r.shred_s;
      acc.remote_s <- acc.remote_s +. r.remote_s;
      acc.wire_s <- acc.wire_s +. r.wire_s;
      acc.server_s <- acc.server_s +. r.server_s;
      acc.queue_wait_s <- acc.queue_wait_s +. r.queue_wait_s;
      acc.bytes <- acc.bytes + r.bytes;
      acc.calls <- acc.calls + r.calls;
      acc.retries <- acc.retries + r.retries;
      acc.timeouts <- acc.timeouts + r.timeouts;
      acc.fallbacks <- acc.fallbacks + r.fallbacks;
      acc.forwards <- acc.forwards + r.forwards;
      acc.failovers <- acc.failovers + r.failovers;
      acc.shed <- acc.shed + r.shed)
    t.rows;
  acc
