type attr = S of string | I of int | F of float | B of bool

type span = {
  trace_id : string;
  span_id : string;
  parent_id : string option;
  name : string;
  cat : string;
  peer : string;
  start_wall : float;
  start_sim : float;
  mutable end_wall : float;
  mutable end_sim : float;
  mutable attrs : (string * attr) list;
}

type t = {
  ring : span option array;
  mutable head : int; (* next write slot *)
  mutable dropped : int;
  mutable seq : int; (* id counter: deterministic ids *)
  mutable sim : unit -> float;
}

type parent =
  | Root
  | Child of span
  | Remote of { trace_id : string; span_id : string }

let create ?(cap = 65536) ?(sim = fun () -> 0.) () =
  let cap = max 1 cap in
  { ring = Array.make cap None; head = 0; dropped = 0; seq = 0; sim }

let set_sim t f = t.sim <- f

(* Ids are derived from a per-tracer counter through a multiplicative
   hash, so they look like ids, never collide within a run, and are
   reproducible across runs — which lets tests pin them after a trivial
   normalization. *)
let span_id_of seq = Printf.sprintf "%08x" (seq * 0x9E3779B1 land 0xFFFFFFFF)

let trace_id_of seq =
  Printf.sprintf "%016x" (seq * 0x2545F4914F6CDD1D land max_int)

let next t =
  t.seq <- t.seq + 1;
  t.seq

let start topt ~parent ~peer ~cat name =
  match topt with
  | None -> None
  | Some t ->
      let trace_id, parent_id =
        match parent with
        | Root -> (trace_id_of (next t), None)
        | Child s -> (s.trace_id, Some s.span_id)
        | Remote { trace_id; span_id } -> (trace_id, Some span_id)
      in
      let now_sim = t.sim () in
      Some
        {
          trace_id;
          span_id = span_id_of (next t);
          parent_id;
          name;
          cat;
          peer;
          start_wall = Unix.gettimeofday ();
          start_sim = now_sim;
          end_wall = nan;
          end_sim = nan;
          attrs = [];
        }

let add_attr sp key v =
  match sp with None -> () | Some s -> s.attrs <- (key, v) :: s.attrs

let push t s =
  if t.ring.(t.head) <> None then t.dropped <- t.dropped + 1;
  t.ring.(t.head) <- Some s;
  t.head <- (t.head + 1) mod Array.length t.ring

let finish topt sp =
  match (topt, sp) with
  | Some t, Some s ->
      s.end_wall <- Unix.gettimeofday ();
      s.end_sim <- t.sim ();
      s.attrs <- List.rev s.attrs;
      push t s
  | _ -> ()

let with_span topt ~parent ~peer ~cat name f =
  match start topt ~parent ~peer ~cat name with
  | None -> f None
  | Some _ as sp -> (
      match f sp with
      | v ->
          finish topt sp;
          v
      | exception e ->
          add_attr sp "error" (S (Printexc.to_string e));
          finish topt sp;
          raise e)

let ambient = function Some s -> Child s | None -> Root

let spans t =
  let cap = Array.length t.ring in
  let out = ref [] in
  for i = 0 to cap - 1 do
    (* oldest-first: start just past the head (next overwrite victim) *)
    match t.ring.((t.head + i) mod cap) with
    | Some s -> out := s :: !out
    | None -> ()
  done;
  List.rev !out

let dropped t = t.dropped

let clear t =
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.head <- 0;
  t.dropped <- 0

let valid_id s =
  let n = String.length s in
  n >= 1 && n <= 32
  && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s
