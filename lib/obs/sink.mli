(** Exporters for completed traces.

    No JSON library is assumed: both formats are rendered directly, with
    full string escaping, so the output loads in [jq], Perfetto and
    [chrome://tracing]. *)

val jstr : string -> string
(** JSON string literal with full escaping. *)

val jfloat : float -> string
(** JSON number; nan/±inf render as [null]. *)

val jsonl : Trace.t -> string
(** One JSON object per line per completed span, oldest first. Fields:
    [trace], [span], [parent] (absent on roots), [name], [cat], [peer],
    [wall_start]/[wall_end] (Unix seconds), [sim_start]/[sim_end]
    (simulated-clock seconds), [attrs] (object of typed attributes). *)

val chrome : Trace.t -> string
(** Chrome [trace_event] JSON: an object with [displayTimeUnit] and a
    [traceEvents] array of [ph:"X"] complete events (one per span; [ts]
    and [dur] in microseconds of wall time relative to the earliest
    span) preceded by [ph:"M"] [thread_name] metadata naming one thread
    per peer. Simulated-clock bounds and attributes ride in [args]. *)

val write_file : string -> string -> unit
(** [write_file path contents] — create/truncate [path]. *)

val append_file : string -> string -> unit
(** [append_file path contents] — create or append to [path] (the
    query-log sink: one JSON record per line per query). *)
