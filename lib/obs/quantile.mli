(** Nearest-rank percentile over float samples — the single definition
    of p50/p95/p99 used by both the bench harness and the [--explain]
    report. An empty sample yields [0.]. *)

val percentile : float array -> float -> float
(** [percentile sorted p] over an ascending-sorted array;
    [p] in percent (e.g. [95.]). *)

val of_list : float list -> float -> float
(** Sorts a copy, then {!percentile}. *)
