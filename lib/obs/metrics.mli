(** A process-local metrics registry: named counters, gauges and
    histograms with a deterministic text dump.

    Handles are registered once and survive {!reset} (which zeroes the
    values, not the registrations), so long-lived components can hold on
    to their handles while per-execution drivers reset between runs. The
    registry is the single source of truth for runtime accounting —
    {!Xd_xrpc.Stats} is a typed compatibility view over one. *)

type t
(** A registry. *)

val create : unit -> t

(** {2 Counters} — monotonically increasing integers. *)

type counter

val counter : t -> string -> counter
(** Get or register the named counter.
    @raise Invalid_argument if the name is registered with another kind. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

(** {2 Gauges} — floats that can move both ways (sizes, simulated
    clocks). *)

type gauge

val gauge : t -> string -> gauge
val set : gauge -> float -> unit
val add : gauge -> float -> unit
val gauge_value : gauge -> float

(** {2 Histograms} — distributions of float observations with cumulative
    bucket counts, a total sum and a count. *)

type histogram

val histogram : ?buckets:float list -> t -> string -> histogram
(** [buckets] are the upper bounds (an implicit +inf bucket is always
    appended). The default buckets suit second-valued durations:
    1us .. 10s in decades. Bounds given on a later registration of an
    existing name are ignored. *)

val observe : ?exemplar:string -> histogram -> float -> unit
(** Record an observation. When [exemplar] carries a trace id and the
    observation is the extreme (max) seen since the last reset, the pair
    is retained and surfaced by {!exemplar} and the {!prom} exposition —
    so a tail-latency outlier links back to the trace that produced it.
    Without [exemplar] the histogram state is exactly as before. *)

val hist_count : histogram -> int
val hist_sum : histogram -> float

val exemplar : histogram -> (string * float) option
(** The retained [(trace_id, value)] exemplar, if any observation since
    the last reset carried one. *)

val hist_buckets : histogram -> (float * int) list
(** Cumulative [(upper_bound, count <= bound)] pairs; the +inf bucket is
    the last entry with bound [infinity]. *)

(** {2 Registry-wide operations} *)

val reset : t -> unit
(** Zero every metric; registrations (and histogram bounds) survive. *)

val names : t -> string list
(** Registered names, sorted. *)

val dump : Format.formatter -> t -> unit
(** One line per metric, sorted by name:
    {v
    counter    xrpc.messages = 4
    gauge      time.network_s = 0.000813
    histogram  time.serialize_s count=4 sum=0.000217 | le1e-06:0 ... inf:4
    v} *)

val prom : Format.formatter -> t -> unit
(** Prometheus text exposition: dotted names sanitized to underscores, a
    [name{key=value}] registry suffix rendered as proper labels,
    histograms as cumulative [_bucket{le="…"}]/[_sum]/[_count] series,
    and the retained exemplar appended OpenMetrics-style
    ([… # {trace_id="…"} value]) to the [+Inf] bucket. *)
