(** Hierarchical span tracing over dual clocks.

    A {!t} is a per-run tracer: spans record a wall-clock interval (real
    elapsed time) and a simulated-clock interval (the XRPC network
    clock), a category, the peer that executed them, and typed
    attributes. Completed spans land in a bounded ring buffer; the
    {!Sink} module renders the buffer as JSONL or Chrome [trace_event]
    JSON.

    Every operation accepts [span option] so call sites can thread an
    ambient span without branching on whether tracing is enabled:
    [None] makes every operation a no-op. *)

type attr = S of string | I of int | F of float | B of bool

type span = private {
  trace_id : string;
  span_id : string;
  parent_id : string option;
  name : string;
  cat : string;  (** span taxonomy category, e.g. ["xrpc.call"] *)
  peer : string;  (** logical host that executed the span *)
  start_wall : float;
  start_sim : float;
  mutable end_wall : float;
  mutable end_sim : float;
  mutable attrs : (string * attr) list;
}

type t

type parent =
  | Root  (** start a fresh trace *)
  | Child of span  (** nest under a local span *)
  | Remote of { trace_id : string; span_id : string }
      (** nest under a span on another peer, as carried by the [<trace>]
          envelope header *)

val create : ?cap:int -> ?sim:(unit -> float) -> unit -> t
(** A tracer whose ring buffer holds [cap] completed spans (default
    65536; older spans are dropped and counted in {!dropped}). [sim]
    reads the simulated clock (default: constantly [0.]). Ids are drawn
    from a deterministic per-tracer counter, so two runs of the same
    program produce identical ids. *)

val set_sim : t -> (unit -> float) -> unit
(** Re-point the simulated clock (e.g. once the network exists). *)

val start :
  t option -> parent:parent -> peer:string -> cat:string -> string ->
  span option
(** [start tr ~parent ~peer ~cat name] opens a span; [None] tracer (or
    [Child] of a foreign span) yields [None]. *)

val add_attr : span option -> string -> attr -> unit
val finish : t option -> span option -> unit

val with_span :
  t option -> parent:parent -> peer:string -> cat:string -> string ->
  (span option -> 'a) -> 'a
(** Run the body under a fresh span, finishing it on both normal return
    and exception (the exception is recorded as an [error] attribute and
    re-raised). *)

val ambient : span option -> parent
(** [Child s] when a span is at hand, [Root] otherwise. *)

val spans : t -> span list
(** Completed spans, oldest first. *)

val dropped : t -> int
val clear : t -> unit

val valid_id : string -> bool
(** 1–32 lowercase hex characters — the wire-format constraint on
    [<trace>] header ids. *)
