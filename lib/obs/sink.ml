let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jstr s = "\"" ^ escape s ^ "\""

(* JSON numbers may not be nan/inf; unfinished spans export as null. *)
let jfloat f =
  if Float.is_nan f || Float.abs f = infinity then "null"
  else Printf.sprintf "%.9g" f

let jattr = function
  | Trace.S s -> jstr s
  | Trace.I i -> string_of_int i
  | Trace.F f -> jfloat f
  | Trace.B b -> if b then "true" else "false"

let jattrs attrs =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> jstr k ^ ":" ^ jattr v) attrs)
  ^ "}"

let jsonl tr =
  let b = Buffer.create 4096 in
  List.iter
    (fun (s : Trace.span) ->
      Buffer.add_string b "{";
      Buffer.add_string b ("\"trace\":" ^ jstr s.trace_id);
      Buffer.add_string b (",\"span\":" ^ jstr s.span_id);
      (match s.parent_id with
      | Some p -> Buffer.add_string b (",\"parent\":" ^ jstr p)
      | None -> ());
      Buffer.add_string b (",\"name\":" ^ jstr s.name);
      Buffer.add_string b (",\"cat\":" ^ jstr s.cat);
      Buffer.add_string b (",\"peer\":" ^ jstr s.peer);
      Buffer.add_string b (",\"wall_start\":" ^ jfloat s.start_wall);
      Buffer.add_string b (",\"wall_end\":" ^ jfloat s.end_wall);
      Buffer.add_string b (",\"sim_start\":" ^ jfloat s.start_sim);
      Buffer.add_string b (",\"sim_end\":" ^ jfloat s.end_sim);
      Buffer.add_string b (",\"attrs\":" ^ jattrs s.attrs);
      Buffer.add_string b "}\n")
    (Trace.spans tr);
  Buffer.contents b

let chrome tr =
  let spans = Trace.spans tr in
  let t0 =
    List.fold_left
      (fun acc (s : Trace.span) -> Float.min acc s.start_wall)
      infinity spans
  in
  let t0 = if t0 = infinity then 0. else t0 in
  let tids = Hashtbl.create 8 in
  let tid_of peer =
    match Hashtbl.find_opt tids peer with
    | Some id -> id
    | None ->
        let id = Hashtbl.length tids + 1 in
        Hashtbl.replace tids peer id;
        id
  in
  (* Assign tids in span order so the export is deterministic. *)
  List.iter (fun (s : Trace.span) -> ignore (tid_of s.peer)) spans;
  let us t = Printf.sprintf "%.3f" ((t -. t0) *. 1e6) in
  let events = Buffer.create 4096 in
  let emit e =
    if Buffer.length events > 0 then Buffer.add_string events ",\n";
    Buffer.add_string events e
  in
  Hashtbl.fold (fun peer id acc -> (id, peer) :: acc) tids []
  |> List.sort compare
  |> List.iter (fun (id, peer) ->
         emit
           (Printf.sprintf
              "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\
               \"args\":{\"name\":%s}}"
              id (jstr peer)));
  List.iter
    (fun (s : Trace.span) ->
      let dur =
        if Float.is_nan s.end_wall then 0. else s.end_wall -. s.start_wall
      in
      let args =
        ("trace", Trace.S s.trace_id)
        :: ("span", Trace.S s.span_id)
        :: (match s.parent_id with
           | Some p -> [ ("parent", Trace.S p) ]
           | None -> [])
        @ [ ("sim_start", Trace.F s.start_sim); ("sim_end", Trace.F s.end_sim) ]
        @ s.attrs
      in
      emit
        (Printf.sprintf
           "{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"dur\":%.3f,\
            \"name\":%s,\"cat\":%s,\"args\":%s}"
           (tid_of s.peer) (us s.start_wall) (dur *. 1e6) (jstr s.name)
           (jstr s.cat) (jattrs args)))
    spans;
  "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n" ^ Buffer.contents events
  ^ "\n]}\n"

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let append_file path contents =
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path
  in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
