(* A static transfer-cost model over decomposed plans — a first cut at the
   paper's future-work question of optimization quality: given the
   documents' real sizes at their peers, estimate how many bytes each
   strategy will move, and pick the cheapest.

   The model walks the rewritten plan:
   - every xrpc document referenced *outside* any execute-at is fetched
     whole (data shipping): its real serialized size counts fully;
   - a document referenced *inside* an execute-at executing at its owner
     peer is reduced to an estimated response: a per-semantics reduction
     factor times the document size (calibrated on the Section VII
     benchmark: by-value ships selected full subtrees, by-fragment adds
     dedup and parameter re-shipping, by-projection ships skeletons);
   - a document referenced inside an execute-at at a *different* peer is
     fetched whole by that server.

   The factors are deliberately coarse — the model's job is ranking, not
   prediction; the test suite checks that the predicted ranking matches
   the measured Fig. 7 ranking. *)

module Ast = Xd_lang.Ast
module Dg = Xd_dgraph.Dgraph

type estimate = {
  strategy : Strategy.t;
  fetched_bytes : int; (* full documents moved (data shipping) *)
  response_bytes_est : int; (* estimated message payloads *)
  overhead_bytes : int; (* per-message envelope overhead *)
  overlap_saved_bytes : int;
      (* transfer the overlap schedule takes off the critical path:
         within a group, per-peer batched round trips run concurrently,
         so the group costs its most expensive peer, not the sum *)
  codec_saved_bytes : int;
      (* effective transfer the compiled codecs take off the processing
         path: bytes moving through a compiled encoder/decoder cost a
         measured per-byte fraction of generic serialize/parse work. 0
         unless the caller passed the plan's wire-shape descriptors. *)
  per_vertex : (int * int) list;
      (* estimated wire bytes per d-graph vertex (execute-at body id),
         ascending; vertex -1 is the client's own document fetches. The
         key matches the [vertex] span attribute, so --explain can put
         these predictions next to the profiler's measured actuals. *)
}

let total e =
  e.fetched_bytes + e.response_bytes_est + e.overhead_bytes
  - e.overlap_saved_bytes - e.codec_saved_bytes

let reduction_factor = function
  | Strategy.Data_shipping -> 1.0
  | Strategy.By_value -> 0.45
  | Strategy.By_fragment -> 0.30
  | Strategy.By_projection -> 0.06

let envelope_overhead = 400 (* bytes per request/response pair *)

(* Per-byte discount for bytes handled by a compiled codec, measured on
   `bench codec` at --scale 80: the event shredder and string-builder
   encoders process message bytes several times faster than the generic
   tree parse / generic writer, worth ~15% of the byte's effective cost
   on the Fig. 8 breakdown (serialize + shred share of a round trip). *)
let codec_discount = 0.15

(* Serialized size of a document at its owning peer, if resolvable. *)
let doc_size net uri =
  match Dg.split_xrpc_uri uri with
  | None -> None
  | Some (host, name) -> (
    match Xd_xrpc.Network.find_peer net host with
    | exception _ -> None
    | peer -> (
      match Xd_xrpc.Peer.find_doc peer name with
      | Some d -> Some (host, Xd_xml.Serializer.doc_bytes d)
      | None -> None))

(* Average serialized size of one atomic item in an XRPC response
   (tag + typed value). *)
let atom_bytes = 64

(* Collect (uri, enclosing execute-at context) for every literal doc call
   in the plan body; the context carries the literal host (if any) and
   the execute-at body's vertex id, so the typed estimator can look up
   the body's inferred result type. *)
let doc_sites body =
  let acc = ref [] in
  let rec go ctx (e : Ast.expr) =
    (match e.Ast.desc with
    | Ast.Fun_call (("doc" | "collection"), [ { Ast.desc = Ast.Literal (Ast.A_string u); _ } ])
      ->
      acc := (u, ctx) :: !acc
    | _ -> ());
    match e.Ast.desc with
    | Ast.Execute_at x ->
      let host =
        match x.Ast.host.Ast.desc with
        | Ast.Literal (Ast.A_string h) -> Some h
        | _ -> None
      in
      go ctx x.Ast.host;
      List.iter (fun (_, pe) -> go ctx pe) x.Ast.params;
      go (Some (host, x.Ast.body.Ast.id)) x.Ast.body
    | _ -> List.iter (go ctx) (Ast.children e)
  in
  go None body;
  List.rev !acc

let estimate ?(typing = true) ?shapes net (plan : Decompose.plan) : estimate =
  let strategy = plan.Decompose.strategy in
  let q = plan.Decompose.query in
  let sites = doc_sites q.Ast.body in
  (* cardinality-aware response sizing: when the execute-at body is
     provably atomic, the response carries typed atoms, not subtrees —
     its size is bounded by the inferred cardinality (or by a small
     fraction of the document when unbounded), independent of the
     per-strategy subtree reduction factor *)
  let types = if typing then Some (Xd_types.Infer.infer_query q) else None in
  let atomic_card body_id =
    match types with
    | None -> None
    | Some res -> (
      match Xd_types.Infer.type_of_vertex res body_id with
      | Some t when Xd_types.Stype.is_atomic t ->
        Some (Xd_types.Stype.card_max t)
      | _ -> None)
  in
  let calls =
    let n = ref 0 in
    Ast.iter
      (fun e ->
        match e.Ast.desc with Ast.Execute_at _ -> incr n | _ -> ())
      q.Ast.body;
    !n
  in
  let fetched = ref 0 in
  (* response bytes are attributed per execute-at body so the overlap
     computation below can price each scheduled call individually *)
  let resp_by_body = Hashtbl.create 8 in
  let add_resp body_id b =
    let cur = Option.value ~default:0.0 (Hashtbl.find_opt resp_by_body body_id) in
    Hashtbl.replace resp_by_body body_id (cur +. b)
  in
  (* per-vertex wire-byte buckets for --explain: responses and fetches
     keyed by the execute-at body id the work runs under, -1 for the
     client's own fetches — the same attribution the span profiler uses *)
  let vertex_bytes = Hashtbl.create 8 in
  let add_vertex v b =
    let cur = Option.value ~default:0.0 (Hashtbl.find_opt vertex_bytes v) in
    Hashtbl.replace vertex_bytes v (cur +. b)
  in
  let seen_fetch = Hashtbl.create 8 in
  let seen_atomic = Hashtbl.create 8 in
  List.iter
    (fun (uri, ctx) ->
      match doc_size net uri with
      | None -> () (* local document: no transfer *)
      | Some (owner, bytes) -> (
        match ctx with
        | Some (Some h, body_id) when h = owner -> (
          (* executed at the owner: only the response travels *)
          match atomic_card body_id with
          | Some (Some n) ->
            (* atomic with a cardinality bound: a fixed-size response,
               independent of document size — counted once per call, not
               per referenced document *)
            if not (Hashtbl.mem seen_atomic body_id) then begin
              Hashtbl.replace seen_atomic body_id ();
              let b = float_of_int (atom_bytes * max n 1) in
              add_resp body_id b;
              add_vertex body_id b
            end
          | Some None ->
            (* atomic but unbounded (e.g. one string per selected node):
               far below any subtree-shipping reduction factor *)
            let b = float_of_int (max atom_bytes (bytes / 20)) in
            add_resp body_id b;
            add_vertex body_id b
          | None ->
            let b = reduction_factor strategy *. float_of_int bytes in
            add_resp body_id b;
            add_vertex body_id b)
        | _ ->
          (* fetched whole (by the client, or by a foreign server) *)
          let key = (uri, Option.map fst ctx) in
          if not (Hashtbl.mem seen_fetch key) then begin
            Hashtbl.replace seen_fetch key ();
            fetched := !fetched + bytes;
            add_vertex
              (match ctx with Some (_, body_id) -> body_id | None -> -1)
              (float_of_int bytes)
          end))
    sites;
  (* envelope overhead lands on the vertex issuing the call *)
  Ast.iter
    (fun e ->
      match e.Ast.desc with
      | Ast.Execute_at x ->
        add_vertex x.Ast.body.Ast.id (float_of_int envelope_overhead)
      | _ -> ())
    q.Ast.body;
  let responses = Hashtbl.fold (fun _ b acc -> acc +. b) resp_by_body 0.0 in
  (* overlap schedule: within a group the per-peer batched round trips run
     concurrently, so a group's transfer sits on the critical path of its
     most expensive peer — the rest is saved. Batching also coalesces k
     same-peer calls into one envelope, saving (k-1) overheads. A plan
     with no overlap groups prices exactly as before. *)
  let overlap_saved =
    let module E = Xd_effects.Effects in
    match E.schedule (E.analyze q) q with
    | [] -> 0.0
    | groups ->
      let site = Hashtbl.create 8 in
      let rec idx (e : Ast.expr) =
        (match e.Ast.desc with
        | Ast.Execute_at x ->
          let host =
            match x.Ast.host.Ast.desc with
            | Ast.Literal (Ast.A_string h) -> h
            | _ -> Printf.sprintf "?%d" e.Ast.id
          in
          Hashtbl.replace site e.Ast.id (host, x.Ast.body.Ast.id)
        | _ -> ());
        List.iter idx (Ast.children e)
      in
      idx q.Ast.body;
      List.iter (fun f -> idx f.Ast.f_body) q.Ast.funcs;
      let resp body_id =
        Option.value ~default:0.0 (Hashtbl.find_opt resp_by_body body_id)
      in
      let env = float_of_int envelope_overhead in
      List.fold_left
        (fun acc (g : E.group) ->
          match List.filter_map (fun m -> Hashtbl.find_opt site m) g.E.members with
          | [] | [ _ ] -> acc (* nothing overlaps a lone call statically *)
          | members ->
            let sequential =
              List.fold_left (fun a (_, b) -> a +. resp b +. env) 0.0 members
            in
            let peers = Hashtbl.create 4 in
            List.iter
              (fun (h, b) ->
                let cur = Option.value ~default:0.0 (Hashtbl.find_opt peers h) in
                Hashtbl.replace peers h (cur +. resp b))
              members;
            (* each peer gets one batched envelope; the group costs its
               slowest peer *)
            let critical =
              Hashtbl.fold (fun _ per acc -> Float.max acc (per +. env)) peers 0.0
            in
            acc +. Float.max 0.0 (sequential -. critical))
        0.0 groups
  in
  (* compiled-codec pricing (opt-in): a call site with a compiled
     decoder moves its response bytes through the specialized reader, a
     compiled encoder moves the request envelope through the
     string-builder writer — both at a measured per-byte discount
     against the generic paths. Without descriptors the estimate is
     byte-identical to a codec-less build. *)
  let codec_saved =
    match shapes with
    | None -> 0.0
    | Some descriptors ->
      let module Sh = Xd_shape.Shape in
      List.fold_left
        (fun acc (d : Sh.descriptor) ->
          let resp_b =
            Option.value ~default:0.0
              (Hashtbl.find_opt resp_by_body d.Sh.vertex)
          in
          let dec =
            if Sh.decoder_applicable d then codec_discount *. resp_b else 0.0
          in
          let enc =
            if Sh.encoder_applicable d then
              codec_discount *. float_of_int envelope_overhead
            else 0.0
          in
          acc +. dec +. enc)
        0.0 descriptors
  in
  {
    strategy;
    fetched_bytes = !fetched;
    response_bytes_est = int_of_float responses;
    overhead_bytes = calls * envelope_overhead;
    overlap_saved_bytes = int_of_float overlap_saved;
    codec_saved_bytes = int_of_float codec_saved;
    per_vertex =
      Hashtbl.fold (fun v b acc -> (v, int_of_float b) :: acc) vertex_bytes []
      |> List.sort compare;
  }

(* Estimate every strategy (sharing nothing: each gets its own plan). *)
let estimate_all ?code_motion ?typing net (q : Ast.query) =
  List.map
    (fun s -> estimate ?typing net (Decompose.decompose ?code_motion ?typing s q))
    Strategy.all

(* Pick the strategy with the lowest estimated transfer. Updating queries
   are pinned to a function-shipping strategy (by-projection) since data
   shipping cannot run them at all. *)
let choose ?code_motion ?typing net (q : Ast.query) : Strategy.t =
  if Ast.contains_update q.Ast.body then Strategy.By_projection
  else
    let ests = estimate_all ?code_motion ?typing net q in
    let best =
      List.fold_left
        (fun acc e -> match acc with
          | Some b when total b <= total e -> Some b
          | _ -> Some e)
        None ests
    in
    match best with Some e -> e.strategy | None -> Strategy.Data_shipping

let pp_estimate fmt e =
  Fmt.pf fmt "%-20s fetched=%8dB responses~%8dB overhead=%5dB total~%8dB"
    (Strategy.to_string e.strategy)
    e.fetched_bytes e.response_bytes_est e.overhead_bytes (total e);
  if e.overlap_saved_bytes > 0 then
    Fmt.pf fmt " (overlap saves %dB)" e.overlap_saved_bytes;
  if e.codec_saved_bytes > 0 then
    Fmt.pf fmt " (codec saves %dB)" e.codec_saved_bytes
