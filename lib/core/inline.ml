(* User-function inlining. The paper's XCore (Table II) expresses a whole
   query as a single Expr; to analyze queries written with user-defined
   functions we inline non-recursive calls (parameters become
   let-bindings), refreshing vertex ids. Recursive or too-deep calls are
   left in place; the insertion conditions then treat the enclosing
   expressions conservatively. *)

module Ast = Xd_lang.Ast
module Smap = Map.Make (String)

let max_depth = 8

let rec inline_expr funcs depth (e : Ast.expr) : Ast.expr =
  let e = Ast.with_children e (List.map (inline_expr funcs depth) (Ast.children e)) in
  match e.Ast.desc with
  | Ast.Fun_call (name, args) when depth < max_depth -> (
    match Smap.find_opt name funcs with
    | None -> e
    | Some f ->
      (* rename formals to fresh names to avoid capture, then bind args *)
      let body = Ast.refresh_ids f.Ast.f_body in
      let bindings =
        List.map2
          (fun (v, _ty) arg ->
            let fresh = Printf.sprintf "%s__inl%d" v (Ast.mk (Ast.Seq [])).Ast.id in
            (v, fresh, arg))
          f.Ast.f_params args
      in
      let body =
        List.fold_left
          (fun b (v, fresh, _) -> Ast.rename_var ~from:v ~to_:fresh b)
          body bindings
      in
      let body = inline_expr funcs (depth + 1) body in
      List.fold_right
        (fun (_, fresh, arg) b -> Ast.mk (Ast.Let (fresh, arg, b)))
        bindings body)
  | _ -> e

(* Detect (mutual) recursion with a simple call-graph reachability check. *)
let recursive_functions (funcs : Ast.func list) =
  let names = List.map (fun f -> f.Ast.f_name) funcs in
  let calls f =
    let acc = ref [] in
    Ast.iter
      (fun e ->
        match e.Ast.desc with
        | Ast.Fun_call (n, _) when List.mem n names -> acc := n :: !acc
        | _ -> ())
      f.Ast.f_body;
    !acc
  in
  let direct = List.map (fun f -> (f.Ast.f_name, calls f)) funcs in
  let reaches start =
    let visited = Hashtbl.create 8 in
    let rec go n =
      if not (Hashtbl.mem visited n) then begin
        Hashtbl.replace visited n ();
        List.iter go (Option.value ~default:[] (List.assoc_opt n direct))
      end
    in
    List.iter go (Option.value ~default:[] (List.assoc_opt start direct));
    Hashtbl.mem visited start
  in
  List.filter reaches names

let inline_query (q : Ast.query) : Ast.query =
  let rec_names = recursive_functions q.Ast.funcs in
  let inlinable =
    List.filter (fun f -> not (List.mem f.Ast.f_name rec_names)) q.Ast.funcs
  in
  let fmap =
    List.fold_left (fun m f -> Smap.add f.Ast.f_name f m) Smap.empty inlinable
  in
  let funcs =
    List.map
      (fun f -> { f with Ast.f_body = inline_expr fmap 0 f.Ast.f_body })
      q.Ast.funcs
  in
  { Ast.funcs; body = inline_expr fmap 0 q.Ast.body }
