(** A static transfer-cost model over decomposed plans — a first cut at the
    paper's future-work question of optimization quality. Estimates, per
    strategy, how many bytes a query will move given the real document
    sizes at their peers, and picks the cheapest strategy. The model's job
    is *ranking* (validated against the measured Fig. 7 ordering), not
    absolute prediction. *)

type estimate = {
  strategy : Strategy.t;
  fetched_bytes : int;  (** full documents moved (data shipping) *)
  response_bytes_est : int;  (** estimated message payloads *)
  overhead_bytes : int;  (** per-call envelope overhead *)
  overlap_saved_bytes : int;
      (** transfer the effect-analysis overlap schedule takes off the
          critical path: within a group, per-peer batched round trips run
          concurrently and same-peer calls share one envelope, so the
          group costs its most expensive peer instead of the sum. Zero
          when the plan has no overlap groups. *)
  codec_saved_bytes : int;
      (** effective transfer the compiled wire-shape codecs take off the
          processing path, at a measured per-byte discount
          ({!codec_discount}): response bytes moving through a compiled
          decoder, request envelopes through a compiled encoder. Zero
          unless {!estimate} was given the plan's descriptors. *)
  per_vertex : (int * int) list;
      (** estimated wire bytes per d-graph vertex (execute-at body id),
          ascending; vertex [-1] is the client's own document fetches.
          The id matches the [vertex] attribute the runtime stamps on
          call spans, so [--explain] joins these predictions with
          {!Xd_obs.Profile} actuals. *)
}

val total : estimate -> int
(** [fetched + responses + overhead − overlap_saved − codec_saved]. *)

val reduction_factor : Strategy.t -> float
val envelope_overhead : int

val codec_discount : float
(** Per-byte discount for bytes handled by a compiled codec, measured on
    [bench codec]: the event shredder / string-builder encoder's share
    of a byte's serialize+shred cost against the generic paths. *)

val atom_bytes : int
(** Average serialized size of one atomic item in an XRPC response. *)

val estimate :
  ?typing:bool -> ?shapes:Xd_shape.Shape.descriptor list ->
  Xd_xrpc.Network.t -> Decompose.plan -> estimate
(** [?typing] (default [true]) sizes owner-executed responses with the
    static type and cardinality of the execute-at body
    ({!Xd_types.Infer}): a provably atomic body with a cardinality bound
    costs a fixed [atom_bytes × bound] response regardless of document
    size; unbounded atomic bodies cost a small fraction of the document.
    Non-atomic bodies keep the per-strategy {!reduction_factor}.

    [?shapes] (default absent) prices the plan's compiled codecs: call
    sites whose wire-shape descriptor admits a compiled encoder/decoder
    are charged {!codec_discount} less per byte they handle, reported in
    [codec_saved_bytes]. Absent, the estimate is identical to a
    codec-less build ({!estimate_all} / {!choose} never pass it, so
    strategy ranking is unaffected). *)

val estimate_all :
  ?code_motion:bool -> ?typing:bool -> Xd_xrpc.Network.t ->
  Xd_lang.Ast.query -> estimate list

val choose :
  ?code_motion:bool -> ?typing:bool -> Xd_xrpc.Network.t ->
  Xd_lang.Ast.query -> Strategy.t
(** Lowest estimated transfer; updating queries are pinned to
    pass-by-projection (data shipping cannot run them). *)

val pp_estimate : Format.formatter -> estimate -> unit
