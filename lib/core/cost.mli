(** A static transfer-cost model over decomposed plans — a first cut at the
    paper's future-work question of optimization quality. Estimates, per
    strategy, how many bytes a query will move given the real document
    sizes at their peers, and picks the cheapest strategy. The model's job
    is *ranking* (validated against the measured Fig. 7 ordering), not
    absolute prediction. *)

type estimate = {
  strategy : Strategy.t;
  fetched_bytes : int;  (** full documents moved (data shipping) *)
  response_bytes_est : int;  (** estimated message payloads *)
  overhead_bytes : int;  (** per-call envelope overhead *)
}

val total : estimate -> int
val reduction_factor : Strategy.t -> float
val envelope_overhead : int

val estimate : Xd_xrpc.Network.t -> Decompose.plan -> estimate
val estimate_all :
  ?code_motion:bool -> Xd_xrpc.Network.t -> Xd_lang.Ast.query ->
  estimate list

val choose :
  ?code_motion:bool -> Xd_xrpc.Network.t -> Xd_lang.Ast.query -> Strategy.t
(** Lowest estimated transfer; updating queries are pinned to
    pass-by-projection (data shipping cannot run them). *)

val pp_estimate : Format.formatter -> estimate -> unit
