(* End-to-end distributed execution: decompose a query under a strategy and
   run it at a client peer against the (simulated) network, collecting the
   Fig. 8 cost breakdown. *)

module Ast = Xd_lang.Ast
module Value = Xd_lang.Value

type timing = {
  wall_s : float; (* total measured wall time *)
  local_exec_s : float; (* wall minus the other measured buckets *)
  serialize_s : float;
  shred_s : float;
  remote_exec_s : float;
  network_s : float; (* simulated wire time *)
  message_bytes : int;
  document_bytes : int;
  messages : int;
  faults : int; (* wire faults injected *)
  timeouts : int; (* calls that waited out the per-call timeout *)
  retries : int; (* re-sent requests *)
  fallbacks : int; (* calls degraded to local data-shipped evaluation *)
  dedup_hits : int; (* retried requests answered from the server cache *)
  dedup_evictions : int; (* cache entries dropped by the bounded dedup cache *)
  txn_staged : int; (* update operations staged at remote participants *)
  txn_commits : int; (* distributed transactions committed *)
  txn_aborts : int; (* distributed transactions aborted *)
  calls : int; (* remote execute-at calls issued *)
  sched_groups : int; (* overlap groups the scheduler executed *)
  sched_overlapped : int; (* calls that ran overlapped on the sim clock *)
  sched_saved_s : float; (* simulated wire time saved by overlap *)
  batch_envelopes : int; (* coalesced multi-call request envelopes *)
  batch_calls : int; (* calls that travelled inside batch envelopes *)
  forwarded : int; (* <forward> redirects followed *)
  topo_resolutions : int; (* computed hosts resolved via the catalog *)
  topo_failovers : int; (* calls re-routed to a replica of a down owner *)
  topo_epoch_aborts : int; (* prepares refused on an epoch mismatch *)
  ov_admitted : int; (* requests admitted by the bounded-capacity model *)
  ov_shed : int; (* requests shed on a full admission queue *)
  ov_deadline_rejects : int; (* requests refused past their budget *)
  ov_queue_wait_s : float; (* queueing delay charged to the sim clock *)
  breaker_opens : int; (* circuit-breaker closed->open transitions *)
  breaker_shed : int; (* calls shed locally by an open breaker *)
  breaker_probes : int; (* half-open probes let through *)
  retry_budget_stops : int; (* retries skipped on a spent budget *)
  codec_compiled : int; (* requests emitted by a compiled encoder *)
  codec_decodes : int; (* responses read by a compiled decoder *)
  codec_event_shreds : int; (* subtrees shredded by the event fast path *)
  codec_bailouts : int; (* compiled attempts that fell back to generic *)
}

let total_time t =
  (* the paper's "total execution time": computation wall time plus the
     simulated network time *)
  t.wall_s +. t.network_s

type run = {
  value : Value.t;
  plan : Decompose.plan;
  timing : timing;
  trace_root : Xd_obs.Trace.span option;
      (* the query's root span when the run was traced *)
}

exception Plan_rejected of Xd_verify.Verify.report

let verify_plan ?schedule ?shapes ?catalog ~(client : Xd_xrpc.Peer.t)
    (plan : Decompose.plan) =
  Xd_verify.Verify.verify
    ~self:(Xd_xrpc.Peer.name client)
    ?schedule ?shapes ?catalog plan.Decompose.strategy plan.Decompose.query

(* The effect analysis's overlap schedule for a plan, as this client
   would run it: [(anchor, members)] pairs of Seq/Let/For anchor vertices
   and the provably non-interfering read-only execute-at calls under
   them. Empty when nothing can overlap. *)
let plan_schedule ~(client : Xd_xrpc.Peer.t) (plan : Decompose.plan) =
  let module E = Xd_effects.Effects in
  let q = plan.Decompose.query in
  let res = E.analyze ~self:(Xd_xrpc.Peer.name client) q in
  List.map
    (fun (g : E.group) -> (g.E.anchor, g.E.members))
    (E.schedule res q)

(* Where may updating expressions execute? A static walk over the plan
   that tracks the site of the code being visited: top-level code runs at
   the client, an execute-at body at its (literal) host, and a computed
   host is unknowable. Function bodies are walked at each call's site,
   because the same function may carry its updates to different peers.
   Updates confined to a single site need no distributed commit — each
   peer already applies its own PUL atomically — so [`Auto] picks 2PC
   exactly when updates may span two or more sites (or a site is
   unknowable), keeping single-peer queries on the plain wire. *)
let txn_needed ~self (q : Ast.query) =
  let module S = Set.Make (String) in
  let find_func name =
    List.find_opt (fun f -> f.Ast.f_name = name) q.Ast.funcs
  in
  let unknown = ref false in
  let sites = ref S.empty in
  let rec walk seen site (e : Ast.expr) =
    match e.Ast.desc with
    | Ast.Insert_node _ | Ast.Delete_node _ | Ast.Replace_value _
    | Ast.Rename_node _ ->
      (match site with
      | Some h -> sites := S.add h !sites
      | None -> unknown := true);
      List.iter (walk seen site) (Ast.children e)
    | Ast.Execute_at x ->
      (* the host and argument expressions evaluate at the caller *)
      List.iter (walk seen site) (x.Ast.host :: List.map snd x.Ast.params);
      let callee =
        match x.Ast.host.Ast.desc with
        | Ast.Literal (Ast.A_string "") -> site
        | Ast.Literal (Ast.A_string h) -> Some h
        | _ -> None
      in
      walk seen callee x.Ast.body
    | Ast.Fun_call (name, args) ->
      List.iter (walk seen site) args;
      if not (S.mem name seen) then (
        match find_func name with
        | Some f -> walk (S.add name seen) site f.Ast.f_body
        | None -> ())
    | _ -> List.iter (walk seen site) (Ast.children e)
  in
  walk S.empty (Some self) q.Ast.body;
  !unknown || S.cardinal !sites > 1

(* Execute an already-decomposed (or hand-written) plan. The verifier
   runs first: a plan with error-severity findings is refused unless
   [~force:true] — distributed execution of such a plan would silently
   diverge from the local reference semantics. *)
let run_plan ?record ?bulk ?timeout_s ?retries ?dedup_cap ?deadline
    ?retry_budget ?(txn = `Auto) ?(parallel = true) ?(codec = true)
    ?(force = false) ?trace (net : Xd_xrpc.Network.t)
    ~(client : Xd_xrpc.Peer.t) (plan : Decompose.plan) : run =
  (* the overlap schedule rides into both the verifier (which re-derives
     the footprints and vets it) and the session (which executes it) *)
  let schedule = if parallel then plan_schedule ~client plan else [] in
  let strategy = plan.Decompose.strategy in
  (* wire-shape analysis and codec generation — the descriptors codegen
     consumed ride into the verifier, which re-derives each one with an
     independent analysis run and rejects the plan on disagreement *)
  let compiled_codec =
    if codec then
      let shapes = Xd_shape.Shape.analyze plan.Decompose.query in
      Some
        (Xd_xrpc.Codec.compile
           ~passing:(Strategy.passing strategy)
           ~caller:(Xd_xrpc.Peer.name client)
           shapes plan.Decompose.query)
    else None
  in
  (* the verifier judges the plan against the very catalog the session
     will resolve hosts with *)
  let report =
    verify_plan ~schedule
      ?shapes:(Option.map Xd_xrpc.Codec.descriptors compiled_codec)
      ?catalog:net.Xd_xrpc.Network.catalog ~client plan
  in
  if (not force) && not (Xd_verify.Verify.ok report) then
    raise (Plan_rejected report);
  let stats = net.Xd_xrpc.Network.stats in
  (* the tracer's simulated clock is the run's accumulated wire time *)
  Option.iter
    (fun tr ->
      Xd_obs.Trace.set_sim tr (fun () -> Xd_xrpc.Stats.network_s stats))
    trace;
  let session =
    (* the retry budget is a shared pool: one counter for the whole plan
       execution, drawn on by every session of the fan-out *)
    Xd_xrpc.Session.create ?record ?bulk ?timeout_s ?retries ?dedup_cap
      ~schedule ?deadline
      ?retry_budget:(Option.map ref retry_budget)
      ?codec:compiled_codec ?tracer:trace net client
      (Strategy.passing strategy)
  in
  let use_txn =
    match txn with
    | `Always -> true
    | `Off -> false
    | `Auto ->
      txn_needed ~self:(Xd_xrpc.Peer.name client) plan.Decompose.query
  in
  Xd_xrpc.Stats.reset stats;
  let trace_root =
    Xd_obs.Trace.start trace ~parent:Xd_obs.Trace.Root
      ~peer:(Xd_xrpc.Peer.name client) ~cat:"query" "execute"
  in
  Xd_obs.Trace.add_attr trace_root "strategy"
    (Xd_obs.Trace.S (Strategy.to_string strategy));
  Xd_xrpc.Session.set_current_span session trace_root;
  (* a traced run's histogram observations carry its trace id as an
     exemplar; untraced runs leave the registry byte-identical *)
  Xd_xrpc.Stats.set_exemplar stats
    (Option.map
       (fun (s : Xd_obs.Trace.span) -> s.Xd_obs.Trace.trace_id)
       trace_root);
  let t0 = Unix.gettimeofday () in
  let value =
    Fun.protect
      ~finally:(fun () ->
        Xd_xrpc.Session.set_current_span session None;
        Xd_xrpc.Stats.set_exemplar stats None;
        Xd_obs.Trace.finish trace trace_root)
      (fun () ->
        if use_txn then
          Xd_xrpc.Session.execute_txn session plan.Decompose.query
        else Xd_xrpc.Session.execute session plan.Decompose.query)
  in
  let wall = Unix.gettimeofday () -. t0 in
  let module St = Xd_xrpc.Stats in
  let timing =
    {
      wall_s = wall;
      local_exec_s =
        Float.max 0.
          (wall -. St.serialize_s stats -. St.shred_s stats
          -. St.remote_exec_s stats);
      serialize_s = St.serialize_s stats;
      shred_s = St.shred_s stats;
      remote_exec_s = St.remote_exec_s stats;
      network_s = St.network_s stats;
      message_bytes = St.message_bytes stats;
      document_bytes = St.document_bytes stats;
      messages = St.messages stats;
      faults = St.faults stats;
      timeouts = St.timeouts stats;
      retries = St.retries stats;
      fallbacks = St.fallbacks stats;
      dedup_hits = St.dedup_hits stats;
      dedup_evictions = St.dedup_evictions stats;
      txn_staged = St.txn_staged stats;
      txn_commits = St.txn_commits stats;
      txn_aborts = St.txn_aborts stats;
      calls = St.calls stats;
      sched_groups = St.sched_groups stats;
      sched_overlapped = St.sched_overlapped stats;
      sched_saved_s = St.sched_saved_s stats;
      batch_envelopes = St.batch_envelopes stats;
      batch_calls = St.batch_calls stats;
      forwarded = St.forwarded stats;
      topo_resolutions = St.topo_resolutions stats;
      topo_failovers = St.topo_failovers stats;
      topo_epoch_aborts = St.topo_epoch_aborts stats;
      ov_admitted = St.ov_admitted stats;
      ov_shed = St.ov_shed stats;
      ov_deadline_rejects = St.ov_deadline_rejects stats;
      ov_queue_wait_s = St.ov_queue_wait_s stats;
      breaker_opens = St.breaker_opens stats;
      breaker_shed = St.breaker_shed stats;
      breaker_probes = St.breaker_probes stats;
      retry_budget_stops = St.retry_budget_stops stats;
      codec_compiled = St.codec_compiled stats;
      codec_decodes = St.codec_decodes stats;
      codec_event_shreds = St.codec_event_shreds stats;
      codec_bailouts = St.codec_bailouts stats;
    }
  in
  { value; plan; timing; trace_root }

let run ?record ?bulk ?timeout_s ?retries ?dedup_cap ?deadline ?retry_budget
    ?txn ?parallel ?codec ?code_motion ?force ?trace
    (net : Xd_xrpc.Network.t) ~(client : Xd_xrpc.Peer.t)
    (strategy : Strategy.t) (q : Ast.query) : run =
  let plan = Decompose.decompose ?code_motion strategy q in
  run_plan ?record ?bulk ?timeout_s ?retries ?dedup_cap ?deadline
    ?retry_budget ?txn ?parallel ?codec ?force ?trace net ~client plan

(* Coordinator crash recovery: a fresh session for the client re-drives
   every transaction its journal shows as begun but unresolved. The
   passing semantics is irrelevant — recovery exchanges only 2PC control
   envelopes and applies journaled PULs. *)
let recover ?timeout_s ?retries ?dedup_cap (net : Xd_xrpc.Network.t)
    ~(client : Xd_xrpc.Peer.t) =
  let session =
    Xd_xrpc.Session.create ?timeout_s ?retries ?dedup_cap net client
      Xd_xrpc.Message.By_fragment
  in
  Xd_xrpc.Session.recover session

(* Reference local execution (all peers' documents reachable without cost
   accounting): the semantics any decomposition must reproduce. Documents
   are resolved directly in the owning peer's store, so node identity is
   exact. *)
let run_local (net : Xd_xrpc.Network.t) ~(client : Xd_xrpc.Peer.t)
    (q : Ast.query) : Value.t =
  let resolve_doc env uri =
    match Xd_dgraph.Dgraph.split_xrpc_uri uri with
    | Some (host, doc_name) -> (
      let peer = Xd_xrpc.Network.find_peer net host in
      match Xd_xrpc.Peer.find_doc peer doc_name with
      | Some d -> d
      | None -> Xd_lang.Env.dynamic_error "document %S not found" doc_name)
    | None -> Xd_lang.Env.default_resolve_doc env uri
  in
  Xd_lang.Eval.run_query ~resolve_doc (Xd_xrpc.Peer.store client) q
