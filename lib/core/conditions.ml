(* Decomposition insertion conditions.

   Section IV (pass-by-value, conservative), Section V (pass-by-fragment)
   and Section VI (pass-by-projection) define which subgraph roots rs are
   valid decomposition points I(G). The restrictions are imposed
   symmetrically on expressions using the *result* of rs and on how the
   remote expression uses its shipped *parameters*:

     useResult(n, rs) — n outside Gs with n ⤳ rs
     useParam(n, rs)  — n inside Gs depending on a vertex outside Gs

   i.   no reverse/horizontal axis step on shipped nodes
        (lifted by pass-by-projection);
   ii.  no node comparison / node-set operation on shipped nodes
        (by-fragment and by-projection: only when the consuming vertex
        depends on two fn:doc() applications with the same URI —
        hasMatchingDoc);
   iii. no axis step over potentially mixed/unordered/overlapping
        sequences; the dangerous producers m are ExprSeq and NodeSetExpr,
        plus — under pass-by-value only — ForExpr, OrderExpr and
        overlapping axis steps (bulk RPC and fragment-order preservation
        lift those); same hasMatchingDoc guard as ii under the enhanced
        semantics;
   iv.  no fn:root/fn:id/fn:idref on shipped nodes (lifted by
        pass-by-projection). Unknown (non-inlinable) user function calls
        are treated like condition-iv vertices, conservatively. *)

module Ast = Xd_lang.Ast
module Dg = Xd_dgraph.Dgraph

(* Derived from the evaluator's own registry list, so a builtin added
   there is automatically known here (and to the plan verifier) — a
   hand-copied list cannot drift. *)
let known_builtins = Xd_lang.Builtin_names.all

(* condition-iii dangerous producers, per strategy *)
let bad_mixer strategy (m : Ast.expr) =
  match m.Ast.desc with
  | Ast.Seq es when List.length es >= 2 -> true
  | Ast.Node_set _ -> true
  (* sequence-reordering/splicing builtins: their output is no longer in
     document order (fn:reverse), or is spliced from two sequences
     (fn:insert-before) or punctured (fn:remove) — a downstream step
     re-sorts and dedups, observably changing the sequence *)
  | Ast.Fun_call (("reverse" | "insert-before" | "remove"), _) -> true
  | Ast.For _ | Ast.Order_by _ -> strategy = Strategy.By_value
  | Ast.Step (_, ax, _) ->
    strategy = Strategy.By_value && not (Ast.non_overlapping_axis ax)
  | _ -> false

type ctx = {
  g : Dg.t;
  strategy : Strategy.t;
  all : Ast.expr list;
  outgoing : (int, (int * int) list) Hashtbl.t; (* memo: rs -> varrefs out *)
  atomic : int -> bool;
      (* typing fact: the vertex provably produces only atomic values.
         Atomic values have no identity, order or structure an XRPC
         message copy could damage, so conditions i–iv need not fire on
         uses of a proven-atomic result, nor on remote uses of a
         proven-atomic shipped parameter. The default (no proof) keeps
         every condition fully conservative. *)
}

let make_ctx ?(atomic = fun _ -> false) strategy g =
  { g; strategy; all = Dg.vertices g; outgoing = Hashtbl.create 32; atomic }

(* Outgoing varrefs of rs, minus parameters whose binder value is proven
   atomic: shipping those by value is always exact, so the remote body's
   uses of them cannot violate any condition. *)
let outgoing ctx rs =
  match Hashtbl.find_opt ctx.outgoing rs with
  | Some o -> o
  | None ->
    let o =
      List.filter
        (fun (_, binder) -> not (ctx.atomic binder))
        (Dg.outgoing_varrefs ctx.g rs)
    in
    Hashtbl.replace ctx.outgoing rs o;
    o

let use_result ctx n rs =
  (not (ctx.atomic rs))
  && (not (Dg.parse_reaches ctx.g rs n.Ast.id))
  && Dg.depends ctx.g n.Ast.id rs

let use_param ctx n rs =
  Dg.parse_reaches ctx.g rs n.Ast.id
  && List.exists (fun (vr, _) -> Dg.depends ctx.g n.Ast.id vr) (outgoing ctx rs)

let uses ctx n rs = use_result ctx n rs || use_param ctx n rs

(* hasMatchingDoc guard applied to the consuming vertex under the enhanced
   passing semantics; pass-by-value forbids unconditionally. *)
let guard ctx n =
  match ctx.strategy with
  | Strategy.By_value | Strategy.Data_shipping -> true
  | Strategy.By_fragment | Strategy.By_projection ->
    Dg.has_matching_doc ctx.g n.Ast.id

let violates_i ctx rs n =
  ctx.strategy <> Strategy.By_projection
  &&
  match n.Ast.desc with
  | Ast.Step (_, ax, _) -> (
    match Ast.classify_axis ax with
    | Ast.Rev | Ast.Hor -> uses ctx n rs
    | Ast.Fwd -> false)
  | _ -> false

let violates_ii ctx rs n =
  match n.Ast.desc with
  | Ast.Node_cmp _ | Ast.Node_set _ -> uses ctx n rs && guard ctx n
  | _ -> false

let violates_iii ctx rs n =
  match n.Ast.desc with
  | Ast.Step (_, _, _) ->
    let result_side () =
      use_result ctx n rs
      && List.exists
           (fun m -> bad_mixer ctx.strategy m && Dg.depends ctx.g rs m.Ast.id)
           ctx.all
    in
    let param_side () =
      Dg.parse_reaches ctx.g rs n.Ast.id
      && List.exists
           (fun (vr, binder) ->
             Dg.depends ctx.g n.Ast.id vr
             && List.exists
                  (fun m ->
                    bad_mixer ctx.strategy m && Dg.depends ctx.g binder m.Ast.id)
                  ctx.all)
           (outgoing ctx rs)
    in
    (result_side () || param_side ()) && guard ctx n
  | _ -> false

let violates_iv ctx rs n =
  ctx.strategy <> Strategy.By_projection
  &&
  match n.Ast.desc with
  | Ast.Fun_call (("root" | "id" | "idref"), _) -> uses ctx n rs
  | _ -> false

(* XQUF safety (Section IX future work): an update must execute where its
   target lives. A candidate rs is invalid when (a) some update's target
   consumes rs's result from outside (the target would be a shipped copy),
   or (b) an update inside rs targets data arriving through a parameter
   (again a copy). Pushing an update *with* its genuine target is handled
   by the placement pass in Decompose. *)
let violates_update ctx rs n =
  match Ast.update_target n with
  | None -> false
  | Some tgt ->
    (if Dg.parse_reaches ctx.g rs n.Ast.id then
       List.exists
         (fun (vr, _) -> Dg.depends ctx.g tgt.Ast.id vr)
         (outgoing ctx rs)
     else
       (* an atomic rs result cannot be (or contain) the target node
          itself — at worst it feeds a predicate selecting the target *)
       (not (ctx.atomic rs)) && Dg.depends ctx.g tgt.Ast.id rs)

(* Unknown user functions (recursive, not inlined): conservatively treat
   any use relationship as disqualifying under every strategy. *)
let violates_unknown_call ctx rs n =
  match n.Ast.desc with
  | Ast.Fun_call (name, _) when not (List.mem name known_builtins) ->
    uses ctx n rs || Dg.parse_reaches ctx.g rs n.Ast.id
  | _ -> false

let valid_d_point ctx rs =
  not
    (List.exists
       (fun n ->
         violates_i ctx rs n || violates_ii ctx rs n || violates_iii ctx rs n
         || violates_iv ctx rs n
         || violates_unknown_call ctx rs n
         || violates_update ctx rs n)
       ctx.all)

(* I(G): all valid decomposition points. *)
let d_points ctx =
  List.filter (fun v -> valid_d_point ctx v.Ast.id) ctx.all

(* Interesting decomposition points I'(G), Section IV:
   (a) highest vertex of its URI-dependency equivalence class,
   (b) depends on at least one document,
   (c) applies at least one axis step, and references an xrpc:// URI. *)
let site_set ctx v =
  List.sort_uniq compare (List.map (fun d -> d.Dg.site) (Dg.uri_deps ctx.g v))

let interesting_points ctx =
  let dps = d_points ctx in
  List.filter
    (fun v ->
      let deps = Dg.uri_deps ctx.g v.Ast.id in
      let sites = site_set ctx v.Ast.id in
      (* (b) at least one document dependency *)
      List.exists
        (fun d -> match d.Dg.uri with Dg.Uri _ | Dg.Wildcard -> true | Dg.Constr -> false)
        deps
      (* (a) highest *valid* vertex of its URI-dependency equivalence
         class (the paper's class root modulo validity; cf. the footnote
         replacing Var roots by their value expressions) *)
      && not
           (List.exists
              (fun u ->
                u.Ast.id <> v.Ast.id
                && Dg.parse_reaches ctx.g u.Ast.id v.Ast.id
                && site_set ctx u.Ast.id = sites)
              dps)
      (* (c) applies at least one axis step, on xrpc-addressed data *)
      && List.exists
           (fun n ->
             (match n.Ast.desc with Ast.Step _ -> true | _ -> false)
             && Dg.parse_reaches ctx.g v.Ast.id n.Ast.id)
           ctx.all
      && Dg.xrpc_hosts deps <> [])
    dps
