(* The decomposition driver: inline → normalize → find interesting
   decomposition points → insert execute-at vertices → (optional)
   distributed code motion → (by-projection) fill projection paths. *)

module Ast = Xd_lang.Ast
module Dg = Xd_dgraph.Dgraph

type plan = {
  strategy : Strategy.t;
  query : Ast.query; (* the rewritten query *)
  inserted : (int * string) list; (* (original rs id, host) actually pushed *)
  d_points : int list; (* I(G) vertex ids (diagnostics) *)
  i_points : int list; (* I'(G) vertex ids (diagnostics) *)
}

(* An i-point can be pushed iff every document it depends on lives at one
   single xrpc host (multi-host points — like the query root — stay
   local; placement across hosts is the paper's future work). Wildcard
   (computed) URIs and local documents keep the point local too. *)
let single_host g v =
  let deps = Dg.uri_deps g v in
  let hosts = Dg.xrpc_hosts deps in
  let all_pushable =
    List.for_all
      (fun d ->
        match d.Dg.uri with
        | Dg.Uri u -> Dg.split_xrpc_uri u <> None
        | Dg.Wildcard -> false
        | Dg.Constr -> true)
      deps
  in
  match hosts with [ h ] when all_pushable -> Some h | _ -> None

exception Update_placement of string
(* raised when a query contains an updating expression whose single
   affected peer cannot be identified at compile time (the paper's
   Section IX restriction) *)

(* XQUF placement: every updating expression whose target lives at a
   remote peer must execute at that peer. For each update vertex not
   already inside an execute-at, find the *smallest* enclosing closed
   subtree (no free variables) whose document dependencies live at one
   single xrpc host, and wrap it in an execute-at. The root is always
   closed, so failure means the update is entangled with multiple hosts —
   which the paper's restriction rejects. *)
let place_updates body =
  let rec pass body =
    let g = Dg.build body in
    (* update vertices not under an execute-at *)
    let unplaced =
      List.filter
        (fun v ->
          Ast.is_updating_desc v.Ast.desc
          &&
          let rec under_exec id =
            match Dg.parent_of g id with
            | None -> false
            | Some p -> (
              match (Dg.vertex g p).Ast.desc with
              | Ast.Execute_at _ -> true
              | _ -> under_exec p)
          in
          not (under_exec v.Ast.id))
        (Dg.vertices g)
    in
    let needs_remote v =
      match Ast.update_target v with
      | None -> false
      | Some tgt ->
        Dg.xrpc_hosts (Dg.extended_uri_deps g tgt.Ast.id) <> []
    in
    match List.filter needs_remote unplaced with
    | [] -> body
    | v :: _ ->
      (* walk up from v collecting candidate ancestors *)
      let rec ancestors id acc =
        match Dg.parent_of g id with
        | None -> List.rev (id :: acc)
        | Some p -> ancestors p (id :: acc)
      in
      let chain = ancestors v.Ast.id [] in
      (* smallest enclosing vertex (v first, root last) that is closed and
         single-host *)
      let candidate =
        List.find_opt
          (fun id ->
            Ast.free_vars (Dg.vertex g id) = []
            && single_host g id <> None)
          chain
      in
      (match candidate with
      | Some id ->
        let host = Option.get (single_host g id) in
        pass (Insert.insert_execute_at ~host body id)
      | None ->
        raise
          (Update_placement
             (Format.asprintf
                "cannot identify a single affected peer for updating expression: %a"
                Xd_lang.Pp.pp_expr v)))
  in
  pass body

exception Rejected of Xd_verify.Verify.report

(* A plan wrapper for a query taken verbatim — hand-written execute-at
   vertices and all. No inlining, normalization or insertion happens:
   this is the entry point for verifying (or force-running) distributed
   queries the decomposer did not produce. *)
let plan_of_query (strategy : Strategy.t) (q : Ast.query) : plan =
  (* a hand-written computed host that folds to a constant gets the same
     placement and host-consistency treatment as a literal one *)
  let q = Constfold.fold_query q in
  { strategy; query = q; inserted = []; d_points = []; i_points = [] }

let self_check (p : plan) =
  let report = Xd_verify.Verify.verify p.strategy p.query in
  if not (Xd_verify.Verify.ok report) then raise (Rejected report)

let decompose_rewrite ~code_motion ~typing (strategy : Strategy.t)
    (q0 : Ast.query) : plan =
  let q = Inline.inline_query q0 in
  let q = Normalize.normalize_query q in
  let q = Constfold.fold_query q in
  match strategy with
  | Strategy.Data_shipping ->
    { strategy; query = q; inserted = []; d_points = []; i_points = [] }
  | _ ->
    let g = Dg.build q.Ast.body in
    (* typing proofs widen the insertion conditions: conditions i–iv are
       skipped for proven-atomic shipped results and parameters. The
       verifier re-derives the same proofs independently, so a hole here
       is caught, not silently trusted. *)
    let atomic =
      if typing then Xd_types.Infer.atomic_fact (Xd_types.Infer.infer_query q)
      else fun _ -> false
    in
    let ctx = Conditions.make_ctx ~atomic strategy g in
    let dps = Conditions.d_points ctx in
    let ips = Conditions.interesting_points ctx in
    (* keep only single-host points; drop points nested inside another
       chosen point (outermost wins) *)
    let with_host =
      List.filter_map
        (fun v ->
          match single_host g v.Ast.id with
          | Some h -> Some (v, h)
          | None -> None)
        ips
    in
    let chosen =
      List.filter
        (fun (v, _) ->
          not
            (List.exists
               (fun (u, _) ->
                 u.Ast.id <> v.Ast.id && Dg.parse_reaches g u.Ast.id v.Ast.id)
               with_host))
        with_host
    in
    let body =
      List.fold_left
        (fun body (v, h) -> Insert.insert_execute_at ~host:h body v.Ast.id)
        q.Ast.body chosen
    in
    let body = place_updates body in
    let body = if code_motion then Code_motion.apply body else body in
    if strategy = Strategy.By_projection then
      Projection_fill.fill ~funcs:q.Ast.funcs body;
    {
      strategy;
      query = { q with Ast.body };
      inserted = List.map (fun (v, h) -> (v.Ast.id, h)) chosen;
      d_points = List.map (fun v -> v.Ast.id) dps;
      i_points = List.map (fun v -> v.Ast.id) ips;
    }

(* [?verify] closes the loop in one call: reject our own output if the
   independent safety analysis disagrees with the insertion conditions —
   a debug mode that turns any decomposer bug into an immediate, loudly
   diagnosed failure instead of a silently wrong distributed answer. *)
let decompose ?(code_motion = false) ?(verify = false) ?(typing = true)
    (strategy : Strategy.t) (q0 : Ast.query) : plan =
  let plan = decompose_rewrite ~code_motion ~typing strategy q0 in
  if verify then self_check plan;
  plan

let explain fmt (p : plan) =
  Fmt.pf fmt "strategy: %s@." (Strategy.to_string p.strategy);
  Fmt.pf fmt "valid d-points: %d, interesting points: %d, pushed: %d@."
    (List.length p.d_points) (List.length p.i_points) (List.length p.inserted);
  List.iter (fun (id, h) -> Fmt.pf fmt "  pushed v%d -> %s@." id h) p.inserted;
  Fmt.pf fmt "rewritten query:@.%a@." Xd_lang.Pp.pp_query p.query
