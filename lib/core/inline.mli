(** User-function inlining: the paper's XCore expresses a query as a
    single Expr, so non-recursive calls are inlined (parameters become
    let-bindings, ids refreshed). Recursive functions are detected and
    left in place; the insertion conditions then treat them
    conservatively. *)

val max_depth : int
val recursive_functions : Xd_lang.Ast.func list -> string list
val inline_query : Xd_lang.Ast.query -> Xd_lang.Ast.query
