(** XCore normalization (Section IV): push each let-binding to just above
    the lowest common ancestor of its references, converting varref
    dependencies into parse dependencies (Qc2 → Qn2 of Table III).

    Safety rules beyond the paper: bindings never cross a for/order-by
    body boundary (re-evaluation would change constructed-node identity
    and multiplicity) or an execute-at body; never move under a binder
    capturing a free variable of their right-hand side; unused bindings
    are dropped (XCore is pure). *)

val count_free_occurrences : Xd_lang.Ast.var -> Xd_lang.Ast.expr -> int
val normalize : Xd_lang.Ast.expr -> Xd_lang.Ast.expr
val normalize_query : Xd_lang.Ast.query -> Xd_lang.Ast.query
