(* Constant folding for execute-at host expressions.

   A host expression built from string literals, (nested) fn:concat and
   fn:string-join over literal sequences is a compile-time constant even
   though it is not syntactically a literal.
   Folding it into one literal lets every host-sensitive analysis — the
   dependency graph's URI classification, update placement, the
   verifier's host-consistency check, the cost model's per-site
   accounting — treat the computed host exactly like a written-out one,
   instead of degrading to the wildcard "unknown peer" path. The string
   semantics mirror the evaluator's fn:concat on literal arguments
   (atomize each singleton, concatenate), so folding can never change
   the host a query actually contacts. *)

module Ast = Xd_lang.Ast

(* The runtime's string value of a literal atom (Value.atom_to_string on
   the corresponding evaluated atom). *)
let atom_string = function
  | Ast.A_string s -> s
  | Ast.A_int i -> string_of_int i
  | Ast.A_float f ->
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else string_of_float f
  | Ast.A_bool b -> if b then "true" else "false"

let rec const_string (e : Ast.expr) : string option =
  match e.Ast.desc with
  | Ast.Literal a -> Some (atom_string a)
  | Ast.Seq [ one ] -> const_string one
  | Ast.Fun_call ("concat", args) when List.length args >= 2 ->
    List.fold_left
      (fun acc a ->
        match (acc, const_string a) with
        | Some s, Some s' -> Some (s ^ s')
        | _ -> None)
      (Some "") args
  | Ast.Fun_call ("string-join", [ parts; sep ]) -> (
    (* mirrors fn:string-join on constant inputs: the string value of
       each item of the parts sequence, joined by the separator *)
    match (const_strings parts, const_string sep) with
    | Some ps, Some s -> Some (String.concat s ps)
    | _ -> None)
  | _ -> None

(* The compile-time item strings of a sequence-valued expression, when
   every item is itself constant. Sequences flatten exactly as the
   evaluator's Seq does (concat_map), so ("a", ("b", "c")) yields three
   items, not two. *)
and const_strings (e : Ast.expr) : string list option =
  match e.Ast.desc with
  | Ast.Seq es ->
    List.fold_left
      (fun acc sub ->
        match (acc, const_strings sub) with
        | Some ss, Some ss' -> Some (ss @ ss')
        | _ -> None)
      (Some []) es
  | _ -> Option.map (fun s -> [ s ]) (const_string e)

(* Rewrite every execute-at whose host folds to a constant but is not
   already a plain string literal. Ids of untouched vertices are
   preserved (map_bottom_up), so plan diagnostics keyed by vertex id
   stay valid. *)
let fold_hosts (e : Ast.expr) : Ast.expr =
  Ast.map_bottom_up
    (fun x ->
      match x.Ast.desc with
      | Ast.Execute_at ea -> (
        match ea.Ast.host.Ast.desc with
        | Ast.Literal (Ast.A_string _) -> x
        | _ -> (
          match const_string ea.Ast.host with
          | Some s ->
            {
              x with
              Ast.desc = Ast.Execute_at { ea with Ast.host = Ast.str s };
            }
          | None -> x))
      | _ -> x)
    e

let fold_query (q : Ast.query) : Ast.query =
  {
    Ast.funcs =
      List.map (fun f -> { f with Ast.f_body = fold_hosts f.Ast.f_body }) q.Ast.funcs;
    Ast.body = fold_hosts q.Ast.body;
  }
