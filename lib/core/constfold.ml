(* Constant folding for execute-at host expressions.

   A host expression built from string literals and fn:concat is a
   compile-time constant even though it is not syntactically a literal.
   Folding it into one literal lets every host-sensitive analysis — the
   dependency graph's URI classification, update placement, the
   verifier's host-consistency check, the cost model's per-site
   accounting — treat the computed host exactly like a written-out one,
   instead of degrading to the wildcard "unknown peer" path. The string
   semantics mirror the evaluator's fn:concat on literal arguments
   (atomize each singleton, concatenate), so folding can never change
   the host a query actually contacts. *)

module Ast = Xd_lang.Ast

(* The runtime's string value of a literal atom (Value.atom_to_string on
   the corresponding evaluated atom). *)
let atom_string = function
  | Ast.A_string s -> s
  | Ast.A_int i -> string_of_int i
  | Ast.A_float f ->
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else string_of_float f
  | Ast.A_bool b -> if b then "true" else "false"

let rec const_string (e : Ast.expr) : string option =
  match e.Ast.desc with
  | Ast.Literal a -> Some (atom_string a)
  | Ast.Seq [ one ] -> const_string one
  | Ast.Fun_call ("concat", args) when List.length args >= 2 ->
    List.fold_left
      (fun acc a ->
        match (acc, const_string a) with
        | Some s, Some s' -> Some (s ^ s')
        | _ -> None)
      (Some "") args
  | _ -> None

(* Rewrite every execute-at whose host folds to a constant but is not
   already a plain string literal. Ids of untouched vertices are
   preserved (map_bottom_up), so plan diagnostics keyed by vertex id
   stay valid. *)
let fold_hosts (e : Ast.expr) : Ast.expr =
  Ast.map_bottom_up
    (fun x ->
      match x.Ast.desc with
      | Ast.Execute_at ea -> (
        match ea.Ast.host.Ast.desc with
        | Ast.Literal (Ast.A_string _) -> x
        | _ -> (
          match const_string ea.Ast.host with
          | Some s ->
            {
              x with
              Ast.desc = Ast.Execute_at { ea with Ast.host = Ast.str s };
            }
          | None -> x))
      | _ -> x)
    e

let fold_query (q : Ast.query) : Ast.query =
  {
    Ast.funcs =
      List.map (fun f -> { f with Ast.f_body = fold_hosts f.Ast.f_body }) q.Ast.funcs;
    Ast.body = fold_hosts q.Ast.body;
  }
