(** The four execution strategies compared in the paper's evaluation.

    The definition lives in {!Xd_xrpc.Strategy} (next to the
    message-passing semantics it selects) so that the {!Xd_verify} static
    analyzer can use it without depending on the decomposer; this module
    re-exports it for compatibility. *)

include module type of struct
  include Xd_xrpc.Strategy
end
