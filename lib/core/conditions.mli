(** Decomposition insertion conditions (Sections IV, V, VI).

    A subgraph root rs is a valid decomposition point iff no vertex n
    violates any condition, where the restrictions apply symmetrically to
    uses of rs's result and to the remote body's uses of its shipped
    parameters:

    - i: no reverse/horizontal axis step on shipped nodes (lifted by
      pass-by-projection);
    - ii: no node comparison / node-set operation on shipped nodes
      (by-fragment/by-projection: only under hasMatchingDoc);
    - iii: no axis step over possibly mixed/unordered/overlapping
      sequences; pass-by-value also forbids ForExpr/OrderExpr/overlapping
      axes as producers (bulk RPC and fragment ordering lift those);
    - iv: no fn:root/id/idref on shipped nodes (lifted by
      pass-by-projection). Unknown user function calls are treated
      conservatively.

    Static typing widens all of the above: a use of a proven-atomic
    result, or a remote use of a proven-atomic shipped parameter, cannot
    violate any condition — atomic values have no node identity, order
    or structure to lose in an XRPC copy (pass [?atomic] to
    {!make_ctx}). *)

val known_builtins : string list
val bad_mixer : Strategy.t -> Xd_lang.Ast.expr -> bool

type ctx

val make_ctx :
  ?atomic:(int -> bool) -> Strategy.t -> Xd_dgraph.Dgraph.t -> ctx
(** [?atomic] answers whether a vertex provably produces only atomic
    values (see [Xd_types.Infer.atomic]); defaults to a constant [false],
    keeping every condition fully conservative. *)

val use_result : ctx -> Xd_lang.Ast.expr -> int -> bool
val use_param : ctx -> Xd_lang.Ast.expr -> int -> bool
val violates_update : ctx -> int -> Xd_lang.Ast.expr -> bool
val valid_d_point : ctx -> int -> bool

val d_points : ctx -> Xd_lang.Ast.expr list
(** I(G): all valid decomposition points. *)

val interesting_points : ctx -> Xd_lang.Ast.expr list
(** I'(G): highest valid vertex of each URI-dependency equivalence class
    that depends on at least one document, applies at least one axis step,
    and references an xrpc:// URI (Section IV, Example 4.2). *)
