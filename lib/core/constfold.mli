(** Constant folding for execute-at host expressions: a host built from
    string literals and [fn:concat] folds to one string literal, so
    host-sensitive analyses (URI classification, update placement, the
    verifier's host-consistency check, per-site cost accounting) see a
    constant computed host exactly like a written-out one. *)

val const_string : Xd_lang.Ast.expr -> string option
(** The compile-time string value of an expression, when it is built
    only from literals, (nested) [fn:concat], and [fn:string-join] over
    literal sequences; matches the evaluator's string semantics on those
    shapes exactly. *)

val const_strings : Xd_lang.Ast.expr -> string list option
(** The compile-time item strings of a sequence-valued expression, when
    every item is constant; sequences flatten as the evaluator's
    sequence construction does. *)

val fold_hosts : Xd_lang.Ast.expr -> Xd_lang.Ast.expr
(** Rewrite every execute-at whose host folds to a constant (and is not
    already a string literal); untouched vertex ids are preserved. *)

val fold_query : Xd_lang.Ast.query -> Xd_lang.Ast.query
(** [fold_hosts] over the main body and every function body. *)
