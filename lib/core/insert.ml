(* XRPCExpr insertion (Section III-B): replace the subgraph rooted at a
   chosen decomposition point with an execute-at expression whose body is
   that subgraph and whose parameters are the variables referenced inside
   but bound outside (the outgoing varref edges). Parameters keep their
   variable names, so the body needs no rewriting. *)

module Ast = Xd_lang.Ast

let rec replace_vertex (e : Ast.expr) target_id make_new =
  if e.Ast.id = target_id then make_new e
  else
    Ast.with_children e
      (List.map (fun c -> replace_vertex c target_id make_new) (Ast.children e))

let insert_execute_at ~host body rs_id =
  replace_vertex body rs_id (fun rs ->
      let params = List.map (fun v -> (v, Ast.var v)) (Ast.free_vars rs) in
      Ast.mk_execute_at ~host:(Ast.str host) ~params ~body:rs)
