(* XCore normalization (Section IV): re-order let-bindings, moving each as
   deep into the query as possible — to just above the lowest common
   ancestor (in parse-edge terms) of all references to its variable. This
   converts varref dependencies into parse dependencies, which is what
   makes the URI-dependency-based i-point detection effective (compare Qc2
   vs Qn2 in Table III).

   Safety rules beyond the paper's description:
   - a binding is never pushed across a for/order-by *body* boundary (it
     would be re-evaluated per iteration, changing constructed-node
     identity and multiplicity) nor into an execute-at body (it would move
     local computation to the remote peer);
   - a binding is never pushed under a binder that captures one of the free
     variables of its right-hand side;
   - a binding whose variable is unused is dropped (XCore is pure). *)

module Ast = Xd_lang.Ast

let count_free_occurrences v e =
  let rec go bound acc e =
    match e.Ast.desc with
    | Ast.Var_ref w when w = v && not bound -> acc + 1
    | _ ->
      let cs = Ast.children e and bnd = Ast.bound_in_children e in
      List.fold_left2
        (fun acc c extra -> go (bound || List.mem v extra) acc c)
        acc cs bnd
  in
  go false 0 e

(* May the binding [v := e1] descend from [parent] into its [i]-th child?
   [extra] = variables [parent] binds in that child. *)
let may_descend parent i extra e1_free =
  let barrier =
    match parent.Ast.desc with
    | Ast.For (_, _, _) -> i = 1 (* the body *)
    | Ast.Order_by (_, _, specs, _) -> i >= 1 + List.length specs (* body *)
    | Ast.Execute_at x -> i = List.length x.Ast.params + 1 (* remote body *)
    | _ -> false
  in
  (not barrier) && not (List.exists (fun w -> List.mem w e1_free) extra)

(* Push the binding v := e1 as deep as possible into [body]; returns the
   rewritten body (with the Let re-inserted at the lowest admissible
   point). *)
let rec push_binding v e1 body =
  let e1_free = Ast.free_vars e1 in
  let cs = Ast.children body and bnd = Ast.bound_in_children body in
  (* children that contain free occurrences of v *)
  let occupied =
    List.mapi
      (fun i (c, extra) ->
        if List.mem v extra then (i, c, extra, 0)
        else (i, c, extra, count_free_occurrences v c))
      (List.combine cs bnd)
  in
  let with_occ = List.filter (fun (_, _, _, n) -> n > 0) occupied in
  match with_occ with
  | [ (i, c, extra, _) ]
    when may_descend body i extra e1_free
         && (match body.Ast.desc with Ast.Var_ref _ -> false | _ -> true) ->
    let c' = push_binding v e1 c in
    Ast.with_children body
      (List.mapi (fun j x -> if j = i then c' else x) cs)
  | _ -> Ast.mk (Ast.Let (v, e1, body))

let rec normalize (e : Ast.expr) : Ast.expr =
  match e.Ast.desc with
  | Ast.Let (v, e1, e2) ->
    let e1 = normalize e1 in
    let e2 = normalize e2 in
    if count_free_occurrences v e2 = 0 then e2 else push_binding v e1 e2
  | _ ->
    Ast.with_children e (List.map normalize (Ast.children e))

let normalize_query (q : Ast.query) : Ast.query =
  {
    Ast.funcs =
      List.map (fun f -> { f with Ast.f_body = normalize f.Ast.f_body }) q.Ast.funcs;
    Ast.body = normalize q.Ast.body;
  }
