(** The decomposition driver: inline → normalize → interesting points →
    XRPCExpr insertion → (optional) distributed code motion →
    (by-projection) projection-path filling. *)

type plan = {
  strategy : Strategy.t;
  query : Xd_lang.Ast.query;  (** the rewritten query *)
  inserted : (int * string) list;  (** (subgraph root id, host) pushed *)
  d_points : int list;  (** I(G), diagnostics *)
  i_points : int list;  (** I'(G), diagnostics *)
}

exception Update_placement of string
(** An updating expression's single affected peer cannot be identified at
    compile time (the paper's Section IX restriction on decomposing
    XQUF). *)

val single_host : Xd_dgraph.Dgraph.t -> int -> string option
(** The one xrpc host all of a vertex's document dependencies live at, if
    any — multi-host points (like the query root) stay local; placement is
    the paper's future work. *)

val place_updates : Xd_lang.Ast.expr -> Xd_lang.Ast.expr
(** Wrap every remote-targeting update in an execute-at at its single
    affected peer. @raise Update_placement when no single peer exists. *)

exception Rejected of Xd_verify.Verify.report
(** The decomposer's own output failed the independent safety analysis
    (only raised under [~verify:true] — it indicates a decomposer bug). *)

val plan_of_query : Strategy.t -> Xd_lang.Ast.query -> plan
(** Wrap a query as a plan — no inlining, normalization or insertion;
    only {!Constfold.fold_query}, so constant computed hosts verify like
    literal ones. The entry point for verifying hand-written distributed
    queries (the CLI's [--plan] mode). *)

val decompose :
  ?code_motion:bool ->
  ?verify:bool ->
  ?typing:bool ->
  Strategy.t ->
  Xd_lang.Ast.query ->
  plan
(** [?typing] (default [true]) widens the insertion conditions with
    static type and cardinality proofs ({!Xd_types.Infer}): conditions
    i–iv are skipped for proven-atomic shipped results and parameters.
    [~typing:false] reverts to the purely structural conditions.
    @raise Update_placement for non-decomposable updating queries (never
    under {!Strategy.Data_shipping}, where updates run wherever their
    documents were fetched — see the executor's fetched-copy guard).
    @raise Rejected under [~verify:true] when the emitted plan fails
    {!Xd_verify.Verify.verify} — a decomposer-bug tripwire. *)

val explain : Format.formatter -> plan -> unit
