(* The strategy type lives in xd_xrpc (next to the passing semantics it
   selects) so that layers below xd_core — notably the xd_verify static
   analyzer — can speak about strategies without depending on the
   decomposer. Re-exported here so [Xd_core.Strategy] keeps working. *)

include Xd_xrpc.Strategy
