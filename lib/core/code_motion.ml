(* Distributed code motion (Section IV, Example 4.3): a subexpression of a
   remote body that depends only on a function parameter is better
   evaluated on the caller side — ship the (small, atomized) result as an
   extra parameter instead of shipping the nodes it is computed from.

   We move maximal forward-axis step chains rooted at a parameter variable
   whose value is consumed atomically (comparison / arithmetic operand or
   argument of a value-consuming builtin), the exact shape of the paper's
   $para1/child::id example. This is safe under every passing semantics:
   the chain is evaluated on the caller's original nodes and only its
   atomized value crosses the wire. *)

module Ast = Xd_lang.Ast

let value_consumers = Xd_projection.Analysis.value_consumers

(* Is [e] a chain of forward axis steps over Var_ref of one of [params]?
   Returns the parameter name. *)
let rec param_chain params (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Var_ref v when List.mem v params -> Some v
  | Ast.Step (ctx, ax, _) when Ast.classify_axis ax = Ast.Fwd ->
    param_chain params ctx
  | _ -> None

(* A chain is movable when it has at least one step (moving a bare Var_ref
   is pointless) and its consumer atomizes it. *)
let consumed_by_value (parent : Ast.expr option) =
  match parent with
  | Some { Ast.desc = Ast.Value_cmp _ | Ast.Arith _; _ } -> true
  | Some { Ast.desc = Ast.Fun_call (name, _); _ } ->
    List.mem name value_consumers
  | _ -> false

let apply_to_execute_at (x : Ast.execute_at) =
  let params = List.map fst x.Ast.params in
  (* collect maximal movable chains with their consumers *)
  let moves = ref [] in
  let rec scan parent (e : Ast.expr) =
    let is_chain_with_step =
      match e.Ast.desc with
      | Ast.Step _ -> param_chain params e
      | _ -> None
    in
    match is_chain_with_step with
    | Some v when consumed_by_value parent ->
      let key = Xd_lang.Pp.expr_to_string e in
      if not (List.exists (fun (k, _, _) -> k = key) !moves) then
        moves := (key, v, e) :: !moves
    | _ -> List.iter (scan (Some e)) (Ast.children e)
  in
  scan None x.Ast.body;
  if !moves = [] then Ast.mk (Ast.Execute_at x)
  else begin
    let moves = List.rev !moves in
    let fresh_params =
      List.map
        (fun (key, _v, chain) ->
          let w = Printf.sprintf "cm__%d" (Ast.mk (Ast.Seq [])).Ast.id in
          (key, w, chain))
        moves
    in
    (* replace each chain occurrence in the body by the new parameter *)
    let rec rewrite (e : Ast.expr) =
      let key = Xd_lang.Pp.expr_to_string e in
      match List.find_opt (fun (k, _, _) -> k = key) fresh_params with
      | Some (_, w, _) when param_chain params e <> None -> Ast.var w
      | _ -> Ast.with_children e (List.map rewrite (Ast.children e))
    in
    let body = rewrite x.Ast.body in
    (* caller-side argument expression: the chain itself, evaluated in the
       caller scope where the original parameter argument is bound via a
       let (the paper's `let $l := $t` step). *)
    let extra =
      List.map
        (fun (_, w, chain) ->
          let arg_of_param v =
            match List.assoc_opt v x.Ast.params with
            | Some a -> a
            | None -> Ast.var v
          in
          let rec rebase (c : Ast.expr) =
            match c.Ast.desc with
            | Ast.Var_ref v when List.mem v params ->
              Ast.refresh_ids (arg_of_param v)
            | _ -> Ast.with_children c (List.map rebase (Ast.children c))
          in
          (* atomize: the paper's fcn2new takes xs:string* — only the
             values cross the wire, never the nodes *)
          (w, Ast.fun_call "data" [ Ast.refresh_ids (rebase chain) ]))
        fresh_params
    in
    (* drop original parameters no longer referenced *)
    let still_used v =
      let found = ref false in
      Ast.iter
        (fun e ->
          match e.Ast.desc with
          | Ast.Var_ref w when w = v -> found := true
          | _ -> ())
        body;
      !found
    in
    let kept = List.filter (fun (v, _) -> still_used v) x.Ast.params in
    Ast.mk_execute_at ~host:x.Ast.host ~params:(kept @ extra) ~body
  end

let rec apply (e : Ast.expr) =
  let e = Ast.with_children e (List.map apply (Ast.children e)) in
  match e.Ast.desc with
  | Ast.Execute_at x -> apply_to_execute_at x
  | _ -> e
