(** XRPCExpr insertion (Section III-B): replace the subgraph rooted at a
    decomposition point with an execute-at whose body is that subgraph and
    whose parameters are its free variables (the outgoing varref edges).
    Parameters keep their names, so the body needs no rewriting. *)

val replace_vertex :
  Xd_lang.Ast.expr -> int -> (Xd_lang.Ast.expr -> Xd_lang.Ast.expr) ->
  Xd_lang.Ast.expr

val insert_execute_at :
  host:string -> Xd_lang.Ast.expr -> int -> Xd_lang.Ast.expr
