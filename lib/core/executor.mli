(** End-to-end distributed execution: decompose under a strategy, run at a
    client peer against the simulated network, collect the Fig. 8 cost
    breakdown. *)

type timing = {
  wall_s : float;
  local_exec_s : float;  (** wall minus the measured buckets *)
  serialize_s : float;
  shred_s : float;
  remote_exec_s : float;
  network_s : float;  (** simulated wire time *)
  message_bytes : int;
  document_bytes : int;
  messages : int;
}

val total_time : timing -> float
(** Computation wall time plus simulated network time — the paper's
    "total execution time". *)

type run = {
  value : Xd_lang.Value.t;
  plan : Decompose.plan;
  timing : timing;
}

val run :
  ?record:Xd_xrpc.Session.recorded list ref ->
  ?bulk:bool ->
  ?code_motion:bool ->
  Xd_xrpc.Network.t ->
  client:Xd_xrpc.Peer.t ->
  Strategy.t ->
  Xd_lang.Ast.query ->
  run

val run_local :
  Xd_xrpc.Network.t -> client:Xd_xrpc.Peer.t -> Xd_lang.Ast.query ->
  Xd_lang.Value.t
(** Reference semantics: every peer's documents resolve directly in the
    owning store, with exact node identity and no cost accounting. Any
    decomposition must be deep-equal to this. *)
