(** End-to-end distributed execution: decompose under a strategy, run at a
    client peer against the simulated network, collect the Fig. 8 cost
    breakdown. *)

type timing = {
  wall_s : float;
  local_exec_s : float;  (** wall minus the measured buckets *)
  serialize_s : float;
  shred_s : float;
  remote_exec_s : float;
  network_s : float;  (** simulated wire time *)
  message_bytes : int;
  document_bytes : int;
  messages : int;
  faults : int;  (** wire faults injected *)
  timeouts : int;  (** calls that waited out the per-call timeout *)
  retries : int;  (** re-sent requests *)
  fallbacks : int;  (** calls degraded to local data-shipped evaluation *)
  dedup_hits : int;  (** retried requests answered from the server cache *)
  dedup_evictions : int;
      (** cache entries dropped by the bounded dedup cache *)
  txn_staged : int;  (** update operations staged at remote participants *)
  txn_commits : int;  (** distributed transactions committed *)
  txn_aborts : int;  (** distributed transactions aborted *)
  calls : int;  (** remote execute-at calls issued *)
  sched_groups : int;  (** overlap groups the scheduler executed *)
  sched_overlapped : int;
      (** calls that ran overlapped on the simulated clock *)
  sched_saved_s : float;
      (** simulated wire time saved by overlap (sum − critical path) *)
  batch_envelopes : int;  (** coalesced multi-call request envelopes sent *)
  batch_calls : int;  (** calls that travelled inside batch envelopes *)
  forwarded : int;  (** [<forward>] redirects followed *)
  topo_resolutions : int;
      (** computed execute-at hosts resolved via the catalog *)
  topo_failovers : int;
      (** calls re-routed to a replica because the owner was down *)
  topo_epoch_aborts : int;
      (** 2PC prepares participants refused on an epoch mismatch *)
  ov_admitted : int;
      (** requests admitted by the bounded-capacity model *)
  ov_shed : int;  (** requests shed on a full admission queue *)
  ov_deadline_rejects : int;
      (** requests refused because the remaining deadline budget could
          not cover them (server gate + caller pre-send expiries) *)
  ov_queue_wait_s : float;
      (** queueing delay charged to the simulated clock *)
  breaker_opens : int;  (** circuit-breaker closed→open transitions *)
  breaker_shed : int;
      (** calls shed locally by an open breaker (never on the wire) *)
  breaker_probes : int;  (** half-open probe calls let through *)
  retry_budget_stops : int;
      (** retries skipped because the shared per-query pool was spent *)
  codec_compiled : int;
      (** requests emitted by a compiled wire-shape encoder *)
  codec_decodes : int;
      (** responses read by a compiled atomic-response decoder *)
  codec_event_shreds : int;
      (** fragment/copy subtrees shredded by the event fast path *)
  codec_bailouts : int;
      (** compiled-codec attempts that fell back to the generic path *)
}

val total_time : timing -> float
(** Computation wall time plus simulated network time — the paper's
    "total execution time". *)

type run = {
  value : Xd_lang.Value.t;
  plan : Decompose.plan;
  timing : timing;
  trace_root : Xd_obs.Trace.span option;
      (** the query's root span when run with [?trace] — the whole span
          tree is in the tracer's buffer *)
}

exception Plan_rejected of Xd_verify.Verify.report
(** The plan failed the distribution-safety verifier: executing it
    distributed would silently diverge from the local semantics. *)

val verify_plan :
  ?schedule:(int * int list) list ->
  ?shapes:Xd_shape.Shape.descriptor list ->
  ?catalog:Xd_topo.Catalog.t ->
  client:Xd_xrpc.Peer.t -> Decompose.plan -> Xd_verify.Verify.report
(** Run the static verifier on a plan as this client would see it (calls
    targeting the client's own peer name are local evaluation).
    [schedule] additionally submits an overlap schedule for vetting: the
    verifier re-derives every member's effect footprint and rejects
    non-read-only or interfering members. [shapes] submits a compiled
    codec's wire-shape descriptors: each is re-derived independently and
    disagreement rejects the plan. [catalog] is the topology catalog the
    plan will run against: it tightens the computed-host warning into a
    checked judgment (see {!Xd_verify.Verify.verify}). {!run_plan}
    passes the network's installed catalog and its codec's descriptors
    automatically. *)

val plan_schedule :
  client:Xd_xrpc.Peer.t -> Decompose.plan -> (int * int list) list
(** The effect analysis's overlap schedule for the plan — [(anchor,
    members)] pairs of Seq/Let/For anchors and the provably
    non-interfering read-only [execute at] calls under them (see
    {!Xd_effects.Effects.schedule}). Empty when nothing may overlap. *)

val txn_needed : self:string -> Xd_lang.Ast.query -> bool
(** Static site analysis for [`Auto]: [true] iff updating expressions may
    execute at two or more distinct sites (or at a site that cannot be
    determined statically). Updates confined to one site are already
    atomic there and need no distributed commit. *)

val run_plan :
  ?record:Xd_xrpc.Session.recorded list ref ->
  ?bulk:bool ->
  ?timeout_s:float ->
  ?retries:int ->
  ?dedup_cap:int ->
  ?deadline:float ->
  ?retry_budget:int ->
  ?txn:[ `Auto | `Always | `Off ] ->
  ?parallel:bool ->
  ?codec:bool ->
  ?force:bool ->
  ?trace:Xd_obs.Trace.t ->
  Xd_xrpc.Network.t ->
  client:Xd_xrpc.Peer.t ->
  Decompose.plan ->
  run
(** Verify, then execute, an already-decomposed (or hand-written) plan.
    [timeout_s]/[retries]/[dedup_cap] configure the per-call timeout,
    retry budget and server dedup cache of the session (see
    {!Xd_xrpc.Session.create}). [txn] selects atomic multi-peer commit:
    [`Always] runs the query through {!Xd_xrpc.Session.execute_txn},
    [`Off] never does, and [`Auto] (the default) consults {!txn_needed}
    so that single-site queries keep a wire identical to [`Off].

    [deadline] gives the query an end-to-end budget in simulated
    seconds, propagated on every message and enforced at every hop
    (PROTOCOL.md, "Deadlines & overload"); [retry_budget] caps the
    total retries of the whole plan execution in one shared pool —
    both default to absent, leaving the wire byte-identical to a build
    without the overload layer.

    [parallel] (default true) computes the effect-analysis overlap
    schedule ({!plan_schedule}), has the verifier vet it, and passes it
    to the session: provably non-interfering read-only calls bill the
    simulated clock by critical path and, on a fault-free wire, coalesce
    per peer into one batched envelope per round trip.
    [~parallel:false] reproduces the sequential baseline exactly.

    [codec] (default true) runs the wire-shape analysis
    ({!Xd_shape.Shape.analyze}) over the plan, compiles per-call-site
    codecs from the descriptors ({!Xd_xrpc.Codec.compile}), has the
    verifier re-derive and vet every descriptor, and installs the codecs
    in the session. The wire stays byte-identical either way — compiled
    paths are strict specializations with generic fallback —
    so [~codec:false] is the ablation baseline for [bench codec].

    [trace] records the execution as a span tree in the given tracer
    (simulated clock pointed at the run's wire time, root span in
    [run.trace_root]); export with {!Xd_obs.Sink}. Tracing never
    changes results, {!Xd_xrpc.Stats} or a seeded fault schedule.
    @raise Plan_rejected when the verifier reports errors and [force] is
    false (the default); [~force:true] executes anyway. *)

val run :
  ?record:Xd_xrpc.Session.recorded list ref ->
  ?bulk:bool ->
  ?timeout_s:float ->
  ?retries:int ->
  ?dedup_cap:int ->
  ?deadline:float ->
  ?retry_budget:int ->
  ?txn:[ `Auto | `Always | `Off ] ->
  ?parallel:bool ->
  ?codec:bool ->
  ?code_motion:bool ->
  ?force:bool ->
  ?trace:Xd_obs.Trace.t ->
  Xd_xrpc.Network.t ->
  client:Xd_xrpc.Peer.t ->
  Strategy.t ->
  Xd_lang.Ast.query ->
  run
(** Decompose [q] under the strategy, then {!run_plan} it. *)

val recover :
  ?timeout_s:float ->
  ?retries:int ->
  ?dedup_cap:int ->
  Xd_xrpc.Network.t ->
  client:Xd_xrpc.Peer.t ->
  unit
(** Re-drive every transaction the client's journal shows as begun but
    unresolved: journaled commit decisions are pushed to all
    participants, undecided transactions are aborted (presumed abort).
    Run after a coordinator crash-restart; idempotent. *)

val run_local :
  Xd_xrpc.Network.t -> client:Xd_xrpc.Peer.t -> Xd_lang.Ast.query ->
  Xd_lang.Value.t
(** Reference semantics: every peer's documents resolve directly in the
    owning store, with exact node identity and no cost accounting. Any
    decomposition must be deep-equal to this. *)
