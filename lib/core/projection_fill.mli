(** Fill the relative projection paths of every execute-at vertex
    (Section VI, "Relative projection paths"): Urel/Rrel per parameter
    from analyzing the remote body with parameter anchors, and Urel/Rrel
    of each call's result from analyzing the whole query with execute-at
    anchors. Parameters whose analysis overflowed keep no paths — the
    runtime then ships full subtrees (by-fragment behaviour), which is
    always safe. *)

val path_strings : Xd_projection.Path.t list -> string list
val fill : funcs:Xd_lang.Ast.func list -> Xd_lang.Ast.expr -> unit
