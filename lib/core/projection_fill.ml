(* Fill the relative projection paths of every execute-at vertex
   (Section VI, "Relative projection paths"):

     Urel/Rrel(param)  — analysis of the remote body with each parameter
                         bound to its own anchor; suffixes rooted at the
                         parameter anchor;
     Urel/Rrel(xrpc)   — analysis of the whole query, where each execute-at
                         result is an anchor; suffixes rooted at the
                         execute-at's anchor.

   The paths are stored as strings on the (mutable) execute_at record and
   shipped in the <projection-paths> message element. Parameters for which
   analysis overflowed are left without paths; the runtime then falls back
   to shipping full subtrees (pass-by-fragment behaviour), which is always
   safe. *)

module Ast = Xd_lang.Ast
module An = Xd_projection.Analysis

let path_strings = List.map Xd_projection.Path.to_string

let fill ~funcs (body : Ast.expr) =
  (* whole-query pass for result paths *)
  let whole = An.run ~funcs ~env:[] body in
  let fill_one (x : Ast.execute_at) id =
    (* result paths *)
    (if not whole.An.overflow then begin
       let u, r = An.relative_paths whole (An.xrpc_anchor id) in
       x.Ast.result_paths <- (path_strings u, path_strings r)
     end);
    (* parameter paths *)
    let env =
      List.map
        (fun (v, _) -> (v, [ { An.root = An.R_anchor v; steps = [] } ]))
        x.Ast.params
    in
    let res = An.run ~funcs ~env x.Ast.body in
    if not res.An.overflow then
      x.Ast.param_paths <-
        List.map
          (fun (v, _) ->
            let u, r = An.relative_paths res v in
            (v, path_strings u, path_strings r))
          x.Ast.params
  in
  Ast.iter
    (fun e ->
      match e.Ast.desc with
      | Ast.Execute_at x -> fill_one x e.Ast.id
      | _ -> ())
    body
