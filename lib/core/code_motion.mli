(** Distributed code motion (Section IV, Example 4.3): a remote-body
    subexpression depending only on a function parameter is evaluated at
    the caller instead, and its {e atomized} value ships as an extra
    parameter (the paper's [xs:string*] fcn2new). Moved shapes are maximal
    forward-axis chains over a parameter whose consumer atomizes them —
    safe under every passing semantics. *)

val param_chain :
  Xd_lang.Ast.var list -> Xd_lang.Ast.expr -> Xd_lang.Ast.var option

val consumed_by_value : Xd_lang.Ast.expr option -> bool
val apply_to_execute_at : Xd_lang.Ast.execute_at -> Xd_lang.Ast.expr
val apply : Xd_lang.Ast.expr -> Xd_lang.Ast.expr
