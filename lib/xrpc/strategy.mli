(** The four execution strategies compared in the paper's evaluation. *)

type t = Data_shipping | By_value | By_fragment | By_projection

val all : t list
val to_string : t -> string
val passing : t -> Message.passing
